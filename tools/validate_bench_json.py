#!/usr/bin/env python3
"""Validate BENCH_<name>.json bench reports against the checked-in schema.

Stdlib-only (CI must not install packages), so this implements exactly the
subset of JSON Schema that bench/bench_report.schema.json uses:

    type, required, properties, additionalProperties, items, enum, minimum

plus the cross-field reconciliation the schema language cannot express: when
a report carries a trace whose rings never overflowed, the trace-derived op
count must equal the sum of the recorded BatcherStats op counts (the
"histograms reconcile exactly with Batcher::stats()" acceptance check), and
every scheduler_stats row must satisfy the frame-pool identities
(frames_allocated == frames_freed at a quiescent snapshot,
remote_frees <= frames_freed) and the span/work ordering
(span_ns <= work_ns, longest_run_span_ns <= span_ns).  Reports carrying a
bound_ledger section additionally prove the Theorem 1 accounting closes:
the five attribution buckets sum exactly to attributed_ns, attributed time
fits inside worker_threads * wall, the measured critical path fits inside
the wall, total span fits inside total work, and — when no trace records
were dropped — the ledger's online work_ns agrees with the trace's offline
useful_ns to within instrumentation slack.

Per-domain ledger tables are reconciled too: every domain's size-bucket
histograms must account for exactly `batches` recorded calls on both the
wall and span sides, the bucket sums must add back up to the domain's
sum_bop_wall_ns / sum_bop_span_ns counters, a batch is non-empty so
ops >= batches, and measured span never exceeds measured wall (the probe
samples wall-before-path on entry and path-before-wall on exit).  A
*labeled* domain is a rewritten structure's span profile (bench_fig5_skiplist
/ bench_searchtree drive it at several controlled batch sizes), so its span
table must populate at least two size buckets — otherwise the downstream
span_growth/<label> gate in tools/bench_compare.py would silently synthesize
nothing and the s(n) regression coverage would vanish without failing CI.

Usage:
    python3 tools/validate_bench_json.py --schema bench/bench_report.schema.json \
        bench-out/BENCH_*.json
"""

import argparse
import json
import sys


def type_matches(value, expected):
    if expected == "object":
        return isinstance(value, dict)
    if expected == "array":
        return isinstance(value, list)
    if expected == "string":
        return isinstance(value, str)
    if expected == "boolean":
        return isinstance(value, bool)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    raise ValueError(f"schema uses unsupported type {expected!r}")


def validate(value, schema, path, errors):
    """Appends 'path: problem' strings to `errors` for every violation."""
    expected_type = schema.get("type")
    if expected_type is not None and not type_matches(value, expected_type):
        errors.append(f"{path}: expected {expected_type}, "
                      f"got {type(value).__name__}")
        return  # structural checks below would only cascade

    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")

    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append(f"{path}: {value} < minimum {schema['minimum']}")

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties", True)
        for key, sub in value.items():
            sub_path = f"{path}.{key}"
            if key in properties:
                validate(sub, properties[key], sub_path, errors)
            elif additional is False:
                errors.append(f"{path}: unexpected key {key!r}")
            elif isinstance(additional, dict):
                validate(sub, additional, sub_path, errors)

    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]", errors)


def reconcile(report, errors):
    """Cross-field identities the schema cannot state."""
    for i, st in enumerate(report.get("batcher_stats", [])):
        path = f"$.batcher_stats[{i}]"
        if st["ops_processed"] != st["ops_failed"] + st["ops_succeeded"]:
            errors.append(
                f"{path}: ops_processed ({st['ops_processed']}) != "
                f"ops_failed + ops_succeeded "
                f"({st['ops_failed']} + {st['ops_succeeded']})")
        if sum(st["batch_size_histogram"]) != st["batches_launched"]:
            errors.append(
                f"{path}: batch_size_histogram sums to "
                f"{sum(st['batch_size_histogram'])}, expected "
                f"batches_launched = {st['batches_launched']}")
        # A chained launch is still a launch: chaining only skips the flag
        # reopen between two launches, so the chain count can never exceed
        # the launch count.
        if st["chained_launches"] > st["batches_launched"]:
            errors.append(
                f"{path}: chained_launches ({st['chained_launches']}) > "
                f"batches_launched ({st['batches_launched']})")

    for i, st in enumerate(report.get("scheduler_stats", [])):
        path = f"$.scheduler_stats[{i}]"
        # Snapshots are taken at quiescent points (after Scheduler::run or at
        # destruction), where every pool frame handed out has come back.
        if st["frames_allocated"] != st["frames_freed"]:
            errors.append(
                f"{path}: frames_allocated ({st['frames_allocated']}) != "
                f"frames_freed ({st['frames_freed']}) at a quiescent snapshot")
        if st["remote_frees"] > st["frames_freed"]:
            errors.append(
                f"{path}: remote_frees ({st['remote_frees']}) > "
                f"frames_freed ({st['frames_freed']})")
        if st["slab_refills"] > 0 and st["frames_allocated"] == 0:
            errors.append(
                f"{path}: slab_refills ({st['slab_refills']}) with zero "
                f"frames_allocated (refills happen only on allocation)")
        # Span is a maximum over paths through the summed segments, so it can
        # never exceed the work; the longest single run's span can never
        # exceed the sum of per-run spans.
        if st["span_ns"] > st["work_ns"]:
            errors.append(
                f"{path}: span_ns ({st['span_ns']}) > work_ns "
                f"({st['work_ns']})")
        if st["longest_run_span_ns"] > st["span_ns"]:
            errors.append(
                f"{path}: longest_run_span_ns ({st['longest_run_span_ns']}) "
                f"> span_ns ({st['span_ns']})")
        if st["longest_run_span_tasks"] > st["span_tasks"]:
            errors.append(
                f"{path}: longest_run_span_tasks "
                f"({st['longest_run_span_tasks']}) > span_tasks "
                f"({st['span_tasks']})")

    for i, st in enumerate(report.get("external_stats", [])):
        path = f"$.external_stats[{i}]"
        # Every published record resolves exactly one way (DESIGN.md §13):
        # success, failure (batch error / shutdown / quarantine), or a
        # deadline revocation.  Shed ops were never published and sit outside
        # the identity.
        resolved = (st["ops_succeeded"] + st["ops_failed"]
                    + st["ops_timed_out"])
        if st["ops_served"] != resolved:
            errors.append(
                f"{path}: ops_served ({st['ops_served']}) != ops_succeeded + "
                f"ops_failed + ops_timed_out ({st['ops_succeeded']} + "
                f"{st['ops_failed']} + {st['ops_timed_out']})")
        if st["batches_served"] > st["ops_served"]:
            errors.append(
                f"{path}: batches_served ({st['batches_served']}) > "
                f"ops_served ({st['ops_served']}) — a served batch holds at "
                f"least one op")
        if st["batches_failed"] > st["batches_served"]:
            errors.append(
                f"{path}: batches_failed ({st['batches_failed']}) > "
                f"batches_served ({st['batches_served']})")

    # Bench-owned histograms (the service SLO latencies): bucket counts must
    # account for every recorded sample, and each exported percentile must be
    # a representable bucket ceiling bounded by the next percentile up —
    # p50 <= p99 <= p999 by definition of a quantile over one distribution.
    for hname, h in sorted(report.get("histograms", {}).items()):
        path = f"$.histograms.{hname}"
        bucket_sum = sum(b["count"] for b in h["buckets"])
        if bucket_sum != h["count"]:
            errors.append(
                f"{path}: bucket counts sum to {bucket_sum}, expected "
                f"count = {h['count']}")
        if not (h["p50_ns"] <= h["p99_ns"] <= h["p999_ns"]):
            errors.append(
                f"{path}: percentiles not monotone: p50 {h['p50_ns']} / "
                f"p99 {h['p99_ns']} / p999 {h['p999_ns']}")
        if h["count"] > 0 and h["p999_ns"] == 0:
            errors.append(
                f"{path}: nonempty histogram exports p999_ns = 0")

    reconcile_ledger(report, errors)

    total = report.get("ops_processed_total", 0)
    trace = report.get("trace")
    if trace is None:
        return
    metrics = trace["metrics"]
    hist_ops = metrics["histograms"]["op_submit_to_done_ns"]["count"]
    if hist_ops != metrics["ops"]:
        errors.append(f"$.trace.metrics: histogram op count {hist_ops} != "
                      f"ops {metrics['ops']}")
    # Rings that overflowed (or domains whose stats the harness did not
    # record) legitimately break exact equality; otherwise it must hold.
    if metrics["dropped_records"] == 0 and total > 0 \
            and metrics["ops"] != total:
        errors.append(
            f"$.trace.metrics.ops ({metrics['ops']}) != ops_processed_total "
            f"({total}) with zero dropped records")


def reconcile_ledger(report, errors):
    """Bound-ledger identities: the Theorem 1 accounting must close."""
    ledger = report.get("bound_ledger")
    trace = report.get("trace")
    if ledger is None or trace is None:
        return
    metrics = trace["metrics"]
    attr = metrics["worker_attribution"]
    path = "$.trace.metrics.worker_attribution"

    # The five buckets are an exact partition of each worker's attributed
    # window — the replay charges every nanosecond to exactly one bucket.
    buckets = (attr["useful_ns"] + attr["steal_ns"] + attr["trapped_ns"]
               + attr["flag_wait_ns"] + attr["parked_ns"])
    if buckets != attr["attributed_ns"]:
        errors.append(
            f"{path}: bucket sum ({buckets}) != attributed_ns "
            f"({attr['attributed_ns']})")

    # Each worker's window is clamped to the session, so total attributed
    # time fits inside P * wall.
    budget = attr["worker_threads"] * ledger["wall_ns"]
    if attr["attributed_ns"] > budget:
        errors.append(
            f"{path}: attributed_ns ({attr['attributed_ns']}) > "
            f"worker_threads * wall_ns ({budget})")

    lpath = "$.bound_ledger"
    # A run executes inside the session, so its critical path fits the wall.
    if ledger["longest_run_span_ns"] > ledger["wall_ns"]:
        errors.append(
            f"{lpath}: longest_run_span_ns ({ledger['longest_run_span_ns']}) "
            f"> wall_ns ({ledger['wall_ns']})")
    if ledger["span_ns_total"] > ledger["work_ns"]:
        errors.append(
            f"{lpath}: span_ns_total ({ledger['span_ns_total']}) > work_ns "
            f"({ledger['work_ns']})")

    # Every ledger segment runs either inside a task slice (offline: useful)
    # or on a launcher between flag acquisition and reopen (offline: the
    # flag-wait bucket covers the collect phase the launch strand spans), so
    # online work must fit inside useful + flag_wait.  Timestamps straddle a
    # few instructions at pause/resume, hence the slack; a dropped record
    # invalidates the offline side entirely.
    if metrics["dropped_records"] == 0 and not metrics["pairing_degraded"]:
        offline = attr["useful_ns"] + attr["flag_wait_ns"]
        slack = offline * 0.02 + 10e6
        if ledger["work_ns"] > offline + slack:
            errors.append(
                f"{lpath}: work_ns ({ledger['work_ns']}) exceeds traced "
                f"useful_ns + flag_wait_ns ({offline}) beyond slack "
                f"({slack:.0f})")

    for i, d in enumerate(ledger.get("domains", [])):
        reconcile_ledger_domain(d, f"{lpath}.domains[{i}]", errors)


def reconcile_ledger_domain(d, dpath, errors):
    """Size-bucket tables of one ledger domain must account for every batch."""
    # note_batch books only clean, non-empty batches, so each carries >= 1 op.
    if d["ops"] < d["batches"]:
        errors.append(
            f"{dpath}: ops ({d['ops']}) < batches ({d['batches']}) — a "
            f"recorded batch is non-empty")
    # The span probe samples wall-before-path on entry and path-before-wall
    # on exit, so per-call span <= wall, hence the sums obey it too.
    if d["sum_bop_span_ns"] > d["sum_bop_wall_ns"]:
        errors.append(
            f"{dpath}: sum_bop_span_ns ({d['sum_bop_span_ns']}) > "
            f"sum_bop_wall_ns ({d['sum_bop_wall_ns']})")
    # Every note_batch call lands in exactly one size bucket on each side,
    # bumping that bucket's count and sum_ns with the same values as the
    # domain totals — both identities are exact.
    for table, total_key in (("bop_wall_by_size", "sum_bop_wall_ns"),
                             ("bop_span_by_size", "sum_bop_span_ns")):
        hists = d[table]
        count = sum(h["count"] for h in hists.values())
        if count != d["batches"]:
            errors.append(
                f"{dpath}.{table}: bucket counts sum to {count}, expected "
                f"batches = {d['batches']}")
        total = sum(h["sum_ns"] for h in hists.values())
        if total != d[total_key]:
            errors.append(
                f"{dpath}.{table}: bucket sums add to {total}, expected "
                f"{total_key} = {d[total_key]}")
    # A labeled domain is a span-profiled structure: its s(n) table is the
    # evidence the span_growth/<label> gate consumes, and that gate needs at
    # least two populated size buckets to form a growth ratio.
    if d.get("label"):
        populated = sum(1 for h in d["bop_span_by_size"].values()
                        if h["count"] > 0)
        if populated < 2:
            errors.append(
                f"{dpath}: labeled domain {d['label']!r} populates "
                f"{populated} span size-bucket(s); the span_growth gate "
                f"needs >= 2")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--schema", required=True,
                        help="path to bench_report.schema.json")
    parser.add_argument("reports", nargs="+",
                        help="BENCH_<name>.json files to validate")
    args = parser.parse_args()

    with open(args.schema, encoding="utf-8") as f:
        schema = json.load(f)

    failed = False
    for path in args.reports:
        with open(path, encoding="utf-8") as f:
            try:
                report = json.load(f)
            except json.JSONDecodeError as err:
                print(f"FAIL {path}: not valid JSON: {err}")
                failed = True
                continue
        errors = []
        validate(report, schema, "$", errors)
        if not errors:  # reconciliation reads fields schema-checked above
            reconcile(report, errors)
        if errors:
            failed = True
            print(f"FAIL {path}:")
            for err in errors:
                print(f"  {err}")
        else:
            trace_note = " (+trace)" if "trace" in report else ""
            print(f"OK   {path}: name={report['name']!r} "
                  f"metrics={len(report['metrics'])} "
                  f"ops_processed_total={report['ops_processed_total']}"
                  f"{trace_note}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
