#!/usr/bin/env python3
"""Compare two BENCH_<name>.json reports metric by metric.

Stdlib-only, like tools/validate_bench_json.py.  Matches metrics by exact
name between a baseline report and a candidate report and classifies each
pair as improvement / unchanged / regression:

  * direction comes from the metric's unit: "1/s" is higher-better;
    "ns", "us", "s", and "steps" are lower-better.  Unknown or missing
    units are compared informationally but never gated.
  * a metric regresses when it is worse than baseline by more than
    --tolerance (relative, default 0.10 = 10%).

Gating: by default the exit status is 1 if any *gated* metric regressed.
--metric PREFIX (repeatable) restricts gating to metrics whose name starts
with PREFIX — everything else is still printed, but report-only.  This is
how CI gates only the deterministic simulation metrics (sim_makespan/*)
while throughput metrics, which are machine-dependent, stay informational.
--report-only prints the full comparison and always exits 0.

A gated baseline metric that is absent from the candidate report fails the
gate with a message naming the missing metric(s): losing a metric is a
coverage regression even when nothing got slower.

--exact PREFIX (repeatable) gates metrics whose name starts with PREFIX on
*exact equality* regardless of unit: these are deterministic counts (e.g.
the external-domain robustness counters external/ops_timed_out and
external/ops_shed), where a change in either direction means the protocol
resolved ops differently, not that something got faster or slower.  An
--exact metric missing from the candidate fails the gate like a missing
gated metric.

Traced reports additionally synthesize span_growth/<label> rows from the
bound ledger: for every *labeled* domain, the mean measured BOP span at the
largest populated batch-size bucket divided by the mean at the smallest —
the report's one-number answer to "how fast does s(n) grow with n?".
Unit "x", lower-better, so --metric span_growth/ gates a rewrite that made
batch span grow faster with batch size.  Unlabeled domains (transient
throughput-lane structures with recycled ids) synthesize nothing.

Usage:
    python3 tools/bench_compare.py --baseline bench/results/BENCH_counter.json \
        --candidate bench-out/BENCH_counter.json \
        --metric sim_makespan/ --tolerance 0.05
"""

import argparse
import json
import sys

HIGHER_BETTER_UNITS = {"1/s"}
# "workers" is the crossover-point unit of BENCH_sim_scenarios: the smallest
# simulated P at which BATCHER durably beats a rival — smaller is better.
# "x" is the span_growth ratio unit: span at the largest batch-size bucket
# over span at the smallest — growing faster with batch size is worse.
LOWER_BETTER_UNITS = {"ns", "us", "s", "steps", "workers", "x"}


HIST_PERCENTILES = ("p50_ns", "p99_ns", "p999_ns")


def load_metrics(path):
    with open(path, encoding="utf-8") as f:
        report = json.load(f)
    metrics = {}
    for m in report.get("metrics", []):
        metrics[m["name"]] = (m["value"], m.get("unit", ""))
    empty_hists = synthesize_histogram_metrics(report, metrics)
    synthesize_span_growth_metrics(report, metrics)
    return report.get("name", "?"), metrics, empty_hists


def synthesize_histogram_metrics(report, metrics):
    """Lifts histogram percentiles into gateable metric rows.

    Each non-empty histogram — under trace.metrics.histograms (trace-derived)
    or the report's top-level "histograms" section (bench-owned, e.g. the
    service SLO latencies) — contributes hist/<name>/p50_ns, /p99_ns, and
    /p999_ns (unit "ns", so lower-better), letting --metric hist/ gate tail
    latencies the same way as ordinary metric rows.  Histogram buckets are
    power-of-two, so any real percentile shift is >= 2x — pair hist/ gating
    with a generous --tolerance.

    An *empty* histogram (zero samples) synthesizes nothing: a percentile of
    nothing is not 0 ns, and letting it gate as 0 would reward a run that
    recorded no data.  Returns the set of hist/ base names that were present
    but empty, so the caller can say "present but empty" — a recording
    regression — instead of the indistinguishable "metric vanished" when a
    gated percentile goes missing.
    """
    empty = set()
    sources = [report.get("trace", {}).get("metrics", {}).get("histograms", {}),
               report.get("histograms", {})]
    for hists in sources:
        if not isinstance(hists, dict):
            continue
        for hname, h in sorted(hists.items()):
            if not isinstance(h, dict):
                continue
            base = hname[:-3] if hname.endswith("_ns") else hname
            if not h.get("count", 0):
                empty.add(base)
                continue
            for pct in HIST_PERCENTILES:
                if pct in h:
                    metrics[f"hist/{base}/{pct}"] = (float(h[pct]), "ns")
    return empty


def bucket_order(key):
    """Sort key for ledger size-bucket names: le_1 < le_4 < ... < gt_64.

    le_N names the bucket's inclusive upper bound; the open-ended gt_N bucket
    shares its N with the last le_N and sorts after it.
    """
    prefix, _, bound = key.partition("_")
    return (int(bound), 1 if prefix == "gt" else 0)


def synthesize_span_growth_metrics(report, metrics):
    """Lifts the bound ledger's s(n) tables into span_growth/<label> rows.

    For each labeled domain in bound_ledger.domains, emits the ratio of
    mean_ns at the largest populated bop_span_by_size bucket to mean_ns at
    the smallest (unit "x", lower-better).  Mean is used rather than a
    percentile because histogram percentiles are power-of-two quantized;
    mean_ns is exact.  Domains without a label, with fewer than two
    populated buckets, or with a zero small-bucket mean synthesize nothing —
    a growth ratio needs two real endpoints.
    """
    for domain in report.get("bound_ledger", {}).get("domains", []):
        label = domain.get("label")
        if not label:
            continue
        populated = sorted(
            ((bucket_order(k), h) for k, h in
             domain.get("bop_span_by_size", {}).items()
             if h.get("count", 0) > 0 and h.get("mean_ns", 0) > 0),
            key=lambda kv: kv[0])
        if len(populated) < 2:
            continue
        smallest = populated[0][1]["mean_ns"]
        largest = populated[-1][1]["mean_ns"]
        metrics[f"span_growth/{label}"] = (largest / smallest, "x")


def classify(name, base, cand, unit, tolerance):
    """Returns (status, rel) with status in {better, same, worse, info}."""
    if unit in HIGHER_BETTER_UNITS:
        sign = 1.0
    elif unit in LOWER_BETTER_UNITS:
        sign = -1.0
    else:
        return "info", 0.0
    if base == 0:
        return ("same", 0.0) if cand == 0 else ("info", 0.0)
    rel = (cand - base) / abs(base)  # >0: candidate larger
    gain = sign * rel                # >0: candidate better
    if gain < -tolerance:
        return "worse", rel
    if gain > tolerance:
        return "better", rel
    return "same", rel


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--candidate", required=True)
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="relative tolerance before a change gates "
                             "(default 0.10)")
    parser.add_argument("--metric", action="append", default=[],
                        help="gate only metrics whose name starts with this "
                             "prefix (repeatable); others are report-only")
    parser.add_argument("--exact", action="append", default=[],
                        help="gate metrics whose name starts with this prefix "
                             "on exact equality (repeatable); direction and "
                             "tolerance do not apply")
    parser.add_argument("--report-only", action="store_true",
                        help="never fail, just print the comparison")
    args = parser.parse_args()

    base_name, base, _ = load_metrics(args.baseline)
    cand_name, cand, cand_empty = load_metrics(args.candidate)
    if base_name != cand_name:
        print(f"note: comparing different reports "
              f"({base_name!r} vs {cand_name!r})")

    def empty_note(name):
        """'(present but empty)' when a hist/ metric's candidate histogram
        exists but recorded zero samples — a recording regression, named as
        such so it is not mistaken for a dropped export."""
        if name.startswith("hist/"):
            base_key = name[len("hist/"):].rsplit("/", 1)[0]
            if base_key in cand_empty:
                return " (candidate histogram present but EMPTY)"
        return ""

    def gated(name):
        if not args.metric:
            return True
        return any(name.startswith(p) for p in args.metric)

    def exact(name):
        return any(name.startswith(p) for p in args.exact)

    gate_failures = 0
    exact_failures = 0
    missing_gated = []
    rows = 0
    for name in sorted(set(base) | set(cand)):
        if name not in base:
            print(f"  NEW      {name} = {cand[name][0]:g}")
            continue
        if name not in cand:
            note = empty_note(name)
            print(f"  MISSING  {name} (baseline {base[name][0]:g}){note}")
            if (gated(name) or exact(name)) and not args.report_only:
                missing_gated.append(name + note)
            continue
        bval, bunit = base[name]
        cval, cunit = cand[name]
        unit = bunit or cunit
        if exact(name):
            matches = bval == cval
            tag = "ok" if matches else "DIFF"
            print(f"  {tag:<8} {name}: {bval:g} -> {cval:g} (exact)")
            rows += 1
            if not matches:
                exact_failures += 1
            continue
        status, rel = classify(name, bval, cval, unit, args.tolerance)
        tag = {"better": "BETTER", "same": "ok", "worse": "WORSE",
               "info": "info"}[status]
        scope = "gated" if gated(name) and status != "info" else "report"
        print(f"  {tag:<8} {name}: {bval:g} -> {cval:g} "
              f"({rel:+.1%}, {unit or 'unitless'}, {scope})")
        rows += 1
        if status == "worse" and gated(name):
            gate_failures += 1

    if rows == 0 and not missing_gated:
        print("no comparable metrics found")
    if args.report_only:
        return 0
    failed = False
    if missing_gated:
        # Name every absent metric: a gated baseline metric the candidate no
        # longer reports is a coverage regression, not a slowdown, and the
        # failure message must say which metric vanished.
        print(f"FAIL: {len(missing_gated)} gated baseline metric(s) missing "
              f"from candidate: " + ", ".join(missing_gated))
        failed = True
    if gate_failures > 0:
        print(f"FAIL: {gate_failures} gated metric(s) regressed beyond "
              f"{args.tolerance:.0%}")
        failed = True
    if exact_failures > 0:
        print(f"FAIL: {exact_failures} exact-match metric(s) differ from "
              f"baseline")
        failed = True
    if failed:
        return 1
    print("PASS: no gated regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
