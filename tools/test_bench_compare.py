#!/usr/bin/env python3
"""Stdlib unit tests for tools/bench_compare.py.

Run directly (python3 tools/test_bench_compare.py) or via ctest, which
registers it as tools/bench_compare.  No third-party deps: the module under
test is loaded by path with importlib and exercised through its main() with
patched argv, asserting on exit codes and printed output.
"""

import contextlib
import importlib.util
import io
import json
import os
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))


def load_module():
    spec = importlib.util.spec_from_file_location(
        "bench_compare", os.path.join(TOOLS_DIR, "bench_compare.py"))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def make_report(path, metrics, histograms=None, top_histograms=None,
                ledger_domains=None):
    """metrics: list of (name, value, unit); histograms: trace histogram
    dict; top_histograms: report-level (bench-owned) histogram dict;
    ledger_domains: bound_ledger.domains list (span_growth synthesis)."""
    report = {
        "schema_version": 1,
        "name": "unit",
        "smoke": True,
        "config": {},
        "metrics": [{"name": n, "value": v, "unit": u}
                    for (n, v, u) in metrics],
        "batcher_stats": [],
        "scheduler_stats": [],
        "ops_processed_total": 0,
    }
    if histograms is not None:
        report["trace"] = {"file": "", "metrics": {"histograms": histograms}}
    if top_histograms is not None:
        report["histograms"] = top_histograms
    if ledger_domains is not None:
        report["bound_ledger"] = {"domains": ledger_domains}
    with open(path, "w", encoding="utf-8") as f:
        json.dump(report, f)


def span_domain(label, bucket_means, domain=0):
    """A bound_ledger domain whose bop_span_by_size has the given
    {bucket_name: mean_ns} entries (count 10 each)."""
    d = {
        "domain": domain,
        "batches": 10 * len(bucket_means),
        "ops": 0,
        "sum_bop_wall_ns": 0,
        "sum_bop_span_ns": 0,
        "bop_wall_by_size": {},
        "bop_span_by_size": {
            k: {"count": 10, "mean_ns": m} for k, m in bucket_means.items()
        },
    }
    if label is not None:
        d["label"] = label
    return d


class BenchCompareTest(unittest.TestCase):
    def setUp(self):
        self.module = load_module()
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def run_compare(self, base_metrics, cand_metrics, extra_args=(),
                    base_hists=None, cand_hists=None,
                    base_top_hists=None, cand_top_hists=None,
                    base_ledger=None, cand_ledger=None):
        """Returns (exit_code, captured_stdout)."""
        base = os.path.join(self.tmp.name, "BENCH_base.json")
        cand = os.path.join(self.tmp.name, "BENCH_cand.json")
        make_report(base, base_metrics, base_hists, base_top_hists,
                    base_ledger)
        make_report(cand, cand_metrics, cand_hists, cand_top_hists,
                    cand_ledger)
        argv = ["bench_compare.py", "--baseline", base, "--candidate", cand,
                *extra_args]
        out = io.StringIO()
        old_argv = sys.argv
        sys.argv = argv
        try:
            with contextlib.redirect_stdout(out):
                code = self.module.main()
        finally:
            sys.argv = old_argv
        return code, out.getvalue()

    def test_unchanged_metrics_pass(self):
        code, out = self.run_compare(
            [("sim_makespan/A/P=4", 100, "steps")],
            [("sim_makespan/A/P=4", 100, "steps")])
        self.assertEqual(code, 0)
        self.assertIn("PASS", out)

    def test_regression_beyond_tolerance_fails(self):
        code, out = self.run_compare(
            [("sim_makespan/A/P=4", 100, "steps")],
            [("sim_makespan/A/P=4", 150, "steps")],
            extra_args=["--tolerance", "0.05"])
        self.assertEqual(code, 1)
        self.assertIn("WORSE", out)
        self.assertIn("regressed", out)

    def test_regression_within_tolerance_passes(self):
        code, _ = self.run_compare(
            [("sim_makespan/A/P=4", 100, "steps")],
            [("sim_makespan/A/P=4", 104, "steps")],
            extra_args=["--tolerance", "0.05"])
        self.assertEqual(code, 0)

    def test_missing_gated_metric_fails_naming_the_metric(self):
        # The headline behaviour: a gated baseline metric absent from the
        # candidate must fail with a message that names it — not a KeyError,
        # and not a message claiming something "regressed".
        code, out = self.run_compare(
            [("sim_makespan/A/P=4", 100, "steps"),
             ("sim_makespan/B/P=4", 100, "steps")],
            [("sim_makespan/A/P=4", 100, "steps")])
        self.assertEqual(code, 1)
        self.assertIn("missing from candidate", out)
        self.assertIn("sim_makespan/B/P=4", out)
        self.assertNotIn("regressed", out)

    def test_missing_ungated_metric_passes(self):
        code, out = self.run_compare(
            [("sim_makespan/A/P=4", 100, "steps"),
             ("mops/throughput", 5.0, "1/s")],
            [("sim_makespan/A/P=4", 100, "steps")],
            extra_args=["--metric", "sim_makespan/"])
        self.assertEqual(code, 0)
        self.assertIn("MISSING", out)  # still reported, just not gated

    def test_missing_gated_metric_report_only_passes(self):
        code, _ = self.run_compare(
            [("sim_makespan/A/P=4", 100, "steps")],
            [],
            extra_args=["--report-only"])
        self.assertEqual(code, 0)

    def test_metric_prefix_restricts_gating(self):
        # The throughput regression is outside the gated prefix: report-only.
        code, out = self.run_compare(
            [("sim_makespan/A/P=4", 100, "steps"), ("mops/x", 10.0, "1/s")],
            [("sim_makespan/A/P=4", 100, "steps"), ("mops/x", 1.0, "1/s")],
            extra_args=["--metric", "sim_makespan/"])
        self.assertEqual(code, 0)
        self.assertIn("WORSE", out)

    def test_crossover_workers_unit_is_lower_better(self):
        # A crossover point moving to larger P means BATCHER stopped winning
        # at the smaller P — that is a gated regression.
        code, out = self.run_compare(
            [("crossover/UNIFORM/batcher_beats_flatcomb", 64, "workers")],
            [("crossover/UNIFORM/batcher_beats_flatcomb", 256, "workers")],
            extra_args=["--metric", "crossover/"])
        self.assertEqual(code, 1)
        self.assertIn("WORSE", out)
        # ...and moving to smaller P is an improvement, not a failure.
        code, out = self.run_compare(
            [("crossover/UNIFORM/batcher_beats_flatcomb", 256, "workers")],
            [("crossover/UNIFORM/batcher_beats_flatcomb", 64, "workers")],
            extra_args=["--metric", "crossover/"])
        self.assertEqual(code, 0)
        self.assertIn("BETTER", out)

    def test_exact_metric_equal_passes(self):
        # Robustness counters gate on equality: identical counts pass even
        # though the "count" unit has no gating direction.
        code, out = self.run_compare(
            [("external/ops_timed_out", 32, "count")],
            [("external/ops_timed_out", 32, "count")],
            extra_args=["--exact", "external/ops_"])
        self.assertEqual(code, 0)
        self.assertIn("(exact)", out)
        self.assertIn("PASS", out)

    def test_exact_metric_differs_fails_either_direction(self):
        # A deterministic count moving in *either* direction is a failure —
        # fewer timeouts than baseline still means the protocol resolved ops
        # differently.
        for cand_value in (16, 64):
            code, out = self.run_compare(
                [("external/ops_timed_out", 32, "count")],
                [("external/ops_timed_out", cand_value, "count")],
                extra_args=["--exact", "external/ops_"])
            self.assertEqual(code, 1)
            self.assertIn("DIFF", out)
            self.assertIn("exact-match metric(s) differ", out)

    def test_exact_prefix_does_not_gate_other_metrics(self):
        # The throughput regression is outside the exact prefix and no
        # --metric gate is set alongside it that covers it... --metric
        # defaults to gate-everything, so pass an unrelated --metric too.
        code, out = self.run_compare(
            [("external/ops_shed", 8, "count"), ("mops/x", 10.0, "1/s")],
            [("external/ops_shed", 8, "count"), ("mops/x", 1.0, "1/s")],
            extra_args=["--exact", "external/ops_",
                        "--metric", "sim_makespan/"])
        self.assertEqual(code, 0)
        self.assertIn("WORSE", out)

    def test_exact_metric_missing_fails(self):
        code, out = self.run_compare(
            [("external/ops_shed", 8, "count")],
            [],
            extra_args=["--exact", "external/ops_",
                        "--metric", "sim_makespan/"])
        self.assertEqual(code, 1)
        self.assertIn("missing from candidate", out)
        self.assertIn("external/ops_shed", out)

    def test_exact_metric_report_only_passes(self):
        code, _ = self.run_compare(
            [("external/ops_shed", 8, "count")],
            [("external/ops_shed", 9, "count")],
            extra_args=["--exact", "external/ops_", "--report-only"])
        self.assertEqual(code, 0)

    def test_histogram_percentiles_are_synthesized_and_gateable(self):
        # Trace histogram percentiles become hist/<name>/p50_ns rows with
        # unit "ns" (lower-better), so --metric hist/ gates tail latency.
        hist = {"op_submit_to_done_ns": {"count": 100, "p50_ns": 1024,
                                         "p99_ns": 4096}}
        worse = {"op_submit_to_done_ns": {"count": 100, "p50_ns": 1024,
                                          "p99_ns": 65536}}
        code, out = self.run_compare(
            [], [], extra_args=["--metric", "hist/", "--tolerance", "3.0"],
            base_hists=hist, cand_hists=worse)
        self.assertEqual(code, 1)
        self.assertIn("hist/op_submit_to_done/p99_ns", out)
        self.assertIn("WORSE", out)
        # Identical percentiles pass under the same gate.
        code, out = self.run_compare(
            [], [], extra_args=["--metric", "hist/", "--tolerance", "3.0"],
            base_hists=hist, cand_hists=dict(hist))
        self.assertEqual(code, 0)
        self.assertIn("hist/op_submit_to_done/p50_ns", out)

    def test_histogram_gone_from_candidate_fails_the_gate(self):
        # Losing a gated histogram (e.g. the trace stopped recording ops) is
        # a coverage regression, same as losing a plain gated metric.
        hist = {"op_submit_to_done_ns": {"count": 100, "p50_ns": 1024,
                                         "p99_ns": 4096}}
        code, out = self.run_compare(
            [], [], extra_args=["--metric", "hist/"],
            base_hists=hist, cand_hists={})
        self.assertEqual(code, 1)
        self.assertIn("missing from candidate", out)
        self.assertIn("hist/op_submit_to_done/p50_ns", out)

    def test_empty_histogram_contributes_no_metrics(self):
        # count == 0 means the percentiles are meaningless zeros; they must
        # not become gateable rows that then "regress" when ops appear.
        empty = {"op_submit_to_done_ns": {"count": 0, "p50_ns": 0,
                                          "p99_ns": 0}}
        code, out = self.run_compare(
            [("mops/x", 1.0, "1/s")], [("mops/x", 1.0, "1/s")],
            base_hists=empty, cand_hists=empty)
        self.assertEqual(code, 0)
        self.assertNotIn("hist/", out)

    def test_empty_candidate_histogram_fails_loudly(self):
        # A gated percentile whose candidate histogram exists but recorded
        # zero samples must fail as a missing gated metric — and the failure
        # message must say the histogram is present-but-empty (a recording
        # regression), not let the metric silently vanish from the gate.
        hist = {"service_uniform_ns": {"count": 100, "p50_ns": 1024,
                                       "p99_ns": 4096, "p999_ns": 8192}}
        empty = {"service_uniform_ns": {"count": 0, "p50_ns": 0,
                                        "p99_ns": 0, "p999_ns": 0}}
        code, out = self.run_compare(
            [], [], extra_args=["--metric", "hist/service_"],
            base_top_hists=hist, cand_top_hists=empty)
        self.assertEqual(code, 1)
        self.assertIn("missing from candidate", out)
        self.assertIn("hist/service_uniform/p99_ns", out)
        self.assertIn("EMPTY", out)

    def test_p999_is_synthesized_and_gateable(self):
        # The SLO tail: p999 rows gate like p50/p99.  A p999-only blowup
        # (p50/p99 unchanged) must still fail the gate.
        hist = {"service_zipfian_ns": {"count": 1000, "p50_ns": 1024,
                                       "p99_ns": 4096, "p999_ns": 8192}}
        worse = {"service_zipfian_ns": {"count": 1000, "p50_ns": 1024,
                                        "p99_ns": 4096, "p999_ns": 262144}}
        code, out = self.run_compare(
            [], [], extra_args=["--metric", "hist/", "--tolerance", "3.0"],
            base_top_hists=hist, cand_top_hists=worse)
        self.assertEqual(code, 1)
        self.assertIn("hist/service_zipfian/p999_ns", out)
        self.assertIn("WORSE", out)

    def test_top_level_histograms_synthesize_without_trace(self):
        # Bench-owned histograms live at the report top level and must
        # synthesize rows even when the report carries no trace section at
        # all (SLO gating works without $BATCHER_TRACE).
        hist = {"service_flashcrowd_ns": {"count": 10, "p50_ns": 512,
                                          "p99_ns": 1024, "p999_ns": 2048}}
        code, out = self.run_compare(
            [], [], extra_args=["--metric", "hist/"],
            base_top_hists=hist, cand_top_hists=dict(hist))
        self.assertEqual(code, 0)
        self.assertIn("hist/service_flashcrowd/p50_ns", out)
        self.assertIn("hist/service_flashcrowd/p999_ns", out)
        self.assertIn("PASS", out)

    def test_span_growth_is_synthesized_and_gateable(self):
        # A labeled ledger domain's s(n) table becomes span_growth/<label> =
        # mean span at the largest populated bucket / mean at the smallest
        # (unit "x", lower-better).  Baseline grows 16x; the candidate's
        # largest-bucket span blowing up to 160x must fail the gate.
        steady = [span_domain("skiplist_sortmerge",
                              {"le_1": 1000, "le_16": 4000, "gt_64": 16000})]
        blown = [span_domain("skiplist_sortmerge",
                             {"le_1": 1000, "le_16": 4000, "gt_64": 160000})]
        code, out = self.run_compare(
            [], [], extra_args=["--metric", "span_growth/",
                                "--tolerance", "2.0"],
            base_ledger=steady, cand_ledger=blown)
        self.assertEqual(code, 1)
        self.assertIn("span_growth/skiplist_sortmerge", out)
        self.assertIn("WORSE", out)
        # An unchanged growth curve passes under the same gate.
        code, out = self.run_compare(
            [], [], extra_args=["--metric", "span_growth/",
                                "--tolerance", "2.0"],
            base_ledger=steady, cand_ledger=[dict(steady[0])])
        self.assertEqual(code, 0)
        self.assertIn("span_growth/skiplist_sortmerge: 16 -> 16", out)

    def test_span_growth_bucket_order_is_numeric_not_lexicographic(self):
        # gt_64 must be recognized as the largest bucket even though it sorts
        # lexicographically before le_16: ratio is gt_64/le_1, not a pair
        # picked by string order.
        dom = [span_domain("d", {"le_1": 100, "le_16": 400, "le_4": 200,
                                 "gt_64": 1600, "le_64": 800})]
        code, out = self.run_compare(
            [], [], extra_args=["--metric", "span_growth/"],
            base_ledger=dom, cand_ledger=[dict(dom[0])])
        self.assertEqual(code, 0)
        self.assertIn("span_growth/d: 16 -> 16", out)

    def test_span_growth_skips_unlabeled_and_single_bucket_domains(self):
        # Unlabeled domains are transient throughput-lane structures with
        # recycled ids — no stable identity, no gateable row.  A single
        # populated bucket has no growth to measure.
        doms = [span_domain(None, {"le_1": 100, "gt_64": 1600}, domain=2),
                span_domain("organic_only", {"le_1": 100}, domain=3)]
        code, out = self.run_compare(
            [("mops/x", 1.0, "1/s")], [("mops/x", 1.0, "1/s")],
            base_ledger=doms, cand_ledger=doms)
        self.assertEqual(code, 0)
        self.assertNotIn("span_growth/", out)

    def test_span_growth_missing_from_candidate_fails_the_gate(self):
        # Losing the span profile (e.g. the bench stopped driving controlled
        # batch sizes) is a coverage regression like any missing gated row.
        dom = [span_domain("wbtree_sortmerge", {"le_1": 1000, "gt_64": 9000})]
        code, out = self.run_compare(
            [], [], extra_args=["--metric", "span_growth/"],
            base_ledger=dom, cand_ledger=[])
        self.assertEqual(code, 1)
        self.assertIn("missing from candidate", out)
        self.assertIn("span_growth/wbtree_sortmerge", out)

    def test_new_metric_is_informational(self):
        code, out = self.run_compare(
            [("sim_makespan/A/P=4", 100, "steps")],
            [("sim_makespan/A/P=4", 100, "steps"),
             ("sim_makespan/A/P=8", 60, "steps")])
        self.assertEqual(code, 0)
        self.assertIn("NEW", out)


if __name__ == "__main__":
    unittest.main()
