// build_index: the paper's §3 search-tree scenario as an application — a
// parallel job builds a sorted index (batched 2-3 tree) over a stream of
// record keys, then answers membership queries, all through implicit
// batching.
//
//   $ ./build_index [records] [workers]
//
// The interesting part: the indexing loop and the query loop are ordinary
// parallel code; the 2-3 tree implementation handles whole batches (sort,
// partition, split) with zero concurrency control, yet the program gets the
// paper's Θ(n lg n / P) aggregate bound.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "ds/batched_tree23.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"
#include "support/rng.hpp"
#include "support/timing.hpp"

int main(int argc, char** argv) {
  const std::int64_t records = argc > 1 ? std::atoll(argv[1]) : 200000;
  const unsigned workers = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 4;

  batcher::rt::Scheduler scheduler(workers);
  batcher::ds::BatchedTree23 index(scheduler);

  // Synthesize record keys (e.g., document ids extracted by parallel parsing).
  batcher::Xoshiro256 rng(2024);
  std::vector<std::int64_t> keys(static_cast<std::size_t>(records));
  for (auto& k : keys) k = static_cast<std::int64_t>(rng.next_below(1ull << 40));

  batcher::Stopwatch sw;
  scheduler.run([&] {
    batcher::rt::parallel_for(
        0, records,
        [&](std::int64_t i) { index.insert(keys[static_cast<std::size_t>(i)]); },
        /*grain=*/32);
  });
  const double build_secs = sw.elapsed_seconds();

  // Parallel membership queries: half hits, half misses.
  std::int64_t hits = 0;
  sw.reset();
  scheduler.run([&] {
    std::atomic<std::int64_t> hit_count{0};
    batcher::rt::parallel_for(
        0, records,
        [&](std::int64_t i) {
          const std::int64_t probe = (i % 2 == 0)
                                         ? keys[static_cast<std::size_t>(i)]
                                         : -i - 1;  // guaranteed miss
          if (index.contains(probe)) hit_count.fetch_add(1);
        },
        /*grain=*/32);
    hits = hit_count.load();
  });
  const double query_secs = sw.elapsed_seconds();

  std::printf("build_index: %lld records on %u workers\n",
              static_cast<long long>(records), workers);
  std::printf("  index size        : %zu distinct keys, height %d\n",
              index.size_unsafe(), index.height_unsafe());
  std::printf("  build             : %.3fs (%.2f Mkeys/s)\n", build_secs,
              static_cast<double>(records) / build_secs / 1e6);
  std::printf("  queries           : %.3fs, %lld hits (expected %lld)\n",
              query_secs, static_cast<long long>(hits),
              static_cast<long long>((records + 1) / 2));
  std::printf("  invariants        : %s\n",
              index.check_invariants() ? "OK" : "VIOLATED");
  const auto stats = index.batcher().stats();
  std::printf("  batches           : %llu (mean size %.2f)\n",
              static_cast<unsigned long long>(stats.batches_launched),
              stats.mean_batch_size());
  return index.check_invariants() ? 0 : 1;
}
