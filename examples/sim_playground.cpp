// sim_playground: a guided tour of the scheduler simulator — one workload,
// four schedulers, side by side.
//
//   $ ./sim_playground [ops] [workers]
//
// Schedulers compared on the same core dag (a parallel loop whose iterations
// each access a skip-list-priced data structure once):
//   WS-ideal    : plain work stealing, ds accesses replaced by unit work
//                 (what you'd get if the data structure were free);
//   BATCHER     : the paper's scheduler (implicit parallel batches);
//   FLATCOMB    : implicit sequential batches (flat combining);
//   CONCURRENT  : contended concurrent structure (per-access latency grows
//                 with simultaneous accessors).
#include <cstdio>
#include <cstdlib>

#include "sim/cost_model.hpp"
#include "sim/dag.hpp"
#include "sim/sim_batcher.hpp"
#include "sim/sim_concurrent.hpp"
#include "sim/sim_flatcomb.hpp"
#include "sim/sim_ws.hpp"

int main(int argc, char** argv) {
  using namespace batcher::sim;
  const std::int64_t ops = argc > 1 ? std::atoll(argv[1]) : 4096;
  const unsigned workers = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 8;
  const std::int64_t structure_size = 1 << 20;

  Dag core = build_parallel_loop_with_ds(ops, 2, 1, 1);
  std::printf("sim_playground: core dag with T1=%lld, Tinf=%lld, n=%lld ds "
              "ops (m=%lld), P=%u, structure size %lld\n",
              static_cast<long long>(core.work()),
              static_cast<long long>(core.span()),
              static_cast<long long>(core.num_ds_nodes()),
              static_cast<long long>(core.max_ds_on_path()), workers,
              static_cast<long long>(structure_size));
  std::printf("%-12s %10s %10s %12s %10s %12s\n", "scheduler", "makespan",
              "batches", "mean batch", "steals", "trapped");

  {
    // WS-ideal: strip ds flags so every node is unit work.
    Dag ideal = core;
    for (auto& f : ideal.is_ds) f = 0;
    const SimResult r = simulate_ws(ideal, workers, 1);
    std::printf("%-12s %10lld %10s %12s %10lld %12s\n", "WS-ideal",
                static_cast<long long>(r.makespan), "-", "-",
                static_cast<long long>(r.steal_attempts), "-");
  }
  {
    SkipListCostModel model(structure_size);
    BatcherSimConfig cfg;
    cfg.workers = workers;
    const SimResult r = simulate_batcher(core, model, cfg);
    std::printf("%-12s %10lld %10lld %12.2f %10lld %12lld\n", "BATCHER",
                static_cast<long long>(r.makespan),
                static_cast<long long>(r.batches), r.mean_batch_size(),
                static_cast<long long>(r.steal_attempts),
                static_cast<long long>(r.trapped_steps));
  }
  {
    SkipListCostModel model(structure_size);
    const SimResult r = simulate_flatcomb(core, model, workers, 1);
    std::printf("%-12s %10lld %10lld %12.2f %10lld %12lld\n", "FLATCOMB",
                static_cast<long long>(r.makespan),
                static_cast<long long>(r.batches), r.mean_batch_size(),
                static_cast<long long>(r.steal_attempts),
                static_cast<long long>(r.trapped_steps));
  }
  {
    ConcurrentSimConfig cfg;
    cfg.workers = workers;
    cfg.base_cost = ilog2(structure_size);
    cfg.contention_factor = ilog2(structure_size);
    const SimResult r = simulate_concurrent(core, cfg);
    std::printf("%-12s %10lld %10s %12s %10lld %12s\n", "CONCURRENT",
                static_cast<long long>(r.makespan), "-", "-",
                static_cast<long long>(r.steal_attempts), "-");
  }
  std::printf("\nreading: BATCHER should sit between WS-ideal (free ds) and "
              "the serializing baselines, and the gap to FLATCOMB/CONCURRENT "
              "widens with P.\n");
  return 0;
}
