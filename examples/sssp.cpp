// sssp: single-source shortest paths with an implicitly batched priority
// queue — the use case the paper's introduction cites for (explicitly)
// batched priority queues [8, 12, 13, 32], here without any manual batching.
//
//   $ ./sssp [nodes] [edges] [workers]
//
// The settle loop extracts the next tentative-closest vertex through the
// batched PQ and relaxes its out-edges in parallel; the relaxations' PQ
// inserts are implicitly batched by the scheduler.  Distances are verified
// against a textbook Dijkstra.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <set>
#include <vector>

#include "ds/batched_pq.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"
#include "support/rng.hpp"
#include "support/timing.hpp"

namespace {

struct Edge {
  std::int32_t to;
  std::int32_t weight;
};

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t nodes = argc > 1 ? std::atoll(argv[1]) : 20000;
  const std::int64_t edges = argc > 2 ? std::atoll(argv[2]) : 120000;
  const unsigned workers = argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 4;

  // Random sparse digraph.
  std::vector<std::vector<Edge>> adj(static_cast<std::size_t>(nodes));
  batcher::Xoshiro256 rng(7);
  for (std::int64_t e = 0; e < edges; ++e) {
    const auto u = static_cast<std::size_t>(rng.next_below(nodes));
    const auto v = static_cast<std::int32_t>(rng.next_below(nodes));
    const auto w = static_cast<std::int32_t>(1 + rng.next_below(1000));
    adj[u].push_back(Edge{v, w});
  }

  // Reference Dijkstra.
  std::vector<std::int64_t> ref(static_cast<std::size_t>(nodes), kInf);
  {
    std::set<std::pair<std::int64_t, std::int64_t>> pq;
    ref[0] = 0;
    pq.insert({0, 0});
    while (!pq.empty()) {
      const auto [d, u] = *pq.begin();
      pq.erase(pq.begin());
      if (d > ref[static_cast<std::size_t>(u)]) continue;
      for (const Edge& e : adj[static_cast<std::size_t>(u)]) {
        if (d + e.weight < ref[static_cast<std::size_t>(e.to)]) {
          ref[static_cast<std::size_t>(e.to)] = d + e.weight;
          pq.insert({d + e.weight, e.to});
        }
      }
    }
  }

  // Dijkstra over the implicitly batched PQ.  PQ keys pack (dist, node).
  batcher::rt::Scheduler scheduler(workers);
  batcher::ds::BatchedPriorityQueue pq(scheduler);
  std::vector<std::atomic<std::int64_t>> dist(static_cast<std::size_t>(nodes));
  for (auto& d : dist) d.store(kInf, std::memory_order_relaxed);
  dist[0].store(0);
  pq.insert_unsafe(0);

  batcher::Stopwatch sw;
  std::int64_t settled = 0;
  scheduler.run([&] {
    while (true) {
      const auto top = pq.extract_min();
      if (!top.has_value()) break;
      const std::int64_t d = *top / nodes;
      const auto u = static_cast<std::size_t>(*top % nodes);
      if (d > dist[u].load(std::memory_order_relaxed)) continue;  // stale
      ++settled;
      auto& out = adj[u];
      batcher::rt::parallel_for(
          0, static_cast<std::int64_t>(out.size()),
          [&](std::int64_t i) {
            const Edge& e = out[static_cast<std::size_t>(i)];
            const std::int64_t nd = d + e.weight;
            auto& slot = dist[static_cast<std::size_t>(e.to)];
            std::int64_t cur = slot.load(std::memory_order_relaxed);
            while (nd < cur && !slot.compare_exchange_weak(cur, nd)) {
            }
            if (slot.load(std::memory_order_relaxed) == nd) {
              pq.insert(nd * nodes + e.to);  // implicitly batched
            }
          },
          /*grain=*/8);
    }
  });
  const double secs = sw.elapsed_seconds();

  std::int64_t mismatches = 0;
  std::int64_t reachable = 0;
  for (std::size_t v = 0; v < static_cast<std::size_t>(nodes); ++v) {
    if (ref[v] < kInf) ++reachable;
    if (dist[v].load() != ref[v]) ++mismatches;
  }
  const auto stats = pq.batcher().stats();
  std::printf("sssp: %lld nodes, %lld edges, %u workers\n",
              static_cast<long long>(nodes), static_cast<long long>(edges),
              workers);
  std::printf("  settled           : %lld vertices (%lld reachable)\n",
              static_cast<long long>(settled), static_cast<long long>(reachable));
  std::printf("  time              : %.3fs\n", secs);
  std::printf("  PQ batches        : %llu (mean size %.2f)\n",
              static_cast<unsigned long long>(stats.batches_launched),
              stats.mean_batch_size());
  std::printf("  verification      : %s (%lld mismatches)\n",
              mismatches == 0 ? "OK" : "FAILED",
              static_cast<long long>(mismatches));
  return mismatches == 0 ? 0 : 1;
}
