// skiplist_insert: the paper's §7 experiment as a standalone application.
//
//   $ ./skiplist_insert [initial_size] [inserts] [workers] [keys_per_record]
//
// Pre-populates a batched skip list, then times a parallel insertion phase
// where each BATCHIFY call carries `keys_per_record` insertion records
// (default 100, as in the paper), and compares against the plain sequential
// skip list on the identical key stream.
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "concurrent/seq_skiplist.hpp"
#include "ds/batched_skiplist.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"
#include "support/rng.hpp"
#include "support/timing.hpp"

int main(int argc, char** argv) {
  const std::int64_t initial = argc > 1 ? std::atoll(argv[1]) : 100000;
  const std::int64_t inserts = argc > 2 ? std::atoll(argv[2]) : 100000;
  const unsigned workers = argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 4;
  const std::int64_t per_record = argc > 4 ? std::atoll(argv[4]) : 100;

  batcher::Xoshiro256 rng(99);
  std::vector<std::int64_t> init_keys(static_cast<std::size_t>(initial));
  for (auto& k : init_keys) k = static_cast<std::int64_t>(rng.next_below(1ull << 40));
  std::vector<std::int64_t> keys(static_cast<std::size_t>(inserts));
  for (auto& k : keys) k = static_cast<std::int64_t>(rng.next_below(1ull << 40));

  // Sequential baseline (the paper's SEQ line).
  double seq_secs;
  {
    batcher::conc::SeqSkipList seq;
    for (auto k : init_keys) seq.insert(k);
    batcher::Stopwatch sw;
    for (auto k : keys) seq.insert(k);
    seq_secs = sw.elapsed_seconds();
  }

  // BATCHER (the paper's BAT line).
  batcher::rt::Scheduler scheduler(workers);
  batcher::ds::BatchedSkipList list(scheduler);
  for (auto k : init_keys) list.insert_unsafe(k);

  const std::int64_t calls = inserts / per_record;
  batcher::Stopwatch sw;
  scheduler.run([&] {
    batcher::rt::parallel_for(
        0, calls,
        [&](std::int64_t c) {
          list.multi_insert(std::span<const std::int64_t>(
              keys.data() + c * per_record, static_cast<std::size_t>(per_record)));
        },
        /*grain=*/1);
  });
  const double bat_secs = sw.elapsed_seconds();

  const auto stats = list.batcher().stats();
  std::printf("skiplist_insert: initial=%lld inserts=%lld workers=%u "
              "keys/record=%lld\n",
              static_cast<long long>(initial), static_cast<long long>(inserts),
              workers, static_cast<long long>(per_record));
  std::printf("  SEQ: %.3fs (%.2f Minserts/s)\n", seq_secs,
              static_cast<double>(inserts) / seq_secs / 1e6);
  std::printf("  BAT: %.3fs (%.2f Minserts/s), %llu batches, mean size %.2f\n",
              bat_secs, static_cast<double>(inserts) / bat_secs / 1e6,
              static_cast<unsigned long long>(stats.batches_launched),
              stats.mean_batch_size());
  std::printf("  structure check   : %s, %zu elements\n",
              list.check_invariants() ? "OK" : "VIOLATED", list.size_unsafe());
  return list.check_invariants() ? 0 : 1;
}
