// race_detector: the introduction's "cannot be explicitly batched" scenario.
//
// An on-the-fly race detector (Mellor-Crummey'91; SP-order of Bender et
// al.'04) must update a series-parallel-maintenance structure at every fork
// and join *before control flow continues*, so the program cannot be
// restructured to group those updates into explicit batches — but implicit
// batching handles them transparently.
//
// This example maintains the *English ordering* of the SP-parse tree in an
// implicitly batched order-maintenance list (src/ds/batched_om.hpp): every
// task receives an OM position at its fork, such that positions enumerate
// tasks in left-to-right serial execution order.  SP-order race detection
// asks `precedes` queries against exactly this list.  After the run we
// verify the maintained order against the analytically known serial order.
//
//   $ ./race_detector [depth] [workers]
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "ds/batched_om.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"

namespace {

using OM = batcher::ds::BatchedOrderMaintenance;

struct Detector {
  OM order;  // English-order SP-maintenance list
  std::mutex log_mutex;
  // (serial rank, OM handle) pairs collected at the leaves.
  std::vector<std::pair<std::uint64_t, OM::Handle>> leaves;

  explicit Detector(batcher::rt::Scheduler& sched) : order(sched) {}
};

// Executes a binary fork/join computation.  `pos` is this task's position in
// the English order; `lo`/`hi` delimit the range of serial leaf ranks this
// subtree covers (left subtree first — the serial execution order).
void compute(Detector& det, OM::Handle pos, std::uint64_t lo, std::uint64_t hi,
             int depth) {
  if (depth <= 0 || hi - lo == 1) {
    std::lock_guard<std::mutex> lock(det.log_mutex);
    det.leaves.emplace_back(lo, pos);
    return;
  }
  // Fork event: allocate English-order positions for both children before
  // control flow continues (the race-detector constraint).  insert_after
  // prepends, so insert the RIGHT child's position first; the left child's
  // position then lands before it.
  const OM::Handle right_pos = det.order.insert_after(pos);
  const OM::Handle left_pos = det.order.insert_after(pos);
  const std::uint64_t mid = lo + (hi - lo) / 2;
  batcher::rt::parallel_invoke(
      [&] { compute(det, left_pos, lo, mid, depth - 1); },
      [&] { compute(det, right_pos, mid, hi, depth - 1); });
}

}  // namespace

int main(int argc, char** argv) {
  const int depth = argc > 1 ? std::atoi(argv[1]) : 10;
  const unsigned workers = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 4;

  batcher::rt::Scheduler scheduler(workers);
  Detector det(scheduler);

  const std::uint64_t span = std::uint64_t{1} << depth;
  scheduler.run([&] { compute(det, det.order.base(), 0, span, depth); });

  // Verification: OM order must agree with serial leaf ranks on every pair.
  std::sort(det.leaves.begin(), det.leaves.end());
  std::uint64_t violations = 0;
  for (std::size_t i = 1; i < det.leaves.size(); ++i) {
    if (!det.order.precedes_unsafe(det.leaves[i - 1].second,
                                   det.leaves[i].second)) {
      ++violations;
    }
  }
  const auto stats = det.order.batcher().stats();
  std::printf("race_detector: depth-%d fork/join SP-maintenance on %u workers\n",
              depth, workers);
  std::printf("  leaves            : %zu\n", det.leaves.size());
  std::printf("  OM elements       : %zu (relabels: %llu)\n",
              det.order.size_unsafe(),
              static_cast<unsigned long long>(det.order.relabels_unsafe()));
  std::printf("  label batches     : %llu (mean size %.2f)\n",
              static_cast<unsigned long long>(stats.batches_launched),
              stats.mean_batch_size());
  std::printf("  structure check   : %s\n",
              det.order.check_invariants() ? "OK" : "VIOLATED");
  std::printf("  SP-order verdict  : %s (%llu violations)\n",
              violations == 0 ? "OK" : "FAILED",
              static_cast<unsigned long long>(violations));
  return (violations == 0 && det.order.check_invariants()) ? 0 : 1;
}
