// histogram: classic shared-aggregation workload on the implicitly batched
// hash map — every parallel task does a read-modify-write (`update_add`) on a
// shared table, the access pattern that wrecks lock-based maps under
// contention and that implicit batching turns into per-bucket sequential
// sweeps.
//
//   $ ./histogram [samples] [bins] [workers]
//
// Verified against a sequentially computed histogram of the same draws.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "ds/batched_hashmap.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"
#include "support/rng.hpp"
#include "support/timing.hpp"

int main(int argc, char** argv) {
  const std::int64_t samples = argc > 1 ? std::atoll(argv[1]) : 500000;
  const std::int64_t bins = argc > 2 ? std::atoll(argv[2]) : 256;
  const unsigned workers = argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 4;

  // Pre-draw the samples (zipf-ish skew: low bins are hot, stressing
  // same-key contention inside batches).
  batcher::Xoshiro256 rng(555);
  std::vector<std::int64_t> draws(static_cast<std::size_t>(samples));
  for (auto& d : draws) {
    const auto a = rng.next_below(static_cast<std::uint64_t>(bins));
    const auto b = rng.next_below(static_cast<std::uint64_t>(bins));
    d = static_cast<std::int64_t>(a < b ? a : b);  // skew toward small bins
  }

  std::vector<std::int64_t> reference(static_cast<std::size_t>(bins), 0);
  for (auto d : draws) ++reference[static_cast<std::size_t>(d)];

  batcher::rt::Scheduler scheduler(workers);
  batcher::ds::BatchedHashMap histogram(scheduler);

  batcher::Stopwatch sw;
  scheduler.run([&] {
    batcher::rt::parallel_for(
        0, samples,
        [&](std::int64_t i) {
          histogram.update_add(draws[static_cast<std::size_t>(i)], 1);
        },
        /*grain=*/64);
  });
  const double secs = sw.elapsed_seconds();

  std::int64_t mismatches = 0;
  for (std::int64_t b = 0; b < bins; ++b) {
    const auto got = histogram.get_unsafe(b);
    const std::int64_t expected = reference[static_cast<std::size_t>(b)];
    if ((expected == 0) != !got.has_value() ||
        (got.has_value() && *got != expected)) {
      ++mismatches;
    }
  }

  const auto stats = histogram.batcher().stats();
  std::printf("histogram: %lld samples into %lld bins on %u workers\n",
              static_cast<long long>(samples), static_cast<long long>(bins),
              workers);
  std::printf("  time              : %.3fs (%.2f Mupdates/s)\n", secs,
              static_cast<double>(samples) / secs / 1e6);
  std::printf("  batches           : %llu (mean size %.2f)\n",
              static_cast<unsigned long long>(stats.batches_launched),
              stats.mean_batch_size());
  std::printf("  verification      : %s (%lld bins mismatched)\n",
              mismatches == 0 ? "OK" : "FAILED",
              static_cast<long long>(mismatches));
  return mismatches == 0 ? 0 : 1;
}
