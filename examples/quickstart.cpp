// Quickstart: the paper's Figure 1/2 — n parallel increments to a shared
// counter through implicit batching.
//
//   $ ./quickstart [n] [workers]
//
// What to look at:
//  * the program code is an ordinary parallel loop making what looks like a
//    blocking call; no batching is visible to the algorithm programmer;
//  * the batched counter implementation (src/ds/batched_counter.hpp) is four
//    lines of prefix sums and contains no locks or atomics;
//  * the stats show how the scheduler grouped the calls into batches.
#include <cstdio>
#include <cstdlib>

#include "ds/batched_counter.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"

int main(int argc, char** argv) {
  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 100000;
  const unsigned workers = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 4;

  batcher::rt::Scheduler scheduler(workers);
  batcher::ds::BatchedCounter counter(scheduler);

  scheduler.run([&] {
    // Figure 1: parallel_for i = 1 to n do INCREMENT(A[i]).
    batcher::rt::parallel_for(0, n, [&](std::int64_t i) {
      const std::int64_t seen = counter.increment(i % 3);
      (void)seen;  // each call returns a linearizable post-increment value
    });
  });

  const auto stats = counter.batcher().stats();
  std::printf("quickstart: %lld increments on %u workers\n",
              static_cast<long long>(n), workers);
  std::printf("  final value       : %lld (expected %lld)\n",
              static_cast<long long>(counter.value_unsafe()),
              static_cast<long long>(n / 3 * 3 + (n % 3 > 1 ? 1 : 0)));
  std::printf("  batches launched  : %llu\n",
              static_cast<unsigned long long>(stats.batches_launched));
  std::printf("  mean batch size   : %.2f\n", stats.mean_batch_size());
  std::printf("  largest batch     : %llu (Invariant 2 caps this at P=%u)\n",
              static_cast<unsigned long long>(stats.max_batch_size), workers);
  return 0;
}
