// MICRO — google-benchmark microbenchmarks for the substrate pieces the
// paper's constants hide: deque operations, prefix sums, parallel sort,
// batchify round-trips, and skip-list primitives.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "concurrent/seq_skiplist.hpp"
#include "ds/batched_counter.hpp"
#include "ds/batched_skiplist.hpp"
#include "parallel/prefix_sum.hpp"
#include "parallel/sort.hpp"
#include "runtime/api.hpp"
#include "runtime/deque.hpp"
#include "runtime/scheduler.hpp"
#include "support/rng.hpp"

namespace {

using namespace batcher;

void BM_DequePushPop(benchmark::State& state) {
  rt::WorkDeque deque;
  auto* fake = reinterpret_cast<rt::Task*>(0x40);
  for (auto _ : state) {
    deque.push(fake);
    benchmark::DoNotOptimize(deque.pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DequePushPop);

void BM_DequeSteal(benchmark::State& state) {
  rt::WorkDeque deque;
  auto* fake = reinterpret_cast<rt::Task*>(0x40);
  for (auto _ : state) {
    deque.push(fake);
    benchmark::DoNotOptimize(deque.steal());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DequeSteal);

void BM_PrefixSumsSerialBaseline(benchmark::State& state) {
  const auto n = state.range(0);
  std::vector<std::int64_t> data(static_cast<std::size_t>(n), 1);
  for (auto _ : state) {
    for (std::int64_t i = 1; i < n; ++i) {
      data[static_cast<std::size_t>(i)] += data[static_cast<std::size_t>(i - 1)];
    }
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PrefixSumsSerialBaseline)->Arg(64)->Arg(4096)->Arg(262144);

void BM_PrefixSumsBlocked(benchmark::State& state) {
  const auto n = state.range(0);
  rt::Scheduler sched(4);
  std::vector<std::int64_t> data(static_cast<std::size_t>(n), 1);
  for (auto _ : state) {
    sched.run([&] { par::prefix_sums(data.data(), n); });
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PrefixSumsBlocked)->Arg(64)->Arg(4096)->Arg(262144);

void BM_ParallelSort(benchmark::State& state) {
  const auto n = state.range(0);
  rt::Scheduler sched(4);
  const auto base = [&] {
    Xoshiro256 rng(1);
    std::vector<std::int64_t> v(static_cast<std::size_t>(n));
    for (auto& x : v) x = static_cast<std::int64_t>(rng.next());
    return v;
  }();
  for (auto _ : state) {
    auto copy = base;
    sched.run([&] { par::parallel_sort(copy); });
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelSort)->Arg(4096)->Arg(131072);

// The batch-setup overhead the analysis amortizes: one full batchify round
// trip (op record -> pending array -> launch -> BOP -> done) with zero
// contention, i.e. a singleton batch.
void BM_BatchifyRoundTripP1(benchmark::State& state) {
  rt::Scheduler sched(1);
  ds::BatchedCounter counter(sched);
  for (auto _ : state) {
    state.PauseTiming();
    state.ResumeTiming();
    sched.run([&] { counter.increment(1); });
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BatchifyRoundTripP1);

void BM_BatchifyThroughputP4(benchmark::State& state) {
  rt::Scheduler sched(4);
  ds::BatchedCounter counter(sched);
  constexpr std::int64_t kOpsPerIter = 4096;
  for (auto _ : state) {
    sched.run([&] {
      rt::parallel_for(0, kOpsPerIter,
                       [&](std::int64_t) { counter.increment(1); },
                       /*grain=*/16);
    });
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerIter);
}
BENCHMARK(BM_BatchifyThroughputP4);

void BM_SeqSkipListInsert(benchmark::State& state) {
  const auto initial = state.range(0);
  conc::SeqSkipList list;
  Xoshiro256 rng(3);
  for (std::int64_t i = 0; i < initial; ++i) {
    list.insert(static_cast<std::int64_t>(rng.next()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.insert(static_cast<std::int64_t>(rng.next())));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SeqSkipListInsert)->Arg(1024)->Arg(262144);

void BM_BatchedSkipListBop(benchmark::State& state) {
  // One size-64 batched insert via run_batch (the paper's step-2-parallel
  // BOP), measured directly.
  const auto initial = state.range(0);
  rt::Scheduler sched(4);
  ds::BatchedSkipList list(sched);
  Xoshiro256 rng(3);
  for (std::int64_t i = 0; i < initial; ++i) {
    list.insert_unsafe(static_cast<std::int64_t>(rng.next()));
  }
  for (auto _ : state) {
    std::vector<std::int64_t> keys(64);
    for (auto& k : keys) k = static_cast<std::int64_t>(rng.next());
    ds::BatchedSkipList::Op op;
    op.kind = ds::BatchedSkipList::Kind::MultiInsert;
    op.keys = keys.data();
    op.num_keys = keys.size();
    OpRecordBase* ops[1] = {&op};
    list.run_batch(ops, 1);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_BatchedSkipListBop)->Arg(1024)->Arg(262144);

}  // namespace

BENCHMARK_MAIN();
