// MICRO — google-benchmark microbenchmarks for the substrate pieces the
// paper's constants hide: deque operations, prefix sums, parallel sort,
// batchify round-trips, and skip-list primitives.
//
// Provides its own main (instead of BENCHMARK_MAIN) so that (a) smoke mode
// caps run time for CI, and (b) every run's per-iteration real time lands in
// BENCH_micro.json via the bench reporter, optionally with a trace.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "concurrent/seq_skiplist.hpp"
#include "ds/batched_counter.hpp"
#include "ds/batched_skiplist.hpp"
#include "parallel/prefix_sum.hpp"
#include "parallel/sort.hpp"
#include "runtime/api.hpp"
#include "runtime/deque.hpp"
#include "runtime/scheduler.hpp"
#include "support/rng.hpp"

namespace {

using namespace batcher;

void BM_DequePushPop(benchmark::State& state) {
  rt::WorkDeque deque;
  auto* fake = reinterpret_cast<rt::Task*>(0x40);
  for (auto _ : state) {
    deque.push(fake);
    benchmark::DoNotOptimize(deque.pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DequePushPop);

void BM_DequeSteal(benchmark::State& state) {
  rt::WorkDeque deque;
  auto* fake = reinterpret_cast<rt::Task*>(0x40);
  for (auto _ : state) {
    deque.push(fake);
    benchmark::DoNotOptimize(deque.steal());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DequeSteal);

void BM_PrefixSumsSerialBaseline(benchmark::State& state) {
  const auto n = state.range(0);
  std::vector<std::int64_t> data(static_cast<std::size_t>(n), 1);
  for (auto _ : state) {
    for (std::int64_t i = 1; i < n; ++i) {
      data[static_cast<std::size_t>(i)] += data[static_cast<std::size_t>(i - 1)];
    }
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PrefixSumsSerialBaseline)->Arg(64)->Arg(4096)->Arg(262144);

void BM_PrefixSumsBlocked(benchmark::State& state) {
  const auto n = state.range(0);
  rt::Scheduler sched(4);
  std::vector<std::int64_t> data(static_cast<std::size_t>(n), 1);
  for (auto _ : state) {
    sched.run([&] { par::prefix_sums(data.data(), n); });
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PrefixSumsBlocked)->Arg(64)->Arg(4096)->Arg(262144);

void BM_ParallelSort(benchmark::State& state) {
  const auto n = state.range(0);
  rt::Scheduler sched(4);
  const auto base = [&] {
    Xoshiro256 rng(1);
    std::vector<std::int64_t> v(static_cast<std::size_t>(n));
    for (auto& x : v) x = static_cast<std::int64_t>(rng.next());
    return v;
  }();
  for (auto _ : state) {
    auto copy = base;
    sched.run([&] { par::parallel_sort(copy); });
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelSort)->Arg(4096)->Arg(131072);

// The allocator pressure behind every fork: a pure spawn/join storm where
// each leaf of a grain-1 parallel_for is its own task frame, so one iteration
// is ~kTasks frame allocate/free round trips.  P=1 isolates the local
// alloc/free fast path; P=4 adds steals, whose frames free remotely.
void BM_SpawnJoinStorm(benchmark::State& state) {
  const auto workers = static_cast<unsigned>(state.range(0));
  rt::Scheduler sched(workers);
  constexpr std::int64_t kTasks = 4096;
  for (auto _ : state) {
    sched.run([&] {
      rt::parallel_for(
          0, kTasks, [](std::int64_t i) { benchmark::DoNotOptimize(i); },
          /*grain=*/1);
    });
  }
  state.SetItemsProcessed(state.iterations() * kTasks);
}
BENCHMARK(BM_SpawnJoinStorm)->Arg(1)->Arg(4);

// The batch-setup overhead the analysis amortizes: one full batchify round
// trip (op record -> pending array -> launch -> BOP -> done) with zero
// contention, i.e. a singleton batch.
void BM_BatchifyRoundTripP1(benchmark::State& state) {
  rt::Scheduler sched(1);
  ds::BatchedCounter counter(sched);
  for (auto _ : state) {
    state.PauseTiming();
    state.ResumeTiming();
    sched.run([&] { counter.increment(1); });
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BatchifyRoundTripP1);

void BM_BatchifyThroughputP4(benchmark::State& state) {
  rt::Scheduler sched(4);
  ds::BatchedCounter counter(sched);
  constexpr std::int64_t kOpsPerIter = 4096;
  for (auto _ : state) {
    sched.run([&] {
      rt::parallel_for(0, kOpsPerIter,
                       [&](std::int64_t) { counter.increment(1); },
                       /*grain=*/16);
    });
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerIter);
}
BENCHMARK(BM_BatchifyThroughputP4);

void BM_SeqSkipListInsert(benchmark::State& state) {
  const auto initial = state.range(0);
  conc::SeqSkipList list;
  Xoshiro256 rng(3);
  for (std::int64_t i = 0; i < initial; ++i) {
    list.insert(static_cast<std::int64_t>(rng.next()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.insert(static_cast<std::int64_t>(rng.next())));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SeqSkipListInsert)->Arg(1024)->Arg(262144);

void BM_BatchedSkipListBop(benchmark::State& state) {
  // One size-64 batched insert via run_batch (the paper's step-2-parallel
  // BOP), measured directly.
  const auto initial = state.range(0);
  rt::Scheduler sched(4);
  ds::BatchedSkipList list(sched);
  Xoshiro256 rng(3);
  for (std::int64_t i = 0; i < initial; ++i) {
    list.insert_unsafe(static_cast<std::int64_t>(rng.next()));
  }
  for (auto _ : state) {
    std::vector<std::int64_t> keys(64);
    for (auto& k : keys) k = static_cast<std::int64_t>(rng.next());
    ds::BatchedSkipList::Op op;
    op.kind = ds::BatchedSkipList::Kind::MultiInsert;
    op.keys = keys.data();
    op.num_keys = keys.size();
    OpRecordBase* ops[1] = {&op};
    list.run_batch(ops, 1);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_BatchedSkipListBop)->Arg(1024)->Arg(262144);

// Console output as usual, plus one Report metric per finished run.
class RecordingReporter : public benchmark::ConsoleReporter {
 public:
  explicit RecordingReporter(batcher::bench::Report& report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      report_.metric(run.benchmark_name() + "/real_time",
                     run.GetAdjustedRealTime(), time_unit(run.time_unit));
      report_.metric(run.benchmark_name() + "/iterations",
                     static_cast<double>(run.iterations), "1");
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        report_.metric(run.benchmark_name() + "/items_per_second",
                       items->second.value, "1/s");
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  static const char* time_unit(benchmark::TimeUnit u) {
    switch (u) {
      case benchmark::kNanosecond: return "ns";
      case benchmark::kMicrosecond: return "us";
      case benchmark::kMillisecond: return "ms";
      case benchmark::kSecond: return "s";
    }
    return "ns";
  }

  batcher::bench::Report& report_;
};

}  // namespace

int main(int argc, char** argv) {
  namespace bench = batcher::bench;

  std::vector<char*> args(argv, argv + argc);
  std::string min_time = "--benchmark_min_time=0.01";
  if (bench::smoke()) args.push_back(min_time.data());
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;

  bench::Report report("micro");
  report.config("harness", "google-benchmark");
  report.config("smoke_min_time_s", 0.01);
  bench::TraceScope trace(report);

  RecordingReporter reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  // One fixed-size spawn/join storm per worker count, with destructor-exact
  // scheduler stats: these rows carry the frame-pool counters the validator
  // reconciles (frames_allocated == frames_freed, remote_frees bounded).
  constexpr std::int64_t kStormTasks = 4096;
  const int storm_rounds = static_cast<int>(bench::scaled(64, 8));
  for (const unsigned workers : {1u, 4u}) {
    rt::StatsSnapshot final_stats;
    {
      rt::Scheduler sched(workers);
      sched.export_final_stats(&final_stats);
      for (int r = 0; r < storm_rounds; ++r) {
        sched.run([&] {
          rt::parallel_for(
              0, kStormTasks,
              [](std::int64_t i) { benchmark::DoNotOptimize(i); },
              /*grain=*/1);
        });
      }
    }
    report.scheduler_stats("spawn_join_storm/P=" + std::to_string(workers),
                           final_stats);
  }

  return report.write() ? 0 : 1;
}
