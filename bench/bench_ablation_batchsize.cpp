// ABL-batch — ablation of the launch policy.
//
// The paper launches a batch the moment any operation is pending ("this
// decision is important for the theoretical analysis", §3).  The obvious
// alternative is to accrue k operations before launching.  This harness
// sweeps the accrual threshold on simulated processors, and also compares
// the real runtime's sequential vs parallel LAUNCHBATCH setup (§4/Fig. 4,
// §7 prototype note).
#include <cstdio>

#include "bench/common.hpp"
#include "ds/batched_counter.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"
#include "sim/cost_model.hpp"
#include "sim/dag.hpp"
#include "sim/sim_batcher.hpp"

namespace {
namespace bench = batcher::bench;
using batcher::Stopwatch;
using namespace batcher::sim;
}  // namespace

int main() {
  bench::header("ABL-batch",
                "launch policy ablation: launch-immediately (paper) vs "
                "accrue-k (simulated), and sequential vs parallel batch "
                "setup (real)");

  bench::Report report("ablation_batchsize");
  bench::TraceScope trace(report);
  bench::note("simulated, P=8, skip-list cost model, 4096 ops");
  bench::row("%-12s %-10s %12s %12s %10s", "min batch", "max wait", "makespan",
             "batches", "mean size");
  Dag core = build_parallel_loop_with_ds(4096, 1, 1, 1);
  for (std::int64_t min_batch : {1, 2, 4, 8}) {
    for (std::int64_t max_wait : {16, 256}) {
      SkipListCostModel model(1 << 20);
      BatcherSimConfig cfg;
      cfg.workers = 8;
      cfg.min_batch_ops = min_batch;
      cfg.max_wait_steps = max_wait;
      cfg.seed = 17;
      const SimResult res = simulate_batcher(core, model, cfg);
      bench::row("%-12lld %-10lld %12lld %12lld %10.2f",
                 static_cast<long long>(min_batch),
                 static_cast<long long>(max_wait),
                 static_cast<long long>(res.makespan),
                 static_cast<long long>(res.batches), res.mean_batch_size());
      report.metric("sim_makespan/min_batch=" + std::to_string(min_batch) +
                        "/max_wait=" + std::to_string(max_wait),
                    static_cast<double>(res.makespan), "steps");
    }
  }
  bench::note("launch-immediately is competitive and never deadlocks; "
              "accruing helps only when per-batch overhead dominates and "
              "hurts tail latency (visible at low parallelism)");

  bench::note("real runtime, P=4: LAUNCHBATCH setup policy (Fig. 4)");
  bench::row("%-12s %12s", "setup", "Mincs/s");
  const std::int64_t kN = bench::scaled(100000, 10000);
  report.config("n", static_cast<std::uint64_t>(kN));
  for (auto setup : {batcher::Batcher::SetupPolicy::Sequential,
                     batcher::Batcher::SetupPolicy::Parallel}) {
    batcher::rt::Scheduler sched(4);
    batcher::ds::BatchedCounter counter(sched, 0, setup);
    Stopwatch sw;
    sched.run([&] {
      batcher::rt::parallel_for(0, kN,
                                [&](std::int64_t) { counter.increment(1); },
                                /*grain=*/64);
    });
    const double secs = sw.elapsed_seconds();
    const char* label =
        setup == batcher::Batcher::SetupPolicy::Sequential ? "SEQUENTIAL"
                                                           : "PARALLEL";
    bench::row("%-12s %12.3f", label, bench::mops(kN, secs));
    report.metric(std::string("mincs_per_s/setup=") + label,
                  bench::mops(kN, secs) * 1e6, "1/s");
    report.batcher_stats(std::string("setup=") + label,
                         counter.batcher().stats());
  }
  bench::note("paper's prototype used the sequential path for 8 cores (§7); "
              "the parallel path matches Fig. 4 and wins for large P");
  report.write();
  std::printf("\n");
  return 0;
}
