// ABL-steal — ablation of the alternating-steal policy.
//
// The paper's analysis needs free workers to split their steal attempts
// between core and batch deques (Lemmas 9/10 both consume "half the free
// steals").  This harness compares the paper's alternating policy against
// core-only, batch-only, and uniform-random stealing on workloads that favor
// each side, on simulated processors.
#include <cstdio>

#include "bench/common.hpp"
#include "sim/cost_model.hpp"
#include "sim/dag.hpp"
#include "sim/sim_batcher.hpp"

namespace {
namespace bench = batcher::bench;
using namespace batcher::sim;

const char* policy_name(StealPolicy p) {
  switch (p) {
    case StealPolicy::Alternating: return "ALTERNATING";
    case StealPolicy::CoreOnly: return "CORE-ONLY";
    case StealPolicy::BatchOnly: return "BATCH-ONLY";
    default: return "UNIFORM";
  }
}

void sweep(const char* label, const Dag& core, std::int64_t structure_size,
           unsigned workers, bench::Report& report) {
  bench::note("%s (P=%u)", label, workers);
  for (StealPolicy policy :
       {StealPolicy::Alternating, StealPolicy::CoreOnly, StealPolicy::BatchOnly,
        StealPolicy::UniformRandom}) {
    SkipListCostModel model(structure_size);
    BatcherSimConfig cfg;
    cfg.workers = workers;
    cfg.policy = policy;
    cfg.seed = 13;
    const SimResult res = simulate_batcher(core, model, cfg);
    bench::row("%-13s %12lld %14lld %12lld", policy_name(policy),
               static_cast<long long>(res.makespan),
               static_cast<long long>(res.steal_attempts),
               static_cast<long long>(res.trapped_steps));
    report.metric(std::string("sim_makespan/") + label + "/" +
                      policy_name(policy),
                  static_cast<double>(res.makespan), "steps");
  }
}

}  // namespace

int main() {
  bench::header("ABL-steal",
                "steal-policy ablation: the paper's alternating policy vs "
                "single-sided and random policies (simulated)");
  bench::Report report("ablation_steal");
  bench::row("%-13s %12s %14s %12s", "policy", "makespan", "steal att.",
             "trapped");

  // DS-heavy: almost all work is inside batches.
  Dag ds_heavy = build_parallel_loop_with_ds(4096, 1, 1, 1);
  sweep("ds-heavy", ds_heavy, 1 << 22, 8, report);

  // Core-heavy: long per-iteration chains dwarf the ds work.
  Dag core_heavy = build_parallel_loop_with_ds(512, 64, 64, 1);
  sweep("core-heavy", core_heavy, 1 << 6, 8, report);

  // Mixed at higher P.
  Dag mixed = build_parallel_loop_with_ds(2048, 8, 8, 1);
  sweep("mixed", mixed, 1 << 14, 16, report);

  bench::note("expected: single-sided policies win their home turf but lose "
              "badly on the other; alternating stays near the best of both "
              "(this is why Lemmas 9/10 need it)");
  report.write();
  std::printf("\n");
  return 0;
}
