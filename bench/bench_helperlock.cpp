// HL-comp — BATCHER vs helper locks (Agrawal, Leiserson & Sukha, PPoPP'10).
//
// §6 of the paper: "Conceptually, one can use this [helper-lock] mechanism to
// execute batches; however, directly applying the analysis of [1] leads to
// worse completion time bounds compared to using BATCHER."  A helper lock
// turns each data-structure operation into its own parallel critical section
// that blocked workers help complete — parallelism inside an operation, but
// no batching across operations, so each op pays a full critical-section
// span.  Simulated here as the BATCHER machinery with a 1-op collection cap.
#include <cstdio>

#include "bench/common.hpp"
#include "sim/cost_model.hpp"
#include "sim/dag.hpp"
#include "sim/sim_batcher.hpp"

namespace {
namespace bench = batcher::bench;
using namespace batcher::sim;
}  // namespace

int main() {
  bench::header("HL-comp",
                "BATCHER vs helper-lock execution of the same workload "
                "(simulated; paper §6 comparison)");
  bench::note("4096 ds ops in a parallel loop; skip-list cost, size 1M");
  bench::Report report("helperlock");
  bench::row("%-6s %-12s %12s %10s %12s %8s", "P", "variant", "makespan",
             "speedup", "mean batch", "Lem2");

  Dag core = build_parallel_loop_with_ds(4096, 1, 1, 1);
  std::int64_t base_b = 0, base_h = 0;
  for (unsigned workers : {1u, 2u, 4u, 8u, 16u}) {
    SkipListCostModel mb(1 << 20), mh(1 << 20);
    BatcherSimConfig bcfg;
    bcfg.workers = workers;
    const SimResult rb = simulate_batcher(core, mb, bcfg);

    BatcherSimConfig hcfg;
    hcfg.workers = workers;
    hcfg.max_ops_per_batch = 1;  // helper lock: one critical section at a time
    const SimResult rh = simulate_batcher(core, mh, hcfg);

    if (workers == 1) {
      base_b = rb.makespan;
      base_h = rh.makespan;
    }
    bench::row("%-6u %-12s %12lld %10.2f %12.2f %8lld", workers, "BATCHER",
               static_cast<long long>(rb.makespan),
               static_cast<double>(base_b) / static_cast<double>(rb.makespan),
               rb.mean_batch_size(),
               static_cast<long long>(rb.max_batches_waited));
    bench::row("%-6u %-12s %12lld %10.2f %12.2f %8lld", workers, "HELPERLOCK",
               static_cast<long long>(rh.makespan),
               static_cast<double>(base_h) / static_cast<double>(rh.makespan),
               rh.mean_batch_size(),
               static_cast<long long>(rh.max_batches_waited));
    const std::string suffix = "/P=" + std::to_string(workers);
    report.metric("sim_makespan/BATCHER" + suffix,
                  static_cast<double>(rb.makespan), "steps");
    report.metric("sim_makespan/HELPERLOCK" + suffix,
                  static_cast<double>(rh.makespan), "steps");
  }
  bench::note("helper locks pay one full critical-section span per op (no "
              "amortization across ops) and lose the Lemma 2 guarantee: the "
              "Lem2 column is the max number of critical sections a blocked "
              "op waited for (BATCHER: provably <= 2)");
  report.write();
  std::printf("\n");
  return 0;
}
