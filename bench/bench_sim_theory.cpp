// THM1-sim — empirical check of Theorem 1:
//
//   E[T_P] = O( (T1 + W(n) + n·s(n))/P + m·s(n) + T∞ )
//
// For sweeps over data structure, n, m, and P, the harness reports the ratio
// makespan / bound.  The theorem predicts the ratio stays below a fixed
// constant across the whole table; watching where the ratio peaks also shows
// which regimes are scheduler-bound (m·s(n) term) vs work-bound.
#include <cstdio>
#include <memory>
#include <string>

#include "bench/common.hpp"
#include "sim/cost_model.hpp"
#include "sim/dag.hpp"
#include "sim/sim_batcher.hpp"

namespace {
namespace bench = batcher::bench;
using namespace batcher::sim;

struct ModelSpec {
  const char* name;
  std::int64_t structure_size;
};

std::unique_ptr<BatchCostModel> make_model(const std::string& name,
                                           std::int64_t size) {
  if (name == "counter") return std::make_unique<CounterCostModel>();
  if (name == "skiplist") return std::make_unique<SkipListCostModel>(size);
  return std::make_unique<SearchTreeCostModel>(size);
}

// W(n): n ops at worst-case per-op batch work; s(n): span of a size-P batch.
struct TheoryTerms {
  std::int64_t work;
  std::int64_t span;
};
TheoryTerms theory_terms(const std::string& name, std::int64_t size,
                         std::int64_t n, unsigned P) {
  auto model = make_model(name, size + n);  // final size is the worst case
  const WorkSpan per_p = model->batch_cost(static_cast<std::int64_t>(P));
  const WorkSpan per_1 = model->batch_cost(1);
  return TheoryTerms{n * per_1.work, per_p.span};
}

}  // namespace

int main() {
  bench::header("THM1-sim",
                "measured makespan vs the Theorem 1 bound "
                "(ratio must stay below a fixed constant)");
  bench::Report report("sim_theory");
  bench::row("%-10s %-7s %-7s %-4s %12s %12s %8s", "model", "n", "m", "P",
             "makespan", "bound", "ratio");

  const char* models[] = {"counter", "skiplist", "tree"};
  double max_ratio = 0;
  for (const char* model_name : models) {
    for (std::int64_t n : {1024, 4096}) {
      // Two dag shapes: parallel loop (m = 1) and chained iterations (m = 16
      // via 16 sequential ds nodes per leaf over n/16 leaves).
      for (std::int64_t m : {1, 16}) {
        Dag core = build_parallel_loop_with_ds(n / m, 2, 1, m);
        for (unsigned P : {2u, 8u, 16u}) {
          auto model = make_model(model_name, 1 << 16);
          BatcherSimConfig cfg;
          cfg.workers = P;
          cfg.seed = 3;
          const SimResult res = simulate_batcher(core, *model, cfg);

          const TheoryTerms tt = theory_terms(model_name, 1 << 16, n, P);
          const std::int64_t bound =
              (core.work() + tt.work + n * tt.span) /
                  static_cast<std::int64_t>(P) +
              core.max_ds_on_path() * tt.span + core.span();
          const double ratio = static_cast<double>(res.makespan) /
                               static_cast<double>(bound);
          if (ratio > max_ratio) max_ratio = ratio;
          report.metric(std::string("ratio/") + model_name +
                            "/n=" + std::to_string(n) +
                            "/m=" + std::to_string(core.max_ds_on_path()) +
                            "/P=" + std::to_string(P),
                        ratio, "ratio");
          bench::row("%-10s %-7lld %-7lld %-4u %12lld %12lld %8.2f",
                     model_name, static_cast<long long>(n),
                     static_cast<long long>(core.max_ds_on_path()), P,
                     static_cast<long long>(res.makespan),
                     static_cast<long long>(bound), ratio);
        }
      }
    }
  }
  bench::note("max ratio over the sweep: %.2f (Theorem 1 predicts a fixed "
              "constant; the absolute value depends on structural constants "
              "in the simulator's batch dags)",
              max_ratio);
  report.metric("max_ratio", max_ratio, "ratio");
  report.write();
  std::printf("\n");
  return 0;
}
