// T5-sparseop — the sparse-operation control-path A/B (DESIGN.md §11).
//
// Only K=2 lanes issue batched increments while the scheduler is sized at
// P >> K: every batch carries at most K ops, so the launch control path is
// the dominant cost.  The Fig. 4 scan policies pay Θ(P) per launch to walk
// the whole slot array; the announce-list policy pays O(batch).  Sweeping P
// with the workload held fixed separates the two: announce throughput stays
// ~flat while the scan policies degrade linearly in P.
//
// Reps are interleaved across policies (A/B/C, A/B/C, ...) with all three
// schedulers alive for the whole sweep, so OS noise lands on every variant
// evenly instead of biasing whichever ran last.
#include <cstdio>
#include <string>

#include "bench/common.hpp"
#include "ds/batched_counter.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"

namespace {
namespace bench = batcher::bench;
using batcher::Batcher;
using batcher::Stopwatch;

constexpr unsigned kLanes = 2;
const std::int64_t kOpsPerLane = bench::scaled(4000, 400);
const int kReps = bench::scaled(12, 3);

const char* policy_name(Batcher::SetupPolicy policy) {
  switch (policy) {
    case Batcher::SetupPolicy::Sequential: return "SEQUENTIAL";
    case Batcher::SetupPolicy::Parallel: return "PARALLEL";
    case Batcher::SetupPolicy::Announce: return "ANNOUNCE";
  }
  return "?";
}

// One policy's scheduler + counter, kept alive across interleaved reps.
struct Variant {
  Variant(unsigned workers, Batcher::SetupPolicy policy,
          batcher::rt::StatsSnapshot* stats_sink)
      : policy(policy), sched(workers), counter(sched, 0, policy) {
    sched.export_final_stats(stats_sink);
  }

  // One rep: kLanes lanes of sequential increments, the other P - kLanes
  // workers idle — the sparse-op regime.
  void rep() {
    Stopwatch sw;
    sched.run([&] {
      batcher::rt::parallel_for(
          0, static_cast<std::int64_t>(kLanes),
          [&](std::int64_t) {
            for (std::int64_t i = 0; i < kOpsPerLane; ++i) {
              counter.increment(1);
            }
          },
          /*grain=*/1);
    });
    seconds += sw.elapsed_seconds();
  }

  Batcher::SetupPolicy policy;
  batcher::rt::Scheduler sched;
  batcher::ds::BatchedCounter counter;
  double seconds = 0.0;
};

}  // namespace

int main() {
  bench::header("T5-sparseop",
                "K=2 sparse lanes vs P-sized scheduler: announce-list "
                "collect vs Fig. 4 scan (launch path O(batch) vs Theta(P))");
  bench::Report report("sparseop");
  report.config("lanes", static_cast<std::uint64_t>(kLanes));
  report.config("ops_per_lane", static_cast<std::uint64_t>(kOpsPerLane));
  report.config("reps", static_cast<std::uint64_t>(kReps));
  bench::TraceScope trace(report);

  bench::row("%-6s %-12s %12s %10s %10s %10s", "P", "policy", "ops/s",
             "batches", "empty", "chained");
  for (unsigned p : {4u, 8u, 16u, 32u}) {
    // Filled when each variant's scheduler joins its workers (end of the
    // inner scope); the per-P scheduler_stats rows — including the bound
    // ledger's measured work/span — are emitted after that point so the
    // frame-pool and critical-path totals are final.
    batcher::rt::StatsSnapshot final_stats[3];
    std::string labels[3];
    {
      Variant variants[] = {
          Variant(p, Batcher::SetupPolicy::Announce, &final_stats[0]),
          Variant(p, Batcher::SetupPolicy::Sequential, &final_stats[1]),
          Variant(p, Batcher::SetupPolicy::Parallel, &final_stats[2]),
      };
      for (int rep = 0; rep < kReps; ++rep) {
        for (Variant& v : variants) v.rep();
      }
      const std::int64_t total = static_cast<std::int64_t>(kLanes) *
                                 kOpsPerLane * kReps;
      int i = 0;
      for (Variant& v : variants) {
        if (v.counter.value_unsafe() != total) {
          std::printf("  !! counter mismatch (%s)\n", policy_name(v.policy));
        }
        const batcher::BatcherStats st = v.counter.batcher().stats();
        const double ops_per_s =
            v.seconds > 0 ? static_cast<double>(total) / v.seconds : 0.0;
        bench::row("%-6u %-12s %12.0f %10llu %10llu %10llu", p,
                   policy_name(v.policy), ops_per_s,
                   static_cast<unsigned long long>(st.batches_launched),
                   static_cast<unsigned long long>(st.empty_batches),
                   static_cast<unsigned long long>(st.chained_launches));
        const std::string suffix = std::string("/") + policy_name(v.policy) +
                                   "/P=" + std::to_string(p);
        report.metric("ops_per_s" + suffix, ops_per_s, "1/s");
        report.metric("batches_per_op" + suffix,
                      static_cast<double>(st.batches_launched) /
                          static_cast<double>(total));
        report.batcher_stats(policy_name(v.policy) +
                                 ("/P=" + std::to_string(p)),
                             st);
        labels[i++] = policy_name(v.policy) + ("/P=" + std::to_string(p));
      }
    }
    for (int i = 0; i < 3; ++i) {
      report.scheduler_stats(labels[i], final_stats[i]);
    }
  }
  bench::note("announce collect touches only announced slots, so its launch "
              "cost tracks the (tiny) batch, not P; the scan policies walk "
              "all P slots per launch and fall behind as P grows");
  report.write();
  std::printf("\n");
  return 0;
}
