// T8-service — the batched service front-end under open-loop traffic
// (DESIGN.md §15): K batched structures sharded behind a ShardRouter, driven
// by seeded arrival schedules at a configured rate, reported as per-request
// latency percentiles (p50/p99/p999) per arrival shape.
//
// Two sections:
//
//   1. SLO sweep: for each arrival shape (uniform, zipfian, flash-crowd) a
//      fresh scheduler serves hashmap + skiplist + priority-queue shard
//      groups while the open-loop generator replays the shape's schedule.
//      Per-request submit->resolve latency (measured from the *intended*
//      arrival instant — coordinated-omission-safe) lands in one
//      LatencyHistogram per shape, exported via the report's top-level
//      histograms section, which bench_compare lifts into
//      hist/service_<shape>/{p50_ns,p99_ns,p999_ns} rows.  Latencies are
//      machine-dependent: CI gates them with a generous tolerance (the
//      histogram's power-of-two buckets already quantize to 2x).  Outcome
//      counts (ok/failed/timed_out/shed) are workload-dependent and stay
//      report-only; per-shard external_stats rows carry the resolution
//      identity the validator enforces.
//
//   2. deterministic outcomes: pump-less routers make timeout, shed-bound,
//      and retry-exhaustion counts exact (no pump exists to win any race),
//      so service/det/* gate CI via bench_compare --exact.  The shed-bound
//      subsection is the CI-level witness of the increment-then-verify fix:
//      12 barrier-started submitters against shed_threshold 4 publish
//      exactly 4 and shed exactly 8 — before the fix the published depth
//      could overshoot to 12.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "batcher/external.hpp"
#include "bench/common.hpp"
#include "ds/batched_counter.hpp"
#include "ds/batched_hashmap.hpp"
#include "ds/batched_pq.hpp"
#include "ds/batched_skiplist.hpp"
#include "runtime/scheduler.hpp"
#include "service/load_gen.hpp"
#include "service/shard_router.hpp"
#include "sim/scenario.hpp"

namespace {
namespace bench = batcher::bench;
namespace ds = batcher::ds;
namespace service = batcher::service;
namespace sim = batcher::sim;
using batcher::DomainClosed;
using batcher::DomainOverloaded;
using batcher::ExternalDomain;
using batcher::OpTimedOut;
using batcher::RetryPolicy;

// --- section 1: the SLO sweep ----------------------------------------------

constexpr unsigned kClients = 4;
constexpr unsigned kWorkers = 4;
constexpr unsigned kPumpTasks = 2;
constexpr std::uint64_t kSeed = 7;

struct ShapeCase {
  sim::Shape shape;
  const char* name;
};
constexpr ShapeCase kShapes[] = {
    {sim::Shape::Uniform, "uniform"},
    {sim::Shape::Zipfian, "zipfian"},
    {sim::Shape::FlashCrowd, "flashcrowd"},
};

// Route one scenario op to a shard group + concrete structure op.  The mix
// is a pure function of the mixed key bits: ~60% hashmap, ~20% skiplist,
// ~20% priority queue; OpDesc.update picks write vs read within each.
service::SloResult dispatch_request(
    service::ShardRouter& router, std::size_t g_map, std::size_t g_list,
    std::size_t g_pq, unsigned client, const sim::OpDesc& op,
    std::chrono::steady_clock::time_point deadline, const RetryPolicy& retry,
    batcher::Xoshiro256& rng) {
  const std::uint64_t mixed =
      service::mix_key(static_cast<std::uint64_t>(op.key) ^ 0xa5a5a5a5ULL);
  const unsigned sel = static_cast<unsigned>(mixed % 10);
  if (sel < 6) {
    ds::BatchedHashMap::Op rec;
    rec.kind = op.update ? ds::BatchedHashMap::Kind::Update
                         : ds::BatchedHashMap::Kind::Get;
    rec.key = op.key;
    rec.value = 1;
    return service::submit_slo(router.domain_for(g_map, op.key), client, rec,
                               deadline, retry, rng);
  }
  if (sel < 8) {
    ds::BatchedSkipList::Op rec;
    rec.kind = op.update ? ds::BatchedSkipList::Kind::Insert
                         : ds::BatchedSkipList::Kind::Contains;
    rec.key = op.key;
    return service::submit_slo(router.domain_for(g_list, op.key), client, rec,
                               deadline, retry, rng);
  }
  ds::BatchedPriorityQueue::Op rec;
  rec.kind = op.update ? ds::BatchedPriorityQueue::Kind::Insert
                       : ds::BatchedPriorityQueue::Kind::ExtractMin;
  rec.key = op.key;
  return service::submit_slo(router.domain_for(g_pq, op.key), client, rec,
                             deadline, retry, rng);
}

bool run_slo_section(bench::Report& report) {
  const std::size_t map_shards = static_cast<std::size_t>(bench::scaled(4, 2));
  const std::size_t list_shards = static_cast<std::size_t>(bench::scaled(2, 1));
  const std::size_t pq_shards = static_cast<std::size_t>(bench::scaled(2, 1));
  const std::int64_t requests = bench::scaled(20000, 2000);
  const double rate = bench::smoke() ? 10e3 : 40e3;

  report.config("clients", kClients);
  report.config("workers", kWorkers);
  report.config("pump_tasks", kPumpTasks);
  report.config("shards_hashmap", static_cast<std::uint64_t>(map_shards));
  report.config("shards_skiplist", static_cast<std::uint64_t>(list_shards));
  report.config("shards_pq", static_cast<std::uint64_t>(pq_shards));
  report.config("requests_per_shape", static_cast<std::uint64_t>(requests));
  report.config("rate_per_s", rate);
  report.config("seed", kSeed);

  bool ok = true;
  for (const ShapeCase& sc : kShapes) {
    batcher::rt::Scheduler sched(kWorkers);
    std::vector<std::unique_ptr<ds::BatchedHashMap>> maps;
    std::vector<std::unique_ptr<ds::BatchedSkipList>> lists;
    std::vector<std::unique_ptr<ds::BatchedPriorityQueue>> pqs;
    std::vector<batcher::BatchedStructure*> map_ptrs, list_ptrs, pq_ptrs;
    for (std::size_t s = 0; s < map_shards; ++s) {
      maps.push_back(std::make_unique<ds::BatchedHashMap>(sched));
      map_ptrs.push_back(maps.back().get());
    }
    for (std::size_t s = 0; s < list_shards; ++s) {
      lists.push_back(std::make_unique<ds::BatchedSkipList>(sched));
      list_ptrs.push_back(lists.back().get());
    }
    for (std::size_t s = 0; s < pq_shards; ++s) {
      pqs.push_back(std::make_unique<ds::BatchedPriorityQueue>(sched));
      pq_ptrs.push_back(pqs.back().get());
    }

    service::ShardRouter::Options ropt;
    ropt.max_threads = kClients;
    // Per-shard backlog bound: with kClients single-slot clients the depth
    // can only reach kClients, so steady traffic never sheds — sheds in
    // this section would mean a routing bug, and CI would see them in the
    // external_stats rows.
    ropt.domain.shed_threshold = kClients;
    ropt.pump_tasks = kPumpTasks;
    service::ShardRouter router(sched, ropt);
    const std::size_t g_map = router.add_group(map_ptrs);
    const std::size_t g_list = router.add_group(list_ptrs);
    const std::size_t g_pq = router.add_group(pq_ptrs);

    service::LoadGenConfig cfg;
    cfg.shape = sc.shape;
    cfg.requests = requests;
    cfg.seed = kSeed;
    cfg.clients = kClients;
    cfg.rate = rate;
    cfg.deadline = std::chrono::milliseconds(20);
    cfg.retry.seed = kSeed;
    cfg.retry.max_retries = 3;
    cfg.retry.base_spins = 64;

    service::LoadGenStats stats;
    // The generator (and its client threads) must live off-scheduler; the
    // main thread donates itself to the pump via sched.run.
    std::thread driver([&] {
      stats = service::run_open_loop(
          cfg, [&](unsigned client, const sim::OpDesc& op,
                   std::chrono::steady_clock::time_point deadline,
                   batcher::Xoshiro256& rng) {
            return dispatch_request(router, g_map, g_list, g_pq, client, op,
                                    deadline, cfg.retry, rng);
          });
      router.shutdown();
    });
    sched.run([&] { router.serve(); });
    driver.join();

    // Client-side conservation: every scheduled request resolved exactly
    // one way.  A miss here is a lost request — fail the bench run.
    if (stats.requests() != static_cast<std::uint64_t>(requests)) {
      std::fprintf(stderr,
                   "service/%s: request ledger leak: %llu resolved != %lld "
                   "scheduled\n",
                   sc.name, static_cast<unsigned long long>(stats.requests()),
                   static_cast<long long>(requests));
      ok = false;
    }

    const auto pct = [&](double q) {
      return static_cast<unsigned long long>(stats.latency.percentile_ns(q));
    };
    bench::row("%-12s p50 %9llu ns   p99 %9llu ns   p999 %9llu ns", sc.name,
               pct(0.50), pct(0.99), pct(0.999));
    bench::row("%-12s ok %llu  failed %llu  timed_out %llu  shed %llu  "
               "retries %llu  (%.2f s)",
               "", static_cast<unsigned long long>(stats.ok),
               static_cast<unsigned long long>(stats.failed),
               static_cast<unsigned long long>(stats.timed_out),
               static_cast<unsigned long long>(stats.shed),
               static_cast<unsigned long long>(stats.retries),
               stats.wall_seconds);

    const std::string prefix = std::string("service_") + sc.name;
    report.histogram(prefix + "_ns", stats.latency);
    // Outcome counts are workload/machine-dependent (timeouts rise on slow
    // runners): report-only, not gated.
    report.metric("service/" + std::string(sc.name) + "/ok",
                  static_cast<double>(stats.ok), "count");
    report.metric("service/" + std::string(sc.name) + "/failed",
                  static_cast<double>(stats.failed), "count");
    report.metric("service/" + std::string(sc.name) + "/timed_out",
                  static_cast<double>(stats.timed_out), "count");
    report.metric("service/" + std::string(sc.name) + "/shed",
                  static_cast<double>(stats.shed), "count");
    report.metric("service/" + std::string(sc.name) + "/retries",
                  static_cast<double>(stats.retries), "count");
    report.metric("service/" + std::string(sc.name) + "/achieved_rate",
                  stats.wall_seconds > 0
                      ? static_cast<double>(requests) / stats.wall_seconds
                      : 0.0,
                  "1/s");
    for (std::size_t s = 0; s < router.num_shards(); ++s) {
      char label[64];
      std::snprintf(label, sizeof label, "%s/shard%zu", sc.name, s);
      report.external_stats(label, router.stats(s));
    }
  }
  return ok;
}

// --- section 2: deterministic, exact-gated outcome counters -----------------

constexpr std::uint64_t kDetTimeouts = 16;
constexpr std::size_t kShedBound = 4;    // shed_threshold under test
constexpr std::size_t kShedStorm = 12;   // barrier-started submitters
constexpr unsigned kRetryCalls = 4;
constexpr unsigned kMaxRetries = 3;

// a. Every routed try_submit against a pump-less router times out: no pump
// exists to win the claim race, so the count is exact.
void run_det_timeout(bench::Report& report) {
  batcher::rt::Scheduler sched(2);
  ds::BatchedCounter c0(sched), c1(sched);
  service::ShardRouter::Options ropt;
  ropt.max_threads = 1;
  service::ShardRouter router(sched, ropt);
  const std::size_t g = router.add_group({&c0, &c1});
  std::thread client([&] {
    for (std::uint64_t i = 0; i < kDetTimeouts; ++i) {
      ds::BatchedCounter::Op op;
      op.delta = 1;
      try {
        router.domain_for(g, static_cast<std::int64_t>(i)).try_submit(0, op);
      } catch (const OpTimedOut&) {
      }
    }
  });
  client.join();
  const std::uint64_t timed_out = router.total_stats().ops_timed_out;
  bench::row("%-22s %8llu ops timed out (expected %llu)", "det timeout:",
             static_cast<unsigned long long>(timed_out),
             static_cast<unsigned long long>(kDetTimeouts));
  report.metric("service/det/ops_timed_out", static_cast<double>(timed_out),
                "count");
  report.external_stats("det/timeout/shard0", router.stats(0));
  report.external_stats("det/timeout/shard1", router.stats(1));
}

// b. The shed bound under a submitter storm: kShedStorm barrier-started
// threads race one domain with shed_threshold kShedBound and no pump.
// Increment-then-verify admits exactly kShedBound (they block, then fail
// DomainClosed at shutdown) and sheds the rest — the check-then-act bug
// this PR fixes would publish all kShedStorm.
void run_det_shed_bound(bench::Report& report) {
  batcher::rt::Scheduler sched(2);
  ds::BatchedCounter counter(sched);
  service::ShardRouter::Options ropt;
  ropt.max_threads = kShedStorm;
  ropt.domain.shed_threshold = kShedBound;
  service::ShardRouter router(sched, ropt);
  router.add_group({&counter});
  ExternalDomain& domain = router.domain(0);

  std::atomic<std::size_t> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> storm;
  for (std::size_t t = 0; t < kShedStorm; ++t) {
    storm.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) batcher::cpu_relax();
      ds::BatchedCounter::Op op;
      op.delta = 1;
      try {
        domain.submit(t, op);
      } catch (const DomainOverloaded&) {
      } catch (const DomainClosed&) {
      }
    });
  }
  while (ready.load() != kShedStorm) std::this_thread::yield();
  go.store(true, std::memory_order_release);
  // Quiescence: every submitter either shed or is parked on a published
  // record.  pending_depth is transiently inflated while a shedder is
  // between its increment and its verify-decrement, so wait (bounded) for
  // the exact stable state; on a regression the recorded counts miss it
  // and the exact gate fails.
  const auto wait_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while ((domain.ops_shed() != kShedStorm - kShedBound ||
          domain.pending_depth() != kShedBound) &&
         std::chrono::steady_clock::now() < wait_deadline) {
    std::this_thread::yield();
  }
  const std::uint64_t sheds = domain.ops_shed();
  const std::size_t published = domain.pending_depth();
  router.shutdown();  // fails the published records with DomainClosed
  for (auto& th : storm) th.join();

  bench::row("%-22s %8llu shed, %zu published (threshold %zu, storm %zu)",
             "det shed bound:", static_cast<unsigned long long>(sheds),
             published, kShedBound, kShedStorm);
  report.metric("service/det/shed_storm_sheds", static_cast<double>(sheds),
                "count");
  report.metric("service/det/shed_storm_published",
                static_cast<double>(published), "count");
  report.external_stats("det/shed_bound", router.stats(0));
}

// c. Retry exhaustion against a permanently full backlog: each
// submit_with_retry burns its full budget — both counts exact.
void run_det_retry(bench::Report& report) {
  batcher::rt::Scheduler sched(2);
  ds::BatchedCounter counter(sched);
  service::ShardRouter::Options ropt;
  ropt.max_threads = kShedBound + 1;
  ropt.domain.shed_threshold = kShedBound;
  service::ShardRouter router(sched, ropt);
  router.add_group({&counter});
  ExternalDomain& domain = router.domain(0);

  std::vector<std::thread> blocked;
  for (std::size_t t = 0; t < kShedBound; ++t) {
    blocked.emplace_back([&, t] {
      ds::BatchedCounter::Op op;
      op.delta = 1;
      try {
        domain.submit(t, op);
      } catch (const DomainClosed&) {
      }
    });
  }
  while (domain.pending_depth() < kShedBound) std::this_thread::yield();

  std::thread retrier([&] {
    RetryPolicy policy;
    policy.seed = kSeed;
    policy.max_retries = kMaxRetries;
    policy.base_spins = 16;
    for (unsigned cidx = 0; cidx < kRetryCalls; ++cidx) {
      ds::BatchedCounter::Op op;
      op.delta = 1;
      try {
        router.submit_with_retry(0, 1, kShedBound, op, policy);
      } catch (const DomainOverloaded&) {
      }
    }
  });
  retrier.join();
  router.shutdown();
  for (auto& th : blocked) th.join();

  const std::uint64_t expected_retries =
      std::uint64_t{kRetryCalls} * kMaxRetries;
  bench::row("%-22s %8llu retries attempted (expected %llu), %llu shed",
             "det retry:",
             static_cast<unsigned long long>(domain.retries_attempted()),
             static_cast<unsigned long long>(expected_retries),
             static_cast<unsigned long long>(domain.ops_shed()));
  report.metric("service/det/retries_attempted",
                static_cast<double>(domain.retries_attempted()), "count");
  report.metric("service/det/retry_sheds",
                static_cast<double>(domain.ops_shed()), "count");
  report.external_stats("det/retry", router.stats(0));
}

}  // namespace

int main() {
  bench::header("T8-service",
                "sharded batched service front-end: open-loop SLO sweep "
                "(p50/p99/p999 per arrival shape) + deterministic "
                "timeout/shed/retry outcome counters (DESIGN.md §15)");
  bench::Report report("service");
  bench::TraceScope trace(report);

  const bool ok = run_slo_section(report);
  run_det_timeout(report);
  run_det_shed_bound(report);
  run_det_retry(report);

  if (!report.write()) return 1;
  return ok ? 0 : 1;
}
