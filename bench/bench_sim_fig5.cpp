// FIG5-sim — reproduces the *scaling shape* of the paper's Figure 5 on
// simulated processors: BATCHER skip-list insert throughput vs. worker count,
// for initial sizes spanning 20k..100M (the paper's full range — the cost
// model only needs lg(size), so the big sizes cost nothing here).
//
// Expected shape (paper §7): speedup over 1 worker grows with the initial
// size, because more expensive per-op work amortizes BATCHER's batching
// overhead; at 100M the paper saw ~3.3x on 8 workers.
#include <cstdio>

#include "bench/common.hpp"
#include "sim/cost_model.hpp"
#include "sim/dag.hpp"
#include "sim/sim_batcher.hpp"

namespace {
namespace bench = batcher::bench;
using namespace batcher::sim;

constexpr std::int64_t kOps = 4096;  // ds operations in the core dag
}  // namespace

int main() {
  bench::header("FIG5-sim",
                "BATCHER skip-list insert scaling on simulated processors "
                "(paper Fig. 5 shape)");
  bench::note("%lld implicit-batched inserts in a parallel loop; "
              "per-op cost ~ lg(initial size)",
              static_cast<long long>(kOps));
  bench::Report report("sim_fig5");
  report.config("ops", static_cast<std::uint64_t>(kOps));
  bench::row("%-12s %-8s %12s %10s %12s", "initial", "workers",
             "makespan", "speedup", "mean batch");

  const std::int64_t sizes[] = {20000, 100000, 1000000, 10000000, 100000000};
  for (std::int64_t size : sizes) {
    Dag core = build_parallel_loop_with_ds(kOps, /*pre=*/1, /*post=*/1,
                                           /*ds_per_iter=*/1);
    std::int64_t base = 0;
    for (unsigned workers : {1u, 2u, 4u, 6u, 8u, 16u}) {
      SkipListCostModel model(size);
      BatcherSimConfig cfg;
      cfg.workers = workers;
      cfg.seed = 7;
      const SimResult res = simulate_batcher(core, model, cfg);
      if (workers == 1) base = res.makespan;
      bench::row("%-12lld %-8u %12lld %10.2f %12.2f",
                 static_cast<long long>(size), workers,
                 static_cast<long long>(res.makespan),
                 static_cast<double>(base) / static_cast<double>(res.makespan),
                 res.mean_batch_size());
      report.metric("speedup/initial=" + std::to_string(size) +
                        "/P=" + std::to_string(workers),
                    static_cast<double>(base) /
                        static_cast<double>(res.makespan),
                    "ratio");
    }
  }
  bench::note("paper: BAT speedup grows with skip-list size; ~3.3x at 8 "
              "workers for the 100M list");
  report.write();
  std::printf("\n");
  return 0;
}
