// T1-stack — the paper's §3 amortized LIFO stack: batched push/pop bursts,
// including the table-doubling storms the amortization pays for, vs. a
// mutex-guarded std::vector stack.
#include <cstdio>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "ds/batched_stack.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"

namespace {
namespace bench = batcher::bench;
using batcher::Stopwatch;

const std::int64_t kOps = bench::scaled(200000, 20000);

double run_batched(unsigned workers, std::uint64_t seed,
                   bench::Report& report) {
  batcher::rt::Scheduler sched(workers);
  batcher::ds::BatchedStack<std::int64_t> stack(sched);
  const auto coins = bench::random_keys(kOps, seed, 4);
  Stopwatch sw;
  sched.run([&] {
    batcher::rt::parallel_for(
        0, kOps,
        [&](std::int64_t i) {
          // 3:1 push:pop keeps the table growing through doubling storms.
          if (coins[static_cast<std::size_t>(i)] != 0) {
            stack.push(i);
          } else {
            stack.pop();
          }
        },
        /*grain=*/64);
  });
  const double secs = sw.elapsed_seconds();
  report.batcher_stats("BATCHED/P=" + std::to_string(workers),
                       stack.batcher().stats());
  return secs;
}

double run_mutex_stack(unsigned threads, std::uint64_t seed) {
  std::vector<std::int64_t> stack;
  std::mutex mutex;
  const auto coins = bench::random_keys(kOps, seed, 4);
  Stopwatch sw;
  std::vector<std::thread> pool;
  const std::int64_t per = kOps / threads;
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (std::int64_t i = t * per; i < (t + 1) * per; ++i) {
        std::lock_guard<std::mutex> lock(mutex);
        if (coins[static_cast<std::size_t>(i)] != 0) {
          stack.push_back(i);
        } else if (!stack.empty()) {
          stack.pop_back();
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  return sw.elapsed_seconds();
}

}  // namespace

int main() {
  bench::header("T1-stack",
                "amortized batched LIFO stack vs mutex stack (paper §3 "
                "example), 3:1 push:pop mix");
  bench::Report report("stack");
  report.config("ops", static_cast<std::uint64_t>(kOps));
  bench::TraceScope trace(report);
  bench::row("%-6s %-14s %12s", "P", "variant", "Mops/s");
  for (unsigned p : {1u, 2u, 4u, 8u}) {
    const double batched = bench::mops(kOps, run_batched(p, 9, report));
    const double mutex = bench::mops(kOps, run_mutex_stack(p, 9));
    bench::row("%-6u %-14s %12.3f", p, "BATCHED", batched);
    bench::row("%-6u %-14s %12.3f", p, "MUTEX", mutex);
    report.metric("mops_per_s/BATCHED/P=" + std::to_string(p), batched * 1e6,
                  "1/s");
    report.metric("mops_per_s/MUTEX/P=" + std::to_string(p), mutex * 1e6,
                  "1/s");
  }

  // Doubling-storm microcheck: pushing n elements into an empty stack causes
  // lg n doublings; total time must stay ~linear in n (amortized O(1)/op).
  bench::note("amortization check: pure pushes from empty (doubling storms)");
  bench::row("%-10s %12s %14s", "n", "seconds", "ns/op");
  const std::int64_t storm_full[] = {20000, 80000, 320000};
  const std::int64_t storm_smoke[] = {2000, 8000, 32000};
  for (int s = 0; s < 3; ++s) {
    const std::int64_t n = bench::smoke() ? storm_smoke[s] : storm_full[s];
    batcher::rt::Scheduler sched(4);
    batcher::ds::BatchedStack<std::int64_t> stack(sched);
    Stopwatch sw;
    sched.run([&] {
      batcher::rt::parallel_for(0, n, [&](std::int64_t i) { stack.push(i); },
                                /*grain=*/64);
    });
    const double secs = sw.elapsed_seconds();
    bench::row("%-10lld %12.4f %14.1f", static_cast<long long>(n), secs,
               secs * 1e9 / static_cast<double>(n));
    report.batcher_stats("storm/n=" + std::to_string(n),
                         stack.batcher().stats());
    report.metric("storm_ns_per_op/n=" + std::to_string(n),
                  secs * 1e9 / static_cast<double>(n), "ns");
  }
  bench::note("ns/op flat across n => table doubling amortizes as analyzed");
  report.write();
  std::printf("\n");
  return 0;
}
