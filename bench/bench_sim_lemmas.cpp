// LEMMAS-sim — the §5 accounting, measured: per-category steal attempts vs
// the envelopes of Lemma 9 (big-batch steals), Lemmas 10+11 (free steals),
// and Lemma 13 (trapped steals + batch setup), plus the Lemma 2 trap bound.
//
// The proof charges every processor step to {core work, ds work, steals,
// setup}; this harness shows where the steps actually go, per workload.
#include <cstdio>

#include <string>

#include "bench/common.hpp"
#include "sim/cost_model.hpp"
#include "sim/dag.hpp"
#include "sim/sim_batcher.hpp"

namespace {
namespace bench = batcher::bench;
using namespace batcher::sim;

void lemma_rows(const char* name, const Dag& core,
                std::int64_t structure_size, unsigned P,
                bench::Report& report) {
  SkipListCostModel model(structure_size);
  BatcherSimConfig cfg;
  cfg.workers = P;
  cfg.seed = 31;
  const SimResult res = simulate_batcher(core, model, cfg);

  const std::int64_t n = core.num_ds_nodes();
  const std::int64_t lemma9 =
      n * res.tau + static_cast<std::int64_t>(P) * res.trimmed_span +
      n * SkipListCostModel(structure_size + n).batch_cost(1).work;
  const std::int64_t lemma10_11 =
      static_cast<std::int64_t>(P) *
          (core.span() + core.max_ds_on_path() * res.tau) +
      n * res.tau;

  bench::row("%-14s %4u %10lld %10lld %10lld %10lld %10lld %6lld", name, P,
             static_cast<long long>(res.big_batch_steals),
             static_cast<long long>(lemma9),
             static_cast<long long>(res.free_steals),
             static_cast<long long>(lemma10_11),
             static_cast<long long>(res.trapped_steals),
             static_cast<long long>(res.max_batches_waited));
  bench::row("%-14s      batches=%lld long=%lld wide=%lld popular=%lld "
             "big=%lld S_tau=%lld tau=%lld",
             "", static_cast<long long>(res.batches),
             static_cast<long long>(res.long_batches),
             static_cast<long long>(res.wide_batches),
             static_cast<long long>(res.popular_batches),
             static_cast<long long>(res.big_batches),
             static_cast<long long>(res.trimmed_span),
             static_cast<long long>(res.tau));
  const std::string suffix =
      std::string("/") + name + "/P=" + std::to_string(P);
  report.metric("big_batch_steals_over_L9" + suffix,
                lemma9 == 0 ? 0.0
                            : static_cast<double>(res.big_batch_steals) /
                                  static_cast<double>(lemma9),
                "ratio");
  report.metric("free_steals_over_L10_11" + suffix,
                lemma10_11 == 0 ? 0.0
                               : static_cast<double>(res.free_steals) /
                                     static_cast<double>(lemma10_11),
                "ratio");
  report.metric("max_batches_waited" + suffix,
                static_cast<double>(res.max_batches_waited), "batches");
}

}  // namespace

int main() {
  bench::header("LEMMAS-sim",
                "§5 analysis quantities, measured vs lemma envelopes");
  bench::Report report("sim_lemmas");
  bench::row("%-14s %4s %10s %10s %10s %10s %10s %6s", "workload", "P",
             "bigSteal", "L9 env", "freeSteal", "L10+11", "trapSteal",
             "Lem2");

  {
    Dag core = build_parallel_loop_with_ds(2048, 1, 1, 1);
    lemma_rows("ds-heavy", core, 1 << 20, 8, report);
    lemma_rows("ds-heavy", core, 1 << 20, 16, report);
  }
  {
    Dag core = build_parallel_loop_with_ds(256, 48, 48, 1);
    lemma_rows("core-heavy", core, 1 << 10, 8, report);
  }
  {
    Dag core = build_parallel_loop_with_ds(128, 2, 1, 16);  // m = 16
    lemma_rows("deep-m16", core, 1 << 16, 8, report);
  }
  {
    Dag core = build_sequential_ds_chain(256, 4);  // m = n
    lemma_rows("serial-chain", core, 1 << 16, 8, report);
  }
  bench::note("Lem2 column is the measured max batches any trapped worker "
              "waited — the paper's Lemma 2 proves it is at most 2");
  bench::note("measured categories must sit under their envelopes by a "
              "modest constant; big-batch steals dominate ds-heavy runs, "
              "free steals dominate core-heavy runs, matching the proof's "
              "case split");
  report.write();
  std::printf("\n");
  return 0;
}
