// Shared helpers for the benchmark harnesses: row printing in a uniform
// format and workload generation.
//
// Every figure/table harness prints (1) a header naming the paper artifact it
// regenerates and (2) aligned rows, so `for b in build/bench/*; do $b; done`
// yields a readable experiment log (captured into bench_output.txt).
#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "support/rng.hpp"
#include "support/timing.hpp"

namespace batcher::bench {

inline void header(const char* experiment_id, const char* description) {
  std::printf("\n==================================================================\n");
  std::printf("%s — %s\n", experiment_id, description);
  std::printf("==================================================================\n");
}

inline void note(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::printf("  # ");
  std::vprintf(fmt, args);
  std::printf("\n");
  va_end(args);
}

inline void row(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::printf("  ");
  std::vprintf(fmt, args);
  std::printf("\n");
  va_end(args);
}

inline std::vector<std::int64_t> random_keys(std::size_t n, std::uint64_t seed,
                                             std::uint64_t range = 1ull << 40) {
  Xoshiro256 rng(seed);
  std::vector<std::int64_t> keys(n);
  for (auto& k : keys) k = static_cast<std::int64_t>(rng.next_below(range));
  return keys;
}

// Million operations per second.
inline double mops(std::int64_t ops, double seconds) {
  return seconds <= 0 ? 0.0 : static_cast<double>(ops) / seconds / 1e6;
}

}  // namespace batcher::bench
