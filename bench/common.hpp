// Shared helpers for the benchmark harnesses: row printing in a uniform
// format, workload generation, and the machine-readable reporter.
//
// Every figure/table harness prints (1) a header naming the paper artifact it
// regenerates and (2) aligned rows, so `for b in build/bench/*; do $b; done`
// yields a readable experiment log (captured into bench_output.txt).
//
// In addition every harness builds a `Report` and calls `write()` before
// exiting, producing `BENCH_<name>.json` (in $BATCHER_BENCH_OUT, default the
// working directory) that carries the same numbers in a schema-validated
// form (bench/bench_report.schema.json):
//
//   * config key/values and metric rows,
//   * BatcherStats / scheduler StatsSnapshot records (with the op-count
//     identities intact, so downstream tooling can reconcile),
//   * when $BATCHER_TRACE is set, the drained trace's MetricsReport plus a
//     Chrome trace file `trace_<name>.json` next to the report, and a
//     "bound_ledger" section with the online work/span ledger and the
//     measured Theorem 1 terms (T1/P + Tinf + n*sigma/P + s*sigma).
//
// Environment knobs:
//   BATCHER_BENCH_OUT    output directory for BENCH_*.json / trace_*.json
//   BATCHER_BENCH_SMOKE  non-empty & != "0": shrink workloads (CI smoke mode)
//   BATCHER_TRACE        non-empty & != "0": record a TraceSession around the
//                        bench and export trace + metrics
//   BATCHER_TRACE_RING   per-thread ring capacity in records (default 2^20)
#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "batcher/batcher.hpp"
#include "batcher/external.hpp"
#include "runtime/stats.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/timing.hpp"
#include "trace/bound_ledger.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace batcher::bench {

inline void header(const char* experiment_id, const char* description) {
  std::printf("\n==================================================================\n");
  std::printf("%s — %s\n", experiment_id, description);
  std::printf("==================================================================\n");
}

inline void note(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::printf("  # ");
  std::vprintf(fmt, args);
  std::printf("\n");
  va_end(args);
}

inline void row(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::printf("  ");
  std::vprintf(fmt, args);
  std::printf("\n");
  va_end(args);
}

inline std::vector<std::int64_t> random_keys(std::size_t n, std::uint64_t seed,
                                             std::uint64_t range = 1ull << 40) {
  Xoshiro256 rng(seed);
  std::vector<std::int64_t> keys(n);
  for (auto& k : keys) k = static_cast<std::int64_t>(rng.next_below(range));
  return keys;
}

// Million operations per second.
inline double mops(std::int64_t ops, double seconds) {
  return seconds <= 0 ? 0.0 : static_cast<double>(ops) / seconds / 1e6;
}

// --- environment knobs ------------------------------------------------------

inline bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' && std::string_view(v) != "0";
}

// CI smoke mode: run every harness end to end but with shrunken workloads.
inline bool smoke() { return env_flag("BATCHER_BENCH_SMOKE"); }

// Pick `full` normally, `small` under smoke mode.
inline std::int64_t scaled(std::int64_t full, std::int64_t small) {
  return smoke() ? small : full;
}

inline std::string out_dir() {
  const char* v = std::getenv("BATCHER_BENCH_OUT");
  return (v != nullptr && *v != '\0') ? std::string(v) : std::string(".");
}

inline std::size_t trace_ring_capacity() {
  const char* v = std::getenv("BATCHER_TRACE_RING");
  if (v == nullptr || *v == '\0') return std::size_t{1} << 20;
  const long long n = std::atoll(v);
  return n > 0 ? static_cast<std::size_t>(n) : std::size_t{1} << 20;
}

inline bool write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = written == body.size() && std::fclose(f) == 0;
  if (!ok) std::remove(path.c_str());
  return ok;
}

// --- BOP span profiling ------------------------------------------------------

// Drives one directly-invoked BOP call and books it into the bound ledger
// under `domain` (a Batcher::trace_id()), using the same sampling order as
// the launcher: wall before path on entry, path before wall on exit, so
// span <= wall holds exactly.  Organic batches rarely exceed a handful of
// ops on a small machine, which leaves only the smallest s(n) size bucket
// populated; the span-profile sections of the A/B benches use this to drive
// controlled batch sizes across the whole bucket range.  Must run inside
// sched.run() so a strand is live when tracing is on.
// Returns the measured span in nanoseconds (0 when tracing is off).
template <typename Fn>
inline std::uint64_t profiled_bop(std::uint16_t domain, std::size_t batch_size,
                                  Fn&& run) {
  if (!trace::enabled()) {
    run();
    return 0;
  }
  const std::uint64_t wall0 = trace::now_ns();
  const trace::ledger::PathPoint path0 = trace::ledger::strand_now();
  run();
  const trace::ledger::PathPoint path1 = trace::ledger::strand_now();
  const std::uint64_t wall1 = trace::now_ns();
  const std::uint64_t span = path1.ns - path0.ns;
  trace::ledger::note_batch(domain, batch_size,
                            wall1 >= wall0 ? wall1 - wall0 : 0, span);
  return span;
}

// --- the machine-readable reporter ------------------------------------------

class TraceScope;

class Report {
 public:
  explicit Report(std::string name) : name_(std::move(name)) {}

  void config(std::string key, std::string value) {
    config_.push_back({std::move(key), Value::str(std::move(value))});
  }
  void config(std::string key, const char* value) {
    config(std::move(key), std::string(value));
  }
  void config(std::string key, std::uint64_t value) {
    config_.push_back({std::move(key), Value::num(value)});
  }
  void config(std::string key, std::int64_t value) {
    config(std::move(key), static_cast<double>(value));
  }
  void config(std::string key, int value) {
    config(std::move(key),
           static_cast<std::uint64_t>(value < 0 ? 0 : value));
  }
  void config(std::string key, unsigned value) {
    config(std::move(key), static_cast<std::uint64_t>(value));
  }
  void config(std::string key, double value) {
    config_.push_back({std::move(key), Value::real(value)});
  }
  void config(std::string key, bool value) {
    config_.push_back({std::move(key), Value::boolean(value)});
  }

  // One numeric result row.  Encode parameters in the name
  // ("mops/P=4/BATCHED") — the schema keeps metrics deliberately flat.
  void metric(std::string name, double value, std::string unit = "") {
    metrics_.push_back({std::move(name), value, std::move(unit)});
  }

  // Record a domain's stats snapshot; `ops_processed_total` accumulates
  // across calls and is what the trace metrics reconcile against.
  void batcher_stats(std::string label, const BatcherStats& st) {
    ops_processed_total_ += st.ops_processed;
    batcher_stats_.push_back({std::move(label), st});
  }

  void scheduler_stats(std::string label, const rt::StatsSnapshot& st) {
    scheduler_stats_.push_back({std::move(label), st});
  }

  // Record an ExternalDomain's quiescent counter snapshot; the validator
  // enforces ops_served == ops_succeeded + ops_failed + ops_timed_out on
  // every row.
  void external_stats(std::string label, const ExternalStats& st) {
    external_stats_.push_back({std::move(label), st});
  }

  // Record a bench-owned latency histogram (e.g. per-request service
  // latency).  Unlike the trace section this is emitted unconditionally —
  // SLO percentiles must gate even when $BATCHER_TRACE is off.  The compare
  // tool lifts each entry into hist/<name>/{p50_ns,p99_ns,p999_ns} rows.
  void histogram(std::string name, const trace::LatencyHistogram& h) {
    histograms_.push_back({std::move(name), h});
  }

  // Names a bound-ledger domain (a Batcher::trace_id()) so its s(n)
  // histograms gate under a stable key — span_growth/<label> — instead of a
  // construction-order-dependent numeric id.  Call while the owning
  // structure is alive; trace ids are recycled after unregister_domain, so
  // labeled structures must outlive every later-constructed Batcher until
  // write().
  void domain_label(std::uint16_t domain, std::string label) {
    domain_labels_.emplace_back(domain, std::move(label));
  }

  std::uint64_t ops_processed_total() const { return ops_processed_total_; }

  // Serializes and writes BENCH_<name>.json (finishing the attached
  // TraceScope first, if any).  Returns false on I/O failure.
  bool write();

 private:
  friend class TraceScope;

  struct Value {
    enum class Kind { kString, kUint, kDouble, kBool } kind;
    std::string s;
    std::uint64_t u = 0;
    double d = 0.0;
    bool b = false;

    static Value str(std::string v) {
      return {Kind::kString, std::move(v), 0, 0.0, false};
    }
    static Value num(std::uint64_t v) { return {Kind::kUint, {}, v, 0.0, false}; }
    static Value real(double v) { return {Kind::kDouble, {}, 0, v, false}; }
    static Value boolean(bool v) { return {Kind::kBool, {}, 0, 0.0, v}; }

    void emit(json::Writer& w) const {
      switch (kind) {
        case Kind::kString: w.value(std::string_view(s)); break;
        case Kind::kUint: w.value(u); break;
        case Kind::kDouble: w.value(d); break;
        case Kind::kBool: w.value(b); break;
      }
    }
  };
  struct Metric {
    std::string name;
    double value;
    std::string unit;
  };

  std::string name_;
  std::vector<std::pair<std::string, Value>> config_;
  std::vector<Metric> metrics_;
  std::vector<std::pair<std::string, BatcherStats>> batcher_stats_;
  std::vector<std::pair<std::string, rt::StatsSnapshot>> scheduler_stats_;
  std::vector<std::pair<std::string, ExternalStats>> external_stats_;
  std::vector<std::pair<std::string, trace::LatencyHistogram>> histograms_;
  std::vector<std::pair<std::uint16_t, std::string>> domain_labels_;
  std::uint64_t ops_processed_total_ = 0;

  TraceScope* trace_scope_ = nullptr;
  bool traced_ = false;
  std::string trace_file_;
  trace::MetricsReport trace_metrics_;
  trace::ledger::LedgerSnapshot ledger_;
  std::uint64_t trace_wall_ns_ = 0;
};

// Records a TraceSession spanning the bench when $BATCHER_TRACE is set; a
// no-op otherwise.  On finish (explicit, or implicit via Report::write or
// destruction) the Chrome trace is written to trace_<name>.json and the
// MetricsReport is folded into the Report.
class TraceScope {
 public:
  explicit TraceScope(Report& report) : report_(report) {
    if (env_flag("BATCHER_TRACE")) {
      trace::TraceSession::Options opt;
      opt.ring_capacity = trace_ring_capacity();
      session_ = new trace::TraceSession(opt);
      report_.trace_scope_ = this;
    }
  }
  ~TraceScope() {
    finish();
    delete session_;
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  bool active() const { return session_ != nullptr && !finished_; }

  void finish() {
    if (session_ == nullptr || finished_) return;
    finished_ = true;
    report_.trace_scope_ = nullptr;
    const trace::Trace& tr = session_->stop();
    report_.traced_ = true;
    report_.trace_metrics_ = trace::build_metrics(tr);
    // The bound ledger accrued alongside the same session (it was reset at
    // session start and stops accruing at stop); snapshot it into the report
    // together with the session wall time so Report::write can evaluate the
    // Theorem 1 terms against the same window.
    report_.ledger_ = trace::ledger::snapshot();
    report_.trace_wall_ns_ = tr.t1_ns > tr.t0_ns ? tr.t1_ns - tr.t0_ns : 0;
    // Exact-gateable coverage metrics: a nonzero drop count or a changed
    // run count means the trace no longer observes what the baseline did.
    report_.metric("trace/records_dropped",
                   static_cast<double>(report_.trace_metrics_.dropped_records),
                   "count");
    report_.metric("ledger/runs", static_cast<double>(report_.ledger_.runs),
                   "count");
    report_.trace_file_ = "trace_" + report_.name_ + ".json";
    const std::string path = out_dir() + "/" + report_.trace_file_;
    if (trace::write_chrome_trace(tr, path)) {
      note("chrome trace: %s", path.c_str());
    } else {
      note("chrome trace: FAILED to write %s", path.c_str());
      report_.trace_file_.clear();
    }
  }

 private:
  Report& report_;
  trace::TraceSession* session_ = nullptr;  // heap: optional without <optional>
  bool finished_ = false;
};

inline bool Report::write() {
  if (trace_scope_ != nullptr) trace_scope_->finish();

  json::Writer w;
  w.begin_object();
  w.kv("schema_version", std::uint64_t{1});
  w.kv("name", std::string_view(name_));
  w.kv("smoke", smoke());

  w.key("config").begin_object();
  for (const auto& [k, v] : config_) {
    w.key(k);
    v.emit(w);
  }
  w.end_object();

  w.key("metrics").begin_array();
  for (const Metric& m : metrics_) {
    w.begin_object();
    w.kv("name", std::string_view(m.name));
    w.kv("value", m.value);
    if (!m.unit.empty()) w.kv("unit", std::string_view(m.unit));
    w.end_object();
  }
  w.end_array();

  w.key("batcher_stats").begin_array();
  for (const auto& [label, st] : batcher_stats_) {
    w.begin_object();
    w.kv("label", std::string_view(label));
    w.kv("batches_launched", st.batches_launched);
    w.kv("empty_batches", st.empty_batches);
    w.kv("failed_batches", st.failed_batches);
    w.kv("clean_nonempty_batches", st.clean_nonempty_batches);
    w.kv("ops_processed", st.ops_processed);
    w.kv("ops_failed", st.ops_failed);
    w.kv("ops_succeeded", st.ops_succeeded);
    w.kv("max_batch_size", st.max_batch_size);
    w.kv("mean_batch_size", st.mean_batch_size());
    w.kv("announce_pushes", st.announce_pushes);
    w.kv("chained_launches", st.chained_launches);
    w.kv("flag_cas_failures", st.flag_cas_failures);
    w.key("batch_size_histogram").begin_array();
    for (std::uint64_t n : st.batch_size_histogram) w.value(n);
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("scheduler_stats").begin_array();
  for (const auto& [label, st] : scheduler_stats_) {
    w.begin_object();
    w.kv("label", std::string_view(label));
    w.kv("tasks_executed", st.tasks_executed);
    w.kv("core_steal_attempts", st.core_steal_attempts);
    w.kv("batch_steal_attempts", st.batch_steal_attempts);
    w.kv("steals_succeeded", st.steals_succeeded);
    w.kv("join_help_runs", st.join_help_runs);
    w.kv("frames_allocated", st.frames_allocated);
    w.kv("frames_freed", st.frames_freed);
    w.kv("remote_frees", st.remote_frees);
    w.kv("slab_refills", st.slab_refills);
    w.kv("work_ns", st.work_ns);
    w.kv("span_ns", st.span_ns);
    w.kv("span_tasks", st.span_tasks);
    w.kv("runs_measured", st.runs_measured);
    w.kv("longest_run_span_ns", st.longest_run_span_ns);
    w.kv("longest_run_span_tasks", st.longest_run_span_tasks);
    w.end_object();
  }
  w.end_array();

  w.key("external_stats").begin_array();
  for (const auto& [label, st] : external_stats_) {
    w.begin_object();
    w.kv("label", std::string_view(label));
    w.kv("ops_served", st.ops_served);
    w.kv("ops_succeeded", st.ops_succeeded);
    w.kv("ops_failed", st.ops_failed);
    w.kv("ops_timed_out", st.ops_timed_out);
    w.kv("ops_shed", st.ops_shed);
    w.kv("batches_served", st.batches_served);
    w.kv("batches_failed", st.batches_failed);
    w.kv("retries_attempted", st.retries_attempted);
    w.end_object();
  }
  w.end_array();

  w.kv("ops_processed_total", ops_processed_total_);

  if (!histograms_.empty()) {
    w.key("histograms").begin_object();
    for (const auto& [hname, h] : histograms_) {
      w.key(hname);
      trace::histogram_to_json(h, w);
    }
    w.end_object();
  }

  if (traced_) {
    w.key("trace").begin_object();
    w.kv("file", std::string_view(trace_file_));
    w.key("metrics");
    trace_metrics_.to_json(w);
    w.end_object();

    // Theorem 1 bound ledger: online work/span totals, per-domain batched-op
    // cost histograms by size bucket, and the measured bound terms
    // T1/P + Tinf + n*sigma/P + s*sigma evaluated over the traced window.
    const std::uint64_t threads = trace_metrics_.attribution.worker_threads;
    std::uint64_t sum_bop_wall = 0;
    std::uint64_t sum_bop_span = 0;
    for (const auto& d : ledger_.domains) {
      sum_bop_wall += d.sum_bop_wall_ns;
      sum_bop_span += d.sum_bop_span_ns;
    }
    w.key("bound_ledger").begin_object();
    w.kv("wall_ns", trace_wall_ns_);
    w.kv("worker_threads", threads);
    w.kv("work_ns", ledger_.work_ns);
    w.kv("strands", ledger_.strands);
    w.kv("runs", ledger_.runs);
    w.kv("span_ns_total", ledger_.span_ns_total);
    w.kv("span_tasks_total", ledger_.span_tasks_total);
    w.kv("longest_run_span_ns", ledger_.longest_run_span_ns);
    w.kv("longest_run_span_tasks", ledger_.longest_run_span_tasks);
    w.key("terms").begin_object();
    {
      const double p = threads > 0 ? static_cast<double>(threads) : 1.0;
      const double t1_div_p = static_cast<double>(ledger_.work_ns) / p;
      const double t_inf = static_cast<double>(ledger_.longest_run_span_ns);
      const double n_sigma_div_p = static_cast<double>(sum_bop_wall) / p;
      const double s_sigma = static_cast<double>(sum_bop_span);
      const double bound = t1_div_p + t_inf + n_sigma_div_p + s_sigma;
      w.kv("t1_div_p_ns", t1_div_p);
      w.kv("t_inf_ns", t_inf);
      w.kv("n_sigma_div_p_ns", n_sigma_div_p);
      w.kv("s_sigma_ns", s_sigma);
      w.kv("predicted_bound_ns", bound);
      // wall / bound: Theorem 1 says this is O(1); watching it drift across
      // commits is the point of keeping the ledger in every report.
      w.kv("bound_ratio",
           bound > 0.0 ? static_cast<double>(trace_wall_ns_) / bound : 0.0);
    }
    w.end_object();
    w.key("domains").begin_array();
    for (const auto& d : ledger_.domains) {
      w.begin_object();
      w.kv("domain", std::uint64_t{d.domain});
      for (const auto& [id, label] : domain_labels_) {
        if (id == d.domain) {
          w.kv("label", std::string_view(label));
          break;
        }
      }
      w.kv("batches", d.batches);
      w.kv("ops", d.ops);
      w.kv("sum_bop_wall_ns", d.sum_bop_wall_ns);
      w.kv("sum_bop_span_ns", d.sum_bop_span_ns);
      // One latency histogram per batch-size bucket — the s(n) evidence.
      // Keys name the bucket's inclusive upper bound; empty buckets are
      // omitted.
      const auto size_histograms = [&](const trace::LatencyHistogram* hists) {
        w.begin_object();
        for (std::size_t b = 0; b < trace::ledger::kSizeBuckets; ++b) {
          if (hists[b].count() == 0) continue;
          char key[16];
          if (b + 1 < trace::ledger::kSizeBuckets) {
            std::snprintf(key, sizeof key, "le_%llu",
                          static_cast<unsigned long long>(
                              trace::ledger::size_bucket_max(b)));
          } else {
            std::snprintf(key, sizeof key, "gt_%llu",
                          static_cast<unsigned long long>(
                              trace::ledger::size_bucket_max(b - 1)));
          }
          w.key(key);
          trace::histogram_to_json(hists[b], w);
        }
        w.end_object();
      };
      w.key("bop_wall_by_size");
      size_histograms(d.bop_wall_by_size);
      w.key("bop_span_by_size");
      size_histograms(d.bop_span_by_size);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();

  const std::string path = out_dir() + "/BENCH_" + name_ + ".json";
  const bool ok = write_file(path, w.str());
  if (ok) {
    note("report: %s", path.c_str());
  } else {
    note("report: FAILED to write %s", path.c_str());
  }
  return ok;
}

}  // namespace batcher::bench
