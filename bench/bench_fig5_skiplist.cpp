// FIG5-real — reproduces the measurement protocol of the paper's Figure 5 on
// real threads: throughput of BATCHER skip-list insertion vs. a sequential
// skip list, for several initial sizes and worker counts.
//
// Protocol (paper §7): pre-populate the list to `initial` elements, then time
// the insertion of `kInserts` further elements; each BATCHIFY call carries
// 100 insertion records (the paper's trick for simulating bigger batches).
//
// Two additions over the paper's figure:
//   * every BAT lane runs twice, once per ApplyPolicy (sort-merge splice vs
//     the legacy sequential splice), as the s(n) ablation A/B;
//   * a span-profile section drives run_batch directly at controlled batch
//     sizes and books each call into the bound ledger, so the report carries
//     per-size s(n) histograms for both policies (`span_growth/<label>` is
//     synthesized from them by tools/bench_compare.py).  Organic batches on
//     this box almost never exceed a couple of ops, which is why the profile
//     drives sizes explicitly.
//
// NOTE on hardware: the paper ran on 8 real cores.  This container has a
// single CPU, so multi-worker rows here measure scheduling overhead under
// time-slicing, not parallel speedup; the 1-worker BAT vs SEQ comparison
// (the paper's overhead claim) is the meaningful real-hardware number, and
// bench_sim_fig5 reproduces the scaling shape on simulated processors.
// Measured span is still meaningful at any worker count: the ledger folds
// strand segments max-wise at joins, so the critical path of a divide-and-
// conquer splice stays logarithmic even when executed on one core.
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "concurrent/seq_skiplist.hpp"
#include "ds/batched_skiplist.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"

namespace {

using batcher::Stopwatch;
using batcher::ds::ApplyPolicy;
using batcher::ds::BatchedSkipList;
namespace bench = batcher::bench;

const std::int64_t kInserts =
    bench::scaled(100000, 10000);           // paper: 100,000
constexpr std::int64_t kPerRecord = 100;    // paper: 100 records per BATCHIFY

const char* policy_name(ApplyPolicy p) {
  return p == ApplyPolicy::SortMerge ? "sortmerge" : "legacy";
}

double run_sequential(std::int64_t initial, std::uint64_t seed) {
  batcher::conc::SeqSkipList list(seed);
  const auto init_keys =
      bench::random_keys(static_cast<std::size_t>(initial), seed + 1);
  for (auto k : init_keys) list.insert(k);
  const auto keys =
      bench::random_keys(static_cast<std::size_t>(kInserts), seed + 2);
  Stopwatch sw;
  for (auto k : keys) list.insert(k);
  return sw.elapsed_seconds();
}

struct BatResult {
  double seconds;
  double mean_batch;
};

BatResult run_batcher(std::int64_t initial, unsigned workers,
                      ApplyPolicy apply, std::uint64_t seed,
                      bench::Report& report) {
  const std::string label = std::string("BAT/apply=") + policy_name(apply) +
                            "/initial=" + std::to_string(initial) +
                            "/P=" + std::to_string(workers);
  // Scheduler stats come from the destructor-time snapshot: that is the
  // flushed quiescent point at which the frame-pool identities the report
  // validator checks (frames_allocated == frames_freed) hold exactly.
  batcher::rt::StatsSnapshot final_stats;
  BatResult result{};
  {
    batcher::rt::Scheduler sched(workers);
    sched.export_final_stats(&final_stats);
    BatchedSkipList list(sched, seed, batcher::Batcher::kDefaultSetup, apply);
    const auto init_keys =
        bench::random_keys(static_cast<std::size_t>(initial), seed + 1);
    for (auto k : init_keys) list.insert_unsafe(k);
    const auto keys =
        bench::random_keys(static_cast<std::size_t>(kInserts), seed + 2);
    const std::int64_t calls = kInserts / kPerRecord;

    Stopwatch sw;
    sched.run([&] {
      batcher::rt::parallel_for(
          0, calls,
          [&](std::int64_t c) {
            list.multi_insert(std::span<const std::int64_t>(
                keys.data() + c * kPerRecord, kPerRecord));
          },
          /*grain=*/1);
    });
    result.seconds = sw.elapsed_seconds();
    const batcher::BatcherStats stats = list.batcher().stats();
    result.mean_batch = stats.mean_batch_size();
    report.batcher_stats(label, stats);
  }
  report.scheduler_stats(label, final_stats);
  return result;
}

// Drives `list.run_batch` directly (bypassing the launcher) at controlled
// batch sizes, booking every invocation into the bound ledger under the
// list's trace domain.  Each size does an insert round with fresh keys and
// an erase round over those same keys, so both rewritten passes are
// measured.  Returns nothing: the evidence lands in the report's
// bound_ledger section.
void span_profile(batcher::rt::Scheduler& sched, BatchedSkipList& list,
                  std::uint64_t seed) {
  constexpr std::size_t kProfileSizes[] = {1, 4, 16, 64, 4096};
  // Unbooked warmup reps absorb cold caches and arena block faults; the
  // booked mean still rides OS jitter, so take enough samples that one
  // descheduled rep cannot dominate a bucket.
  constexpr int kWarmup = 3;
  constexpr int kReps = 96;
  constexpr std::int64_t kPrepopulate = 10000;

  const auto init_keys =
      bench::random_keys(static_cast<std::size_t>(kPrepopulate), seed + 1);
  for (auto k : init_keys) list.insert_unsafe(k);

  const std::uint16_t domain = list.batcher().trace_id();
  std::uint64_t salt = seed + 2;
  sched.run([&] {
    for (std::size_t n : kProfileSizes) {
      for (int rep = 0; rep < kWarmup + kReps; ++rep) {
        const bool warm = rep >= kWarmup;
        const auto keys = bench::random_keys(n, ++salt);
        std::vector<BatchedSkipList::Op> ops(n);
        std::vector<batcher::OpRecordBase*> ptrs(n);
        for (std::size_t i = 0; i < n; ++i) {
          ops[i].kind = BatchedSkipList::Kind::Insert;
          ops[i].key = keys[i];
          ptrs[i] = &ops[i];
        }
        if (warm) {
          bench::profiled_bop(domain, n,
                              [&] { list.run_batch(ptrs.data(), n); });
        } else {
          list.run_batch(ptrs.data(), n);
        }
        for (std::size_t i = 0; i < n; ++i) {
          ops[i].kind = BatchedSkipList::Kind::Erase;
          ops[i].key = keys[i];
          ops[i].found = false;
        }
        if (warm) {
          bench::profiled_bop(domain, n,
                              [&] { list.run_batch(ptrs.data(), n); });
        } else {
          list.run_batch(ptrs.data(), n);
        }
      }
    }
  });
}

}  // namespace

int main() {
  bench::header("FIG5-real",
                "BATCHER vs sequential skip-list insert throughput "
                "(paper Fig. 5 protocol, real threads)");
  bench::note("inserting %lld keys, %lld per operation record",
              static_cast<long long>(kInserts),
              static_cast<long long>(kPerRecord));
  bench::note("host has %u hardware thread(s): multi-worker rows show "
              "overhead under time-slicing; see FIG5-sim for scaling shape",
              std::thread::hardware_concurrency());
  bench::Report report("fig5_skiplist");
  report.config("inserts", static_cast<std::uint64_t>(kInserts));
  report.config("per_record", static_cast<std::uint64_t>(kPerRecord));
  bench::TraceScope trace(report);

  // Span-profile structures are constructed before any throughput-lane
  // structure and stay alive through report.write(): trace domain ids are
  // recycled on unregister, so this ordering pins their ledger domains (and
  // the labels attached to them) for the whole run.
  batcher::rt::Scheduler profile_sched(1);
  BatchedSkipList profile_legacy(profile_sched, 17,
                                 batcher::Batcher::kDefaultSetup,
                                 ApplyPolicy::Legacy);
  BatchedSkipList profile_sortmerge(profile_sched, 17,
                                    batcher::Batcher::kDefaultSetup,
                                    ApplyPolicy::SortMerge);
  report.domain_label(profile_legacy.batcher().trace_id(), "skiplist_legacy");
  report.domain_label(profile_sortmerge.batcher().trace_id(),
                      "skiplist_sortmerge");
  if (batcher::trace::enabled()) {
    bench::note("span profile: directly driven batches of size 1..4096, "
                "insert+erase, both apply policies -> bound_ledger");
    span_profile(profile_sched, profile_legacy, 17);
    span_profile(profile_sched, profile_sortmerge, 17);
  }

  bench::row("%-10s %-14s %-8s %12s %12s", "initial", "variant", "workers",
             "Minserts/s", "mean batch");

  const std::int64_t full_sizes[] = {20000, 100000, 1000000};
  const std::int64_t smoke_sizes[] = {2000, 10000, 10000};
  for (int s = 0; s < 3; ++s) {
    const std::int64_t initial =
        bench::smoke() ? smoke_sizes[s] : full_sizes[s];
    const double seq_secs = run_sequential(initial, 42);
    bench::row("%-10lld %-14s %-8d %12.3f %12s",
               static_cast<long long>(initial), "SEQ", 1,
               bench::mops(kInserts, seq_secs), "-");
    report.metric("minserts_per_s/SEQ/initial=" + std::to_string(initial),
                  bench::mops(kInserts, seq_secs) * 1e6, "1/s");
    for (unsigned workers : {1u, 2u, 4u, 8u}) {
      for (ApplyPolicy apply :
           {ApplyPolicy::SortMerge, ApplyPolicy::Legacy}) {
        const BatResult r = run_batcher(initial, workers, apply, 42, report);
        const std::string variant =
            apply == ApplyPolicy::SortMerge ? "BAT" : "BAT-legacy";
        bench::row("%-10lld %-14s %-8u %12.3f %12.2f",
                   static_cast<long long>(initial), variant.c_str(), workers,
                   bench::mops(kInserts, r.seconds), r.mean_batch);
        report.metric("minserts_per_s/" + variant + "/initial=" +
                          std::to_string(initial) +
                          "/P=" + std::to_string(workers),
                      bench::mops(kInserts, r.seconds) * 1e6, "1/s");
      }
    }
  }
  report.write();
  std::printf("\n");
  return 0;
}
