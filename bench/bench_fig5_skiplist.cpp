// FIG5-real — reproduces the measurement protocol of the paper's Figure 5 on
// real threads: throughput of BATCHER skip-list insertion vs. a sequential
// skip list, for several initial sizes and worker counts.
//
// Protocol (paper §7): pre-populate the list to `initial` elements, then time
// the insertion of `kInserts` further elements; each BATCHIFY call carries
// 100 insertion records (the paper's trick for simulating bigger batches).
//
// NOTE on hardware: the paper ran on 8 real cores.  This container has a
// single CPU, so multi-worker rows here measure scheduling overhead under
// time-slicing, not parallel speedup; the 1-worker BAT vs SEQ comparison
// (the paper's overhead claim) is the meaningful real-hardware number, and
// bench_sim_fig5 reproduces the scaling shape on simulated processors.
#include <cstdio>
#include <thread>

#include "bench/common.hpp"
#include "concurrent/seq_skiplist.hpp"
#include "ds/batched_skiplist.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"

namespace {

using batcher::Stopwatch;
using batcher::ds::BatchedSkipList;
namespace bench = batcher::bench;

constexpr std::int64_t kInserts = 100000;   // paper: 100,000
constexpr std::int64_t kPerRecord = 100;    // paper: 100 records per BATCHIFY

double run_sequential(std::int64_t initial, std::uint64_t seed) {
  batcher::conc::SeqSkipList list(seed);
  const auto init_keys =
      bench::random_keys(static_cast<std::size_t>(initial), seed + 1);
  for (auto k : init_keys) list.insert(k);
  const auto keys =
      bench::random_keys(static_cast<std::size_t>(kInserts), seed + 2);
  Stopwatch sw;
  for (auto k : keys) list.insert(k);
  return sw.elapsed_seconds();
}

struct BatResult {
  double seconds;
  double mean_batch;
};

BatResult run_batcher(std::int64_t initial, unsigned workers,
                      std::uint64_t seed) {
  batcher::rt::Scheduler sched(workers);
  BatchedSkipList list(sched, seed);
  const auto init_keys =
      bench::random_keys(static_cast<std::size_t>(initial), seed + 1);
  for (auto k : init_keys) list.insert_unsafe(k);
  const auto keys =
      bench::random_keys(static_cast<std::size_t>(kInserts), seed + 2);
  const std::int64_t calls = kInserts / kPerRecord;

  Stopwatch sw;
  sched.run([&] {
    batcher::rt::parallel_for(
        0, calls,
        [&](std::int64_t c) {
          list.multi_insert(std::span<const std::int64_t>(
              keys.data() + c * kPerRecord, kPerRecord));
        },
        /*grain=*/1);
  });
  const double secs = sw.elapsed_seconds();
  return BatResult{secs, list.batcher().stats().mean_batch_size()};
}

}  // namespace

int main() {
  bench::header("FIG5-real",
                "BATCHER vs sequential skip-list insert throughput "
                "(paper Fig. 5 protocol, real threads)");
  bench::note("inserting %lld keys, %lld per operation record",
              static_cast<long long>(kInserts),
              static_cast<long long>(kPerRecord));
  bench::note("host has %u hardware thread(s): multi-worker rows show "
              "overhead under time-slicing; see FIG5-sim for scaling shape",
              std::thread::hardware_concurrency());
  bench::row("%-10s %-8s %-8s %12s %12s", "initial", "variant", "workers",
             "Minserts/s", "mean batch");

  const std::int64_t initial_sizes[] = {20000, 100000, 1000000};
  for (std::int64_t initial : initial_sizes) {
    const double seq_secs = run_sequential(initial, 42);
    bench::row("%-10lld %-8s %-8d %12.3f %12s",
               static_cast<long long>(initial), "SEQ", 1,
               bench::mops(kInserts, seq_secs), "-");
    for (unsigned workers : {1u, 2u, 4u, 8u}) {
      const BatResult r = run_batcher(initial, workers, 42);
      bench::row("%-10lld %-8s %-8u %12.3f %12.2f",
                 static_cast<long long>(initial), "BAT", workers,
                 bench::mops(kInserts, r.seconds), r.mean_batch);
    }
  }
  std::printf("\n");
  return 0;
}
