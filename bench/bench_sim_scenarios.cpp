// SCEN-sim — adversarial scenario sweep: BATCHER vs flat combining vs a
// contended concurrent structure across workload shape × P grids.
//
// The 1-core container cannot run P in the thousands; the simulator can.
// For every workload shape of src/sim/scenario.hpp (uniform, zipfian skew,
// flash crowds, trapped-heavy, working-set locality) this harness simulates
// the same core dag + keyed cost model under three policies and reports the
// makespan grid plus the *crossover point*: the smallest simulated P at which
// BATCHER's makespan drops below each rival's and stays below for the rest
// of the grid.  All three simulators are deterministic functions of the
// scenario seed, so every metric here is exactly reproducible and the
// committed smoke baseline gates bit-exact in CI
// (tools/bench_compare.py --metric sim_makespan/ --metric crossover/).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "sim/dag.hpp"
#include "sim/scenario.hpp"
#include "sim/sim_batcher.hpp"
#include "sim/sim_concurrent.hpp"
#include "sim/sim_flatcomb.hpp"

namespace {
namespace bench = batcher::bench;
using namespace batcher::sim;

constexpr std::uint64_t kSeed = 42;

// Smallest P whose makespan is below the rival's from there to the end of the
// grid; 0 when BATCHER never durably wins on this grid.
std::int64_t crossover(const std::vector<unsigned>& grid,
                       const std::vector<std::int64_t>& ours,
                       const std::vector<std::int64_t>& rival) {
  for (std::size_t i = 0; i < grid.size(); ++i) {
    bool durable = true;
    for (std::size_t j = i; j < grid.size(); ++j) {
      if (ours[j] >= rival[j]) {
        durable = false;
        break;
      }
    }
    if (durable) return static_cast<std::int64_t>(grid[i]);
  }
  return 0;
}

}  // namespace

int main() {
  bench::header("SCEN-sim",
                "adversarial workload shapes at simulator scale: "
                "BATCHER vs flat combining vs contended-concurrent");

  const std::int64_t ops = bench::scaled(8192, 2048);
  std::vector<unsigned> grid{16, 64, 256, 1024};
  if (!bench::smoke()) grid.push_back(4096);

  bench::Report report("sim_scenarios");
  report.config("ops", ops);
  report.config("seed", kSeed);
  {
    std::string g;
    for (unsigned P : grid) g += (g.empty() ? "" : ",") + std::to_string(P);
    report.config("p_grid", g);
  }

  const Shape shapes[] = {Shape::Uniform, Shape::Zipfian, Shape::FlashCrowd,
                          Shape::TrappedHeavy, Shape::WorkingSet};
  bench::row("%-13s %-5s %12s %12s %12s %8s", "shape", "P", "batcher",
             "flatcomb", "concurrent", "b/fc");

  for (Shape shape : shapes) {
    const ScenarioConfig cfg = make_scenario_config(shape, ops, kSeed);
    const ScenarioGen gen(cfg);
    const Dag core = gen.build_core_dag();
    const std::string sname = shape_name(shape);

    report.metric("tape/" + sname + "/distinct_keys",
                  static_cast<double>(gen.distinct_keys()), "keys");
    report.metric("tape/" + sname + "/top_key_fraction",
                  gen.top_key_fraction(), "ratio");
    report.metric("tape/" + sname + "/repeat_fraction_w64",
                  gen.repeat_fraction(64), "ratio");

    std::vector<std::int64_t> mk_batcher, mk_flatcomb, mk_concurrent;
    for (unsigned P : grid) {
      const std::string suffix = "/" + sname + "/P=" + std::to_string(P);

      auto bmodel = gen.make_cost_model();
      BatcherSimConfig bcfg;
      bcfg.workers = P;
      bcfg.seed = kSeed;
      const SimResult rb = simulate_batcher(core, *bmodel, bcfg);
      mk_batcher.push_back(rb.makespan);
      report.metric("sim_makespan/BATCHER" + suffix,
                    static_cast<double>(rb.makespan), "steps");
      report.metric("sim_batches/BATCHER" + suffix,
                    static_cast<double>(rb.batches), "batches");
      report.metric("sim_mean_batch/BATCHER" + suffix, rb.mean_batch_size(),
                    "ops");
      report.metric("sim_trapped_frac/BATCHER" + suffix,
                    rb.makespan == 0
                        ? 0.0
                        : static_cast<double>(rb.trapped_steps) /
                              (static_cast<double>(rb.makespan) * P),
                    "ratio");

      auto fmodel = gen.make_cost_model();
      const SimResult rf = simulate_flatcomb(core, *fmodel, P, kSeed);
      mk_flatcomb.push_back(rf.makespan);
      report.metric("sim_makespan/FLATCOMB" + suffix,
                    static_cast<double>(rf.makespan), "steps");

      auto cmodel = gen.make_cost_model();
      ConcurrentSimConfig ccfg;
      ccfg.workers = P;
      ccfg.seed = kSeed;
      ccfg.base_cost = cmodel->sequential_op_cost();
      ccfg.contention_factor = 1;
      const SimResult rc = simulate_concurrent(core, ccfg);
      mk_concurrent.push_back(rc.makespan);
      report.metric("sim_makespan/CONCURRENT" + suffix,
                    static_cast<double>(rc.makespan), "steps");

      bench::row("%-13s %-5u %12lld %12lld %12lld %8.2f", sname.c_str(), P,
                 static_cast<long long>(rb.makespan),
                 static_cast<long long>(rf.makespan),
                 static_cast<long long>(rc.makespan),
                 rf.makespan == 0 ? 0.0
                                  : static_cast<double>(rb.makespan) /
                                        static_cast<double>(rf.makespan));
    }

    const std::int64_t x_fc = crossover(grid, mk_batcher, mk_flatcomb);
    const std::int64_t x_cc = crossover(grid, mk_batcher, mk_concurrent);
    report.metric("crossover/" + sname + "/batcher_beats_flatcomb",
                  static_cast<double>(x_fc), "workers");
    report.metric("crossover/" + sname + "/batcher_beats_concurrent",
                  static_cast<double>(x_cc), "workers");
    bench::note("%s: batcher beats flatcomb from P=%lld, concurrent from "
                "P=%lld (0 = never on this grid); tape: %lld distinct keys, "
                "top-key %.1f%%, repeat@64 %.1f%%",
                sname.c_str(), static_cast<long long>(x_fc),
                static_cast<long long>(x_cc),
                static_cast<long long>(gen.distinct_keys()),
                100.0 * gen.top_key_fraction(),
                100.0 * gen.repeat_fraction(64));
  }

  report.write();
  std::printf("\n");
  return 0;
}
