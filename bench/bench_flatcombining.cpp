// FC-comp — the paper's §7 flat-combining comparison: BATCHER (parallel
// batches) vs. flat combining (sequential batches), real threads and
// simulated processors.
//
// Paper claim: at 1 worker the two perform similarly; flat combining degrades
// as cores increase while BATCHER scales.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "concurrent/flat_combining.hpp"
#include "concurrent/seq_skiplist.hpp"
#include "ds/batched_skiplist.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"
#include "sim/cost_model.hpp"
#include "sim/dag.hpp"
#include "sim/sim_batcher.hpp"
#include "sim/sim_flatcomb.hpp"

namespace {
namespace bench = batcher::bench;
using batcher::Stopwatch;

const std::int64_t kInitial = bench::scaled(100000, 10000);
const std::int64_t kInserts = bench::scaled(50000, 5000);

struct FcOp {
  std::int64_t key;
  bool inserted;
};

double run_flat_combining(unsigned threads, std::uint64_t seed) {
  batcher::conc::SeqSkipList list(seed);
  for (auto k : bench::random_keys(kInitial, seed + 1)) list.insert(k);
  auto apply = [&](FcOp* op) { op->inserted = list.insert(op->key); };
  batcher::conc::FlatCombiner<FcOp, decltype(apply)> fc(threads, apply);

  const auto keys = bench::random_keys(kInserts, seed + 2);
  const std::int64_t per_thread = kInserts / threads;
  Stopwatch sw;
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      const std::int64_t lo = t * per_thread;
      for (std::int64_t i = lo; i < lo + per_thread; ++i) {
        FcOp op;
        op.key = keys[static_cast<std::size_t>(i)];
        fc.apply(t, op);
      }
    });
  }
  for (auto& th : pool) th.join();
  return sw.elapsed_seconds();
}

double run_batcher_real(unsigned workers, std::uint64_t seed,
                        bench::Report& report) {
  batcher::rt::Scheduler sched(workers);
  batcher::ds::BatchedSkipList list(sched, seed);
  for (auto k : bench::random_keys(kInitial, seed + 1)) list.insert_unsafe(k);
  const auto keys = bench::random_keys(kInserts, seed + 2);
  Stopwatch sw;
  sched.run([&] {
    batcher::rt::parallel_for(
        0, kInserts,
        [&](std::int64_t i) { list.insert(keys[static_cast<std::size_t>(i)]); },
        /*grain=*/16);
  });
  const double secs = sw.elapsed_seconds();
  report.batcher_stats("BATCHER/P=" + std::to_string(workers),
                       list.batcher().stats());
  return secs;
}

}  // namespace

int main() {
  bench::header("FC-comp",
                "BATCHER vs flat combining on skip-list inserts (paper §7)");

  bench::Report report("flatcombining");
  report.config("initial", static_cast<std::uint64_t>(kInitial));
  report.config("inserts", static_cast<std::uint64_t>(kInserts));
  bench::TraceScope trace(report);

  bench::note("real threads (single-core host: absolute numbers show "
              "overhead only; the simulated table below shows scaling)");
  bench::row("%-6s %-14s %12s", "P", "variant", "Minserts/s");
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    const double fc_secs = run_flat_combining(threads, 11);
    const double bat_secs = run_batcher_real(threads, 11, report);
    bench::row("%-6u %-14s %12.3f", threads, "FLATCOMB",
               bench::mops(kInserts, fc_secs));
    bench::row("%-6u %-14s %12.3f", threads, "BATCHER",
               bench::mops(kInserts, bat_secs));
    report.metric("minserts_per_s/FLATCOMB/P=" + std::to_string(threads),
                  bench::mops(kInserts, fc_secs) * 1e6, "1/s");
    report.metric("minserts_per_s/BATCHER/P=" + std::to_string(threads),
                  bench::mops(kInserts, bat_secs) * 1e6, "1/s");
  }

  bench::note("simulated processors, per-op cost ~ lg(1M)");
  bench::row("%-6s %-14s %12s %10s", "P", "variant", "makespan", "speedup");
  using namespace batcher::sim;
  Dag core = build_parallel_loop_with_ds(4096, 1, 1, 1);
  std::int64_t base_b = 0, base_f = 0;
  for (unsigned workers : {1u, 2u, 4u, 8u, 16u}) {
    SkipListCostModel mb(1 << 20), mf(1 << 20);
    BatcherSimConfig cfg;
    cfg.workers = workers;
    const SimResult rb = simulate_batcher(core, mb, cfg);
    const SimResult rf = simulate_flatcomb(core, mf, workers, 1);
    if (workers == 1) {
      base_b = rb.makespan;
      base_f = rf.makespan;
    }
    bench::row("%-6u %-14s %12lld %10.2f", workers, "FLATCOMB",
               static_cast<long long>(rf.makespan),
               static_cast<double>(base_f) / static_cast<double>(rf.makespan));
    bench::row("%-6u %-14s %12lld %10.2f", workers, "BATCHER",
               static_cast<long long>(rb.makespan),
               static_cast<double>(base_b) / static_cast<double>(rb.makespan));
    report.metric("sim_makespan/FLATCOMB/P=" + std::to_string(workers),
                  static_cast<double>(rf.makespan), "steps");
    report.metric("sim_makespan/BATCHER/P=" + std::to_string(workers),
                  static_cast<double>(rb.makespan), "steps");
  }
  bench::note("paper: similar at P=1; flat combining flattens/degrades with "
              "more cores, BATCHER keeps scaling");
  report.write();
  std::printf("\n");
  return 0;
}
