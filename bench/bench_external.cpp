// T7-external — robustness counters and throughput of the deadline-aware,
// overload-shedding ExternalDomain (DESIGN.md §13).
//
// Three sections:
//
//   1. timeout: try_submit against a domain whose pump never runs — every op
//      publishes, expires, and revokes itself.  ops_timed_out is an exact,
//      machine-independent count (no pump exists to win the claim race), so
//      external/ops_timed_out gates CI via bench_compare --exact.
//   2. shed+retry: the backlog is pre-filled to shed_threshold by blocked
//      submitters, then further submissions are refused before publication.
//      ops_shed and retries_attempted are exact counts for the same reason —
//      a full backlog with no pump can never drain mid-call.
//   3. round-trip: a served domain under client threads, reported as Mops/s
//      (machine-dependent, report-only) with its quiescent external_stats
//      row, whose ops_served == ops_succeeded + ops_failed + ops_timed_out
//      identity the report validator enforces.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "batcher/external.hpp"
#include "bench/common.hpp"
#include "ds/batched_counter.hpp"
#include "runtime/scheduler.hpp"

namespace {
namespace bench = batcher::bench;
using batcher::DomainClosed;
using batcher::DomainOverloaded;
using batcher::ExternalDomain;
using batcher::OpTimedOut;
using batcher::RetryPolicy;
using batcher::Stopwatch;

constexpr std::uint64_t kTimeoutOps = 32;
constexpr std::size_t kBacklog = 4;      // shed_threshold = pre-filled depth
constexpr std::uint64_t kShedDirect = 32;
constexpr unsigned kRetryCalls = 4;
constexpr unsigned kMaxRetries = 3;

// 1. Every try_submit against a pump-less domain times out deterministically.
void run_timeout_section(bench::Report& report) {
  batcher::rt::Scheduler sched(2);
  batcher::ds::BatchedCounter counter(sched);
  ExternalDomain domain(sched, counter, /*max_threads=*/1);
  std::thread client([&] {
    for (std::uint64_t i = 0; i < kTimeoutOps; ++i) {
      batcher::ds::BatchedCounter::Op op;
      op.delta = 1;
      try {
        domain.try_submit(0, op);
      } catch (const OpTimedOut&) {
      }
    }
  });
  client.join();
  bench::row("%-22s %8llu ops timed out (expected %llu)", "timeout:",
             static_cast<unsigned long long>(domain.ops_timed_out()),
             static_cast<unsigned long long>(kTimeoutOps));
  report.metric("external/ops_timed_out",
                static_cast<double>(domain.ops_timed_out()), "count");
  report.external_stats("timeout", domain.stats());
}

// 2. A pre-filled backlog sheds further submissions and drives the retry
// policy to exhaustion — both counts are exact.
void run_shed_section(bench::Report& report) {
  batcher::rt::Scheduler sched(2);
  batcher::ds::BatchedCounter counter(sched);
  ExternalDomain::Options options;
  options.shed_threshold = kBacklog;
  ExternalDomain domain(sched, counter, /*max_threads=*/kBacklog + 1, options);

  // Fill the backlog: kBacklog threads publish and block (no pump runs).
  std::vector<std::thread> blocked;
  for (std::size_t t = 0; t < kBacklog; ++t) {
    blocked.emplace_back([&, t] {
      batcher::ds::BatchedCounter::Op op;
      op.delta = 1;
      try {
        domain.submit(t, op);
      } catch (const DomainClosed&) {
      }
    });
  }
  while (domain.pending_depth() < kBacklog) std::this_thread::yield();

  // Direct sheds: refused before publication, every time.
  std::thread shedder([&] {
    for (std::uint64_t i = 0; i < kShedDirect; ++i) {
      batcher::ds::BatchedCounter::Op op;
      op.delta = 1;
      try {
        domain.try_submit(kBacklog, op);
      } catch (const DomainOverloaded&) {
      }
    }
    // Retry-policy sheds: each call burns its full retry budget.
    RetryPolicy policy;
    policy.seed = 42;
    policy.max_retries = kMaxRetries;
    policy.base_spins = 16;
    for (unsigned c = 0; c < kRetryCalls; ++c) {
      batcher::ds::BatchedCounter::Op op;
      op.delta = 1;
      try {
        domain.submit_with_retry(kBacklog, op, policy);
      } catch (const DomainOverloaded&) {
      }
    }
  });
  shedder.join();
  domain.shutdown();  // unblocks the backlog threads with DomainClosed
  for (auto& th : blocked) th.join();

  const std::uint64_t expected_shed =
      kShedDirect + std::uint64_t{kRetryCalls} * (kMaxRetries + 1);
  const std::uint64_t expected_retries =
      std::uint64_t{kRetryCalls} * kMaxRetries;
  bench::row("%-22s %8llu ops shed (expected %llu)", "shed:",
             static_cast<unsigned long long>(domain.ops_shed()),
             static_cast<unsigned long long>(expected_shed));
  bench::row("%-22s %8llu retries attempted (expected %llu)", "retry:",
             static_cast<unsigned long long>(domain.retries_attempted()),
             static_cast<unsigned long long>(expected_retries));
  report.metric("external/ops_shed", static_cast<double>(domain.ops_shed()),
                "count");
  report.metric("external/retries_attempted",
                static_cast<double>(domain.retries_attempted()), "count");
  report.external_stats("shed", domain.stats());
}

// 3. Served round trips: machine-dependent throughput, report-only.
void run_roundtrip_section(bench::Report& report) {
  const unsigned kClients = 4;
  const std::int64_t kPer = bench::scaled(20000, 2000);
  batcher::rt::Scheduler sched(4);
  batcher::ds::BatchedCounter counter(sched);
  ExternalDomain domain(sched, counter, kClients);

  std::atomic<unsigned> finished{0};
  std::vector<std::thread> clients;
  Stopwatch sw;
  for (unsigned t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (std::int64_t i = 0; i < kPer; ++i) {
        batcher::ds::BatchedCounter::Op op;
        op.delta = 1;
        // A generous deadline: exercises the submit_until path without
        // expecting timeouts (any that do occur stay inside the identity).
        try {
          domain.submit_until(t, op,
                              std::chrono::steady_clock::now() +
                                  std::chrono::seconds(30));
        } catch (const OpTimedOut&) {
        }
      }
      if (finished.fetch_add(1) + 1 == kClients) domain.shutdown();
    });
  }
  sched.run([&] { domain.serve(); });
  for (auto& th : clients) th.join();
  const double secs = sw.elapsed_seconds();

  const std::int64_t total = static_cast<std::int64_t>(kClients) * kPer;
  const double throughput = bench::mops(total, secs);
  bench::row("%-22s %8.3f Mops/s (%u clients x %lld ops, %llu batches)",
             "round-trip:", throughput, kClients,
             static_cast<long long>(kPer),
             static_cast<unsigned long long>(domain.batches_served()));
  report.metric("external/mops", throughput * 1e6, "1/s");
  report.metric("external/batches_served",
                static_cast<double>(domain.batches_served()), "count");
  report.external_stats("roundtrip", domain.stats());
}

}  // namespace

int main() {
  bench::header("T7-external",
                "ExternalDomain robustness: deadline timeouts, overload "
                "shedding, retry policy, served round trips (DESIGN.md §13)");
  bench::Report report("external");
  report.config("timeout_ops", kTimeoutOps);
  report.config("shed_threshold", static_cast<std::uint64_t>(kBacklog));
  report.config("shed_direct", kShedDirect);
  report.config("retry_calls", kRetryCalls);
  report.config("max_retries", kMaxRetries);
  bench::TraceScope trace(report);

  run_timeout_section(report);
  run_shed_section(report);
  run_roundtrip_section(report);

  report.write();
  return 0;
}
