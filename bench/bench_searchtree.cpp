// T1-tree — the paper's §3 search-tree example: n parallel inserts into the
// batched 2-3 tree, with the Θ(n lg n / P) optimality check and the
// simulated speedup curve.
//
// The weight-balanced tree lanes run twice, once per ApplyPolicy (bulk
// sort-merge insert vs the legacy build+union path), and a span-profile
// section drives run_batch directly at controlled batch sizes so the report
// carries per-size s(n) histograms for both policies (gated downstream as
// span_growth/wbtree_*).
#include <cmath>
#include <cstdio>
#include <set>
#include <vector>

#include "bench/common.hpp"
#include "ds/batched_tree23.hpp"
#include "ds/batched_wbtree.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"
#include "sim/cost_model.hpp"
#include "sim/dag.hpp"
#include "sim/sim_batcher.hpp"

namespace {
namespace bench = batcher::bench;
using batcher::Stopwatch;
using batcher::ds::ApplyPolicy;
using batcher::ds::BatchedWBTree;

const std::int64_t kN = bench::scaled(100000, 10000);

const char* policy_name(ApplyPolicy p) {
  return p == ApplyPolicy::SortMerge ? "sortmerge" : "legacy";
}

double run_batched_tree(unsigned workers, double* mean_batch,
                        bench::Report& report) {
  batcher::rt::Scheduler sched(workers);
  batcher::ds::BatchedTree23 tree(sched);
  const auto keys = bench::random_keys(kN, 5);
  Stopwatch sw;
  sched.run([&] {
    batcher::rt::parallel_for(
        0, kN,
        [&](std::int64_t i) { tree.insert(keys[static_cast<std::size_t>(i)]); },
        /*grain=*/16);
  });
  const double secs = sw.elapsed_seconds();
  const batcher::BatcherStats stats = tree.batcher().stats();
  report.batcher_stats("BATCHED-2-3/P=" + std::to_string(workers), stats);
  *mean_batch = stats.mean_batch_size();
  return secs;
}

double run_batched_wbtree(unsigned workers, ApplyPolicy apply,
                          double* mean_batch, bench::Report& report) {
  batcher::rt::Scheduler sched(workers);
  BatchedWBTree tree(sched, batcher::Batcher::kDefaultSetup, apply);
  const auto keys = bench::random_keys(kN, 5);
  Stopwatch sw;
  sched.run([&] {
    batcher::rt::parallel_for(
        0, kN,
        [&](std::int64_t i) { tree.insert(keys[static_cast<std::size_t>(i)]); },
        /*grain=*/16);
  });
  const double secs = sw.elapsed_seconds();
  const batcher::BatcherStats stats = tree.batcher().stats();
  report.batcher_stats(std::string("BATCHED-WB/apply=") + policy_name(apply) +
                           "/P=" + std::to_string(workers),
                       stats);
  *mean_batch = stats.mean_batch_size();
  return secs;
}

double run_std_set() {
  std::set<std::int64_t> tree;
  const auto keys = bench::random_keys(kN, 5);
  Stopwatch sw;
  for (auto k : keys) tree.insert(k);
  return sw.elapsed_seconds();
}

// Directly driven batches at controlled sizes: an insert round of fresh keys
// then an erase round of the same keys, booked into the bound ledger under
// the tree's trace domain (see bench_fig5_skiplist.cpp for the rationale).
void span_profile(batcher::rt::Scheduler& sched, BatchedWBTree& tree,
                  std::uint64_t seed) {
  constexpr std::size_t kProfileSizes[] = {1, 4, 16, 64, 4096};
  // Unbooked warmup reps absorb cold caches and arena block faults; the
  // booked mean still rides OS jitter, so take enough samples that one
  // descheduled rep cannot dominate a bucket.
  constexpr int kWarmup = 3;
  constexpr int kReps = 96;
  constexpr std::int64_t kPrepopulate = 10000;

  const auto init_keys =
      bench::random_keys(static_cast<std::size_t>(kPrepopulate), seed + 1);
  for (auto k : init_keys) tree.insert_unsafe(k);

  const std::uint16_t domain = tree.batcher().trace_id();
  std::uint64_t salt = seed + 2;
  sched.run([&] {
    for (std::size_t n : kProfileSizes) {
      for (int rep = 0; rep < kWarmup + kReps; ++rep) {
        const bool warm = rep >= kWarmup;
        const auto keys = bench::random_keys(n, ++salt);
        std::vector<BatchedWBTree::Op> ops(n);
        std::vector<batcher::OpRecordBase*> ptrs(n);
        for (std::size_t i = 0; i < n; ++i) {
          ops[i].kind = BatchedWBTree::Kind::Insert;
          ops[i].key = keys[i];
          ptrs[i] = &ops[i];
        }
        if (warm) {
          bench::profiled_bop(domain, n,
                              [&] { tree.run_batch(ptrs.data(), n); });
        } else {
          tree.run_batch(ptrs.data(), n);
        }
        for (std::size_t i = 0; i < n; ++i) {
          ops[i].kind = BatchedWBTree::Kind::Erase;
          ops[i].key = keys[i];
          ops[i].found = false;
        }
        if (warm) {
          bench::profiled_bop(domain, n,
                              [&] { tree.run_batch(ptrs.data(), n); });
        } else {
          tree.run_batch(ptrs.data(), n);
        }
      }
    }
  });
}

}  // namespace

int main() {
  bench::header("T1-tree",
                "n parallel inserts into the batched 2-3 tree (paper §3 "
                "search-tree example)");
  bench::note("%lld random keys; sequential std::set shown for scale",
              static_cast<long long>(kN));
  bench::Report report("searchtree");
  report.config("n", static_cast<std::uint64_t>(kN));
  bench::TraceScope trace(report);

  // Constructed before the throughput lanes and kept alive through
  // report.write() so their recycled-on-unregister trace domain ids (and the
  // labels bound to them) stay stable.
  batcher::rt::Scheduler profile_sched(1);
  BatchedWBTree profile_legacy(profile_sched, batcher::Batcher::kDefaultSetup,
                               ApplyPolicy::Legacy);
  BatchedWBTree profile_sortmerge(profile_sched,
                                  batcher::Batcher::kDefaultSetup,
                                  ApplyPolicy::SortMerge);
  report.domain_label(profile_legacy.batcher().trace_id(), "wbtree_legacy");
  report.domain_label(profile_sortmerge.batcher().trace_id(),
                      "wbtree_sortmerge");
  if (batcher::trace::enabled()) {
    bench::note("span profile: directly driven batches of size 1..4096, "
                "insert+erase, both apply policies -> bound_ledger");
    span_profile(profile_sched, profile_legacy, 23);
    span_profile(profile_sched, profile_sortmerge, 23);
  }

  bench::row("%-6s %-18s %12s %12s", "P", "variant", "Mins/s", "mean batch");
  {
    const double secs = run_std_set();
    bench::row("%-6d %-18s %12.3f %12s", 1, "STD::SET", bench::mops(kN, secs),
               "-");
    report.metric("mins_per_s/STD::SET", bench::mops(kN, secs) * 1e6, "1/s");
  }
  for (unsigned p : {1u, 2u, 4u, 8u}) {
    double mean_batch = 0;
    const double secs = run_batched_tree(p, &mean_batch, report);
    bench::row("%-6u %-18s %12.3f %12.2f", p, "BATCHED-2-3",
               bench::mops(kN, secs), mean_batch);
    report.metric("mins_per_s/BATCHED-2-3/P=" + std::to_string(p),
                  bench::mops(kN, secs) * 1e6, "1/s");
    for (ApplyPolicy apply : {ApplyPolicy::SortMerge, ApplyPolicy::Legacy}) {
      double wb_mean_batch = 0;
      const double wb_secs =
          run_batched_wbtree(p, apply, &wb_mean_batch, report);
      const std::string variant = apply == ApplyPolicy::SortMerge
                                      ? "BATCHED-WB"
                                      : "BATCHED-WB-legacy";
      bench::row("%-6u %-18s %12.3f %12.2f", p, variant.c_str(),
                 bench::mops(kN, wb_secs), wb_mean_batch);
      report.metric("mins_per_s/" + variant + "/P=" + std::to_string(p),
                    bench::mops(kN, wb_secs) * 1e6, "1/s");
    }
  }

  bench::note("simulated processors: makespan vs the Theta(n lg n / P) "
              "optimum (ratio should stay bounded as P grows)");
  bench::row("%-6s %12s %16s %8s", "P", "makespan", "n*lg(n)/P (opt)",
             "ratio");
  using namespace batcher::sim;
  const std::int64_t n_ops = 4096;
  Dag core = build_parallel_loop_with_ds(n_ops, 1, 1, 1);
  for (unsigned workers : {1u, 2u, 4u, 8u, 16u}) {
    SearchTreeCostModel model(1 << 20);
    BatcherSimConfig cfg;
    cfg.workers = workers;
    const SimResult res = simulate_batcher(core, model, cfg);
    const double opt = static_cast<double>(n_ops) * ilog2(1 << 20) /
                       static_cast<double>(workers);
    bench::row("%-6u %12lld %16.0f %8.2f", workers,
               static_cast<long long>(res.makespan), opt,
               static_cast<double>(res.makespan) / opt);
    report.metric("sim_makespan_over_opt/P=" + std::to_string(workers),
                  static_cast<double>(res.makespan) / opt, "ratio");
  }
  bench::note("paper: O((T1 + n lg n)/P + m lg n + T-inf) == asymptotically "
              "optimal in the comparison model, linear speedup");
  report.write();
  std::printf("\n");
  return 0;
}
