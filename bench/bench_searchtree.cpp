// T1-tree — the paper's §3 search-tree example: n parallel inserts into the
// batched 2-3 tree, with the Θ(n lg n / P) optimality check and the
// simulated speedup curve.
#include <cmath>
#include <cstdio>
#include <set>

#include "bench/common.hpp"
#include "ds/batched_tree23.hpp"
#include "ds/batched_wbtree.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"
#include "sim/cost_model.hpp"
#include "sim/dag.hpp"
#include "sim/sim_batcher.hpp"

namespace {
namespace bench = batcher::bench;
using batcher::Stopwatch;

const std::int64_t kN = bench::scaled(100000, 10000);

double run_batched_tree(unsigned workers, double* mean_batch,
                        bench::Report& report) {
  batcher::rt::Scheduler sched(workers);
  batcher::ds::BatchedTree23 tree(sched);
  const auto keys = bench::random_keys(kN, 5);
  Stopwatch sw;
  sched.run([&] {
    batcher::rt::parallel_for(
        0, kN,
        [&](std::int64_t i) { tree.insert(keys[static_cast<std::size_t>(i)]); },
        /*grain=*/16);
  });
  const double secs = sw.elapsed_seconds();
  const batcher::BatcherStats stats = tree.batcher().stats();
  report.batcher_stats("BATCHED-2-3/P=" + std::to_string(workers), stats);
  *mean_batch = stats.mean_batch_size();
  return secs;
}

double run_batched_wbtree(unsigned workers, double* mean_batch,
                          bench::Report& report) {
  batcher::rt::Scheduler sched(workers);
  batcher::ds::BatchedWBTree tree(sched);
  const auto keys = bench::random_keys(kN, 5);
  Stopwatch sw;
  sched.run([&] {
    batcher::rt::parallel_for(
        0, kN,
        [&](std::int64_t i) { tree.insert(keys[static_cast<std::size_t>(i)]); },
        /*grain=*/16);
  });
  const double secs = sw.elapsed_seconds();
  const batcher::BatcherStats stats = tree.batcher().stats();
  report.batcher_stats("BATCHED-WB/P=" + std::to_string(workers), stats);
  *mean_batch = stats.mean_batch_size();
  return secs;
}

double run_std_set() {
  std::set<std::int64_t> tree;
  const auto keys = bench::random_keys(kN, 5);
  Stopwatch sw;
  for (auto k : keys) tree.insert(k);
  return sw.elapsed_seconds();
}

}  // namespace

int main() {
  bench::header("T1-tree",
                "n parallel inserts into the batched 2-3 tree (paper §3 "
                "search-tree example)");
  bench::note("%lld random keys; sequential std::set shown for scale",
              static_cast<long long>(kN));
  bench::Report report("searchtree");
  report.config("n", static_cast<std::uint64_t>(kN));
  bench::TraceScope trace(report);
  bench::row("%-6s %-14s %12s %12s", "P", "variant", "Mins/s", "mean batch");
  {
    const double secs = run_std_set();
    bench::row("%-6d %-14s %12.3f %12s", 1, "STD::SET", bench::mops(kN, secs),
               "-");
    report.metric("mins_per_s/STD::SET", bench::mops(kN, secs) * 1e6, "1/s");
  }
  for (unsigned p : {1u, 2u, 4u, 8u}) {
    double mean_batch = 0;
    const double secs = run_batched_tree(p, &mean_batch, report);
    bench::row("%-6u %-14s %12.3f %12.2f", p, "BATCHED-2-3",
               bench::mops(kN, secs), mean_batch);
    double wb_mean_batch = 0;
    const double wb_secs = run_batched_wbtree(p, &wb_mean_batch, report);
    bench::row("%-6u %-14s %12.3f %12.2f", p, "BATCHED-WB",
               bench::mops(kN, wb_secs), wb_mean_batch);
    report.metric("mins_per_s/BATCHED-2-3/P=" + std::to_string(p),
                  bench::mops(kN, secs) * 1e6, "1/s");
    report.metric("mins_per_s/BATCHED-WB/P=" + std::to_string(p),
                  bench::mops(kN, wb_secs) * 1e6, "1/s");
  }

  bench::note("simulated processors: makespan vs the Theta(n lg n / P) "
              "optimum (ratio should stay bounded as P grows)");
  bench::row("%-6s %12s %16s %8s", "P", "makespan", "n*lg(n)/P (opt)",
             "ratio");
  using namespace batcher::sim;
  const std::int64_t n_ops = 4096;
  Dag core = build_parallel_loop_with_ds(n_ops, 1, 1, 1);
  for (unsigned workers : {1u, 2u, 4u, 8u, 16u}) {
    SearchTreeCostModel model(1 << 20);
    BatcherSimConfig cfg;
    cfg.workers = workers;
    const SimResult res = simulate_batcher(core, model, cfg);
    const double opt = static_cast<double>(n_ops) * ilog2(1 << 20) /
                       static_cast<double>(workers);
    bench::row("%-6u %12lld %16.0f %8.2f", workers,
               static_cast<long long>(res.makespan), opt,
               static_cast<double>(res.makespan) / opt);
    report.metric("sim_makespan_over_opt/P=" + std::to_string(workers),
                  static_cast<double>(res.makespan) / opt, "ratio");
  }
  bench::note("paper: O((T1 + n lg n)/P + m lg n + T-inf) == asymptotically "
              "optimal in the comparison model, linear speedup");
  report.write();
  std::printf("\n");
  return 0;
}
