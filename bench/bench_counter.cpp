// T1-counter — the paper's §3 shared-counter example: n parallel increments
// under (a) the implicitly batched counter, (b) an atomic fetch-and-add
// counter, (c) a mutex counter, plus the simulated Ω(n)-contention story.
//
// Theory: batched counter runs in O(n lgP / P + lg n); a mutually exclusive
// RMW counter is Ω(n) regardless of P.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "concurrent/counters.hpp"
#include "ds/batched_counter.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"
#include "sim/cost_model.hpp"
#include "sim/dag.hpp"
#include "sim/sim_batcher.hpp"
#include "sim/sim_concurrent.hpp"

namespace {
namespace bench = batcher::bench;
using batcher::Stopwatch;

const std::int64_t kN = bench::scaled(200000, 20000);

double run_batched(unsigned workers, bench::Report& report) {
  // Scheduler stats come from the destructor-time snapshot: that is the
  // flushed quiescent point at which the frame-pool identities the report
  // validator checks (frames_allocated == frames_freed) hold exactly.
  batcher::rt::StatsSnapshot final_stats;
  double secs = 0.0;
  {
    batcher::rt::Scheduler sched(workers);
    sched.export_final_stats(&final_stats);
    batcher::ds::BatchedCounter counter(sched);
    Stopwatch sw;
    sched.run([&] {
      batcher::rt::parallel_for(0, kN,
                                [&](std::int64_t) { counter.increment(1); },
                                /*grain=*/64);
    });
    secs = sw.elapsed_seconds();
    if (counter.value_unsafe() != kN) std::printf("  !! counter mismatch\n");
    report.batcher_stats("BATCHED/P=" + std::to_string(workers),
                         counter.batcher().stats());
  }
  report.scheduler_stats("BATCHED/P=" + std::to_string(workers), final_stats);
  return secs;
}

template <typename Counter>
double run_threaded(unsigned threads) {
  Counter counter;
  Stopwatch sw;
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      for (std::int64_t i = 0; i < kN / threads; ++i) counter.increment(1);
    });
  }
  for (auto& th : pool) th.join();
  return sw.elapsed_seconds();
}

}  // namespace

int main() {
  bench::header("T1-counter",
                "n parallel increments: batched vs atomic vs mutex counters "
                "(paper §3 example)");
  bench::Report report("counter");
  report.config("n", static_cast<std::uint64_t>(kN));
  bench::TraceScope trace(report);
  bench::row("%-6s %-14s %12s", "P", "variant", "Mincs/s");
  for (unsigned p : {1u, 2u, 4u, 8u}) {
    const double batched = bench::mops(kN, run_batched(p, report));
    const double atomic =
        bench::mops(kN, run_threaded<batcher::conc::AtomicCounter>(p));
    const double mutex =
        bench::mops(kN, run_threaded<batcher::conc::MutexCounter>(p));
    bench::row("%-6u %-14s %12.3f", p, "BATCHED", batched);
    bench::row("%-6u %-14s %12.3f", p, "ATOMIC", atomic);
    bench::row("%-6u %-14s %12.3f", p, "MUTEX", mutex);
    const std::string suffix = "/P=" + std::to_string(p);
    report.metric("mincs_per_s/BATCHED" + suffix, batched * 1e6, "1/s");
    report.metric("mincs_per_s/ATOMIC" + suffix, atomic * 1e6, "1/s");
    report.metric("mincs_per_s/MUTEX" + suffix, mutex * 1e6, "1/s");
  }

  bench::note("simulated processors: BATCHER vs serializing concurrent "
              "counter (the introduction's Omega(n) scenario)");
  bench::row("%-6s %-14s %12s %10s", "P", "variant", "makespan", "speedup");
  using namespace batcher::sim;
  Dag core = build_parallel_loop_with_ds(8192, 1, 1, 1);
  std::int64_t base_b = 0, base_c = 0;
  for (unsigned workers : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    CounterCostModel model;
    BatcherSimConfig bcfg;
    bcfg.workers = workers;
    const SimResult rb = simulate_batcher(core, model, bcfg);

    ConcurrentSimConfig ccfg;
    ccfg.workers = workers;
    ccfg.base_cost = 1;
    ccfg.contention_factor = 1;  // mutually exclusive RMW
    const SimResult rc = simulate_concurrent(core, ccfg);

    if (workers == 1) {
      base_b = rb.makespan;
      base_c = rc.makespan;
    }
    bench::row("%-6u %-14s %12lld %10.2f", workers, "BATCHED",
               static_cast<long long>(rb.makespan),
               static_cast<double>(base_b) / static_cast<double>(rb.makespan));
    bench::row("%-6u %-14s %12lld %10.2f", workers, "CONTENDED-FAA",
               static_cast<long long>(rc.makespan),
               static_cast<double>(base_c) / static_cast<double>(rc.makespan));
    const std::string suffix = "/P=" + std::to_string(workers);
    report.metric("sim_makespan/BATCHED" + suffix,
                  static_cast<double>(rb.makespan), "steps");
    report.metric("sim_makespan/CONTENDED-FAA" + suffix,
                  static_cast<double>(rc.makespan), "steps");
  }
  bench::note("paper: the serializing counter flatlines at its Omega(n) "
              "floor (makespan ~ n) while the batched counter keeps "
              "improving with P; increments are cheap, so the crossover "
              "needs large P — which is exactly the paper's conclusion that "
              "implicit batching pays off once per-op work amortizes the "
              "batching overhead (cf. the skip-list/tree benches)");
  report.write();
  std::printf("\n");
  return 0;
}
