// The interface between the three parties of implicit batching (§3):
//
//  * the *algorithm programmer* calls blocking data-structure operations that
//    internally hand an OpRecord to the scheduler (`Batcher::batchify`);
//  * the *data-structure programmer* implements `BatchedStructure::run_batch`
//    (the paper's BOP), a dynamically multithreaded function that receives a
//    whole batch and never has to cope with concurrency;
//  * the *runtime* (Batcher) stitches the two together.
#pragma once

#include <cstddef>

namespace batcher {

// Base of every operation record.  A data structure derives its own record
// type carrying the operation's arguments and result slot, exactly like the
// paper's `struct OpRecord { int value; int result; }` (Fig. 2).  Records
// live on the stack of the blocked caller; they stay valid for the whole
// batch because the caller is trapped until its status turns done.
struct OpRecordBase {
 protected:
  OpRecordBase() = default;
  ~OpRecordBase() = default;  // never deleted through the base
};

// A batched implementation of an abstract data type.  `run_batch` is the BOP
// of the paper: it is invoked by the scheduler with the compacted working
// set, runs as a batch dag (it may fork via rt::parallel_invoke and friends),
// and is guaranteed:
//
//   Invariant 1 — at most one run_batch is executing at any time, so no
//                 locks or atomics are needed inside;
//   Invariant 2 — count <= P (the number of workers).
class BatchedStructure {
 public:
  virtual ~BatchedStructure() = default;

  virtual void run_batch(OpRecordBase* const* ops, std::size_t count) = 0;
};

}  // namespace batcher
