// The interface between the three parties of implicit batching (§3):
//
//  * the *algorithm programmer* calls blocking data-structure operations that
//    internally hand an OpRecord to the scheduler (`Batcher::batchify`);
//  * the *data-structure programmer* implements `BatchedStructure::run_batch`
//    (the paper's BOP), a dynamically multithreaded function that receives a
//    whole batch and never has to cope with concurrency;
//  * the *runtime* (Batcher) stitches the two together.
#pragma once

#include <cstddef>
#include <exception>

namespace batcher {

// Base of every operation record.  A data structure derives its own record
// type carrying the operation's arguments and result slot, exactly like the
// paper's `struct OpRecord { int value; int result; }` (Fig. 2).  Records
// live on the stack of the blocked caller; they stay valid for the whole
// batch because the caller is trapped until its status turns done.
//
// Failure plumbing (DESIGN.md §8): when a batch fails — the BOP throws, or
// the launch protocol itself throws — the launcher records the exception in
// every record the batch had collected before flipping it to done, so the
// trapped caller resumes and `batchify` rethrows the error to it.  The error
// fields are written only by the (unique) launcher before the done-release
// store and read by the owner after its done-acquire load, so they need no
// synchronization of their own.
struct OpRecordBase {
  bool failed() const noexcept { return error_ != nullptr; }
  const std::exception_ptr& error() const noexcept { return error_; }
  void set_error(std::exception_ptr error) noexcept {
    error_ = std::move(error);
  }
  void clear_error() noexcept { error_ = nullptr; }
  void rethrow_if_failed() const {
    if (error_ != nullptr) std::rethrow_exception(error_);
  }

 protected:
  OpRecordBase() = default;
  ~OpRecordBase() = default;  // never deleted through the base

 private:
  std::exception_ptr error_;
};

// A batched implementation of an abstract data type.  `run_batch` is the BOP
// of the paper: it is invoked by the scheduler with the compacted working
// set, runs as a batch dag (it may fork via rt::parallel_invoke and friends),
// and is guaranteed:
//
//   Invariant 1 — at most one run_batch is executing at any time, so no
//                 locks or atomics are needed inside;
//   Invariant 2 — count <= P (the number of workers).
//
// A BOP may throw (including out of its own parallel_for joins).  The
// scheduler then records the exception in every collected record, completes
// the batch protocol, reopens the domain, and rethrows the error from each
// blocked operation call — the domain stays usable and the next batch
// launches normally.  A BOP that throws should leave the structure in a
// consistent state (strong guarantee per batch is the structure's job).
class BatchedStructure {
 public:
  virtual ~BatchedStructure() = default;

  virtual void run_batch(OpRecordBase* const* ops, std::size_t count) = 0;
};

}  // namespace batcher
