#include "batcher/batcher.hpp"

#include "parallel/prefix_sum.hpp"
#include "runtime/api.hpp"
#include "runtime/schedule_hooks.hpp"
#include "support/backoff.hpp"

namespace batcher {

namespace hooks = rt::hooks;

Batcher::Batcher(rt::Scheduler& sched, BatchedStructure& ds, SetupPolicy setup)
    : sched_(sched), ds_(ds), setup_(setup) {
  const std::size_t P = sched_.num_workers();
  slots_ = std::vector<Slot>(P);
  working_.resize(P, nullptr);
  marks_.resize(P, 0);
  stat_cells_.histogram = std::vector<std::atomic<std::uint64_t>>(P + 1);
}

void Batcher::batchify(OpRecordBase& op) {
  rt::Worker* w = rt::Worker::current();
  BATCHER_ASSERT(w != nullptr && w->scheduler() == &sched_,
                 "batchify must be called from a worker of the owning scheduler");
  BATCHER_ASSERT(w->current_kind() == rt::TaskKind::Core,
                 "batch implementations must not invoke batchify themselves");

  Slot& slot = slots_[w->id()];
  BATCHER_DASSERT(slot.status.load(std::memory_order_relaxed) == OpStatus::Free,
                  "a worker has at most one suspended data-structure node");
  hooks::emit({hooks::HookPoint::kBatchifyEnter, w->id(), rt::TaskKind::Core,
               w->current_kind(), this});
  slot.op = &op;
  // Emitted before the release store: a launcher can only observe (and report
  // on) this slot after the store, so the observer sees free->pending first.
  hooks::emit({hooks::HookPoint::kStatusFreeToPending, w->id(),
               rt::TaskKind::Core, w->current_kind(), this});
  // The release pairs with the launcher's acquire scan: a launcher that sees
  // `Pending` also sees the op pointer and the operation's arguments.
  slot.status.store(OpStatus::Pending, std::memory_order_release);

  // The trapped-worker rules of Fig. 3.
  Backoff backoff;
  while (true) {
    // Non-empty batch deque: execute batch work.
    rt::Task* task = w->pop(rt::TaskKind::Batch);
    if (task != nullptr) {
      w->run_task(task);
      backoff.reset();
      continue;
    }
    // Batch deque empty: resume if our operation completed.
    if (slot.status.load(std::memory_order_acquire) == OpStatus::Done) break;
    // Otherwise try to launch a batch if none is active...
    std::uint32_t expected = 0;
    if (batch_flag_.load(std::memory_order_relaxed) == 0 &&
        batch_flag_.compare_exchange_strong(expected, 1,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
#if BATCHER_AUDIT
      if (!hooks::test_faults().skip_batch_flag_cas.load(
              std::memory_order_relaxed))
#endif
      {
        hooks::emit({hooks::HookPoint::kFlagCasWon, w->id(),
                     rt::TaskKind::Core, w->current_kind(), this});
      }
      w->run_inline(rt::TaskKind::Batch, [this] { launch_batch(); });
      backoff.reset();
      continue;
    }
    // ...else steal from a random victim's batch deque.
    task = w->try_steal(rt::TaskKind::Batch);
    if (task != nullptr) {
      w->run_task(task);
      backoff.reset();
    } else {
      backoff.pause();
    }
  }

  // done -> free: only the owning worker makes this transition (§4).
  hooks::emit({hooks::HookPoint::kStatusDoneToFree, w->id(),
               rt::TaskKind::Core, w->current_kind(), this});
  slot.op = nullptr;
  slot.status.store(OpStatus::Free, std::memory_order_relaxed);
  hooks::emit({hooks::HookPoint::kBatchifyExit, w->id(), rt::TaskKind::Core,
               w->current_kind(), this});
}

void Batcher::launch_batch() {
  const unsigned launcher = rt::Worker::current()->id();
  hooks::emit({hooks::HookPoint::kLaunchEnter, launcher, rt::TaskKind::Batch,
               rt::TaskKind::Batch, this});
  const std::int32_t already =
      batches_running_.fetch_add(1, std::memory_order_acq_rel);
  BATCHER_ASSERT(already == 0, "Invariant 1 violated: overlapping batches");

  std::size_t count = 0;
  if (setup_ == SetupPolicy::Sequential) {
    collect_sequential(&count);
  } else {
    collect_parallel(&count);
  }
  hooks::emit({hooks::HookPoint::kBatchCollected, launcher,
               rt::TaskKind::Batch, rt::TaskKind::Batch, this, count});
  BATCHER_ASSERT(count <= sched_.num_workers(),
                 "Invariant 2 violated: batch larger than P");

  if (count > 0) {
    ds_.run_batch(working_.data(), count);
    if (setup_ == SetupPolicy::Sequential) {
      complete_sequential();
    } else {
      complete_parallel();
    }
  }

  // Stats (we are the unique launcher; plain relaxed updates suffice).
  auto bump = [](std::atomic<std::uint64_t>& c, std::uint64_t n = 1) {
    c.store(c.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
  };
  bump(stat_cells_.batches_launched);
  if (count == 0) bump(stat_cells_.empty_batches);
  bump(stat_cells_.ops_processed, count);
  if (count > stat_cells_.max_batch_size.load(std::memory_order_relaxed)) {
    stat_cells_.max_batch_size.store(count, std::memory_order_relaxed);
  }
  bump(stat_cells_.histogram[count]);

  batches_running_.fetch_sub(1, std::memory_order_acq_rel);
  // Emitted before the flag reopens: the next launcher's kFlagCasWon cannot
  // precede this event, so the observer's flag-holder model stays exact.
  hooks::emit({hooks::HookPoint::kLaunchExit, launcher, rt::TaskKind::Batch,
               rt::TaskKind::Batch, this, count});
  // Reopen the domain.  Release pairs with the next launcher's CAS acquire.
  batch_flag_.store(0, std::memory_order_release);
}

void Batcher::collect_sequential(std::size_t* out_count) {
  const std::size_t P = slots_.size();
  std::size_t count = 0;
  for (std::size_t i = 0; i < P; ++i) {
    if (slots_[i].status.load(std::memory_order_acquire) == OpStatus::Pending) {
      hooks::emit({hooks::HookPoint::kStatusPendingToExecuting,
                   static_cast<unsigned>(i), rt::TaskKind::Batch,
                   rt::TaskKind::Batch, this});
      slots_[i].status.store(OpStatus::Executing, std::memory_order_relaxed);
      working_[count++] = slots_[i].op;
    }
  }
  *out_count = count;
}

void Batcher::collect_parallel(std::size_t* out_count) {
  // Fig. 4 steps 1-2: parallel status flip, then prefix-sum compaction.
  const std::int64_t P = static_cast<std::int64_t>(slots_.size());
  rt::parallel_for(
      0, P,
      [this](std::int64_t i) {
        auto& s = slots_[static_cast<std::size_t>(i)];
        if (s.status.load(std::memory_order_acquire) == OpStatus::Pending) {
          hooks::emit({hooks::HookPoint::kStatusPendingToExecuting,
                       static_cast<unsigned>(i), rt::TaskKind::Batch,
                       rt::TaskKind::Batch, this});
          s.status.store(OpStatus::Executing, std::memory_order_relaxed);
          marks_[static_cast<std::size_t>(i)] = 1;
        } else {
          marks_[static_cast<std::size_t>(i)] = 0;
        }
      },
      /*grain=*/1);
  par::scan_inclusive(marks_.data(), P,
                      [](std::uint32_t a, std::uint32_t b) { return a + b; });
  const std::size_t count = marks_[static_cast<std::size_t>(P - 1)];
  rt::parallel_for(
      0, P,
      [this](std::int64_t i) {
        auto& s = slots_[static_cast<std::size_t>(i)];
        // Executing status marks exactly the records this batch collected:
        // the previous batch moved all of its records to Done before the
        // batch flag reopened.
        if (s.status.load(std::memory_order_relaxed) == OpStatus::Executing) {
          working_[marks_[static_cast<std::size_t>(i)] - 1] = s.op;
        }
      },
      /*grain=*/1);
  *out_count = count;
}

void Batcher::complete_sequential() {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& s = slots_[i];
    if (s.status.load(std::memory_order_relaxed) == OpStatus::Executing) {
      hooks::emit({hooks::HookPoint::kStatusExecutingToDone,
                   static_cast<unsigned>(i), rt::TaskKind::Batch,
                   rt::TaskKind::Batch, this});
      // Release publishes the results BOP wrote into the op records.
      s.status.store(OpStatus::Done, std::memory_order_release);
    }
  }
}

void Batcher::complete_parallel() {
  const std::int64_t P = static_cast<std::int64_t>(slots_.size());
  rt::parallel_for(
      0, P,
      [this](std::int64_t i) {
        auto& s = slots_[static_cast<std::size_t>(i)];
        if (s.status.load(std::memory_order_relaxed) == OpStatus::Executing) {
          hooks::emit({hooks::HookPoint::kStatusExecutingToDone,
                       static_cast<unsigned>(i), rt::TaskKind::Batch,
                       rt::TaskKind::Batch, this});
          s.status.store(OpStatus::Done, std::memory_order_release);
        }
      },
      /*grain=*/1);
}

BatcherStats Batcher::stats() const {
  BatcherStats out;
  out.batches_launched =
      stat_cells_.batches_launched.load(std::memory_order_relaxed);
  out.empty_batches = stat_cells_.empty_batches.load(std::memory_order_relaxed);
  out.ops_processed = stat_cells_.ops_processed.load(std::memory_order_relaxed);
  out.max_batch_size =
      stat_cells_.max_batch_size.load(std::memory_order_relaxed);
  out.batch_size_histogram.reserve(stat_cells_.histogram.size());
  for (const auto& h : stat_cells_.histogram) {
    out.batch_size_histogram.push_back(h.load(std::memory_order_relaxed));
  }
  return out;
}

void Batcher::reset_stats() {
  stat_cells_.batches_launched.store(0, std::memory_order_relaxed);
  stat_cells_.empty_batches.store(0, std::memory_order_relaxed);
  stat_cells_.ops_processed.store(0, std::memory_order_relaxed);
  stat_cells_.max_batch_size.store(0, std::memory_order_relaxed);
  for (auto& h : stat_cells_.histogram) h.store(0, std::memory_order_relaxed);
}

}  // namespace batcher
