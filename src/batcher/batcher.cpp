#include "batcher/batcher.hpp"

#include <stdexcept>

#include "parallel/prefix_sum.hpp"
#include "runtime/api.hpp"
#include "runtime/schedule_hooks.hpp"
#include "support/backoff.hpp"
#include "trace/bound_ledger.hpp"
#include "trace/trace.hpp"

namespace batcher {

namespace hooks = rt::hooks;

namespace {

constexpr hooks::HookPoint edge_hook(OpStatus from) {
  return from == OpStatus::Pending ? hooks::HookPoint::kStatusPendingToExecuting
                                   : hooks::HookPoint::kStatusExecutingToDone;
}

// Fault-injection point for the collect paths (compiles to nothing without
// BATCHER_AUDIT).  Fires *before* the slot flips, so a partially collected
// batch leaves earlier slots Executing (recovered by the BatchGuard) and the
// faulted slot Pending (picked up by the next batch).
inline void maybe_inject_collect_fault() {
#if BATCHER_AUDIT
  if (hooks::fire(hooks::test_faults().throw_in_collect)) {
    throw hooks::InjectedFault("injected fault: collect threw");
  }
#endif
}

}  // namespace

Batcher::Batcher(rt::Scheduler& sched, BatchedStructure& ds, SetupPolicy setup)
    : sched_(sched),
      ds_(ds),
      setup_(setup),
      trace_id_(trace::register_domain(this)) {
  const std::size_t P = sched_.num_workers();
  slots_ = std::vector<Slot>(P);
  for (std::size_t i = 0; i < P; ++i) {
    slots_[i].owner = static_cast<unsigned>(i);
  }
  working_.resize(P, nullptr);
  marks_.resize(P, 0);
  claimed_.resize(P, nullptr);
  chain_limit_ = P > 0 ? P : 1;
  stat_cells_.histogram = std::vector<std::atomic<std::uint64_t>>(P + 1);
}

void Batcher::set_chain_limit(std::size_t limit) {
  chain_limit_ = limit > 0 ? limit : 1;
}

Batcher::~Batcher() { trace::unregister_domain(this); }

void Batcher::batchify(OpRecordBase& op) {
  rt::Worker* w = rt::Worker::current();
  BATCHER_ASSERT(w != nullptr && w->scheduler() == &sched_,
                 "batchify must be called from a worker of the owning scheduler");
  BATCHER_ASSERT(w->current_kind() == rt::TaskKind::Core,
                 "batch implementations must not invoke batchify themselves");

  Slot& slot = slots_[w->id()];
  BATCHER_DASSERT(slot.status.load(std::memory_order_relaxed) == OpStatus::Free,
                  "a worker has at most one suspended data-structure node");
  op.clear_error();  // records may be reused across operations
  hooks::emit({hooks::HookPoint::kBatchifyEnter, w->id(), rt::TaskKind::Core,
               w->current_kind(), this});
  if (trace::enabled()) [[unlikely]] {
    trace::emit(w->id(), trace::EventId::kOpSubmit, trace_id_);
  }
  slot.op = &op;
  // Bound ledger: publish this op's path-so-far with the slot (the launcher
  // folds the batch's max into its launch strand after collect), then pause —
  // the whole trapped loop below is other strands' time: helped batch tasks
  // and any launch we run open scopes of their own over the paused state.
  if (trace::enabled()) [[unlikely]] {
    const trace::ledger::PathPoint path = trace::ledger::strand_now();
    slot.submit_path_ns = path.ns;
    slot.submit_path_tasks = path.tasks;
    // Clear any done path left from a previous session: if this op's
    // completion pass runs with tracing off it writes nothing, and resuming
    // from a stale path would fold foreign nanoseconds into this session.
    slot.done_path_ns = 0;
    slot.done_path_tasks = 0;
    trace::ledger::strand_pause();
  }
  // Emitted before the release store: a launcher can only observe (and report
  // on) this slot after the store, so the observer sees free->pending first.
  hooks::emit({hooks::HookPoint::kStatusFreeToPending, w->id(),
               rt::TaskKind::Core, w->current_kind(), this});
  // The release pairs with the launcher's acquire scan: a launcher that sees
  // `Pending` also sees the op pointer and the operation's arguments.
  slot.status.store(OpStatus::Pending, std::memory_order_release);

  if (setup_ == SetupPolicy::Announce) {
    // Announce the slot (DESIGN.md §11): one release CAS pushes it onto the
    // intrusive MPSC list the launcher claims wholesale.  The release — and,
    // for slots deeper in the list, the release sequence every later push
    // continues — pairs with the launcher's acquire exchange, so the claim
    // walk's relaxed status/op reads are ordered after this worker's
    // publication above.  Emitted-before-push mirrors the status hooks: an
    // observer sees the announce before any launcher can act on it.
    hooks::emit({hooks::HookPoint::kAnnouncePush, w->id(), rt::TaskKind::Core,
                 w->current_kind(), this});
    if (trace::enabled()) [[unlikely]] {
      trace::emit(w->id(), trace::EventId::kAnnouncePush, trace_id_);
    }
    stat_cells_.announce_pushes.fetch_add(1, std::memory_order_relaxed);
    Slot* head = announce_head_.load(std::memory_order_relaxed);
    do {
      slot.announce_next = head;
    } while (!announce_head_.compare_exchange_weak(head, &slot,
                                                   std::memory_order_release,
                                                   std::memory_order_relaxed));
  }

  // The trapped-worker rules of Fig. 3.
  Backoff backoff;
  while (true) {
    // Non-empty batch deque: execute batch work.
    rt::Task* task = w->pop(rt::TaskKind::Batch);
    if (task != nullptr) {
      w->run_task(task);
      backoff.reset();
      continue;
    }
    // Batch deque empty: resume if our operation completed.
    if (slot.status.load(std::memory_order_acquire) == OpStatus::Done) break;
    // Otherwise try to launch a batch if none is active.  The relaxed load
    // gates the CAS so a closed flag never costs an exclusive cache-line
    // acquisition, and a *lost* CAS race backs off before this worker
    // touches the flag line again — under a reopen storm (P trapped workers
    // racing one reopened flag) only the winner keeps hammering the line.
    if (batch_flag_.load(std::memory_order_relaxed) == 0) {
      std::uint32_t expected = 0;
      if (batch_flag_.compare_exchange_strong(expected, 1,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
#if BATCHER_AUDIT
        if (!hooks::test_faults().skip_batch_flag_cas.load(
                std::memory_order_relaxed))
#endif
        {
          hooks::emit({hooks::HookPoint::kFlagCasWon, w->id(),
                       rt::TaskKind::Core, w->current_kind(), this});
        }
        // Unlike the audit hook above, the trace record is not suppressed by
        // the skip_batch_flag_cas fault: the trace reports what the schedule
        // actually did, not what the auditor is being shown.
        if (trace::enabled()) [[unlikely]] {
          trace::emit(w->id(), trace::EventId::kFlagWon, trace_id_);
        }
        w->run_inline(rt::TaskKind::Batch, [this] { launch_batch(); });
        backoff.reset();
        continue;
      }
      // Lost the race: another trapped worker (or a chained launch) owns the
      // batch; count it, note it in the trace, and back off.
      stat_cells_.flag_cas_failures.fetch_add(1, std::memory_order_relaxed);
      if (trace::enabled()) [[unlikely]] {
        trace::emit(w->id(), trace::EventId::kFlagCasFail, trace_id_);
      }
      backoff.pause();
      continue;
    }
    // ...else steal from a random victim's batch deque.
    task = w->try_steal(rt::TaskKind::Batch);
    if (task != nullptr) {
      w->run_task(task);
      backoff.reset();
    } else {
      backoff.pause();
    }
  }

  // Bound ledger: resume the op's strand from the completion pass's path —
  // the Done acquire above ordered the done_path_* writes before these reads.
  if (trace::enabled()) [[unlikely]] {
    trace::ledger::strand_resume(
        {slot.done_path_ns, slot.done_path_tasks});
  }
  // done -> free: only the owning worker makes this transition (§4).
  hooks::emit({hooks::HookPoint::kStatusDoneToFree, w->id(),
               rt::TaskKind::Core, w->current_kind(), this});
  slot.op = nullptr;
  slot.status.store(OpStatus::Free, std::memory_order_relaxed);
  hooks::emit({hooks::HookPoint::kBatchifyExit, w->id(), rt::TaskKind::Core,
               w->current_kind(), this});
  if (trace::enabled()) [[unlikely]] {
    trace::emit(w->id(), trace::EventId::kOpResume, trace_id_);
  }
  // The slot is released either way; a failed op surfaces at its caller.
  op.rethrow_if_failed();
}

Batcher::BatchGuard::BatchGuard(Batcher& batcher, unsigned launcher)
    : b_(batcher), launcher_(launcher) {
  hooks::emit({hooks::HookPoint::kLaunchEnter, launcher_, rt::TaskKind::Batch,
               rt::TaskKind::Batch, &b_});
  if (trace::enabled()) [[unlikely]] {
    trace::emit(launcher_, trace::EventId::kLaunchEnter, b_.trace_id_);
  }
  const std::int32_t already =
      b_.batches_running_.fetch_add(1, std::memory_order_acq_rel);
  BATCHER_ASSERT(already == 0, "Invariant 1 violated: overlapping batches");
}

Batcher::BatchGuard::~BatchGuard() {
  std::size_t failed_ops = 0;
  std::size_t done = count_;
  if (!clean_) {
    // Recovery: every slot the batch collected but never completed is failed
    // with the launch error, so its trapped owner resumes (and rethrows).
    // Always sequential — we may be on the unwind path of a parallel phase.
    // The announce policy fails exactly the claimed list (O(batch)); the
    // scan policies rescan the P slots for Executing ones.
    std::exception_ptr error =
        error_ != nullptr
            ? error_
            : std::make_exception_ptr(
                  std::runtime_error("batcher: batch launch aborted"));
    failed_ops = b_.setup_ == SetupPolicy::Announce
                     ? b_.fail_claimed(error)
                     : b_.complete(/*parallel=*/false, error);
    if (!have_count_) done = failed_ops;  // collect died before counting
  }

  // Stats (we are the unique launcher; plain relaxed updates suffice).
  // Bumped here so no exit path — including a throwing BOP — skips them.
  auto bump = [](std::atomic<std::uint64_t>& c, std::uint64_t n = 1) {
    c.store(c.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
  };
  StatsCells& st = b_.stat_cells_;
  bump(st.batches_launched);
  if (done == 0) bump(st.empty_batches);
  if (!clean_) bump(st.failed_batches);
  if (clean_ && done > 0) bump(st.clean_nonempty_batches);
  bump(st.ops_processed, done);
  bump(st.ops_failed, failed_ops);
  bump(st.ops_succeeded, done - failed_ops);
  if (done > st.max_batch_size.load(std::memory_order_relaxed)) {
    st.max_batch_size.store(done, std::memory_order_relaxed);
  }
  if (done < st.histogram.size()) bump(st.histogram[done]);

  b_.batches_running_.fetch_sub(1, std::memory_order_acq_rel);
  // Emitted before the flag reopens: the next launcher's kFlagCasWon cannot
  // precede this event, so the observer's flag-holder model stays exact.
  hooks::emit({hooks::HookPoint::kLaunchExit, launcher_, rt::TaskKind::Batch,
               rt::TaskKind::Batch, &b_, done});
  if (trace::enabled()) [[unlikely]] {
    trace::emit(launcher_, trace::EventId::kLaunchExit, b_.trace_id_,
                static_cast<std::uint32_t>(done));
  }
  if (keep_flag_) return;  // a chained launch runs under the same hold
  // Reopen the domain.  kFlagReopen closes the flag-held trace window that
  // kFlagWon opened (kLaunchExit no longer implies a reopen); the release
  // store pairs with the next launcher's CAS acquire.
  if (trace::enabled()) [[unlikely]] {
    trace::emit(launcher_, trace::EventId::kFlagReopen, b_.trace_id_);
  }
  b_.batch_flag_.store(0, std::memory_order_release);
}

void Batcher::launch_batch() {
  const unsigned launcher = rt::Worker::current()->id();
  const bool parallel = setup_ == SetupPolicy::Parallel;
  const bool announce = setup_ == SetupPolicy::Announce;
  // Batch chaining (announce policy): each iteration is one complete launch
  // under its own BatchGuard — per-launch stats, hooks and trace events are
  // identical to the unchained protocol — but a clean launch that finds new
  // announcements keeps the flag and runs the next batch immediately,
  // skipping the reopen -> CAS storm -> relaunch round trip.  `chain`
  // counts launches already run under this hold; the chain is bounded by
  // chain_limit_ (default P) so one worker cannot monopolize the domain.
  for (std::size_t chain = 0;;) {
    bool chain_again = false;
    {
      // Bound ledger: each launch of the chain is a strand.  It starts empty
      // (the launcher's own core strand is paused in batchify) and, once the
      // batch is collected, folds in the longest submit path — the launch
      // depends on every op it carries.  Constructed before the guard so the
      // guard's failure completions still run under a live scope.
      const bool led = trace::enabled();
      trace::ledger::StrandScope lscope({0, 0}, led);
      BatchGuard guard(*this, launcher);
      try {
        const std::size_t count = announce ? collect_announce()
                                           : collect(parallel);
        guard.collected(count);
        hooks::emit({hooks::HookPoint::kBatchCollected, launcher,
                     rt::TaskKind::Batch, rt::TaskKind::Batch, this, count});
        if (trace::enabled()) [[unlikely]] {
          trace::emit(launcher, trace::EventId::kCollected, trace_id_,
                      static_cast<std::uint32_t>(count));
        }
        BATCHER_ASSERT(count <= sched_.num_workers(),
                       "Invariant 2 violated: batch larger than P");
        if (led && count > 0) [[unlikely]] {
          // Executing status marks exactly this batch's slots (the previous
          // batch carried all of its own to Done before the flag reopened);
          // a Θ(P) scan is fine on a trace-gated path.
          trace::ledger::PathPoint dep;
          for (const Slot& s : slots_) {
            if (s.status.load(std::memory_order_relaxed) !=
                OpStatus::Executing) {
              continue;
            }
            if (s.submit_path_ns > dep.ns) dep.ns = s.submit_path_ns;
            if (s.submit_path_tasks > dep.tasks) {
              dep.tasks = s.submit_path_tasks;
            }
          }
          trace::ledger::strand_fold(dep);
        }
#if BATCHER_AUDIT
        // Slow-launcher fault: stretch the window in which the batch flag is
        // held, for StallWatchdog tests.
        for (std::uint32_t i = hooks::test_faults().slow_launcher_spins.load(
                 std::memory_order_relaxed);
             i > 0; --i) {
          cpu_relax();
        }
#endif
        if (count > 0) {
#if BATCHER_AUDIT
          if (hooks::fire(hooks::test_faults().throw_in_bop)) {
            throw hooks::InjectedFault("injected fault: BOP threw");
          }
#endif
          std::uint64_t bop_wall0 = 0;
          trace::ledger::PathPoint bop_path0;
          if (led) [[unlikely]] {
            bop_wall0 = trace::now_ns();
            bop_path0 = trace::ledger::strand_now();
          }
          ds_.run_batch(working_.data(), count);
          if (led) [[unlikely]] {
            // Path sampled before the wall read (mirroring wall-before-path
            // on entry) so the span window nests inside the wall window and
            // span <= wall holds exactly, not just up to clock-read skew.
            const trace::ledger::PathPoint bop_path1 =
                trace::ledger::strand_now();
            const std::uint64_t bop_wall1 = trace::now_ns();
            // s(n) evidence: one sample per clean non-empty BOP — batch size
            // n, wall time, and measured span (path growth across the call).
            trace::ledger::note_batch(
                trace_id_, count,
                bop_wall1 >= bop_wall0 ? bop_wall1 - bop_wall0 : 0,
                bop_path1.ns - bop_path0.ns);
          }
          if (trace::enabled()) [[unlikely]] {
            trace::emit(launcher, trace::EventId::kBopDone, trace_id_,
                        static_cast<std::uint32_t>(count));
          }
          if (announce) {
            complete_claimed(/*error=*/nullptr);
          } else {
            complete(parallel, /*error=*/nullptr);
          }
        }
        guard.completed_cleanly();
        // Chain only off a clean launch: a failed one reopens the domain so
        // recovery semantics match the unchained path exactly.  The relaxed
        // head probe is only a hint: a stale-null miss just means the next
        // batch pays one flag round trip, and a non-null sighting cannot be
        // spurious (only owners push; collect_announce claims whatever is
        // really there, possibly more than we saw).
        if (announce && chain + 1 < chain_limit_ &&
            announce_head_.load(std::memory_order_relaxed) != nullptr) {
          chain_again = true;
          guard.keep_flag();
        }
      } catch (...) {
        // First (and only) launch error wins; the guard fails the remaining
        // collected slots and reopens the domain on destruction.
        guard.fail(std::current_exception());
      }
    }
    if (!chain_again) return;
    ++chain;
    // The guard's kLaunchExit cleared the observer's flag-holder; re-assert
    // it before the next kLaunchEnter so the auditor's Invariant 1 model
    // stays exact (the real flag never reopened).
    stat_cells_.chained_launches.fetch_add(1, std::memory_order_relaxed);
    hooks::emit({hooks::HookPoint::kLaunchChained, launcher,
                 rt::TaskKind::Batch, rt::TaskKind::Batch, this, chain});
    if (trace::enabled()) [[unlikely]] {
      trace::emit(launcher, trace::EventId::kLaunchChained, trace_id_,
                  static_cast<std::uint32_t>(chain));
    }
  }
}

template <OpStatus From, OpStatus To, typename PerSlot, typename PerMiss>
void Batcher::transition_slots(bool parallel, PerSlot&& per_slot,
                               PerMiss&& per_miss) {
  static_assert((From == OpStatus::Pending && To == OpStatus::Executing) ||
                    (From == OpStatus::Executing && To == OpStatus::Done),
                "only the launcher-owned Fig. 3 edges go through here");
  // Pending is read with acquire (pairs with batchify's publish of the op);
  // Done is stored with release (publishes BOP results and recorded errors).
  constexpr std::memory_order kLoad = From == OpStatus::Pending
                                          ? std::memory_order_acquire
                                          : std::memory_order_relaxed;
  constexpr std::memory_order kStore = To == OpStatus::Done
                                           ? std::memory_order_release
                                           : std::memory_order_relaxed;
  auto step = [&](std::size_t i) {
    Slot& s = slots_[i];
    if (s.status.load(kLoad) != From) {
      per_miss(i);
      return;
    }
    // per_slot runs before the hook + store so that (a) a throw leaves the
    // slot at `From` with the model and the real state agreeing, and (b) for
    // the Done edge the error write precedes the release store.
    per_slot(i, s);
    hooks::emit({edge_hook(From), static_cast<unsigned>(i),
                 rt::TaskKind::Batch, rt::TaskKind::Batch, this});
    s.status.store(To, kStore);
  };
  const std::size_t P = slots_.size();
  if (parallel) {
    rt::parallel_for(
        0, static_cast<std::int64_t>(P),
        [&](std::int64_t i) { step(static_cast<std::size_t>(i)); },
        /*grain=*/1);
  } else {
    for (std::size_t i = 0; i < P; ++i) step(i);
  }
}

template <OpStatus From, OpStatus To, typename PerSlot>
void Batcher::transition_slots(bool parallel, PerSlot&& per_slot) {
  transition_slots<From, To>(parallel, static_cast<PerSlot&&>(per_slot),
                             [](std::size_t) {});
}

std::size_t Batcher::collect(bool parallel) {
  if (!parallel) {
    std::size_t count = 0;
    transition_slots<OpStatus::Pending, OpStatus::Executing>(
        /*parallel=*/false, [&](std::size_t, Slot& s) {
          maybe_inject_collect_fault();
          working_[count++] = s.op;
        });
    return count;
  }
  // Fig. 4 steps 1-2: parallel status flip, then prefix-sum compaction.
  const std::int64_t P = static_cast<std::int64_t>(slots_.size());
  transition_slots<OpStatus::Pending, OpStatus::Executing>(
      /*parallel=*/true,
      [&](std::size_t i, Slot&) {
        maybe_inject_collect_fault();
        marks_[i] = 1;
      },
      [&](std::size_t i) { marks_[i] = 0; });
  par::scan_inclusive(marks_.data(), P,
                      [](std::uint32_t a, std::uint32_t b) { return a + b; });
  const std::size_t count = marks_[static_cast<std::size_t>(P - 1)];
  rt::parallel_for(
      0, P,
      [this](std::int64_t i) {
        auto& s = slots_[static_cast<std::size_t>(i)];
        // Executing status marks exactly the records this batch collected:
        // the previous batch moved all of its records to Done — via its
        // complete pass or its BatchGuard's recovery — before the batch flag
        // reopened.
        if (s.status.load(std::memory_order_relaxed) == OpStatus::Executing) {
          working_[marks_[static_cast<std::size_t>(i)] - 1] = s.op;
        }
      },
      /*grain=*/1);
  return count;
}

std::size_t Batcher::complete(bool parallel, const std::exception_ptr& error) {
  const bool led = trace::enabled();
  std::atomic<std::size_t> flipped{0};  // parallel flips bump concurrently
  transition_slots<OpStatus::Executing, OpStatus::Done>(
      parallel, [&](std::size_t, Slot& s) {
        if (error != nullptr) s.op->set_error(error);
        if (led) [[unlikely]] {
          // Whatever thread flips the slot, its current path reaches this
          // completion node; the Done release store publishes it with the
          // result, and the trapped owner resumes from it.
          const trace::ledger::PathPoint path = trace::ledger::strand_now();
          s.done_path_ns = path.ns;
          s.done_path_tasks = path.tasks;
        }
        flipped.fetch_add(1, std::memory_order_relaxed);
      });
  return flipped.load(std::memory_order_relaxed);
}

std::size_t Batcher::collect_announce() {
  BATCHER_DASSERT(claimed_count_ == 0 && claimed_rest_ == nullptr,
                  "the previous launch's claim was fully consumed");
  hooks::emit({hooks::HookPoint::kAnnounceClaim,
               rt::Worker::current()->id(), rt::TaskKind::Batch,
               rt::TaskKind::Batch, this});
  // One exchange claims every announced slot.  The acquire pairs with each
  // owner's release CAS — for slots deeper in the list via the release
  // sequence the later pushes continue — so the relaxed loads in the walk
  // below see each owner's op pointer and Pending store.
  Slot* s = announce_head_.exchange(nullptr, std::memory_order_acquire);
  claimed_rest_ = s;
  std::size_t count = 0;
  while (s != nullptr) {
    BATCHER_DASSERT(s->status.load(std::memory_order_relaxed) ==
                        OpStatus::Pending,
                    "announced slots are pending until this walk flips them");
    // The fault fires before the flip and before the slot leaves
    // claimed_rest_, so recovery sees it as claimed-but-uncollected.
    maybe_inject_collect_fault();
    working_[count] = s->op;
    claimed_[count] = s;
    claimed_count_ = ++count;
    hooks::emit({hooks::HookPoint::kStatusPendingToExecuting, s->owner,
                 rt::TaskKind::Batch, rt::TaskKind::Batch, this});
    s->status.store(OpStatus::Executing, std::memory_order_relaxed);
    s = s->announce_next;
    claimed_rest_ = s;
  }
  return count;
}

std::size_t Batcher::complete_claimed(const std::exception_ptr& error) {
  BATCHER_DASSERT(claimed_rest_ == nullptr,
                  "clean completion implies the claim walk finished");
  const bool led = trace::enabled();
  for (std::size_t i = 0; i < claimed_count_; ++i) {
    Slot* s = claimed_[i];
    if (error != nullptr) s->op->set_error(error);
    if (led) [[unlikely]] {
      const trace::ledger::PathPoint path = trace::ledger::strand_now();
      s->done_path_ns = path.ns;
      s->done_path_tasks = path.tasks;
    }
    hooks::emit({hooks::HookPoint::kStatusExecutingToDone, s->owner,
                 rt::TaskKind::Batch, rt::TaskKind::Batch, this});
    // Release publishes BOP results (and any recorded error) to the
    // trapped owner's acquire load in batchify.
    s->status.store(OpStatus::Done, std::memory_order_release);
  }
  const std::size_t flipped = claimed_count_;
  claimed_count_ = 0;
  return flipped;
}

std::size_t Batcher::fail_claimed(const std::exception_ptr& error) {
  const bool led = trace::enabled();
  // Already-collected slots are Executing: record the error and flip them
  // to Done exactly like a clean completion would.
  std::size_t flipped = 0;
  for (std::size_t i = 0; i < claimed_count_; ++i) {
    Slot* s = claimed_[i];
    s->op->set_error(error);
    if (led) [[unlikely]] {
      const trace::ledger::PathPoint path = trace::ledger::strand_now();
      s->done_path_ns = path.ns;
      s->done_path_tasks = path.tasks;
    }
    hooks::emit({hooks::HookPoint::kStatusExecutingToDone, s->owner,
                 rt::TaskKind::Batch, rt::TaskKind::Batch, this});
    s->status.store(OpStatus::Done, std::memory_order_release);
    ++flipped;
  }
  claimed_count_ = 0;
  // A throw inside the claim walk leaves a claimed-but-uncollected tail:
  // those slots are still Pending but no longer on the announce stack, so
  // no later batch could ever pick them up — fail them here, walking the
  // legal Fig. 3 edges (pending -> executing -> done) so their trapped
  // owners resume and rethrow.
  for (Slot* s = claimed_rest_; s != nullptr;) {
    // Read the link before the Done store: once Done is published the owner
    // may resume, re-announce, and overwrite announce_next.
    Slot* next = s->announce_next;
    s->op->set_error(error);
    if (led) [[unlikely]] {
      const trace::ledger::PathPoint path = trace::ledger::strand_now();
      s->done_path_ns = path.ns;
      s->done_path_tasks = path.tasks;
    }
    hooks::emit({hooks::HookPoint::kStatusPendingToExecuting, s->owner,
                 rt::TaskKind::Batch, rt::TaskKind::Batch, this});
    s->status.store(OpStatus::Executing, std::memory_order_relaxed);
    hooks::emit({hooks::HookPoint::kStatusExecutingToDone, s->owner,
                 rt::TaskKind::Batch, rt::TaskKind::Batch, this});
    s->status.store(OpStatus::Done, std::memory_order_release);
    ++flipped;
    s = next;
  }
  claimed_rest_ = nullptr;
  return flipped;
}

BatcherStats Batcher::stats() const {
  BatcherStats out;
  out.batches_launched =
      stat_cells_.batches_launched.load(std::memory_order_relaxed);
  out.empty_batches = stat_cells_.empty_batches.load(std::memory_order_relaxed);
  out.failed_batches =
      stat_cells_.failed_batches.load(std::memory_order_relaxed);
  out.clean_nonempty_batches =
      stat_cells_.clean_nonempty_batches.load(std::memory_order_relaxed);
  out.ops_processed = stat_cells_.ops_processed.load(std::memory_order_relaxed);
  out.ops_failed = stat_cells_.ops_failed.load(std::memory_order_relaxed);
  out.ops_succeeded = stat_cells_.ops_succeeded.load(std::memory_order_relaxed);
  out.max_batch_size =
      stat_cells_.max_batch_size.load(std::memory_order_relaxed);
  out.announce_pushes =
      stat_cells_.announce_pushes.load(std::memory_order_relaxed);
  out.chained_launches =
      stat_cells_.chained_launches.load(std::memory_order_relaxed);
  out.flag_cas_failures =
      stat_cells_.flag_cas_failures.load(std::memory_order_relaxed);
  out.batch_size_histogram.reserve(stat_cells_.histogram.size());
  for (const auto& h : stat_cells_.histogram) {
    out.batch_size_histogram.push_back(h.load(std::memory_order_relaxed));
  }
  return out;
}

void Batcher::reset_stats() {
  stat_cells_.batches_launched.store(0, std::memory_order_relaxed);
  stat_cells_.empty_batches.store(0, std::memory_order_relaxed);
  stat_cells_.failed_batches.store(0, std::memory_order_relaxed);
  stat_cells_.clean_nonempty_batches.store(0, std::memory_order_relaxed);
  stat_cells_.ops_processed.store(0, std::memory_order_relaxed);
  stat_cells_.ops_failed.store(0, std::memory_order_relaxed);
  stat_cells_.ops_succeeded.store(0, std::memory_order_relaxed);
  stat_cells_.max_batch_size.store(0, std::memory_order_relaxed);
  stat_cells_.announce_pushes.store(0, std::memory_order_relaxed);
  stat_cells_.chained_launches.store(0, std::memory_order_relaxed);
  stat_cells_.flag_cas_failures.store(0, std::memory_order_relaxed);
  for (auto& h : stat_cells_.histogram) h.store(0, std::memory_order_relaxed);
}

}  // namespace batcher
