// ExternalDomain — the paper's concluding suggestion (§8): "a pthreaded
// program could run as normal, with data-structure calls replaced by BATCHER
// calls, allowing work-stealing to operate over the data structure batches
// while static pthreading operates over the main program."
//
// External (non-worker) threads publish operation records into a slot array,
// exactly like workers publish into the pending array; a *pump* task running
// inside the scheduler gathers them into batches of at most `batch_cap`
// records and executes the structure's BOP as a batch dag — so the batch
// itself is accelerated by work stealing even though the callers are plain
// threads.  One pump per domain preserves Invariant 1; the cap preserves the
// spirit of Invariant 2.
//
// Graceful degradation (DESIGN.md §13).  A service front-end must bound
// every wait and shed load it cannot absorb, so on top of the DESIGN.md §8
// failure semantics (a throwing BOP fails exactly its batch; shutdown()
// bounds every blocked submit) this domain offers:
//
//  * Deadlines: `submit_until` / `try_submit` revoke a still-Pending record
//    through the same Pending->Free CAS the shutdown path uses and throw
//    OpTimedOut.  A record the pump has already claimed is in a batch and
//    will complete — the deadline bounds time-to-claim, never abandons an
//    executing op (the record lives on the caller's stack).
//  * Overload shedding: when the published-but-unresolved depth is at
//    `shed_threshold`, submissions fail fast with DomainOverloaded *before*
//    publishing, so the backlog is bounded and a rejected caller can back
//    off.  `submit_with_retry` layers a seeded, jittered exponential backoff
//    (RetryPolicy) over that rejection.
//  * Quarantine: `quarantine()` is the escalation hook for a wedged domain
//    (see StallWatchdog::set_escalation_handler) — it closes the domain and
//    fails every still-Pending record through the legal status edges, from
//    any thread, exactly as the pump's exit drain does.
//
// Every published record resolves exactly one way, counted owner-side:
//   ops_served == ops_succeeded + ops_failed + ops_timed_out
// (`ops_shed` counts refusals that never published, outside the identity;
// the bench validator enforces it at quiescence).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "batcher/op_record.hpp"
#include "runtime/schedule_hooks.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/worker.hpp"
#include "support/backoff.hpp"
#include "support/config.hpp"
#include "support/padded.hpp"
#include "support/rng.hpp"
#include "trace/trace.hpp"

namespace batcher {

// Thrown by ExternalDomain::submit when the domain has been shut down before
// the operation could be applied.  The operation had no effect.
struct DomainClosed : std::runtime_error {
  DomainClosed() : std::runtime_error("batcher: ExternalDomain is shut down") {}

 protected:
  explicit DomainClosed(const char* what) : std::runtime_error(what) {}
};

// Thrown when the domain was closed by quarantine() — a watchdog-escalation
// shutdown of a wedged domain — rather than an orderly shutdown().  Derives
// DomainClosed so existing handlers keep working.
struct DomainQuarantined : DomainClosed {
  DomainQuarantined()
      : DomainClosed("batcher: ExternalDomain was quarantined") {}
};

// Thrown by submit_until / try_submit when the deadline passed before the
// pump claimed the record.  The operation had no effect.
struct OpTimedOut : std::runtime_error {
  OpTimedOut()
      : std::runtime_error("batcher: external op timed out before claim") {}
};

// Thrown by submit paths when pending depth is at the shed threshold.  The
// operation was never published and had no effect; retrying later is safe.
struct DomainOverloaded : std::runtime_error {
  DomainOverloaded()
      : std::runtime_error("batcher: ExternalDomain is overloaded") {}
};

// Client-side retry discipline for DomainOverloaded rejections: seeded,
// jittered exponential backoff (spin counts, like support/backoff.hpp, so a
// retry storm cannot oversleep a draining domain).  Attempt k waits a
// uniform draw from [full/2, full] where full = min(base_spins << k,
// max_spins) — the classic "decorrelated-ish" jitter that keeps rejected
// clients from re-colliding in lockstep.
struct RetryPolicy {
  std::uint64_t seed = 1;        // per-client stream; tid is mixed in
  unsigned max_retries = 8;      // rethrows DomainOverloaded after these
  std::uint32_t base_spins = 128;
  std::uint32_t max_spins = std::uint32_t{1} << 16;
};

// Quiescent-state counter snapshot (see the identity in the header comment).
struct ExternalStats {
  std::uint64_t ops_served = 0;     // published records that resolved
  std::uint64_t ops_succeeded = 0;  // Done without error
  std::uint64_t ops_failed = 0;     // Done with error, or shutdown-revoked
  std::uint64_t ops_timed_out = 0;  // deadline-revoked before claim
  std::uint64_t ops_shed = 0;       // refused before publication
  std::uint64_t batches_served = 0;
  std::uint64_t batches_failed = 0;
  std::uint64_t retries_attempted = 0;
};

class ExternalDomain {
 public:
  struct Options {
    // Max records per pump batch; 0 means the scheduler's worker count
    // (Invariant 2's P).
    std::size_t batch_cap = 0;
    // Fail submissions fast once this many records are published but not yet
    // resolved; 0 disables shedding.
    std::size_t shed_threshold = 0;
    // Called roughly every 1024 spin iterations of a blocked submit — the
    // seam that wires StallWatchdog::check_now() into the external wait
    // without making the data-structure layer depend on src/audit.  Must be
    // callable from any submitting thread concurrently.
    std::function<void()> stall_probe;
  };

  // `max_threads` bounds the number of external threads that may submit
  // concurrently; thread `tid` must be in [0, max_threads).
  ExternalDomain(rt::Scheduler& sched, BatchedStructure& ds,
                 std::size_t max_threads, Options options)
      : sched_(sched),
        ds_(ds),
        batch_cap_(options.batch_cap != 0 ? options.batch_cap
                                          : sched.num_workers()),
        shed_threshold_(options.shed_threshold),
        stall_probe_(std::move(options.stall_probe)),
        slots_(max_threads),
        trace_id_(trace::register_domain(this)) {
    // Reserve both pump scratch vectors up front: serve() must not allocate
    // (and so must not throw) between claiming slots and completing them.
    working_.reserve(slots_.size());
    collected_.reserve(slots_.size());
  }

  ExternalDomain(rt::Scheduler& sched, BatchedStructure& ds,
                 std::size_t max_threads, std::size_t batch_cap = 0)
      : ExternalDomain(sched, ds, max_threads, Options{batch_cap, 0, {}}) {}

  ExternalDomain(const ExternalDomain&) = delete;
  ExternalDomain& operator=(const ExternalDomain&) = delete;

  ~ExternalDomain() { trace::unregister_domain(this); }

  // Called by external thread `tid`: publishes `op` and blocks until a batch
  // has applied it.  The analogue of BATCHIFY for non-worker threads.
  //
  // Error paths: throws std::out_of_range for a bad `tid` (always checked —
  // a silent out-of-bounds write from an external thread must never depend
  // on build type); throws DomainOverloaded (before publishing) when pending
  // depth is at the shed threshold; throws DomainClosed / DomainQuarantined
  // if the domain is (or becomes) shut down before the op is picked up;
  // rethrows the batch's error if the BOP failed while applying it.  After
  // any throw the slot is free again and the domain — if still open —
  // accepts new submissions.
  void submit(std::size_t tid, OpRecordBase& op) {
    submit_impl(tid, op, /*has_deadline=*/false, Clock::time_point{});
  }

  // As submit(), but additionally throws OpTimedOut if the pump has not
  // claimed the record by `deadline`.  Once claimed the op completes
  // normally (or fails with its batch) regardless of the deadline.
  void submit_until(std::size_t tid, OpRecordBase& op,
                    std::chrono::steady_clock::time_point deadline) {
    submit_impl(tid, op, /*has_deadline=*/true, deadline);
  }

  // submit_until with an already-expired deadline: publish, give the pump
  // exactly the in-flight window to claim, then revoke.  Throws OpTimedOut
  // unless the op was claimed (in which case it completes and returns or
  // rethrows like submit()).
  void try_submit(std::size_t tid, OpRecordBase& op) {
    submit_impl(tid, op, /*has_deadline=*/true, Clock::time_point::min());
  }

  // submit() with RetryPolicy backoff over DomainOverloaded rejections.
  // Deadline/closed/batch errors are not retried — only shed rejections,
  // which are guaranteed side-effect free.
  void submit_with_retry(std::size_t tid, OpRecordBase& op,
                         const RetryPolicy& policy) {
    Xoshiro256 rng(policy.seed ^
                   (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(tid) + 1)));
    for (unsigned attempt = 0;; ++attempt) {
      try {
        submit(tid, op);
        return;
      } catch (const DomainOverloaded&) {
        if (attempt >= policy.max_retries) throw;
      }
      retries_.fetch_add(1, std::memory_order_relaxed);
      const unsigned shift = std::min(attempt, 31u);
      const std::uint64_t full =
          std::min<std::uint64_t>(policy.max_spins,
                                  std::uint64_t{policy.base_spins} << shift);
      const std::uint64_t spins = full / 2 + rng.next_below(full / 2 + 1);
      for (std::uint64_t i = 0; i < spins; ++i) cpu_relax();
    }
  }

  // One pump step: scan the slot array once (from the rotating cursor),
  // claim up to `batch_cap` pending records, and run them as one batch dag.
  // Returns true when a batch was served, false when the scan found nothing.
  //
  // This is the unit a multi-domain front-end schedules: a pump task that
  // owns several sharded domains round-robins pump_once() across them (see
  // service::ShardRouter::serve), so K shards need far fewer than K workers.
  // Invariant 1 discipline is unchanged — at most one thread may pump a
  // given domain at a time (the scan cursor and scratch vectors are
  // deliberately unsynchronized pump-only state).
  bool pump_once() {
    rt::Worker* w = rt::Worker::current();
    BATCHER_ASSERT(w != nullptr, "pump_once() must run on a worker");
    const std::size_t n = slots_.size();
    working_.clear();
    collected_.clear();
    // Scan from a rotating start so high tids are not starved when the cap
    // keeps filling from the same low slots: the next pass resumes after
    // the last slot this pass examined.
    std::size_t examined = 0;
    for (std::size_t k = 0; k < n && working_.size() < batch_cap_; ++k) {
      const std::size_t i =
          scan_start_ + k >= n ? scan_start_ + k - n : scan_start_ + k;
      Slot& slot = *slots_[i];
      examined = k + 1;
      if (slot.status.load(std::memory_order_acquire) != kPending) continue;
      // CAS, not a plain store: a submitter observing shutdown — or its
      // deadline — may revoke its record concurrently.
      rt::hooks::emit({rt::hooks::HookPoint::kExternalClaim, w->id(),
                       rt::TaskKind::Batch, rt::TaskKind::Batch, this, i});
      std::uint8_t expected = kPending;
      if (slot.status.compare_exchange_strong(expected, kExecuting,
                                              std::memory_order_acq_rel)) {
        working_.push_back(slot.op);
        collected_.push_back(&slot);
      }
    }
    scan_start_ = (scan_start_ + examined) % n;
    if (working_.empty()) return false;
    // Execute the BOP as a batch dag so idle workers help via their
    // batch deques — the whole point of the bridge.  A throwing BOP
    // fails exactly this batch's ops; the pump keeps serving.
    try {
      w->run_inline(rt::TaskKind::Batch, [&] {
#if BATCHER_AUDIT
        // Same fault point as Batcher's launch path: an armed
        // throw_in_bop covers externally pumped batches too.
        if (rt::hooks::fire(rt::hooks::test_faults().throw_in_bop)) {
          throw rt::hooks::InjectedFault("injected fault: BOP threw");
        }
#endif
        ds_.run_batch(working_.data(), working_.size());
      });
    } catch (...) {
      const std::exception_ptr error = std::current_exception();
      for (Slot* slot : collected_) slot->op->set_error(error);
      failed_batches_.fetch_add(1, std::memory_order_relaxed);
    }
    for (Slot* slot : collected_) {
      slot->status.store(kDone, std::memory_order_release);
    }
    batches_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // The pump's exit drain, callable once the domain is closed and its final
  // scan came back empty: fails every record published between that scan and
  // the submitters noticing the shutdown flag, so no submit can spin on a
  // pump that has already left.  serve() calls it on exit; a multi-domain
  // pump loop calls it per domain when pump_once() goes quiet after close.
  void drain_closed() {
    BATCHER_ASSERT(closed(), "drain_closed() requires a closed domain");
    drain_pending(quarantined_.load(std::memory_order_acquire));
  }

  // The pump: run this inside Scheduler::run (typically as the root task, or
  // spawned beside other work).  Serves batches until `shutdown` is called
  // and every published record has been applied (or failed with
  // DomainClosed by the exit drain).
  void serve() {
    Backoff backoff;
    while (true) {
      if (pump_once()) {
        backoff.reset();
        continue;
      }
      if (stop_.load(std::memory_order_acquire)) break;
      backoff.pause();
    }
    drain_closed();
  }

  // Ask the pump to exit once the slot array drains, and bound every
  // submit(): after this, an unserved submit fails with DomainClosed rather
  // than blocking forever.  Safe from any thread; idempotent.
  void shutdown() { stop_.store(true, std::memory_order_release); }

  // Escalation path for a wedged domain (the StallWatchdog handler target):
  // close the domain and immediately fail every still-Pending record with
  // DomainQuarantined through the legal Pending->Executing->Done edges —
  // the exit drain's discipline, runnable from *any* thread, so blocked
  // submitters unblock even if the pump never scans again.
  //
  // `fail_claimed` additionally flips Executing records to Done with the
  // same error.  That edge belongs to the pump, so it is legal only when
  // the pump is known to be wedged forever (the record's true owner will
  // never store Done) — a last resort mirroring Batcher's fail_claimed.
  // Call it from at most one thread.
  void quarantine(bool fail_claimed = false) {
    quarantined_.store(true, std::memory_order_release);
    stop_.store(true, std::memory_order_release);
    drain_pending(/*as_quarantine=*/true);
    if (!fail_claimed) return;
    for (auto& padded : slots_) {
      Slot& slot = *padded;
      if (slot.status.load(std::memory_order_acquire) != kExecuting) continue;
      slot.op->set_error(std::make_exception_ptr(DomainQuarantined()));
      std::uint8_t expected = kExecuting;
      slot.status.compare_exchange_strong(expected, kDone,
                                          std::memory_order_acq_rel);
    }
  }

  bool closed() const { return stop_.load(std::memory_order_acquire); }
  bool quarantined() const {
    return quarantined_.load(std::memory_order_acquire);
  }

  // Published-but-unresolved records right now (approximate while threads
  // run; exact at quiescence).
  std::size_t pending_depth() const {
    return pending_depth_.load(std::memory_order_acquire);
  }

  std::uint64_t batches_served() const {
    return batches_.load(std::memory_order_relaxed);
  }
  std::uint64_t ops_served() const {
    return ops_served_.load(std::memory_order_relaxed);
  }
  std::uint64_t batches_failed() const {
    return failed_batches_.load(std::memory_order_relaxed);
  }
  std::uint64_t ops_failed() const {
    return ops_failed_.load(std::memory_order_relaxed);
  }
  std::uint64_t ops_succeeded() const {
    return ops_succeeded_.load(std::memory_order_relaxed);
  }
  std::uint64_t ops_timed_out() const {
    return ops_timed_out_.load(std::memory_order_relaxed);
  }
  std::uint64_t ops_shed() const {
    return ops_shed_.load(std::memory_order_relaxed);
  }
  std::uint64_t retries_attempted() const {
    return retries_.load(std::memory_order_relaxed);
  }

  ExternalStats stats() const {
    ExternalStats s;
    s.ops_served = ops_served();
    s.ops_succeeded = ops_succeeded();
    s.ops_failed = ops_failed();
    s.ops_timed_out = ops_timed_out();
    s.ops_shed = ops_shed();
    s.batches_served = batches_served();
    s.batches_failed = batches_failed();
    s.retries_attempted = retries_attempted();
    return s;
  }

 private:
  using Clock = std::chrono::steady_clock;

  static constexpr std::uint8_t kFree = 0;
  static constexpr std::uint8_t kPending = 1;
  static constexpr std::uint8_t kExecuting = 2;
  static constexpr std::uint8_t kDone = 3;

  struct Slot {
    std::atomic<std::uint8_t> status{kFree};
    OpRecordBase* op = nullptr;
  };

  void submit_impl(std::size_t tid, OpRecordBase& op, bool has_deadline,
                   Clock::time_point deadline) {
    BATCHER_ASSERT(rt::Worker::current() == nullptr,
                   "workers must use Batcher::batchify, not ExternalDomain");
    if (tid >= slots_.size()) {
      throw std::out_of_range("batcher: external thread id out of range");
    }
    if (closed()) throw_closed();
    // Shed before publishing: a refused op has no side effects, so the
    // caller may retry freely.  Increment-then-verify, not check-then-act:
    // a racy pre-check lets M concurrent submitters all observe
    // depth < threshold and overshoot the backlog bound by up to M.  The
    // fetch_add hands each submitter a serialized admission ticket `prev`;
    // exactly those with prev < threshold keep their increment and publish,
    // so the published depth never exceeds shed_threshold.
    const std::size_t prev =
        pending_depth_.fetch_add(1, std::memory_order_relaxed);
    if (shed_threshold_ != 0 && prev >= shed_threshold_) {
      pending_depth_.fetch_sub(1, std::memory_order_relaxed);
      ops_shed_.fetch_add(1, std::memory_order_relaxed);
      if (trace::enabled()) [[unlikely]] {
        trace::emit(trace::kNoWorkerId, trace::EventId::kOpShed, trace_id_);
      }
      throw DomainOverloaded();
    }
    Slot& slot = *slots_[tid];
    BATCHER_DASSERT(slot.status.load(std::memory_order_relaxed) == kFree,
                    "one in-flight op per external thread");
    op.clear_error();
    slot.op = &op;
    rt::hooks::emit({rt::hooks::HookPoint::kExternalSubmit, rt::hooks::kNoWorker,
                     rt::TaskKind::Batch, rt::TaskKind::Batch, this, tid});
    slot.status.store(kPending, std::memory_order_release);
    Backoff backoff;
    std::uint32_t spins = 0;
    while (slot.status.load(std::memory_order_acquire) != kDone) {
      // Shutdown bounds the wait: revoke the record if the pump has not
      // claimed it.  The CAS races the pump's own pending->executing CAS
      // (and the drain's pending->failed CAS), so exactly one side wins; if
      // the pump won, the op is in a batch and Done is coming.
      if (stop_.load(std::memory_order_acquire)) {
        if (try_revoke(slot, tid)) {
          ops_failed_.fetch_add(1, std::memory_order_relaxed);
          ops_served_.fetch_add(1, std::memory_order_relaxed);
          throw_closed();
        }
      }
      // The deadline bounds time-to-claim through the same revoke CAS.  A
      // lost CAS means the pump claimed first: the op is in a batch, the
      // deadline no longer applies, and we wait for Done like submit().
      if (has_deadline && Clock::now() >= deadline) {
        if (try_revoke(slot, tid)) {
          ops_timed_out_.fetch_add(1, std::memory_order_relaxed);
          ops_served_.fetch_add(1, std::memory_order_relaxed);
          if (trace::enabled()) [[unlikely]] {
            trace::emit(trace::kNoWorkerId, trace::EventId::kOpTimeout,
                        trace_id_);
          }
          throw OpTimedOut();
        }
        has_deadline = false;
      }
      // Periodically poke the installed stall probe (e.g. a watchdog's
      // check_now) so a wedged pump is detected by the threads it wedges.
      if (stall_probe_ && (++spins & 1023u) == 0) stall_probe_();
      backoff.pause();
    }
    slot.op = nullptr;
    slot.status.store(kFree, std::memory_order_relaxed);
    pending_depth_.fetch_sub(1, std::memory_order_relaxed);
    ops_served_.fetch_add(1, std::memory_order_relaxed);
    if (op.failed()) {
      ops_failed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      ops_succeeded_.fetch_add(1, std::memory_order_relaxed);
    }
    op.rethrow_if_failed();
  }

  // Owner-side Pending -> Free revocation; true when this thread won the
  // record back (slot fully released, depth adjusted).
  bool try_revoke(Slot& slot, std::size_t tid) {
    rt::hooks::emit({rt::hooks::HookPoint::kExternalRevoke, rt::hooks::kNoWorker,
                     rt::TaskKind::Batch, rt::TaskKind::Batch, this, tid});
    std::uint8_t expected = kPending;
    if (!slot.status.compare_exchange_strong(expected, kFree,
                                             std::memory_order_acq_rel)) {
      return false;
    }
    slot.op = nullptr;
    pending_depth_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  [[noreturn]] void throw_closed() const {
    if (quarantined()) throw DomainQuarantined();
    throw DomainClosed();
  }

  // Fail every still-Pending record through the legal edges.  Shared by the
  // pump's exit drain (worker thread) and quarantine (any thread); the
  // Pending->Executing CAS serializes against both the pump scan and owner
  // revocation, so concurrent drains are safe.
  void drain_pending(bool as_quarantine) {
    const unsigned claimer =
        rt::Worker::current() != nullptr ? rt::Worker::current()->id()
                                         : rt::hooks::kNoWorker;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      Slot& slot = *slots_[i];
      if (slot.status.load(std::memory_order_acquire) != kPending) continue;
      rt::hooks::emit({rt::hooks::HookPoint::kExternalClaim, claimer,
                       rt::TaskKind::Batch, rt::TaskKind::Batch, this, i});
      std::uint8_t expected = kPending;
      if (slot.status.compare_exchange_strong(expected, kExecuting,
                                              std::memory_order_acq_rel)) {
        slot.op->set_error(as_quarantine
                               ? std::make_exception_ptr(DomainQuarantined())
                               : std::make_exception_ptr(DomainClosed()));
        slot.status.store(kDone, std::memory_order_release);
      }
    }
  }

  rt::Scheduler& sched_;
  BatchedStructure& ds_;
  const std::size_t batch_cap_;
  const std::size_t shed_threshold_;
  const std::function<void()> stall_probe_;
  std::vector<Padded<Slot>> slots_;
  std::vector<OpRecordBase*> working_;   // pump-only scratch
  std::vector<Slot*> collected_;         // pump-only scratch
  std::size_t scan_start_ = 0;           // pump-only rotation cursor
  std::atomic<bool> stop_{false};
  std::atomic<bool> quarantined_{false};
  std::atomic<std::size_t> pending_depth_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> failed_batches_{0};
  std::atomic<std::uint64_t> ops_served_{0};
  std::atomic<std::uint64_t> ops_succeeded_{0};
  std::atomic<std::uint64_t> ops_failed_{0};
  std::atomic<std::uint64_t> ops_timed_out_{0};
  std::atomic<std::uint64_t> ops_shed_{0};
  std::atomic<std::uint64_t> retries_{0};
  const std::uint16_t trace_id_;
};

}  // namespace batcher
