// ExternalDomain — the paper's concluding suggestion (§8): "a pthreaded
// program could run as normal, with data-structure calls replaced by BATCHER
// calls, allowing work-stealing to operate over the data structure batches
// while static pthreading operates over the main program."
//
// External (non-worker) threads publish operation records into a slot array,
// exactly like workers publish into the pending array; a *pump* task running
// inside the scheduler gathers them into batches of at most `batch_cap`
// records and executes the structure's BOP as a batch dag — so the batch
// itself is accelerated by work stealing even though the callers are plain
// threads.  One pump per domain preserves Invariant 1; the cap preserves the
// spirit of Invariant 2.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "batcher/op_record.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/worker.hpp"
#include "support/backoff.hpp"
#include "support/config.hpp"
#include "support/padded.hpp"

namespace batcher {

class ExternalDomain {
 public:
  // `max_threads` bounds the number of external threads that may submit
  // concurrently; thread `tid` must be in [0, max_threads).  `batch_cap`
  // defaults to the scheduler's worker count (Invariant 2's P).
  ExternalDomain(rt::Scheduler& sched, BatchedStructure& ds,
                 std::size_t max_threads, std::size_t batch_cap = 0)
      : sched_(sched),
        ds_(ds),
        batch_cap_(batch_cap != 0 ? batch_cap : sched.num_workers()),
        slots_(max_threads) {
    working_.reserve(slots_.size());
  }

  ExternalDomain(const ExternalDomain&) = delete;
  ExternalDomain& operator=(const ExternalDomain&) = delete;

  // Called by external thread `tid`: publishes `op` and blocks until a batch
  // has applied it.  The analogue of BATCHIFY for non-worker threads.
  void submit(std::size_t tid, OpRecordBase& op) {
    BATCHER_ASSERT(rt::Worker::current() == nullptr,
                   "workers must use Batcher::batchify, not ExternalDomain");
    BATCHER_ASSERT(tid < slots_.size(), "external thread id out of range");
    Slot& slot = *slots_[tid];
    BATCHER_DASSERT(slot.status.load(std::memory_order_relaxed) == kFree,
                    "one in-flight op per external thread");
    slot.op = &op;
    slot.status.store(kPending, std::memory_order_release);
    Backoff backoff;
    while (slot.status.load(std::memory_order_acquire) != kDone) {
      backoff.pause();
    }
    slot.op = nullptr;
    slot.status.store(kFree, std::memory_order_relaxed);
  }

  // The pump: run this inside Scheduler::run (typically as the root task, or
  // spawned beside other work).  Serves batches until `shutdown` is called
  // and every published record has been applied.
  void serve() {
    rt::Worker* w = rt::Worker::current();
    BATCHER_ASSERT(w != nullptr, "serve() must run on a worker");
    Backoff backoff;
    while (true) {
      working_.clear();
      collected_.clear();
      for (std::size_t i = 0;
           i < slots_.size() && working_.size() < batch_cap_; ++i) {
        Slot& slot = *slots_[i];
        if (slot.status.load(std::memory_order_acquire) == kPending) {
          slot.status.store(kExecuting, std::memory_order_relaxed);
          working_.push_back(slot.op);
          collected_.push_back(&slot);
        }
      }
      if (!working_.empty()) {
        // Execute the BOP as a batch dag so idle workers help via their
        // batch deques — the whole point of the bridge.
        w->run_inline(rt::TaskKind::Batch, [&] {
          ds_.run_batch(working_.data(), working_.size());
        });
        for (Slot* slot : collected_) {
          slot->status.store(kDone, std::memory_order_release);
        }
        batches_.fetch_add(1, std::memory_order_relaxed);
        ops_.fetch_add(working_.size(), std::memory_order_relaxed);
        backoff.reset();
        continue;
      }
      if (stop_.load(std::memory_order_acquire)) return;
      backoff.pause();
    }
  }

  // Ask the pump to exit once the slot array drains.  Safe from any thread.
  void shutdown() { stop_.store(true, std::memory_order_release); }

  std::uint64_t batches_served() const {
    return batches_.load(std::memory_order_relaxed);
  }
  std::uint64_t ops_served() const {
    return ops_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint8_t kFree = 0;
  static constexpr std::uint8_t kPending = 1;
  static constexpr std::uint8_t kExecuting = 2;
  static constexpr std::uint8_t kDone = 3;

  struct Slot {
    std::atomic<std::uint8_t> status{kFree};
    OpRecordBase* op = nullptr;
  };

  rt::Scheduler& sched_;
  BatchedStructure& ds_;
  const std::size_t batch_cap_;
  std::vector<Padded<Slot>> slots_;
  std::vector<OpRecordBase*> working_;   // pump-only scratch
  std::vector<Slot*> collected_;         // pump-only scratch
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> ops_{0};
};

}  // namespace batcher
