// ExternalDomain — the paper's concluding suggestion (§8): "a pthreaded
// program could run as normal, with data-structure calls replaced by BATCHER
// calls, allowing work-stealing to operate over the data structure batches
// while static pthreading operates over the main program."
//
// External (non-worker) threads publish operation records into a slot array,
// exactly like workers publish into the pending array; a *pump* task running
// inside the scheduler gathers them into batches of at most `batch_cap`
// records and executes the structure's BOP as a batch dag — so the batch
// itself is accelerated by work stealing even though the callers are plain
// threads.  One pump per domain preserves Invariant 1; the cap preserves the
// spirit of Invariant 2.
//
// Failure semantics (DESIGN.md §8): a BOP that throws fails exactly the ops
// of that batch (the error is recorded per record and rethrown from the
// blocked submit call); the pump keeps serving.  shutdown() bounds every
// wait: a submit that cannot be served anymore revokes its record and throws
// DomainClosed instead of spinning forever, and the pump's exit path drains
// any still-published record the same way.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "batcher/op_record.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/worker.hpp"
#include "support/backoff.hpp"
#include "support/config.hpp"
#include "support/padded.hpp"

namespace batcher {

// Thrown by ExternalDomain::submit when the domain has been shut down before
// the operation could be applied.  The operation had no effect.
struct DomainClosed : std::runtime_error {
  DomainClosed() : std::runtime_error("batcher: ExternalDomain is shut down") {}
};

class ExternalDomain {
 public:
  // `max_threads` bounds the number of external threads that may submit
  // concurrently; thread `tid` must be in [0, max_threads).  `batch_cap`
  // defaults to the scheduler's worker count (Invariant 2's P).
  ExternalDomain(rt::Scheduler& sched, BatchedStructure& ds,
                 std::size_t max_threads, std::size_t batch_cap = 0)
      : sched_(sched),
        ds_(ds),
        batch_cap_(batch_cap != 0 ? batch_cap : sched.num_workers()),
        slots_(max_threads) {
    working_.reserve(slots_.size());
  }

  ExternalDomain(const ExternalDomain&) = delete;
  ExternalDomain& operator=(const ExternalDomain&) = delete;

  // Called by external thread `tid`: publishes `op` and blocks until a batch
  // has applied it.  The analogue of BATCHIFY for non-worker threads.
  //
  // Error paths: throws std::out_of_range for a bad `tid` (always checked —
  // a silent out-of-bounds write from an external thread must never depend
  // on build type); throws DomainClosed if the domain is (or becomes) shut
  // down before the op is picked up; rethrows the batch's error if the BOP
  // failed while applying it.  After any throw the slot is free again and
  // the domain — if still open — accepts new submissions.
  void submit(std::size_t tid, OpRecordBase& op) {
    BATCHER_ASSERT(rt::Worker::current() == nullptr,
                   "workers must use Batcher::batchify, not ExternalDomain");
    if (tid >= slots_.size()) {
      throw std::out_of_range("batcher: external thread id out of range");
    }
    if (closed()) throw DomainClosed();
    Slot& slot = *slots_[tid];
    BATCHER_DASSERT(slot.status.load(std::memory_order_relaxed) == kFree,
                    "one in-flight op per external thread");
    op.clear_error();
    slot.op = &op;
    slot.status.store(kPending, std::memory_order_release);
    Backoff backoff;
    while (slot.status.load(std::memory_order_acquire) != kDone) {
      // Shutdown bounds the wait: revoke the record if the pump has not
      // claimed it.  The CAS races the pump's own pending->executing CAS
      // (and the drain's pending->failed CAS), so exactly one side wins; if
      // the pump won, the op is in a batch and Done is coming.
      if (stop_.load(std::memory_order_acquire)) {
        std::uint8_t expected = kPending;
        if (slot.status.compare_exchange_strong(expected, kFree,
                                                std::memory_order_acq_rel)) {
          slot.op = nullptr;
          throw DomainClosed();
        }
      }
      backoff.pause();
    }
    slot.op = nullptr;
    slot.status.store(kFree, std::memory_order_relaxed);
    op.rethrow_if_failed();
  }

  // The pump: run this inside Scheduler::run (typically as the root task, or
  // spawned beside other work).  Serves batches until `shutdown` is called
  // and every published record has been applied (or failed with
  // DomainClosed by the exit drain).
  void serve() {
    rt::Worker* w = rt::Worker::current();
    BATCHER_ASSERT(w != nullptr, "serve() must run on a worker");
    Backoff backoff;
    while (true) {
      working_.clear();
      collected_.clear();
      for (std::size_t i = 0;
           i < slots_.size() && working_.size() < batch_cap_; ++i) {
        Slot& slot = *slots_[i];
        std::uint8_t expected = kPending;
        // CAS, not a plain store: a submitter observing shutdown may revoke
        // its record concurrently.
        if (slot.status.load(std::memory_order_acquire) == kPending &&
            slot.status.compare_exchange_strong(expected, kExecuting,
                                                std::memory_order_acq_rel)) {
          working_.push_back(slot.op);
          collected_.push_back(&slot);
        }
      }
      if (!working_.empty()) {
        // Execute the BOP as a batch dag so idle workers help via their
        // batch deques — the whole point of the bridge.  A throwing BOP
        // fails exactly this batch's ops; the pump keeps serving.
        try {
          w->run_inline(rt::TaskKind::Batch, [&] {
            ds_.run_batch(working_.data(), working_.size());
          });
        } catch (...) {
          const std::exception_ptr error = std::current_exception();
          for (Slot* slot : collected_) slot->op->set_error(error);
          failed_batches_.fetch_add(1, std::memory_order_relaxed);
          failed_ops_.fetch_add(working_.size(), std::memory_order_relaxed);
        }
        for (Slot* slot : collected_) {
          slot->status.store(kDone, std::memory_order_release);
        }
        batches_.fetch_add(1, std::memory_order_relaxed);
        ops_.fetch_add(working_.size(), std::memory_order_relaxed);
        backoff.reset();
        continue;
      }
      if (stop_.load(std::memory_order_acquire)) break;
      backoff.pause();
    }
    // Exit drain: fail any record published between the last scan and the
    // submitters noticing the shutdown flag, so no submit can spin on a
    // pump that has already left.
    for (auto& padded : slots_) {
      Slot& slot = *padded;
      std::uint8_t expected = kPending;
      if (slot.status.compare_exchange_strong(expected, kExecuting,
                                              std::memory_order_acq_rel)) {
        slot.op->set_error(std::make_exception_ptr(DomainClosed()));
        slot.status.store(kDone, std::memory_order_release);
      }
    }
  }

  // Ask the pump to exit once the slot array drains, and bound every
  // submit(): after this, an unserved submit fails with DomainClosed rather
  // than blocking forever.  Safe from any thread; idempotent.
  void shutdown() { stop_.store(true, std::memory_order_release); }

  bool closed() const { return stop_.load(std::memory_order_acquire); }

  std::uint64_t batches_served() const {
    return batches_.load(std::memory_order_relaxed);
  }
  std::uint64_t ops_served() const {
    return ops_.load(std::memory_order_relaxed);
  }
  std::uint64_t batches_failed() const {
    return failed_batches_.load(std::memory_order_relaxed);
  }
  std::uint64_t ops_failed() const {
    return failed_ops_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint8_t kFree = 0;
  static constexpr std::uint8_t kPending = 1;
  static constexpr std::uint8_t kExecuting = 2;
  static constexpr std::uint8_t kDone = 3;

  struct Slot {
    std::atomic<std::uint8_t> status{kFree};
    OpRecordBase* op = nullptr;
  };

  rt::Scheduler& sched_;
  BatchedStructure& ds_;
  const std::size_t batch_cap_;
  std::vector<Padded<Slot>> slots_;
  std::vector<OpRecordBase*> working_;   // pump-only scratch
  std::vector<Slot*> collected_;         // pump-only scratch
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> ops_{0};
  std::atomic<std::uint64_t> failed_batches_{0};
  std::atomic<std::uint64_t> failed_ops_{0};
};

}  // namespace batcher
