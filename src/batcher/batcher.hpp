// The BATCHER scheduler extension (paper §4).
//
// One `Batcher` instance forms an implicit-batching domain around one batched
// data structure: it owns the P-slot pending array, the per-worker status
// flags, the global active-batch flag, and the LAUNCHBATCH procedure.  The
// host work-stealing runtime (src/runtime) supplies the dual deques and the
// alternating-steal policy; `Batcher` adds the trapped-worker rules.
//
// A program may create several Batcher domains (one per data structure); each
// batches independently, which matches the paper's model of a program using
// one ADT per domain.
//
// Under BATCHER_AUDIT the whole protocol — batchify entry/exit, every slot
// status transition, the batch-flag CAS, and LAUNCHBATCH entry/exit — emits
// schedule hooks (runtime/schedule_hooks.hpp) keyed on `this` as the domain
// identity, which src/audit uses to check Invariants 1–3 and the Fig. 3
// trapped-worker rules at runtime.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "batcher/op_record.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/worker.hpp"
#include "support/config.hpp"
#include "support/padded.hpp"

namespace batcher {

// Worker status with respect to this batching domain (§4): `pending` /
// `executing` / `done` mean the worker is *trapped* on a suspended
// data-structure node; `free` means it has none.
enum class OpStatus : std::uint8_t { Free = 0, Pending, Executing, Done };

// Counters describing one Batcher domain's activity.  Written only by the
// (unique) active batch launcher, so single-writer relaxed atomics suffice.
struct BatcherStats {
  std::uint64_t batches_launched = 0;  // includes empty launches
  std::uint64_t empty_batches = 0;
  std::uint64_t ops_processed = 0;
  std::uint64_t max_batch_size = 0;
  std::vector<std::uint64_t> batch_size_histogram;  // index = ops in batch

  double mean_batch_size() const {
    const std::uint64_t nonempty = batches_launched - empty_batches;
    return nonempty == 0 ? 0.0
                         : static_cast<double>(ops_processed) /
                               static_cast<double>(nonempty);
  }
};

class Batcher {
 public:
  // How LAUNCHBATCH flips statuses and compacts the pending array.
  // `Parallel` is the paper's Fig. 4 (parallel_for + parallel prefix sums,
  // Θ(P) work / Θ(lg P) span); `Sequential` is the paper's own prototype
  // simplification for small P (§7).
  enum class SetupPolicy { Sequential, Parallel };

  Batcher(rt::Scheduler& sched, BatchedStructure& ds,
          SetupPolicy setup = SetupPolicy::Sequential);

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  // The paper's BATCHIFY: hands `op` to the scheduler and blocks until some
  // batch has applied it.  Must be called from a worker of the owning
  // scheduler, in core context (data-structure code never calls batchify).
  // The calling worker is *trapped* until its operation completes: it only
  // executes batch work, launches a batch when none is active, or steals
  // from batch deques (Fig. 3).
  void batchify(OpRecordBase& op);

  rt::Scheduler& scheduler() const { return sched_; }

  // Snapshot of domain statistics.  Safe to call anytime; exact when no
  // batch is in flight.
  BatcherStats stats() const;
  void reset_stats();

 private:
  struct alignas(kCacheLineSize) Slot {
    std::atomic<OpStatus> status{OpStatus::Free};
    OpRecordBase* op = nullptr;
  };

  // The paper's LAUNCHBATCH (Fig. 4).  Runs in batch context on the worker
  // that won the batch-flag CAS.
  void launch_batch();

  void collect_sequential(std::size_t* out_count);
  void collect_parallel(std::size_t* out_count);
  void complete_sequential();
  void complete_parallel();

  rt::Scheduler& sched_;
  BatchedStructure& ds_;
  const SetupPolicy setup_;

  std::vector<Slot> slots_;                  // the pending array (size P)
  std::vector<OpRecordBase*> working_;       // the working set (size <= P)
  std::vector<std::uint32_t> marks_;         // prefix-sum scratch (size P)

  alignas(kCacheLineSize) std::atomic<std::uint32_t> batch_flag_{0};
  std::atomic<std::int32_t> batches_running_{0};  // Invariant 1 check

  // Stats, written only under the batch flag (single writer at a time).
  struct StatsCells {
    std::atomic<std::uint64_t> batches_launched{0};
    std::atomic<std::uint64_t> empty_batches{0};
    std::atomic<std::uint64_t> ops_processed{0};
    std::atomic<std::uint64_t> max_batch_size{0};
    std::vector<std::atomic<std::uint64_t>> histogram;
  };
  StatsCells stat_cells_;
};

}  // namespace batcher
