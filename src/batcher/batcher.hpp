// The BATCHER scheduler extension (paper §4).
//
// One `Batcher` instance forms an implicit-batching domain around one batched
// data structure: it owns the P-slot pending array, the per-worker status
// flags, the global active-batch flag, and the LAUNCHBATCH procedure.  The
// host work-stealing runtime (src/runtime) supplies the dual deques and the
// alternating-steal policy; `Batcher` adds the trapped-worker rules.
//
// A program may create several Batcher domains (one per data structure); each
// batches independently, which matches the paper's model of a program using
// one ADT per domain.
//
// Failure semantics (DESIGN.md §8): LAUNCHBATCH runs under an RAII
// BatchGuard, so on *any* exit — including a throwing BOP or a throw inside
// the parallel collect/complete paths — every slot the batch collected is
// flipped to done (with the error recorded in its op record), the launch
// stats are bumped, and the batch flag reopens.  Trapped workers therefore
// always resume: successful ops return normally, failed ops rethrow from
// batchify, and the next batch launches as if nothing happened.
//
// Launch-path cost (DESIGN.md §11): under the default `Announce` setup
// policy, batchify additionally pushes its slot onto an intrusive MPSC
// announce list, and LAUNCHBATCH claims that list with a single exchange —
// so collect, complete and recovery all cost O(batch) instead of the
// Fig. 4 Θ(P) slot scan (which remains available via `SetupPolicy` for
// paper fidelity and ablation).  Before reopening the batch flag, the
// launcher chains straight into the next batch if new announcements arrived
// during this one (bounded by `chain_limit()`, default P), skipping the
// reopen -> CAS-storm -> relaunch round trip.
//
// Under BATCHER_AUDIT the whole protocol — batchify entry/exit, every slot
// status transition, the batch-flag CAS, and LAUNCHBATCH entry/exit — emits
// schedule hooks (runtime/schedule_hooks.hpp) keyed on `this` as the domain
// identity, which src/audit uses to check Invariants 1–3 and the Fig. 3
// trapped-worker rules at runtime.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <vector>

#include "batcher/op_record.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/worker.hpp"
#include "support/config.hpp"
#include "support/padded.hpp"

namespace batcher {

// Worker status with respect to this batching domain (§4): `pending` /
// `executing` / `done` mean the worker is *trapped* on a suspended
// data-structure node; `free` means it has none.
enum class OpStatus : std::uint8_t { Free = 0, Pending, Executing, Done };

// Counters describing one Batcher domain's activity.  The launch-side cells
// are written only by the (unique) active batch launcher, so single-writer
// relaxed atomics suffice; `announce_pushes` and `flag_cas_failures` are
// bumped by the trapped owners themselves (multi-writer) and use a relaxed
// fetch_add.
//
// `ops_processed` counts every operation a batch carried to done; it splits
// exactly into `ops_failed` (completed with an error recorded — the ops a
// failed launch had collected) and `ops_succeeded`, so the identity
//
//   ops_processed == ops_failed + ops_succeeded
//
// holds on every snapshot, fault-injected or not.  The histogram satisfies
// sum(hist) == batches_launched and sum(k * hist[k]) == ops_processed.
// Chained launches are ordinary launches run under one flag hold, so
// chained_launches <= batches_launched always.
struct BatcherStats {
  std::uint64_t batches_launched = 0;  // includes empty and failed launches
  std::uint64_t empty_batches = 0;
  std::uint64_t failed_batches = 0;    // launches that recorded an error
  // Launches that completed cleanly and carried at least one op — the
  // denominator of mean_batch_size.
  std::uint64_t clean_nonempty_batches = 0;
  std::uint64_t ops_processed = 0;     // ops carried to done (incl. failed)
  std::uint64_t ops_failed = 0;        // ops that completed with an error
  std::uint64_t ops_succeeded = 0;     // ops that completed without one
  std::uint64_t max_batch_size = 0;
  // Launch-path cost counters (DESIGN.md §11).
  std::uint64_t announce_pushes = 0;    // slots pushed onto the announce list
  std::uint64_t chained_launches = 0;   // launches run under a kept flag hold
  std::uint64_t flag_cas_failures = 0;  // lost batch-flag CAS races
  std::vector<std::uint64_t> batch_size_histogram;  // index = ops in batch

  // Mean over cleanly completed, non-empty launches.  Failed launches'
  // partially collected ops are excluded from both numerator and
  // denominator — a launch that died mid-collect would otherwise drag the
  // mean below what healthy batching actually achieved.  (Short of the
  // completion pass itself dying mid-flip, every successful op belongs to a
  // clean launch, so numerator and denominator agree exactly.)
  double mean_batch_size() const {
    return clean_nonempty_batches == 0
               ? 0.0
               : static_cast<double>(ops_succeeded) /
                     static_cast<double>(clean_nonempty_batches);
  }
};

class Batcher {
 public:
  // How LAUNCHBATCH discovers pending operations and compacts the pending
  // array.  `Parallel` is the paper's Fig. 4 (parallel_for + parallel prefix
  // sums over all P slots, Θ(P) work / Θ(lg P) span); `Sequential` is the
  // paper's own prototype simplification for small P (§7).  `Announce` is
  // our O(batch) deviation from Fig. 4 (DESIGN.md §11): batchify pushes its
  // slot onto an intrusive MPSC Treiber stack alongside the Pending store,
  // and the launcher claims the whole list with one exchange — collect,
  // complete and recovery all touch only the batch's own slots.  The scan
  // policies remain for paper fidelity and as ablation baselines.
  enum class SetupPolicy { Sequential, Parallel, Announce };

  // Default for new domains (and the DS wrappers in src/ds): the O(batch)
  // announce path.
  static constexpr SetupPolicy kDefaultSetup = SetupPolicy::Announce;

  Batcher(rt::Scheduler& sched, BatchedStructure& ds,
          SetupPolicy setup = kDefaultSetup);
  ~Batcher();

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  // The paper's BATCHIFY: hands `op` to the scheduler and blocks until some
  // batch has applied it.  Must be called from a worker of the owning
  // scheduler, in core context (data-structure code never calls batchify).
  // The calling worker is *trapped* until its operation completes: it only
  // executes batch work, launches a batch when none is active, or steals
  // from batch deques (Fig. 3).
  //
  // If the batch that carried `op` failed (the BOP threw, or the launch
  // protocol itself threw), the recorded exception rethrows here after the
  // slot has been released — the op record's error field stays set for
  // callers that prefer inspecting it.
  void batchify(OpRecordBase& op);

  rt::Scheduler& scheduler() const { return sched_; }
  SetupPolicy setup_policy() const { return setup_; }
  // Trace/ledger domain id of this batcher.  Benches that drive run_batch
  // directly (span profiling) book their samples under this id so the
  // per-domain s(n) histograms line up with launcher-recorded ones.
  std::uint16_t trace_id() const { return trace_id_; }

  // Batch chaining (Announce policy only): before reopening the batch flag,
  // the launcher checks for announcements that arrived during the launch and
  // runs the next batch under the same flag hold, up to `limit` launches per
  // hold.  Defaults to P, which bounds one worker's consecutive holds the
  // same way P sequential launches would.  `limit` is clamped to >= 1
  // (1 disables chaining).
  void set_chain_limit(std::size_t limit);
  std::size_t chain_limit() const { return chain_limit_; }

  // Snapshot of domain statistics.  Safe to call anytime; exact when no
  // batch is in flight.
  BatcherStats stats() const;
  void reset_stats();

 private:
  struct alignas(kCacheLineSize) Slot {
    std::atomic<OpStatus> status{OpStatus::Free};
    OpRecordBase* op = nullptr;
    // This slot's worker id — the status hooks name the slot's owner, and
    // the announce walk has no scan index to derive it from.
    unsigned owner = 0;
    // Intrusive announce-list link.  Written by the owner before its release
    // CAS on announce_head_, read by the launcher after its acquire
    // exchange; the claim walk always reads it before flipping the slot to
    // a state the owner could resume from, so a plain pointer suffices.
    Slot* announce_next = nullptr;
    // Bound-ledger path handoff (trace/bound_ledger.hpp).  The owner writes
    // submit_path_* before its Pending release store (launcher reads after
    // the acquire that observed Pending); the completion pass writes
    // done_path_* before the Done release store (owner reads after the
    // acquire that observed Done).  The LAUNCHBATCH dependency edges thus
    // ride the existing status protocol with no extra synchronization.
    std::uint64_t submit_path_ns = 0;
    std::uint64_t submit_path_tasks = 0;
    std::uint64_t done_path_ns = 0;
    std::uint64_t done_path_tasks = 0;
  };

  // RAII completion of one LAUNCHBATCH (DESIGN.md §8): the constructor
  // claims the launch (batches_running_, Invariant 1 check); the destructor
  // — on every exit path, normal or unwinding — fails any slot still
  // `Executing` (records the launch error, flips it to done), bumps the
  // launch stats exactly once, decrements batches_running_, emits
  // kLaunchExit, and reopens the batch flag.
  class BatchGuard {
   public:
    BatchGuard(Batcher& batcher, unsigned launcher);
    ~BatchGuard();
    BatchGuard(const BatchGuard&) = delete;
    BatchGuard& operator=(const BatchGuard&) = delete;

    void collected(std::size_t count) {
      count_ = count;
      have_count_ = true;
    }
    void completed_cleanly() { clean_ = true; }
    void fail(std::exception_ptr error) { error_ = std::move(error); }
    // Chaining: leave the batch flag closed on destruction so the next
    // launch of the chain runs under the same hold.  Only legal after
    // completed_cleanly() — a failed launch always reopens the domain.
    void keep_flag() { keep_flag_ = true; }

   private:
    Batcher& b_;
    const unsigned launcher_;
    std::size_t count_ = 0;
    bool have_count_ = false;
    bool clean_ = false;
    bool keep_flag_ = false;
    std::exception_ptr error_;
  };

  // The paper's LAUNCHBATCH (Fig. 4).  Runs in batch context on the worker
  // that won the batch-flag CAS.  Never lets an exception escape: failures
  // are recorded in the collected op records by the BatchGuard.
  void launch_batch();

  // Scans all P slots; for every slot whose status is `From`, runs
  // `per_slot(i, slot)` (which may throw — the slot is then left at `From`),
  // emits the matching status hook, and stores `To`.  `per_miss(i)` runs for
  // non-matching slots (the parallel collect uses it to zero its marks).
  // Memory orders follow the protocol: Pending is read with acquire (pairs
  // with batchify's publish), Done is stored with release (publishes BOP
  // results and recorded errors to the trapped owner).
  template <OpStatus From, OpStatus To, typename PerSlot, typename PerMiss>
  void transition_slots(bool parallel, PerSlot&& per_slot, PerMiss&& per_miss);
  template <OpStatus From, OpStatus To, typename PerSlot>
  void transition_slots(bool parallel, PerSlot&& per_slot);

  // Fig. 4 steps 1-2: flip Pending -> Executing and compact the working set.
  std::size_t collect(bool parallel);
  // Announce-policy collect (DESIGN.md §11): claim the announce list with
  // one exchange and walk it, flipping Pending -> Executing and densely
  // filling working_/claimed_.  O(batch) work, no P-slot scan.
  std::size_t collect_announce();
  // Flips every still-Executing slot to Done, recording `error` (may be
  // null) in its op record first.  Returns the number of slots flipped.
  std::size_t complete(bool parallel, const std::exception_ptr& error);
  // Announce-policy completion: walks only claimed_[0..claimed_count_), not
  // all P slots.  `error` as in complete().
  std::size_t complete_claimed(const std::exception_ptr& error);
  // Announce-policy recovery: fails exactly the claimed list — the already-
  // collected slots (Executing) and, after a throw inside the claim walk,
  // the claimed-but-uncollected remainder (still Pending, but off the
  // announce stack, so no later batch could ever pick them up).
  std::size_t fail_claimed(const std::exception_ptr& error);

  rt::Scheduler& sched_;
  BatchedStructure& ds_;
  const SetupPolicy setup_;
  // Small id naming this domain in 16-byte trace records (src/trace);
  // registered for the Batcher's lifetime.
  const std::uint16_t trace_id_;

  std::vector<Slot> slots_;                  // the pending array (size P)
  std::vector<OpRecordBase*> working_;       // the working set (size <= P)
  std::vector<std::uint32_t> marks_;         // prefix-sum scratch (size P)

  alignas(kCacheLineSize) std::atomic<std::uint32_t> batch_flag_{0};
  std::atomic<std::int32_t> batches_running_{0};  // Invariant 1 check

  // Announce-list head (Announce policy).  Owners push with a release CAS;
  // the launcher claims the whole list with exchange(nullptr, acquire).
  // Push-only + whole-list claim means no ABA window.
  alignas(kCacheLineSize) std::atomic<Slot*> announce_head_{nullptr};
  // Launcher-private bookkeeping for the current launch (valid only under
  // the batch flag): the slots this launch flipped to Executing, and — while
  // the claim walk is still running — the claimed-but-unprocessed tail.
  std::vector<Slot*> claimed_;               // size <= P
  std::size_t claimed_count_ = 0;
  Slot* claimed_rest_ = nullptr;
  std::size_t chain_limit_;                  // launches per flag hold (>= 1)

  // Stats.  Launch-side cells are written only under the batch flag (single
  // writer at a time); announce_pushes / flag_cas_failures are bumped by
  // trapped owners and need real read-modify-writes.
  struct StatsCells {
    std::atomic<std::uint64_t> batches_launched{0};
    std::atomic<std::uint64_t> empty_batches{0};
    std::atomic<std::uint64_t> failed_batches{0};
    std::atomic<std::uint64_t> clean_nonempty_batches{0};
    std::atomic<std::uint64_t> ops_processed{0};
    std::atomic<std::uint64_t> ops_failed{0};
    std::atomic<std::uint64_t> ops_succeeded{0};
    std::atomic<std::uint64_t> max_batch_size{0};
    std::atomic<std::uint64_t> announce_pushes{0};
    std::atomic<std::uint64_t> chained_launches{0};
    std::atomic<std::uint64_t> flag_cas_failures{0};
    std::vector<std::atomic<std::uint64_t>> histogram;
  };
  StatsCells stat_cells_;
};

}  // namespace batcher
