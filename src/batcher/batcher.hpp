// The BATCHER scheduler extension (paper §4).
//
// One `Batcher` instance forms an implicit-batching domain around one batched
// data structure: it owns the P-slot pending array, the per-worker status
// flags, the global active-batch flag, and the LAUNCHBATCH procedure.  The
// host work-stealing runtime (src/runtime) supplies the dual deques and the
// alternating-steal policy; `Batcher` adds the trapped-worker rules.
//
// A program may create several Batcher domains (one per data structure); each
// batches independently, which matches the paper's model of a program using
// one ADT per domain.
//
// Failure semantics (DESIGN.md §8): LAUNCHBATCH runs under an RAII
// BatchGuard, so on *any* exit — including a throwing BOP or a throw inside
// the parallel collect/complete paths — every slot the batch collected is
// flipped to done (with the error recorded in its op record), the launch
// stats are bumped, and the batch flag reopens.  Trapped workers therefore
// always resume: successful ops return normally, failed ops rethrow from
// batchify, and the next batch launches as if nothing happened.
//
// Under BATCHER_AUDIT the whole protocol — batchify entry/exit, every slot
// status transition, the batch-flag CAS, and LAUNCHBATCH entry/exit — emits
// schedule hooks (runtime/schedule_hooks.hpp) keyed on `this` as the domain
// identity, which src/audit uses to check Invariants 1–3 and the Fig. 3
// trapped-worker rules at runtime.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <vector>

#include "batcher/op_record.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/worker.hpp"
#include "support/config.hpp"
#include "support/padded.hpp"

namespace batcher {

// Worker status with respect to this batching domain (§4): `pending` /
// `executing` / `done` mean the worker is *trapped* on a suspended
// data-structure node; `free` means it has none.
enum class OpStatus : std::uint8_t { Free = 0, Pending, Executing, Done };

// Counters describing one Batcher domain's activity.  Written only by the
// (unique) active batch launcher, so single-writer relaxed atomics suffice.
//
// `ops_processed` counts every operation a batch carried to done; it splits
// exactly into `ops_failed` (completed with an error recorded — the ops a
// failed launch had collected) and `ops_succeeded`, so the identity
//
//   ops_processed == ops_failed + ops_succeeded
//
// holds on every snapshot, fault-injected or not.  The histogram satisfies
// sum(hist) == batches_launched and sum(k * hist[k]) == ops_processed.
struct BatcherStats {
  std::uint64_t batches_launched = 0;  // includes empty and failed launches
  std::uint64_t empty_batches = 0;
  std::uint64_t failed_batches = 0;    // launches that recorded an error
  // Launches that completed cleanly and carried at least one op — the
  // denominator of mean_batch_size.
  std::uint64_t clean_nonempty_batches = 0;
  std::uint64_t ops_processed = 0;     // ops carried to done (incl. failed)
  std::uint64_t ops_failed = 0;        // ops that completed with an error
  std::uint64_t ops_succeeded = 0;     // ops that completed without one
  std::uint64_t max_batch_size = 0;
  std::vector<std::uint64_t> batch_size_histogram;  // index = ops in batch

  // Mean over cleanly completed, non-empty launches.  Failed launches'
  // partially collected ops are excluded from both numerator and
  // denominator — a launch that died mid-collect would otherwise drag the
  // mean below what healthy batching actually achieved.  (Short of the
  // completion pass itself dying mid-flip, every successful op belongs to a
  // clean launch, so numerator and denominator agree exactly.)
  double mean_batch_size() const {
    return clean_nonempty_batches == 0
               ? 0.0
               : static_cast<double>(ops_succeeded) /
                     static_cast<double>(clean_nonempty_batches);
  }
};

class Batcher {
 public:
  // How LAUNCHBATCH flips statuses and compacts the pending array.
  // `Parallel` is the paper's Fig. 4 (parallel_for + parallel prefix sums,
  // Θ(P) work / Θ(lg P) span); `Sequential` is the paper's own prototype
  // simplification for small P (§7).
  enum class SetupPolicy { Sequential, Parallel };

  Batcher(rt::Scheduler& sched, BatchedStructure& ds,
          SetupPolicy setup = SetupPolicy::Sequential);
  ~Batcher();

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  // The paper's BATCHIFY: hands `op` to the scheduler and blocks until some
  // batch has applied it.  Must be called from a worker of the owning
  // scheduler, in core context (data-structure code never calls batchify).
  // The calling worker is *trapped* until its operation completes: it only
  // executes batch work, launches a batch when none is active, or steals
  // from batch deques (Fig. 3).
  //
  // If the batch that carried `op` failed (the BOP threw, or the launch
  // protocol itself threw), the recorded exception rethrows here after the
  // slot has been released — the op record's error field stays set for
  // callers that prefer inspecting it.
  void batchify(OpRecordBase& op);

  rt::Scheduler& scheduler() const { return sched_; }

  // Snapshot of domain statistics.  Safe to call anytime; exact when no
  // batch is in flight.
  BatcherStats stats() const;
  void reset_stats();

 private:
  struct alignas(kCacheLineSize) Slot {
    std::atomic<OpStatus> status{OpStatus::Free};
    OpRecordBase* op = nullptr;
  };

  // RAII completion of one LAUNCHBATCH (DESIGN.md §8): the constructor
  // claims the launch (batches_running_, Invariant 1 check); the destructor
  // — on every exit path, normal or unwinding — fails any slot still
  // `Executing` (records the launch error, flips it to done), bumps the
  // launch stats exactly once, decrements batches_running_, emits
  // kLaunchExit, and reopens the batch flag.
  class BatchGuard {
   public:
    BatchGuard(Batcher& batcher, unsigned launcher);
    ~BatchGuard();
    BatchGuard(const BatchGuard&) = delete;
    BatchGuard& operator=(const BatchGuard&) = delete;

    void collected(std::size_t count) {
      count_ = count;
      have_count_ = true;
    }
    void completed_cleanly() { clean_ = true; }
    void fail(std::exception_ptr error) { error_ = std::move(error); }

   private:
    Batcher& b_;
    const unsigned launcher_;
    std::size_t count_ = 0;
    bool have_count_ = false;
    bool clean_ = false;
    std::exception_ptr error_;
  };

  // The paper's LAUNCHBATCH (Fig. 4).  Runs in batch context on the worker
  // that won the batch-flag CAS.  Never lets an exception escape: failures
  // are recorded in the collected op records by the BatchGuard.
  void launch_batch();

  // Scans all P slots; for every slot whose status is `From`, runs
  // `per_slot(i, slot)` (which may throw — the slot is then left at `From`),
  // emits the matching status hook, and stores `To`.  `per_miss(i)` runs for
  // non-matching slots (the parallel collect uses it to zero its marks).
  // Memory orders follow the protocol: Pending is read with acquire (pairs
  // with batchify's publish), Done is stored with release (publishes BOP
  // results and recorded errors to the trapped owner).
  template <OpStatus From, OpStatus To, typename PerSlot, typename PerMiss>
  void transition_slots(bool parallel, PerSlot&& per_slot, PerMiss&& per_miss);
  template <OpStatus From, OpStatus To, typename PerSlot>
  void transition_slots(bool parallel, PerSlot&& per_slot);

  // Fig. 4 steps 1-2: flip Pending -> Executing and compact the working set.
  std::size_t collect(bool parallel);
  // Flips every still-Executing slot to Done, recording `error` (may be
  // null) in its op record first.  Returns the number of slots flipped.
  std::size_t complete(bool parallel, const std::exception_ptr& error);

  rt::Scheduler& sched_;
  BatchedStructure& ds_;
  const SetupPolicy setup_;
  // Small id naming this domain in 16-byte trace records (src/trace);
  // registered for the Batcher's lifetime.
  const std::uint16_t trace_id_;

  std::vector<Slot> slots_;                  // the pending array (size P)
  std::vector<OpRecordBase*> working_;       // the working set (size <= P)
  std::vector<std::uint32_t> marks_;         // prefix-sum scratch (size P)

  alignas(kCacheLineSize) std::atomic<std::uint32_t> batch_flag_{0};
  std::atomic<std::int32_t> batches_running_{0};  // Invariant 1 check

  // Stats, written only under the batch flag (single writer at a time).
  struct StatsCells {
    std::atomic<std::uint64_t> batches_launched{0};
    std::atomic<std::uint64_t> empty_batches{0};
    std::atomic<std::uint64_t> failed_batches{0};
    std::atomic<std::uint64_t> clean_nonempty_batches{0};
    std::atomic<std::uint64_t> ops_processed{0};
    std::atomic<std::uint64_t> ops_failed{0};
    std::atomic<std::uint64_t> ops_succeeded{0};
    std::atomic<std::uint64_t> max_batch_size{0};
    std::vector<std::atomic<std::uint64_t>> histogram;
  };
  StatsCells stat_cells_;
};

}  // namespace batcher
