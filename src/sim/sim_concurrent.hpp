// Timestep simulator of a parallel program using a *contended concurrent*
// data structure — the paper's introduction scenario: each access occupies
// its processor for a latency that grows with the number of simultaneous
// accessors (e.g., CAS retry storms, combining-free fetch-and-add queues),
// giving the Ω(P)-per-access worst case and hence Ω(n) total time.
#pragma once

#include <cstdint>

#include "sim/dag.hpp"
#include "sim/metrics.hpp"

namespace batcher::sim {

struct ConcurrentSimConfig {
  unsigned workers = 8;
  std::uint64_t seed = 1;
  // Latency of a ds access that starts when c other accesses are in flight:
  // base_cost + contention_factor * c.  contention_factor = 0 models an
  // ideal (fully parallel) concurrent structure; 1 models full serialization
  // of the contended path.
  std::int64_t base_cost = 1;
  std::int64_t contention_factor = 1;
};

SimResult simulate_concurrent(const Dag& core, const ConcurrentSimConfig& cfg);

}  // namespace batcher::sim
