#include "sim/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "support/config.hpp"
#include "support/rng.hpp"

namespace batcher::sim {

namespace {

// Pure per-leaf randomness: hash (seed, leaf) through splitmix so an arrival
// answer never depends on query order.
std::uint64_t leaf_hash(std::uint64_t seed, std::int64_t leaf) {
  SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(leaf + 1)));
  return sm.next();
}

}  // namespace

const char* shape_name(Shape shape) {
  switch (shape) {
    case Shape::Uniform: return "UNIFORM";
    case Shape::Zipfian: return "ZIPFIAN";
    case Shape::FlashCrowd: return "FLASHCROWD";
    case Shape::TrappedHeavy: return "TRAPPEDHEAVY";
    case Shape::WorkingSet: return "WORKINGSET";
  }
  return "?";
}

ScenarioConfig make_scenario_config(Shape shape, std::int64_t ops,
                                    std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.shape = shape;
  cfg.ops = ops;
  cfg.seed = seed;
  switch (shape) {
    case Shape::TrappedHeavy:
      // Long sequential ds runs: the paper's m per strand grows to 8 and the
      // op mix turns update-heavy.
      cfg.ds_per_leaf = 8;
      break;
    case Shape::FlashCrowd:
      // Near-simultaneous waves: almost no per-leaf jitter, all the arrival
      // structure lives in the burst/quiet alternation.
      cfg.arrival_jitter = 1;
      break;
    default:
      break;
  }
  return cfg;
}

// --- arrival processes ------------------------------------------------------

UniformArrival::UniformArrival(std::uint64_t seed, std::int64_t max_jitter)
    : seed_(seed), max_jitter_(max_jitter) {}

Arrival UniformArrival::at(std::int64_t leaf) const {
  Arrival a;
  a.wave = 0;
  a.jitter = max_jitter_ <= 0
                 ? 0
                 : static_cast<std::int64_t>(
                       leaf_hash(seed_, leaf) %
                       static_cast<std::uint64_t>(max_jitter_ + 1));
  return a;
}

FlashCrowdArrival::FlashCrowdArrival(std::uint64_t seed, std::int64_t leaves,
                                     std::int64_t burst, std::int64_t quiet,
                                     std::int64_t max_jitter)
    : seed_(seed),
      leaves_(leaves),
      burst_(std::max<std::int64_t>(burst, 1)),
      quiet_(std::max<std::int64_t>(quiet, 1)),
      max_jitter_(max_jitter) {}

std::int64_t FlashCrowdArrival::waves() const {
  return (leaves_ + burst_ - 1) / burst_;
}

Arrival FlashCrowdArrival::at(std::int64_t leaf) const {
  Arrival a;
  a.wave = leaf / burst_;
  a.jitter = max_jitter_ <= 0
                 ? 0
                 : static_cast<std::int64_t>(
                       leaf_hash(seed_, leaf) %
                       static_cast<std::uint64_t>(max_jitter_ + 1));
  return a;
}

// --- keyed cost model -------------------------------------------------------

KeyedCostModel::KeyedCostModel(std::vector<std::int64_t> keys,
                               std::int64_t unit)
    : keys_(std::move(keys)), unit_(std::max<std::int64_t>(unit, 1)) {
  BATCHER_ASSERT(!keys_.empty(), "empty key tape");
}

WorkSpan KeyedCostModel::batch_cost(std::int64_t k) const {
  k = std::max<std::int64_t>(k, 1);
  // Peek the next k keys (wrapping; commits advance the cursor by exactly
  // the batch sizes, so a full run consumes the tape once in arrival order).
  scratch_.clear();
  scratch_.reserve(static_cast<std::size_t>(k));
  for (std::int64_t i = 0; i < k; ++i) {
    scratch_.push_back(keys_[(cursor_ + static_cast<std::size_t>(i)) % keys_.size()]);
  }
  std::sort(scratch_.begin(), scratch_.end());
  std::int64_t distinct = 0;
  std::int64_t run = 0, max_run = 0;
  for (std::size_t i = 0; i < scratch_.size(); ++i) {
    if (i == 0 || scratch_[i] != scratch_[i - 1]) {
      ++distinct;
      run = 0;
    }
    ++run;
    if (run > max_run) max_run = run;
  }
  WorkSpan cost;
  cost.work = unit_ * k + distinct;
  cost.span = ilog2(k) + ilog2(distinct) + unit_ * max_run;
  return cost;
}

void KeyedCostModel::on_commit(std::int64_t k) {
  cursor_ = (cursor_ + static_cast<std::size_t>(std::max<std::int64_t>(k, 0))) %
            keys_.size();
}

// --- scenario generator -----------------------------------------------------

ScenarioGen::ScenarioGen(const ScenarioConfig& config) : config_(config) {
  BATCHER_ASSERT(config_.ops >= 1, "scenario needs at least one op");
  BATCHER_ASSERT(config_.key_space >= 1, "scenario needs keys");
  BATCHER_ASSERT(config_.ds_per_leaf >= 1, "ds_per_leaf must be positive");
  leaves_ = std::max<std::int64_t>(config_.ops / config_.ds_per_leaf, 1);
  // Round the tape to whole leaves so tape length == total ds nodes.
  config_.ops = leaves_ * config_.ds_per_leaf;

  Xoshiro256 rng(config_.seed);
  tape_.reserve(static_cast<std::size_t>(config_.ops));

  switch (config_.shape) {
    case Shape::Zipfian: {
      // Inverse-CDF zipf over `key_space` ranks, ranks shuffled onto key ids
      // so key identity does not encode popularity.
      const std::size_t K = static_cast<std::size_t>(config_.key_space);
      std::vector<double> cdf(K);
      double total = 0;
      for (std::size_t r = 0; r < K; ++r) {
        total += 1.0 / std::pow(static_cast<double>(r + 1), config_.zipf_theta);
        cdf[r] = total;
      }
      std::vector<std::int64_t> perm(K);
      std::iota(perm.begin(), perm.end(), 0);
      for (std::size_t i = K; i > 1; --i) {
        std::swap(perm[i - 1], perm[rng.next_below(i)]);
      }
      for (std::int64_t i = 0; i < config_.ops; ++i) {
        const double u = rng.next_double() * total;
        const std::size_t rank = static_cast<std::size_t>(
            std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
        tape_.push_back({perm[std::min(rank, K - 1)], (rng.next() & 3u) != 0});
      }
      break;
    }
    case Shape::WorkingSet: {
      // Move-to-front recency list: with probability `locality` re-reference
      // one of the `working_set` most recent distinct keys, else page in a
      // fresh uniform key.
      std::vector<std::int64_t> recent;
      for (std::int64_t i = 0; i < config_.ops; ++i) {
        std::int64_t key;
        if (!recent.empty() && rng.next_double() < config_.locality) {
          key = recent[rng.next_below(recent.size())];
        } else {
          key = static_cast<std::int64_t>(
              rng.next_below(static_cast<std::uint64_t>(config_.key_space)));
        }
        const auto it = std::find(recent.begin(), recent.end(), key);
        if (it != recent.end()) recent.erase(it);
        recent.insert(recent.begin(), key);
        if (static_cast<std::int64_t>(recent.size()) > config_.working_set) {
          recent.pop_back();
        }
        tape_.push_back({key, (rng.next() & 3u) != 0});
      }
      break;
    }
    case Shape::TrappedHeavy:
      // Uniform keys, update-only: the adversarial part is the dag shape
      // (ds_per_leaf sequential ds nodes per strand), not the key stream.
      for (std::int64_t i = 0; i < config_.ops; ++i) {
        tape_.push_back({static_cast<std::int64_t>(rng.next_below(
                             static_cast<std::uint64_t>(config_.key_space))),
                         true});
      }
      break;
    case Shape::Uniform:
    case Shape::FlashCrowd:
      for (std::int64_t i = 0; i < config_.ops; ++i) {
        tape_.push_back({static_cast<std::int64_t>(rng.next_below(
                             static_cast<std::uint64_t>(config_.key_space))),
                         (rng.next() & 3u) != 0});
      }
      break;
  }

  if (config_.shape == Shape::FlashCrowd) {
    arrivals_ = std::make_unique<FlashCrowdArrival>(
        config_.seed, leaves_, config_.burst, config_.quiet,
        config_.arrival_jitter);
  } else {
    arrivals_ =
        std::make_unique<UniformArrival>(config_.seed, config_.arrival_jitter);
  }
}

std::vector<Arrival> ScenarioGen::arrival_schedule() const {
  std::vector<Arrival> schedule(static_cast<std::size_t>(leaves_));
  for (std::int64_t i = 0; i < leaves_; ++i) {
    schedule[static_cast<std::size_t>(i)] = arrivals_->at(i);
  }
  return schedule;
}

Dag ScenarioGen::build_core_dag() const {
  Dag dag;

  // One leaf: pre+jitter core chain, ds_per_leaf sequential ds nodes, post
  // chain.
  auto build_leaf = [&](std::int64_t leaf) -> Segment {
    const Arrival a = arrivals_->at(leaf);
    const Segment head =
        build_chain(dag, std::max<std::int64_t>(config_.pre + a.jitter, 1));
    NodeId tail = head.last;
    for (std::int64_t d = 0; d < config_.ds_per_leaf; ++d) {
      const NodeId ds = dag.add_node(/*ds_node=*/true);
      dag.add_edge(tail, ds);
      tail = ds;
    }
    if (config_.post > 0) {
      const Segment p = build_chain(dag, config_.post);
      dag.add_edge(tail, p.first);
      tail = p.last;
    }
    return Segment{head.first, tail};
  };

  // Binary fork/join over [lo, hi) leaves.
  auto fork_join = [&](auto&& self, std::int64_t lo,
                       std::int64_t hi) -> Segment {
    if (hi - lo == 1) return build_leaf(lo);
    const std::int64_t mid = lo + (hi - lo) / 2;
    const NodeId fork = dag.add_node();
    const Segment left = self(self, lo, mid);
    const Segment right = self(self, mid, hi);
    const NodeId join = dag.add_node();
    dag.add_edge(fork, left.first);
    dag.add_edge(fork, right.first);
    dag.add_edge(left.last, join);
    dag.add_edge(right.last, join);
    return Segment{fork, join};
  };

  const std::int64_t waves = arrivals_->waves();
  const std::int64_t per_wave = (leaves_ + waves - 1) / waves;
  Segment whole{kNoNode, kNoNode};
  for (std::int64_t w = 0; w < waves; ++w) {
    const std::int64_t lo = w * per_wave;
    const std::int64_t hi = std::min(lo + per_wave, leaves_);
    if (lo >= hi) break;
    const Segment wave = fork_join(fork_join, lo, hi);
    if (whole.first == kNoNode) {
      whole = wave;
    } else {
      const Segment gap = build_chain(dag, arrivals_->quiet_between());
      dag.add_edge(whole.last, gap.first);
      dag.add_edge(gap.last, wave.first);
      whole.last = wave.last;
    }
  }
  dag.root = whole.first;
  BATCHER_DASSERT(dag.validate(), "scenario built an invalid dag");
  return dag;
}

std::unique_ptr<KeyedCostModel> ScenarioGen::make_cost_model(
    std::int64_t unit) const {
  std::vector<std::int64_t> keys(tape_.size());
  for (std::size_t i = 0; i < tape_.size(); ++i) keys[i] = tape_[i].key;
  return std::make_unique<KeyedCostModel>(std::move(keys), unit);
}

std::int64_t ScenarioGen::distinct_keys() const {
  std::unordered_set<std::int64_t> seen;
  for (const OpDesc& op : tape_) seen.insert(op.key);
  return static_cast<std::int64_t>(seen.size());
}

double ScenarioGen::top_key_fraction() const {
  std::unordered_map<std::int64_t, std::int64_t> counts;
  std::int64_t best = 0;
  for (const OpDesc& op : tape_) best = std::max(best, ++counts[op.key]);
  return tape_.empty() ? 0.0
                       : static_cast<double>(best) /
                             static_cast<double>(tape_.size());
}

double ScenarioGen::repeat_fraction(std::int64_t window) const {
  if (tape_.size() < 2 || window < 1) return 0.0;
  std::int64_t repeats = 0;
  for (std::size_t i = 1; i < tape_.size(); ++i) {
    const std::size_t lo =
        i > static_cast<std::size_t>(window) ? i - static_cast<std::size_t>(window) : 0;
    for (std::size_t j = lo; j < i; ++j) {
      if (tape_[j].key == tape_[i].key) {
        ++repeats;
        break;
      }
    }
  }
  return static_cast<double>(repeats) / static_cast<double>(tape_.size() - 1);
}

}  // namespace batcher::sim
