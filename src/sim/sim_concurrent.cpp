#include "sim/sim_concurrent.hpp"

#include <vector>

#include "support/config.hpp"
#include "support/rng.hpp"

namespace batcher::sim {

SimResult simulate_concurrent(const Dag& core, const ConcurrentSimConfig& cfg) {
  const unsigned P = cfg.workers;
  BATCHER_ASSERT(P >= 1, "need at least one worker");
  BATCHER_ASSERT(core.validate(), "invalid core dag");

  const std::size_t n = core.size();
  std::vector<std::uint8_t> indeg(core.join_degree.begin(),
                                  core.join_degree.end());

  struct Worker {
    std::vector<NodeId> deque;
    NodeId assigned = kNoNode;
    std::int64_t ds_remaining = 0;  // > 0: inside a ds access
  };
  std::vector<Worker> ws(P);
  ws[0].assigned = core.root;

  Xoshiro256 rng(cfg.seed);
  SimResult res;
  std::size_t executed = 0;
  std::int64_t in_flight = 0;  // ds accesses currently executing

  auto complete = [&](Worker& w, NodeId v) {
    ++executed;
    NodeId enabled[2];
    int ne = 0;
    for (NodeId c : {core.child0[v], core.child1[v]}) {
      if (c != kNoNode && --indeg[c] == 0) enabled[ne++] = c;
    }
    if (ne >= 1) {
      w.assigned = enabled[0];
      if (ne == 2) w.deque.push_back(enabled[1]);
    } else if (!w.deque.empty()) {
      w.assigned = w.deque.back();
      w.deque.pop_back();
    } else {
      w.assigned = kNoNode;
    }
  };

  // Accesses that finish during a timestep complete at the *end* of the
  // step: otherwise two unit-latency accesses processed in worker order
  // within the same step would never observe each other and contention
  // would be invisible.
  std::vector<Worker*> finished;

  while (executed < n) {
    ++res.makespan;
    BATCHER_ASSERT(res.makespan < (std::int64_t{1} << 40),
                   "simulation does not terminate");
    finished.clear();
    for (unsigned p = 0; p < P; ++p) {
      Worker& w = ws[p];
      if (w.ds_remaining > 0) {
        // Grinding through a contended access.
        ++res.busy_batch;  // counts as data-structure time
        if (--w.ds_remaining == 0) finished.push_back(&w);
        continue;
      }
      if (w.assigned != kNoNode) {
        if (core.is_ds[w.assigned]) {
          // Latency fixed at entry by the current contention level.
          w.ds_remaining = cfg.base_cost + cfg.contention_factor * in_flight;
          ++in_flight;
          ++res.busy_batch;
          if (--w.ds_remaining == 0) finished.push_back(&w);
        } else {
          ++res.busy_core;
          complete(w, w.assigned);
        }
        continue;
      }
      ++res.steal_attempts;
      if (P == 1) {
        ++res.idle;
        continue;
      }
      unsigned victim = static_cast<unsigned>(rng.next_below(P - 1));
      if (victim >= p) ++victim;
      auto& vd = ws[victim].deque;
      if (!vd.empty()) {
        w.assigned = vd.front();
        vd.erase(vd.begin());
        ++res.steals_succeeded;
      }
    }
    for (Worker* w : finished) {
      --in_flight;
      complete(*w, w->assigned);
    }
  }
  return res;
}

}  // namespace batcher::sim
