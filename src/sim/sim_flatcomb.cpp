#include "sim/sim_flatcomb.hpp"

#include <vector>

#include "support/config.hpp"
#include "support/rng.hpp"

namespace batcher::sim {

namespace {
enum class WStatus : std::uint8_t { Free, Pending, Executing, Done };
}  // namespace

SimResult simulate_flatcomb(const Dag& core, BatchCostModel& model,
                            unsigned workers, std::uint64_t seed) {
  const unsigned P = workers;
  BATCHER_ASSERT(P >= 1, "need at least one worker");
  BATCHER_ASSERT(core.validate(), "invalid core dag");

  const std::size_t n = core.size();
  std::vector<std::uint8_t> indeg(core.join_degree.begin(),
                                  core.join_degree.end());

  struct Worker {
    std::vector<NodeId> deque;
    NodeId assigned = kNoNode;
    WStatus status = WStatus::Free;
    NodeId trapped_node = kNoNode;
  };
  std::vector<Worker> ws(P);
  ws[0].assigned = core.root;

  // Combiner state: when active, `combiner` grinds through `remaining`
  // sequential steps, after which all `members` complete.
  bool combining = false;
  unsigned combiner = 0;
  std::int64_t remaining = 0;
  std::vector<unsigned> members;

  Xoshiro256 rng(seed);
  SimResult res;
  std::size_t executed = 0;

  auto complete_core = [&](Worker& w, NodeId v) {
    ++executed;
    ++res.busy_core;
    NodeId enabled[2];
    int ne = 0;
    for (NodeId c : {core.child0[v], core.child1[v]}) {
      if (c != kNoNode && --indeg[c] == 0) enabled[ne++] = c;
    }
    if (ne >= 1) {
      w.assigned = enabled[0];
      if (ne == 2) w.deque.push_back(enabled[1]);
    } else if (!w.deque.empty()) {
      w.assigned = w.deque.back();
      w.deque.pop_back();
    } else {
      w.assigned = kNoNode;
    }
  };

  while (executed < n) {
    ++res.makespan;
    BATCHER_ASSERT(res.makespan < (std::int64_t{1} << 40),
                   "simulation does not terminate");
    for (unsigned p = 0; p < P; ++p) {
      Worker& w = ws[p];

      if (w.status != WStatus::Free) {
        ++res.trapped_steps;
        if (combining && combiner == p) {
          // Serve one sequential step of the combined batch.
          ++res.busy_batch;
          if (--remaining == 0) {
            for (unsigned m : members) ws[m].status = WStatus::Done;
            model.on_commit(static_cast<std::int64_t>(members.size()));
            combining = false;
            members.clear();
          }
          continue;
        }
        if (w.status == WStatus::Done) {
          w.status = WStatus::Free;
          complete_core(w, w.trapped_node);
          w.trapped_node = kNoNode;
          continue;
        }
        if (!combining) {
          // Become the combiner: sweep the publication list.
          combining = true;
          combiner = p;
          members.clear();
          std::int64_t k = 0;
          for (unsigned q = 0; q < P; ++q) {
            if (ws[q].status == WStatus::Pending) {
              ws[q].status = WStatus::Executing;
              members.push_back(q);
              ++k;
            }
          }
          remaining = k * model.sequential_op_cost();
          ++res.batches;
          res.batch_ops += k;
          if (k > res.max_batch_size) res.max_batch_size = k;
          continue;  // the sweep consumes this step
        }
        ++res.idle;  // spin-wait on the combiner
        continue;
      }

      if (w.assigned != kNoNode) {
        if (core.is_ds[w.assigned]) {
          w.status = WStatus::Pending;
          w.trapped_node = w.assigned;
          w.assigned = kNoNode;
        } else {
          complete_core(w, w.assigned);
        }
        continue;
      }
      // Steal attempt (single deque kind here).
      ++res.steal_attempts;
      if (P == 1) {
        ++res.idle;
        continue;
      }
      unsigned victim = static_cast<unsigned>(rng.next_below(P - 1));
      if (victim >= p) ++victim;
      auto& vd = ws[victim].deque;
      if (!vd.empty()) {
        w.assigned = vd.front();
        vd.erase(vd.begin());
        ++res.steals_succeeded;
      }
    }
  }
  return res;
}

}  // namespace batcher::sim
