#include "sim/dag.hpp"

#include <algorithm>

#include "support/config.hpp"

namespace batcher::sim {

namespace {

// Topological order by Kahn's algorithm; dags here are built top-down, so
// node ids are already nearly topological, but we do it properly.
std::vector<NodeId> topo_order(const Dag& dag) {
  const std::size_t n = dag.size();
  std::vector<std::uint8_t> indeg(dag.join_degree.begin(),
                                  dag.join_degree.end());
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<NodeId> frontier;
  for (NodeId v = 0; v < n; ++v) {
    if (indeg[v] == 0) frontier.push_back(v);
  }
  while (!frontier.empty()) {
    const NodeId v = frontier.back();
    frontier.pop_back();
    order.push_back(v);
    for (NodeId c : {dag.child0[v], dag.child1[v]}) {
      if (c != kNoNode && --indeg[c] == 0) frontier.push_back(c);
    }
  }
  return order;
}

}  // namespace

std::int64_t Dag::span() const {
  const auto order = topo_order(*this);
  std::vector<std::int64_t> depth(size(), 0);
  std::int64_t best = 0;
  for (NodeId v : order) {
    const std::int64_t d = depth[v] + 1;  // count this node
    best = std::max(best, d);
    for (NodeId c : {child0[v], child1[v]}) {
      if (c != kNoNode) depth[c] = std::max(depth[c], d);
    }
  }
  return best;
}

std::int64_t Dag::num_ds_nodes() const {
  std::int64_t n = 0;
  for (std::uint8_t f : is_ds) n += f;
  return n;
}

std::int64_t Dag::max_ds_on_path() const {
  const auto order = topo_order(*this);
  std::vector<std::int64_t> count(size(), 0);
  std::int64_t best = 0;
  for (NodeId v : order) {
    const std::int64_t c = count[v] + (is_ds[v] ? 1 : 0);
    best = std::max(best, c);
    for (NodeId ch : {child0[v], child1[v]}) {
      if (ch != kNoNode) count[ch] = std::max(count[ch], c);
    }
  }
  return best;
}

bool Dag::validate() const {
  if (root == kNoNode || root >= size()) return false;
  if (join_degree[root] != 0) return false;
  std::size_t roots = 0;
  for (NodeId v = 0; v < size(); ++v) {
    if (join_degree[v] == 0) ++roots;
    for (NodeId c : {child0[v], child1[v]}) {
      if (c != kNoNode && c >= size()) return false;
    }
  }
  if (roots != 1) return false;
  // Acyclic & connected: topological order must cover every node.
  return topo_order(*this).size() == size();
}

Segment build_chain(Dag& dag, std::int64_t len) {
  BATCHER_ASSERT(len >= 1, "chain length must be positive");
  const NodeId first = dag.add_node();
  NodeId prev = first;
  for (std::int64_t i = 1; i < len; ++i) {
    const NodeId next = dag.add_node();
    dag.add_edge(prev, next);
    prev = next;
  }
  return Segment{first, prev};
}

namespace {

// Recursive binary fork/join over [lo, hi) leaves.
Segment fork_join_recurse(Dag& dag, std::int64_t lo, std::int64_t hi,
                          std::int64_t chain_len) {
  if (hi - lo == 1) return build_chain(dag, chain_len);
  const std::int64_t mid = lo + (hi - lo) / 2;
  const NodeId fork = dag.add_node();
  const Segment left = fork_join_recurse(dag, lo, mid, chain_len);
  const Segment right = fork_join_recurse(dag, mid, hi, chain_len);
  const NodeId join = dag.add_node();
  dag.add_edge(fork, left.first);
  dag.add_edge(fork, right.first);
  dag.add_edge(left.last, join);
  dag.add_edge(right.last, join);
  return Segment{fork, join};
}

}  // namespace

Segment build_fork_join(Dag& dag, std::int64_t leaves, std::int64_t chain_len) {
  BATCHER_ASSERT(leaves >= 1 && chain_len >= 1, "bad fork/join parameters");
  return fork_join_recurse(dag, 0, leaves, chain_len);
}

Segment build_with_work_span(Dag& dag, std::int64_t work, std::int64_t span) {
  work = std::max<std::int64_t>(work, 1);
  span = std::max<std::int64_t>(span, 1);
  if (work <= span) return build_chain(dag, work);
  // leaves ≈ work/span gives chains of ≈ span nodes; the binary fork/join
  // tree adds 2·⌈lg leaves⌉ to the span (unavoidable under binary forking —
  // a requested span below lg(work) is infeasible and gets clamped here).
  const std::int64_t leaves = std::max<std::int64_t>(1, work / span);
  const std::int64_t chain =
      std::max<std::int64_t>(1, (work - 2 * (leaves - 1)) / leaves);
  return build_fork_join(dag, leaves, chain);
}

Dag build_parallel_loop_with_ds(std::int64_t n, std::int64_t pre,
                                std::int64_t post, std::int64_t ds_per_iter) {
  BATCHER_ASSERT(n >= 1 && ds_per_iter >= 0 && pre >= 0 && post >= 0,
                 "bad loop parameters");
  Dag dag;

  // One leaf = pre-chain, ds nodes, post-chain (at least one core node so
  // every leaf is non-empty).
  auto build_leaf = [&](auto&&) -> Segment {
    Segment seg = build_chain(dag, std::max<std::int64_t>(pre, 1));
    NodeId tail = seg.last;
    for (std::int64_t d = 0; d < ds_per_iter; ++d) {
      const NodeId ds = dag.add_node(/*ds_node=*/true);
      dag.add_edge(tail, ds);
      tail = ds;
    }
    if (post > 0) {
      const Segment p = build_chain(dag, post);
      dag.add_edge(tail, p.first);
      tail = p.last;
    }
    return Segment{seg.first, tail};
  };

  // Binary fork tree over n leaves.
  struct Rec {
    Dag& dag;
    decltype(build_leaf)& leaf;
    Segment operator()(std::int64_t lo, std::int64_t hi) {
      if (hi - lo == 1) return leaf(0);
      const std::int64_t mid = lo + (hi - lo) / 2;
      const NodeId fork = dag.add_node();
      const Segment l = (*this)(lo, mid);
      const Segment r = (*this)(mid, hi);
      const NodeId join = dag.add_node();
      dag.add_edge(fork, l.first);
      dag.add_edge(fork, r.first);
      dag.add_edge(l.last, join);
      dag.add_edge(r.last, join);
      return Segment{fork, join};
    }
  };
  Rec rec{dag, build_leaf};
  const Segment all = rec(0, n);
  dag.root = all.first;
  BATCHER_DASSERT(dag.validate(), "built an invalid dag");
  return dag;
}

Dag build_sequential_ds_chain(std::int64_t n, std::int64_t gap) {
  BATCHER_ASSERT(n >= 1 && gap >= 0, "bad chain parameters");
  Dag dag;
  const NodeId first = dag.add_node();
  NodeId tail = first;
  for (std::int64_t i = 0; i < n; ++i) {
    const NodeId ds = dag.add_node(/*ds_node=*/true);
    dag.add_edge(tail, ds);
    tail = ds;
    for (std::int64_t g = 0; g < gap; ++g) {
      const NodeId c = dag.add_node();
      dag.add_edge(tail, c);
      tail = c;
    }
  }
  dag.root = first;
  BATCHER_DASSERT(dag.validate(), "built an invalid dag");
  return dag;
}

Dag build_plain_fork_join(std::int64_t leaves, std::int64_t chain_len) {
  Dag dag;
  const Segment all = build_fork_join(dag, leaves, chain_len);
  dag.root = all.first;
  BATCHER_DASSERT(dag.validate(), "built an invalid dag");
  return dag;
}

}  // namespace batcher::sim
