// Result record for a simulated execution.
#pragma once

#include <cstdint>

namespace batcher::sim {

struct SimResult {
  std::int64_t makespan = 0;        // timesteps until the dag completed

  // Per-kind processor-step accounting (sums over all workers; each worker
  // contributes exactly one step per timestep, so the columns sum to
  // makespan * P).
  std::int64_t busy_core = 0;       // core-dag nodes executed
  std::int64_t busy_batch = 0;      // batch-dag (BOP) nodes executed
  std::int64_t busy_setup = 0;      // batch-setup/cleanup nodes executed
  std::int64_t steal_attempts = 0;  // failed + successful
  std::int64_t steals_succeeded = 0;
  std::int64_t idle = 0;            // trapped spinning / nothing to do

  // Batching behaviour.
  std::int64_t batches = 0;
  std::int64_t batch_ops = 0;       // total operations across batches
  std::int64_t max_batch_size = 0;
  std::int64_t trapped_steps = 0;   // steps spent in trapped state

  // §5 analysis quantities (BATCHER simulator only).
  //
  // Steal attempts partitioned exactly as the proof partitions them: a
  // *big-batch* steal happens while a big batch is active; otherwise the
  // attempt is *trapped* or *free* according to the thief's status.  A batch
  // is big if it is τ-long (span > τ), τ-wide (work > P·τ), popular
  // (> P/4 ops), or adjacent to such a batch (the adjacency is what the
  // proof triples its counts for; we track it live via "previous batch was
  // big" + a pending flag for the successor).
  std::int64_t big_batch_steals = 0;   // bounded by Lemma 9
  std::int64_t free_steals = 0;        // bounded by Lemmas 10 + 11
  std::int64_t trapped_steals = 0;     // bounded by Lemma 13
  std::int64_t long_batches = 0;       // span > τ
  std::int64_t wide_batches = 0;       // work > P·τ
  std::int64_t popular_batches = 0;    // ops > P/4
  std::int64_t big_batches = 0;        // union incl. neighbours
  std::int64_t trimmed_span = 0;       // Σ span over long batches (S_τ(n))
  std::int64_t tau = 0;                // the τ used for classification

  // Lemma 2: once an operation is pending, at most two batches execute
  // before it completes.  max over all traps of "#batch completions between
  // posting the record and turning done".
  std::int64_t max_batches_waited = 0;

  double mean_batch_size() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(batch_ops) /
                              static_cast<double>(batches);
  }
};

}  // namespace batcher::sim
