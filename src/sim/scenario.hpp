// Adversarial workload shapes for the scheduler simulator.
//
// The 1-core container caps real runs at small P and benign arrival patterns;
// the discrete-event simulator is where P can reach the thousands and traffic
// can be shaped adversarially.  This file defines the shapes the working-set
// and finger-search literature (Agrawal/Gilbert/Lim, PAPERS.md) says batched
// structures must be exercised under, and that uniform-random benchmarks
// never produce:
//
//   * Zipfian      key skew — a handful of hot keys absorb most operations,
//                  so a batch's working set is dense on few keys and any
//                  per-key serialization in the BOP collapses its span;
//   * FlashCrowd   arrival bursts — waves of near-simultaneous operations
//                  separated by quiet serial phases, the worst case for the
//                  launch protocol (everyone announces at once, then nobody);
//   * TrappedHeavy op mixes — long sequential runs of data-structure nodes
//                  per strand (the paper's m grows), so most workers spend
//                  most steps trapped;
//   * WorkingSet   access locality — operations re-reference a small, slowly
//                  drifting set of recent keys (the working-set property),
//                  sitting between Uniform and Zipfian in skew.
//
// A `ScenarioGen` is a pure function of its `ScenarioConfig` (seed included):
// it produces (1) an *op tape* — the key/kind sequence the data structure
// will see, (2) an *arrival schedule* — when each operation's strand becomes
// runnable, via the `ArrivalProcess` interface shared by all simulator
// front-ends, (3) a core dag encoding that schedule for the dag-driven
// simulators (sim_batcher / sim_flatcomb / sim_concurrent), and (4) a
// `KeyedCostModel` that prices each batch from the actual keys it carries,
// so skew and locality reach the batch work/span the way they would in a
// real bucketed or tree-shaped BOP.  Same seed, same everything — replays
// are exact, and tests assert it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/dag.hpp"

namespace batcher::sim {

enum class Shape : std::uint8_t {
  Uniform,
  Zipfian,
  FlashCrowd,
  TrappedHeavy,
  WorkingSet,
};
inline constexpr int kNumShapes = 5;
const char* shape_name(Shape shape);

// One entry of the op tape.  `update` distinguishes read-like from write-like
// operations (the trapped-heavy mix skews toward updates; cost models may
// price them differently later).
struct OpDesc {
  std::int64_t key = 0;
  bool update = true;

  bool operator==(const OpDesc&) const = default;
};

struct ScenarioConfig {
  Shape shape = Shape::Uniform;
  std::int64_t ops = 1024;       // op-tape length (= total ds nodes)
  std::uint64_t seed = 1;

  // Key population and skew.
  std::int64_t key_space = 512;  // distinct keys the tape draws from
  double zipf_theta = 1.1;       // Zipfian exponent (Zipfian shape)

  // Working-set locality (WorkingSet shape): with probability `locality`
  // the next key re-references one of the `working_set` most recent keys.
  std::int64_t working_set = 16;
  double locality = 0.9;

  // Flash crowds (FlashCrowd shape): strands arrive in waves of `burst`
  // operations; consecutive waves are separated by a serial quiet phase of
  // `quiet` core nodes (no ds traffic at all between crowds).
  std::int64_t burst = 64;
  std::int64_t quiet = 512;

  // Strand anatomy: core nodes before/after the ds run in each leaf, plus
  // per-leaf arrival jitter (extra pre nodes, drawn in [0, arrival_jitter]).
  std::int64_t pre = 2;
  std::int64_t post = 1;
  std::int64_t arrival_jitter = 4;

  // Sequential ds nodes per leaf.  TrappedHeavy raises this (the paper's m);
  // every other shape keeps 1.
  std::int64_t ds_per_leaf = 1;
};

// Shape-specific defaults layered over the common knobs above: TrappedHeavy
// sets ds_per_leaf = 8, FlashCrowd keeps its burst/quiet, etc.
ScenarioConfig make_scenario_config(Shape shape, std::int64_t ops,
                                    std::uint64_t seed);

// --- Arrival process --------------------------------------------------------
//
// The shared interface between workload shapes and simulator front-ends: for
// each leaf (strand of the core dag) it answers *when* that strand's first
// data-structure node becomes reachable.  Arrivals are organized as
// sequential waves — all leaves of wave w become runnable only after wave
// w-1 completed plus `quiet_between()` serial core nodes — with per-leaf
// jitter inside a wave.  A steady open-loop load is the 1-wave special case.
// Every answer is a pure function of (seed, leaf): replaying a seed replays
// the exact arrival schedule.

struct Arrival {
  std::int64_t wave = 0;    // sequential wave index (0-based)
  std::int64_t jitter = 0;  // extra core nodes before the leaf's ds run

  bool operator==(const Arrival&) const = default;
};

class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  virtual std::int64_t waves() const = 0;          // >= 1
  virtual std::int64_t quiet_between() const = 0;  // core nodes between waves
  virtual Arrival at(std::int64_t leaf) const = 0;
};

// All leaves in one wave, jitter uniform in [0, max_jitter].
class UniformArrival final : public ArrivalProcess {
 public:
  UniformArrival(std::uint64_t seed, std::int64_t max_jitter);
  std::int64_t waves() const override { return 1; }
  std::int64_t quiet_between() const override { return 0; }
  Arrival at(std::int64_t leaf) const override;

 private:
  std::uint64_t seed_;
  std::int64_t max_jitter_;
};

// Waves of `burst` consecutive leaves separated by `quiet` serial core nodes.
class FlashCrowdArrival final : public ArrivalProcess {
 public:
  FlashCrowdArrival(std::uint64_t seed, std::int64_t leaves, std::int64_t burst,
                    std::int64_t quiet, std::int64_t max_jitter);
  std::int64_t waves() const override;
  std::int64_t quiet_between() const override { return quiet_; }
  Arrival at(std::int64_t leaf) const override;

 private:
  std::uint64_t seed_;
  std::int64_t leaves_;
  std::int64_t burst_;
  std::int64_t quiet_;
  std::int64_t max_jitter_;
};

// --- Keyed batch cost model -------------------------------------------------
//
// Prices a batch from the actual keys it carries, modelling a bucketed /
// per-key-serialized BOP (hash map buckets, per-key combine chains): the
// parallel part is a sort+dedup tree over the k records, the serial part is
// the deepest per-key chain.  With d distinct keys and worst per-key
// multiplicity c_max:
//
//   work = unit·k + d            (per-record probe + per-distinct-key apply)
//   span = lg k + lg d + unit·c_max
//
// Under a uniform tape c_max ≈ 1 and the span is the paper's Θ(lg) bound;
// under zipfian skew c_max → Θ(k) and the span collapses toward sequential —
// exactly the skew-induced batch-density collapse the sweep hunts for.  The
// model consumes the tape in batch-sized bites (on_commit advances the
// cursor), so simulators exercise the tape in arrival order.
class KeyedCostModel final : public BatchCostModel {
 public:
  explicit KeyedCostModel(std::vector<std::int64_t> keys,
                          std::int64_t unit = 1);

  WorkSpan batch_cost(std::int64_t k) const override;
  std::int64_t sequential_op_cost() const override { return unit_ + 1; }
  void on_commit(std::int64_t k) override;

  std::size_t cursor() const { return cursor_; }

 private:
  std::vector<std::int64_t> keys_;
  std::int64_t unit_;
  std::size_t cursor_ = 0;
  mutable std::vector<std::int64_t> scratch_;  // batch_cost key-count scratch
};

// --- Scenario generator -----------------------------------------------------

class ScenarioGen {
 public:
  explicit ScenarioGen(const ScenarioConfig& config);

  const ScenarioConfig& config() const { return config_; }
  const std::vector<OpDesc>& tape() const { return tape_; }
  const ArrivalProcess& arrivals() const { return *arrivals_; }
  std::int64_t leaves() const { return leaves_; }

  // The arrival schedule, materialized: arrivals().at(i) for each leaf.
  std::vector<Arrival> arrival_schedule() const;

  // Core dag realizing the arrival schedule: per wave, a binary fork/join
  // over that wave's leaves (leaf = pre+jitter core chain, ds_per_leaf
  // sequential ds nodes, post chain); waves chained through `quiet` serial
  // core nodes.
  Dag build_core_dag() const;

  // Fresh cost model over this scenario's key tape (each simulated policy
  // gets its own cursor).
  std::unique_ptr<KeyedCostModel> make_cost_model(std::int64_t unit = 1) const;

  // Tape statistics, for tests and the sweep report.
  std::int64_t distinct_keys() const;
  double top_key_fraction() const;   // share of ops on the most popular key
  // Fraction of ops whose key appeared within the previous `window` ops —
  // the working-set locality measure.
  double repeat_fraction(std::int64_t window) const;

 private:
  ScenarioConfig config_;
  std::int64_t leaves_;
  std::vector<OpDesc> tape_;
  std::unique_ptr<ArrivalProcess> arrivals_;
};

}  // namespace batcher::sim
