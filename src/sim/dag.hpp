// Explicit computation dags for the scheduler simulator.
//
// The simulator executes the paper's model directly (§2): unit-time nodes,
// binary forking, dags that unfold as nodes execute.  A Dag here is the
// a-posteriori object; builders produce the shapes the paper's analysis talks
// about — fork/join trees over chains, and core dags whose leaves contain
// data-structure nodes.
#pragma once

#include <cstdint>
#include <vector>

namespace batcher::sim {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

struct Dag {
  // Structure-of-arrays; node ids are dense.
  std::vector<NodeId> child0;       // first successor (kNoNode if none)
  std::vector<NodeId> child1;       // second successor (kNoNode if none)
  std::vector<std::uint8_t> join_degree;  // incoming-edge count (1 or 2;
                                          // 0 for the root)
  std::vector<std::uint8_t> is_ds;  // 1 = data-structure node
  NodeId root = kNoNode;

  std::size_t size() const { return child0.size(); }

  NodeId add_node(bool ds_node = false) {
    child0.push_back(kNoNode);
    child1.push_back(kNoNode);
    join_degree.push_back(0);
    is_ds.push_back(ds_node ? 1 : 0);
    return static_cast<NodeId>(child0.size() - 1);
  }

  void add_edge(NodeId from, NodeId to) {
    if (child0[from] == kNoNode) {
      child0[from] = to;
    } else {
      child1[from] = to;
    }
    ++join_degree[to];
  }

  // Number of nodes = work (every node is unit time).
  std::int64_t work() const { return static_cast<std::int64_t>(size()); }
  // Longest path through the dag, in nodes (the span).  O(V+E).
  std::int64_t span() const;
  // Count of data-structure nodes.
  std::int64_t num_ds_nodes() const;
  // Maximum number of ds nodes on any path (the paper's m).
  std::int64_t max_ds_on_path() const;

  // Sanity: every non-root node has join_degree >= 1, edges well-formed.
  bool validate() const;
};

// --- Builders -------------------------------------------------------------

// A serial chain of `len` nodes.  Returns (first, last).
struct Segment {
  NodeId first;
  NodeId last;
};
Segment build_chain(Dag& dag, std::int64_t len);

// Balanced binary fork/join over `leaves` leaf segments; each leaf is a chain
// of `chain_len` nodes.  Work Θ(leaves·chain_len + leaves), span
// Θ(lg leaves + chain_len).
Segment build_fork_join(Dag& dag, std::int64_t leaves, std::int64_t chain_len);

// Fork/join dag approximating a computation with the given work and span:
// chooses a leaf count and chain length so that work and span land within a
// small constant of the request.  Used by batch cost models.
Segment build_with_work_span(Dag& dag, std::int64_t work, std::int64_t span);

// The paper's running example (Fig. 1): a parallel loop over `n` iterations;
// each iteration runs `pre` core nodes, then `ds_per_iter` data-structure
// nodes in sequence, then `post` core nodes.  T1 = Θ(n·(pre+post)),
// T∞ = Θ(lg n + pre + post), total ds nodes n·ds_per_iter, m = ds_per_iter.
Dag build_parallel_loop_with_ds(std::int64_t n, std::int64_t pre,
                                std::int64_t post, std::int64_t ds_per_iter);

// A purely sequential chain of n ds nodes separated by `gap` core nodes:
// the worst case m = n.  For trap-latency experiments.
Dag build_sequential_ds_chain(std::int64_t n, std::int64_t gap);

// Plain fork/join core dag with no ds nodes (for validating the baseline
// work-stealing bound T1/P + O(T∞)).
Dag build_plain_fork_join(std::int64_t leaves, std::int64_t chain_len);

}  // namespace batcher::sim
