// Batch cost models: how much (work, span) a batched operation on k records
// costs, for each data structure of §3/§7.  The simulator turns these numbers
// into explicit fork/join batch dags.
#pragma once

#include <cstdint>

namespace batcher::sim {

struct WorkSpan {
  std::int64_t work;
  std::int64_t span;
};

// Interface: stateful so structures can grow as batches commit (a skip list's
// per-op cost is lg(current size)).
class BatchCostModel {
 public:
  virtual ~BatchCostModel() = default;

  // Cost of one batched operation over k records.
  virtual WorkSpan batch_cost(std::int64_t k) const = 0;

  // Sequential per-record cost (used by the flat-combining and contended-
  // concurrent simulators: one record applied alone).
  virtual std::int64_t sequential_op_cost() const = 0;

  // Called when a batch of k records commits (lets the model grow).
  virtual void on_commit(std::int64_t k) { (void)k; }
};

// Batched counter (Fig. 2): prefix sums.  W = a·k, s = lg k + c.
class CounterCostModel final : public BatchCostModel {
 public:
  explicit CounterCostModel(std::int64_t unit = 2) : unit_(unit) {}
  WorkSpan batch_cost(std::int64_t k) const override;
  std::int64_t sequential_op_cost() const override { return unit_; }

 private:
  std::int64_t unit_;
};

// Batched skip list (§7): per-record search cost lg(size); searches parallel,
// build/splice sequential-ish but proportional to k.
// W = a·k·lg(size), s = lg(size) + lg(k).
class SkipListCostModel final : public BatchCostModel {
 public:
  explicit SkipListCostModel(std::int64_t initial_size, std::int64_t unit = 1)
      : size_(initial_size), unit_(unit) {}
  WorkSpan batch_cost(std::int64_t k) const override;
  std::int64_t sequential_op_cost() const override;
  void on_commit(std::int64_t k) override { size_ += k; }

  std::int64_t current_size() const { return size_; }

 private:
  std::int64_t size_;
  std::int64_t unit_;
};

// Batched 2-3 tree (§3): W = k·(lg size + lg k), s = lg size + lg k · lglg k.
class SearchTreeCostModel final : public BatchCostModel {
 public:
  explicit SearchTreeCostModel(std::int64_t initial_size, std::int64_t unit = 1)
      : size_(initial_size), unit_(unit) {}
  WorkSpan batch_cost(std::int64_t k) const override;
  std::int64_t sequential_op_cost() const override;
  void on_commit(std::int64_t k) override { size_ += k; }

 private:
  std::int64_t size_;
  std::int64_t unit_;
};

std::int64_t ilog2(std::int64_t x);  // floor(lg x), >= 1 result clamp

}  // namespace batcher::sim
