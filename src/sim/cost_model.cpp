#include "sim/cost_model.hpp"

#include <algorithm>

namespace batcher::sim {

std::int64_t ilog2(std::int64_t x) {
  std::int64_t lg = 0;
  while (x > 1) {
    x >>= 1;
    ++lg;
  }
  return std::max<std::int64_t>(lg, 1);
}

WorkSpan CounterCostModel::batch_cost(std::int64_t k) const {
  return WorkSpan{unit_ * k, ilog2(k) + 1};
}

WorkSpan SkipListCostModel::batch_cost(std::int64_t k) const {
  const std::int64_t per_op = ilog2(size_ + 2);
  return WorkSpan{unit_ * k * per_op, per_op + ilog2(k)};
}

std::int64_t SkipListCostModel::sequential_op_cost() const {
  return unit_ * ilog2(size_ + 2);
}

WorkSpan SearchTreeCostModel::batch_cost(std::int64_t k) const {
  const std::int64_t lg_size = ilog2(size_ + 2);
  const std::int64_t lg_k = ilog2(k);
  const std::int64_t lglg_k = ilog2(lg_k + 1);
  return WorkSpan{unit_ * k * (lg_size + lg_k), lg_size + lg_k * lglg_k};
}

std::int64_t SearchTreeCostModel::sequential_op_cost() const {
  return unit_ * ilog2(size_ + 2);
}

}  // namespace batcher::sim
