// Timestep simulator of flat combining (§1/§7): implicit batching where every
// batch executes *sequentially* on the combiner.  Identical core-dag handling
// to the BATCHER simulator, but a launched batch is a serial chain of
// k · sequential_op_cost nodes that only the combiner executes; the other
// trapped workers spin.
#pragma once

#include <cstdint>

#include "sim/cost_model.hpp"
#include "sim/dag.hpp"
#include "sim/metrics.hpp"

namespace batcher::sim {

SimResult simulate_flatcomb(const Dag& core, BatchCostModel& model,
                            unsigned workers, std::uint64_t seed);

}  // namespace batcher::sim
