#include "sim/sim_ws.hpp"

#include <vector>

#include "support/config.hpp"
#include "support/rng.hpp"

namespace batcher::sim {

SimResult simulate_ws(const Dag& dag, unsigned workers, std::uint64_t seed) {
  BATCHER_ASSERT(workers >= 1, "need at least one worker");
  BATCHER_ASSERT(dag.validate(), "invalid dag");

  const std::size_t n = dag.size();
  std::vector<std::uint8_t> indeg(dag.join_degree.begin(),
                                  dag.join_degree.end());

  struct Worker {
    std::vector<NodeId> deque;  // back = bottom (owner side), front = top
    NodeId assigned = kNoNode;
  };
  std::vector<Worker> ws(workers);
  ws[0].assigned = dag.root;

  Xoshiro256 rng(seed);
  SimResult res;
  std::size_t executed = 0;

  auto execute = [&](Worker& w) {
    const NodeId v = w.assigned;
    ++executed;
    ++res.busy_core;
    NodeId enabled[2];
    int ne = 0;
    for (NodeId c : {dag.child0[v], dag.child1[v]}) {
      if (c != kNoNode && --indeg[c] == 0) enabled[ne++] = c;
    }
    if (ne >= 1) {
      w.assigned = enabled[0];
      if (ne == 2) w.deque.push_back(enabled[1]);
    } else if (!w.deque.empty()) {
      w.assigned = w.deque.back();
      w.deque.pop_back();
    } else {
      w.assigned = kNoNode;
    }
  };

  while (executed < n) {
    ++res.makespan;
    for (unsigned p = 0; p < workers; ++p) {
      if (executed >= n) {
        ++res.idle;  // account remaining workers this step
        continue;
      }
      Worker& w = ws[p];
      if (w.assigned != kNoNode) {
        execute(w);
        continue;
      }
      // Deque should be empty when unassigned (we pop on completion), so
      // this is a steal attempt.
      ++res.steal_attempts;
      if (workers == 1) {
        ++res.idle;
        continue;
      }
      unsigned victim = static_cast<unsigned>(rng.next_below(workers - 1));
      if (victim >= p) ++victim;
      Worker& v = ws[victim];
      if (!v.deque.empty()) {
        w.assigned = v.deque.front();  // steal from the top
        v.deque.erase(v.deque.begin());
        ++res.steals_succeeded;
      } else if (v.assigned == kNoNode && victim == 0) {
        // nothing; root already taken
      }
    }
  }
  return res;
}

}  // namespace batcher::sim
