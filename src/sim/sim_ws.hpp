// Timestep simulator of classic randomized work stealing (Blumofe–Leiserson /
// ABP) over an explicit dag with no data-structure nodes.  Validates the
// baseline T_P = O(T1/P + T∞) behaviour the paper generalizes.
#pragma once

#include <cstdint>

#include "sim/dag.hpp"
#include "sim/metrics.hpp"

namespace batcher::sim {

// Simulates `dag` on `workers` unit-speed processors.  Deterministic given
// `seed`.  Every timestep each worker either executes its assigned node,
// takes a node from its own deque (and executes it the same step), or spends
// the step on one steal attempt.
SimResult simulate_ws(const Dag& dag, unsigned workers, std::uint64_t seed);

}  // namespace batcher::sim
