#include "sim/sim_batcher.hpp"

#include <vector>

#include "support/config.hpp"
#include "support/rng.hpp"

namespace batcher::sim {

namespace {

enum class WStatus : std::uint8_t { Free, Pending, Executing, Done };

// A node reference tags which dag it lives in.
struct Ref {
  NodeId id = kNoNode;
  bool batch = false;  // false = core dag, true = active batch dag
  bool valid() const { return id != kNoNode; }
};

struct SimWorker {
  std::vector<NodeId> core_deque;   // back = bottom
  std::vector<NodeId> batch_deque;
  Ref assigned;
  WStatus status = WStatus::Free;
  NodeId trapped_node = kNoNode;  // the suspended core ds node
  std::uint64_t steal_tick = 0;
  std::int64_t wait_steps = 0;    // steps spent trapped with empty batch deque
  std::int64_t completions_at_trap = 0;  // global batch count when trapped
};

// The single active batch (Invariant 1).
struct ActiveBatch {
  Dag dag;
  std::vector<std::uint8_t> indeg;
  std::int64_t executed = 0;
  // Node ids in [bop_lo, bop_hi) are BOP work; everything else is
  // setup/cleanup overhead.
  std::int64_t bop_lo = 0;
  std::int64_t bop_hi = 0;
  std::vector<unsigned> members;  // worker ids whose ops are in this batch
  bool active = false;
  bool counts_as_big = false;     // τ-long, τ-wide, popular, or successor of one

  bool is_setup(NodeId id) const {
    const auto i = static_cast<std::int64_t>(id);
    return i < bop_lo || i >= bop_hi;
  }
};

}  // namespace

SimResult simulate_batcher(const Dag& core, BatchCostModel& model,
                           const BatcherSimConfig& config) {
  const unsigned P = config.workers;
  BATCHER_ASSERT(P >= 1, "need at least one worker");
  BATCHER_ASSERT(core.validate(), "invalid core dag");

  const std::size_t n = core.size();
  std::vector<std::uint8_t> core_indeg(core.join_degree.begin(),
                                       core.join_degree.end());

  std::vector<SimWorker> ws(P);
  ws[0].assigned = Ref{core.root, false};

  ActiveBatch batch;
  Xoshiro256 rng(config.seed);
  SimResult res;
  std::size_t core_executed = 0;

  // §5 classification threshold: default to the data-structure span s(n).
  const std::int64_t tau =
      config.tau > 0
          ? config.tau
          : model.batch_cost(static_cast<std::int64_t>(P)).span;
  res.tau = tau;
  bool prev_batch_was_big_core = false;  // own flags only, for adjacency
  std::int64_t batch_completions = 0;

  // --- helpers ------------------------------------------------------------

  // Completes core node v on worker w: enables successors per the dag.
  auto complete_core_node = [&](SimWorker& w, NodeId v) {
    ++core_executed;
    NodeId enabled[2];
    int ne = 0;
    for (NodeId c : {core.child0[v], core.child1[v]}) {
      if (c != kNoNode && --core_indeg[c] == 0) enabled[ne++] = c;
    }
    if (ne >= 1) {
      w.assigned = Ref{enabled[0], false};
      if (ne == 2) w.core_deque.push_back(enabled[1]);
    } else {
      w.assigned = Ref{};
    }
  };

  auto complete_batch_node = [&](SimWorker& w, NodeId v) {
    ++batch.executed;
    NodeId enabled[2];
    int ne = 0;
    for (NodeId c : {batch.dag.child0[v], batch.dag.child1[v]}) {
      if (c != kNoNode && --batch.indeg[c] == 0) enabled[ne++] = c;
    }
    if (ne >= 1) {
      w.assigned = Ref{enabled[0], true};
      if (ne == 2) w.batch_deque.push_back(enabled[1]);
    } else {
      w.assigned = Ref{};
    }
  };

  // Batch completion: flip member statuses to done, clear the flag.
  auto finish_batch_if_done = [&]() {
    if (batch.active &&
        batch.executed == static_cast<std::int64_t>(batch.dag.size())) {
      for (unsigned m : batch.members) {
        BATCHER_DASSERT(ws[m].status == WStatus::Executing,
                        "member must be executing");
        ws[m].status = WStatus::Done;
      }
      model.on_commit(static_cast<std::int64_t>(batch.members.size()));
      batch.active = false;
      batch.members.clear();
      ++batch_completions;
    }
  };

  // Launch: collect every pending op, build setup+BOP+cleanup dag, seed the
  // launcher's batch deque with its root.
  auto launch_batch = [&](SimWorker& launcher) {
    BATCHER_DASSERT(!batch.active, "Invariant 1");
    batch.dag = Dag{};
    batch.indeg.clear();
    batch.executed = 0;
    batch.members.clear();
    const std::int64_t cap = config.max_ops_per_batch > 0
                                 ? config.max_ops_per_batch
                                 : static_cast<std::int64_t>(P);
    const unsigned start = static_cast<unsigned>(&launcher - ws.data());
    for (unsigned off = 0; off < P; ++off) {
      const unsigned q = (start + off) % P;  // launcher's own op goes first
      if (static_cast<std::int64_t>(batch.members.size()) >= cap) break;
      if (ws[q].status == WStatus::Pending) {
        ws[q].status = WStatus::Executing;
        batch.members.push_back(q);
      }
    }
    const std::int64_t k = static_cast<std::int64_t>(batch.members.size());
    BATCHER_ASSERT(k >= 1 && k <= static_cast<std::int64_t>(P), "Invariant 2");

    Segment whole;
    const WorkSpan cost = model.batch_cost(k);
    // §5 batch taxonomy, measured live.  "Big" also covers the successor of
    // a long/wide/popular batch; the analysis additionally charges the
    // *predecessor*, which cannot be known at launch — the proof handles
    // that by tripling, the measurement reports the live classification.
    const bool is_long = cost.span > tau;
    const bool is_wide = cost.work > static_cast<std::int64_t>(P) * tau;
    const bool is_popular = k > static_cast<std::int64_t>(P) / 4;
    const bool big_core = is_long || is_wide || is_popular;
    if (is_long) {
      ++res.long_batches;
      res.trimmed_span += cost.span;
    }
    if (is_wide) ++res.wide_batches;
    if (is_popular) ++res.popular_batches;
    batch.counts_as_big = big_core || prev_batch_was_big_core;
    if (batch.counts_as_big) ++res.big_batches;
    prev_batch_was_big_core = big_core;
    if (config.setup_overhead) {
      // Setup: Θ(P) work, Θ(lg P) span; cleanup the same (Fig. 4).
      const Segment setup = build_fork_join(batch.dag, P, 1);
      batch.bop_lo = batch.dag.work();
      const Segment bop = build_with_work_span(batch.dag, cost.work, cost.span);
      batch.bop_hi = batch.dag.work();
      const Segment cleanup = build_fork_join(batch.dag, P, 1);
      batch.dag.add_edge(setup.last, bop.first);
      batch.dag.add_edge(bop.last, cleanup.first);
      whole = Segment{setup.first, cleanup.last};
    } else {
      batch.bop_lo = 0;
      whole = build_with_work_span(batch.dag, cost.work, cost.span);
      batch.bop_hi = batch.dag.work();
    }
    batch.dag.root = whole.first;
    batch.indeg.assign(batch.dag.join_degree.begin(),
                       batch.dag.join_degree.end());
    batch.active = true;
    ++res.batches;
    res.batch_ops += k;
    if (k > res.max_batch_size) res.max_batch_size = k;
    launcher.batch_deque.push_back(batch.dag.root);
  };

  auto steal_from = [&](SimWorker& thief, bool batch_deque) -> bool {
    ++res.steal_attempts;
    if (batch.active && batch.counts_as_big) {
      ++res.big_batch_steals;
    } else if (thief.status != WStatus::Free) {
      ++res.trapped_steals;
    } else {
      ++res.free_steals;
    }
    if (P == 1) return false;
    const unsigned self = static_cast<unsigned>(&thief - ws.data());
    unsigned victim = static_cast<unsigned>(rng.next_below(P - 1));
    if (victim >= self) ++victim;
    auto& deque = batch_deque ? ws[victim].batch_deque : ws[victim].core_deque;
    if (deque.empty()) return false;
    const NodeId v = deque.front();
    deque.erase(deque.begin());
    thief.assigned = Ref{v, batch_deque};
    ++res.steals_succeeded;
    return true;
  };

  auto free_steal = [&](SimWorker& w) {
    bool target_batch;
    switch (config.policy) {
      case StealPolicy::Alternating:
        target_batch = (w.steal_tick++ % 2 == 1);
        break;
      case StealPolicy::CoreOnly:
        target_batch = false;
        break;
      case StealPolicy::BatchOnly:
        target_batch = true;
        break;
      case StealPolicy::UniformRandom:
      default:
        target_batch = (rng.next() & 1u) != 0;
        break;
    }
    steal_from(w, target_batch);
  };

  std::int64_t pending_count = 0;

  // --- main loop ----------------------------------------------------------

  while (core_executed < n) {
    ++res.makespan;
    BATCHER_ASSERT(res.makespan < (std::int64_t{1} << 40),
                   "simulation does not terminate");
    for (unsigned p = 0; p < P; ++p) {
      SimWorker& w = ws[p];

      // Trapped workers: only batch work (Fig. 3).
      if (w.status != WStatus::Free) {
        ++res.trapped_steps;
        if (w.assigned.valid()) {
          BATCHER_DASSERT(w.assigned.batch, "trapped workers run batch nodes");
          const bool setup = batch.is_setup(w.assigned.id);
          (setup ? res.busy_setup : res.busy_batch) += 1;
          complete_batch_node(w, w.assigned.id);
          finish_batch_if_done();
          continue;
        }
        if (!w.batch_deque.empty()) {
          const NodeId v = w.batch_deque.back();
          w.batch_deque.pop_back();
          const bool setup = batch.is_setup(v);
          (setup ? res.busy_setup : res.busy_batch) += 1;
          w.assigned = Ref{v, true};
          complete_batch_node(w, w.assigned.id);
          finish_batch_if_done();
          continue;
        }
        if (w.status == WStatus::Done) {
          // Resume the suspended core node: it completes now.  Lemma 2: at
          // most two batches executed since the record was posted.
          const std::int64_t waited = batch_completions - w.completions_at_trap;
          if (waited > res.max_batches_waited) res.max_batches_waited = waited;
          w.status = WStatus::Free;
          --pending_count;
          ++res.busy_core;
          complete_core_node(w, w.trapped_node);
          w.trapped_node = kNoNode;
          w.wait_steps = 0;
          continue;
        }
        ++w.wait_steps;
        if (!batch.active && (pending_count >= config.min_batch_ops ||
                              w.wait_steps >= config.max_wait_steps)) {
          launch_batch(w);  // consumes the step (the CAS + injection)
          continue;
        }
        // Steal from a random victim's batch deque.
        steal_from(w, /*batch_deque=*/true);
        if (w.assigned.valid()) {
          // Execute next step; this step was the steal.
        } else {
          ++res.idle;
        }
        continue;
      }

      // Free workers.
      if (w.assigned.valid()) {
        if (w.assigned.batch) {
          const bool setup = batch.is_setup(w.assigned.id);
          (setup ? res.busy_setup : res.busy_batch) += 1;
          complete_batch_node(w, w.assigned.id);
          finish_batch_if_done();
        } else if (core.is_ds[w.assigned.id]) {
          // Data-structure node: the worker becomes trapped.  Registering the
          // op record consumes the step.
          w.status = WStatus::Pending;
          w.trapped_node = w.assigned.id;
          w.assigned = Ref{};
          ++pending_count;
          w.completions_at_trap = batch_completions;
        } else {
          ++res.busy_core;
          complete_core_node(w, w.assigned.id);
        }
        continue;
      }
      // Prefer own batch deque, then own core deque (pop is free; execute in
      // the same step).
      if (!w.batch_deque.empty()) {
        const NodeId v = w.batch_deque.back();
        w.batch_deque.pop_back();
        w.assigned = Ref{v, true};
        const bool setup = batch.is_setup(v);
        (setup ? res.busy_setup : res.busy_batch) += 1;
        complete_batch_node(w, v);
        finish_batch_if_done();
        continue;
      }
      if (!w.core_deque.empty()) {
        const NodeId v = w.core_deque.back();
        w.core_deque.pop_back();
        if (core.is_ds[v]) {
          w.status = WStatus::Pending;
          w.trapped_node = v;
          ++pending_count;
          w.completions_at_trap = batch_completions;
        } else {
          w.assigned = Ref{v, false};
          ++res.busy_core;
          complete_core_node(w, v);
        }
        continue;
      }
      free_steal(w);
      if (!w.assigned.valid()) ++res.idle;
    }
  }
  return res;
}

}  // namespace batcher::sim
