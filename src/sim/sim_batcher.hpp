// Timestep simulator of the full BATCHER scheduler (§4) over an explicit
// core dag with data-structure nodes.
//
// The simulation executes the paper's operational rules exactly:
//   * per-worker core and batch deques (Invariant 3);
//   * worker statuses free/pending/executing/done, with trapped workers
//     restricted to batch work (Fig. 3);
//   * the alternating-steal policy for free workers (configurable, for the
//     ablation study);
//   * immediate batch launch guarded by a global flag, with the whole
//     pending array collected into the batch (Invariants 1 & 2);
//   * a batch-setup + BOP + cleanup dag of Θ(P) work and Θ(lg P) span per
//     launch, with the BOP part sized by a per-structure cost model.
//
// All randomness flows from the seed, so runs are exactly reproducible.
#pragma once

#include <cstdint>

#include "sim/cost_model.hpp"
#include "sim/dag.hpp"
#include "sim/metrics.hpp"

namespace batcher::sim {

enum class StealPolicy : std::uint8_t {
  Alternating,    // the paper's policy: even ticks core, odd ticks batch
  CoreOnly,       // free workers only steal core deques
  BatchOnly,      // free workers only steal batch deques
  UniformRandom,  // coin-flip per attempt
};

struct BatcherSimConfig {
  unsigned workers = 8;
  std::uint64_t seed = 1;
  StealPolicy policy = StealPolicy::Alternating;
  // Launch-immediately is the paper's rule (min_batch_ops = 1).  Setting it
  // higher makes trapped workers hold the launch until that many operations
  // are pending or `max_wait_steps` have elapsed (ablation ABL-batch).
  std::int64_t min_batch_ops = 1;
  std::int64_t max_wait_steps = 1 << 20;
  // Include the Θ(P)-work / Θ(lg P)-span setup+cleanup dag per batch.
  bool setup_overhead = true;
  // τ for the §5 batch classification (long/wide/popular) in the result's
  // analysis counters.  0 = auto: the data-structure span s(n), i.e. the
  // cost model's span for a size-P batch (the τ Corollary 14 picks).
  std::int64_t tau = 0;
  // Cap on operations collected per launch (0 = P, the paper's Invariant 2).
  // Setting this to 1 models a *helper lock* (Agrawal, Leiserson & Sukha,
  // PPoPP 2010 — the paper's §6 comparison): each data-structure operation
  // becomes its own parallel critical section that blocked workers help
  // complete, with no cross-operation batching.  Collection starts at the
  // launching worker so the launcher's own operation is always served.
  std::int64_t max_ops_per_batch = 0;
};

// Simulates the core dag under BATCHER; `model` prices each batch and may
// grow as batches commit (it is mutated).
SimResult simulate_batcher(const Dag& core, BatchCostModel& model,
                           const BatcherSimConfig& config);

}  // namespace batcher::sim
