// Wall-clock timing helpers for benchmarks and tests.
#pragma once

#include <chrono>
#include <cstdint>

namespace batcher {

// Monotonic stopwatch.  Construction starts it; elapsed_* reads it.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  std::uint64_t elapsed_nanos() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace batcher
