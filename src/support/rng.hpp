// Deterministic, fast pseudo-random number generation.
//
// Work-stealing victim selection needs a generator that is (a) cheap — a few
// arithmetic ops, no modulo bias in the common case, (b) per-worker so there
// is no shared state, and (c) seedable so simulator runs are reproducible.
// We use xoshiro256** (Blackman & Vigna) seeded via splitmix64, the standard
// pairing recommended by the authors.
#pragma once

#include <cstdint>

namespace batcher {

// splitmix64: used to expand a single 64-bit seed into generator state.
// Passes BigCrush when used as a generator itself; here it is a seeder.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: all-purpose 64-bit generator, 256 bits of state, period 2^256-1.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  constexpr result_type operator()() { return next(); }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound) via Lemire's multiply-shift reduction.
  // Slightly biased for astronomically large bounds; victim selection and
  // workload generation do not care.
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(bound);
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace batcher
