// Cache-line padded wrapper to keep per-worker state on private lines.
#pragma once

#include <cstddef>

#include "support/config.hpp"

namespace batcher {

// Padded<T> occupies a whole number of cache lines so that arrays of
// per-worker state (statuses, counters, deque anchors) never false-share.
template <typename T>
struct alignas(kCacheLineSize) Padded {
  T value{};

  Padded() = default;
  explicit Padded(const T& v) : value(v) {}

  T& operator*() { return value; }
  const T& operator*() const { return value; }
  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
};

}  // namespace batcher
