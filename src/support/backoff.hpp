// Bounded exponential backoff for contended spin loops.
//
// Workers spin in exactly two places: waiting at a join whose children were
// stolen, and (trapped workers) waiting for a batch to complete when there is
// no batch work to help with.  Both loops must stay responsive — the paper's
// analysis charges every timestep to work or to a steal attempt — so backoff
// caps at a short yield rather than a sleep.
#pragma once

#include <thread>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

namespace batcher {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(_M_X64)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

class Backoff {
 public:
  void pause() {
    if (count_ < kSpinLimit) {
      for (int i = 0; i < (1 << count_); ++i) cpu_relax();
      ++count_;
    } else {
      // Oversubscribed or single-core machines need the yield: a spinning
      // thread could otherwise starve the worker holding the work.
      std::this_thread::yield();
    }
  }

  void reset() { count_ = 0; }

 private:
  static constexpr int kSpinLimit = 6;  // up to 64 pause instructions
  int count_ = 0;
};

}  // namespace batcher
