// Basic configuration knobs and checked-assertion macros shared by every
// subsystem.  Nothing here depends on the runtime.
#pragma once

#include <cstddef>
#include <cstdio>
#include <cstdlib>

namespace batcher {

// Destructive interference distance.  std::hardware_destructive_interference_size
// is not reliably available across standard libraries, so pin the common x86-64
// value (two lines on recent Intel prefetchers is overkill for our purposes).
inline constexpr std::size_t kCacheLineSize = 64;

// Schedule-observation hooks (src/runtime/schedule_hooks.hpp).  The BATCHER_AUDIT
// CMake option defines this to 1; when 0 every hook compiles to nothing, so
// release builds pay no cost for the audit subsystem.
#ifndef BATCHER_AUDIT
#define BATCHER_AUDIT 0
#endif

// True when compiling under ThreadSanitizer (either compiler's spelling).
#if defined(__SANITIZE_THREAD__)
#define BATCHER_TSAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define BATCHER_TSAN_ACTIVE 1
#endif
#endif
#ifndef BATCHER_TSAN_ACTIVE
#define BATCHER_TSAN_ACTIVE 0
#endif

// BATCHER_ASSERT is active in all build types: scheduler invariants are cheap
// relative to the work they guard and this is a research codebase where a
// silent invariant violation is worse than a few percent of throughput.
#define BATCHER_ASSERT(cond, msg)                                              \
  do {                                                                         \
    if (!(cond)) [[unlikely]] {                                                \
      std::fprintf(stderr, "BATCHER_ASSERT failed at %s:%d: %s\n  %s\n",       \
                   __FILE__, __LINE__, #cond, (msg));                          \
      std::abort();                                                            \
    }                                                                          \
  } while (0)

// Debug-only assertion for hot paths (deque operations, per-node bookkeeping).
#ifndef NDEBUG
#define BATCHER_DASSERT(cond, msg) BATCHER_ASSERT(cond, msg)
#else
#define BATCHER_DASSERT(cond, msg) ((void)0)
#endif

}  // namespace batcher
