// Basic configuration knobs and checked-assertion macros shared by every
// subsystem.  Nothing here depends on the runtime.
#pragma once

#include <cstddef>
#include <cstdio>
#include <cstdlib>

namespace batcher {

// Destructive interference distance.  std::hardware_destructive_interference_size
// is not reliably available across standard libraries, so pin the common x86-64
// value (two lines on recent Intel prefetchers is overkill for our purposes).
inline constexpr std::size_t kCacheLineSize = 64;

// BATCHER_ASSERT is active in all build types: scheduler invariants are cheap
// relative to the work they guard and this is a research codebase where a
// silent invariant violation is worse than a few percent of throughput.
#define BATCHER_ASSERT(cond, msg)                                              \
  do {                                                                         \
    if (!(cond)) [[unlikely]] {                                                \
      std::fprintf(stderr, "BATCHER_ASSERT failed at %s:%d: %s\n  %s\n",       \
                   __FILE__, __LINE__, #cond, (msg));                          \
      std::abort();                                                            \
    }                                                                          \
  } while (0)

// Debug-only assertion for hot paths (deque operations, per-node bookkeeping).
#ifndef NDEBUG
#define BATCHER_DASSERT(cond, msg) BATCHER_ASSERT(cond, msg)
#else
#define BATCHER_DASSERT(cond, msg) ((void)0)
#endif

}  // namespace batcher
