// Bump-pointer arena for node-based structures.
//
// Batched data structures run one batch at a time (Invariant 1), so they need
// no concurrent allocator and no safe-memory-reclamation scheme: nodes are
// bump-allocated and freed wholesale when the arena is reset or destroyed.
#pragma once

#include <cstddef>
#include <new>
#include <utility>
#include <vector>

namespace batcher {

class Arena {
 public:
  explicit Arena(std::size_t block_size = 1u << 20) : block_size_(block_size) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  Arena(Arena&& o) noexcept
      : block_size_(o.block_size_),
        blocks_(std::move(o.blocks_)),
        used_(o.used_),
        cap_(o.cap_) {
    o.blocks_.clear();
    o.used_ = o.cap_ = 0;
  }
  Arena& operator=(Arena&& o) noexcept {
    if (this != &o) {
      release();
      block_size_ = o.block_size_;
      blocks_ = std::move(o.blocks_);
      used_ = o.used_;
      cap_ = o.cap_;
      o.blocks_.clear();
      o.used_ = o.cap_ = 0;
    }
    return *this;
  }

  ~Arena() { release(); }

  // Raw allocation, 16-byte aligned.  Objects are NOT destructed by the
  // arena; only use for trivially-destructible node types.
  void* allocate(std::size_t bytes) {
    const std::size_t aligned = (bytes + 15) & ~std::size_t{15};
    if (used_ + aligned > cap_) {
      const std::size_t size = aligned > block_size_ ? aligned : block_size_;
      blocks_.push_back(static_cast<char*>(::operator new[](size)));
      used_ = 0;
      cap_ = size;
    }
    void* mem = blocks_.back() + used_;
    used_ += aligned;
    return mem;
  }

  template <typename T, typename... Args>
  T* create(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    return ::new (allocate(sizeof(T))) T{std::forward<Args>(args)...};
  }

  std::size_t bytes_reserved() const { return blocks_.size() * block_size_; }

 private:
  void release() {
    for (char* b : blocks_) ::operator delete[](b);
    blocks_.clear();
    used_ = cap_ = 0;
  }

  std::size_t block_size_;
  std::vector<char*> blocks_;
  std::size_t used_ = 0;
  std::size_t cap_ = 0;
};

}  // namespace batcher
