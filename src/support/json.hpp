// Minimal JSON emitter: enough to write trace exports and bench reports
// without a third-party dependency.  Produces compact, valid JSON; commas
// and nesting are tracked by a small state stack, keys/values assert basic
// well-formedness in debug builds.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "support/config.hpp"

namespace batcher::json {

class Writer {
 public:
  Writer() = default;

  Writer& begin_object() {
    comma();
    out_ += '{';
    stack_.push_back(State::kObjectFirst);
    return *this;
  }
  Writer& end_object() {
    BATCHER_DASSERT(top() == State::kObjectFirst || top() == State::kObject,
                    "end_object outside an object");
    stack_.pop_back();
    out_ += '}';
    return *this;
  }
  Writer& begin_array() {
    comma();
    out_ += '[';
    stack_.push_back(State::kArrayFirst);
    return *this;
  }
  Writer& end_array() {
    BATCHER_DASSERT(top() == State::kArrayFirst || top() == State::kArray,
                    "end_array outside an array");
    stack_.pop_back();
    out_ += ']';
    return *this;
  }

  Writer& key(std::string_view k) {
    BATCHER_DASSERT(top() == State::kObjectFirst || top() == State::kObject,
                    "key outside an object");
    comma();
    append_string(k);
    out_ += ':';
    stack_.push_back(State::kValue);
    return *this;
  }

  Writer& value(std::string_view s) {
    comma();
    append_string(s);
    return *this;
  }
  Writer& value(const char* s) { return value(std::string_view(s)); }
  Writer& value(bool b) {
    comma();
    out_ += b ? "true" : "false";
    return *this;
  }
  Writer& value(double d) {
    comma();
    char buf[32];
    if (d != d || d > 1.7e308 || d < -1.7e308) {
      out_ += "null";  // JSON has no NaN/Inf
    } else {
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      out_ += buf;
    }
    return *this;
  }
  Writer& value(std::uint64_t v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  Writer& value(std::int64_t v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  Writer& value(int v) { return value(static_cast<std::int64_t>(v)); }
  Writer& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }

  // Convenience: key + scalar value.
  template <typename V>
  Writer& kv(std::string_view k, V&& v) {
    key(k);
    return value(std::forward<V>(v));
  }

  const std::string& str() const {
    BATCHER_DASSERT(stack_.empty(), "unbalanced JSON document");
    return out_;
  }

 private:
  enum class State { kValue, kObjectFirst, kObject, kArrayFirst, kArray };

  State top() const {
    BATCHER_DASSERT(!stack_.empty(), "writer used outside any container");
    return stack_.back();
  }

  void comma() {
    if (stack_.empty()) return;  // the top-level document value
    switch (top()) {
      case State::kValue:
        stack_.pop_back();  // the pending value slot is being filled
        break;
      case State::kObjectFirst:
        stack_.back() = State::kObject;
        break;
      case State::kArrayFirst:
        stack_.back() = State::kArray;
        break;
      case State::kObject:
      case State::kArray:
        out_ += ',';
        break;
    }
  }

  void append_string(std::string_view s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\t': out_ += "\\t"; break;
        case '\r': out_ += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<State> stack_;
};

}  // namespace batcher::json
