// GlobalLock<T>: the classic coarse-grained baseline — wrap any sequential
// structure behind one mutex.  Every access serializes, which is exactly the
// Ω(n) behaviour the paper's introduction contrasts BATCHER against.
#pragma once

#include <mutex>
#include <utility>

namespace batcher::conc {

template <typename T>
class GlobalLock {
 public:
  template <typename... Args>
  explicit GlobalLock(Args&&... args) : inner_(std::forward<Args>(args)...) {}

  // Runs `fn(inner)` under the lock and returns its result.
  template <typename Fn>
  decltype(auto) with(Fn&& fn) {
    std::lock_guard<std::mutex> lock(mutex_);
    return fn(inner_);
  }

  // Unsynchronized access for setup/teardown.
  T& unsafe() { return inner_; }
  const T& unsafe() const { return inner_; }

 private:
  std::mutex mutex_;
  T inner_;
};

}  // namespace batcher::conc
