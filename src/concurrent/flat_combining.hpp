// Flat combining (Hendler, Incze, Shavit & Tzafrir, SPAA 2010).
//
// The paper treats flat combining as the degenerate case of implicit batching
// in which every batch executes *sequentially* on the combiner thread (§1,
// §7).  This implementation is the classic scheme: each thread publishes an
// operation record in a publication slot, then either acquires the combiner
// lock — becoming the combiner, applying every published record in one
// sequential sweep — or spins until its record is served.
//
// `Op` is the record type; `Applier` is a callable `void(Op*)` that applies a
// single record to the underlying sequential structure.  The combiner holds
// the lock, so the applier needs no synchronization of its own.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "support/backoff.hpp"
#include "support/config.hpp"
#include "support/padded.hpp"

namespace batcher::conc {

template <typename Op, typename Applier>
class FlatCombiner {
 public:
  // `slots` bounds the number of threads that may post concurrently; thread
  // `tid` must be in [0, slots).
  FlatCombiner(std::size_t slots, Applier applier)
      : slots_(slots), applier_(std::move(applier)) {}

  FlatCombiner(const FlatCombiner&) = delete;
  FlatCombiner& operator=(const FlatCombiner&) = delete;

  // Publishes `op` from thread `tid` and blocks until it has been applied
  // (possibly by this thread acting as the combiner).
  void apply(std::size_t tid, Op& op) {
    Slot& slot = slots_[tid];
    slot.op = &op;
    slot.ready.store(true, std::memory_order_release);

    Backoff backoff;
    while (slot.ready.load(std::memory_order_acquire)) {
      if (!lock_.load(std::memory_order_relaxed)) {
        bool expected = false;
        if (lock_.compare_exchange_strong(expected, true,
                                          std::memory_order_acquire)) {
          combine();
          lock_.store(false, std::memory_order_release);
          // Our own record was necessarily served by our sweep.
          break;
        }
      }
      backoff.pause();
    }
  }

  std::uint64_t combine_passes() const {
    return passes_.load(std::memory_order_relaxed);
  }
  std::uint64_t ops_combined() const {
    return combined_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(kCacheLineSize) Slot {
    std::atomic<bool> ready{false};
    Op* op = nullptr;
  };

  void combine() {
    std::uint64_t served = 0;
    for (auto& slot : slots_) {
      if (slot.ready.load(std::memory_order_acquire)) {
        applier_(slot.op);
        slot.ready.store(false, std::memory_order_release);
        ++served;
      }
    }
    passes_.fetch_add(1, std::memory_order_relaxed);
    combined_.fetch_add(served, std::memory_order_relaxed);
  }

  std::vector<Slot> slots_;
  Applier applier_;
  alignas(kCacheLineSize) std::atomic<bool> lock_{false};
  std::atomic<std::uint64_t> passes_{0};
  std::atomic<std::uint64_t> combined_{0};
};

}  // namespace batcher::conc
