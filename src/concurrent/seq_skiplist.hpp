// Sequential skip list — the paper's §7 baseline ("SEQ"): plain inserts with
// no concurrency control of any kind.  Also used as the reference model in
// property tests.
#pragma once

#include <cstdint>
#include <vector>

#include "support/arena.hpp"
#include "support/rng.hpp"

namespace batcher::conc {

class SeqSkipList {
 public:
  using Key = std::int64_t;

  explicit SeqSkipList(std::uint64_t seed = 0xdecafbadULL) : rng_(seed) {
    head_ = allocate(0, kMaxHeight);
    for (int l = 0; l < kMaxHeight; ++l) head_->next[l] = nullptr;
  }

  SeqSkipList(const SeqSkipList&) = delete;
  SeqSkipList& operator=(const SeqSkipList&) = delete;

  bool insert(Key key) {
    Node* preds[kMaxHeight];
    find_preds(key, preds);
    Node* hit = preds[0]->next[0];
    if (hit != nullptr && hit->key == key) return false;
    const int h = random_height();
    Node* node = allocate(key, h);
    if (h > height_) height_ = h;
    for (int l = 0; l < h; ++l) {
      node->next[l] = preds[l]->next[l];
      preds[l]->next[l] = node;
    }
    ++size_;
    return true;
  }

  bool contains(Key key) const {
    const Node* cur = head_;
    for (int l = height_ - 1; l >= 0; --l) {
      while (cur->next[l] != nullptr && cur->next[l]->key < key) {
        cur = cur->next[l];
      }
    }
    const Node* candidate = cur->next[0];
    return candidate != nullptr && candidate->key == key;
  }

  bool erase(Key key) {
    Node* preds[kMaxHeight];
    find_preds(key, preds);
    Node* hit = preds[0]->next[0];
    if (hit == nullptr || hit->key != key) return false;
    for (int l = 0; l < hit->height; ++l) {
      if (preds[l]->next[l] == hit) preds[l]->next[l] = hit->next[l];
    }
    while (height_ > 1 && head_->next[height_ - 1] == nullptr) --height_;
    --size_;
    return true;
  }

  std::size_t size() const { return size_; }

 private:
  static constexpr int kMaxHeight = 24;

  struct Node {
    Key key;
    int height;
    Node* next[1];  // flexible
  };

  Node* allocate(Key key, int height) {
    const std::size_t bytes =
        sizeof(Node) + sizeof(Node*) * static_cast<std::size_t>(height - 1);
    Node* n = static_cast<Node*>(arena_.allocate(bytes));
    n->key = key;
    n->height = height;
    return n;
  }

  int random_height() {
    const std::uint64_t bits = rng_.next();
    int h = 1;
    while (h < kMaxHeight && (bits >> (h - 1) & 1u)) ++h;
    return h;
  }

  void find_preds(Key key, Node** preds) {
    Node* cur = head_;
    for (int l = kMaxHeight - 1; l >= 0; --l) {
      if (l < height_) {
        while (cur->next[l] != nullptr && cur->next[l]->key < key) {
          cur = cur->next[l];
        }
      }
      preds[l] = cur;
    }
  }

  Node* head_;
  int height_ = 1;
  std::size_t size_ = 0;
  Xoshiro256 rng_;
  Arena arena_;
};

}  // namespace batcher::conc
