#include "concurrent/lazy_skiplist.hpp"

#include "support/backoff.hpp"

namespace batcher::conc {

LazySkipList::LazySkipList(std::uint64_t seed) : rng_(seed) {
  head_ = allocate(kMinKey, kMaxHeight);
  tail_ = allocate(kMaxKey, kMaxHeight);
  for (int l = 0; l < kMaxHeight; ++l) {
    head_->next[l].store(tail_, std::memory_order_relaxed);
  }
  head_->fully_linked.store(true, std::memory_order_relaxed);
  tail_->fully_linked.store(true, std::memory_order_relaxed);
}

LazySkipList::~LazySkipList() {
  for (Node* n : allocations_) delete n;
}

LazySkipList::Node* LazySkipList::allocate(Key key, int height) {
  Node* n = new Node(key, height);
  std::lock_guard<std::mutex> lock(alloc_mutex_);
  allocations_.push_back(n);
  return n;
}

int LazySkipList::random_height() {
  std::uint64_t bits;
  {
    std::lock_guard<std::mutex> lock(alloc_mutex_);
    bits = rng_.next();
  }
  int h = 1;
  while (h < kMaxHeight && (bits >> (h - 1) & 1u)) ++h;
  return h;
}

int LazySkipList::find(Key key, Node** preds, Node** succs) const {
  int found = -1;
  Node* pred = head_;
  for (int l = kMaxHeight - 1; l >= 0; --l) {
    Node* cur = pred->next[l].load(std::memory_order_acquire);
    while (cur->key < key) {
      pred = cur;
      cur = pred->next[l].load(std::memory_order_acquire);
    }
    if (found == -1 && cur->key == key) found = l;
    preds[l] = pred;
    succs[l] = cur;
  }
  return found;
}

bool LazySkipList::insert(Key key) {
  const int top = random_height();
  Node* preds[kMaxHeight];
  Node* succs[kMaxHeight];
  Backoff backoff;
  while (true) {
    const int found = find(key, preds, succs);
    if (found != -1) {
      Node* hit = succs[found];
      if (!hit->marked.load(std::memory_order_acquire)) {
        // Wait until the concurrent inserter finishes linking, then report
        // the key as already present.
        while (!hit->fully_linked.load(std::memory_order_acquire)) {
          cpu_relax();
        }
        return false;
      }
      // Key is logically deleted but not yet unlinked: retry.
      backoff.pause();
      continue;
    }

    // Lock all predecessors up to `top`, validating as we go.
    int highest_locked = -1;
    bool valid = true;
    for (int l = 0; valid && l < top; ++l) {
      Node* pred = preds[l];
      Node* succ = succs[l];
      pred->lock.lock();
      highest_locked = l;
      valid = !pred->marked.load(std::memory_order_acquire) &&
              !succ->marked.load(std::memory_order_acquire) &&
              pred->next[l].load(std::memory_order_acquire) == succ;
    }
    if (!valid) {
      for (int l = 0; l <= highest_locked; ++l) preds[l]->lock.unlock();
      backoff.pause();
      continue;
    }

    Node* node = allocate(key, top);
    for (int l = 0; l < top; ++l) {
      node->next[l].store(succs[l], std::memory_order_relaxed);
    }
    for (int l = 0; l < top; ++l) {
      preds[l]->next[l].store(node, std::memory_order_release);
    }
    node->fully_linked.store(true, std::memory_order_release);
    for (int l = 0; l <= highest_locked; ++l) preds[l]->lock.unlock();
    size_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
}

bool LazySkipList::contains(Key key) const {
  Node* preds[kMaxHeight];
  Node* succs[kMaxHeight];
  const int found = find(key, preds, succs);
  return found != -1 &&
         succs[found]->fully_linked.load(std::memory_order_acquire) &&
         !succs[found]->marked.load(std::memory_order_acquire);
}

bool LazySkipList::erase(Key key) {
  Node* victim = nullptr;
  bool is_marked = false;
  int top = -1;
  Node* preds[kMaxHeight];
  Node* succs[kMaxHeight];
  Backoff backoff;
  while (true) {
    const int found = find(key, preds, succs);
    if (found != -1) victim = succs[found];
    if (is_marked ||
        (found != -1 &&
         victim->fully_linked.load(std::memory_order_acquire) &&
         victim->top_level == found + 1 &&
         !victim->marked.load(std::memory_order_acquire))) {
      if (!is_marked) {
        top = victim->top_level;
        victim->lock.lock();
        if (victim->marked.load(std::memory_order_acquire)) {
          victim->lock.unlock();
          return false;  // someone else deleted it
        }
        victim->marked.store(true, std::memory_order_release);
        is_marked = true;
      }
      // Lock and validate predecessors, then unlink.
      int highest_locked = -1;
      bool valid = true;
      for (int l = 0; valid && l < top; ++l) {
        Node* pred = preds[l];
        pred->lock.lock();
        highest_locked = l;
        valid = !pred->marked.load(std::memory_order_acquire) &&
                pred->next[l].load(std::memory_order_acquire) == victim;
      }
      if (!valid) {
        for (int l = 0; l <= highest_locked; ++l) preds[l]->lock.unlock();
        backoff.pause();
        continue;
      }
      for (int l = top - 1; l >= 0; --l) {
        preds[l]->next[l].store(victim->next[l].load(std::memory_order_acquire),
                                std::memory_order_release);
      }
      victim->lock.unlock();
      for (int l = 0; l <= highest_locked; ++l) preds[l]->lock.unlock();
      size_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }
}

}  // namespace batcher::conc
