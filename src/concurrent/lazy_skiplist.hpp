// Lock-based concurrent skip list (the "lazy" optimistic algorithm of
// Herlihy, Lev, Luchangco & Shavit, as presented in The Art of Multiprocessor
// Programming).
//
// This is the kind of hand-crafted concurrent structure the paper contrasts
// implicit batching against: fine-grained per-node locks, optimistic
// traversal, validation, logical deletion marks.  Correct under arbitrary
// concurrency — and visibly more intricate than the lock-free-of-locks
// batched skip list in src/ds, which is the paper's point.
//
// Memory management: nodes are retired, never reclaimed while the structure
// lives (unlinked nodes stay readable for concurrent traversals); everything
// is freed at destruction.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <vector>

#include "support/rng.hpp"

namespace batcher::conc {

class LazySkipList {
 public:
  using Key = std::int64_t;

  explicit LazySkipList(std::uint64_t seed = 0xc0ffeeULL);
  ~LazySkipList();

  LazySkipList(const LazySkipList&) = delete;
  LazySkipList& operator=(const LazySkipList&) = delete;

  bool insert(Key key);
  bool contains(Key key) const;
  bool erase(Key key);

  std::size_t size_approx() const {
    return size_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr int kMaxHeight = 24;
  static constexpr Key kMinKey = std::numeric_limits<Key>::min();
  static constexpr Key kMaxKey = std::numeric_limits<Key>::max();

  struct Node {
    explicit Node(Key k, int h) : key(k), top_level(h) {
      for (auto& n : next) n.store(nullptr, std::memory_order_relaxed);
    }
    const Key key;
    const int top_level;  // levels [0, top_level) are linked
    std::atomic<Node*> next[kMaxHeight];
    std::recursive_mutex lock;  // a node can be pred at several levels
    std::atomic<bool> marked{false};
    std::atomic<bool> fully_linked{false};
  };

  // Fills preds/succs for all levels; returns the highest level at which
  // `key` was found, or -1.
  int find(Key key, Node** preds, Node** succs) const;

  Node* allocate(Key key, int height);
  int random_height();

  Node* head_;
  Node* tail_;
  std::atomic<std::size_t> size_{0};

  mutable std::mutex alloc_mutex_;
  std::vector<Node*> allocations_;
  Xoshiro256 rng_;  // guarded by alloc_mutex_
};

}  // namespace batcher::conc
