// Concurrent counter baselines for the §3 counter example.
//
//  * AtomicCounter — the "trivial concurrent counter" built on fetch-and-add.
//    The paper points out that mutually exclusive hardware RMWs serialize:
//    n increments take Ω(n) time regardless of P.
//  * MutexCounter — the even-more-trivial lock-based counter, for scale.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "support/config.hpp"

namespace batcher::conc {

class AtomicCounter {
 public:
  explicit AtomicCounter(std::int64_t initial = 0) : value_(initial) {}

  std::int64_t increment(std::int64_t delta) {
    return value_.fetch_add(delta, std::memory_order_relaxed) + delta;
  }

  std::int64_t read() const { return value_.load(std::memory_order_relaxed); }

 private:
  alignas(kCacheLineSize) std::atomic<std::int64_t> value_;
};

class MutexCounter {
 public:
  explicit MutexCounter(std::int64_t initial = 0) : value_(initial) {}

  std::int64_t increment(std::int64_t delta) {
    std::lock_guard<std::mutex> lock(mutex_);
    value_ += delta;
    return value_;
  }

  std::int64_t read() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return value_;
  }

 private:
  mutable std::mutex mutex_;
  std::int64_t value_;
};

}  // namespace batcher::conc
