#include "audit/fault_schedule.hpp"

#include <algorithm>
#include <sstream>

#include "support/backoff.hpp"
#include "support/rng.hpp"

namespace batcher::audit {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kThrowInBop: return "throw-in-bop";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kBadAlloc: return "bad-alloc";
    case FaultKind::kWedgeExternal: return "wedge-external";
  }
  return "?";
}

FaultSchedule::FaultSchedule(std::uint64_t seed)
    : FaultSchedule(seed, Options{}) {}

FaultSchedule::FaultSchedule(std::uint64_t seed, Options options)
    : options_(options), seed_(seed) {
  if (options_.external_tids > 0) {
    wedged_size_ = options_.external_tids;
    wedged_ = std::make_unique<std::atomic<bool>[]>(wedged_size_);
    for (std::size_t i = 0; i < wedged_size_; ++i) {
      wedged_[i].store(false, std::memory_order_relaxed);
    }
  }
  generate();
}

void FaultSchedule::generate() {
  actions_.clear();
  FaultKind menu[4];
  std::size_t menu_size = 0;
  if (options_.enable_throw_in_bop) menu[menu_size++] = FaultKind::kThrowInBop;
  if (options_.enable_delay) menu[menu_size++] = FaultKind::kDelay;
  if (options_.enable_bad_alloc) menu[menu_size++] = FaultKind::kBadAlloc;
  if (options_.external_tids > 0) menu[menu_size++] = FaultKind::kWedgeExternal;
  if (menu_size == 0 || options_.max_actions == 0) return;

  Xoshiro256 rng(seed_);
  const std::size_t count = 1 + rng.next_below(options_.max_actions);
  actions_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    FaultAction action;
    action.kind = menu[rng.next_below(menu_size)];
    action.at_event = 1 + rng.next_below(options_.horizon_events);
    switch (action.kind) {
      case FaultKind::kDelay:
        action.magnitude = 1 + rng.next_below(options_.max_delay_spins);
        break;
      case FaultKind::kWedgeExternal:
        action.magnitude = rng.next_below(options_.external_tids);
        break;
      default:
        action.magnitude = 0;
        break;
    }
    actions_.push_back(action);
  }
  std::stable_sort(actions_.begin(), actions_.end(),
                   [](const FaultAction& a, const FaultAction& b) {
                     return a.at_event < b.at_event;
                   });
}

void FaultSchedule::fire_action(const FaultAction& action) {
  switch (action.kind) {
    case FaultKind::kThrowInBop:
#if BATCHER_AUDIT
      rt::hooks::test_faults().throw_in_bop.store(1,
                                                  std::memory_order_relaxed);
#endif
      break;
    case FaultKind::kBadAlloc:
#if BATCHER_AUDIT
      rt::hooks::test_faults().throw_bad_alloc.store(
          1, std::memory_order_relaxed);
#endif
      break;
    case FaultKind::kDelay:
      // Hold the emitting thread at this protocol point.  The spin is
      // bounded (max_delay_spins), so it can stretch a race window but never
      // wedge the run.
      for (std::uint64_t i = 0; i < action.magnitude; ++i) cpu_relax();
      break;
    case FaultKind::kWedgeExternal:
      wedged_[action.magnitude].store(true, std::memory_order_release);
      break;
  }
  fired_.fetch_add(1, std::memory_order_relaxed);
}

void FaultSchedule::on_event(const rt::hooks::HookEvent&) {
  const std::uint64_t now = events_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Common case: schedule exhausted or next action still ahead — one load.
  std::size_t cur = cursor_.load(std::memory_order_acquire);
  while (cur < actions_.size() && actions_[cur].at_event <= now) {
    // Claim the action with a CAS so exactly one racing thread fires it.
    if (cursor_.compare_exchange_weak(cur, cur + 1,
                                      std::memory_order_acq_rel)) {
      fire_action(actions_[cur]);
      cur = cursor_.load(std::memory_order_acquire);
    }
    // On CAS failure `cur` was reloaded: another thread claimed it.
  }
}

void FaultSchedule::reseed(std::uint64_t seed) {
  seed_ = seed;
  events_.store(0, std::memory_order_relaxed);
  cursor_.store(0, std::memory_order_relaxed);
  fired_.store(0, std::memory_order_relaxed);
  for (std::size_t i = 0; i < wedged_size_; ++i) {
    wedged_[i].store(false, std::memory_order_relaxed);
  }
  generate();
}

std::string FaultSchedule::describe() const {
  std::ostringstream os;
  os << "FaultSchedule(seed=" << seed_ << "): " << actions_.size()
     << " action(s), " << fired_.load(std::memory_order_relaxed)
     << " fired of " << events_.load(std::memory_order_relaxed)
     << " events\n";
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    const FaultAction& a = actions_[i];
    os << "  #" << i << " @event " << a.at_event << " "
       << fault_kind_name(a.kind);
    if (a.kind == FaultKind::kDelay) {
      os << "(" << a.magnitude << " spins)";
    } else if (a.kind == FaultKind::kWedgeExternal) {
      os << "(tid " << a.magnitude << ")";
    }
    os << (i < cursor_.load(std::memory_order_relaxed) ? "  [fired]" : "")
       << "\n";
  }
  return os.str();
}

}  // namespace batcher::audit
