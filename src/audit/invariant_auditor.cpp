#include "audit/invariant_auditor.hpp"

#include <sstream>

namespace batcher::audit {

namespace hooks = rt::hooks;
using rt::TaskKind;

namespace {

const char* status_name(int s) {
  switch (s) {
    case 0: return "free";
    case 1: return "pending";
    case 2: return "executing";
    case 3: return "done";
    default: return "?";
  }
}

const char* kind_name(TaskKind k) {
  return k == TaskKind::Core ? "core" : "batch";
}

const char* point_name(hooks::HookPoint p) {
  using P = hooks::HookPoint;
  switch (p) {
    case P::kWorkerLoop: return "worker-loop";
    case P::kPush: return "push";
    case P::kPop: return "pop";
    case P::kStealAttempt: return "steal-attempt";
    case P::kAlternatingSteal: return "alternating-steal";
    case P::kTaskRun: return "task-run";
    case P::kBatchifyEnter: return "batchify-enter";
    case P::kBatchifyExit: return "batchify-exit";
    case P::kFlagCasWon: return "flag-cas-won";
    case P::kLaunchEnter: return "launch-enter";
    case P::kBatchCollected: return "batch-collected";
    case P::kLaunchExit: return "launch-exit";
    case P::kStatusFreeToPending: return "status free->pending";
    case P::kStatusPendingToExecuting: return "status pending->executing";
    case P::kStatusExecutingToDone: return "status executing->done";
    case P::kStatusDoneToFree: return "status done->free";
    case P::kAnnouncePush: return "announce-push";
    case P::kAnnounceClaim: return "announce-claim";
    case P::kLaunchChained: return "launch-chained";
    case P::kExternalSubmit: return "external-submit";
    case P::kExternalRevoke: return "external-revoke";
    case P::kExternalClaim: return "external-claim";
  }
  return "?";
}

}  // namespace

InvariantAuditor::InvariantAuditor(unsigned num_workers)
    : num_workers_(num_workers), workers_(num_workers) {}

InvariantAuditor::DomainState& InvariantAuditor::domain_state(
    const void* domain) {
  auto [it, inserted] = domains_.try_emplace(domain);
  if (inserted) {
    it->second.flag_holder = hooks::kNoWorker;
    it->second.last_launcher = hooks::kNoWorker;
    it->second.status.assign(workers_.size(), Status::Free);
  }
  return it->second;
}

InvariantAuditor::WorkerState& InvariantAuditor::worker_state(unsigned worker) {
  if (worker >= workers_.size()) {
    // Unknown worker id: grow defensively so the model stays total.
    workers_.resize(worker + 1);
    for (auto& [ptr, dom] : domains_) {
      (void)ptr;
      dom.status.resize(workers_.size(), Status::Free);
    }
  }
  return workers_[worker];
}

void InvariantAuditor::violate(const rt::hooks::HookEvent& event,
                               std::string invariant, std::string detail) {
  ++violation_count_;
  if (violations_.size() < kMaxRecorded) {
    std::ostringstream os;
    os << detail << " [at " << point_name(event.point) << ", context "
       << kind_name(event.context) << "]";
    violations_.push_back(
        Violation{std::move(invariant), event.worker, os.str()});
  }
}

void InvariantAuditor::check_status_edge(const rt::hooks::HookEvent& event,
                                         Status from, Status to) {
  DomainState& dom = domain_state(event.domain);
  worker_state(event.worker);  // ensure dom.status covers event.worker
  Status& cur = dom.status[event.worker];
  if (cur != from) {
    std::ostringstream os;
    os << "worker " << event.worker << " moved "
       << status_name(static_cast<int>(cur)) << "->"
       << status_name(static_cast<int>(to)) << " but the only legal source of "
       << status_name(static_cast<int>(to)) << " is "
       << status_name(static_cast<int>(from));
    violate(event, "Fig. 3 (trapped-worker status machine)", os.str());
  }
  cur = to;
  // The executing-side edges may only be flipped while the domain's (unique)
  // launcher is inside LAUNCHBATCH.
  if ((to == Status::Executing || to == Status::Done) &&
      dom.active_launches <= 0) {
    std::ostringstream os;
    os << "worker " << event.worker << "'s status flipped to "
       << status_name(static_cast<int>(to)) << " with no LAUNCHBATCH active";
    violate(event, "Invariant 1 (one active batch)", os.str());
  }
}

void InvariantAuditor::on_event(const rt::hooks::HookEvent& event) {
  using P = hooks::HookPoint;
  std::lock_guard<std::mutex> lock(mu_);
  ++events_;

  switch (event.point) {
    case P::kWorkerLoop:
      break;

    case P::kPush:
      // Spawns inherit the spawner's dag: a task's kind must match the dag
      // context it was pushed from (Invariant 3).
      if (event.deque != event.context) {
        std::ostringstream os;
        os << "worker " << event.worker << " pushed a " << kind_name(event.deque)
           << " task while in " << kind_name(event.context) << " context";
        violate(event, "Invariant 3 (core/batch deque separation)", os.str());
      }
      break;

    case P::kPop:
    case P::kStealAttempt: {
      WorkerState& ws = worker_state(event.worker);
      if (event.deque == TaskKind::Core) {
        if (ws.trapped) {
          std::ostringstream os;
          os << "worker " << event.worker
             << " is trapped (suspended op in domain " << ws.trapped_domain
             << ") but touched a core deque";
          violate(event, "Fig. 3 (trapped workers execute only batch work)",
                  os.str());
        }
        if (event.context == TaskKind::Batch) {
          std::ostringstream os;
          os << "worker " << event.worker
             << " touched a core deque from batch context";
          violate(event, "Invariant 3 (core/batch deque separation)",
                  os.str());
        }
      }
      break;
    }

    case P::kAlternatingSteal: {
      WorkerState& ws = worker_state(event.worker);
      const int kind = static_cast<int>(event.deque);
      if (ws.last_alternating == kind) {
        std::ostringstream os;
        os << "worker " << event.worker
           << " aimed two consecutive free-worker steals at "
           << kind_name(event.deque) << " deques";
        violate(event, "§4 (alternating-steal parity)", os.str());
      }
      ws.last_alternating = kind;
      break;
    }

    case P::kTaskRun: {
      WorkerState& ws = worker_state(event.worker);
      if (ws.trapped && event.deque == TaskKind::Core) {
        std::ostringstream os;
        os << "worker " << event.worker << " ran a core task while trapped";
        violate(event, "Fig. 3 (trapped workers execute only batch work)",
                os.str());
      }
      break;
    }

    case P::kBatchifyEnter: {
      WorkerState& ws = worker_state(event.worker);
      if (ws.trapped) {
        std::ostringstream os;
        os << "worker " << event.worker
           << " entered batchify while already trapped (domain "
           << ws.trapped_domain << ") — more than one suspended op";
        violate(event, "Fig. 3 (one suspended op per worker)", os.str());
      }
      ws.trapped = true;
      ws.trapped_domain = event.domain;
      break;
    }

    case P::kBatchifyExit: {
      WorkerState& ws = worker_state(event.worker);
      if (!ws.trapped) {
        std::ostringstream os;
        os << "worker " << event.worker
           << " exited batchify without a matching enter";
        violate(event, "Fig. 3 (one suspended op per worker)", os.str());
      }
      ws.trapped = false;
      ws.trapped_domain = nullptr;
      break;
    }

    case P::kFlagCasWon: {
      DomainState& dom = domain_state(event.domain);
      if (dom.flag_holder != hooks::kNoWorker) {
        std::ostringstream os;
        os << "worker " << event.worker
           << " won the batch flag while worker " << dom.flag_holder
           << " still holds it";
        violate(event, "Invariant 1 (one active batch)", os.str());
      }
      dom.flag_holder = event.worker;
      break;
    }

    case P::kLaunchEnter: {
      DomainState& dom = domain_state(event.domain);
      if (dom.flag_holder != event.worker) {
        std::ostringstream os;
        os << "worker " << event.worker
           << " entered LAUNCHBATCH without holding the batch flag (holder: ";
        if (dom.flag_holder == hooks::kNoWorker) {
          os << "none — the batch-flag CAS was skipped";
        } else {
          os << "worker " << dom.flag_holder;
        }
        os << ")";
        violate(event, "Invariant 1 (one active batch)", os.str());
      }
      ++dom.active_launches;
      if (dom.active_launches > 1) {
        std::ostringstream os;
        os << "worker " << event.worker << " entered LAUNCHBATCH while "
           << (dom.active_launches - 1) << " launch(es) already active";
        violate(event, "Invariant 1 (one active batch)", os.str());
      }
      break;
    }

    case P::kBatchCollected: {
      domain_state(event.domain);
      if (event.value > num_workers_) {
        std::ostringstream os;
        os << "LAUNCHBATCH on worker " << event.worker << " collected "
           << event.value << " ops but P = " << num_workers_;
        violate(event, "Invariant 2 (batch size at most P)", os.str());
      }
      break;
    }

    case P::kLaunchExit: {
      DomainState& dom = domain_state(event.domain);
      if (dom.active_launches != 1) {
        std::ostringstream os;
        os << "worker " << event.worker << " exited LAUNCHBATCH with "
           << dom.active_launches << " launches active (expected 1)";
        violate(event, "Invariant 1 (one active batch)", os.str());
      }
      dom.active_launches = dom.active_launches > 0 ? dom.active_launches - 1 : 0;
      // Remember who exited: a kLaunchChained event may re-establish this
      // worker as holder without an intervening kFlagCasWon (the real flag
      // never reopened between the two launches).
      dom.last_launcher = event.worker;
      dom.flag_holder = hooks::kNoWorker;
      break;
    }

    case P::kAnnouncePush: {
      DomainState& dom = domain_state(event.domain);
      worker_state(event.worker);  // ensure dom.status covers event.worker
      if (dom.status[event.worker] != Status::Pending) {
        std::ostringstream os;
        os << "worker " << event.worker << " announced a slot whose status is "
           << status_name(static_cast<int>(dom.status[event.worker]))
           << " (only pending slots may be announced)";
        violate(event, "§11 (announce-list protocol)", os.str());
      }
      break;
    }

    case P::kAnnounceClaim: {
      DomainState& dom = domain_state(event.domain);
      if (dom.flag_holder != event.worker) {
        std::ostringstream os;
        os << "worker " << event.worker
           << " claimed the announce list without holding the batch flag "
           << "(holder: ";
        if (dom.flag_holder == hooks::kNoWorker) {
          os << "none";
        } else {
          os << "worker " << dom.flag_holder;
        }
        os << ")";
        violate(event, "§11 (announce-list protocol)", os.str());
      }
      if (dom.active_launches != 1) {
        std::ostringstream os;
        os << "worker " << event.worker << " claimed the announce list with "
           << dom.active_launches << " launches active (expected 1)";
        violate(event, "§11 (announce-list protocol)", os.str());
      }
      break;
    }

    case P::kLaunchChained: {
      DomainState& dom = domain_state(event.domain);
      if (dom.flag_holder != hooks::kNoWorker) {
        std::ostringstream os;
        os << "worker " << event.worker
           << " chained a launch while worker " << dom.flag_holder
           << " is still inside one";
        violate(event, "Invariant 1 (one active batch)", os.str());
      }
      if (event.worker != dom.last_launcher) {
        std::ostringstream os;
        os << "worker " << event.worker
           << " chained a launch but the previous launch exited on ";
        if (dom.last_launcher == hooks::kNoWorker) {
          os << "no worker (no launch has exited yet)";
        } else {
          os << "worker " << dom.last_launcher;
        }
        violate(event, "§11 (announce-list protocol)", os.str());
      }
      if (event.value < 1) {
        std::ostringstream os;
        os << "worker " << event.worker << " chained a launch with chain index "
           << event.value << " (must be >= 1)";
        violate(event, "§11 (announce-list protocol)", os.str());
      }
      // The chained launch runs under the same (never reopened) flag hold.
      dom.flag_holder = event.worker;
      break;
    }

    case P::kStatusFreeToPending:
      check_status_edge(event, Status::Free, Status::Pending);
      break;
    case P::kStatusPendingToExecuting:
      check_status_edge(event, Status::Pending, Status::Executing);
      break;
    case P::kStatusExecutingToDone:
      check_status_edge(event, Status::Executing, Status::Done);
      break;
    case P::kStatusDoneToFree:
      check_status_edge(event, Status::Done, Status::Free);
      break;

    // ExternalDomain ingress events: the subject is an external (non-worker)
    // thread, so `event.worker` is kNoWorker for submit/revoke and a pump
    // worker for claim — neither maps onto the per-worker trapped-op model
    // above (the external slot array is indexed by tid, not worker id).
    // These points exist for the perturber and FaultSchedule to widen the
    // revoke race window; the auditor only counts them.
    case P::kExternalSubmit:
    case P::kExternalRevoke:
    case P::kExternalClaim:
      break;
  }
}

void InvariantAuditor::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  events_ = 0;
  violation_count_ = 0;
  violations_.clear();
  domains_.clear();
  workers_.assign(num_workers_, WorkerState{});
}

std::uint64_t InvariantAuditor::events_observed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::uint64_t InvariantAuditor::violation_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violation_count_;
}

std::vector<Violation> InvariantAuditor::violations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violations_;
}

std::string InvariantAuditor::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "InvariantAuditor: " << events_ << " events observed, "
     << violation_count_ << " violation(s)";
  if (violation_count_ > violations_.size()) {
    os << " (first " << violations_.size() << " recorded)";
  }
  os << "\n";
  for (const Violation& v : violations_) {
    os << "  [" << v.invariant << "] worker ";
    if (v.worker == hooks::kNoWorker) {
      os << "<none>";
    } else {
      os << v.worker;
    }
    os << ": " << v.detail << "\n";
  }
  return os.str();
}

std::string InvariantAuditor::state_dump() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "protocol state model after " << events_ << " event(s):\n";
  for (const auto& [domain, dom] : domains_) {
    os << "  domain " << domain << ": flag holder=";
    if (dom.flag_holder == hooks::kNoWorker) {
      os << "<none>";
    } else {
      os << "worker " << dom.flag_holder;
    }
    os << ", active launches=" << dom.active_launches << ", slots=[";
    for (std::size_t i = 0; i < dom.status.size(); ++i) {
      if (i != 0) os << " ";
      os << status_name(static_cast<int>(dom.status[i]));
    }
    os << "]\n";
  }
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    os << "  worker " << i << ": "
       << (workers_[i].trapped ? "trapped" : "free");
    if (workers_[i].trapped) {
      os << " (domain " << workers_[i].trapped_domain << ")";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace batcher::audit
