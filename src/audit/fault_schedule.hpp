// FaultSchedule — the seeded chaos engine (DESIGN.md §13).
//
// One seed deterministically expands into a small *schedule* of fault
// actions, each pinned to a process-wide hook-event count; installed as a
// ScheduleObserver the engine counts events and fires each action exactly
// once when its event number is crossed, on whichever thread crossed it.
// Sweeping seeds therefore sweeps distinct (when, what, where) fault
// combinations the way the SchedulePerturber sweeps interleavings, and a
// failing seed is a complete repro recipe: `describe()` prints the schedule
// the seed denotes.
//
// The action vocabulary (the schedule "grammar"):
//
//   throw-in-bop      arm hooks::test_faults().throw_in_bop — the next BOP
//                     throws InjectedFault, exercising exact-batch failure
//   delay(N)          spin N times in place inside the hook callback, holding
//                     the emitting thread at that protocol point (stretches
//                     races the way the perturber does, but at a seeded
//                     *global* event index rather than per-lane)
//   bad-alloc         arm test_faults().throw_bad_alloc — the next FramePool
//                     slab refill or global fallback throws std::bad_alloc
//   wedge-external(t) mark external tid t wedged; the chaos harness polls
//                     external_wedged(t) and silences that client thread (it
//                     stops submitting and never returns), so shutdown must
//                     drain around an absent participant
//
// The engine *arms* faults through the same TestFaults substrate the ad-hoc
// tests use, so one mechanism underlies both; the schedule replaces
// hand-placed arming calls with a seeded generator.  Armed-but-unfired
// countdowns can outlive a run (e.g. throw-in-bop scheduled after the last
// batch) — harnesses reset test_faults() between seeds, exactly like the
// existing fault matrix does.
//
// The observer is buildable in every config (like the rest of src/audit);
// without BATCHER_AUDIT no events flow and the arming actions are inert.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/schedule_hooks.hpp"

namespace batcher::audit {

enum class FaultKind : std::uint8_t {
  kThrowInBop,
  kDelay,
  kBadAlloc,
  kWedgeExternal,
};

const char* fault_kind_name(FaultKind kind);

struct FaultAction {
  FaultKind kind;
  std::uint64_t at_event;   // fires when the event count crosses this
  std::uint64_t magnitude;  // kDelay: spins; kWedgeExternal: tid; else 0
};

class FaultSchedule final : public rt::hooks::ScheduleObserver {
 public:
  struct Options {
    // Actions per schedule: uniform in [1, max_actions].
    std::size_t max_actions = 4;
    // Fire events are uniform in [1, horizon_events]; actions past the run's
    // actual event count simply never fire (fired_count() reports how many
    // did).
    std::uint64_t horizon_events = 20000;
    // kDelay magnitude: uniform in [1, max_delay_spins] cpu_relax spins.
    std::uint32_t max_delay_spins = 4096;
    // Enables kWedgeExternal with tids drawn from [0, external_tids); 0
    // removes it from the menu.
    std::size_t external_tids = 0;
    bool enable_throw_in_bop = true;
    bool enable_delay = true;
    bool enable_bad_alloc = true;
  };

  explicit FaultSchedule(std::uint64_t seed);
  FaultSchedule(std::uint64_t seed, Options options);

  void on_event(const rt::hooks::HookEvent& event) override;

  // Regenerate the schedule from a new seed and clear all firing state.
  // Call only while no scheduler can emit.
  void reseed(std::uint64_t seed);

  std::uint64_t seed() const { return seed_; }
  const std::vector<FaultAction>& actions() const { return actions_; }
  std::uint64_t events_observed() const {
    return events_.load(std::memory_order_relaxed);
  }
  std::size_t fired_count() const {
    return fired_.load(std::memory_order_relaxed);
  }
  // True once a kWedgeExternal action for `tid` has fired.
  bool external_wedged(std::size_t tid) const {
    return tid < wedged_size_ &&
           wedged_[tid].load(std::memory_order_acquire);
  }

  // One line per action — the human-readable form of what the seed denotes.
  std::string describe() const;

 private:
  void generate();
  void fire_action(const FaultAction& action);

  Options options_;
  std::uint64_t seed_;
  std::vector<FaultAction> actions_;  // sorted by at_event
  std::atomic<std::uint64_t> events_{0};
  std::atomic<std::size_t> cursor_{0};  // first action not yet claimed
  std::atomic<std::size_t> fired_{0};
  std::unique_ptr<std::atomic<bool>[]> wedged_;
  std::size_t wedged_size_ = 0;
};

}  // namespace batcher::audit
