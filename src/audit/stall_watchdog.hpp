// StallWatchdog — detects a wedged BATCHER protocol instead of letting a
// test (or a serving process) hang silently.
//
// The failure mode it exists for is the pre-recovery bug class of DESIGN.md
// §8: a batch flag that never reopens, or a trapped worker whose slot never
// flips to done, leaves every trapped worker spinning in batchify forever.
// Crucially, those spinning workers keep emitting schedule hooks (their
// batch-deque pops and steal attempts), so the stall is visible as *events
// flowing while the flag stays held / the worker stays trapped*.  The
// watchdog therefore measures budgets in observed events — deterministic
// and replayable, like everything else in src/audit — with an optional
// wall-clock budget for belt and braces.
//
// A totally silent deadlock (every thread parked, no events at all) cannot
// trigger an event-driven observer; call check_now() from a supervising
// thread to evaluate the wall-clock budgets on demand in that case.
//
// When a stall is flagged the report embeds the InvariantAuditor's protocol
// state model (if one is attached), naming the wedged domain's flag holder
// and slot statuses and every trapped worker — the diagnostic one would
// otherwise reconstruct by hand from a hung core dump.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "audit/invariant_auditor.hpp"
#include "runtime/schedule_hooks.hpp"

namespace batcher::audit {

struct StallReport {
  const void* domain;          // wedged domain; nullptr for a trapped-worker stall
  unsigned worker;             // flag holder / trapped worker
  std::uint64_t events_elapsed;
  std::string what;            // human-readable description
  std::string model_dump;      // auditor state at detection (if attached)
};

class StallWatchdog final : public rt::hooks::ScheduleObserver {
 public:
  struct Options {
    // Events observed (process-wide) while one batch flag stays held before
    // the domain is flagged as stalled.  A healthy launch holds the flag for
    // O(P) of its own events plus the trapped workers' spin events; the
    // default is far above anything a live launch produces.
    std::uint64_t flag_hold_event_budget = 1u << 20;
    // Events observed while one worker stays trapped on the same op.
    std::uint64_t trap_event_budget = 1u << 21;
    // Wall-clock budget for the same conditions; 0 disables the clock check.
    std::uint64_t wall_budget_ms = 0;
  };

  explicit StallWatchdog(unsigned num_workers);
  StallWatchdog(unsigned num_workers, Options options,
                const InvariantAuditor* model = nullptr);

  void on_event(const rt::hooks::HookEvent& event) override;

  // Evaluates the wall-clock budgets immediately (from any thread) — the
  // escape hatch for fully silent deadlocks where no events flow.  Wire it
  // into ExternalDomain::Options::stall_probe so the threads a wedged pump
  // blocks are the ones that detect the wedge.
  void check_now();

  // Escalation seam (DESIGN.md §13): each newly flagged stall invokes the
  // handler exactly once, *outside* the watchdog's lock and on whichever
  // thread detected it (an emitting worker inside on_event, or a check_now
  // caller).  The intended handler quarantines the wedged domain —
  // ExternalDomain::quarantine fails its records through legal edges — so
  // the handler may emit hooks and re-enter this watchdog freely.  Install
  // before events flow, or from a quiesced point; pass nullptr to clear.
  using EscalationHandler = std::function<void(const StallReport&)>;
  void set_escalation_handler(EscalationHandler handler);

  // Forget all tracked state and reports (e.g. between sweep seeds).  Call
  // only while no scheduler can emit.
  void reset();

  bool stalled() const;
  std::uint64_t stall_count() const;
  std::vector<StallReport> reports() const;
  std::string report() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct DomainWatch {
    unsigned holder = rt::hooks::kNoWorker;
    std::uint64_t acquired_at_event = 0;
    Clock::time_point acquired_at{};
    bool flagged = false;
  };

  struct TrapWatch {
    bool trapped = false;
    const void* domain = nullptr;
    std::uint64_t since_event = 0;
    Clock::time_point since{};
    bool flagged = false;
  };

  static constexpr std::size_t kMaxReports = 32;
  // Full budget scans run every kScanPeriod events; detection latency is
  // coarse anyway (budgets are large) and this keeps the hot path to one
  // atomic increment for the non-batching event majority.
  static constexpr std::uint64_t kScanPeriod = 64;

  void flag(const void* domain, unsigned worker, std::uint64_t elapsed,
            std::string what);
  void scan(std::uint64_t now_events, Clock::time_point now_clock);
  // Moves out the stalls flagged since the last drain; mu_ must be held.
  std::vector<StallReport> take_pending_escalations();
  // Runs the handler on each report; call with mu_ released.
  void dispatch_escalations(std::vector<StallReport> pending);

  const Options options_;
  const InvariantAuditor* const model_;  // optional, not owned
  std::atomic<std::uint64_t> events_{0};
  std::atomic<std::uint64_t> stall_count_{0};
  mutable std::mutex mu_;
  std::unordered_map<const void*, DomainWatch> domains_;
  std::vector<TrapWatch> traps_;
  std::vector<StallReport> reports_;
  EscalationHandler handler_;
  std::vector<StallReport> pending_escalations_;
};

}  // namespace batcher::audit
