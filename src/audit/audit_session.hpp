// One-stop harness for audited, seed-perturbed runs: owns an
// InvariantAuditor, a StallWatchdog, and a SchedulePerturber, forwards every
// hook event to all three (audit first, so the model records the event
// before the watchdog consults it and the schedule is shaken), and
// installs/uninstalls itself as the process-wide observer.
//
// Typical schedule sweep:
//
//   AuditSession session(P, /*seed=*/0);
//   session.install();
//   for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
//     session.reseed(seed);
//     { rt::Scheduler sched(P); ... run the scenario ... }  // sched destroyed
//     ASSERT_TRUE(session.auditor().clean()) << session.auditor().report();
//     ASSERT_FALSE(session.watchdog().stalled()) << session.watchdog().report();
//   }
//   session.uninstall();
//
// reseed() must only run while no scheduler can emit (e.g. after the
// scenario's Scheduler has been destroyed, as above).
#pragma once

#include <cstdint>

#include "audit/invariant_auditor.hpp"
#include "audit/schedule_perturber.hpp"
#include "audit/stall_watchdog.hpp"
#include "runtime/schedule_hooks.hpp"

namespace batcher::audit {

class AuditSession final : public rt::hooks::ScheduleObserver {
 public:
  AuditSession(unsigned num_workers, std::uint64_t seed,
               SchedulePerturber::Options options = {},
               StallWatchdog::Options watchdog_options = {})
      : auditor_(num_workers),
        watchdog_(num_workers, watchdog_options, &auditor_),
        perturber_(num_workers, seed, options) {}

  ~AuditSession() { uninstall(); }

  AuditSession(const AuditSession&) = delete;
  AuditSession& operator=(const AuditSession&) = delete;

  void install() {
    rt::hooks::install_observer(this);
    installed_ = true;
  }

  void uninstall() {
    if (installed_) rt::hooks::install_observer(nullptr);
    installed_ = false;
  }

  void reseed(std::uint64_t seed) {
    auditor_.reset();
    watchdog_.reset();
    perturber_.reseed(seed);
  }

  void on_event(const rt::hooks::HookEvent& event) override {
    auditor_.on_event(event);
    watchdog_.on_event(event);
    perturber_.on_event(event);
  }

  InvariantAuditor& auditor() { return auditor_; }
  StallWatchdog& watchdog() { return watchdog_; }
  SchedulePerturber& perturber() { return perturber_; }

 private:
  InvariantAuditor auditor_;
  StallWatchdog watchdog_;
  SchedulePerturber perturber_;
  bool installed_ = false;
};

}  // namespace batcher::audit
