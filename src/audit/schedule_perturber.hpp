// Seeded, deterministic schedule perturbation.
//
// Installed as a hook observer, the perturber injects pauses and yields at
// schedule hook points so a stress run explores an interleaving far from the
// hardware's default.  Every decision is a pure function of
// (seed, lane, event index) — a lane is the emitting thread: worker i uses
// lane i, non-worker threads share lane P — so the decision *sequence* each
// thread experiences is reproducible from the seed alone: replaying a
// failing seed replays the exact per-thread decision stream regardless of
// how the OS interleaves the threads.  Sweeping seeds therefore sweeps
// distinct schedules, and a failing seed is a complete repro recipe.
//
// Decisions (recorded per lane when tracing is on):
//   0 = no perturbation
//   1 = std::this_thread::yield()
//   2 = bounded cpu_relax spin
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "runtime/schedule_hooks.hpp"
#include "support/config.hpp"

namespace batcher::audit {

class SchedulePerturber final : public rt::hooks::ScheduleObserver {
 public:
  struct Options {
    std::uint32_t yield_one_in = 64;  // P(yield) = 1/yield_one_in
    std::uint32_t pause_one_in = 8;   // P(spin)  = 1/pause_one_in (if no yield)
    std::uint32_t max_pause_spins = 64;
    bool record_trace = true;
    std::size_t max_trace_len = 1 << 14;  // per lane
  };

  // `num_workers` sizes the lanes; lane `num_workers` serves non-worker
  // threads (synthetic streams, ExternalDomain publishers).
  SchedulePerturber(unsigned num_workers, std::uint64_t seed, Options options);
  SchedulePerturber(unsigned num_workers, std::uint64_t seed);  // default opts

  void on_event(const rt::hooks::HookEvent& event) override;

  // Restart the decision streams from a new seed.  Call only while no
  // scheduler can emit.
  void reseed(std::uint64_t seed);
  std::uint64_t seed() const { return seed_; }

  // The decision a given lane takes at its index-th event: the replay
  // contract is decision_at(seed, lane, index) == the decision taken live.
  std::uint8_t decision_at(std::uint64_t seed, unsigned lane,
                           std::uint64_t index) const;

  // Recorded decision stream of one lane (valid after emitting threads quiesce).
  const std::vector<std::uint8_t>& trace(unsigned lane) const;
  std::uint64_t events_perturbed(unsigned lane) const;

  // Order-insensitive digest of all lanes' decision streams: two runs of the
  // same per-lane schedules produce equal fingerprints.
  std::uint64_t trace_fingerprint() const;

 private:
  struct alignas(kCacheLineSize) Lane {
    std::uint64_t count = 0;             // written only by the owning thread
    std::vector<std::uint8_t> decisions;
  };

  unsigned lane_for_caller() const;
  void perturb(Lane& lane);

  std::uint64_t seed_;
  Options options_;
  std::vector<Lane> lanes_;
  std::mutex external_mu_;  // serializes the shared non-worker lane
};

}  // namespace batcher::audit
