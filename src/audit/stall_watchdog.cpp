#include "audit/stall_watchdog.hpp"

#include <sstream>

namespace batcher::audit {

namespace hooks = rt::hooks;

StallWatchdog::StallWatchdog(unsigned num_workers)
    : StallWatchdog(num_workers, Options{}) {}

StallWatchdog::StallWatchdog(unsigned num_workers, Options options,
                             const InvariantAuditor* model)
    : options_(options), model_(model), traps_(num_workers) {}

void StallWatchdog::flag(const void* domain, unsigned worker,
                         std::uint64_t elapsed, std::string what) {
  // mu_ is held by the caller.
  stall_count_.fetch_add(1, std::memory_order_relaxed);
  StallReport report;
  report.domain = domain;
  report.worker = worker;
  report.events_elapsed = elapsed;
  report.what = std::move(what);
  if (model_ != nullptr) report.model_dump = model_->state_dump();
  // Escalation is never capped: even past kMaxReports a wedged domain must
  // still reach its handler.
  if (handler_) pending_escalations_.push_back(report);
  if (reports_.size() >= kMaxReports) return;
  reports_.push_back(std::move(report));
}

std::vector<StallReport> StallWatchdog::take_pending_escalations() {
  // mu_ is held by the caller.
  std::vector<StallReport> pending;
  pending.swap(pending_escalations_);
  return pending;
}

void StallWatchdog::dispatch_escalations(std::vector<StallReport> pending) {
  // mu_ is released: the handler typically quarantines a domain, which walks
  // status edges and emits hooks that re-enter on_event on this very thread.
  // handler_ is written only from quiesced points (see header), so the
  // unlocked reads here do not race an install.
  for (const StallReport& report : pending) handler_(report);
}

void StallWatchdog::set_escalation_handler(EscalationHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  handler_ = std::move(handler);
}

void StallWatchdog::scan(std::uint64_t now_events,
                         Clock::time_point now_clock) {
  // mu_ is held by the caller.  Event numbers are taken from the atomic
  // counter *before* the mutex, so a watch started by a concurrent thread
  // can carry a number slightly ahead of this scan's — saturate instead of
  // underflowing.
  auto elapsed_since = [now_events](std::uint64_t since) {
    return now_events > since ? now_events - since : 0;
  };
  const bool use_clock = options_.wall_budget_ms != 0;
  const auto wall_budget = std::chrono::milliseconds(options_.wall_budget_ms);
  for (auto& [domain, dw] : domains_) {
    if (dw.holder == hooks::kNoWorker || dw.flagged) continue;
    const std::uint64_t elapsed = elapsed_since(dw.acquired_at_event);
    const bool over_events = elapsed >= options_.flag_hold_event_budget;
    const bool over_clock =
        use_clock && (now_clock - dw.acquired_at) >= wall_budget;
    if (over_events || over_clock) {
      dw.flagged = true;
      std::ostringstream os;
      os << "batch flag of domain " << domain << " held by worker "
         << dw.holder << " for " << elapsed << " events"
         << (over_clock ? " (wall budget also exceeded)" : "")
         << " — LAUNCHBATCH appears stuck; trapped workers cannot resume";
      flag(domain, dw.holder, elapsed, os.str());
    }
  }
  for (std::size_t w = 0; w < traps_.size(); ++w) {
    TrapWatch& tw = traps_[w];
    if (!tw.trapped || tw.flagged) continue;
    const std::uint64_t elapsed = elapsed_since(tw.since_event);
    const bool over_events = elapsed >= options_.trap_event_budget;
    const bool over_clock = use_clock && (now_clock - tw.since) >= wall_budget;
    if (over_events || over_clock) {
      tw.flagged = true;
      std::ostringstream os;
      os << "worker " << w << " trapped in domain " << tw.domain << " for "
         << elapsed << " events"
         << (over_clock ? " (wall budget also exceeded)" : "")
         << " — its operation never completed";
      flag(tw.domain, static_cast<unsigned>(w), elapsed, os.str());
    }
  }
}

void StallWatchdog::on_event(const rt::hooks::HookEvent& event) {
  using P = hooks::HookPoint;
  const std::uint64_t now =
      events_.fetch_add(1, std::memory_order_relaxed) + 1;

  const bool tracks_state =
      event.point == P::kFlagCasWon || event.point == P::kLaunchExit ||
      event.point == P::kLaunchChained || event.point == P::kBatchifyEnter ||
      event.point == P::kBatchifyExit;
  if (!tracks_state && now % kScanPeriod != 0) return;

  std::vector<StallReport> pending;
  {
  std::lock_guard<std::mutex> lock(mu_);
  const Clock::time_point now_clock =
      options_.wall_budget_ms != 0 ? Clock::now() : Clock::time_point{};
  switch (event.point) {
    case P::kFlagCasWon: {
      DomainWatch& dw = domains_[event.domain];
      dw.holder = event.worker;
      dw.acquired_at_event = now;
      dw.acquired_at = now_clock;
      dw.flagged = false;
      break;
    }
    case P::kLaunchExit: {
      DomainWatch& dw = domains_[event.domain];
      dw.holder = hooks::kNoWorker;
      dw.flagged = false;
      break;
    }
    case P::kLaunchChained: {
      // A chained launch keeps the flag held across launches; restart the
      // hold budget so a healthy chain of short launches is not mistaken for
      // one stuck LAUNCHBATCH.
      DomainWatch& dw = domains_[event.domain];
      dw.holder = event.worker;
      dw.acquired_at_event = now;
      dw.acquired_at = now_clock;
      dw.flagged = false;
      break;
    }
    case P::kBatchifyEnter: {
      if (event.worker >= traps_.size()) traps_.resize(event.worker + 1);
      TrapWatch& tw = traps_[event.worker];
      tw.trapped = true;
      tw.domain = event.domain;
      tw.since_event = now;
      tw.since = now_clock;
      tw.flagged = false;
      break;
    }
    case P::kBatchifyExit: {
      if (event.worker < traps_.size()) {
        traps_[event.worker].trapped = false;
        traps_[event.worker].flagged = false;
      }
      break;
    }
    default:
      break;
  }
  scan(now, now_clock);
  pending = take_pending_escalations();
  }
  if (!pending.empty()) dispatch_escalations(std::move(pending));
}

void StallWatchdog::check_now() {
  std::vector<StallReport> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    scan(events_.load(std::memory_order_relaxed), Clock::now());
    pending = take_pending_escalations();
  }
  if (!pending.empty()) dispatch_escalations(std::move(pending));
}

void StallWatchdog::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.store(0, std::memory_order_relaxed);
  stall_count_.store(0, std::memory_order_relaxed);
  domains_.clear();
  for (auto& tw : traps_) tw = TrapWatch{};
  reports_.clear();
  pending_escalations_.clear();
}

bool StallWatchdog::stalled() const {
  return stall_count_.load(std::memory_order_relaxed) != 0;
}

std::uint64_t StallWatchdog::stall_count() const {
  return stall_count_.load(std::memory_order_relaxed);
}

std::vector<StallReport> StallWatchdog::reports() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reports_;
}

std::string StallWatchdog::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "StallWatchdog: " << events_.load(std::memory_order_relaxed)
     << " events observed, " << stall_count_.load(std::memory_order_relaxed)
     << " stall(s) flagged\n";
  for (const StallReport& r : reports_) {
    os << "  [stall] " << r.what << "\n";
    if (!r.model_dump.empty()) {
      std::istringstream lines(r.model_dump);
      std::string line;
      while (std::getline(lines, line)) os << "    " << line << "\n";
    }
  }
  return os.str();
}

}  // namespace batcher::audit
