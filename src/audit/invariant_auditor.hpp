// Runtime invariant auditor for the BATCHER scheduler.
//
// Consumes the schedule-hook event stream (runtime/schedule_hooks.hpp) and
// maintains an exact model of the protocol state: per-domain batch-flag
// holder and active-launch nesting, per-(domain, worker) operation status,
// per-worker trapped/free state and alternating-steal parity.  Every event is
// checked against the paper's rules:
//
//   Invariant 1  at most one active batch per domain (flag protocol +
//                LAUNCHBATCH nesting);
//   Invariant 2  a batch contains at most P operations;
//   Invariant 3  dag/deque separation — batch-context workers and trapped
//                workers never touch core deques, and tasks are pushed from
//                the dag context that matches their kind;
//   Fig. 3       the trapped-worker status machine advances strictly
//                free -> pending -> executing -> done -> free, with the
//                pending/done edges owned by the trapped worker and the
//                executing edges owned by the (unique) launcher;
//   §4           a free worker's steal attempts alternate strictly between
//                core and batch deques;
//   §11          the announce-list protocol (DESIGN.md §11): a worker only
//                announces a slot it holds pending, the announce list is
//                claimed by the flag holder from inside a launch, and a
//                chained launch is started only by the worker whose launch
//                just exited under the still-held flag.
//
// The auditor is a plain state machine over events: it can audit a live
// scheduler (installed as the hook observer, mutex-serialized) or a synthetic
// event stream in any build type, which is how tests prove that broken
// schedules are caught.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/schedule_hooks.hpp"

namespace batcher::audit {

struct Violation {
  std::string invariant;  // e.g. "Invariant 1 (one active batch)"
  unsigned worker;        // subject worker, hooks::kNoWorker if none
  std::string detail;     // offending transition, human-readable
};

class InvariantAuditor final : public rt::hooks::ScheduleObserver {
 public:
  explicit InvariantAuditor(unsigned num_workers);

  void on_event(const rt::hooks::HookEvent& event) override;

  // Forgets all model state and recorded violations (e.g. between seeds of a
  // schedule sweep).  Call only while no scheduler can emit.
  void reset();

  std::uint64_t events_observed() const;
  std::uint64_t violation_count() const;
  std::vector<Violation> violations() const;  // first kMaxRecorded kept
  bool clean() const { return violation_count() == 0; }

  // Multi-line report naming, for every violation, the invariant, the worker
  // and the offending transition.
  std::string report() const;

  // Snapshot of the protocol state model — per-domain flag holder, launch
  // nesting, and slot statuses; per-worker trapped state.  The StallWatchdog
  // embeds this in its diagnostics so a flagged stall names exactly which
  // domain is wedged and which workers are waiting on it.
  std::string state_dump() const;

 private:
  // Mirror of batcher::OpStatus, tracked per (domain, worker).
  enum class Status : std::uint8_t { Free, Pending, Executing, Done };

  struct WorkerState {
    bool trapped = false;
    const void* trapped_domain = nullptr;
    int last_alternating = -1;  // -1 = no attempt seen yet, else TaskKind
  };

  struct DomainState {
    unsigned flag_holder;
    int active_launches = 0;
    // The worker whose launch most recently exited — the only worker a
    // kLaunchChained event may legally come from (the flag never reopened
    // between its exit and the chained launch).
    unsigned last_launcher;
    std::vector<Status> status;  // per worker
  };

  static constexpr std::size_t kMaxRecorded = 128;

  DomainState& domain_state(const void* domain);
  WorkerState& worker_state(unsigned worker);
  void check_status_edge(const rt::hooks::HookEvent& event, Status from,
                         Status to);
  void violate(const rt::hooks::HookEvent& event, std::string invariant,
               std::string detail);

  const unsigned num_workers_;
  mutable std::mutex mu_;
  std::uint64_t events_ = 0;
  std::uint64_t violation_count_ = 0;
  std::vector<WorkerState> workers_;
  std::unordered_map<const void*, DomainState> domains_;
  std::vector<Violation> violations_;
};

}  // namespace batcher::audit
