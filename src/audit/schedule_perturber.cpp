#include "audit/schedule_perturber.hpp"

#include <thread>

#include "runtime/worker.hpp"
#include "support/backoff.hpp"

namespace batcher::audit {

namespace {

// splitmix64 finalizer: the per-event decision hash.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

SchedulePerturber::SchedulePerturber(unsigned num_workers, std::uint64_t seed,
                                     Options options)
    : seed_(seed), options_(options), lanes_(num_workers + 1) {}

SchedulePerturber::SchedulePerturber(unsigned num_workers, std::uint64_t seed)
    : SchedulePerturber(num_workers, seed, Options{}) {}

unsigned SchedulePerturber::lane_for_caller() const {
  const rt::Worker* w = rt::Worker::current();
  if (w == nullptr) return static_cast<unsigned>(lanes_.size() - 1);
  const unsigned id = w->id();
  return id < lanes_.size() - 1 ? id
                                : static_cast<unsigned>(lanes_.size() - 1);
}

std::uint8_t SchedulePerturber::decision_at(std::uint64_t seed, unsigned lane,
                                            std::uint64_t index) const {
  const std::uint64_t r = mix64(
      seed + 0x9e3779b97f4a7c15ULL * (lane + 1) + 0xd1b54a32d192ed03ULL * index);
  if (options_.yield_one_in != 0 && r % options_.yield_one_in == 0) return 1;
  if (options_.pause_one_in != 0 && (r >> 32) % options_.pause_one_in == 0) {
    return 2;
  }
  return 0;
}

void SchedulePerturber::perturb(Lane& lane) {
  const unsigned lane_index = static_cast<unsigned>(&lane - lanes_.data());
  const std::uint64_t index = lane.count++;
  const std::uint8_t decision = decision_at(seed_, lane_index, index);
  if (options_.record_trace && lane.decisions.size() < options_.max_trace_len) {
    lane.decisions.push_back(decision);
  }
  switch (decision) {
    case 1:
      std::this_thread::yield();
      break;
    case 2: {
      // Spin count derived from the same hash so replays spin identically.
      const std::uint64_t r =
          mix64(seed_ ^ (index + 1) * 0x2545f4914f6cdd1dULL ^ lane_index);
      const std::uint64_t spins = 1 + r % options_.max_pause_spins;
      for (std::uint64_t i = 0; i < spins; ++i) cpu_relax();
      break;
    }
    default:
      break;
  }
}

void SchedulePerturber::on_event(const rt::hooks::HookEvent& /*event*/) {
  const unsigned lane = lane_for_caller();
  if (lane + 1 == lanes_.size()) {
    // Non-worker threads share the last lane; serialize them.
    std::lock_guard<std::mutex> lock(external_mu_);
    perturb(lanes_[lane]);
  } else {
    // Worker lanes are single-writer: only worker `lane`'s thread gets here.
    perturb(lanes_[lane]);
  }
}

void SchedulePerturber::reseed(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(external_mu_);
  seed_ = seed;
  for (Lane& lane : lanes_) {
    lane.count = 0;
    lane.decisions.clear();
  }
}

const std::vector<std::uint8_t>& SchedulePerturber::trace(unsigned lane) const {
  return lanes_[lane].decisions;
}

std::uint64_t SchedulePerturber::events_perturbed(unsigned lane) const {
  return lanes_[lane].count;
}

std::uint64_t SchedulePerturber::trace_fingerprint() const {
  // Per-lane FNV-1a, combined order-insensitively across lanes (each lane's
  // hash is salted by its index, so swapping lanes still changes the digest).
  std::uint64_t combined = 0;
  for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
    std::uint64_t h = 0xcbf29ce484222325ULL ^ (lane * 0x100000001b3ULL);
    for (std::uint8_t d : lanes_[lane].decisions) {
      h = (h ^ d) * 0x100000001b3ULL;
    }
    h = (h ^ lanes_[lane].count) * 0x100000001b3ULL;
    combined += mix64(h + lane);
  }
  return combined;
}

}  // namespace batcher::audit
