// Per-worker state and the scheduling loops.
//
// A worker owns two Chase–Lev deques (core and batch — Invariant 3), a
// deterministic RNG for victim selection, and a steal-attempt counter that
// drives the paper's alternating-steal policy: the k-th steal attempt of a
// *free* worker targets a random victim's core deque when k is even and its
// batch deque when k is odd (§4).
#pragma once

#include <atomic>
#include <cstdint>

#include "runtime/deque.hpp"
#include "runtime/frame_pool.hpp"
#include "runtime/schedule_hooks.hpp"
#include "runtime/stats.hpp"
#include "runtime/task.hpp"
#include "support/config.hpp"
#include "support/rng.hpp"

namespace batcher::rt {

class Scheduler;

class alignas(kCacheLineSize) Worker {
 public:
  Worker(Scheduler* scheduler, unsigned id, std::uint64_t seed)
      : sched_(scheduler), id_(id), rng_(seed), frame_pool_(&stats_, id) {}

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  unsigned id() const { return id_; }
  Scheduler* scheduler() const { return sched_; }

  // The dag the currently-assigned node belongs to.  Spawns inherit it, so
  // core tasks push to core deques and batch tasks to batch deques.
  TaskKind current_kind() const { return kind_; }

  // Owner-side deque operations.
  void push(Task* task) {
    hooks::emit({hooks::HookPoint::kPush, id_, task->kind(), kind_});
    deques_[static_cast<int>(task->kind())].push(task);
  }
  Task* pop(TaskKind kind) {
    Task* task = deques_[static_cast<int>(kind)].pop();
    hooks::emit({hooks::HookPoint::kPop, id_, kind, kind_, nullptr,
                 task != nullptr ? 1u : 0u});
    return task;
  }

  WorkDeque& deque(TaskKind kind) { return deques_[static_cast<int>(kind)]; }
  const WorkDeque& deque(TaskKind kind) const {
    return deques_[static_cast<int>(kind)];
  }

  // Executes one task frame, temporarily switching the worker's kind to the
  // task's dag.  Restores the previous kind afterwards, so a trapped worker
  // that helps with batch work returns to its suspended core context.
  void run_task(Task* task);

  // Blocks (helping) until the join is satisfied.  In core context the worker
  // behaves as a free worker: it drains its own deque for the waited dag and
  // otherwise steals with the alternating policy.  In batch context it only
  // touches batch deques, as the paper's rules require.
  void wait(JoinCounter& join);

  // One scheduling attempt of a *trapped* worker (used by batchify): pop own
  // batch deque, else steal from a random victim's batch deque.  Runs the
  // task if one was found.  Returns true if any task was executed.
  bool help_batch_once();

  // Steal helpers.  Every call counts as one steal attempt in the stats.
  Task* try_steal(TaskKind kind);
  Task* steal_alternating();

  // Runs `fn` inline with the worker temporarily switched to `kind`, so that
  // everything `fn` spawns lands on the corresponding deque.  Used by the
  // BATCHER extension to execute LAUNCHBATCH as a batch-dag root (§4).
  // Exception-safe: the previous kind is restored even if `fn` throws.
  template <typename F>
  void run_inline(TaskKind kind, F&& fn) {
    KindScope scope(*this, kind);
    fn();
  }

  // Top-level loop for scheduler-owned threads.
  void main_loop();

  WorkerStats& stats() { return stats_; }
  const WorkerStats& stats() const { return stats_; }

  // The worker's task-frame pool (frame_pool.hpp).  Spawns on this worker's
  // thread allocate from it; any thread may release frames back into it.
  FramePool& frame_pool() { return frame_pool_; }
  const FramePool& frame_pool() const { return frame_pool_; }

  // Thread-local accessor: the worker the calling thread is, or nullptr.
  static Worker* current();

 private:
  friend class Scheduler;

  // Restores the worker's dag kind on scope exit, including unwinding.
  struct KindScope {
    KindScope(Worker& w, TaskKind kind) : w_(w), saved_(w.kind_) {
      w_.kind_ = kind;
    }
    ~KindScope() { w_.kind_ = saved_; }
    KindScope(const KindScope&) = delete;
    KindScope& operator=(const KindScope&) = delete;
    Worker& w_;
    const TaskKind saved_;
  };

  static constexpr unsigned kNoVictim = ~0u;

  Scheduler* const sched_;
  const unsigned id_;
  Xoshiro256 rng_;
  std::uint64_t steal_tick_ = 0;
  // Last victim a batch-deque steal succeeded against (kNoVictim if the
  // last attempt missed).  See try_steal: batch work comes from the unique
  // active launcher, so successful batch-steal victims repeat.
  unsigned last_batch_victim_ = kNoVictim;
  TaskKind kind_ = TaskKind::Core;
  WorkerStats stats_;
  FramePool frame_pool_;  // after stats_: the pool bumps into it
  WorkDeque deques_[kNumTaskKinds];
};

}  // namespace batcher::rt
