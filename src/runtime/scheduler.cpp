#include "runtime/scheduler.hpp"

#include <utility>

#include "support/config.hpp"

namespace batcher::rt {

Scheduler::Scheduler(unsigned num_workers, std::uint64_t seed) {
  BATCHER_ASSERT(num_workers >= 1, "scheduler needs at least one worker");
  SplitMix64 seeder(seed);
  workers_.reserve(num_workers);
  for (unsigned i = 0; i < num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>(this, i, seeder.next()));
  }
  threads_.reserve(num_workers);
  for (unsigned i = 0; i < num_workers; ++i) {
    threads_.emplace_back([this, i] { worker_thread(i); });
  }
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_.store(true, std::memory_order_release);
  }
  workers_cv_.notify_all();
  for (auto& t : threads_) t.join();
  if (final_stats_sink_ != nullptr) *final_stats_sink_ = total_stats();
}

void Scheduler::worker_thread(unsigned index) { workers_[index]->main_loop(); }

void Scheduler::note_root_done() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    root_done_.store(true, std::memory_order_release);
  }
  caller_cv_.notify_all();
}

void Scheduler::run(std::function<void()> root) {
  BATCHER_ASSERT(Worker::current() == nullptr,
                 "Scheduler::run must not be called from a worker; "
                 "use parallel_invoke for nested parallelism");
  BATCHER_ASSERT(!run_active_.load(std::memory_order_acquire),
                 "Scheduler::run calls cannot overlap");

  root_done_.store(false, std::memory_order_release);
  root_error_ = nullptr;

  // Reclaim deque buffers retired by grow() during earlier runs, bounding
  // retained memory across runs instead of deferring it all to destruction.
  // Reading retired_count here is safe: no run is active, so no owner is
  // pushing (the only mutator), and the completed-run handshake ordered the
  // workers' last writes before this read.  The scan keeps the common case
  // (nothing retired) free of the all-parked handshake below.
  bool needs_reclaim = false;
  for (auto& w : workers_) {
    if (w->deque(TaskKind::Core).retired_count() != 0 ||
        w->deque(TaskKind::Batch).retired_count() != 0) {
      needs_reclaim = true;
      break;
    }
  }
  if (needs_reclaim) {
    // Quiescent point: wait until every worker is parked (blocked in the
    // workers_cv_ wait), so no thief can hold a pointer into a retired
    // buffer, then free the retired buffers.
    std::unique_lock<std::mutex> lock(mutex_);
    caller_cv_.wait(lock, [this] { return parked_workers_ == num_workers(); });
    for (auto& w : workers_) {
      w->deque(TaskKind::Core).reclaim_retired();
      w->deque(TaskKind::Batch).reclaim_retired();
    }
  }

  Task* root_task = make_task(
      [this, fn = std::move(root)]() mutable {
        // Structured constructs join before propagating, so by the time an
        // exception reaches this frame every descendant has completed; the
        // handshake below publishes the error to the run() caller.
        try {
          fn();
        } catch (...) {
          root_error_ = std::current_exception();
        }
        note_root_done();
      },
      /*join=*/nullptr, TaskKind::Core);
  inbox_.store(root_task, std::memory_order_release);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    run_active_.store(true, std::memory_order_release);
  }
  workers_cv_.notify_all();

  {
    std::unique_lock<std::mutex> lock(mutex_);
    caller_cv_.wait(lock,
                    [this] { return root_done_.load(std::memory_order_acquire); });
    // All structured work has completed (the root returned); park workers.
    run_active_.store(false, std::memory_order_release);
  }
  if (root_error_ != nullptr) {
    std::exception_ptr error = std::exchange(root_error_, nullptr);
    std::rethrow_exception(error);
  }
}

StatsSnapshot Scheduler::total_stats() const {
  StatsSnapshot total;
  for (const auto& w : workers_) total += w->stats();
  return total;
}

void Scheduler::reset_stats() {
  for (auto& w : workers_) w->stats().reset();
}

}  // namespace batcher::rt
