#include "runtime/scheduler.hpp"

#include <utility>

#include "support/config.hpp"
#include "trace/bound_ledger.hpp"
#include "trace/trace.hpp"

namespace batcher::rt {

Scheduler::Scheduler(unsigned num_workers, std::uint64_t seed) {
  BATCHER_ASSERT(num_workers >= 1, "scheduler needs at least one worker");
  SplitMix64 seeder(seed);
  workers_.reserve(num_workers);
  for (unsigned i = 0; i < num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>(this, i, seeder.next()));
  }
  threads_.reserve(num_workers);
  for (unsigned i = 0; i < num_workers; ++i) {
    threads_.emplace_back([this, i] { worker_thread(i); });
  }
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_.store(true, std::memory_order_release);
  }
  workers_cv_.notify_all();
  for (auto& t : threads_) t.join();
  if (final_stats_sink_ != nullptr) *final_stats_sink_ = total_stats();
}

void Scheduler::worker_thread(unsigned index) { workers_[index]->main_loop(); }

void Scheduler::note_root_done() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    root_done_.store(true, std::memory_order_release);
  }
  caller_cv_.notify_all();
}

void Scheduler::run(std::function<void()> root) {
  BATCHER_ASSERT(Worker::current() == nullptr,
                 "Scheduler::run must not be called from a worker; "
                 "use parallel_invoke for nested parallelism");
  BATCHER_ASSERT(!run_active_.load(std::memory_order_acquire),
                 "Scheduler::run calls cannot overlap");

  root_done_.store(false, std::memory_order_release);
  root_error_ = nullptr;

  // Reclaim deque buffers retired by grow() during earlier runs, bounding
  // retained memory across runs instead of deferring it all to destruction.
  // Reading retired_count here is safe: no run is active, so no owner is
  // pushing (the only mutator), and the completed-run handshake ordered the
  // workers' last writes before this read.  The scan keeps the common case
  // (nothing retired) free of the all-parked handshake below.
  bool needs_reclaim = false;
  for (auto& w : workers_) {
    if (w->deque(TaskKind::Core).retired_count() != 0 ||
        w->deque(TaskKind::Batch).retired_count() != 0) {
      needs_reclaim = true;
      break;
    }
  }
  if (needs_reclaim) {
    // Quiescent point: wait until every worker is parked (blocked in the
    // workers_cv_ wait), so no thief can hold a pointer into a retired
    // buffer, then free the retired buffers.
    std::unique_lock<std::mutex> lock(mutex_);
    caller_cv_.wait(lock, [this] { return parked_workers_ == num_workers(); });
    for (auto& w : workers_) {
      w->deque(TaskKind::Core).reclaim_retired();
      w->deque(TaskKind::Batch).reclaim_retired();
    }
  }

  Task* root_task = make_task(
      [this, fn = std::move(root)]() mutable {
        // Structured constructs join before propagating, so by the time an
        // exception reaches this frame every descendant has completed; the
        // handshake below publishes the error to the run() caller.
        //
        // The root is where a run's critical path starts: under an active
        // TraceSession it opens the run's root strand, and the path left in
        // the strand when fn() returns — every join having folded the
        // longest child path back in — is this run's measured T∞.
        const bool led = trace::enabled();
        trace::ledger::StrandScope lscope({0, 0}, led);
        try {
          fn();
          if (led) [[unlikely]] {
            const trace::ledger::PathPoint span = lscope.finish();
            note_root_span(span.ns, span.tasks);
            trace::ledger::note_run(span);
          }
        } catch (...) {
          root_error_ = std::current_exception();
        }
        note_root_done();
      },
      /*join=*/nullptr, TaskKind::Core);
  inbox_.store(root_task, std::memory_order_release);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    run_active_.store(true, std::memory_order_release);
  }
  workers_cv_.notify_all();

  {
    std::unique_lock<std::mutex> lock(mutex_);
    caller_cv_.wait(lock,
                    [this] { return root_done_.load(std::memory_order_acquire); });
    // All structured work has completed (the root returned); park workers.
    run_active_.store(false, std::memory_order_release);
  }
  if (root_error_ != nullptr) {
    std::exception_ptr error = std::exchange(root_error_, nullptr);
    std::rethrow_exception(error);
  }
}

void Scheduler::note_root_span(std::uint64_t span_ns,
                               std::uint64_t span_tasks) {
  runs_measured_.bump();
  span_ns_.bump(span_ns);
  span_tasks_.bump(span_tasks);
  auto fold = [](std::atomic<std::uint64_t>& cell, std::uint64_t v) {
    std::uint64_t cur = cell.load(std::memory_order_relaxed);
    while (v > cur &&
           !cell.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  };
  fold(longest_run_span_ns_, span_ns);
  fold(longest_run_span_tasks_, span_tasks);
}

StatsSnapshot Scheduler::total_stats() const {
  StatsSnapshot total;
  for (const auto& w : workers_) total += w->stats();
  total.span_ns = span_ns_.get();
  total.span_tasks = span_tasks_.get();
  total.runs_measured = runs_measured_.get();
  total.longest_run_span_ns =
      longest_run_span_ns_.load(std::memory_order_relaxed);
  total.longest_run_span_tasks =
      longest_run_span_tasks_.load(std::memory_order_relaxed);
  return total;
}

void Scheduler::reset_stats() {
  for (auto& w : workers_) w->stats().reset();
  runs_measured_.reset();
  span_ns_.reset();
  span_tasks_.reset();
  longest_run_span_ns_.store(0, std::memory_order_relaxed);
  longest_run_span_tasks_.store(0, std::memory_order_relaxed);
}

}  // namespace batcher::rt
