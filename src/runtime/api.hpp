// Public fork/join API: spawn/sync-style parallelism usable from any task
// running inside a Scheduler::run (and degrading to sequential execution when
// called from an ordinary thread, which keeps data-structure code testable in
// isolation).
//
// All constructs are *structured*: a fork's children complete before the
// forking call returns, matching the paper's model where the only
// synchronization is joins (§2, footnote 4).
#pragma once

#include <cstdint>
#include <utility>

#include "runtime/scheduler.hpp"
#include "runtime/task.hpp"
#include "runtime/worker.hpp"
#include "trace/bound_ledger.hpp"
#include "trace/trace.hpp"

namespace batcher::rt {

inline Worker* current_worker() { return Worker::current(); }

// Fork/join over two arms.  `f0` runs inline on the calling worker; `f1` is
// spawned and may be stolen.  Returns after both complete.
//
// If either arm throws, the join still waits for the other arm to finish
// (the spawned child may reference this stack frame), then the first
// exception rethrows here — so a throw in stolen work surfaces at the
// spawner, never in a random worker's scheduling loop.
template <typename F0, typename F1>
void parallel_invoke(F0&& f0, F1&& f1) {
  Worker* w = current_worker();
  if (w == nullptr) {
    f0();
    f1();
    return;
  }
  JoinCounter join(1);
  // Bound ledger (trace/bound_ledger.hpp): while a TraceSession is active the
  // spawned arm carries a strand of its own — rooted at the spawner's current
  // path — and folds its finished path into the join, where the spawner picks
  // it up after the wait.  The inline arm is a serial continuation and stays
  // on the spawner's open strand.  With tracing off this is one relaxed load.
  const bool led = trace::enabled();
  Task* child;
  if (led) [[unlikely]] {
    child = make_task(
        [fn = std::decay_t<F1>(std::forward<F1>(f1)),
         base = trace::ledger::strand_now(), &join]() mutable {
          trace::ledger::StrandScope scope(base, trace::enabled());
          fn();
          const trace::ledger::PathPoint path = scope.finish();
          join.fold_span(path.ns, path.tasks);
        },
        &join, w->current_kind());
  } else {
    child = make_task(std::forward<F1>(f1), &join, w->current_kind());
  }
  w->push(child);
  try {
    f0();
  } catch (...) {
    join.capture(std::current_exception());
  }
  // Time spent blocked at the join belongs to whoever we help, not to this
  // strand; the child's folded path re-enters ours when we resume.
  if (led) [[unlikely]] trace::ledger::strand_pause();
  w->wait(join);
  if (led) [[unlikely]] {
    trace::ledger::strand_resume({join.span_ns(), join.span_tasks()});
  }
  join.rethrow_if_failed();
}

namespace detail {

template <typename Body>
void pfor_recurse(std::int64_t lo, std::int64_t hi, std::int64_t grain,
                  const Body& body) {
  // Binary forking, as the paper assumes (§2, footnote 5).
  while (hi - lo > grain) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    parallel_invoke([&] { pfor_recurse(lo, mid, grain, body); },
                    [&] { pfor_recurse(mid, hi, grain, body); });
    return;
  }
  for (std::int64_t i = lo; i < hi; ++i) body(i);
}

template <typename Body>
void pfor_blocked_recurse(std::int64_t lo, std::int64_t hi, std::int64_t grain,
                          const Body& body) {
  while (hi - lo > grain) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    parallel_invoke([&] { pfor_blocked_recurse(lo, mid, grain, body); },
                    [&] { pfor_blocked_recurse(mid, hi, grain, body); });
    return;
  }
  body(lo, hi);
}

}  // namespace detail

// Reasonable default grain: enough leaves to load-balance 8 ways per worker
// without drowning in task frames.
inline std::int64_t default_grain(std::int64_t n) {
  Worker* w = current_worker();
  const std::int64_t p = (w != nullptr) ? w->scheduler()->num_workers() : 1;
  const std::int64_t g = n / (8 * p);
  return g > 1 ? g : 1;
}

// parallel_for over [lo, hi): body(i) for each index.
template <typename Body>
void parallel_for(std::int64_t lo, std::int64_t hi, const Body& body,
                  std::int64_t grain = 0) {
  if (hi <= lo) return;
  if (grain <= 0) grain = default_grain(hi - lo);
  detail::pfor_recurse(lo, hi, grain, body);
}

// parallel_for handing each leaf the whole subrange: body(lo, hi).
template <typename Body>
void parallel_for_blocked(std::int64_t lo, std::int64_t hi, const Body& body,
                          std::int64_t grain = 0) {
  if (hi <= lo) return;
  if (grain <= 0) grain = default_grain(hi - lo);
  detail::pfor_blocked_recurse(lo, hi, grain, body);
}

}  // namespace batcher::rt
