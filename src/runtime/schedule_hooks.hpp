// Schedule-observation seam for the runtime and the BATCHER extension.
//
// The worker loop, the steal paths, and the Batcher's LAUNCHBATCH protocol
// emit fine-grained events through `hooks::emit`.  An installed
// `ScheduleObserver` (src/audit) can audit the paper's invariants at every
// event and/or perturb the schedule by pausing inside the callback.  With
// BATCHER_AUDIT=0 (the Release default) `emit` is an empty inline function
// and the whole seam compiles away; with BATCHER_AUDIT=1 an un-installed
// observer costs one relaxed load and a predicted-not-taken branch per hook.
//
// Emission points are placed so that the real synchronization order implies
// the observer callback order: an event that publishes state (e.g. a slot
// status store with release semantics) is emitted *before* the store, so any
// event caused by observing that state is emitted strictly later in wall
// time.  This lets a mutex-serialized observer maintain an exact model of the
// protocol state with no false races.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>

#include "runtime/task.hpp"
#include "support/config.hpp"

namespace batcher::rt::hooks {

// Where in the scheduler an event fired.  The `worker` field of HookEvent is
// the worker the event is *about* — for the per-slot status transitions that
// is the slot's owner, which may differ from the thread emitting the event
// (LAUNCHBATCH flips other workers' statuses).
enum class HookPoint : std::uint8_t {
  kWorkerLoop,        // top of a worker's main-loop iteration
  kPush,              // owner-side deque push (deque = task kind)
  kPop,               // owner-side deque pop (deque = kind, value = hit)
  kStealAttempt,      // try_steal (deque = kind, value = success)
  kAlternatingSteal,  // steal_alternating chose `deque` for this attempt
  kTaskRun,           // a task frame is about to run (deque = task kind)
  kBatchifyEnter,     // worker submitted an op record to `domain`
  kBatchifyExit,      // worker resumed from batchify (op done, slot freed)
  kFlagCasWon,        // worker won the domain's batch-flag CAS
  kLaunchEnter,       // LAUNCHBATCH begins on this worker
  kBatchCollected,    // working set compacted (value = ops in the batch)
  kLaunchExit,        // LAUNCHBATCH finished; the flag is about to reopen
  kStatusFreeToPending,
  kStatusPendingToExecuting,
  kStatusExecutingToDone,
  kStatusDoneToFree,
  kAnnouncePush,    // worker pushed its (pending) slot onto the announce list
  kAnnounceClaim,   // the launcher claimed the announce list (one exchange)
  kLaunchChained,   // launcher starts another launch under the same flag hold
                    // (value = chain index, >= 1)
  // ExternalDomain (batcher/external.hpp) ingress-path events.  The subject
  // is an external (non-worker) thread for submit/revoke — worker is
  // kNoWorker and `value` carries the external tid — and the pump's worker
  // for claim.  Each is emitted immediately *before* the status transition it
  // announces, so a perturbing observer can stall a thread exactly inside the
  // three-way revoke race window (deadline revoke vs pump claim vs exit
  // drain).
  kExternalSubmit,  // external thread about to publish its record (Pending)
  kExternalRevoke,  // external thread about to CAS Pending -> Free
                    // (value = tid; deque field unused)
  kExternalClaim,   // pump (or quarantine/drain) about to CAS
                    // Pending -> Executing (value = tid)
};

inline constexpr unsigned kNoWorker = ~0u;

struct HookEvent {
  HookPoint point;
  unsigned worker = kNoWorker;        // subject worker (see HookPoint)
  TaskKind deque = TaskKind::Core;    // deque/task kind, where meaningful
  TaskKind context = TaskKind::Core;  // subject worker's current dag kind
  const void* domain = nullptr;       // Batcher identity for batching events
  std::uint64_t value = 0;            // point-specific payload
};

// Observers are usable (and unit-testable, via synthetic event streams) in
// every build; only the runtime's emission is gated on BATCHER_AUDIT.
class ScheduleObserver {
 public:
  virtual ~ScheduleObserver() = default;
  virtual void on_event(const HookEvent& event) = 0;
};

inline constexpr bool kEnabled = BATCHER_AUDIT != 0;

// The exception type every injected fault throws.  Defined in all builds so
// tests can name it; only audit builds ever throw it.
struct InjectedFault : std::runtime_error {
  using std::runtime_error::runtime_error;
};

#if BATCHER_AUDIT

inline std::atomic<ScheduleObserver*>& observer_slot() {
  static std::atomic<ScheduleObserver*> slot{nullptr};
  return slot;
}

// Install / clear the process-wide observer.  Swapping observers while worker
// threads are live is safe only in the install direction; clear (or destroy
// the observer) strictly after every scheduler that could emit has been
// destroyed or parked.
inline void install_observer(ScheduleObserver* observer) {
  observer_slot().store(observer, std::memory_order_release);
}

inline void emit(const HookEvent& event) {
  ScheduleObserver* observer =
      observer_slot().load(std::memory_order_acquire);
  if (observer != nullptr) [[unlikely]] observer->on_event(event);
}

// Test-only fault switches, for proving the auditor catches broken builds
// and that the failure-recovery paths (DESIGN.md §8) actually recover.
//
// `skip_batch_flag_cas` makes batchify behave, from the observer's point of
// view, like a build that launches batches without taking the batch-flag CAS:
// the kFlagCasWon event is suppressed, so the auditor sees a LAUNCHBATCH from
// a worker that never acquired the flag and must flag Invariant 1.  (Actual
// execution still takes the CAS — a genuinely skipped CAS would corrupt
// memory long before any report could be printed.)
//
// The throw_* members are one-shot countdowns: arming one with N > 0 makes
// the Nth opportunity throw an InjectedFault (fire() decrements; the fault
// fires on the 1 -> 0 edge).  0 means disarmed.  `slow_launcher_spins`
// busy-spins inside LAUNCHBATCH between collect and the BOP, stretching the
// window in which the batch flag is held — the stall the watchdog detects.
struct TestFaults {
  std::atomic<bool> skip_batch_flag_cas{false};
  std::atomic<std::int64_t> throw_in_bop{0};        // before ds.run_batch
  std::atomic<std::int64_t> throw_in_core_task{0};  // joined core task frames
  std::atomic<std::int64_t> throw_in_collect{0};    // per collected slot
  // FramePool allocation-failure injection: the Nth slab refill or global
  // fallback allocation throws std::bad_alloc (not InjectedFault — the point
  // is to exercise the real allocator-failure type through the task-frame
  // exception machinery).  Armed by FaultSchedule's kBadAlloc action.
  std::atomic<std::int64_t> throw_bad_alloc{0};
  std::atomic<std::uint32_t> slow_launcher_spins{0};

  void reset() {
    skip_batch_flag_cas.store(false, std::memory_order_relaxed);
    throw_in_bop.store(0, std::memory_order_relaxed);
    throw_in_core_task.store(0, std::memory_order_relaxed);
    throw_in_collect.store(0, std::memory_order_relaxed);
    throw_bad_alloc.store(0, std::memory_order_relaxed);
    slow_launcher_spins.store(0, std::memory_order_relaxed);
  }
};

inline TestFaults& test_faults() {
  static TestFaults faults;
  return faults;
}

// Decrements an armed countdown; returns true exactly once, when it crosses
// 1 -> 0.  Safe to race from multiple threads.
inline bool fire(std::atomic<std::int64_t>& countdown) {
  std::int64_t v = countdown.load(std::memory_order_relaxed);
  while (v > 0) {
    if (countdown.compare_exchange_weak(v, v - 1, std::memory_order_relaxed)) {
      return v == 1;
    }
  }
  return false;
}

#else  // !BATCHER_AUDIT

inline void install_observer(ScheduleObserver*) {}
inline void emit(const HookEvent&) {}

#endif  // BATCHER_AUDIT

}  // namespace batcher::rt::hooks
