// Chase–Lev work-stealing deque with a growable circular buffer.
//
// One owner thread pushes/pops at the bottom; any number of thieves steal
// from the top.  The memory-ordering discipline follows Lê, Pop, Cohen &
// Zappa Nardelli, "Correct and Efficient Work-Stealing for Weak Memory
// Models" (PPoPP 2013), i.e. the C11 adaptation of Chase & Lev's algorithm.
//
// Buffers are retired, not freed, while thieves may be active: a thief that
// loaded an old buffer pointer may still be reading a slot from it.  Instead
// of a full reclamation scheme, the scheduler calls reclaim_retired() at run
// boundaries — quiescent points where every worker is parked, so no thief
// can hold a stale pointer — which bounds retained memory for long-running
// schedulers; the destructor reclaims whatever is left.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "support/config.hpp"

namespace batcher::rt {

class Task;  // defined in task.hpp; the deque only moves pointers around

// TSan does not model std::atomic_thread_fence, so the fence-based publication
// below (relaxed slot store + release fence in push, fence + relaxed load in
// steal) is invisible to it and every stolen task is reported as a race.
// Under TSan the slot accesses are strengthened to release/acquire, which
// routes the same happens-before edge through the slot atomic itself without
// changing the algorithm; plain builds keep the cheap relaxed accesses.
inline constexpr std::memory_order kDequeSlotStore =
    BATCHER_TSAN_ACTIVE ? std::memory_order_release : std::memory_order_relaxed;
inline constexpr std::memory_order kDequeSlotLoad =
    BATCHER_TSAN_ACTIVE ? std::memory_order_acquire : std::memory_order_relaxed;

class WorkDeque {
 public:
  explicit WorkDeque(std::int64_t initial_capacity = 64)
      : top_(0), bottom_(0), buffer_(new Buffer(initial_capacity)) {}

  WorkDeque(const WorkDeque&) = delete;
  WorkDeque& operator=(const WorkDeque&) = delete;

  ~WorkDeque() {
    delete buffer_.load(std::memory_order_relaxed);
    for (Buffer* b : retired_) delete b;
  }

  // Owner only.  Pushes a task at the bottom.
  void push(Task* task) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t > buf->capacity - 1) {
      buf = grow(buf, t, b);
    }
    buf->put(b, task);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  // Owner only.  Pops from the bottom; nullptr when empty.
  Task* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    Task* task = nullptr;
    if (t <= b) {
      task = buf->get(b);
      if (t == b) {
        // Last element: race against thieves for it.
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          task = nullptr;  // a thief won
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      // Deque was already empty.
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return task;
  }

  // Any thread.  Steals from the top; nullptr on empty deque or lost race.
  Task* steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t < b) {
      // Acquire pairs with grow()'s release store: a thief that reads the new
      // buffer pointer also sees the copied slots.  (This was
      // memory_order_consume — deprecated since C++17 and promoted to acquire
      // by every compiler anyway, so say what we mean.)
      Buffer* buf = buffer_.load(std::memory_order_acquire);
      Task* task = buf->get(t);
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        return nullptr;  // lost the race
      }
      return task;
    }
    return nullptr;
  }

  // Approximate: may be stale by the time the caller acts on it.  Used only
  // for scheduling heuristics and invariant checks, never for correctness.
  bool empty() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b <= t;
  }

  std::int64_t size_estimate() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? b - t : 0;
  }

  // Frees buffers retired by grow().  Callable only at a quiescent point —
  // no concurrent push/pop/steal anywhere, e.g. the Scheduler::run boundary
  // after every worker has parked — since a thief mid-steal may hold a
  // pointer into a retired buffer.
  void reclaim_retired() {
    for (Buffer* b : retired_) delete b;
    retired_.clear();
  }

  // Quiescent-point only, like reclaim_retired.
  std::size_t retired_count() const { return retired_.size(); }

 private:
  struct Buffer {
    explicit Buffer(std::int64_t cap)
        : capacity(cap), mask(cap - 1), slots(new std::atomic<Task*>[cap]) {
      BATCHER_DASSERT((cap & (cap - 1)) == 0, "deque capacity must be a power of two");
    }
    ~Buffer() { delete[] slots; }

    void put(std::int64_t i, Task* task) {
      slots[i & mask].store(task, kDequeSlotStore);
    }
    Task* get(std::int64_t i) const {
      return slots[i & mask].load(kDequeSlotLoad);
    }

    const std::int64_t capacity;
    const std::int64_t mask;
    std::atomic<Task*>* const slots;
  };

  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    Buffer* bigger = new Buffer(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    buffer_.store(bigger, std::memory_order_release);
    retired_.push_back(old);
    return bigger;
  }

  alignas(kCacheLineSize) std::atomic<std::int64_t> top_;
  alignas(kCacheLineSize) std::atomic<std::int64_t> bottom_;
  alignas(kCacheLineSize) std::atomic<Buffer*> buffer_;
  std::vector<Buffer*> retired_;  // owner-only
};

}  // namespace batcher::rt
