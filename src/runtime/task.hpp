// Task frames and join counters for the fork/join runtime.
//
// The runtime is *child-stealing*: `spawn` heap-allocates a small task frame
// holding the child closure and pushes it on the spawning worker's deque; the
// parent continues inline and later blocks (helping) at a join.  This is the
// portable-C++ stand-in for Cilk-5's continuation stealing; DESIGN.md §5
// explains why it preserves the BATCHER invariants.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>

#include "support/config.hpp"

namespace batcher::rt {

// Invariant 3 of the paper: every ready node lives on a core deque or a batch
// deque according to which dag it belongs to.  TaskKind is that tag.
enum class TaskKind : std::uint8_t { Core = 0, Batch = 1 };
inline constexpr int kNumTaskKinds = 2;

// Counts outstanding children of a fork.  The parent waits (while helping)
// until the count drops to zero.  Counts only reach zero once per join.
class JoinCounter {
 public:
  explicit JoinCounter(std::int64_t n) : count_(n) {}

  JoinCounter(const JoinCounter&) = delete;
  JoinCounter& operator=(const JoinCounter&) = delete;

  void add(std::int64_t n = 1) { count_.fetch_add(n, std::memory_order_relaxed); }

  // Called by the child *after* its closure has been destroyed, so that the
  // parent never resumes while a child still references its stack frame.
  void finish() { count_.fetch_sub(1, std::memory_order_release); }

  bool done() const { return count_.load(std::memory_order_acquire) <= 0; }

 private:
  std::atomic<std::int64_t> count_;
};

// Type-erased task frame.  Uses a function-pointer vtable-of-one instead of a
// virtual so the whole frame stays one allocation with no RTTI.
class Task {
 public:
  using InvokeFn = void (*)(Task*);

  Task(InvokeFn invoke, JoinCounter* join, TaskKind kind)
      : invoke_(invoke), join_(join), kind_(kind) {}

  // Runs the closure, destroys the frame, then releases the join.  The caller
  // must not touch `this` afterwards.
  void run_and_release() {
    JoinCounter* join = join_;
    invoke_(this);  // executes and deletes the frame
    if (join != nullptr) join->finish();
  }

  TaskKind kind() const { return kind_; }

 private:
  const InvokeFn invoke_;
  JoinCounter* const join_;
  const TaskKind kind_;
};

template <typename F>
class ClosureTask final : public Task {
 public:
  ClosureTask(F&& fn, JoinCounter* join, TaskKind kind)
      : Task(&ClosureTask::invoke, join, kind), fn_(std::move(fn)) {}

 private:
  static void invoke(Task* base) {
    auto* self = static_cast<ClosureTask*>(base);
    F fn = std::move(self->fn_);
    delete self;  // free the frame before running: the closure may run long
    fn();
  }

  F fn_;
};

template <typename F>
Task* make_task(F&& fn, JoinCounter* join, TaskKind kind) {
  using Decayed = std::decay_t<F>;
  return new ClosureTask<Decayed>(Decayed(std::forward<F>(fn)), join, kind);
}

}  // namespace batcher::rt
