// Task frames and join counters for the fork/join runtime.
//
// The runtime is *child-stealing*: `spawn` allocates a small task frame
// holding the child closure and pushes it on the spawning worker's deque; the
// parent continues inline and later blocks (helping) at a join.  This is the
// portable-C++ stand-in for Cilk-5's continuation stealing; DESIGN.md §5
// explains why it preserves the BATCHER invariants.
//
// Frames come from the spawning worker's FramePool (frame_pool.hpp), not
// global `new`: the steady-state spawn/join hot path never touches the
// global allocator, and a thief that finishes a stolen frame returns it to
// the owner's remote-free stack instead of cross-thread `delete`-ing it
// (DESIGN.md §10).
//
// Exceptions: a closure that throws never unwinds a worker's scheduling loop.
// The frame catches the exception and records it in the join (first exception
// wins; sibling tasks drain normally so no child ever outlives the spawner's
// stack frame), and the *spawner* rethrows at the join point.  DESIGN.md §8
// has the full propagation rules.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <utility>

#include "runtime/frame_pool.hpp"
#include "support/config.hpp"

namespace batcher::rt {

// Invariant 3 of the paper: every ready node lives on a core deque or a batch
// deque according to which dag it belongs to.  TaskKind is that tag.
enum class TaskKind : std::uint8_t { Core = 0, Batch = 1 };
inline constexpr int kNumTaskKinds = 2;

// Counts outstanding children of a fork.  The parent waits (while helping)
// until the count drops to zero.  Counts only reach zero once per join.
class JoinCounter {
 public:
  explicit JoinCounter(std::int64_t n) : count_(n) {}

  JoinCounter(const JoinCounter&) = delete;
  JoinCounter& operator=(const JoinCounter&) = delete;

  void add(std::int64_t n = 1) { count_.fetch_add(n, std::memory_order_relaxed); }

  // Called by the child *after* its closure has been destroyed, so that the
  // parent never resumes while a child still references its stack frame.
  void finish() { count_.fetch_sub(1, std::memory_order_release); }

  bool done() const { return count_.load(std::memory_order_acquire) <= 0; }

  // Records the first exception thrown by any arm of this join.  Later
  // captures are dropped: siblings keep running (nothing cancels them) and
  // the spawner rethrows the winner at the join point.
  //
  // Two flags, in two roles: `claimed_` (relaxed CAS) only elects the single
  // writer of `error_`; `failed_` (store-release) is set *after* the write
  // and is the one readers see.  Claiming before publishing used to be one
  // acq_rel CAS, but that let a racing failed() reader observe true while
  // `error_` was still null — and rethrow_if_failed would have handed
  // std::rethrow_exception a null pointer (UB).  The release/acquire pair on
  // `failed_` now publishes `error_` to any reader that sees the flag.
  void capture(std::exception_ptr error) noexcept {
    BATCHER_DASSERT(error != nullptr, "capture needs a real exception");
    bool expected = false;
    if (claimed_.compare_exchange_strong(expected, true,
                                         std::memory_order_relaxed)) {
      error_ = std::move(error);
      failed_.store(true, std::memory_order_release);
    }
  }

  bool failed() const noexcept {
    return failed_.load(std::memory_order_acquire);
  }

  // Bound-ledger span fold: a finishing child max-folds its path (in ns and
  // in task frames — each component independently) into the join, and the
  // spawner resumes its own strand from the folded values.  Relaxed is
  // enough: the finish()/done() release/acquire pair that hands the join
  // back to the spawner already orders these writes before the reads.
  void fold_span(std::uint64_t ns, std::uint64_t tasks) noexcept {
    fold_max(span_ns_, ns);
    fold_max(span_tasks_, tasks);
  }
  std::uint64_t span_ns() const noexcept {
    return span_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t span_tasks() const noexcept {
    return span_tasks_.load(std::memory_order_relaxed);
  }

  // Rethrows the captured exception, if any.  Call only after done().
  void rethrow_if_failed() {
    if (failed()) {
      BATCHER_ASSERT(error_ != nullptr,
                     "failed() implies a published exception");
      std::rethrow_exception(error_);
    }
  }

 private:
  static void fold_max(std::atomic<std::uint64_t>& cell,
                       std::uint64_t v) noexcept {
    std::uint64_t cur = cell.load(std::memory_order_relaxed);
    while (v > cur &&
           !cell.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> count_;
  std::atomic<bool> claimed_{false};  // elects the error_ writer, nothing more
  std::atomic<bool> failed_{false};   // readers' flag; publishes error_
  std::exception_ptr error_;
  std::atomic<std::uint64_t> span_ns_{0};     // max child path folded in
  std::atomic<std::uint64_t> span_tasks_{0};
};

// Type-erased task frame.  Uses a function-pointer vtable-of-two instead of a
// virtual so the whole frame stays one allocation with no RTTI.
class Task {
 public:
  using InvokeFn = void (*)(Task*);
  using DestroyFn = void (*)(Task*);

  Task(InvokeFn invoke, DestroyFn destroy, JoinCounter* join, TaskKind kind)
      : invoke_(invoke), destroy_(destroy), join_(join), kind_(kind) {}

  // Runs the closure, destroys the frame, then releases the join.  The caller
  // must not touch `this` afterwards.  A throwing closure is captured into
  // the join (rethrown by the spawner); only a join-less frame — the
  // scheduler root, whose wrapper catches everything itself — lets the
  // exception continue unwinding.
  void run_and_release() {
    JoinCounter* join = join_;
    try {
      invoke_(this);  // executes and deletes the frame
    } catch (...) {
      if (join == nullptr) throw;
      join->capture(std::current_exception());
    }
    if (join != nullptr) join->finish();
  }

  // Destroys the frame *without* running the closure and releases the join
  // with `error` recorded, exactly as if the closure had thrown immediately.
  // Used by fault injection to model a task that dies before any effect.
  void fail_and_release(std::exception_ptr error) {
    JoinCounter* join = join_;
    destroy_(this);
    if (join != nullptr) {
      join->capture(std::move(error));
      join->finish();
    }
  }

  TaskKind kind() const { return kind_; }
  bool has_join() const { return join_ != nullptr; }

 private:
  const InvokeFn invoke_;
  const DestroyFn destroy_;
  JoinCounter* const join_;
  const TaskKind kind_;
};

template <typename F>
class ClosureTask final : public Task {
 public:
  ClosureTask(F&& fn, JoinCounter* join, TaskKind kind)
      : Task(&ClosureTask::invoke, &ClosureTask::destroy, join, kind),
        fn_(std::move(fn)) {}

 private:
  static void invoke(Task* base) {
    auto* self = static_cast<ClosureTask*>(base);
    F fn = std::move(self->fn_);
    // Return the frame before running: the closure may run long, and a
    // stolen frame goes back to its owner's pool while the thief works.
    self->~ClosureTask();
    FramePool::release_frame(self);
    fn();
  }

  static void destroy(Task* base) {
    auto* self = static_cast<ClosureTask*>(base);
    self->~ClosureTask();
    FramePool::release_frame(self);
  }

  F fn_;
};

template <typename F>
Task* make_task(F&& fn, JoinCounter* join, TaskKind kind) {
  using Decayed = std::decay_t<F>;
  using Frame = ClosureTask<Decayed>;
  void* mem = FramePool::allocate_frame(sizeof(Frame), alignof(Frame));
  try {
    return ::new (mem) Frame(Decayed(std::forward<F>(fn)), join, kind);
  } catch (...) {
    FramePool::release_frame(mem);  // closure copy/move threw
    throw;
  }
}

}  // namespace batcher::rt
