// Instrumentation counters.
//
// Each worker owns a stats block and in the common case is the only writer,
// while the scheduler — and observers like the stall watchdog — read it from
// other threads at any time.  `bump` used to exploit that with a plain
// load+store, but nothing enforced the single-writer contract at the call
// sites, so it is now a relaxed fetch_add: lock-free, correct under any
// number of writers, and on an uncontended (single-writer) cache line it
// costs the same handful of cycles as the load+store pair did.  The
// categories mirror the quantities the paper's analysis charges steps to
// (§5): work executed, steal attempts split by target deque kind, successful
// steals.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>

namespace batcher::rt {

// Monotonic event counter: any thread bumps, anyone reads.
class Counter {
 public:
  void bump(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  // Saturating add: sticks at 2^64-1 instead of wrapping.  Histogram bucket
  // cells (trace/histogram.hpp) use this so a bucket that somehow overflows
  // reads as "full" rather than restarting from zero and corrupting every
  // derived percentile.
  void add_saturating(std::uint64_t n = 1) {
    constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t v = value_.load(std::memory_order_relaxed);
    while (true) {
      const std::uint64_t next = (v > kMax - n) ? kMax : v + n;
      if (value_.compare_exchange_weak(v, next, std::memory_order_relaxed)) {
        return;
      }
    }
  }

  std::uint64_t get() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

struct WorkerStats {
  Counter tasks_executed;       // task frames run to completion
  Counter core_steal_attempts;  // attempts aimed at core deques
  Counter batch_steal_attempts; // attempts aimed at batch deques
  Counter steals_succeeded;
  Counter join_help_runs;       // tasks run while waiting at a join

  // Frame-pool counters (runtime/frame_pool.hpp).  The owner's fast-path
  // contributions (allocations and local frees) are batched in plain
  // pool-private fields and published via FramePool::flush_stats() when the
  // worker parks — an atomic RMW per frame would roughly double the cost of
  // a steady-state allocate.  Remote frees are bumped eagerly by whichever
  // thread returns the frame (Counter::bump is a relaxed fetch_add, so the
  // multi-writer case is safe).  Mid-run reads therefore lag; at a flushed
  // quiescent point (all workers parked, or a destructor-time snapshot)
  // frames_allocated == frames_freed holds exactly, and the bench validator
  // checks this identity on every report.
  Counter frames_allocated;     // pool frames handed out on the spawn path
  Counter frames_freed;         // pool frames returned (local + remote)
  Counter remote_frees;         // frames returned by a non-owner thread
  Counter slab_refills;         // slabs carved (the only global allocations)

  // Measured T1 contribution: nanoseconds of strand segments closed on this
  // worker's thread (trace/bound_ledger.hpp).  Only accrues while a
  // TraceSession is active — zero in untraced runs.
  Counter work_ns;

  void reset() {
    tasks_executed.reset();
    core_steal_attempts.reset();
    batch_steal_attempts.reset();
    steals_succeeded.reset();
    join_help_runs.reset();
    frames_allocated.reset();
    frames_freed.reset();
    remote_frees.reset();
    slab_refills.reset();
    work_ns.reset();
  }
};

// Plain-value aggregate for reporting.
struct StatsSnapshot {
  std::uint64_t tasks_executed = 0;
  std::uint64_t core_steal_attempts = 0;
  std::uint64_t batch_steal_attempts = 0;
  std::uint64_t steals_succeeded = 0;
  std::uint64_t join_help_runs = 0;
  std::uint64_t frames_allocated = 0;
  std::uint64_t frames_freed = 0;
  std::uint64_t remote_frees = 0;
  std::uint64_t slab_refills = 0;

  // Bound-ledger quantities (zero when the run was untraced).  work_ns sums
  // worker-thread strand time (measured T1); the span fields come from the
  // scheduler's per-run root spans (measured T∞), not from WorkerStats.
  std::uint64_t work_ns = 0;
  std::uint64_t span_ns = 0;
  std::uint64_t span_tasks = 0;
  std::uint64_t runs_measured = 0;
  std::uint64_t longest_run_span_ns = 0;
  std::uint64_t longest_run_span_tasks = 0;

  StatsSnapshot& operator+=(const WorkerStats& w) {
    tasks_executed += w.tasks_executed.get();
    core_steal_attempts += w.core_steal_attempts.get();
    batch_steal_attempts += w.batch_steal_attempts.get();
    steals_succeeded += w.steals_succeeded.get();
    join_help_runs += w.join_help_runs.get();
    frames_allocated += w.frames_allocated.get();
    frames_freed += w.frames_freed.get();
    remote_frees += w.remote_frees.get();
    slab_refills += w.slab_refills.get();
    work_ns += w.work_ns.get();
    return *this;
  }

  std::uint64_t total_steal_attempts() const {
    return core_steal_attempts + batch_steal_attempts;
  }
};

}  // namespace batcher::rt
