#include "runtime/frame_pool.hpp"

#include <new>

#include "runtime/schedule_hooks.hpp"

namespace batcher::rt {

namespace {

// Allocation-failure injection point, shared by the two paths that touch the
// global allocator (slab refill and the pool-less/oversized fallback).  The
// chaos engine arms `test_faults().throw_bad_alloc` to prove a real
// std::bad_alloc from the Nth allocation rides the task-frame exception
// machinery like any other task failure.  Compiles away without BATCHER_AUDIT.
inline void maybe_inject_bad_alloc() {
#if BATCHER_AUDIT
  if (hooks::fire(hooks::test_faults().throw_bad_alloc)) [[unlikely]] {
    throw std::bad_alloc{};
  }
#endif
}

}  // namespace

FramePool::~FramePool() {
  // Runs after the owning thread's last use (the Scheduler joins its threads
  // before destroying workers), so any counts still batched are published
  // here — destructor-time snapshots are exact.
  flush_stats();
  // Free lists (local and remote) are views into the slabs; nothing to walk.
  for (char* slab : slabs_) ::operator delete(slab);
}

void FramePool::drain_remote() {
  FreeNode* node = remote_head_.exchange(nullptr, std::memory_order_acquire);
  while (node != nullptr) {
    FreeNode* next = node->next;
    FrameHeader* hdr = header_of(node);
    const std::uint32_t c = hdr->size_class & ~kFreedBit;
    BATCHER_DASSERT(c < static_cast<std::uint32_t>(kNumClasses),
                    "remote-freed frame has a corrupt size class");
    node->next = local_[c];
    local_[c] = node;
    node = next;
  }
}

FramePool::FreeNode* FramePool::allocate_slow(int c) {
  drain_remote();
  if (local_[c] != nullptr) return local_[c];
  return refill(c);
}

FramePool::FreeNode* FramePool::refill(int c) {
  const std::size_t block = kClassSizes[c];
  const std::size_t count = kSlabBytes / block;
  maybe_inject_bad_alloc();
  char* slab = static_cast<char*>(::operator new(kSlabBytes));
  slabs_.push_back(slab);
  FreeNode* head = local_[c];
  for (std::size_t i = 0; i < count; ++i) {
    char* base = slab + i * block;
    ::new (base) FrameHeader{this, static_cast<std::uint32_t>(c) | kFreedBit,
                             0};
    head = ::new (base + sizeof(FrameHeader)) FreeNode{head};
  }
  local_[c] = head;
  stats_->slab_refills.bump();
  if (trace::enabled()) [[unlikely]] {
    trace::emit(owner_id_, trace::EventId::kFrameSlabRefill,
                static_cast<std::uint16_t>(c));
  }
  return head;
}

void* FramePool::global_allocate(std::size_t bytes, std::size_t align) {
  maybe_inject_bad_alloc();
  if (align <= kFrameAlign) {
    char* raw = static_cast<char*>(::operator new(sizeof(FrameHeader) + bytes));
    ::new (raw) FrameHeader{nullptr, 0,
                            static_cast<std::uint32_t>(sizeof(FrameHeader))};
    return raw + sizeof(FrameHeader);
  }
  // Over-aligned closure: pad so the payload lands on an `align` boundary
  // with its header immediately below; `offset` recovers the raw pointer.
  const std::size_t total = sizeof(FrameHeader) + align + bytes;
  char* raw = static_cast<char*>(::operator new(total));
  const std::uintptr_t payload_addr =
      (reinterpret_cast<std::uintptr_t>(raw) + sizeof(FrameHeader) + align -
       1) &
      ~(static_cast<std::uintptr_t>(align) - 1);
  char* payload = reinterpret_cast<char*>(payload_addr);
  ::new (payload - sizeof(FrameHeader)) FrameHeader{
      nullptr, 0, static_cast<std::uint32_t>(payload - raw)};
  return payload;
}

}  // namespace batcher::rt
