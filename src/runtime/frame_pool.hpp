// Per-worker task-frame pools: the allocator-free spawn hot path.
//
// Every spawn used to heap-allocate its ClosureTask with global `new`, and
// the frame was freed by whichever worker ran it — so every successful steal
// became a cross-thread `delete`, serializing the hot path on the global
// allocator exactly where the paper's Theorem 1 charges (T1 + W(n))/P to
// useful work.  Instead, each Worker owns a FramePool:
//
//  * fixed power-of-two size classes carved out of slab allocations, so a
//    steady-state frame allocation is a pop from an owner-local free list —
//    no atomics, no lock, no global allocator;
//  * a free by the owning worker pushes straight back onto that local list;
//  * a free by any other thread (a thief finishing a stolen frame) pushes
//    onto the owner's MPSC remote-free stack — a Treiber stack whose pushers
//    CAS with release and whose owner drains with one acquire exchange when
//    a local list runs empty — instead of calling global `delete`;
//  * oversized or over-aligned frames, and frames made by threads with no
//    pool (the scheduler root is made by the run() caller), fall back to
//    global new/delete through the same 16-byte header, so release_frame
//    needs no out-of-band knowledge of how a frame was allocated.
//
// Slabs are freed only in the pool's destructor; a frame sitting on a free
// list (local or remote) at that point is slab memory like any other, so
// teardown never walks a list.  Workers outlive every frame they ever
// allocated — runs are structured and the Scheduler joins its threads before
// destroying workers — which is what makes that safe.
//
// DESIGN.md §10 spells out the protocol and why it preserves Invariant 3 and
// the §8 failure semantics (a frame that dies via fail_and_release returns to
// the pool exactly once, through the same release_frame it would have taken
// on the success path).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "runtime/stats.hpp"
#include "support/config.hpp"
#include "trace/trace.hpp"

namespace batcher::rt {

class FramePool {
 public:
  // Blocks are carved at multiples of the class size from a 16-byte-aligned
  // slab, so payloads (block + 16-byte header) hold any std::max_align_t
  // alignment.  Stricter alignments take the global fallback.
  static constexpr std::size_t kFrameAlign = alignof(std::max_align_t);

  // Block sizes, header included.  Closures in this codebase capture a few
  // pointers/references, so 64-byte blocks (48-byte payloads) cover most
  // spawns; the 1 KiB ceiling covers any parallel_invoke arm worth spawning.
  // Larger frames fall back to the global allocator and are not counted.
  static constexpr int kNumClasses = 5;
  static constexpr std::size_t kClassSizes[kNumClasses] = {64, 128, 256, 512,
                                                           1024};
  static constexpr std::size_t kSlabBytes = std::size_t{1} << 15;  // 32 KiB

  FramePool(WorkerStats* stats, unsigned owner_id)
      : stats_(stats), owner_id_(owner_id) {}
  ~FramePool();

  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

  // Thread-local current pool: the calling worker's own pool, set around
  // Worker::main_loop; null on non-worker threads.  This is the fast-path
  // dispatch for both allocate (use my pool) and free (mine vs. remote).
  static FramePool* tls() { return t_pool; }
  static void set_tls(FramePool* pool) { t_pool = pool; }

  // Allocates a frame payload of `bytes` from the calling thread's pool;
  // falls back to the global allocator when the thread has no pool or the
  // frame is oversized/over-aligned.  Returned memory is uninitialized.
  static void* allocate_frame(std::size_t bytes, std::size_t align) {
    if (align <= kFrameAlign) [[likely]] {
      FramePool* pool = tls();
      if (pool != nullptr) [[likely]] return pool->allocate(bytes);
    }
    return global_allocate(bytes, align);
  }

  // Returns a payload obtained from allocate_frame.  Any thread; the header
  // routes to the owner's local list, its remote-free stack, or global
  // delete.  The payload's object must already have been destroyed.
  static void release_frame(void* payload) {
    FrameHeader* hdr = header_of(payload);
    FramePool* owner = hdr->owner;
    if (owner == nullptr) [[unlikely]] {
      ::operator delete(static_cast<char*>(payload) - hdr->offset);
      return;
    }
    if (owner == tls()) {
      owner->local_free(hdr, payload);
    } else {
      owner->remote_free(hdr, payload);
    }
  }

  // Owner only.  Moves every frame in the remote-free stack onto the local
  // free lists.  Called automatically when a local list runs empty.
  void drain_remote();

  // Publishes the batched fast-path counts (allocations and local frees)
  // into the shared stats block.  The fast paths bump plain owner-private
  // fields — an atomic RMW per frame would roughly double the cost of a
  // steady-state allocate — and workers flush when they park, so snapshots
  // taken at run boundaries after all workers parked (and destructor-time
  // snapshots, which happen after thread join) are exact.  Remote frees are
  // counted eagerly: they are cross-thread by definition and rare enough
  // that their two relaxed fetch_adds don't matter.
  // Owner only (or any point ordered after the owner's last use, such as
  // after the owning thread has been joined).
  void flush_stats() {
    if (pending_allocated_ != 0) {
      stats_->frames_allocated.bump(pending_allocated_);
      pending_allocated_ = 0;
    }
    if (pending_freed_ != 0) {
      stats_->frames_freed.bump(pending_freed_);
      pending_freed_ = 0;
    }
  }

  unsigned owner_id() const { return owner_id_; }

  // Observability / tests: slabs ever carved (monotonic, one global
  // allocation each) and whether the remote stack is currently non-empty
  // (approximate — for tests at quiescent points only).
  std::size_t slab_count() const { return slabs_.size(); }
  bool has_remote_frees() const {
    return remote_head_.load(std::memory_order_acquire) != nullptr;
  }

 private:
  // Precedes every payload.  `owner == nullptr` marks a global-allocator
  // frame freed via `payload - offset`; otherwise `size_class` indexes
  // kClassSizes (kFreedBit set while the frame sits on a free list, which
  // turns a double release into a debug assertion instead of list
  // corruption; the bit is maintained in every build so TUs with different
  // NDEBUG settings agree on the header protocol).
  struct FrameHeader {
    FramePool* owner;
    std::uint32_t size_class;
    std::uint32_t offset;
  };
  static_assert(sizeof(FrameHeader) == 16, "headers keep payloads aligned");
  static_assert(alignof(FrameHeader) <= kFrameAlign,
                "header placement relies on max_align_t slabs");

  // Free-list link, living in the (dead) payload bytes of a freed frame.
  struct FreeNode {
    FreeNode* next;
  };

  static constexpr std::uint32_t kFreedBit = 0x80000000u;

  static FrameHeader* header_of(void* payload) {
    return reinterpret_cast<FrameHeader*>(static_cast<char*>(payload) -
                                          sizeof(FrameHeader));
  }

  static int class_for(std::size_t bytes) {
    const std::size_t block = bytes + sizeof(FrameHeader);
    for (int c = 0; c < kNumClasses; ++c) {
      if (block <= kClassSizes[c]) return c;
    }
    return -1;
  }

  // Owner only: the steady-state allocation fast path.
  void* allocate(std::size_t bytes) {
    const int c = class_for(bytes);
    if (c < 0) [[unlikely]] return global_allocate(bytes, kFrameAlign);
    FreeNode* node = local_[c];
    if (node == nullptr) [[unlikely]] node = allocate_slow(c);
    local_[c] = node->next;
    FrameHeader* hdr = header_of(node);
    BATCHER_DASSERT((hdr->size_class & kFreedBit) != 0,
                    "pool frame handed out while not on a free list");
    // The bit is maintained in every build (only the asserts are
    // debug-gated): allocate/free are inline but refill lives in the
    // library, so a consumer TU compiled with a different NDEBUG setting
    // must still agree with the library on the header protocol.
    hdr->size_class = static_cast<std::uint32_t>(c);
    ++pending_allocated_;
    return node;
  }

  void local_free(FrameHeader* hdr, void* payload) {
    const std::uint32_t c = hdr->size_class & ~kFreedBit;
    BATCHER_DASSERT((hdr->size_class & kFreedBit) == 0,
                    "pool frame freed twice");
    hdr->size_class = c | kFreedBit;
    FreeNode* node = ::new (payload) FreeNode{local_[c]};
    local_[c] = node;
    ++pending_freed_;
  }

  // Any thread.  The release CAS publishes the node's `next` (and the freed
  // header) to the owner's acquire drain; intermediate pushes extend the
  // release sequence, so one acquire exchange covers the whole chain.
  void remote_free(FrameHeader* hdr, void* payload) {
    const std::uint32_t c = hdr->size_class & ~kFreedBit;
    BATCHER_DASSERT((hdr->size_class & kFreedBit) == 0,
                    "pool frame freed twice");
    hdr->size_class = c | kFreedBit;
    FreeNode* node = ::new (payload) FreeNode{nullptr};
    FreeNode* head = remote_head_.load(std::memory_order_relaxed);
    do {
      node->next = head;
    } while (!remote_head_.compare_exchange_weak(head, node,
                                                 std::memory_order_release,
                                                 std::memory_order_relaxed));
    stats_->remote_frees.bump();
    stats_->frames_freed.bump();
    if (trace::enabled()) [[unlikely]] {
      // `c` was read before the push: once published, the owner may drain
      // and reuse the frame, so the header is off limits here.
      FramePool* mine = tls();
      trace::emit(mine != nullptr ? mine->owner_id_ : trace::kNoWorkerId,
                  trace::EventId::kFrameRemoteFree,
                  static_cast<std::uint16_t>(c));
    }
  }

  FreeNode* allocate_slow(int c);  // drain remote, else carve a new slab
  FreeNode* refill(int c);
  static void* global_allocate(std::size_t bytes, std::size_t align);

  inline static thread_local FramePool* t_pool = nullptr;

  WorkerStats* const stats_;
  const unsigned owner_id_;
  FreeNode* local_[kNumClasses] = {};
  // Batched stat bumps, owner-private until flush_stats() publishes them.
  std::uint64_t pending_allocated_ = 0;
  std::uint64_t pending_freed_ = 0;
  std::vector<char*> slabs_;
  // Own line: thieves CAS here while the owner works the fields above.
  alignas(kCacheLineSize) std::atomic<FreeNode*> remote_head_{nullptr};
};

}  // namespace batcher::rt
