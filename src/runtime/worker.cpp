#include "runtime/worker.hpp"

#include "runtime/scheduler.hpp"
#include "support/backoff.hpp"
#include "trace/bound_ledger.hpp"
#include "trace/trace.hpp"

namespace batcher::rt {

namespace {
thread_local Worker* t_current_worker = nullptr;
}  // namespace

Worker* Worker::current() { return t_current_worker; }

void Worker::run_task(Task* task) {
  hooks::emit({hooks::HookPoint::kTaskRun, id_, task->kind(), kind_});
#if BATCHER_AUDIT
  // Fault injection: kill a joined core task before it runs, as if its
  // closure threw immediately.  Join-less frames (the scheduler root) are
  // exempt — their error path is Scheduler::run's own wrapper.
  if (task->kind() == TaskKind::Core && task->has_join() &&
      hooks::fire(hooks::test_faults().throw_in_core_task)) {
    task->fail_and_release(std::make_exception_ptr(
        hooks::InjectedFault("injected fault: core task failed before running")));
    return;
  }
#endif
  const TaskKind task_kind = task->kind();
  if (trace::enabled()) [[unlikely]] {
    trace::emit(id_, trace::EventId::kTaskBegin,
                static_cast<std::uint16_t>(task_kind));
  }
  KindScope scope(*this, task_kind);
  task->run_and_release();
  stats_.tasks_executed.bump();
  if (trace::enabled()) [[unlikely]] {
    trace::emit(id_, trace::EventId::kTaskEnd,
                static_cast<std::uint16_t>(task_kind));
  }
}

Task* Worker::try_steal(TaskKind kind) {
  const unsigned P = sched_->num_workers();
  // Single-worker schedulers have nobody to steal from: return before the
  // stats bump, the hook and the trace record, so P=1 runs (and the trapped
  // worker's steal-spin in batchify) pay nothing for attempts that cannot
  // succeed.  Trace/stats stay reconciled — neither side sees the attempt.
  if (P <= 1) return nullptr;
  if (kind == TaskKind::Core) {
    stats_.core_steal_attempts.bump();
  } else {
    stats_.batch_steal_attempts.bump();
  }
  // Batch-deque steals get last-successful-victim affinity: batch work is
  // spawned by the one active launcher (Invariant 1), so the victim that
  // fed us last is overwhelmingly likely to feed us again — re-probing it
  // skips the RNG and keeps trapped workers off other workers' (empty)
  // deque cache lines.  A miss drops the affinity and falls back to the
  // uniform random victim.
  unsigned victim;
  if (kind == TaskKind::Batch && last_batch_victim_ != kNoVictim) {
    victim = last_batch_victim_;
  } else {
    victim = static_cast<unsigned>(rng_.next_below(P - 1));
    if (victim >= id_) ++victim;  // uniform over workers other than self
  }
  Task* task = sched_->worker(victim).deque(kind).steal();
  if (kind == TaskKind::Batch) {
    last_batch_victim_ = task != nullptr ? victim : kNoVictim;
  }
  hooks::emit({hooks::HookPoint::kStealAttempt, id_, kind, kind_, nullptr,
               task != nullptr ? 1u : 0u});
  if (trace::enabled()) [[unlikely]] {
    trace::emit(id_, trace::EventId::kSteal,
                static_cast<std::uint16_t>(
                    (kind == TaskKind::Batch ? trace::kStealKindBatch : 0) |
                    (task != nullptr ? trace::kStealSuccess : 0)));
  }
  if (task != nullptr) stats_.steals_succeeded.bump();
  return task;
}

Task* Worker::steal_alternating() {
  // §4: the k-th steal attempt of a free worker targets core deques when k is
  // even, batch deques when k is odd.
  const TaskKind kind =
      (steal_tick_++ % 2 == 0) ? TaskKind::Core : TaskKind::Batch;
  hooks::emit({hooks::HookPoint::kAlternatingSteal, id_, kind, kind_});
  return try_steal(kind);
}

void Worker::wait(JoinCounter& join) {
  const TaskKind waiting_kind = kind_;
  // The caller's strand is paused (parallel_invoke) for this whole window:
  // any time not inside a helped task's own kTaskBegin/End pair is steal
  // attempts and backoff, which attribution charges to the steal bucket.
  const bool traced = trace::enabled();
  if (traced) [[unlikely]] {
    trace::emit(id_, trace::EventId::kJoinWaitBegin);
  }
  Backoff backoff;
  while (!join.done()) {
    // Drain our own deque for the dag we are part of first: those tasks are
    // the children whose completion the join is (usually) waiting on.
    Task* task = pop(waiting_kind);
    if (task == nullptr) {
      if (waiting_kind == TaskKind::Batch) {
        // Inside a batch dag, only batch work may be executed (§4).
        task = try_steal(TaskKind::Batch);
      } else {
        // A free worker helps anywhere, alternating between deque kinds.
        task = pop(TaskKind::Batch);
        if (task == nullptr) task = steal_alternating();
      }
    }
    if (task != nullptr) {
      stats_.join_help_runs.bump();
      run_task(task);
      backoff.reset();
    } else {
      backoff.pause();
    }
  }
  if (traced) [[unlikely]] {
    trace::emit(id_, trace::EventId::kJoinWaitEnd);
  }
}

bool Worker::help_batch_once() {
  Task* task = pop(TaskKind::Batch);
  if (task == nullptr) task = try_steal(TaskKind::Batch);
  if (task == nullptr) return false;
  run_task(task);
  return true;
}

void Worker::main_loop() {
  t_current_worker = this;
  FramePool::set_tls(&frame_pool_);
  // Strand segments closed on this thread accrue measured T1 into this
  // worker's stats block for the rest of the thread's life.
  trace::ledger::set_thread_work_sink(&stats_.work_ns);
  if (trace::enabled()) [[unlikely]] {
    trace::emit(id_, trace::EventId::kWorkerStart);
  }
  Backoff backoff;
  while (!sched_->stopping()) {
    if (!sched_->run_active()) {
      // Park between runs.  The parked count (guarded by the scheduler
      // mutex) lets run() detect the all-parked quiescent point at which
      // retired deque buffers are safe to reclaim.  Flushing here publishes
      // the frame counts batched during the run, so all-parked snapshots
      // satisfy frames_allocated == frames_freed exactly.
      frame_pool_.flush_stats();
      if (trace::enabled()) [[unlikely]] {
        trace::emit(id_, trace::EventId::kParkBegin);
      }
      std::unique_lock<std::mutex> lock(sched_->mutex_);
      ++sched_->parked_workers_;
      sched_->caller_cv_.notify_all();
      sched_->workers_cv_.wait(lock, [this] {
        return sched_->stopping() || sched_->run_active();
      });
      --sched_->parked_workers_;
      lock.unlock();
      if (trace::enabled()) [[unlikely]] {
        trace::emit(id_, trace::EventId::kParkEnd);
      }
      continue;
    }
    hooks::emit({hooks::HookPoint::kWorkerLoop, id_, TaskKind::Core, kind_});
    Task* task = sched_->take_root();
    if (task == nullptr) task = pop(TaskKind::Batch);
    if (task == nullptr) task = pop(TaskKind::Core);
    if (task == nullptr) task = steal_alternating();
    if (task != nullptr) {
      run_task(task);
      backoff.reset();
    } else {
      backoff.pause();
    }
  }
  // The stop flag can interrupt the loop without another park, so flush once
  // more: the scheduler's destructor reads stats after joining this thread.
  frame_pool_.flush_stats();
  if (trace::enabled()) [[unlikely]] {
    trace::emit(id_, trace::EventId::kWorkerExit);
  }
  trace::ledger::set_thread_work_sink(nullptr);
  FramePool::set_tls(nullptr);
  t_current_worker = nullptr;
}

}  // namespace batcher::rt
