// The fork/join scheduler: owns the worker threads and the run lifecycle.
//
// A Scheduler spawns `num_workers` dedicated threads at construction.  `run`
// submits a root core task and blocks the calling (external) thread until the
// root — and, for structured programs, every transitively spawned task — has
// completed.  Between runs the workers park on a condition variable so idle
// schedulers cost nothing.
//
// The BATCHER extension (src/batcher) plugs into this scheduler purely
// through the public Worker operations: dual deques, kind-tagged tasks, the
// alternating-steal policy, and `help_batch_once` for trapped workers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/task.hpp"
#include "runtime/stats.hpp"
#include "runtime/worker.hpp"

namespace batcher::rt {

class Scheduler {
 public:
  // Creates `num_workers` worker threads (at least 1).  `seed` makes victim
  // selection reproducible across runs with the same thread interleaving.
  explicit Scheduler(unsigned num_workers,
                     std::uint64_t seed = 0x5eed5eed5eed5eedULL);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  unsigned num_workers() const { return static_cast<unsigned>(workers_.size()); }

  // Executes `root` as a core task on the worker pool; blocks until it (and
  // all structured descendants) finish.  Must be called from a non-worker
  // thread; calls cannot be nested (use parallel_invoke inside a run).
  // If the root (or anything it joined on) threw, the exception rethrows
  // here, after every worker has quiesced; the scheduler stays usable.
  void run(std::function<void()> root);

  Worker& worker(unsigned i) { return *workers_[i]; }
  const Worker& worker(unsigned i) const { return *workers_[i]; }

  // Aggregated instrumentation across all workers (approximate while a run
  // is active; exact once run() has returned and workers have parked).
  StatsSnapshot total_stats() const;
  void reset_stats();

  // Writes the final aggregated stats into `sink` from the destructor, after
  // the worker threads have joined.  A total_stats() call right after run()
  // can still race with a worker finishing its last loop iteration; the
  // destructor-time snapshot is exact, which trace-reconciliation consumers
  // need.  Pass nullptr to cancel.
  void export_final_stats(StatsSnapshot* sink) { final_stats_sink_ = sink; }

  bool stopping() const { return stop_.load(std::memory_order_acquire); }
  bool run_active() const { return run_active_.load(std::memory_order_acquire); }

  // Claims the pending root task, if any.  Called by workers; the root is
  // handed off through this inbox rather than a deque so that no thread ever
  // touches another worker's deque from the owner side.
  Task* take_root() { return inbox_.exchange(nullptr, std::memory_order_acquire); }

 private:
  friend class Worker;

  void worker_thread(unsigned index);
  void note_root_done();
  void note_root_span(std::uint64_t span_ns, std::uint64_t span_tasks);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Bound-ledger per-run root spans (measured T∞), accrued by the root
  // wrapper when a run completes cleanly under an active TraceSession.
  // Folded into StatsSnapshot by total_stats().
  Counter runs_measured_;
  Counter span_ns_;
  Counter span_tasks_;
  std::atomic<std::uint64_t> longest_run_span_ns_{0};
  std::atomic<std::uint64_t> longest_run_span_tasks_{0};

  StatsSnapshot* final_stats_sink_ = nullptr;

  std::atomic<Task*> inbox_{nullptr};
  std::atomic<bool> stop_{false};
  std::atomic<bool> run_active_{false};
  std::atomic<bool> root_done_{false};
  std::exception_ptr root_error_;  // published via the root_done_ handshake

  std::mutex mutex_;
  std::condition_variable workers_cv_;  // wakes parked workers for a new run
  std::condition_variable caller_cv_;   // wakes the run() caller on completion
  // Workers currently blocked in the park wait; guarded by mutex_.  When it
  // equals num_workers() no thread can be mid-steal, so run() treats that as
  // the quiescent point for reclaiming retired deque buffers.
  unsigned parked_workers_ = 0;
};

}  // namespace batcher::rt
