// Parallel prefix sums (scan).
//
// Prefix sums are the paper's workhorse primitive: the batched counter's BOP
// is one scan (Fig. 2), and LAUNCHBATCH compacts the pending array with one
// (Fig. 4).  Two implementations are provided:
//
//  * `scan_inclusive_blocked` — the practical three-phase scheme (block sums,
//    serial scan of per-block sums, block fixup).  Θ(n) work, Θ(n/B + B)
//    span; with B ≈ √n this is Θ(√n), and for the ≤P-element arrays BATCHER
//    scans it is effectively flat.
//  * `scan_inclusive_recursive` — Ladner–Fischer-style divide and conquer
//    with Θ(n) work and Θ(lg² n) span under binary forking (lg n levels of
//    recursion, each adding a constant offset in parallel).  This matches the
//    bound the paper quotes for prefix sums in the fork/join model.
//
// Both are in-place and generic over the (associative) operator.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "runtime/api.hpp"

namespace batcher::par {

// Serial cutoff shared by the blocked scan/reduce/pack schemes (here and in
// parallel/scan.hpp): inputs of at most this size run as one serial loop,
// with no task spawns and no block-total allocation.  Forking pays off only
// once the per-block work dwarfs the spawn cost; below the cutoff the serial
// loop is both faster *and* a constant-span leaf, so the asymptotic story is
// unchanged.  Tunable (like the msort cutoffs in parallel/sort.hpp) so span
// tests can force the parallel scheme on small inputs.
inline std::atomic<std::int64_t>& scan_cutoff_cell() {
  static std::atomic<std::int64_t> cell{512};
  return cell;
}
inline std::int64_t scan_serial_cutoff() {
  return scan_cutoff_cell().load(std::memory_order_relaxed);
}
inline void set_scan_serial_cutoff(std::int64_t n) {
  scan_cutoff_cell().store(n < 1 ? 1 : n, std::memory_order_relaxed);
}

// RAII override, mirroring sort.hpp's SortCutoffGuard.
class ScanCutoffGuard {
 public:
  explicit ScanCutoffGuard(std::int64_t cutoff)
      : saved_(scan_serial_cutoff()) {
    set_scan_serial_cutoff(cutoff);
  }
  ~ScanCutoffGuard() { set_scan_serial_cutoff(saved_); }
  ScanCutoffGuard(const ScanCutoffGuard&) = delete;
  ScanCutoffGuard& operator=(const ScanCutoffGuard&) = delete;

 private:
  std::int64_t saved_;
};

namespace detail {

template <typename T, typename Op>
void add_offset(T* data, std::int64_t n, const T& offset, const Op& op) {
  rt::parallel_for(0, n, [&](std::int64_t i) { data[i] = op(offset, data[i]); });
}

template <typename T, typename Op>
void scan_recursive_impl(T* data, std::int64_t n, const Op& op,
                         std::int64_t grain) {
  if (n <= grain) {
    for (std::int64_t i = 1; i < n; ++i) data[i] = op(data[i - 1], data[i]);
    return;
  }
  const std::int64_t mid = n / 2;
  rt::parallel_invoke([&] { scan_recursive_impl(data, mid, op, grain); },
                      [&] { scan_recursive_impl(data + mid, n - mid, op, grain); });
  add_offset(data + mid, n - mid, data[mid - 1], op);
}

}  // namespace detail

// In-place inclusive scan, recursive variant (theory-shaped span).
template <typename T, typename Op>
void scan_inclusive_recursive(T* data, std::int64_t n, const Op& op,
                              std::int64_t grain = 0) {
  if (n <= 1) return;
  if (grain <= 0) grain = rt::default_grain(n);
  detail::scan_recursive_impl(data, n, op, grain);
}

// In-place inclusive scan, blocked variant (practical default).
template <typename T, typename Op>
void scan_inclusive_blocked(T* data, std::int64_t n, const Op& op) {
  if (n <= 1) return;
  rt::Worker* w = rt::current_worker();
  const std::int64_t p = (w != nullptr) ? w->scheduler()->num_workers() : 1;
  const std::int64_t blocks =
      n <= scan_serial_cutoff() ? 1 : std::min<std::int64_t>(n, 4 * p);
  if (blocks <= 1) {
    for (std::int64_t i = 1; i < n; ++i) data[i] = op(data[i - 1], data[i]);
    return;
  }
  const std::int64_t block_size = (n + blocks - 1) / blocks;
  std::vector<T> sums(static_cast<std::size_t>(blocks));

  // Phase 1: independent scans of each block, recording each block's total.
  rt::parallel_for(
      0, blocks,
      [&](std::int64_t b) {
        const std::int64_t lo = b * block_size;
        const std::int64_t hi = std::min(n, lo + block_size);
        for (std::int64_t i = lo + 1; i < hi; ++i)
          data[i] = op(data[i - 1], data[i]);
        sums[static_cast<std::size_t>(b)] = data[hi - 1];
      },
      /*grain=*/1);

  // Phase 2: serial exclusive scan over the (few) block totals.
  for (std::int64_t b = 1; b < blocks; ++b)
    sums[static_cast<std::size_t>(b)] =
        op(sums[static_cast<std::size_t>(b - 1)], sums[static_cast<std::size_t>(b)]);

  // Phase 3: add each block's prefix offset.
  rt::parallel_for(
      1, blocks,
      [&](std::int64_t b) {
        const std::int64_t lo = b * block_size;
        const std::int64_t hi = std::min(n, lo + block_size);
        const T& offset = sums[static_cast<std::size_t>(b - 1)];
        for (std::int64_t i = lo; i < hi; ++i) data[i] = op(offset, data[i]);
      },
      /*grain=*/1);
}

// Default entry point used throughout the library.
template <typename T, typename Op>
void scan_inclusive(T* data, std::int64_t n, const Op& op) {
  scan_inclusive_blocked(data, n, op);
}

template <typename T>
void prefix_sums(T* data, std::int64_t n) {
  scan_inclusive(data, n, [](const T& a, const T& b) { return a + b; });
}

}  // namespace batcher::par
