// Parallel merge sort with a parallel merge.
//
// The batched 2-3 search tree (§3 of the paper) sorts each batch before
// inserting; the paper quotes O(x lg x) work for sorting x keys.  This merge
// sort delivers Θ(n lg n) work and Θ(lg³ n) span (parallel merge by
// binary-search splitting), which is all the headroom a ≤P-element batch
// needs.  Stable within merge ties (left half wins).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <iterator>
#include <vector>

#include "runtime/api.hpp"

namespace batcher::par {

// The serial cutoffs below which msort leaves fall back to std::stable_sort
// and the parallel merge to std::merge.  512 amortizes spawn overhead on the
// throughput path; span tests and span-profiled BOP benches lower it so the
// recursive structure (and hence the measured critical path) is exercised at
// batch-sized inputs.  Relaxed atomics: these are test/bench knobs, not
// synchronization.
inline std::atomic<std::int64_t>& sort_cutoff_cell() {
  static std::atomic<std::int64_t> cell{512};
  return cell;
}
inline std::atomic<std::int64_t>& merge_cutoff_cell() {
  static std::atomic<std::int64_t> cell{512};
  return cell;
}
inline std::int64_t sort_serial_cutoff() {
  return sort_cutoff_cell().load(std::memory_order_relaxed);
}
inline std::int64_t merge_serial_cutoff() {
  return merge_cutoff_cell().load(std::memory_order_relaxed);
}
inline void set_sort_serial_cutoff(std::int64_t n) {
  sort_cutoff_cell().store(n < 1 ? 1 : n, std::memory_order_relaxed);
}
inline void set_merge_serial_cutoff(std::int64_t n) {
  merge_cutoff_cell().store(n < 1 ? 1 : n, std::memory_order_relaxed);
}

// RAII guard: set both cutoffs for a scope (tests, span profiling).
class SortCutoffGuard {
 public:
  explicit SortCutoffGuard(std::int64_t sort_cutoff, std::int64_t merge_cutoff)
      : saved_sort_(sort_serial_cutoff()), saved_merge_(merge_serial_cutoff()) {
    set_sort_serial_cutoff(sort_cutoff);
    set_merge_serial_cutoff(merge_cutoff);
  }
  explicit SortCutoffGuard(std::int64_t cutoff) : SortCutoffGuard(cutoff, cutoff) {}
  ~SortCutoffGuard() {
    set_sort_serial_cutoff(saved_sort_);
    set_merge_serial_cutoff(saved_merge_);
  }
  SortCutoffGuard(const SortCutoffGuard&) = delete;
  SortCutoffGuard& operator=(const SortCutoffGuard&) = delete;

 private:
  std::int64_t saved_sort_;
  std::int64_t saved_merge_;
};

namespace detail {

template <typename T, typename Cmp>
void merge_swapped(const T* a, std::int64_t na, const T* b, std::int64_t nb,
                   T* out, const Cmp& cmp);

// Merges sorted [a, a+na) and [b, b+nb) into out.
template <typename T, typename Cmp>
void merge_parallel(const T* a, std::int64_t na, const T* b, std::int64_t nb,
                    T* out, const Cmp& cmp) {
  if (na + nb <= merge_serial_cutoff()) {
    std::merge(a, a + na, b, b + nb, out, cmp);
    return;
  }
  if (na < nb) {
    // Keep the larger run on the left so the pivot split is balanced.
    merge_swapped(a, na, b, nb, out, cmp);
    return;
  }
  const std::int64_t mid_a = na / 2;
  const T& pivot = a[mid_a];
  // lower_bound keeps equal keys from `b` on the right of equal keys from
  // `a`, giving a stable merge.
  const std::int64_t mid_b =
      std::lower_bound(b, b + nb, pivot, cmp) - b;
  out[mid_a + mid_b] = pivot;
  rt::parallel_invoke(
      [&] { merge_parallel(a, mid_a, b, mid_b, out, cmp); },
      [&] {
        merge_parallel(a + mid_a + 1, na - mid_a - 1, b + mid_b, nb - mid_b,
                       out + mid_a + mid_b + 1, cmp);
      });
}

// Helper so the size-balancing swap keeps stability: when the right run goes
// first we must split on *upper* bound to preserve left-before-right ties.
template <typename T, typename Cmp>
void merge_swapped(const T* a, std::int64_t na, const T* b, std::int64_t nb,
                   T* out, const Cmp& cmp) {
  const std::int64_t mid_b = nb / 2;
  const T& pivot = b[mid_b];
  const std::int64_t mid_a =
      std::upper_bound(a, a + na, pivot, cmp) - a;
  out[mid_a + mid_b] = pivot;
  rt::parallel_invoke(
      [&] { merge_parallel(a, mid_a, b, mid_b, out, cmp); },
      [&] {
        merge_parallel(a + mid_a, na - mid_a, b + mid_b + 1, nb - mid_b - 1,
                       out + mid_a + mid_b + 1, cmp);
      });
}

// Sorts [data, data+n); `buf` is scratch of the same size.  If `to_buf`, the
// sorted output lands in buf, else in data.
template <typename T, typename Cmp>
void msort(T* data, T* buf, std::int64_t n, bool to_buf, const Cmp& cmp) {
  if (n <= sort_serial_cutoff()) {
    std::stable_sort(data, data + n, cmp);
    if (to_buf) std::copy(data, data + n, buf);
    return;
  }
  const std::int64_t mid = n / 2;
  rt::parallel_invoke([&] { msort(data, buf, mid, !to_buf, cmp); },
                      [&] { msort(data + mid, buf + mid, n - mid, !to_buf, cmp); });
  const T* src = to_buf ? data : buf;
  T* dst = to_buf ? buf : data;
  merge_parallel(src, mid, src + mid, n - mid, dst, cmp);
}

}  // namespace detail

// Stable parallel merge of sorted [a, a+na) and [b, b+nb) into `out`,
// exposed so the merge primitive is testable outside msort (and any BOP).
template <typename T, typename Cmp>
void parallel_merge(const T* a, std::int64_t na, const T* b, std::int64_t nb,
                    T* out, const Cmp& cmp) {
  detail::merge_parallel(a, na, b, nb, out, cmp);
}

template <typename T, typename Cmp>
void parallel_sort(T* data, std::int64_t n, const Cmp& cmp) {
  if (n <= 1) return;
  std::vector<T> buf(static_cast<std::size_t>(n));
  detail::msort(data, buf.data(), n, /*to_buf=*/false, cmp);
}

template <typename T>
void parallel_sort(T* data, std::int64_t n) {
  parallel_sort(data, n, std::less<T>{});
}

template <typename T, typename Cmp>
void parallel_sort(std::vector<T>& v, const Cmp& cmp) {
  parallel_sort(v.data(), static_cast<std::int64_t>(v.size()), cmp);
}

template <typename T>
void parallel_sort(std::vector<T>& v) {
  parallel_sort(v.data(), static_cast<std::int64_t>(v.size()));
}

}  // namespace batcher::par
