// Parallel reduction with binary forking: O(n) work, O(lg n) span.
#pragma once

#include <cstdint>
#include <utility>

#include "runtime/api.hpp"

namespace batcher::par {

namespace detail {

template <typename T, typename Map, typename Op>
T reduce_recurse(std::int64_t lo, std::int64_t hi, std::int64_t grain,
                 const T& identity, const Map& map, const Op& op) {
  if (hi - lo <= grain) {
    T acc = identity;
    for (std::int64_t i = lo; i < hi; ++i) acc = op(std::move(acc), map(i));
    return acc;
  }
  const std::int64_t mid = lo + (hi - lo) / 2;
  T left{}, right{};
  rt::parallel_invoke(
      [&] { left = reduce_recurse(lo, mid, grain, identity, map, op); },
      [&] { right = reduce_recurse(mid, hi, grain, identity, map, op); });
  return op(std::move(left), std::move(right));
}

}  // namespace detail

// reduce over [lo, hi): op(... op(map(lo), map(lo+1)) ..., map(hi-1)).
// `op` must be associative; `identity` its neutral element.
template <typename T, typename Map, typename Op>
T parallel_reduce(std::int64_t lo, std::int64_t hi, T identity, const Map& map,
                  const Op& op, std::int64_t grain = 0) {
  if (hi <= lo) return identity;
  if (grain <= 0) grain = rt::default_grain(hi - lo);
  return detail::reduce_recurse(lo, hi, grain, identity, map, op);
}

// Convenience: sum of map(i).
template <typename T, typename Map>
T parallel_sum(std::int64_t lo, std::int64_t hi, const Map& map,
               std::int64_t grain = 0) {
  return parallel_reduce<T>(
      lo, hi, T{}, map, [](T a, T b) { return a + b; }, grain);
}

}  // namespace batcher::par
