// Work-efficient exclusive scan, reduce, and scan-based compaction (pack).
//
// These are the batch-prep workhorses behind the sort-merge BOPs: every
// rewritten structure turns a sorted batch into distinct-key groups with a
// flag → exclusive-scan → scatter pack instead of a Θ(batch)-span serial
// boundary walk, which is precisely what keeps the measured s(n) of the BOP
// sublinear.  All routines are Θ(n) work; the blocked schemes run in
// Θ(n/B + B) span (B = min(n, 4P) blocks, so effectively flat for
// batch-sized inputs), matching `scan_inclusive_blocked` in prefix_sum.hpp.
//
// Per Invariant 1 nothing here synchronizes: the phases communicate only
// through the fork/join structure.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "parallel/prefix_sum.hpp"
#include "runtime/api.hpp"

namespace batcher::par {

namespace detail {

inline std::int64_t scan_blocks_for(std::int64_t n) {
  if (n <= scan_serial_cutoff()) return 1;
  rt::Worker* w = rt::current_worker();
  const std::int64_t p = (w != nullptr) ? w->scheduler()->num_workers() : 1;
  return std::min<std::int64_t>(n, 4 * p);
}

}  // namespace detail

// In-place *exclusive* scan: data[i] becomes op(identity, data[0..i)), so
// data[0] == identity and the old data[n-1] drops off the end.  Returns the
// total op(identity, data[0..n)) — callers packing variable-size records use
// it as the output length.
template <typename T, typename Op>
T scan_exclusive(T* data, std::int64_t n, const Op& op, T identity) {
  if (n <= 0) return identity;
  const std::int64_t blocks = detail::scan_blocks_for(n);
  if (blocks <= 1) {
    T running = identity;
    for (std::int64_t i = 0; i < n; ++i) {
      T tmp = data[i];
      data[i] = running;
      running = op(running, tmp);
    }
    return running;
  }
  const std::int64_t block_size = (n + blocks - 1) / blocks;
  std::vector<T> sums(static_cast<std::size_t>(blocks), identity);

  // Phase 1: per-block totals (read-only over data).
  rt::parallel_for(
      0, blocks,
      [&](std::int64_t b) {
        const std::int64_t lo = b * block_size;
        const std::int64_t hi = std::min(n, lo + block_size);
        T total = identity;
        for (std::int64_t i = lo; i < hi; ++i) total = op(total, data[i]);
        sums[static_cast<std::size_t>(b)] = total;
      },
      /*grain=*/1);

  // Phase 2: serial exclusive scan over the (few) block totals.
  T running = identity;
  for (std::int64_t b = 0; b < blocks; ++b) {
    T tmp = sums[static_cast<std::size_t>(b)];
    sums[static_cast<std::size_t>(b)] = running;
    running = op(running, tmp);
  }

  // Phase 3: per-block exclusive rewrite seeded with the block's offset.
  rt::parallel_for(
      0, blocks,
      [&](std::int64_t b) {
        const std::int64_t lo = b * block_size;
        const std::int64_t hi = std::min(n, lo + block_size);
        T acc = sums[static_cast<std::size_t>(b)];
        for (std::int64_t i = lo; i < hi; ++i) {
          T tmp = data[i];
          data[i] = acc;
          acc = op(acc, tmp);
        }
      },
      /*grain=*/1);
  return running;
}

template <typename T>
T exclusive_prefix_sums(T* data, std::int64_t n) {
  return scan_exclusive(data, n, [](const T& a, const T& b) { return a + b; },
                        T{});
}

// Parallel reduction over [0, n) of value(i) under an associative `op`.
template <typename T, typename ValueFn, typename Op>
T reduce(std::int64_t n, const ValueFn& value, const Op& op, T identity) {
  if (n <= 0) return identity;
  const std::int64_t blocks = detail::scan_blocks_for(n);
  if (blocks <= 1) {
    T total = identity;
    for (std::int64_t i = 0; i < n; ++i) total = op(total, value(i));
    return total;
  }
  const std::int64_t block_size = (n + blocks - 1) / blocks;
  std::vector<T> sums(static_cast<std::size_t>(blocks), identity);
  rt::parallel_for(
      0, blocks,
      [&](std::int64_t b) {
        const std::int64_t lo = b * block_size;
        const std::int64_t hi = std::min(n, lo + block_size);
        T total = identity;
        for (std::int64_t i = lo; i < hi; ++i) total = op(total, value(i));
        sums[static_cast<std::size_t>(b)] = total;
      },
      /*grain=*/1);
  T total = identity;
  for (std::int64_t b = 0; b < blocks; ++b)
    total = op(total, sums[static_cast<std::size_t>(b)]);
  return total;
}

// Pack: collect the indices i in [0, n) with pred(i), in increasing order,
// into `out` (resized to the hit count).  Flag → exclusive scan → scatter;
// this replaces the serial "walk the array appending matches" loops whose
// Θ(n) span dominated the legacy BOP apply paths.
template <typename Pred>
std::int64_t pack_indices(std::int64_t n, const Pred& pred,
                          std::vector<std::uint32_t>& out) {
  if (n <= 0) {
    out.clear();
    return 0;
  }
  const std::int64_t blocks = detail::scan_blocks_for(n);
  if (blocks <= 1) {
    out.clear();
    for (std::int64_t i = 0; i < n; ++i) {
      if (pred(i)) out.push_back(static_cast<std::uint32_t>(i));
    }
    return static_cast<std::int64_t>(out.size());
  }
  const std::int64_t block_size = (n + blocks - 1) / blocks;
  std::vector<std::int64_t> counts(static_cast<std::size_t>(blocks), 0);
  rt::parallel_for(
      0, blocks,
      [&](std::int64_t b) {
        const std::int64_t lo = b * block_size;
        const std::int64_t hi = std::min(n, lo + block_size);
        std::int64_t c = 0;
        for (std::int64_t i = lo; i < hi; ++i) c += pred(i) ? 1 : 0;
        counts[static_cast<std::size_t>(b)] = c;
      },
      /*grain=*/1);
  std::int64_t total = 0;
  for (std::int64_t b = 0; b < blocks; ++b) {
    std::int64_t tmp = counts[static_cast<std::size_t>(b)];
    counts[static_cast<std::size_t>(b)] = total;
    total += tmp;
  }
  out.resize(static_cast<std::size_t>(total));
  rt::parallel_for(
      0, blocks,
      [&](std::int64_t b) {
        const std::int64_t lo = b * block_size;
        const std::int64_t hi = std::min(n, lo + block_size);
        std::int64_t at = counts[static_cast<std::size_t>(b)];
        for (std::int64_t i = lo; i < hi; ++i) {
          if (pred(i)) out[static_cast<std::size_t>(at++)] =
              static_cast<std::uint32_t>(i);
        }
      },
      /*grain=*/1);
  return total;
}

}  // namespace batcher::par
