// Batched order-maintenance list.
//
// The paper's introduction motivates implicit batching with on-the-fly race
// detection: an SP-maintenance structure must be updated at every fork/join
// *before control flow continues*, so the program cannot gather those updates
// into explicit batches — but a scheduler can.  The substrate of
// SP-maintenance (Bender et al. [5]) is an order-maintenance list:
//
//   insert_after(x) -> new element y placed immediately after x;
//   precedes(a, b)  -> is a before b in the list?
//
// Implementation: label-based list order (Dietz & Sleator lineage): every
// element carries a 62-bit label; `precedes` is one comparison.  A batch
// groups its inserts by anchor element — distinct anchors get disjoint label
// gaps and disjoint link splices, so groups apply in parallel with no
// synchronization (Invariant 1 supplies exclusivity).  When any group's gap
// is too small the whole list is relabelled evenly first (amortized O(1) per
// insert for polynomially-bounded lists).
//
// Batch phase order (consistent with the other structures): PRECEDES queries
// observe the pre-batch list, then inserts apply in working-set order.
#pragma once

#include <cstdint>
#include <vector>

#include "batcher/batcher.hpp"
#include "batcher/op_record.hpp"

namespace batcher::ds {

class BatchedOrderMaintenance final : public BatchedStructure {
 public:
  // Stable element identifier (index into the element table).
  using Handle = std::uint32_t;
  static constexpr Handle kInvalidHandle = static_cast<Handle>(-1);

  enum class Kind : std::uint8_t { InsertAfter, Precedes };

  struct Op : OpRecordBase {
    Kind kind = Kind::InsertAfter;
    Handle a = 0;                     // InsertAfter anchor / Precedes lhs
    Handle b = 0;                     // Precedes rhs
    Handle result = kInvalidHandle;   // InsertAfter result
    bool before = false;              // Precedes result
  };

  explicit BatchedOrderMaintenance(
      rt::Scheduler& sched,
      Batcher::SetupPolicy setup = Batcher::kDefaultSetup);

  BatchedOrderMaintenance(const BatchedOrderMaintenance&) = delete;
  BatchedOrderMaintenance& operator=(const BatchedOrderMaintenance&) = delete;

  // The first element of the list, created at construction.
  Handle base() const { return 0; }

  // --- blocking, implicitly batched API ---
  Handle insert_after(Handle ref);
  bool precedes(Handle a, Handle b);

  // --- unsynchronized API (outside runs) ---
  Handle insert_after_unsafe(Handle ref);
  bool precedes_unsafe(Handle a, Handle b) const;
  std::size_t size_unsafe() const { return elements_.size(); }
  std::uint64_t relabels_unsafe() const { return relabels_; }

  // Labels strictly increase along the linked list; links are consistent.
  bool check_invariants() const;

  Batcher& batcher() { return batcher_; }

  void run_batch(OpRecordBase* const* ops, std::size_t count) override;

 private:
  struct Element {
    std::uint64_t label;
    Handle next;
    Handle prev;
  };

  static constexpr std::uint64_t kLabelSpan = std::uint64_t{1} << 62;

  Handle allocate_element(std::uint64_t label, Handle prev, Handle next);
  void relabel_all();
  void splice_group(Handle ref, Op* const* group, std::size_t n);
  bool group_fits(Handle ref, std::size_t n) const;

  std::vector<Element> elements_;
  std::uint64_t relabels_ = 0;

  std::vector<Op*> read_ops_, insert_ops_;  // batch scratch
  Batcher batcher_;
};

}  // namespace batcher::ds
