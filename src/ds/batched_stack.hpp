// The paper's amortized LIFO stack (§3): a table-doubling array supporting
// batched PUSH and POP.
//
// Batch semantics follow the paper: each batch runs a PUSH phase followed by
// a POP phase.  Pushes land in working-set order; pop j (in working-set
// order) then removes the j-th element from the new top.  Pops beyond the
// bottom return nothing.
//
// Amortized analysis (§3): a size-x batch costs Θ(x) amortized work — a
// doubling/halving batch costs Θ(current size) but is paid for by the Θ(n)
// cheap slots that preceded it — and every batch dag with w_A work has span
// O(lg w_A), so s(n) = O(lg P) for batches with parallelism O(P).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "batcher/batcher.hpp"
#include "batcher/op_record.hpp"
#include "runtime/api.hpp"
#include "support/config.hpp"

namespace batcher::ds {

template <typename T>
class BatchedStack final : public BatchedStructure {
 public:
  enum class Kind : std::uint8_t { Push, Pop };

  struct Op : OpRecordBase {
    Kind kind = Kind::Push;
    T value{};               // argument for Push
    std::optional<T> out;    // result for Pop
  };

  explicit BatchedStack(rt::Scheduler& sched,
                        Batcher::SetupPolicy setup = Batcher::kDefaultSetup)
      : batcher_(sched, *this, setup) {
    table_.resize(kInitialCapacity);
  }

  void push(const T& value) {
    Op op;
    op.kind = Kind::Push;
    op.value = value;
    batcher_.batchify(op);
  }

  std::optional<T> pop() {
    Op op;
    op.kind = Kind::Pop;
    batcher_.batchify(op);
    return op.out;
  }

  // Unsynchronized accessors for tests/reporting (no run active).
  std::size_t size_unsafe() const { return size_; }
  std::size_t capacity_unsafe() const { return table_.size(); }

  Batcher& batcher() { return batcher_; }

  void run_batch(OpRecordBase* const* ops, std::size_t count) override {
    // Partition the batch: pushes first, then pops (§3).
    push_idx_.clear();
    pop_idx_.clear();
    for (std::size_t i = 0; i < count; ++i) {
      auto* op = static_cast<Op*>(ops[i]);
      (op->kind == Kind::Push ? push_idx_ : pop_idx_).push_back(op);
    }

    // PUSH phase: grow if needed, then write all pushes in parallel.
    const std::size_t pushes = push_idx_.size();
    if (size_ + pushes > table_.size()) {
      grow_to(size_ + pushes);
    }
    rt::parallel_for(0, static_cast<std::int64_t>(pushes), [&](std::int64_t i) {
      table_[size_ + static_cast<std::size_t>(i)] =
          push_idx_[static_cast<std::size_t>(i)]->value;
    });
    size_ += pushes;

    // POP phase: pop j takes the j-th element below the new top, in parallel.
    const std::size_t pops = std::min(pop_idx_.size(), size_);
    rt::parallel_for(0, static_cast<std::int64_t>(pops), [&](std::int64_t j) {
      pop_idx_[static_cast<std::size_t>(j)]->out =
          table_[size_ - 1 - static_cast<std::size_t>(j)];
    });
    for (std::size_t j = pops; j < pop_idx_.size(); ++j) {
      pop_idx_[j]->out = std::nullopt;  // underflow
    }
    size_ -= pops;

    // Shrink when under a quarter full (amortized halving).
    if (table_.size() > kInitialCapacity && size_ < table_.size() / 4) {
      shrink();
    }
  }

 private:
  static constexpr std::size_t kInitialCapacity = 8;

  void grow_to(std::size_t needed) {
    std::size_t cap = table_.size();
    while (cap < needed) cap *= 2;
    rebuild(cap);
  }

  void shrink() { rebuild(std::max(kInitialCapacity, table_.size() / 2)); }

  // Table rebuild: allocate new space and copy all live elements in parallel
  // (the Θ(size) batch the amortization pays for).
  void rebuild(std::size_t cap) {
    std::vector<T> bigger(cap);
    rt::parallel_for(0, static_cast<std::int64_t>(size_), [&](std::int64_t i) {
      bigger[static_cast<std::size_t>(i)] =
          std::move(table_[static_cast<std::size_t>(i)]);
    });
    table_ = std::move(bigger);
  }

  std::vector<T> table_;
  std::size_t size_ = 0;
  std::vector<Op*> push_idx_;  // scratch, reused across batches
  std::vector<Op*> pop_idx_;
  Batcher batcher_;
};

}  // namespace batcher::ds
