#include "ds/batched_tree23.hpp"

#include <algorithm>

#include "parallel/sort.hpp"
#include "runtime/api.hpp"
#include "support/config.hpp"

namespace batcher::ds {

namespace {
struct TaggedKey {
  BatchedTree23::Key key;
  std::uint32_t op_index;
  bool operator<(const TaggedKey& o) const {
    return key != o.key ? key < o.key : op_index < o.op_index;
  }
};
}  // namespace

BatchedTree23::BatchedTree23(rt::Scheduler& sched, Batcher::SetupPolicy setup)
    : batcher_(sched, *this, setup) {}

BatchedTree23::Node* BatchedTree23::make_leaf(Key key) {
  Node* n = static_cast<Node*>(arena_.allocate(sizeof(Node)));
  n->min_key = key;
  n->height = 0;
  n->dead = false;
  n->nchild = 0;
  return n;
}

BatchedTree23::Node* BatchedTree23::make_internal(Node* const* children,
                                                  int nchild) {
  BATCHER_DASSERT(nchild >= 2 && nchild <= 3, "2-3 fanout");
  Node* n = static_cast<Node*>(arena_.allocate(sizeof(Node)));
  n->min_key = children[0]->min_key;
  n->height = children[0]->height + 1;
  n->dead = false;
  n->nchild = nchild;
  for (int i = 0; i < nchild; ++i) n->child[i] = children[i];
  return n;
}

const BatchedTree23::Node* BatchedTree23::find_leaf(Key key) const {
  const Node* n = root_;
  if (n == nullptr) return nullptr;
  while (n->height > 0) {
    int i = n->nchild - 1;
    while (i > 0 && n->child[i]->min_key > key) --i;
    n = n->child[i];
  }
  return n;
}

bool BatchedTree23::contains_unsafe(Key key) const {
  const Node* leaf = find_leaf(key);
  return leaf != nullptr && leaf->min_key == key && !leaf->dead;
}

int BatchedTree23::height_unsafe() const {
  return root_ == nullptr ? -1 : root_->height;
}

// ---------------------------------------------------------------------------
// Blocking API.
// ---------------------------------------------------------------------------

bool BatchedTree23::insert(Key key) {
  Op op;
  op.kind = Kind::Insert;
  op.key = key;
  batcher_.batchify(op);
  return op.found;
}

bool BatchedTree23::contains(Key key) {
  Op op;
  op.kind = Kind::Contains;
  op.key = key;
  batcher_.batchify(op);
  return op.found;
}

bool BatchedTree23::erase(Key key) {
  Op op;
  op.kind = Kind::Erase;
  op.key = key;
  batcher_.batchify(op);
  return op.found;
}

bool BatchedTree23::insert_unsafe(Key key) {
  Op op;
  op.kind = Kind::Insert;
  op.key = key;
  OpRecordBase* ops[1] = {&op};
  run_batch(ops, 1);
  return op.found;
}

void BatchedTree23::bulk_build_unsafe(std::span<const Key> sorted_unique_keys) {
  BATCHER_ASSERT(root_ == nullptr, "bulk_build_unsafe requires an empty tree");
  if (sorted_unique_keys.empty()) return;
  root_ = build_from_sorted(sorted_unique_keys, arena_);
  live_size_ = sorted_unique_keys.size();
  dead_count_ = 0;
}

// ---------------------------------------------------------------------------
// BOP.
// ---------------------------------------------------------------------------

void BatchedTree23::run_batch(OpRecordBase* const* ops, std::size_t count) {
  contains_ops_.clear();
  erase_ops_.clear();
  insert_ops_.clear();
  for (std::size_t i = 0; i < count; ++i) {
    Op* op = static_cast<Op*>(ops[i]);
    switch (op->kind) {
      case Kind::Contains: contains_ops_.push_back(op); break;
      case Kind::Erase: erase_ops_.push_back(op); break;
      case Kind::Insert: insert_ops_.push_back(op); break;
    }
  }
  // Phase order (same convention as the skip list): contains sees the
  // pre-batch state, then erases, then inserts.
  if (!contains_ops_.empty()) apply_contains(contains_ops_);
  if (!erase_ops_.empty()) apply_erases(erase_ops_);
  if (!insert_ops_.empty()) apply_inserts(insert_ops_);
}

void BatchedTree23::apply_contains(std::vector<Op*>& ops) {
  rt::parallel_for(
      0, static_cast<std::int64_t>(ops.size()),
      [&](std::int64_t i) {
        Op* op = ops[static_cast<std::size_t>(i)];
        op->found = contains_unsafe(op->key);
      },
      /*grain=*/1);
}

void BatchedTree23::apply_erases(std::vector<Op*>& ops) {
  std::vector<TaggedKey> keys(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    keys[i] = TaggedKey{ops[i]->key, static_cast<std::uint32_t>(i)};
  }
  par::parallel_sort(keys.data(), static_cast<std::int64_t>(keys.size()));

  // Distinct keys touch distinct leaves, so marking is embarrassingly
  // parallel; duplicate erases in a batch lose deterministically.
  rt::parallel_for(
      0, static_cast<std::int64_t>(keys.size()),
      [&](std::int64_t i) {
        const auto idx = static_cast<std::size_t>(i);
        Op* op = ops[keys[idx].op_index];
        if (idx > 0 && keys[idx].key == keys[idx - 1].key) {
          op->found = false;
          return;
        }
        // find_leaf returns a const view; the mark is this batch's exclusive
        // write to that leaf.
        Node* leaf = const_cast<Node*>(find_leaf(keys[idx].key));
        if (leaf != nullptr && leaf->min_key == keys[idx].key && !leaf->dead) {
          leaf->dead = true;
          op->found = true;
        } else {
          op->found = false;
        }
      },
      /*grain=*/1);

  std::size_t erased = 0;
  for (const Op* op : ops) erased += op->found ? 1 : 0;
  dead_count_ += erased;
  live_size_ -= erased;
  if (dead_count_ > live_size_) rebuild();  // more than half dead
}

void BatchedTree23::apply_inserts(std::vector<Op*>& ops) {
  std::vector<TaggedKey> keys(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    keys[i] = TaggedKey{ops[i]->key, static_cast<std::uint32_t>(i)};
  }
  par::parallel_sort(keys.data(), static_cast<std::int64_t>(keys.size()));

  // Pre-pass: resolve keys already present (live -> reject, dead ->
  // resurrect) and batch-internal duplicates.  Distinct keys map to distinct
  // leaves, so the resurrect write is race-free.
  std::vector<std::uint8_t> is_new(keys.size(), 0);
  rt::parallel_for(
      0, static_cast<std::int64_t>(keys.size()),
      [&](std::int64_t i) {
        const auto idx = static_cast<std::size_t>(i);
        Op* op = ops[keys[idx].op_index];
        if (idx > 0 && keys[idx].key == keys[idx - 1].key) {
          op->found = false;  // duplicate within batch
          return;
        }
        Node* leaf = const_cast<Node*>(find_leaf(keys[idx].key));
        if (leaf != nullptr && leaf->min_key == keys[idx].key) {
          if (leaf->dead) {
            leaf->dead = false;  // resurrect a tombstone
            op->found = true;
            is_new[idx] = 2;     // counts toward live size, not tree growth
          } else {
            op->found = false;
          }
        } else {
          op->found = true;
          is_new[idx] = 1;
        }
      },
      /*grain=*/1);

  std::vector<Key> fresh;
  fresh.reserve(keys.size());
  std::size_t resurrected = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (is_new[i] == 1) fresh.push_back(keys[i].key);
    if (is_new[i] == 2) ++resurrected;
  }
  live_size_ += resurrected;
  dead_count_ -= resurrected;
  if (fresh.empty()) return;

  if (root_ == nullptr) {
    root_ = build_from_sorted(fresh, arena_);
  } else if (root_->height == 0) {
    std::vector<Node*> leaves;
    leaves.reserve(fresh.size() + 1);
    bool placed = false;
    for (Key k : fresh) {
      if (!placed && root_->min_key < k) {
        leaves.push_back(root_);
        placed = true;
      }
      leaves.push_back(make_leaf(k));
    }
    if (!placed) leaves.push_back(root_);
    root_ = build_up(std::move(leaves));
  } else {
    std::vector<Node*> top;
    bulk_insert(root_, fresh, top);
    root_ = build_up(std::move(top));
  }
  live_size_ += fresh.size();
}

// ---------------------------------------------------------------------------
// Bulk insertion machinery.
// ---------------------------------------------------------------------------

void BatchedTree23::bulk_insert(Node* node, std::span<const Key> keys,
                                std::vector<Node*>& out) {
  BATCHER_DASSERT(!keys.empty(), "bulk_insert requires keys");
  if (node->height == 1) {
    // Children are leaves; merge the (sorted, fresh) keys in.
    std::vector<Node*> merged;
    merged.reserve(static_cast<std::size_t>(node->nchild) + keys.size());
    std::size_t k = 0;
    for (int c = 0; c < node->nchild; ++c) {
      while (k < keys.size() && keys[k] < node->child[c]->min_key) {
        merged.push_back(make_leaf(keys[k++]));
      }
      merged.push_back(node->child[c]);
    }
    while (k < keys.size()) merged.push_back(make_leaf(keys[k++]));
    regroup(merged, out);
    return;
  }

  // Partition keys among children by router keys: child i takes keys in
  // [child[i]->min_key, child[i+1]->min_key); the leftmost child also takes
  // keys below its own minimum.
  std::size_t cut[4];
  cut[0] = 0;
  cut[static_cast<std::size_t>(node->nchild)] = keys.size();
  for (int i = 1; i < node->nchild; ++i) {
    cut[i] = static_cast<std::size_t>(
        std::lower_bound(keys.begin(), keys.end(), node->child[i]->min_key) -
        keys.begin());
  }

  std::vector<Node*> results[3];
  auto recurse_child = [&](int i) {
    const std::span<const Key> part = keys.subspan(cut[i], cut[i + 1] - cut[i]);
    if (part.empty()) {
      results[i].push_back(node->child[i]);  // untouched subtree passes through
    } else {
      bulk_insert(node->child[i], part, results[i]);
    }
  };
  // Disjoint subtrees: recurse in parallel (binary forking).
  if (node->nchild == 2) {
    rt::parallel_invoke([&] { recurse_child(0); }, [&] { recurse_child(1); });
  } else {
    rt::parallel_invoke([&] { recurse_child(0); },
                        [&] {
                          rt::parallel_invoke([&] { recurse_child(1); },
                                              [&] { recurse_child(2); });
                        });
  }

  std::vector<Node*> merged;
  merged.reserve(results[0].size() + results[1].size() + results[2].size());
  for (int i = 0; i < node->nchild; ++i) {
    merged.insert(merged.end(), results[i].begin(), results[i].end());
  }
  regroup(merged, out);
}

void BatchedTree23::regroup(const std::vector<Node*>& nodes,
                            std::vector<Node*>& out) {
  const std::size_t c = nodes.size();
  if (c == 1) {
    out.push_back(nodes[0]);
    return;
  }
  // Deterministic grouping into 2s and 3s:
  //   c % 3 == 0 -> all groups of 3
  //   c % 3 == 2 -> groups of 3, final group of 2
  //   c % 3 == 1 -> groups of 3, final two groups of 2 (needs c >= 4; c == 1
  //                 was handled above)
  std::size_t i = 0;
  const std::size_t rem = c % 3;
  const std::size_t threes = (rem == 1) ? (c - 4) / 3 : c / 3;
  for (std::size_t g = 0; g < threes; ++g, i += 3) {
    Node* kids[3] = {nodes[i], nodes[i + 1], nodes[i + 2]};
    out.push_back(make_internal(kids, 3));
  }
  while (i < c) {
    BATCHER_DASSERT(c - i >= 2, "regroup remainder must be 2 or 4");
    Node* kids[2] = {nodes[i], nodes[i + 1]};
    out.push_back(make_internal(kids, 2));
    i += 2;
  }
}

BatchedTree23::Node* BatchedTree23::build_up(std::vector<Node*> level) {
  while (level.size() > 1) {
    std::vector<Node*> next;
    next.reserve(level.size() / 2 + 1);
    regroup(level, next);
    level = std::move(next);
  }
  return level[0];
}

// ---------------------------------------------------------------------------
// Tombstone rebuild.
// ---------------------------------------------------------------------------

std::size_t BatchedTree23::count_live(const Node* node) const {
  if (node->height == 0) return node->dead ? 0 : 1;
  std::size_t total = 0;
  for (int i = 0; i < node->nchild; ++i) total += count_live(node->child[i]);
  return total;
}

void BatchedTree23::collect_live(const Node* node, Key* out) const {
  // In-order sequential collect; rebuilds are rare (amortized against the
  // erases that triggered them), so a simple traversal is fine.
  std::size_t pos = 0;
  struct Frame {
    const Node* node;
    int next_child;
  };
  std::vector<Frame> stack;
  stack.push_back({node, 0});
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.node->height == 0) {
      if (!f.node->dead) out[pos++] = f.node->min_key;
      stack.pop_back();
      continue;
    }
    if (f.next_child >= f.node->nchild) {
      stack.pop_back();
      continue;
    }
    const Node* child = f.node->child[f.next_child++];
    stack.push_back({child, 0});
  }
}

BatchedTree23::Node* BatchedTree23::build_from_sorted(std::span<const Key> keys,
                                                      Arena& arena) {
  BATCHER_DASSERT(!keys.empty(), "build_from_sorted requires keys");
  (void)arena;  // nodes come from the member arena via make_leaf/make_internal
  std::vector<Node*> level(keys.size());
  rt::parallel_for(0, static_cast<std::int64_t>(keys.size()),
                   [&](std::int64_t i) {
                     level[static_cast<std::size_t>(i)] =
                         make_leaf(keys[static_cast<std::size_t>(i)]);
                   });
  return build_up(std::move(level));
}

void BatchedTree23::rebuild() {
  if (root_ == nullptr) return;
  std::vector<Key> live(live_size_);
  if (live_size_ > 0) collect_live(root_, live.data());
  // Fresh arena: the old nodes (live and dead alike) are dropped wholesale.
  Arena fresh_arena;
  Arena old = std::move(arena_);
  arena_ = std::move(fresh_arena);
  root_ = live.empty() ? nullptr : build_from_sorted(live, arena_);
  dead_count_ = 0;
  // `old` frees every pre-rebuild node here.
}

// ---------------------------------------------------------------------------
// Invariant checking.
// ---------------------------------------------------------------------------

bool BatchedTree23::check_node(const Node* node, int expected_height) const {
  if (node->height != expected_height) return false;
  if (node->height == 0) return true;
  if (node->nchild < 2 || node->nchild > 3) return false;
  if (node->min_key != node->child[0]->min_key) return false;
  for (int i = 0; i < node->nchild; ++i) {
    if (i > 0 && !(node->child[i - 1]->min_key < node->child[i]->min_key)) {
      return false;
    }
    if (!check_node(node->child[i], expected_height - 1)) return false;
  }
  return true;
}

bool BatchedTree23::check_invariants() const {
  if (root_ == nullptr) return live_size_ == 0;
  if (!check_node(root_, root_->height)) return false;
  // Leaf count (live + dead) must match the bookkeeping.
  std::size_t live = count_live(root_);
  return live == live_size_;
}

}  // namespace batcher::ds
