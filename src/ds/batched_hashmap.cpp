#include "ds/batched_hashmap.hpp"

#include <algorithm>

#include "parallel/scan.hpp"
#include "parallel/sort.hpp"
#include "runtime/api.hpp"
#include "support/config.hpp"

namespace batcher::ds {

namespace {
// Fibonacci-style mixer; buckets_.size() is always a power of two.
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}
}  // namespace

BatchedHashMap::BatchedHashMap(rt::Scheduler& sched, Batcher::SetupPolicy setup,
                               ApplyPolicy apply)
    : buckets_(64), apply_(apply), batcher_(sched, *this, setup) {}

std::size_t BatchedHashMap::bucket_of(Key key, std::size_t nbuckets) const {
  return static_cast<std::size_t>(mix(static_cast<std::uint64_t>(key))) &
         (nbuckets - 1);
}

// ---------------------------------------------------------------------------
// Blocking API.
// ---------------------------------------------------------------------------

void BatchedHashMap::put(Key key, Value value) {
  Op op;
  op.kind = Kind::Put;
  op.key = key;
  op.value = value;
  batcher_.batchify(op);
}

std::optional<BatchedHashMap::Value> BatchedHashMap::get(Key key) {
  Op op;
  op.kind = Kind::Get;
  op.key = key;
  batcher_.batchify(op);
  return op.out;
}

bool BatchedHashMap::erase(Key key) {
  Op op;
  op.kind = Kind::Erase;
  op.key = key;
  batcher_.batchify(op);
  return op.found;
}

BatchedHashMap::Value BatchedHashMap::update_add(Key key, Value delta) {
  Op op;
  op.kind = Kind::Update;
  op.key = key;
  op.value = delta;
  batcher_.batchify(op);
  return *op.out;
}

// ---------------------------------------------------------------------------
// Unsynchronized API.
// ---------------------------------------------------------------------------

void BatchedHashMap::put_unsafe(Key key, Value value) {
  Bucket& b = buckets_[bucket_of(key, buckets_.size())];
  for (Entry& e : b) {
    if (e.key == key) {
      e.value = value;
      return;
    }
  }
  b.push_back(Entry{key, value});
  ++size_;
  maybe_resize();
}

std::optional<BatchedHashMap::Value> BatchedHashMap::get_unsafe(Key key) const {
  const Bucket& b = buckets_[bucket_of(key, buckets_.size())];
  for (const Entry& e : b) {
    if (e.key == key) return e.value;
  }
  return std::nullopt;
}

bool BatchedHashMap::check_invariants() const {
  std::size_t count = 0;
  for (std::size_t bi = 0; bi < buckets_.size(); ++bi) {
    for (const Entry& e : buckets_[bi]) {
      if (bucket_of(e.key, buckets_.size()) != bi) return false;
      ++count;
    }
  }
  return count == size_;
}

// ---------------------------------------------------------------------------
// BOP.
// ---------------------------------------------------------------------------

void BatchedHashMap::apply_to_bucket(Bucket& bucket, Op* op) {
  auto it = std::find_if(bucket.begin(), bucket.end(),
                         [&](const Entry& e) { return e.key == op->key; });
  switch (op->kind) {
    case Kind::Put:
      if (it != bucket.end()) {
        it->value = op->value;
      } else {
        bucket.push_back(Entry{op->key, op->value});
      }
      break;
    case Kind::Get:
      op->out = (it != bucket.end()) ? std::optional<Value>(it->value)
                                     : std::nullopt;
      break;
    case Kind::Erase:
      if (it != bucket.end()) {
        *it = bucket.back();
        bucket.pop_back();
        op->found = true;
      } else {
        op->found = false;
      }
      break;
    case Kind::Update:
      if (it != bucket.end()) {
        it->value += op->value;
        op->out = it->value;
      } else {
        bucket.push_back(Entry{op->key, op->value});
        op->out = op->value;
      }
      break;
  }
}

void BatchedHashMap::run_batch(OpRecordBase* const* ops, std::size_t count) {
  if (count == 0) return;
  if (apply_ == ApplyPolicy::Legacy) {
    run_batch_legacy(ops, count);
  } else {
    run_batch_sortmerge(ops, count);
  }
  maybe_resize();
}

void BatchedHashMap::run_batch_legacy(OpRecordBase* const* ops,
                                      std::size_t count) {
  // Group by bucket, preserving working-set order within a bucket via the
  // low bits of the sort key.
  order_.clear();
  order_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Op* op = static_cast<Op*>(ops[i]);
    const std::uint64_t bucket =
        static_cast<std::uint64_t>(bucket_of(op->key, buckets_.size()));
    order_.emplace_back((bucket << 20) | static_cast<std::uint64_t>(i), op);
  }
  par::parallel_sort(order_.data(), static_cast<std::int64_t>(order_.size()),
                     [](const auto& a, const auto& b) { return a.first < b.first; });

  // Find group boundaries, then apply groups in parallel.  Groups touch
  // disjoint buckets, so the only shared bookkeeping is the size counter,
  // which is accumulated from per-group deltas after the parallel phase.
  std::vector<std::size_t> group_starts;
  group_starts.push_back(0);
  for (std::size_t i = 1; i < order_.size(); ++i) {
    if ((order_[i].first >> 20) != (order_[i - 1].first >> 20)) {
      group_starts.push_back(i);
    }
  }
  group_starts.push_back(order_.size());

  const std::size_t ngroups = group_starts.size() - 1;
  std::vector<std::int64_t> delta(ngroups, 0);
  rt::parallel_for(
      0, static_cast<std::int64_t>(ngroups),
      [&](std::int64_t g) {
        const auto gi = static_cast<std::size_t>(g);
        const std::size_t lo = group_starts[gi];
        const std::size_t hi = group_starts[gi + 1];
        const std::size_t bucket_index =
            static_cast<std::size_t>(order_[lo].first >> 20);
        Bucket& bucket = buckets_[bucket_index];
        const std::int64_t before = static_cast<std::int64_t>(bucket.size());
        for (std::size_t i = lo; i < hi; ++i) {
          apply_to_bucket(bucket, order_[i].second);
        }
        delta[gi] = static_cast<std::int64_t>(bucket.size()) - before;
      },
      /*grain=*/1);

  std::int64_t total = 0;
  for (std::int64_t d : delta) total += d;
  size_ = static_cast<std::size_t>(static_cast<std::int64_t>(size_) + total);
}

void BatchedHashMap::run_batch_sortmerge(OpRecordBase* const* ops,
                                         std::size_t count) {
  // Gather + sort by (bucket, key, ws index): one sort yields the per-key
  // combine groups and, via their heads, the per-bucket apply groups.
  recs_.resize(count);
  rt::parallel_for(
      0, static_cast<std::int64_t>(count),
      [&](std::int64_t i) {
        Op* op = static_cast<Op*>(ops[static_cast<std::size_t>(i)]);
        recs_[static_cast<std::size_t>(i)] = SortRec{
            static_cast<std::uint64_t>(bucket_of(op->key, buckets_.size())),
            op->key, static_cast<std::uint32_t>(i), op};
      },
      /*grain=*/1);
  par::parallel_sort(recs_.data(), static_cast<std::int64_t>(recs_.size()));

  // Distinct-key groups via scan-pack (same key implies same bucket, so the
  // key test alone would miss equal keys across bucket boundaries only if
  // such records existed — they cannot).
  const std::int64_t ngroups = par::pack_indices(
      static_cast<std::int64_t>(count),
      [&](std::int64_t i) {
        const auto idx = static_cast<std::size_t>(i);
        return i == 0 || recs_[idx - 1].key != recs_[idx].key;
      },
      key_heads_);
  key_heads_.push_back(static_cast<std::uint32_t>(count));

  // Combine: one pre-batch lookup per distinct key (read-only over the
  // buckets), then that key's ops replayed serially in working-set order.
  // Every op's observable output (Get/Update out, Erase found) is produced
  // here; what remains for the merge is one net write per key.
  net_present_.resize(static_cast<std::size_t>(ngroups));
  net_value_.resize(static_cast<std::size_t>(ngroups));
  rt::parallel_for(
      0, ngroups,
      [&](std::int64_t g) {
        const auto gi = static_cast<std::size_t>(g);
        const std::size_t lo = key_heads_[gi];
        const std::size_t hi = key_heads_[gi + 1];
        const Key key = recs_[lo].key;
        const Bucket& bucket = buckets_[recs_[lo].bucket];
        bool present = false;
        Value v = 0;
        for (const Entry& e : bucket) {
          if (e.key == key) {
            present = true;
            v = e.value;
            break;
          }
        }
        for (std::size_t i = lo; i < hi; ++i) {
          Op* op = recs_[i].op;
          switch (op->kind) {
            case Kind::Put:
              present = true;
              v = op->value;
              break;
            case Kind::Get:
              op->out = present ? std::optional<Value>(v) : std::nullopt;
              break;
            case Kind::Erase:
              op->found = present;
              present = false;
              break;
            case Kind::Update:
              if (!present) {
                present = true;
                v = 0;
              }
              v += op->value;
              op->out = v;
              break;
          }
        }
        net_present_[gi] = present ? 1 : 0;
        net_value_[gi] = v;
      },
      /*grain=*/1);

  // Merge: group the distinct keys by bucket (scan over group heads) and
  // apply each bucket's net effects with one search per key.  Distinct
  // bucket groups touch disjoint buckets.
  const std::int64_t nbgroups = par::pack_indices(
      ngroups,
      [&](std::int64_t g) {
        const auto gi = static_cast<std::size_t>(g);
        return g == 0 ||
               recs_[key_heads_[gi - 1]].bucket != recs_[key_heads_[gi]].bucket;
      },
      bucket_heads_);
  bucket_heads_.push_back(static_cast<std::uint32_t>(ngroups));

  std::vector<std::int64_t> delta(static_cast<std::size_t>(nbgroups), 0);
  rt::parallel_for(
      0, nbgroups,
      [&](std::int64_t bg) {
        const auto bgi = static_cast<std::size_t>(bg);
        Bucket& bucket =
            buckets_[recs_[key_heads_[bucket_heads_[bgi]]].bucket];
        const std::int64_t before = static_cast<std::int64_t>(bucket.size());
        for (std::uint32_t g = bucket_heads_[bgi]; g < bucket_heads_[bgi + 1];
             ++g) {
          const Key key = recs_[key_heads_[g]].key;
          auto it = std::find_if(bucket.begin(), bucket.end(),
                                 [&](const Entry& e) { return e.key == key; });
          if (net_present_[g]) {
            if (it != bucket.end()) {
              it->value = net_value_[g];
            } else {
              bucket.push_back(Entry{key, net_value_[g]});
            }
          } else if (it != bucket.end()) {
            *it = bucket.back();
            bucket.pop_back();
          }
        }
        delta[bgi] = static_cast<std::int64_t>(bucket.size()) - before;
      },
      /*grain=*/1);

  const std::int64_t total = par::reduce<std::int64_t>(
      nbgroups, [&](std::int64_t i) { return delta[static_cast<std::size_t>(i)]; },
      [](std::int64_t a, std::int64_t b) { return a + b; }, 0);
  size_ = static_cast<std::size_t>(static_cast<std::int64_t>(size_) + total);
}

void BatchedHashMap::maybe_resize() {
  if (size_ <= buckets_.size() * 2) return;
  std::size_t nbuckets = buckets_.size();
  while (size_ > nbuckets * 2) nbuckets *= 2;

  std::vector<Bucket> fresh(nbuckets);
  // Rehash: each new bucket pulls from the old buckets that can map to it.
  // With power-of-two sizing, old bucket b maps to new buckets b + k*old_n,
  // so new bucket j draws only from old bucket j & (old_n - 1): each new
  // bucket reads one old bucket, and distinct new buckets write disjointly.
  const std::size_t old_n = buckets_.size();
  rt::parallel_for(
      0, static_cast<std::int64_t>(nbuckets),
      [&](std::int64_t j) {
        const auto nj = static_cast<std::size_t>(j);
        const Bucket& src = buckets_[nj & (old_n - 1)];
        for (const Entry& e : src) {
          if (bucket_of(e.key, nbuckets) == nj) fresh[nj].push_back(e);
        }
      },
      /*grain=*/1);
  buckets_ = std::move(fresh);
}

}  // namespace batcher::ds
