// Shared batch-prep layer for the sort-merge BOPs (DESIGN.md §16).
//
// Every rewritten structure (skip list, weight-balanced tree, hash map) runs
// the same prefix of phases on its working set:
//
//   gather  — copy each op's key(s) into a flat record array; variable
//             multiplicity (MultiInsert) handled with one exclusive scan of
//             per-source counts followed by a parallel scatter;
//   sort    — parallel::msort on (key, working-set index), ties broken by
//             ws index so "first/last op on a key" is deterministic;
//   group   — flag the first record of every distinct key and pack the flag
//             positions with a scan (par::pack_indices), yielding the
//             distinct-key groups in O(lg)-ish span instead of a serial
//             boundary walk;
//   combine — structure-specific: the per-group functor sees its records in
//             working-set order (the sort's tie-break), so last-writer (Put)
//             and delta-combining (Update) semantics fall out of a serial
//             in-order walk of one key's ops while distinct keys combine in
//             parallel.
//
// The merge phase (splice / bulk tree merge / bucket apply) stays in the
// structure; this header owns everything before it.  Per Invariant 1 nothing
// here synchronizes.
#pragma once

#include <cstdint>
#include <vector>

#include "parallel/scan.hpp"
#include "parallel/sort.hpp"
#include "runtime/api.hpp"

namespace batcher::ds {

// Which BOP apply implementation a structure uses.  SortMerge is the default;
// Legacy keeps the pre-rewrite serial-splice/apply paths selectable for the
// A/B ablation lanes (same pattern as Batcher::SetupPolicy scan-vs-announce).
enum class ApplyPolicy : std::uint8_t { Legacy, SortMerge };

namespace prep {

// A batch record: one key plus the index of the op it came from.  Ordered by
// key, then by working-set index, so equal keys keep submission order.
template <typename Key>
struct Tagged {
  Key key;
  std::uint32_t ws;

  bool operator<(const Tagged& o) const {
    return key != o.key ? key < o.key : ws < o.ws;
  }
};

// Gather phase with per-source multiplicities.  `size_of(s)` gives source
// s's record count; `emit(s, base)` must write exactly that many records at
// out[base..).  Offsets come from one exclusive scan, so the gather itself
// is a flat parallel_for.
template <typename Rec, typename SizeFn, typename EmitFn>
void gather(std::size_t num_sources, const SizeFn& size_of, const EmitFn& emit,
            std::vector<Rec>& out, std::vector<std::uint32_t>& offsets) {
  offsets.resize(num_sources);
  rt::parallel_for(
      0, static_cast<std::int64_t>(num_sources),
      [&](std::int64_t s) {
        offsets[static_cast<std::size_t>(s)] =
            static_cast<std::uint32_t>(size_of(static_cast<std::size_t>(s)));
      },
      /*grain=*/1);
  const std::uint32_t total = par::scan_exclusive(
      offsets.data(), static_cast<std::int64_t>(num_sources),
      [](std::uint32_t a, std::uint32_t b) { return a + b; }, 0u);
  out.resize(total);
  rt::parallel_for(
      0, static_cast<std::int64_t>(num_sources),
      [&](std::int64_t s) {
        emit(static_cast<std::size_t>(s),
             static_cast<std::size_t>(offsets[static_cast<std::size_t>(s)]));
      },
      /*grain=*/1);
}

// Sort + group: sorts `recs` (by operator<) and packs the positions where a
// new key starts into `heads`, appending recs.size() as a sentinel.  Group g
// spans [heads[g], heads[g+1]) and holds one distinct key's ops in
// working-set order.
template <typename Rec>
void sort_and_group(std::vector<Rec>& recs,
                    std::vector<std::uint32_t>& heads) {
  par::parallel_sort(recs.data(), static_cast<std::int64_t>(recs.size()));
  par::pack_indices(
      static_cast<std::int64_t>(recs.size()),
      [&](std::int64_t i) {
        return i == 0 ||
               recs[static_cast<std::size_t>(i - 1)].key <
                   recs[static_cast<std::size_t>(i)].key;
      },
      heads);
  heads.push_back(static_cast<std::uint32_t>(recs.size()));
}

// Combine phase driver: applies `f(group_index, lo, hi)` to every distinct-
// key group in parallel.
template <typename Fn>
void for_each_group(const std::vector<std::uint32_t>& heads, const Fn& f) {
  if (heads.size() < 2) return;
  rt::parallel_for(
      0, static_cast<std::int64_t>(heads.size() - 1),
      [&](std::int64_t g) {
        const auto gi = static_cast<std::size_t>(g);
        f(gi, static_cast<std::size_t>(heads[gi]),
          static_cast<std::size_t>(heads[gi + 1]));
      },
      /*grain=*/1);
}

}  // namespace prep
}  // namespace batcher::ds
