// Batched 2-3 search tree (paper §3, after Paul, Vishkin & Wagener's parallel
// 2-3 tree dictionary).
//
// Leaf-oriented 2-3 tree: keys live in leaves, every internal node has 2 or 3
// children, and all leaves sit at the same depth.  The batched insert is the
// PVW pipeline flattened into fork/join recursion:
//
//   1. sort the batch's keys (parallel merge sort) and drop duplicates;
//   2. recursively partition the sorted keys among a node's children by the
//      router keys and recurse *in parallel* — the subtrees are disjoint, so
//      no concurrency control is needed (Invariant 1 supplies the rest);
//   3. on the way back up, each node regroups its (possibly > 3) children
//      into fresh 2-3 nodes; overflow propagates as the returned node list,
//      and the root grows new levels when its list has more than one entry.
//
// A size-x batch costs O(x lg n) work for the searches plus O(x lg x) for the
// sort, with O(lg n + lg x) span — the quantities the paper plugs into
// Theorem 1 to get the O((T1 + n lg n)/P + m lg n + T∞) search-tree bound.
//
// ERASE uses tombstones: a batch of erases marks leaves dead in parallel;
// when more than half the leaves are dead the whole tree is rebuilt from the
// live keys (parallel collect + parallel bottom-up build), keeping the
// amortized cost per erase at O(lg n).  This is the standard batched
// mark-and-rebuild scheme; the paper's examples only exercise inserts.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "batcher/batcher.hpp"
#include "batcher/op_record.hpp"
#include "support/arena.hpp"

namespace batcher::ds {

class BatchedTree23 final : public BatchedStructure {
 public:
  using Key = std::int64_t;

  enum class Kind : std::uint8_t { Insert, Contains, Erase };

  struct Op : OpRecordBase {
    Kind kind = Kind::Insert;
    Key key = 0;
    bool found = false;  // Contains/Erase hit; Insert newly inserted
  };

  explicit BatchedTree23(rt::Scheduler& sched,
                         Batcher::SetupPolicy setup = Batcher::kDefaultSetup);

  BatchedTree23(const BatchedTree23&) = delete;
  BatchedTree23& operator=(const BatchedTree23&) = delete;

  // --- blocking, implicitly batched API ---
  bool insert(Key key);
  bool contains(Key key);
  bool erase(Key key);

  // --- unsynchronized API for setup/inspection outside runs ---
  bool insert_unsafe(Key key);          // routed through run_batch machinery
  void bulk_build_unsafe(std::span<const Key> sorted_unique_keys);
  bool contains_unsafe(Key key) const;
  std::size_t size_unsafe() const { return live_size_; }
  int height_unsafe() const;

  // Structural self-check: uniform leaf depth, 2-3 fanout, router keys equal
  // to subtree minima, sorted leaf order.  For tests.
  bool check_invariants() const;

  Batcher& batcher() { return batcher_; }

  void run_batch(OpRecordBase* const* ops, std::size_t count) override;

 private:
  struct Node {
    Key min_key;    // minimum key in the subtree (router)
    int height;     // 0 = leaf
    // Leaf payload:
    bool dead;
    // Internal payload:
    int nchild;
    Node* child[3];
  };

  Node* make_leaf(Key key);
  Node* make_internal(Node* const* children, int nchild);

  const Node* find_leaf(Key key) const;

  // Inserts sorted distinct keys into the subtree at `node`; appends the 1+
  // replacement nodes (same height as `node`) to `out`.
  void bulk_insert(Node* node, std::span<const Key> keys,
                   std::vector<Node*>& out);
  // Regroups >= 2 same-height nodes into fresh 2-3 parents; appends to out.
  void regroup(const std::vector<Node*>& nodes, std::vector<Node*>& out);
  // Collapses a list of same-height siblings into a single root.
  Node* build_up(std::vector<Node*> level);

  void apply_contains(std::vector<Op*>& ops);
  void apply_erases(std::vector<Op*>& ops);
  void apply_inserts(std::vector<Op*>& ops);

  std::size_t count_live(const Node* node) const;
  void collect_live(const Node* node, Key* out) const;
  Node* build_from_sorted(std::span<const Key> keys, Arena& arena);
  void rebuild();

  bool check_node(const Node* node, int expected_height) const;

  Node* root_ = nullptr;  // nullptr = empty tree; may be a bare leaf
  std::size_t live_size_ = 0;
  std::size_t dead_count_ = 0;
  Arena arena_;

  std::vector<Op*> contains_ops_, erase_ops_, insert_ops_;  // batch scratch
  Batcher batcher_;
};

}  // namespace batcher::ds
