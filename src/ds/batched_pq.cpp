#include "ds/batched_pq.hpp"

#include <utility>

#include "parallel/reduce.hpp"
#include "runtime/api.hpp"
#include "support/config.hpp"

namespace batcher::ds {

BatchedPriorityQueue::BatchedPriorityQueue(rt::Scheduler& sched,
                                           Batcher::SetupPolicy setup)
    : batcher_(sched, *this, setup) {}

BatchedPriorityQueue::Node* BatchedPriorityQueue::make_node(Key key) {
  Node* n;
  if (free_list_ != nullptr) {
    n = free_list_;
    free_list_ = n->sibling;
  } else {
    n = static_cast<Node*>(arena_.allocate(sizeof(Node)));
  }
  n->key = key;
  n->child = nullptr;
  n->sibling = nullptr;
  return n;
}

void BatchedPriorityQueue::recycle(Node* node) {
  node->sibling = free_list_;
  free_list_ = node;
}

BatchedPriorityQueue::Node* BatchedPriorityQueue::meld(Node* a, Node* b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  if (b->key < a->key) std::swap(a, b);
  // b becomes a's leftmost child.
  b->sibling = a->child;
  a->child = b;
  return a;
}

BatchedPriorityQueue::Node* BatchedPriorityQueue::combine_siblings(Node* first) {
  if (first == nullptr) return nullptr;
  // Two-pass pairing: left-to-right pairwise melds, then right-to-left fold.
  std::vector<Node*> pairs;
  while (first != nullptr) {
    Node* a = first;
    Node* b = first->sibling;
    first = (b != nullptr) ? b->sibling : nullptr;
    a->sibling = nullptr;
    if (b != nullptr) b->sibling = nullptr;
    pairs.push_back(meld(a, b));
  }
  Node* result = pairs.back();
  for (std::size_t i = pairs.size() - 1; i-- > 0;) {
    result = meld(pairs[i], result);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Blocking API.
// ---------------------------------------------------------------------------

void BatchedPriorityQueue::insert(Key key) {
  Op op;
  op.kind = Kind::Insert;
  op.key = key;
  batcher_.batchify(op);
}

std::optional<BatchedPriorityQueue::Key> BatchedPriorityQueue::extract_min() {
  Op op;
  op.kind = Kind::ExtractMin;
  batcher_.batchify(op);
  return op.out;
}

// ---------------------------------------------------------------------------
// Unsynchronized API.
// ---------------------------------------------------------------------------

void BatchedPriorityQueue::insert_unsafe(Key key) {
  root_ = meld(root_, make_node(key));
  ++size_;
}

std::optional<BatchedPriorityQueue::Key>
BatchedPriorityQueue::extract_min_unsafe() {
  if (root_ == nullptr) return std::nullopt;
  Node* old = root_;
  const Key key = old->key;
  root_ = combine_siblings(old->child);
  recycle(old);
  --size_;
  return key;
}

std::optional<BatchedPriorityQueue::Key>
BatchedPriorityQueue::peek_min_unsafe() const {
  if (root_ == nullptr) return std::nullopt;
  return root_->key;
}

bool BatchedPriorityQueue::check_invariants() const {
  // Heap order: every child's key >= its parent's; node count matches size_.
  std::size_t count = 0;
  std::vector<const Node*> stack;
  if (root_ != nullptr) stack.push_back(root_);
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    ++count;
    for (const Node* c = n->child; c != nullptr; c = c->sibling) {
      if (c->key < n->key) return false;
      stack.push_back(c);
    }
  }
  return count == size_;
}

// ---------------------------------------------------------------------------
// BOP.
// ---------------------------------------------------------------------------

void BatchedPriorityQueue::run_batch(OpRecordBase* const* ops,
                                     std::size_t count) {
  insert_ops_.clear();
  extract_ops_.clear();
  for (std::size_t i = 0; i < count; ++i) {
    Op* op = static_cast<Op*>(ops[i]);
    (op->kind == Kind::Insert ? insert_ops_ : extract_ops_).push_back(op);
  }

  // INSERT phase: build the batch heap with a parallel meld reduction
  // (meld is O(1), so the reduction is O(x) work, O(lg x) span), then one
  // meld into the main heap.
  if (!insert_ops_.empty()) {
    // Allocation is sequential (the arena/free list are single-threaded by
    // design); only the meld reduction runs in parallel, and each meld
    // touches a disjoint pair of nodes.
    std::vector<Node*> nodes(insert_ops_.size());
    for (std::size_t i = 0; i < insert_ops_.size(); ++i) {
      nodes[i] = make_node(insert_ops_[i]->key);
    }
    Node* batch_heap = par::parallel_reduce<Node*>(
        0, static_cast<std::int64_t>(nodes.size()),
        static_cast<Node*>(nullptr),
        [&](std::int64_t i) { return nodes[static_cast<std::size_t>(i)]; },
        [](Node* a, Node* b) { return meld(a, b); },
        /*grain=*/1);
    root_ = meld(root_, batch_heap);
    size_ += insert_ops_.size();
  }

  // EXTRACTMIN phase: sequential pops, ascending, in working-set order.
  for (Op* op : extract_ops_) {
    op->out = extract_min_unsafe();
  }
}

}  // namespace batcher::ds
