// Batched skip list — the data structure of the paper's experimental
// evaluation (§7).
//
// The BOP follows the paper's three-step batch insert:
//   1. gather the batch's keys (parallel, offsets via prefix sums) and sort
//      them (parallel merge sort);
//   2. search the main list for every key's per-level predecessors and
//      successors (read-only, embarrassingly parallel);
//   3. splice the new nodes into the main list.
//
// Step 3 comes in two selectable flavours (ApplyPolicy):
//   * SortMerge (default) — per-level divide-and-conquer splice: new nodes
//     sharing a pre-batch level-l predecessor form a contiguous segment;
//     segments with distinct predecessors touch disjoint pointers, so every
//     node writes its own forward pointer and each segment head rewires the
//     shared predecessor, all in one flat parallel_for per level (levels are
//     themselves independent).  Erases unlink the same way: victims at a
//     level split into chain-adjacent runs and each run's single live
//     predecessor is rewired past the run.  s(n) = O(lg n · lg x) span.
//   * Legacy — the paper-prototype sequential splice / finger-walk erase,
//     kept selectable for the A/B span ablation (Θ(x) span).
//
// Batches may mix operation kinds.  Phase order within a batch (documented
// semantics; the paper leaves it open): CONTAINS observes the pre-batch
// state, then ERASE, then INSERT.  Each op record also supports the paper's
// experimental trick of carrying many keys per record (their BATCHIFY call
// created 100 insertion records at once) via MultiInsert.
//
// Following Invariant 1, nothing here is synchronized: no locks, no atomics.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "batcher/batcher.hpp"
#include "batcher/op_record.hpp"
#include "ds/batch_prep.hpp"
#include "support/rng.hpp"

namespace batcher::ds {

class BatchedSkipList final : public BatchedStructure {
 public:
  using Key = std::int64_t;

  enum class Kind : std::uint8_t {
    Insert,
    MultiInsert,
    Contains,
    Erase,
    Successor,   // smallest key >= probe -> out_key
    RangeCount,  // #keys in [key, key2] -> count
  };

  struct Op : OpRecordBase {
    Kind kind = Kind::Insert;
    Key key = 0;                   // Insert / Contains / Erase / read probes
    Key key2 = 0;                  // RangeCount upper bound
    const Key* keys = nullptr;     // MultiInsert
    std::size_t num_keys = 0;      // MultiInsert
    bool found = false;            // result: Contains / Erase hit, or Insert
                                   // actually inserted a new key
    std::int64_t count = 0;        // RangeCount result
    std::optional<Key> out_key;    // Successor result
  };

  explicit BatchedSkipList(rt::Scheduler& sched,
                           std::uint64_t seed = 0xdecafbadULL,
                           Batcher::SetupPolicy setup = Batcher::kDefaultSetup,
                           ApplyPolicy apply = ApplyPolicy::SortMerge);
  ~BatchedSkipList() override;

  BatchedSkipList(const BatchedSkipList&) = delete;
  BatchedSkipList& operator=(const BatchedSkipList&) = delete;

  // --- blocking, implicitly batched operations (algorithm-programmer API) ---
  bool insert(Key key);
  void multi_insert(std::span<const Key> keys);
  bool contains(Key key);
  bool erase(Key key);
  // Smallest key >= probe, if any.
  std::optional<Key> successor(Key probe);
  // Number of keys in [lo, hi].  Costs O(lg n + answer): the count walks the
  // level-0 chain across the range.
  std::int64_t range_count(Key lo, Key hi);

  // --- unsynchronized operations for setup/inspection outside runs ---
  bool insert_unsafe(Key key);      // used to pre-populate before timing
  bool contains_unsafe(Key key) const;
  std::size_t size_unsafe() const { return size_; }
  int height_unsafe() const { return height_; }

  // Structural self-check: sorted level-0 chain, every level a sublist of
  // the level below, size consistent.  For tests.
  bool check_invariants() const;

  Batcher& batcher() { return batcher_; }
  ApplyPolicy apply_policy() const { return apply_; }

  // BOP.
  void run_batch(OpRecordBase* const* ops, std::size_t count) override;

 private:
  static constexpr int kMaxHeight = 24;

  struct Node {
    Key key;
    int height;
    bool erased;    // set when unlinked; lets a later erase in the same batch
                    // detect that its recorded predecessor is dead
    Node* next[1];  // flexible: `height` pointers, allocated by arena
  };

  Node* allocate_node(Key key, int height);
  // Reserves `bytes` of contiguous arena space (16-byte aligned) so a batch
  // can carve per-node offsets with one scan and initialize in parallel.
  char* allocate_bulk(std::size_t bytes);
  int random_height();
  static int height_from_bits(std::uint64_t bits);
  // Per-level predecessors of `key` (strictly smaller), highest levels first
  // filled with head_.  `preds` must have room for kMaxHeight entries.  If
  // `succs` is non-null it receives each predecessor's pre-batch level-l
  // successor (preds[l]->next[l] at search time).
  void find_preds(Key key, Node** preds, Node** succs = nullptr) const;
  Node* find_node(Key key) const;  // level-0 node with exact key, or nullptr

  void apply_reads(std::vector<Op*>& ops);
  void apply_erases(std::vector<Op*>& ops);
  void apply_erases_legacy(std::vector<Op*>& ops,
                           const std::vector<prep::Tagged<Key>>& keys);
  void apply_erases_sortmerge(std::vector<Op*>& ops,
                              const std::vector<prep::Tagged<Key>>& keys);
  void apply_inserts(const std::vector<Op*>& single,
                     const std::vector<Op*>& multi);
  void apply_inserts_legacy(const std::vector<Op*>& single,
                            const std::vector<Op*>& multi,
                            const std::vector<prep::Tagged<Key>>& keys);
  void apply_inserts_sortmerge(const std::vector<Op*>& single,
                               const std::vector<Op*>& multi,
                               const std::vector<prep::Tagged<Key>>& keys);

  Node* head_;
  int height_ = 1;     // number of levels currently in use
  std::size_t size_ = 0;
  Xoshiro256 rng_;

  // Bump-pointer arena.  Erased nodes are unlinked but reclaimed only at
  // destruction: with at most one batch running there is no safe-memory-
  // reclamation problem to solve, and the benchmarks are insert-dominated.
  std::vector<char*> arena_blocks_;
  std::size_t arena_used_ = 0;
  std::size_t arena_cap_ = 0;

  // Scratch reused across batches.
  std::vector<Op*> contains_ops_, erase_ops_, insert_ops_, multi_ops_;
  std::vector<Key> batch_keys_;
  std::vector<std::uint32_t> key_offsets_;
  std::vector<Node*> pred_scratch_;
  std::vector<Node*> succ_scratch_;
  std::vector<std::uint8_t> flag_scratch_;
  std::vector<std::uint32_t> live_index_;     // packed fresh/victim positions
  std::vector<Node*> node_scratch_;           // new nodes / victims, key order
  std::vector<int> height_scratch_;
  std::vector<std::size_t> offset_scratch_;   // per-node arena byte offsets

  ApplyPolicy apply_;
  Batcher batcher_;
};

}  // namespace batcher::ds
