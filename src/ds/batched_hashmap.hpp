// Batched hash map: chained buckets with sort-merge batch application.
//
// The default (SortMerge) BOP sorts the batch by (bucket, key, working-set
// index), scan-packs the distinct-key groups, and runs a per-key combine
// pass in parallel: one pre-batch lookup per distinct key, then that key's
// ops replayed serially in working-set order (so Get/Update results and
// last-writer/delta-combining semantics are exact) folding into a single net
// effect.  A second scan groups keys by bucket and applies the net effects
// with one search per distinct key.  Operations on different keys commute,
// so per-key combining preserves the observable working-set-order semantics
// — the strongest of the batched structures here — at W(n) = O(n) expected
// work and s(n) = O(lg n + max same-key run + max keys-per-bucket) span.
//
// ApplyPolicy::Legacy keeps the pre-rewrite path (sort by (bucket, ws),
// serial group-boundary walk, per-bucket serial replay with one bucket scan
// per op) selectable for the A/B span ablation.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "batcher/batcher.hpp"
#include "batcher/op_record.hpp"
#include "ds/batch_prep.hpp"

namespace batcher::ds {

class BatchedHashMap final : public BatchedStructure {
 public:
  using Key = std::int64_t;
  using Value = std::int64_t;

  enum class Kind : std::uint8_t { Put, Get, Erase, Update };

  struct Op : OpRecordBase {
    Kind kind = Kind::Put;
    Key key = 0;
    Value value = 0;               // Put argument / Update delta
    std::optional<Value> out;      // Get result / Update post-value
    bool found = false;            // Erase hit
  };

  explicit BatchedHashMap(rt::Scheduler& sched,
                          Batcher::SetupPolicy setup = Batcher::kDefaultSetup,
                          ApplyPolicy apply = ApplyPolicy::SortMerge);

  BatchedHashMap(const BatchedHashMap&) = delete;
  BatchedHashMap& operator=(const BatchedHashMap&) = delete;

  // --- blocking, implicitly batched API ---
  void put(Key key, Value value);
  std::optional<Value> get(Key key);
  bool erase(Key key);
  // Read-modify-write: adds `delta` to the entry (inserting 0 first if
  // absent) and returns the new value.  Histogram building in one op.
  Value update_add(Key key, Value delta);

  // --- unsynchronized API (outside runs) ---
  void put_unsafe(Key key, Value value);
  std::optional<Value> get_unsafe(Key key) const;
  std::size_t size_unsafe() const { return size_; }
  std::size_t bucket_count_unsafe() const { return buckets_.size(); }

  bool check_invariants() const;

  Batcher& batcher() { return batcher_; }
  ApplyPolicy apply_policy() const { return apply_; }

  void run_batch(OpRecordBase* const* ops, std::size_t count) override;

 private:
  struct Entry {
    Key key;
    Value value;
  };
  using Bucket = std::vector<Entry>;

  // SortMerge batch record, ordered (bucket, key, working-set index) so one
  // sort yields both the per-key combine groups and the per-bucket apply
  // groups.
  struct SortRec {
    std::uint64_t bucket;
    Key key;
    std::uint32_t ws;
    Op* op;

    bool operator<(const SortRec& o) const {
      if (bucket != o.bucket) return bucket < o.bucket;
      if (key != o.key) return key < o.key;
      return ws < o.ws;
    }
  };

  std::size_t bucket_of(Key key, std::size_t nbuckets) const;
  void apply_to_bucket(Bucket& bucket, Op* op);
  void run_batch_legacy(OpRecordBase* const* ops, std::size_t count);
  void run_batch_sortmerge(OpRecordBase* const* ops, std::size_t count);
  void maybe_resize();

  std::vector<Bucket> buckets_;
  std::size_t size_ = 0;

  std::vector<std::pair<std::uint64_t, Op*>> order_;  // (bucket, ws index)
  std::vector<SortRec> recs_;
  std::vector<std::uint32_t> key_heads_, bucket_heads_;
  std::vector<std::uint8_t> net_present_;
  std::vector<Value> net_value_;
  ApplyPolicy apply_;
  Batcher batcher_;
};

}  // namespace batcher::ds
