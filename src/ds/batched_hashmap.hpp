// Batched hash map: chained buckets with sort-by-bucket batch application.
//
// The BOP groups a batch's operations by destination bucket (parallel sort of
// (bucket, working-set index) pairs) and then applies each bucket's group in
// parallel, with operations inside a group applied sequentially in
// working-set order.  Operations on the same key always land in the same
// bucket, so this realizes full working-set-order semantics — the strongest
// of the batched structures here — at W(n) = O(n) expected work and
// s(n) = O(lg P + max group) span.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "batcher/batcher.hpp"
#include "batcher/op_record.hpp"

namespace batcher::ds {

class BatchedHashMap final : public BatchedStructure {
 public:
  using Key = std::int64_t;
  using Value = std::int64_t;

  enum class Kind : std::uint8_t { Put, Get, Erase, Update };

  struct Op : OpRecordBase {
    Kind kind = Kind::Put;
    Key key = 0;
    Value value = 0;               // Put argument / Update delta
    std::optional<Value> out;      // Get result / Update post-value
    bool found = false;            // Erase hit
  };

  explicit BatchedHashMap(rt::Scheduler& sched,
                          Batcher::SetupPolicy setup = Batcher::kDefaultSetup);

  BatchedHashMap(const BatchedHashMap&) = delete;
  BatchedHashMap& operator=(const BatchedHashMap&) = delete;

  // --- blocking, implicitly batched API ---
  void put(Key key, Value value);
  std::optional<Value> get(Key key);
  bool erase(Key key);
  // Read-modify-write: adds `delta` to the entry (inserting 0 first if
  // absent) and returns the new value.  Histogram building in one op.
  Value update_add(Key key, Value delta);

  // --- unsynchronized API (outside runs) ---
  void put_unsafe(Key key, Value value);
  std::optional<Value> get_unsafe(Key key) const;
  std::size_t size_unsafe() const { return size_; }
  std::size_t bucket_count_unsafe() const { return buckets_.size(); }

  bool check_invariants() const;

  Batcher& batcher() { return batcher_; }

  void run_batch(OpRecordBase* const* ops, std::size_t count) override;

 private:
  struct Entry {
    Key key;
    Value value;
  };
  using Bucket = std::vector<Entry>;

  std::size_t bucket_of(Key key, std::size_t nbuckets) const;
  void apply_to_bucket(Bucket& bucket, Op* op);
  void maybe_resize();

  std::vector<Bucket> buckets_;
  std::size_t size_ = 0;

  std::vector<std::pair<std::uint64_t, Op*>> order_;  // (bucket, ws index)
  Batcher batcher_;
};

}  // namespace batcher::ds
