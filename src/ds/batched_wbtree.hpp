// Batched weight-balanced search tree with join-based bulk updates.
//
// The paper's related work (§6) points at batched search trees with bulk
// updates (weight-balanced B-trees [14], red-black trees [16]).  This module
// implements the modern form of that idea: a weight-balanced binary tree
// whose batch operations are the join-based set algorithms (split / join /
// union / difference à la Adams; see Blelloch, Ferizovic & Sun, "Just Join
// for Parallel Ordered Sets", SPAA 2016 — itself the lineage of [14]):
//
//   * a batch of x inserts:  sort + scan-compact the fresh keys, then merge
//     the sorted array straight into the tree: split the key range by the
//     root's key (one binary search), recurse into both subtrees in
//     parallel, and rebalance with `join` on the way up — O(x·lg(n/x + 1))
//     work, polylog span (SortMerge, the default);
//   * a batch of x erases:   the dual bulk pass dropping hit keys via
//     `join2`, same bounds;
//   * reads (contains / rank / select / range-count) are embarrassingly
//     parallel searches over the pre-batch tree.
//
// ApplyPolicy::Legacy keeps the pre-rewrite path — serial compaction of the
// batch into a vector, `build_range`, then UNION/DIFFERENCE of whole trees —
// selectable for the A/B span ablation: its serial compact + build prefix is
// the Θ(x)-span phase the SortMerge path removes.
//
// Balance scheme: Adams-style weights (w = size + 1) with Δ = 3, Γ = 2 and
// single/double rotations along the join spine.  `check_invariants` verifies
// the balance bound, size fields, and key order after every test batch.
//
// Per Invariant 1 there is no synchronization anywhere in this file.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "batcher/batcher.hpp"
#include "batcher/op_record.hpp"
#include "ds/batch_prep.hpp"
#include "support/arena.hpp"

namespace batcher::ds {

class BatchedWBTree final : public BatchedStructure {
 public:
  using Key = std::int64_t;

  enum class Kind : std::uint8_t {
    Insert,
    Erase,
    Contains,
    Rank,        // #keys strictly smaller than `key` -> count
    Select,      // i-th smallest (0-based) -> out_key
    RangeCount,  // #keys in [key, key2] -> count
  };

  struct Op : OpRecordBase {
    Kind kind = Kind::Insert;
    Key key = 0;
    Key key2 = 0;                     // RangeCount upper bound
    bool found = false;               // Insert/Erase/Contains result
    std::int64_t count = 0;           // Rank / RangeCount result
    std::optional<Key> out_key;       // Select result
  };

  explicit BatchedWBTree(rt::Scheduler& sched,
                         Batcher::SetupPolicy setup = Batcher::kDefaultSetup,
                         ApplyPolicy apply = ApplyPolicy::SortMerge);

  BatchedWBTree(const BatchedWBTree&) = delete;
  BatchedWBTree& operator=(const BatchedWBTree&) = delete;

  // --- blocking, implicitly batched API ---
  bool insert(Key key);
  bool erase(Key key);
  bool contains(Key key);
  std::int64_t rank(Key key);
  std::optional<Key> select(std::int64_t index);
  std::int64_t range_count(Key lo, Key hi);

  // --- unsynchronized API (outside runs) ---
  bool insert_unsafe(Key key);
  bool contains_unsafe(Key key) const;
  void bulk_build_unsafe(std::span<const Key> sorted_unique_keys);
  std::size_t size_unsafe() const { return size_; }
  int height_unsafe() const;

  bool check_invariants() const;

  Batcher& batcher() { return batcher_; }
  ApplyPolicy apply_policy() const { return apply_; }

  void run_batch(OpRecordBase* const* ops, std::size_t count) override;

 private:
  struct Node {
    Key key;
    std::int64_t size;  // subtree size
    Node* left;
    Node* right;
  };

  static std::int64_t tsize(const Node* t) { return t == nullptr ? 0 : t->size; }
  static std::int64_t weight(const Node* t) { return tsize(t) + 1; }

  Node* make_node(Node* l, Key k, Node* r);
  Node* update(Node* t);  // recompute size of t in place

  Node* rotate_left(Node* t);
  Node* rotate_right(Node* t);
  Node* balance_right_heavy(Node* t);  // t->right grew
  Node* balance_left_heavy(Node* t);   // t->left grew

  Node* join(Node* l, Key k, Node* r);
  Node* join2(Node* l, Node* r);
  // Splits `t` by `k` into (<k, k present?, >k); consumes `t`'s nodes.
  struct SplitResult {
    Node* left;
    bool found;
    Node* right;
  };
  SplitResult split(Node* t, Key k);
  Node* split_last(Node* t, Key* out_key);  // removes the maximum

  Node* union_with(Node* t, Node* batch);       // t ∪ batch
  Node* difference(Node* t, const Node* batch); // t \ batch

  // Bulk sort-merge passes: merge a sorted array of keys into / out of the
  // tree directly, splitting the array by the root key and recursing into
  // both subtrees in parallel, joining (and thereby rebalancing) on unwind.
  Node* bulk_insert(Node* t, const Key* keys, std::int64_t n);
  Node* bulk_erase(Node* t, const Key* keys, std::int64_t n);

  Node* build_range(const Key* keys, std::int64_t n);

  bool contains_in(const Node* t, Key k) const;
  std::int64_t rank_in(const Node* t, Key k) const;
  const Node* select_in(const Node* t, std::int64_t i) const;

  void apply_reads(const std::vector<Op*>& ops);
  void apply_erases(std::vector<Op*>& ops);
  void apply_inserts(std::vector<Op*>& ops);

  bool check_node(const Node* t, Key* min_key, Key* max_key) const;

  Node* root_ = nullptr;
  std::size_t size_ = 0;
  // One bump-arena shard per worker (index id+1) plus one for non-worker
  // callers (index 0): the bulk sort-merge passes call make_node from
  // concurrent tasks and the arena is deliberately unsynchronized, so each
  // task must bump its own thread's shard.  Nodes from every shard live
  // until the tree dies, so wholesale release is unchanged.
  std::vector<Arena> arenas_;
  Arena& local_arena();

  std::vector<Op*> read_ops_, erase_ops_, insert_ops_;  // batch scratch
  std::vector<std::uint8_t> flag_scratch_;
  std::vector<std::uint32_t> live_index_;
  std::vector<Key> key_scratch_;
  ApplyPolicy apply_;
  Batcher batcher_;
};

}  // namespace batcher::ds
