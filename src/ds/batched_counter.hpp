// The paper's batched shared counter (Fig. 1/2).
//
// INCREMENT(x) atomically adds x (possibly negative) and returns the counter
// value *after* the addition.  The BOP is one parallel prefix sum over the
// batch's deltas, which makes the returned values linearizable: the batch
// realizes the order D[0], D[1], ..., D[count-1].
//
// W(n) = Θ(n) and s(n) = O(lg P), so Theorem 1 gives
// O((T1 + n lg P)/P + m lg P + T∞) for a program with n increments.
#pragma once

#include <cstdint>
#include <vector>

#include "batcher/batcher.hpp"
#include "batcher/op_record.hpp"
#include "parallel/prefix_sum.hpp"
#include "runtime/api.hpp"

namespace batcher::ds {

class BatchedCounter final : public BatchedStructure {
 public:
  struct Op : OpRecordBase {
    std::int64_t delta = 0;
    std::int64_t result = 0;
  };

  explicit BatchedCounter(rt::Scheduler& sched, std::int64_t initial = 0,
                          Batcher::SetupPolicy setup = Batcher::kDefaultSetup)
      : value_(initial),
        scratch_(sched.num_workers()),
        batcher_(sched, *this, setup) {}

  // Blocking operation for the algorithm programmer: adds `delta`, returns
  // the post-increment value.  Implicitly batched.
  std::int64_t increment(std::int64_t delta) {
    Op op;
    op.delta = delta;
    batcher_.batchify(op);
    return op.result;
  }

  // A read is an increment by zero: it participates in batching and returns
  // a linearizable snapshot.
  std::int64_t read() { return increment(0); }

  // Unsynchronized peek for use when no run is active (tests, reporting).
  std::int64_t value_unsafe() const { return value_; }

  const Batcher& batcher() const { return batcher_; }
  Batcher& batcher() { return batcher_; }

  // BOP (Fig. 2): seed with the current value, prefix-sum the deltas, write
  // results, and store the last prefix as the new counter value.
  void run_batch(OpRecordBase* const* ops, std::size_t count) override {
    for (std::size_t i = 0; i < count; ++i) {
      scratch_[i] = static_cast<const Op*>(ops[i])->delta;
    }
    scratch_[0] += value_;
    par::prefix_sums(scratch_.data(), static_cast<std::int64_t>(count));
    rt::parallel_for(0, static_cast<std::int64_t>(count), [&](std::int64_t i) {
      static_cast<Op*>(ops[static_cast<std::size_t>(i)])->result =
          scratch_[static_cast<std::size_t>(i)];
    });
    value_ = scratch_[count - 1];
  }

 private:
  std::int64_t value_;
  std::vector<std::int64_t> scratch_;  // reused across batches; size P
  Batcher batcher_;
};

}  // namespace batcher::ds
