// Batched priority queue.
//
// The paper's introduction motivates batched data structures with parallel
// priority queues used in shortest-path algorithms [8, 12, 13, 32]; this is
// the implicit-batching counterpart.  The heap is a pairing heap with O(1)
// meld: a batch's inserts are melded together by a parallel tree-shaped
// reduction (O(x) work, O(lg x) span) and attached to the root in O(1);
// extract-mins then pop sequentially (O(lg n) amortized each).
//
// Batch semantics: all INSERTs apply first, then the k EXTRACTMINs return the
// k smallest elements in ascending order, assigned in working-set order.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "batcher/batcher.hpp"
#include "batcher/op_record.hpp"
#include "support/arena.hpp"

namespace batcher::ds {

class BatchedPriorityQueue final : public BatchedStructure {
 public:
  using Key = std::int64_t;

  enum class Kind : std::uint8_t { Insert, ExtractMin };

  struct Op : OpRecordBase {
    Kind kind = Kind::Insert;
    Key key = 0;                // Insert argument
    std::optional<Key> out;     // ExtractMin result
  };

  explicit BatchedPriorityQueue(
      rt::Scheduler& sched,
      Batcher::SetupPolicy setup = Batcher::kDefaultSetup);

  BatchedPriorityQueue(const BatchedPriorityQueue&) = delete;
  BatchedPriorityQueue& operator=(const BatchedPriorityQueue&) = delete;

  // --- blocking, implicitly batched API ---
  void insert(Key key);
  std::optional<Key> extract_min();

  // --- unsynchronized API (outside runs) ---
  void insert_unsafe(Key key);
  std::optional<Key> extract_min_unsafe();
  std::optional<Key> peek_min_unsafe() const;
  std::size_t size_unsafe() const { return size_; }

  // Heap-order self-check for tests.
  bool check_invariants() const;

  Batcher& batcher() { return batcher_; }

  void run_batch(OpRecordBase* const* ops, std::size_t count) override;

 private:
  struct Node {
    Key key;
    Node* child;    // leftmost child
    Node* sibling;  // next sibling (right)
  };

  Node* make_node(Key key);
  void recycle(Node* node);
  static Node* meld(Node* a, Node* b);
  static Node* combine_siblings(Node* first);  // two-pass pairing

  Node* root_ = nullptr;
  std::size_t size_ = 0;
  Arena arena_;
  Node* free_list_ = nullptr;

  std::vector<Op*> insert_ops_, extract_ops_;  // batch scratch
  Batcher batcher_;
};

}  // namespace batcher::ds
