#include "ds/batched_om.hpp"

#include <algorithm>

#include "parallel/sort.hpp"
#include "runtime/api.hpp"
#include "support/config.hpp"

namespace batcher::ds {

BatchedOrderMaintenance::BatchedOrderMaintenance(rt::Scheduler& sched,
                                                 Batcher::SetupPolicy setup)
    : batcher_(sched, *this, setup) {
  // The base element sits at label 0 with no neighbours.
  elements_.push_back(Element{0, kInvalidHandle, kInvalidHandle});
}

BatchedOrderMaintenance::Handle BatchedOrderMaintenance::allocate_element(
    std::uint64_t label, Handle prev, Handle next) {
  elements_.push_back(Element{label, next, prev});
  return static_cast<Handle>(elements_.size() - 1);
}

// ---------------------------------------------------------------------------
// Blocking API.
// ---------------------------------------------------------------------------

BatchedOrderMaintenance::Handle BatchedOrderMaintenance::insert_after(
    Handle ref) {
  Op op;
  op.kind = Kind::InsertAfter;
  op.a = ref;
  batcher_.batchify(op);
  return op.result;
}

bool BatchedOrderMaintenance::precedes(Handle a, Handle b) {
  Op op;
  op.kind = Kind::Precedes;
  op.a = a;
  op.b = b;
  batcher_.batchify(op);
  return op.before;
}

// ---------------------------------------------------------------------------
// Unsynchronized API.
// ---------------------------------------------------------------------------

BatchedOrderMaintenance::Handle BatchedOrderMaintenance::insert_after_unsafe(
    Handle ref) {
  Op op;
  op.kind = Kind::InsertAfter;
  op.a = ref;
  OpRecordBase* ops[1] = {&op};
  run_batch(ops, 1);
  return op.result;
}

bool BatchedOrderMaintenance::precedes_unsafe(Handle a, Handle b) const {
  return elements_[a].label < elements_[b].label;
}

bool BatchedOrderMaintenance::check_invariants() const {
  // Walk the list from base: labels strictly increase, links reciprocate,
  // every element is reachable exactly once.
  std::size_t visited = 0;
  Handle prev = kInvalidHandle;
  for (Handle cur = 0; cur != kInvalidHandle; cur = elements_[cur].next) {
    if (++visited > elements_.size()) return false;  // cycle
    if (elements_[cur].prev != prev) return false;
    if (prev != kInvalidHandle &&
        !(elements_[prev].label < elements_[cur].label)) {
      return false;
    }
    prev = cur;
  }
  return visited == elements_.size();
}

// ---------------------------------------------------------------------------
// BOP.
// ---------------------------------------------------------------------------

bool BatchedOrderMaintenance::group_fits(Handle ref, std::size_t n) const {
  const Element& e = elements_[ref];
  const std::uint64_t next_label =
      e.next == kInvalidHandle ? kLabelSpan : elements_[e.next].label;
  return next_label - e.label > n;  // need n distinct labels inside the gap
}

void BatchedOrderMaintenance::splice_group(Handle ref, Op* const* group,
                                           std::size_t n) {
  Element& anchor = elements_[ref];
  const Handle old_next = anchor.next;
  const std::uint64_t lo = anchor.label;
  const std::uint64_t hi =
      old_next == kInvalidHandle ? kLabelSpan : elements_[old_next].label;
  const std::uint64_t gap = hi - lo;

  // New elements land in working-set order right after the anchor; labels
  // are spread evenly through the gap.
  Handle prev = ref;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t label =
        lo + gap / (n + 1) * (i + 1);
    const Handle h = allocate_element(label, prev, old_next);
    elements_[prev].next = h;
    group[i]->result = h;
    prev = h;
  }
  if (old_next != kInvalidHandle) elements_[old_next].prev = prev;
}

void BatchedOrderMaintenance::relabel_all() {
  ++relabels_;
  // Spread all elements evenly across the label space (leaving slack at the
  // top so tail inserts keep working).
  std::size_t count = 0;
  for (Handle cur = 0; cur != kInvalidHandle; cur = elements_[cur].next) {
    ++count;
  }
  const std::uint64_t stride = kLabelSpan / (count + 1);
  std::uint64_t label = 0;
  for (Handle cur = 0; cur != kInvalidHandle; cur = elements_[cur].next) {
    elements_[cur].label = label;
    label += stride;
  }
}

void BatchedOrderMaintenance::run_batch(OpRecordBase* const* ops,
                                        std::size_t count) {
  read_ops_.clear();
  insert_ops_.clear();
  for (std::size_t i = 0; i < count; ++i) {
    Op* op = static_cast<Op*>(ops[i]);
    (op->kind == Kind::Precedes ? read_ops_ : insert_ops_).push_back(op);
  }

  // Phase 1: PRECEDES queries against the pre-batch labels (parallel).
  rt::parallel_for(
      0, static_cast<std::int64_t>(read_ops_.size()),
      [&](std::int64_t i) {
        Op* op = read_ops_[static_cast<std::size_t>(i)];
        op->before = elements_[op->a].label < elements_[op->b].label;
      },
      /*grain=*/1);

  if (insert_ops_.empty()) return;

  // Phase 2: group inserts by anchor, working-set order within a group.
  std::vector<std::pair<std::uint64_t, Op*>> order(insert_ops_.size());
  for (std::size_t i = 0; i < insert_ops_.size(); ++i) {
    order[i] = {(static_cast<std::uint64_t>(insert_ops_[i]->a) << 20) | i,
                insert_ops_[i]};
  }
  par::parallel_sort(order.data(), static_cast<std::int64_t>(order.size()),
                     [](const auto& x, const auto& y) { return x.first < y.first; });

  std::vector<std::size_t> group_starts;
  group_starts.push_back(0);
  for (std::size_t i = 1; i < order.size(); ++i) {
    if ((order[i].first >> 20) != (order[i - 1].first >> 20)) {
      group_starts.push_back(i);
    }
  }
  group_starts.push_back(order.size());

  // Any group without label room forces a global relabel first.
  bool need_relabel = false;
  for (std::size_t g = 0; g + 1 < group_starts.size(); ++g) {
    const Handle ref = order[group_starts[g]].second->a;
    if (!group_fits(ref, group_starts[g + 1] - group_starts[g])) {
      need_relabel = true;
      break;
    }
  }
  if (need_relabel) relabel_all();
  BATCHER_ASSERT(
      [&] {
        for (std::size_t g = 0; g + 1 < group_starts.size(); ++g) {
          const Handle ref = order[group_starts[g]].second->a;
          if (!group_fits(ref, group_starts[g + 1] - group_starts[g])) {
            return false;
          }
        }
        return true;
      }(),
      "label space exhausted even after relabelling");

  // Element storage must not reallocate during the parallel splice phase.
  elements_.reserve(elements_.size() + insert_ops_.size());

  // Splices of distinct anchors touch disjoint links and label ranges, but
  // the shared `elements_` table append is not concurrency-safe — so groups
  // pre-allocate is not worth the complexity at batch sizes <= P; apply the
  // groups sequentially (each group internally is O(group) work).  The
  // queries above and the sort carry the batch's parallelism.
  std::vector<Op*> scratch;
  for (std::size_t g = 0; g + 1 < group_starts.size(); ++g) {
    const std::size_t lo = group_starts[g];
    const std::size_t hi = group_starts[g + 1];
    scratch.clear();
    for (std::size_t i = lo; i < hi; ++i) scratch.push_back(order[i].second);
    splice_group(scratch[0]->a, scratch.data(), scratch.size());
  }
}

}  // namespace batcher::ds
