#include "ds/batched_wbtree.hpp"

#include <algorithm>

#include "parallel/sort.hpp"
#include "runtime/api.hpp"
#include "support/config.hpp"

namespace batcher::ds {

namespace {

// Below this many nodes the set operations recurse sequentially: spawning a
// task per tiny subtree would drown the win.
constexpr std::int64_t kParallelCutoff = 512;

struct TaggedKey {
  BatchedWBTree::Key key;
  std::uint32_t op_index;
  bool operator<(const TaggedKey& o) const {
    return key != o.key ? key < o.key : op_index < o.op_index;
  }
};

}  // namespace

BatchedWBTree::BatchedWBTree(rt::Scheduler& sched, Batcher::SetupPolicy setup)
    : batcher_(sched, *this, setup) {}

// ---------------------------------------------------------------------------
// Node helpers and rotations.
// ---------------------------------------------------------------------------

BatchedWBTree::Node* BatchedWBTree::make_node(Node* l, Key k, Node* r) {
  Node* n = static_cast<Node*>(arena_.allocate(sizeof(Node)));
  n->key = k;
  n->left = l;
  n->right = r;
  n->size = 1 + tsize(l) + tsize(r);
  return n;
}

BatchedWBTree::Node* BatchedWBTree::update(Node* t) {
  t->size = 1 + tsize(t->left) + tsize(t->right);
  return t;
}

BatchedWBTree::Node* BatchedWBTree::rotate_left(Node* t) {
  Node* r = t->right;
  t->right = r->left;
  r->left = t;
  update(t);
  return update(r);
}

BatchedWBTree::Node* BatchedWBTree::rotate_right(Node* t) {
  Node* l = t->left;
  t->left = l->right;
  l->right = t;
  update(t);
  return update(l);
}

// Adams-style rebalance after t->right grew (Δ = 3, Γ = 2 on weights).
BatchedWBTree::Node* BatchedWBTree::balance_right_heavy(Node* t) {
  if (weight(t->right) <= 3 * weight(t->left)) return t;
  Node* r = t->right;
  if (weight(r->left) < 2 * weight(r->right)) {
    return rotate_left(t);
  }
  t->right = rotate_right(r);
  return rotate_left(t);
}

BatchedWBTree::Node* BatchedWBTree::balance_left_heavy(Node* t) {
  if (weight(t->left) <= 3 * weight(t->right)) return t;
  Node* l = t->left;
  if (weight(l->right) < 2 * weight(l->left)) {
    return rotate_right(t);
  }
  t->left = rotate_left(l);
  return rotate_right(t);
}

// ---------------------------------------------------------------------------
// Join-based primitives.
// ---------------------------------------------------------------------------

BatchedWBTree::Node* BatchedWBTree::join(Node* l, Key k, Node* r) {
  if (weight(l) > 3 * weight(r)) {
    // Descend l's right spine until the pieces balance, fixing on unwind.
    l->right = join(l->right, k, r);
    update(l);
    return balance_right_heavy(l);
  }
  if (weight(r) > 3 * weight(l)) {
    r->left = join(l, k, r->left);
    update(r);
    return balance_left_heavy(r);
  }
  return make_node(l, k, r);
}

BatchedWBTree::Node* BatchedWBTree::split_last(Node* t, Key* out_key) {
  if (t->right == nullptr) {
    *out_key = t->key;
    return t->left;
  }
  t->right = split_last(t->right, out_key);
  update(t);
  return balance_left_heavy(t);
}

BatchedWBTree::Node* BatchedWBTree::join2(Node* l, Node* r) {
  if (l == nullptr) return r;
  if (r == nullptr) return l;
  Key k;
  l = split_last(l, &k);
  return join(l, k, r);
}

BatchedWBTree::SplitResult BatchedWBTree::split(Node* t, Key k) {
  if (t == nullptr) return SplitResult{nullptr, false, nullptr};
  if (k == t->key) return SplitResult{t->left, true, t->right};
  if (k < t->key) {
    SplitResult s = split(t->left, k);
    return SplitResult{s.left, s.found, join(s.right, t->key, t->right)};
  }
  SplitResult s = split(t->right, k);
  return SplitResult{join(t->left, t->key, s.left), s.found, s.right};
}

BatchedWBTree::Node* BatchedWBTree::union_with(Node* t, Node* batch) {
  if (t == nullptr) return batch;
  if (batch == nullptr) return t;
  SplitResult s = split(batch, t->key);  // a duplicate of t->key is dropped
  Node* l;
  Node* r;
  if (tsize(t) + tsize(batch) > kParallelCutoff) {
    rt::parallel_invoke([&] { l = union_with(t->left, s.left); },
                        [&] { r = union_with(t->right, s.right); });
  } else {
    l = union_with(t->left, s.left);
    r = union_with(t->right, s.right);
  }
  return join(l, t->key, r);
}

BatchedWBTree::Node* BatchedWBTree::difference(Node* t, const Node* batch) {
  if (t == nullptr) return nullptr;
  if (batch == nullptr) return t;
  SplitResult s = split(t, batch->key);  // drops batch->key if present
  Node* l;
  Node* r;
  if (tsize(t) > kParallelCutoff) {
    rt::parallel_invoke([&] { l = difference(s.left, batch->left); },
                        [&] { r = difference(s.right, batch->right); });
  } else {
    l = difference(s.left, batch->left);
    r = difference(s.right, batch->right);
  }
  return join2(l, r);
}

BatchedWBTree::Node* BatchedWBTree::build_range(const Key* keys,
                                                std::int64_t n) {
  if (n <= 0) return nullptr;
  const std::int64_t mid = n / 2;
  if (n > kParallelCutoff) {
    Node* l;
    Node* r;
    rt::parallel_invoke([&] { l = build_range(keys, mid); },
                        [&] { r = build_range(keys + mid + 1, n - mid - 1); });
    return make_node(l, keys[mid], r);
  }
  return make_node(build_range(keys, mid), keys[mid],
                   build_range(keys + mid + 1, n - mid - 1));
}

// ---------------------------------------------------------------------------
// Read-only queries.
// ---------------------------------------------------------------------------

bool BatchedWBTree::contains_in(const Node* t, Key k) const {
  while (t != nullptr) {
    if (k == t->key) return true;
    t = k < t->key ? t->left : t->right;
  }
  return false;
}

std::int64_t BatchedWBTree::rank_in(const Node* t, Key k) const {
  std::int64_t before = 0;  // #keys strictly smaller than k
  while (t != nullptr) {
    if (k <= t->key) {
      t = t->left;
    } else {
      before += tsize(t->left) + 1;
      t = t->right;
    }
  }
  return before;
}

const BatchedWBTree::Node* BatchedWBTree::select_in(const Node* t,
                                                    std::int64_t i) const {
  while (t != nullptr) {
    const std::int64_t left = tsize(t->left);
    if (i < left) {
      t = t->left;
    } else if (i == left) {
      return t;
    } else {
      i -= left + 1;
      t = t->right;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Blocking API.
// ---------------------------------------------------------------------------

bool BatchedWBTree::insert(Key key) {
  Op op;
  op.kind = Kind::Insert;
  op.key = key;
  batcher_.batchify(op);
  return op.found;
}

bool BatchedWBTree::erase(Key key) {
  Op op;
  op.kind = Kind::Erase;
  op.key = key;
  batcher_.batchify(op);
  return op.found;
}

bool BatchedWBTree::contains(Key key) {
  Op op;
  op.kind = Kind::Contains;
  op.key = key;
  batcher_.batchify(op);
  return op.found;
}

std::int64_t BatchedWBTree::rank(Key key) {
  Op op;
  op.kind = Kind::Rank;
  op.key = key;
  batcher_.batchify(op);
  return op.count;
}

std::optional<BatchedWBTree::Key> BatchedWBTree::select(std::int64_t index) {
  Op op;
  op.kind = Kind::Select;
  op.count = index;
  batcher_.batchify(op);
  return op.out_key;
}

std::int64_t BatchedWBTree::range_count(Key lo, Key hi) {
  Op op;
  op.kind = Kind::RangeCount;
  op.key = lo;
  op.key2 = hi;
  batcher_.batchify(op);
  return op.count;
}

bool BatchedWBTree::insert_unsafe(Key key) {
  Op op;
  op.kind = Kind::Insert;
  op.key = key;
  OpRecordBase* ops[1] = {&op};
  run_batch(ops, 1);
  return op.found;
}

bool BatchedWBTree::contains_unsafe(Key key) const {
  return contains_in(root_, key);
}

void BatchedWBTree::bulk_build_unsafe(std::span<const Key> sorted_unique_keys) {
  BATCHER_ASSERT(root_ == nullptr, "bulk_build_unsafe requires an empty tree");
  root_ = build_range(sorted_unique_keys.data(),
                      static_cast<std::int64_t>(sorted_unique_keys.size()));
  size_ = sorted_unique_keys.size();
}

int BatchedWBTree::height_unsafe() const {
  int h = 0;
  for (const Node* t = root_; t != nullptr;) {
    ++h;
    t = tsize(t->left) >= tsize(t->right) ? t->left : t->right;
  }
  return h;  // depth along the heavy path bounds the height within O(1)
}

// ---------------------------------------------------------------------------
// BOP.
// ---------------------------------------------------------------------------

void BatchedWBTree::run_batch(OpRecordBase* const* ops, std::size_t count) {
  read_ops_.clear();
  erase_ops_.clear();
  insert_ops_.clear();
  for (std::size_t i = 0; i < count; ++i) {
    Op* op = static_cast<Op*>(ops[i]);
    switch (op->kind) {
      case Kind::Insert: insert_ops_.push_back(op); break;
      case Kind::Erase: erase_ops_.push_back(op); break;
      default: read_ops_.push_back(op); break;
    }
  }
  // Phase order: reads on the pre-batch tree, then erases, then inserts.
  if (!read_ops_.empty()) apply_reads(read_ops_);
  if (!erase_ops_.empty()) apply_erases(erase_ops_);
  if (!insert_ops_.empty()) apply_inserts(insert_ops_);
}

void BatchedWBTree::apply_reads(const std::vector<Op*>& ops) {
  rt::parallel_for(
      0, static_cast<std::int64_t>(ops.size()),
      [&](std::int64_t i) {
        Op* op = ops[static_cast<std::size_t>(i)];
        switch (op->kind) {
          case Kind::Contains:
            op->found = contains_in(root_, op->key);
            break;
          case Kind::Rank:
            op->count = rank_in(root_, op->key);
            break;
          case Kind::Select: {
            const Node* n = select_in(root_, op->count);
            op->out_key = n != nullptr ? std::optional<Key>(n->key)
                                       : std::nullopt;
            break;
          }
          case Kind::RangeCount: {
            // #keys <= hi minus #keys < lo.
            const std::int64_t below_hi =
                rank_in(root_, op->key2) +
                (contains_in(root_, op->key2) ? 1 : 0);
            op->count = below_hi - rank_in(root_, op->key);
            break;
          }
          default:
            break;
        }
      },
      /*grain=*/1);
}

void BatchedWBTree::apply_erases(std::vector<Op*>& ops) {
  std::vector<TaggedKey> keys(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    keys[i] = TaggedKey{ops[i]->key, static_cast<std::uint32_t>(i)};
  }
  par::parallel_sort(keys.data(), static_cast<std::int64_t>(keys.size()));

  // Pre-pass: resolve found flags (first op on a key wins) on the pre-erase
  // tree, and gather the keys actually present.
  std::vector<std::uint8_t> hit(keys.size(), 0);
  rt::parallel_for(
      0, static_cast<std::int64_t>(keys.size()),
      [&](std::int64_t i) {
        const auto idx = static_cast<std::size_t>(i);
        Op* op = ops[keys[idx].op_index];
        if (idx > 0 && keys[idx].key == keys[idx - 1].key) {
          op->found = false;
          return;
        }
        op->found = contains_in(root_, keys[idx].key);
        hit[idx] = op->found ? 1 : 0;
      },
      /*grain=*/1);

  std::vector<Key> present;
  present.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (hit[i]) present.push_back(keys[i].key);
  }
  if (present.empty()) return;

  Node* del_tree =
      build_range(present.data(), static_cast<std::int64_t>(present.size()));
  root_ = difference(root_, del_tree);
  size_ -= present.size();
}

void BatchedWBTree::apply_inserts(std::vector<Op*>& ops) {
  std::vector<TaggedKey> keys(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    keys[i] = TaggedKey{ops[i]->key, static_cast<std::uint32_t>(i)};
  }
  par::parallel_sort(keys.data(), static_cast<std::int64_t>(keys.size()));

  std::vector<std::uint8_t> fresh(keys.size(), 0);
  rt::parallel_for(
      0, static_cast<std::int64_t>(keys.size()),
      [&](std::int64_t i) {
        const auto idx = static_cast<std::size_t>(i);
        Op* op = ops[keys[idx].op_index];
        if (idx > 0 && keys[idx].key == keys[idx - 1].key) {
          op->found = false;  // duplicate within the batch
          return;
        }
        op->found = !contains_in(root_, keys[idx].key);
        fresh[idx] = op->found ? 1 : 0;
      },
      /*grain=*/1);

  std::vector<Key> new_keys;
  new_keys.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (fresh[i]) new_keys.push_back(keys[i].key);
  }
  if (new_keys.empty()) return;

  Node* ins_tree =
      build_range(new_keys.data(), static_cast<std::int64_t>(new_keys.size()));
  root_ = union_with(root_, ins_tree);
  size_ += new_keys.size();
}

// ---------------------------------------------------------------------------
// Invariants.
// ---------------------------------------------------------------------------

bool BatchedWBTree::check_node(const Node* t, Key* min_key,
                               Key* max_key) const {
  if (t == nullptr) return true;
  if (t->size != 1 + tsize(t->left) + tsize(t->right)) return false;
  // Δ = 3 weight balance.
  if (weight(t->left) > 3 * weight(t->right)) return false;
  if (weight(t->right) > 3 * weight(t->left)) return false;
  Key lmin = t->key, lmax = t->key, rmin = t->key, rmax = t->key;
  if (t->left != nullptr) {
    if (!check_node(t->left, &lmin, &lmax)) return false;
    if (!(lmax < t->key)) return false;
  }
  if (t->right != nullptr) {
    if (!check_node(t->right, &rmin, &rmax)) return false;
    if (!(t->key < rmin)) return false;
  }
  *min_key = lmin;
  *max_key = rmax;
  return true;
}

bool BatchedWBTree::check_invariants() const {
  if (root_ == nullptr) return size_ == 0;
  if (static_cast<std::size_t>(root_->size) != size_) return false;
  Key mn, mx;
  return check_node(root_, &mn, &mx);
}

}  // namespace batcher::ds
