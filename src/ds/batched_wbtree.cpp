#include "ds/batched_wbtree.hpp"

#include <algorithm>

#include "parallel/scan.hpp"
#include "parallel/sort.hpp"
#include "runtime/api.hpp"
#include "support/config.hpp"

namespace batcher::ds {

namespace {

// Below this many nodes the set operations recurse sequentially: spawning a
// task per tiny subtree would drown the win.
constexpr std::int64_t kParallelCutoff = 512;

// The bulk sort-merge passes recurse over (subtree, key-range) pairs whose
// sizes shrink geometrically; a lower cutoff than the whole-tree set
// operations keeps the measured span of batch-sized merges sublinear while
// still amortizing spawn overhead over ~a hundred nodes of serial work.
constexpr std::int64_t kBulkParallelCutoff = 96;

using TaggedKey = prep::Tagged<BatchedWBTree::Key>;

}  // namespace

BatchedWBTree::BatchedWBTree(rt::Scheduler& sched, Batcher::SetupPolicy setup,
                             ApplyPolicy apply)
    : arenas_(sched.num_workers() + 1),
      apply_(apply),
      batcher_(sched, *this, setup) {}

batcher::Arena& BatchedWBTree::local_arena() {
  const rt::Worker* w = rt::current_worker();
  return arenas_[w == nullptr ? 0 : static_cast<std::size_t>(w->id()) + 1];
}

// ---------------------------------------------------------------------------
// Node helpers and rotations.
// ---------------------------------------------------------------------------

BatchedWBTree::Node* BatchedWBTree::make_node(Node* l, Key k, Node* r) {
  Node* n = static_cast<Node*>(local_arena().allocate(sizeof(Node)));
  n->key = k;
  n->left = l;
  n->right = r;
  n->size = 1 + tsize(l) + tsize(r);
  return n;
}

BatchedWBTree::Node* BatchedWBTree::update(Node* t) {
  t->size = 1 + tsize(t->left) + tsize(t->right);
  return t;
}

BatchedWBTree::Node* BatchedWBTree::rotate_left(Node* t) {
  Node* r = t->right;
  t->right = r->left;
  r->left = t;
  update(t);
  return update(r);
}

BatchedWBTree::Node* BatchedWBTree::rotate_right(Node* t) {
  Node* l = t->left;
  t->left = l->right;
  l->right = t;
  update(t);
  return update(l);
}

// Adams-style rebalance after t->right grew (Δ = 3, Γ = 2 on weights).
BatchedWBTree::Node* BatchedWBTree::balance_right_heavy(Node* t) {
  if (weight(t->right) <= 3 * weight(t->left)) return t;
  Node* r = t->right;
  if (weight(r->left) < 2 * weight(r->right)) {
    return rotate_left(t);
  }
  t->right = rotate_right(r);
  return rotate_left(t);
}

BatchedWBTree::Node* BatchedWBTree::balance_left_heavy(Node* t) {
  if (weight(t->left) <= 3 * weight(t->right)) return t;
  Node* l = t->left;
  if (weight(l->right) < 2 * weight(l->left)) {
    return rotate_right(t);
  }
  t->left = rotate_left(l);
  return rotate_right(t);
}

// ---------------------------------------------------------------------------
// Join-based primitives.
// ---------------------------------------------------------------------------

BatchedWBTree::Node* BatchedWBTree::join(Node* l, Key k, Node* r) {
  if (weight(l) > 3 * weight(r)) {
    // Descend l's right spine until the pieces balance, fixing on unwind.
    l->right = join(l->right, k, r);
    update(l);
    return balance_right_heavy(l);
  }
  if (weight(r) > 3 * weight(l)) {
    r->left = join(l, k, r->left);
    update(r);
    return balance_left_heavy(r);
  }
  return make_node(l, k, r);
}

BatchedWBTree::Node* BatchedWBTree::split_last(Node* t, Key* out_key) {
  if (t->right == nullptr) {
    *out_key = t->key;
    return t->left;
  }
  t->right = split_last(t->right, out_key);
  update(t);
  return balance_left_heavy(t);
}

BatchedWBTree::Node* BatchedWBTree::join2(Node* l, Node* r) {
  if (l == nullptr) return r;
  if (r == nullptr) return l;
  Key k;
  l = split_last(l, &k);
  return join(l, k, r);
}

BatchedWBTree::SplitResult BatchedWBTree::split(Node* t, Key k) {
  if (t == nullptr) return SplitResult{nullptr, false, nullptr};
  if (k == t->key) return SplitResult{t->left, true, t->right};
  if (k < t->key) {
    SplitResult s = split(t->left, k);
    return SplitResult{s.left, s.found, join(s.right, t->key, t->right)};
  }
  SplitResult s = split(t->right, k);
  return SplitResult{join(t->left, t->key, s.left), s.found, s.right};
}

BatchedWBTree::Node* BatchedWBTree::union_with(Node* t, Node* batch) {
  if (t == nullptr) return batch;
  if (batch == nullptr) return t;
  SplitResult s = split(batch, t->key);  // a duplicate of t->key is dropped
  Node* l = nullptr;
  Node* r = nullptr;
  if (tsize(t) + tsize(batch) > kParallelCutoff) {
    rt::parallel_invoke([&] { l = union_with(t->left, s.left); },
                        [&] { r = union_with(t->right, s.right); });
  } else {
    l = union_with(t->left, s.left);
    r = union_with(t->right, s.right);
  }
  return join(l, t->key, r);
}

BatchedWBTree::Node* BatchedWBTree::difference(Node* t, const Node* batch) {
  if (t == nullptr) return nullptr;
  if (batch == nullptr) return t;
  SplitResult s = split(t, batch->key);  // drops batch->key if present
  Node* l = nullptr;
  Node* r = nullptr;
  if (tsize(t) > kParallelCutoff) {
    rt::parallel_invoke([&] { l = difference(s.left, batch->left); },
                        [&] { r = difference(s.right, batch->right); });
  } else {
    l = difference(s.left, batch->left);
    r = difference(s.right, batch->right);
  }
  return join2(l, r);
}

// Merge the sorted, duplicate-free, all-absent keys straight into `t`: one
// binary search splits the key range around t->key, both sides recurse in
// parallel, and `join` rebalances on the way up.  Compared with the legacy
// build_range + union_with pair this skips materializing the batch tree and
// keeps every phase parallel.
BatchedWBTree::Node* BatchedWBTree::bulk_insert(Node* t, const Key* keys,
                                                std::int64_t n) {
  if (n == 0) return t;
  if (t == nullptr) return build_range(keys, n);
  const std::int64_t k =
      std::lower_bound(keys, keys + n, t->key) - keys;
  Node* l = nullptr;
  Node* r = nullptr;
  if (tsize(t) + n > kBulkParallelCutoff) {
    rt::parallel_invoke([&] { l = bulk_insert(t->left, keys, k); },
                        [&] { r = bulk_insert(t->right, keys + k, n - k); });
  } else {
    l = bulk_insert(t->left, keys, k);
    r = bulk_insert(t->right, keys + k, n - k);
  }
  return join(l, t->key, r);
}

// Dual bulk pass: drop every key of the sorted array found in `t`.
BatchedWBTree::Node* BatchedWBTree::bulk_erase(Node* t, const Key* keys,
                                               std::int64_t n) {
  if (n == 0 || t == nullptr) return t;
  const std::int64_t k =
      std::lower_bound(keys, keys + n, t->key) - keys;
  const bool hit = k < n && keys[k] == t->key;
  const Key* rkeys = keys + k + (hit ? 1 : 0);
  const std::int64_t rn = n - k - (hit ? 1 : 0);
  Node* l = nullptr;
  Node* r = nullptr;
  if (tsize(t) + n > kBulkParallelCutoff) {
    rt::parallel_invoke([&] { l = bulk_erase(t->left, keys, k); },
                        [&] { r = bulk_erase(t->right, rkeys, rn); });
  } else {
    l = bulk_erase(t->left, keys, k);
    r = bulk_erase(t->right, rkeys, rn);
  }
  return hit ? join2(l, r) : join(l, t->key, r);
}

BatchedWBTree::Node* BatchedWBTree::build_range(const Key* keys,
                                                std::int64_t n) {
  if (n <= 0) return nullptr;
  const std::int64_t mid = n / 2;
  if (n > kParallelCutoff) {
    Node* l = nullptr;
    Node* r = nullptr;
    rt::parallel_invoke([&] { l = build_range(keys, mid); },
                        [&] { r = build_range(keys + mid + 1, n - mid - 1); });
    return make_node(l, keys[mid], r);
  }
  return make_node(build_range(keys, mid), keys[mid],
                   build_range(keys + mid + 1, n - mid - 1));
}

// ---------------------------------------------------------------------------
// Read-only queries.
// ---------------------------------------------------------------------------

bool BatchedWBTree::contains_in(const Node* t, Key k) const {
  while (t != nullptr) {
    if (k == t->key) return true;
    t = k < t->key ? t->left : t->right;
  }
  return false;
}

std::int64_t BatchedWBTree::rank_in(const Node* t, Key k) const {
  std::int64_t before = 0;  // #keys strictly smaller than k
  while (t != nullptr) {
    if (k <= t->key) {
      t = t->left;
    } else {
      before += tsize(t->left) + 1;
      t = t->right;
    }
  }
  return before;
}

const BatchedWBTree::Node* BatchedWBTree::select_in(const Node* t,
                                                    std::int64_t i) const {
  while (t != nullptr) {
    const std::int64_t left = tsize(t->left);
    if (i < left) {
      t = t->left;
    } else if (i == left) {
      return t;
    } else {
      i -= left + 1;
      t = t->right;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Blocking API.
// ---------------------------------------------------------------------------

bool BatchedWBTree::insert(Key key) {
  Op op;
  op.kind = Kind::Insert;
  op.key = key;
  batcher_.batchify(op);
  return op.found;
}

bool BatchedWBTree::erase(Key key) {
  Op op;
  op.kind = Kind::Erase;
  op.key = key;
  batcher_.batchify(op);
  return op.found;
}

bool BatchedWBTree::contains(Key key) {
  Op op;
  op.kind = Kind::Contains;
  op.key = key;
  batcher_.batchify(op);
  return op.found;
}

std::int64_t BatchedWBTree::rank(Key key) {
  Op op;
  op.kind = Kind::Rank;
  op.key = key;
  batcher_.batchify(op);
  return op.count;
}

std::optional<BatchedWBTree::Key> BatchedWBTree::select(std::int64_t index) {
  Op op;
  op.kind = Kind::Select;
  op.count = index;
  batcher_.batchify(op);
  return op.out_key;
}

std::int64_t BatchedWBTree::range_count(Key lo, Key hi) {
  Op op;
  op.kind = Kind::RangeCount;
  op.key = lo;
  op.key2 = hi;
  batcher_.batchify(op);
  return op.count;
}

bool BatchedWBTree::insert_unsafe(Key key) {
  Op op;
  op.kind = Kind::Insert;
  op.key = key;
  OpRecordBase* ops[1] = {&op};
  run_batch(ops, 1);
  return op.found;
}

bool BatchedWBTree::contains_unsafe(Key key) const {
  return contains_in(root_, key);
}

void BatchedWBTree::bulk_build_unsafe(std::span<const Key> sorted_unique_keys) {
  BATCHER_ASSERT(root_ == nullptr, "bulk_build_unsafe requires an empty tree");
  root_ = build_range(sorted_unique_keys.data(),
                      static_cast<std::int64_t>(sorted_unique_keys.size()));
  size_ = sorted_unique_keys.size();
}

int BatchedWBTree::height_unsafe() const {
  int h = 0;
  for (const Node* t = root_; t != nullptr;) {
    ++h;
    t = tsize(t->left) >= tsize(t->right) ? t->left : t->right;
  }
  return h;  // depth along the heavy path bounds the height within O(1)
}

// ---------------------------------------------------------------------------
// BOP.
// ---------------------------------------------------------------------------

void BatchedWBTree::run_batch(OpRecordBase* const* ops, std::size_t count) {
  read_ops_.clear();
  erase_ops_.clear();
  insert_ops_.clear();
  for (std::size_t i = 0; i < count; ++i) {
    Op* op = static_cast<Op*>(ops[i]);
    switch (op->kind) {
      case Kind::Insert: insert_ops_.push_back(op); break;
      case Kind::Erase: erase_ops_.push_back(op); break;
      default: read_ops_.push_back(op); break;
    }
  }
  // Phase order: reads on the pre-batch tree, then erases, then inserts.
  if (!read_ops_.empty()) apply_reads(read_ops_);
  if (!erase_ops_.empty()) apply_erases(erase_ops_);
  if (!insert_ops_.empty()) apply_inserts(insert_ops_);
}

void BatchedWBTree::apply_reads(const std::vector<Op*>& ops) {
  rt::parallel_for(
      0, static_cast<std::int64_t>(ops.size()),
      [&](std::int64_t i) {
        Op* op = ops[static_cast<std::size_t>(i)];
        switch (op->kind) {
          case Kind::Contains:
            op->found = contains_in(root_, op->key);
            break;
          case Kind::Rank:
            op->count = rank_in(root_, op->key);
            break;
          case Kind::Select: {
            const Node* n = select_in(root_, op->count);
            op->out_key = n != nullptr ? std::optional<Key>(n->key)
                                       : std::nullopt;
            break;
          }
          case Kind::RangeCount: {
            // #keys <= hi minus #keys < lo.
            const std::int64_t below_hi =
                rank_in(root_, op->key2) +
                (contains_in(root_, op->key2) ? 1 : 0);
            op->count = below_hi - rank_in(root_, op->key);
            break;
          }
          default:
            break;
        }
      },
      /*grain=*/1);
}

void BatchedWBTree::apply_erases(std::vector<Op*>& ops) {
  std::vector<TaggedKey> keys(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    keys[i] = TaggedKey{ops[i]->key, static_cast<std::uint32_t>(i)};
  }
  par::parallel_sort(keys.data(), static_cast<std::int64_t>(keys.size()));

  // Pre-pass: resolve found flags (first op on a key wins) on the pre-erase
  // tree, and flag the keys actually present.
  flag_scratch_.assign(keys.size(), 0);
  rt::parallel_for(
      0, static_cast<std::int64_t>(keys.size()),
      [&](std::int64_t i) {
        const auto idx = static_cast<std::size_t>(i);
        Op* op = ops[keys[idx].ws];
        if (idx > 0 && keys[idx].key == keys[idx - 1].key) {
          op->found = false;
          return;
        }
        op->found = contains_in(root_, keys[idx].key);
        flag_scratch_[idx] = op->found ? 1 : 0;
      },
      /*grain=*/1);

  if (apply_ == ApplyPolicy::Legacy) {
    // Legacy ablation path: serial compaction, then tree-vs-tree DIFFERENCE.
    std::vector<Key> present;
    present.reserve(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (flag_scratch_[i]) present.push_back(keys[i].key);
    }
    if (present.empty()) return;
    Node* del_tree =
        build_range(present.data(), static_cast<std::int64_t>(present.size()));
    root_ = difference(root_, del_tree);
    size_ -= present.size();
    return;
  }

  // SortMerge: scan-compact the present keys and merge them out of the tree
  // directly (no intermediate batch tree, no serial phase).
  const std::int64_t m = par::pack_indices(
      static_cast<std::int64_t>(keys.size()),
      [&](std::int64_t i) {
        return flag_scratch_[static_cast<std::size_t>(i)] != 0;
      },
      live_index_);
  if (m == 0) return;
  key_scratch_.resize(static_cast<std::size_t>(m));
  rt::parallel_for(
      0, m,
      [&](std::int64_t j) {
        const auto ji = static_cast<std::size_t>(j);
        key_scratch_[ji] = keys[live_index_[ji]].key;
      },
      /*grain=*/1);
  root_ = bulk_erase(root_, key_scratch_.data(), m);
  size_ -= static_cast<std::size_t>(m);
}

void BatchedWBTree::apply_inserts(std::vector<Op*>& ops) {
  std::vector<TaggedKey> keys(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    keys[i] = TaggedKey{ops[i]->key, static_cast<std::uint32_t>(i)};
  }
  par::parallel_sort(keys.data(), static_cast<std::int64_t>(keys.size()));

  flag_scratch_.assign(keys.size(), 0);
  rt::parallel_for(
      0, static_cast<std::int64_t>(keys.size()),
      [&](std::int64_t i) {
        const auto idx = static_cast<std::size_t>(i);
        Op* op = ops[keys[idx].ws];
        if (idx > 0 && keys[idx].key == keys[idx - 1].key) {
          op->found = false;  // duplicate within the batch
          return;
        }
        op->found = !contains_in(root_, keys[idx].key);
        flag_scratch_[idx] = op->found ? 1 : 0;
      },
      /*grain=*/1);

  if (apply_ == ApplyPolicy::Legacy) {
    // Legacy ablation path: serial compaction, build_range, then UNION.
    std::vector<Key> new_keys;
    new_keys.reserve(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (flag_scratch_[i]) new_keys.push_back(keys[i].key);
    }
    if (new_keys.empty()) return;
    Node* ins_tree = build_range(new_keys.data(),
                                 static_cast<std::int64_t>(new_keys.size()));
    root_ = union_with(root_, ins_tree);
    size_ += new_keys.size();
    return;
  }

  // SortMerge: scan-compact the fresh keys and merge the sorted array into
  // the tree in one parallel divide-and-conquer pass.
  const std::int64_t m = par::pack_indices(
      static_cast<std::int64_t>(keys.size()),
      [&](std::int64_t i) {
        return flag_scratch_[static_cast<std::size_t>(i)] != 0;
      },
      live_index_);
  if (m == 0) return;
  key_scratch_.resize(static_cast<std::size_t>(m));
  rt::parallel_for(
      0, m,
      [&](std::int64_t j) {
        const auto ji = static_cast<std::size_t>(j);
        key_scratch_[ji] = keys[live_index_[ji]].key;
      },
      /*grain=*/1);
  root_ = bulk_insert(root_, key_scratch_.data(), m);
  size_ += static_cast<std::size_t>(m);
}

// ---------------------------------------------------------------------------
// Invariants.
// ---------------------------------------------------------------------------

bool BatchedWBTree::check_node(const Node* t, Key* min_key,
                               Key* max_key) const {
  if (t == nullptr) return true;
  if (t->size != 1 + tsize(t->left) + tsize(t->right)) return false;
  // Δ = 3 weight balance.
  if (weight(t->left) > 3 * weight(t->right)) return false;
  if (weight(t->right) > 3 * weight(t->left)) return false;
  Key lmin = t->key, lmax = t->key, rmin = t->key, rmax = t->key;
  if (t->left != nullptr) {
    if (!check_node(t->left, &lmin, &lmax)) return false;
    if (!(lmax < t->key)) return false;
  }
  if (t->right != nullptr) {
    if (!check_node(t->right, &rmin, &rmax)) return false;
    if (!(t->key < rmin)) return false;
  }
  *min_key = lmin;
  *max_key = rmax;
  return true;
}

bool BatchedWBTree::check_invariants() const {
  if (root_ == nullptr) return size_ == 0;
  if (static_cast<std::size_t>(root_->size) != size_) return false;
  Key mn, mx;
  return check_node(root_, &mn, &mx);
}

}  // namespace batcher::ds
