// Batched FIFO queue: the companion to the §3 LIFO stack, on the same
// amortized table-doubling analysis — a circular buffer that rebuilds when
// full or sparse.
//
// Batch semantics (documented; mirrors the stack's push-then-pop): all
// ENQUEUEs of a batch append in working-set order, then DEQUEUEs take from
// the front in working-set order.  A dequeue can therefore observe a
// same-batch enqueue only when the pre-batch queue runs dry mid-phase, which
// keeps the phases' parallel loops disjoint.
//
// W(n) = Θ(n) amortized, s(n) = O(lg P): identical to the stack's plug-in
// numbers for Theorem 1.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "batcher/batcher.hpp"
#include "batcher/op_record.hpp"
#include "runtime/api.hpp"

namespace batcher::ds {

template <typename T>
class BatchedQueue final : public BatchedStructure {
 public:
  enum class Kind : std::uint8_t { Enqueue, Dequeue };

  struct Op : OpRecordBase {
    Kind kind = Kind::Enqueue;
    T value{};
    std::optional<T> out;  // Dequeue result
  };

  explicit BatchedQueue(rt::Scheduler& sched,
                        Batcher::SetupPolicy setup = Batcher::kDefaultSetup)
      : batcher_(sched, *this, setup) {
    table_.resize(kInitialCapacity);
  }

  void enqueue(const T& value) {
    Op op;
    op.kind = Kind::Enqueue;
    op.value = value;
    batcher_.batchify(op);
  }

  std::optional<T> dequeue() {
    Op op;
    op.kind = Kind::Dequeue;
    batcher_.batchify(op);
    return op.out;
  }

  std::size_t size_unsafe() const { return size_; }
  std::size_t capacity_unsafe() const { return table_.size(); }

  Batcher& batcher() { return batcher_; }

  void run_batch(OpRecordBase* const* ops, std::size_t count) override {
    enq_.clear();
    deq_.clear();
    for (std::size_t i = 0; i < count; ++i) {
      auto* op = static_cast<Op*>(ops[i]);
      (op->kind == Kind::Enqueue ? enq_ : deq_).push_back(op);
    }

    // ENQUEUE phase: grow if needed, then write all slots in parallel.
    if (size_ + enq_.size() > table_.size()) grow_to(size_ + enq_.size());
    const std::size_t cap = table_.size();
    rt::parallel_for(0, static_cast<std::int64_t>(enq_.size()),
                     [&](std::int64_t i) {
                       table_[(head_ + size_ + static_cast<std::size_t>(i)) % cap] =
                           enq_[static_cast<std::size_t>(i)]->value;
                     });
    size_ += enq_.size();

    // DEQUEUE phase: the j-th dequeue takes the j-th element from the front.
    const std::size_t pops = std::min(deq_.size(), size_);
    rt::parallel_for(0, static_cast<std::int64_t>(pops), [&](std::int64_t j) {
      deq_[static_cast<std::size_t>(j)]->out =
          table_[(head_ + static_cast<std::size_t>(j)) % cap];
    });
    for (std::size_t j = pops; j < deq_.size(); ++j) {
      deq_[j]->out = std::nullopt;  // underflow
    }
    head_ = (head_ + pops) % cap;
    size_ -= pops;

    if (table_.size() > kInitialCapacity && size_ < table_.size() / 4) {
      rebuild(std::max(kInitialCapacity, table_.size() / 2));
    }
  }

 private:
  static constexpr std::size_t kInitialCapacity = 8;

  void grow_to(std::size_t needed) {
    std::size_t cap = table_.size();
    while (cap < needed) cap *= 2;
    rebuild(cap);
  }

  // Rebuild compacts the circular buffer to start at slot 0 (parallel copy —
  // the Θ(size) batch the amortization pays for).
  void rebuild(std::size_t cap) {
    std::vector<T> fresh(cap);
    const std::size_t old_cap = table_.size();
    rt::parallel_for(0, static_cast<std::int64_t>(size_), [&](std::int64_t i) {
      fresh[static_cast<std::size_t>(i)] =
          std::move(table_[(head_ + static_cast<std::size_t>(i)) % old_cap]);
    });
    table_ = std::move(fresh);
    head_ = 0;
  }

  std::vector<T> table_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::vector<Op*> enq_, deq_;  // batch scratch
  Batcher batcher_;
};

}  // namespace batcher::ds
