#include "ds/batched_skiplist.hpp"

#include <algorithm>
#include <cstring>

#include "parallel/prefix_sum.hpp"
#include "parallel/scan.hpp"
#include "parallel/sort.hpp"
#include "runtime/api.hpp"
#include "support/config.hpp"

namespace batcher::ds {

namespace {

using TaggedKey = prep::Tagged<BatchedSkipList::Key>;

// SplitMix64-style mixer: per-batch seed + record index -> height bits, so
// the SortMerge path can draw all heights in parallel while staying
// deterministic for a given (seed, batch) pair.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

BatchedSkipList::BatchedSkipList(rt::Scheduler& sched, std::uint64_t seed,
                                 Batcher::SetupPolicy setup, ApplyPolicy apply)
    : rng_(seed), apply_(apply), batcher_(sched, *this, setup) {
  head_ = allocate_node(/*key=*/0, kMaxHeight);
  for (int l = 0; l < kMaxHeight; ++l) head_->next[l] = nullptr;
}

BatchedSkipList::~BatchedSkipList() {
  for (char* block : arena_blocks_) ::operator delete[](block);
}

char* BatchedSkipList::allocate_bulk(std::size_t bytes) {
  if (arena_used_ + bytes > arena_cap_) {
    const std::size_t block_size = std::max<std::size_t>(bytes, 1u << 20);
    arena_blocks_.push_back(
        static_cast<char*>(::operator new[](block_size)));
    arena_used_ = 0;
    arena_cap_ = block_size;
  }
  char* mem = arena_blocks_.back() + arena_used_;
  arena_used_ += bytes;
  return mem;
}

BatchedSkipList::Node* BatchedSkipList::allocate_node(Key key, int height) {
  const std::size_t bytes =
      sizeof(Node) + sizeof(Node*) * static_cast<std::size_t>(height - 1);
  // Bump allocation with 16-byte alignment.
  const std::size_t aligned = (bytes + 15) & ~std::size_t{15};
  Node* node = reinterpret_cast<Node*>(allocate_bulk(aligned));
  node->key = key;
  node->height = height;
  node->erased = false;
  return node;
}

int BatchedSkipList::height_from_bits(std::uint64_t bits) {
  // Geometric with p = 1/2, capped.  Counting trailing ones of a uniform
  // word gives the same distribution in O(1).
  int h = 1;
  while (h < kMaxHeight && (bits >> (h - 1) & 1u)) ++h;
  return h;
}

int BatchedSkipList::random_height() { return height_from_bits(rng_.next()); }

void BatchedSkipList::find_preds(Key key, Node** preds, Node** succs) const {
  Node* cur = head_;
  for (int l = kMaxHeight - 1; l >= 0; --l) {
    if (l < height_) {
      while (cur->next[l] != nullptr && cur->next[l]->key < key) {
        cur = cur->next[l];
      }
    }
    preds[l] = cur;
    if (succs != nullptr) succs[l] = cur->next[l];
  }
}

BatchedSkipList::Node* BatchedSkipList::find_node(Key key) const {
  Node* cur = head_;
  for (int l = height_ - 1; l >= 0; --l) {
    while (cur->next[l] != nullptr && cur->next[l]->key < key) {
      cur = cur->next[l];
    }
  }
  Node* candidate = cur->next[0];
  return (candidate != nullptr && candidate->key == key) ? candidate : nullptr;
}

// ---------------------------------------------------------------------------
// Blocking (implicitly batched) API.
// ---------------------------------------------------------------------------

bool BatchedSkipList::insert(Key key) {
  Op op;
  op.kind = Kind::Insert;
  op.key = key;
  batcher_.batchify(op);
  return op.found;
}

void BatchedSkipList::multi_insert(std::span<const Key> keys) {
  if (keys.empty()) return;
  Op op;
  op.kind = Kind::MultiInsert;
  op.keys = keys.data();
  op.num_keys = keys.size();
  batcher_.batchify(op);
}

bool BatchedSkipList::contains(Key key) {
  Op op;
  op.kind = Kind::Contains;
  op.key = key;
  batcher_.batchify(op);
  return op.found;
}

bool BatchedSkipList::erase(Key key) {
  Op op;
  op.kind = Kind::Erase;
  op.key = key;
  batcher_.batchify(op);
  return op.found;
}

std::optional<BatchedSkipList::Key> BatchedSkipList::successor(Key probe) {
  Op op;
  op.kind = Kind::Successor;
  op.key = probe;
  batcher_.batchify(op);
  return op.out_key;
}

std::int64_t BatchedSkipList::range_count(Key lo, Key hi) {
  Op op;
  op.kind = Kind::RangeCount;
  op.key = lo;
  op.key2 = hi;
  batcher_.batchify(op);
  return op.count;
}

// ---------------------------------------------------------------------------
// Unsynchronized setup/inspection API.
// ---------------------------------------------------------------------------

bool BatchedSkipList::insert_unsafe(Key key) {
  Node* preds[kMaxHeight];
  find_preds(key, preds);
  Node* hit = preds[0]->next[0];
  if (hit != nullptr && hit->key == key) return false;
  const int h = random_height();
  Node* node = allocate_node(key, h);
  if (h > height_) height_ = h;
  for (int l = 0; l < h; ++l) {
    node->next[l] = preds[l]->next[l];
    preds[l]->next[l] = node;
  }
  ++size_;
  return true;
}

bool BatchedSkipList::contains_unsafe(Key key) const {
  return find_node(key) != nullptr;
}

bool BatchedSkipList::check_invariants() const {
  // Level 0 sorted and counted.
  std::size_t count = 0;
  for (Node* n = head_->next[0]; n != nullptr; n = n->next[0]) {
    ++count;
    if (n->next[0] != nullptr && !(n->key < n->next[0]->key)) return false;
  }
  if (count != size_) return false;
  // Every upper level is a sorted sublist of level 0.
  for (int l = 1; l < height_; ++l) {
    Node* lower = head_->next[0];
    for (Node* n = head_->next[l]; n != nullptr; n = n->next[l]) {
      if (n->height <= l) return false;
      while (lower != nullptr && lower->key < n->key) lower = lower->next[0];
      if (lower != n) return false;
      if (n->next[l] != nullptr && !(n->key < n->next[l]->key)) return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// BOP.
// ---------------------------------------------------------------------------

void BatchedSkipList::run_batch(OpRecordBase* const* ops, std::size_t count) {
  contains_ops_.clear();
  erase_ops_.clear();
  insert_ops_.clear();
  multi_ops_.clear();
  for (std::size_t i = 0; i < count; ++i) {
    Op* op = static_cast<Op*>(ops[i]);
    switch (op->kind) {
      case Kind::Contains:
      case Kind::Successor:
      case Kind::RangeCount:
        contains_ops_.push_back(op);
        break;
      case Kind::Erase: erase_ops_.push_back(op); break;
      case Kind::Insert: insert_ops_.push_back(op); break;
      case Kind::MultiInsert: multi_ops_.push_back(op); break;
    }
  }
  // Documented phase order: reads (pre-state), erase, insert.
  if (!contains_ops_.empty()) apply_reads(contains_ops_);
  if (!erase_ops_.empty()) apply_erases(erase_ops_);
  if (!insert_ops_.empty() || !multi_ops_.empty()) {
    apply_inserts(insert_ops_, multi_ops_);
  }
}

void BatchedSkipList::apply_reads(std::vector<Op*>& ops) {
  rt::parallel_for(
      0, static_cast<std::int64_t>(ops.size()),
      [&](std::int64_t i) {
        Op* op = ops[static_cast<std::size_t>(i)];
        switch (op->kind) {
          case Kind::Contains:
            op->found = (find_node(op->key) != nullptr);
            break;
          case Kind::Successor: {
            // Descend to the predecessor of the probe, then step once.
            const Node* cur = head_;
            for (int l = height_ - 1; l >= 0; --l) {
              while (cur->next[l] != nullptr && cur->next[l]->key < op->key) {
                cur = cur->next[l];
              }
            }
            const Node* succ = cur->next[0];
            op->out_key = succ != nullptr ? std::optional<Key>(succ->key)
                                          : std::nullopt;
            break;
          }
          case Kind::RangeCount: {
            const Node* cur = head_;
            for (int l = height_ - 1; l >= 0; --l) {
              while (cur->next[l] != nullptr && cur->next[l]->key < op->key) {
                cur = cur->next[l];
              }
            }
            std::int64_t n = 0;
            for (const Node* it = cur->next[0];
                 it != nullptr && it->key <= op->key2; it = it->next[0]) {
              ++n;
            }
            op->count = n;
            break;
          }
          default:
            break;
        }
      },
      /*grain=*/8);
}

void BatchedSkipList::apply_erases(std::vector<Op*>& ops) {
  // Sort (key, op index): first op on a key wins the erase.
  std::vector<TaggedKey> keys(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    keys[i] = TaggedKey{ops[i]->key, static_cast<std::uint32_t>(i)};
  }
  par::parallel_sort(keys.data(), static_cast<std::int64_t>(keys.size()));
  if (apply_ == ApplyPolicy::Legacy) {
    apply_erases_legacy(ops, keys);
  } else {
    apply_erases_sortmerge(ops, keys);
  }
}

void BatchedSkipList::apply_erases_legacy(
    std::vector<Op*>& ops, const std::vector<TaggedKey>& keys) {
  // Parallel search for per-level predecessors of each distinct key.
  const std::size_t nk = keys.size();
  pred_scratch_.assign(nk * kMaxHeight, nullptr);
  rt::parallel_for(
      0, static_cast<std::int64_t>(nk),
      [&](std::int64_t i) {
        const auto idx = static_cast<std::size_t>(i);
        if (idx > 0 && keys[idx].key == keys[idx - 1].key) return;  // dup
        find_preds(keys[idx].key, &pred_scratch_[idx * kMaxHeight]);
      },
      /*grain=*/8);

  // Sequential unlink in ascending key order.  A recorded predecessor may
  // itself have been erased earlier in this phase; updating its pointers
  // would leave the victim linked in the live chain.  `finger[l]` tracks the
  // most recent *live* level-l predecessor (keys ascend, so fingers only
  // move forward), and a dead recorded predecessor falls back to it.
  Node* finger[kMaxHeight];
  for (int l = 0; l < kMaxHeight; ++l) finger[l] = head_;
  for (std::size_t i = 0; i < nk; ++i) {
    Op* op = ops[keys[i].ws];
    if (i > 0 && keys[i].key == keys[i - 1].key) {
      op->found = false;  // duplicate erase in the same batch loses
      continue;
    }
    const Key key = keys[i].key;
    Node** preds = &pred_scratch_[i * kMaxHeight];
    // Locate the victim from a live level-0 predecessor.
    Node* p0 = preds[0];
    if (p0->erased || (finger[0] != head_ &&
                       (p0 == head_ || finger[0]->key > p0->key))) {
      p0 = finger[0];
    }
    Node* hit = p0->next[0];
    while (hit != nullptr && hit->key < key) hit = hit->next[0];
    if (hit == nullptr || hit->key != key) {
      op->found = false;
      continue;
    }
    for (int l = 0; l < hit->height; ++l) {
      Node* p = preds[l];
      if (p->erased ||
          (finger[l] != head_ && (p == head_ || finger[l]->key > p->key))) {
        p = finger[l];
      }
      while (p->next[l] != hit && p->next[l] != nullptr &&
             p->next[l]->key < key) {
        p = p->next[l];
      }
      if (p->next[l] == hit) {
        p->next[l] = hit->next[l];
        finger[l] = p;
      }
    }
    hit->erased = true;
    --size_;
    op->found = true;
    // Memory stays in the arena (reclaimed at destruction; see header).
  }
  while (height_ > 1 && head_->next[height_ - 1] == nullptr) --height_;
}

void BatchedSkipList::apply_erases_sortmerge(
    std::vector<Op*>& ops, const std::vector<TaggedKey>& keys) {
  // Search phase (read-only): per-level predecessors plus the victim node
  // for the first op on each distinct key.  Searches run before any unlink,
  // so preds[0]->next[0] is the exact pre-batch candidate.
  // Scratch grows but is never pre-cleared: every slot the later passes read
  // is written here (including explicit nulls for duplicates and misses), so
  // a serial O(n·lg n)-byte fill never lands on the critical path.
  const std::size_t nk = keys.size();
  if (pred_scratch_.size() < nk * kMaxHeight) {
    pred_scratch_.resize(nk * kMaxHeight);
  }
  if (node_scratch_.size() < nk) node_scratch_.resize(nk);
  rt::parallel_for(
      0, static_cast<std::int64_t>(nk),
      [&](std::int64_t i) {
        const auto idx = static_cast<std::size_t>(i);
        Op* op = ops[keys[idx].ws];
        if (idx > 0 && keys[idx].key == keys[idx - 1].key) {
          op->found = false;  // duplicate erase in the same batch loses
          node_scratch_[idx] = nullptr;
          return;
        }
        Node** preds = &pred_scratch_[idx * kMaxHeight];
        find_preds(keys[idx].key, preds);
        Node* hit = preds[0]->next[0];
        if (hit != nullptr && hit->key == keys[idx].key) {
          node_scratch_[idx] = hit;
          op->found = true;
        } else {
          node_scratch_[idx] = nullptr;
          op->found = false;
        }
      },
      /*grain=*/8);

  const std::int64_t m = par::pack_indices(
      static_cast<std::int64_t>(nk),
      [&](std::int64_t i) {
        return node_scratch_[static_cast<std::size_t>(i)] != nullptr;
      },
      live_index_);
  if (m == 0) return;

  // Mark all victims before touching any pointer: the unlink pass below uses
  // `erased` to recognize "my recorded predecessor is itself a victim".
  rt::parallel_for(
      0, m,
      [&](std::int64_t j) {
        node_scratch_[live_index_[static_cast<std::size_t>(j)]]->erased = true;
      },
      /*grain=*/64);

  // Unlink, one independent pass per level.  At level l the victims (in key
  // order) split into maximal chain-adjacent runs: a victim whose recorded
  // level-l predecessor is live starts a run, and the level-l predecessor of
  // a victim is chain-adjacent, so a dead predecessor is exactly the
  // previous level-l victim.  Each run's head rewires the single live
  // predecessor past the whole run; victims' own pointers stay pristine, so
  // every memory location is written by exactly one task.
  rt::parallel_for(
      0, height_,
      [&](std::int64_t level) {
        const int l = static_cast<int>(level);
        std::vector<std::uint32_t> at_level;
        const std::int64_t sz = par::pack_indices(
            m,
            [&](std::int64_t j) {
              return node_scratch_[live_index_[static_cast<std::size_t>(j)]]
                         ->height > l;
            },
            at_level);
        if (sz == 0) return;
        auto pred_of = [&](std::int64_t t) -> Node* {
          const std::size_t idx = live_index_[at_level[
              static_cast<std::size_t>(t)]];
          return pred_scratch_[idx * kMaxHeight + l];
        };
        auto victim_of = [&](std::int64_t t) -> Node* {
          return node_scratch_[live_index_[at_level[
              static_cast<std::size_t>(t)]]];
        };
        // Run ids via inclusive scan of head flags, then scatter each run's
        // last position so heads can reach their run's tail in O(1).
        std::vector<std::uint32_t> run_id(static_cast<std::size_t>(sz));
        rt::parallel_for(
            0, sz,
            [&](std::int64_t t) {
              const bool head = t == 0 || !pred_of(t)->erased;
              run_id[static_cast<std::size_t>(t)] = head ? 1u : 0u;
            },
            /*grain=*/32);
        par::scan_inclusive(run_id.data(), sz,
                            [](std::uint32_t a, std::uint32_t b) {
                              return a + b;
                            });
        const std::size_t nruns = run_id[static_cast<std::size_t>(sz - 1)];
        std::vector<std::uint32_t> run_last(nruns);
        rt::parallel_for(
            0, sz,
            [&](std::int64_t t) {
              const auto ti = static_cast<std::size_t>(t);
              if (t + 1 == sz || run_id[ti + 1] != run_id[ti]) {
                run_last[run_id[ti] - 1] = static_cast<std::uint32_t>(t);
              }
            },
            /*grain=*/32);
        rt::parallel_for(
            0, sz,
            [&](std::int64_t t) {
              const auto ti = static_cast<std::size_t>(t);
              const bool head = t == 0 || run_id[ti - 1] != run_id[ti];
              if (!head) return;
              Node* tail = victim_of(run_last[run_id[ti] - 1]);
              pred_of(t)->next[l] = tail->next[l];
            },
            /*grain=*/16);
      },
      /*grain=*/1);

  size_ -= static_cast<std::size_t>(m);
  while (height_ > 1 && head_->next[height_ - 1] == nullptr) --height_;
}

void BatchedSkipList::apply_inserts(const std::vector<Op*>& single,
                                    const std::vector<Op*>& multi) {
  // Step 1 (gather): compute per-op key offsets with a prefix sum, then copy
  // all keys in parallel.
  const std::size_t num_sources = single.size() + multi.size();
  key_offsets_.assign(num_sources, 0);
  for (std::size_t i = 0; i < single.size(); ++i) key_offsets_[i] = 1;
  for (std::size_t i = 0; i < multi.size(); ++i) {
    key_offsets_[single.size() + i] =
        static_cast<std::uint32_t>(multi[i]->num_keys);
  }
  par::scan_inclusive(key_offsets_.data(),
                      static_cast<std::int64_t>(num_sources),
                      [](std::uint32_t a, std::uint32_t b) { return a + b; });
  const std::size_t total_keys = key_offsets_[num_sources - 1];

  std::vector<TaggedKey> keys(total_keys);
  rt::parallel_for(
      0, static_cast<std::int64_t>(num_sources),
      [&](std::int64_t si) {
        const auto s = static_cast<std::size_t>(si);
        const std::size_t end = key_offsets_[s];
        if (s < single.size()) {
          keys[end - 1] = TaggedKey{single[s]->key, static_cast<std::uint32_t>(s)};
        } else {
          const Op* op = multi[s - single.size()];
          const std::size_t begin = end - op->num_keys;
          for (std::size_t k = 0; k < op->num_keys; ++k) {
            keys[begin + k] =
                TaggedKey{op->keys[k], static_cast<std::uint32_t>(s)};
          }
        }
      },
      /*grain=*/8);

  // Step 1 (sort).
  par::parallel_sort(keys.data(), static_cast<std::int64_t>(keys.size()));

  if (apply_ == ApplyPolicy::Legacy) {
    apply_inserts_legacy(single, multi, keys);
  } else {
    apply_inserts_sortmerge(single, multi, keys);
  }
}

void BatchedSkipList::apply_inserts_legacy(
    const std::vector<Op*>& single, const std::vector<Op*>& multi,
    const std::vector<TaggedKey>& keys) {
  (void)multi;
  // Step 2 (parallel search): per-level predecessors for the first
  // occurrence of every distinct key.
  const std::size_t nk = keys.size();
  pred_scratch_.assign(nk * kMaxHeight, nullptr);
  rt::parallel_for(
      0, static_cast<std::int64_t>(nk),
      [&](std::int64_t i) {
        const auto idx = static_cast<std::size_t>(i);
        if (idx > 0 && keys[idx].key == keys[idx - 1].key) return;  // dup
        find_preds(keys[idx].key, &pred_scratch_[idx * kMaxHeight]);
      },
      /*grain=*/8);

  // Step 3 (sequential splice), ascending.  For each level, the true
  // predecessor is whichever is later of (a) the recorded pre-batch
  // predecessor and (b) the most recently spliced new node reaching that
  // level — both have keys < key, and nothing else can lie between.
  Node* last_spliced[kMaxHeight] = {nullptr};
  for (std::size_t i = 0; i < nk; ++i) {
    const Key key = keys[i].key;
    const std::uint32_t src = keys[i].ws;
    Op* op = src < single.size() ? single[src] : nullptr;
    if (i > 0 && keys[i].key == keys[i - 1].key) {
      if (op != nullptr) op->found = false;  // duplicate within batch
      continue;
    }
    Node** preds = &pred_scratch_[i * kMaxHeight];
    // Already present?
    {
      Node* p = preds[0];
      if (last_spliced[0] != nullptr &&
          (p == head_ || last_spliced[0]->key > p->key)) {
        p = last_spliced[0];
      }
      Node* hit = p->next[0];
      while (hit != nullptr && hit->key < key) hit = hit->next[0];
      if (hit != nullptr && hit->key == key) {
        if (op != nullptr) op->found = false;
        continue;
      }
    }
    const int h = random_height();
    Node* node = allocate_node(key, h);
    if (h > height_) height_ = h;
    for (int l = 0; l < h; ++l) {
      Node* p = preds[l];
      if (last_spliced[l] != nullptr &&
          (p == head_ || last_spliced[l]->key > p->key)) {
        p = last_spliced[l];
      }
      node->next[l] = p->next[l];
      p->next[l] = node;
      last_spliced[l] = node;
    }
    ++size_;
    if (op != nullptr) op->found = true;
  }
}

void BatchedSkipList::apply_inserts_sortmerge(
    const std::vector<Op*>& single, const std::vector<Op*>& multi,
    const std::vector<TaggedKey>& keys) {
  (void)multi;
  // Step 2 (parallel search): per-level predecessors *and* their pre-batch
  // successors for the first occurrence of every distinct key, plus the
  // presence test.  The list is untouched until the splice, so
  // preds[0]->next[0] is exact and no re-walk is needed.
  // Scratch grows but is never pre-cleared (see apply_erases_sortmerge):
  // every slot read downstream — flags for all records, preds/succs for the
  // packed fresh records — is written by this pass.
  const std::size_t nk = keys.size();
  if (pred_scratch_.size() < nk * kMaxHeight) {
    pred_scratch_.resize(nk * kMaxHeight);
  }
  if (succ_scratch_.size() < nk * kMaxHeight) {
    succ_scratch_.resize(nk * kMaxHeight);
  }
  if (flag_scratch_.size() < nk) flag_scratch_.resize(nk);
  rt::parallel_for(
      0, static_cast<std::int64_t>(nk),
      [&](std::int64_t i) {
        const auto idx = static_cast<std::size_t>(i);
        const std::uint32_t src = keys[idx].ws;
        Op* op = src < single.size() ? single[src] : nullptr;
        if (idx > 0 && keys[idx].key == keys[idx - 1].key) {
          if (op != nullptr) op->found = false;  // duplicate within batch
          flag_scratch_[idx] = 0;
          return;
        }
        Node** preds = &pred_scratch_[idx * kMaxHeight];
        Node** succs = &succ_scratch_[idx * kMaxHeight];
        find_preds(keys[idx].key, preds, succs);
        Node* hit = succs[0];
        const bool present = hit != nullptr && hit->key == keys[idx].key;
        flag_scratch_[idx] = present ? 0 : 1;
        if (op != nullptr) op->found = !present;
      },
      /*grain=*/8);

  const std::int64_t m = par::pack_indices(
      static_cast<std::int64_t>(nk),
      [&](std::int64_t i) {
        return flag_scratch_[static_cast<std::size_t>(i)] != 0;
      },
      live_index_);
  if (m == 0) return;

  // Draw heights and carve one contiguous arena block: per-node byte sizes,
  // exclusive scan for offsets, then parallel placement-init.
  const std::uint64_t batch_seed = rng_.next();
  height_scratch_.resize(static_cast<std::size_t>(m));
  offset_scratch_.resize(static_cast<std::size_t>(m));
  rt::parallel_for(
      0, m,
      [&](std::int64_t j) {
        const auto ji = static_cast<std::size_t>(j);
        const int h = height_from_bits(
            mix64(batch_seed + static_cast<std::uint64_t>(j)));
        height_scratch_[ji] = h;
        const std::size_t bytes =
            sizeof(Node) + sizeof(Node*) * static_cast<std::size_t>(h - 1);
        offset_scratch_[ji] = (bytes + 15) & ~std::size_t{15};
      },
      /*grain=*/64);
  const std::size_t total_bytes = par::scan_exclusive(
      offset_scratch_.data(), m,
      [](std::size_t a, std::size_t b) { return a + b; }, std::size_t{0});
  char* base = allocate_bulk(total_bytes);
  node_scratch_.resize(static_cast<std::size_t>(m));
  rt::parallel_for(
      0, m,
      [&](std::int64_t j) {
        const auto ji = static_cast<std::size_t>(j);
        Node* node = reinterpret_cast<Node*>(base + offset_scratch_[ji]);
        node->key = keys[live_index_[ji]].key;
        node->height = height_scratch_[ji];
        node->erased = false;
        node_scratch_[ji] = node;
      },
      /*grain=*/32);

  // Step 3 (divide-and-conquer splice): levels are pointer-disjoint, so they
  // run in parallel; within a level, new nodes sharing a pre-batch
  // predecessor form a contiguous segment in key order.  Every node writes
  // its own forward pointer (next new node in its segment, else the shared
  // predecessor's pre-batch successor) and each segment head rewires the
  // predecessor — one flat parallel_for, each location written once.
  // Levels above the tallest new node are empty; skip them.
  const int max_new_h = static_cast<int>(par::reduce<std::int64_t>(
      m,
      [&](std::int64_t j) {
        return static_cast<std::int64_t>(
            height_scratch_[static_cast<std::size_t>(j)]);
      },
      [](std::int64_t a, std::int64_t b) { return a > b ? a : b; },
      std::int64_t{1}));
  rt::parallel_for(
      0, max_new_h,
      [&](std::int64_t level) {
        const int l = static_cast<int>(level);
        std::vector<std::uint32_t> at_level;
        const std::int64_t sz = par::pack_indices(
            m,
            [&](std::int64_t j) {
              return height_scratch_[static_cast<std::size_t>(j)] > l;
            },
            at_level);
        if (sz == 0) return;
        auto pred_of = [&](std::int64_t t) -> Node* {
          const std::size_t idx = live_index_[at_level[
              static_cast<std::size_t>(t)]];
          return pred_scratch_[idx * kMaxHeight + l];
        };
        rt::parallel_for(
            0, sz,
            [&](std::int64_t t) {
              const auto ti = static_cast<std::size_t>(t);
              const std::size_t idx = live_index_[at_level[ti]];
              Node* node = node_scratch_[at_level[ti]];
              Node* pred = pred_of(t);
              if (t + 1 < sz && pred_of(t + 1) == pred) {
                node->next[l] = node_scratch_[at_level[ti + 1]];
              } else {
                node->next[l] = succ_scratch_[idx * kMaxHeight + l];
              }
              if (t == 0 || pred_of(t - 1) != pred) {
                pred->next[l] = node;  // segment head rewires the predecessor
              }
            },
            /*grain=*/16);
      },
      /*grain=*/1);

  size_ += static_cast<std::size_t>(m);
  for (int l = height_; l < kMaxHeight; ++l) {
    if (head_->next[l] != nullptr) height_ = l + 1;
  }
}

}  // namespace batcher::ds
