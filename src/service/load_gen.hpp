// Open-loop load generator for the batched service front-end (DESIGN.md §15).
//
// Closed-loop drivers (every bench so far) submit the next op when the last
// one resolves, so a slow server politely slows its own load — and its
// latency numbers lie.  A service is measured open loop: requests arrive on
// a wall-clock schedule that does not care how the server is doing, and
// latency is measured from the *intended* arrival time, so client-side
// queueing behind a slow request is charged to the server (the standard
// coordinated-omission correction).
//
// The arrival schedule is the simulator's, made real: a seeded
// sim::ScenarioGen supplies both the op tape (which keys, uniform / zipfian
// / working-set skew) and the ArrivalProcess (which instant, uniform pacing
// or flash-crowd waves), mapped to nanoseconds by the configured rate:
//
//   1-wave shapes:  t_i = i * ns_per_req + jitter_i * (ns_per_req / 4)
//   flash crowds:   t_i = wave_i * (burst * ns_per_req
//                                   + quiet * (ns_per_req / 4))
//                         + jitter_i * (ns_per_req / 4)
//
// so `rate` is the steady offered rate for 1-wave shapes and the *in-burst*
// rate for flash crowds (a crowd is `burst` requests inside roughly a burst
// window, then a quiet gap — the configured rate names the crowd's
// intensity, not the long-run average).  Leaf i is replayed by client
// thread i mod clients; same seed, same schedule, same keys, exactly.
//
// Each request resolves to exactly one Outcome, so the generator's ledger
//   ok + failed + timed_out + shed == requests
// is the client-side mirror of the domain-side resolution identity —
// together they prove no request is lost between a client and a shard.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "batcher/external.hpp"
#include "support/backoff.hpp"
#include "sim/scenario.hpp"
#include "support/rng.hpp"
#include "trace/histogram.hpp"

namespace batcher::service {

// How one request ended.  Mirrors the domain-side counters: kOk/kFailed
// resolve through the batch (or the close/quarantine drain), kTimedOut is a
// deadline revocation, kShed never published (after retries, if any).
enum class Outcome : std::uint8_t { kOk, kFailed, kTimedOut, kShed };

struct SloResult {
  Outcome outcome = Outcome::kOk;
  unsigned retries = 0;  // DomainOverloaded rejections retried
};

// Deadline-bounded submit with jittered retry on shed: the client-side
// discipline a front-end request handler runs.  Retries only
// DomainOverloaded (side-effect-free by contract), gives up when the retry
// budget or the deadline is exhausted (kShed — the request never reached a
// slot), and classifies every other termination: claimed-and-applied (kOk),
// deadline revocation (kTimedOut), closed/quarantined domain or a failed
// batch (kFailed).  Never throws.
inline SloResult submit_slo(ExternalDomain& domain, std::size_t tid,
                            OpRecordBase& op,
                            std::chrono::steady_clock::time_point deadline,
                            const RetryPolicy& policy, Xoshiro256& rng) {
  SloResult r;
  for (unsigned attempt = 0;; ++attempt) {
    try {
      domain.submit_until(tid, op, deadline);
      r.outcome = Outcome::kOk;
      return r;
    } catch (const DomainOverloaded&) {
      if (attempt >= policy.max_retries ||
          std::chrono::steady_clock::now() >= deadline) {
        r.outcome = Outcome::kShed;
        return r;
      }
      ++r.retries;
      const unsigned shift = attempt < 31u ? attempt : 31u;
      const std::uint64_t full =
          std::min<std::uint64_t>(policy.max_spins,
                                  std::uint64_t{policy.base_spins} << shift);
      const std::uint64_t spins = full / 2 + rng.next_below(full / 2 + 1);
      for (std::uint64_t i = 0; i < spins; ++i) cpu_relax();
    } catch (const OpTimedOut&) {
      r.outcome = Outcome::kTimedOut;
      return r;
    } catch (...) {
      // DomainClosed / DomainQuarantined, or the batch's own error
      // rethrown through the record: the request resolved, unsuccessfully.
      r.outcome = Outcome::kFailed;
      return r;
    }
  }
}

struct LoadGenConfig {
  sim::Shape shape = sim::Shape::Uniform;
  std::int64_t requests = 1024;
  std::uint64_t seed = 1;
  unsigned clients = 4;        // client threads; tids [0, clients)
  double rate = 100e3;         // offered requests/second (in-burst for crowds)
  std::chrono::nanoseconds deadline{std::chrono::milliseconds(20)};
  RetryPolicy retry;           // shed-retry discipline per request
  std::int64_t key_space = 512;
};

struct LoadGenStats {
  trace::LatencyHistogram latency;  // intended-arrival -> resolve, ns
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t shed = 0;
  std::uint64_t retries = 0;
  double wall_seconds = 0.0;

  std::uint64_t requests() const { return ok + failed + timed_out + shed; }

  void merge(const LoadGenStats& other) {
    latency.merge(other.latency);
    ok += other.ok;
    failed += other.failed;
    timed_out += other.timed_out;
    shed += other.shed;
    retries += other.retries;
  }
};

// Replay the seeded arrival schedule against a request handler.
//
//   SloResult fn(unsigned client, const sim::OpDesc& op,
//                std::chrono::steady_clock::time_point deadline,
//                Xoshiro256& rng);
//
// `fn` routes the op to a shard and submits it (typically via submit_slo);
// it runs on client thread `client` and must use that value as the
// submitting tid.  Returns the merged per-client stats; by construction
// stats.requests() == the number of schedule entries replayed.
template <typename RequestFn>
LoadGenStats run_open_loop(const LoadGenConfig& cfg, RequestFn&& fn) {
  using Clock = std::chrono::steady_clock;

  sim::ScenarioConfig scfg =
      sim::make_scenario_config(cfg.shape, cfg.requests, cfg.seed);
  scfg.key_space = cfg.key_space;
  const sim::ScenarioGen gen(scfg);
  const std::vector<sim::Arrival> schedule = gen.arrival_schedule();
  // One request per leaf; shapes with ds_per_leaf > 1 (TrappedHeavy) fold
  // each leaf's sequential run into one request keyed by its first op.
  const std::int64_t n = gen.leaves();
  const std::int64_t ds_per_leaf = scfg.ds_per_leaf;

  const double ns_per_req = cfg.rate > 0.0 ? 1e9 / cfg.rate : 0.0;
  const double jitter_unit = ns_per_req / 4.0;
  const double wave_period =
      static_cast<double>(scfg.burst) * ns_per_req +
      static_cast<double>(gen.arrivals().quiet_between()) * jitter_unit;
  const bool one_wave = gen.arrivals().waves() == 1;

  std::vector<std::int64_t> offsets_ns(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const sim::Arrival a = schedule[static_cast<std::size_t>(i)];
    const double base =
        one_wave ? static_cast<double>(i) * ns_per_req
                 : static_cast<double>(a.wave) * wave_period;
    offsets_ns[static_cast<std::size_t>(i)] = static_cast<std::int64_t>(
        base + static_cast<double>(a.jitter) * jitter_unit);
  }

  const unsigned clients = cfg.clients != 0 ? cfg.clients : 1;
  std::vector<LoadGenStats> per_client(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  // Small lead so every client is parked on its first wait when the clock
  // starts — thread spawn latency must not skew the head of the schedule.
  const Clock::time_point start =
      Clock::now() + std::chrono::milliseconds(2);

  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      LoadGenStats& stats = per_client[c];
      Xoshiro256 rng(cfg.seed ^ SplitMix64(c + 1).next());
      for (std::int64_t i = c; i < n; i += clients) {
        const Clock::time_point intended =
            start +
            std::chrono::nanoseconds(offsets_ns[static_cast<std::size_t>(i)]);
        // Coarse sleep, fine spin: sleep granularity must not become
        // arrival jitter.
        while (Clock::now() < intended) {
          const auto remaining = intended - Clock::now();
          if (remaining > std::chrono::microseconds(200)) {
            std::this_thread::sleep_until(
                intended - std::chrono::microseconds(100));
          } else {
            cpu_relax();
          }
        }
        const Clock::time_point deadline = intended + cfg.deadline;
        const sim::OpDesc& op =
            gen.tape()[static_cast<std::size_t>(i * ds_per_leaf)];
        const SloResult r = fn(c, op, deadline, rng);
        const auto resolved = Clock::now();
        stats.latency.add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(resolved -
                                                                 intended)
                .count()));
        stats.retries += r.retries;
        switch (r.outcome) {
          case Outcome::kOk: ++stats.ok; break;
          case Outcome::kFailed: ++stats.failed; break;
          case Outcome::kTimedOut: ++stats.timed_out; break;
          case Outcome::kShed: ++stats.shed; break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  LoadGenStats total;
  for (const LoadGenStats& s : per_client) total.merge(s);
  total.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return total;
}

}  // namespace batcher::service
