// ShardRouter — the batched service front-end's routing layer (DESIGN.md §15).
//
// The paper's §8 sketch (ExternalDomain) bridges ONE structure to pthreaded
// callers.  A service is K structures: several independent keyspaces (a
// hash map, an index, a queue of work), each possibly replicated into shards
// so one hot structure does not serialize the whole front-end.  ShardRouter
// owns one ExternalDomain per shard over one shared scheduler and answers
// two questions:
//
//  * Routing: which shard serves (group, key)?  A SplitMix64 finalizer over
//    the key picks uniformly among the group's shards, so zipfian key skew
//    is spread by hash, not by the raw key's arithmetic locality.  Routing
//    is pure — same (group, key), same shard — so a client retrying after a
//    shed lands on the same backlog it was shed from (the point of the
//    bound), and tests can predict placements exactly.
//
//  * Pump scheduling: K shards must not cost K dedicated workers.  serve()
//    spawns `pump_tasks` pump tasks (default: one per shard, capped at the
//    worker count) via rt::parallel_for; pump task i round-robins
//    ExternalDomain::pump_once() over the shards with index ≡ i mod
//    pump_tasks.  A shard is pumped by exactly one task, preserving
//    Invariant 1 per domain, while one worker can keep several lightly
//    loaded shards live.  When a closed shard's scan comes back empty the
//    owning pump runs its drain_closed() exactly once and retires it;
//    serve() returns when every shard is drained.
//
// Submit-side semantics (deadlines, shedding, retry, quarantine) are
// unchanged from ExternalDomain — the router only picks the domain.  The
// per-shard resolution identity ops_served == ops_succeeded + ops_failed +
// ops_timed_out therefore holds shard by shard, and total_stats() sums it.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "batcher/external.hpp"
#include "runtime/api.hpp"
#include "support/rng.hpp"

namespace batcher::service {

// Stateless SplitMix64 finalizer: one next() from a key-seeded stream.
// Decorrelates shard choice from key arithmetic (k and k+1 land anywhere).
inline std::uint64_t mix_key(std::uint64_t key) {
  return SplitMix64(key).next();
}

class ShardRouter {
 public:
  struct Options {
    // Client threads that may submit concurrently; becomes every shard
    // domain's `max_threads` (client tid t uses slot t in every shard).
    std::size_t max_threads = 1;
    // Applied to every shard's ExternalDomain (batch_cap, shed_threshold,
    // stall_probe).  Shedding is therefore a *per-shard* backlog bound.
    ExternalDomain::Options domain;
    // Pump tasks serve() spawns; 0 means min(num_shards, num_workers).
    // Clamped to [1, min(num_shards, num_workers)]: more pumps than shards
    // is waste, more than workers would leave shards unpumped until another
    // pump task finishes — which is only at shutdown.
    std::size_t pump_tasks = 0;
  };

  ShardRouter(rt::Scheduler& sched, Options options)
      : sched_(sched), options_(std::move(options)) {}

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  // Register one keyspace served by `shards` (≥1 structure replicas).
  // Returns the group id used for routing.  Not thread-safe; call before
  // serve().
  std::size_t add_group(const std::vector<BatchedStructure*>& shards) {
    BATCHER_ASSERT(!shards.empty(), "a shard group needs >= 1 structures");
    const std::size_t group = groups_.size();
    groups_.push_back({domains_.size(), shards.size()});
    for (BatchedStructure* ds : shards) {
      domains_.push_back(std::make_unique<ExternalDomain>(
          sched_, *ds, options_.max_threads, options_.domain));
    }
    return group;
  }

  std::size_t num_shards() const { return domains_.size(); }
  std::size_t num_groups() const { return groups_.size(); }
  std::size_t group_begin(std::size_t group) const {
    return groups_[group].begin;
  }
  std::size_t group_size(std::size_t group) const {
    return groups_[group].count;
  }

  // Pure routing: the global shard index serving (group, key).
  std::size_t shard_of(std::size_t group, std::int64_t key) const {
    const Group& g = groups_[group];
    return g.begin +
           static_cast<std::size_t>(mix_key(static_cast<std::uint64_t>(key)) %
                                    g.count);
  }

  ExternalDomain& domain(std::size_t shard) { return *domains_[shard]; }
  const ExternalDomain& domain(std::size_t shard) const {
    return *domains_[shard];
  }
  ExternalDomain& domain_for(std::size_t group, std::int64_t key) {
    return *domains_[shard_of(group, key)];
  }

  // Routed submits: ExternalDomain's submit family, with the domain chosen
  // by (group, key).  All of that layer's error contracts apply unchanged.
  void submit(std::size_t group, std::int64_t key, std::size_t tid,
              OpRecordBase& op) {
    domain_for(group, key).submit(tid, op);
  }
  void submit_until(std::size_t group, std::int64_t key, std::size_t tid,
                    OpRecordBase& op,
                    std::chrono::steady_clock::time_point deadline) {
    domain_for(group, key).submit_until(tid, op, deadline);
  }
  void submit_with_retry(std::size_t group, std::int64_t key, std::size_t tid,
                         OpRecordBase& op, const RetryPolicy& policy) {
    domain_for(group, key).submit_with_retry(tid, op, policy);
  }

  // The multi-shard pump.  Run inside Scheduler::run (as the root task);
  // returns once every shard is shut down and drained.
  void serve() {
    const std::size_t shards = domains_.size();
    BATCHER_ASSERT(shards != 0, "serve() with no shards");
    std::size_t pumps = options_.pump_tasks != 0
                            ? options_.pump_tasks
                            : std::min<std::size_t>(shards,
                                                    sched_.num_workers());
    pumps = std::min({pumps, shards,
                      static_cast<std::size_t>(sched_.num_workers())});
    if (pumps == 0) pumps = 1;
    // grain 1: each pump task is one long-lived index; idle workers steal
    // the rest of the range while task 0 is already pumping.
    rt::parallel_for(
        std::int64_t{0}, static_cast<std::int64_t>(pumps),
        [&](std::int64_t pump) { pump_loop(static_cast<std::size_t>(pump), pumps); },
        /*grain=*/1);
  }

  // Close every shard: blocked submits fail with DomainClosed, the pumps
  // drain and serve() returns.  Safe from any thread; idempotent.
  void shutdown() {
    for (auto& d : domains_) d->shutdown();
  }

  // Escalation for one wedged shard (see ExternalDomain::quarantine): the
  // other shards keep serving — the blast radius of a wedged structure is
  // its keyspace slice, not the whole front-end.
  void quarantine(std::size_t shard, bool fail_claimed = false) {
    domains_[shard]->quarantine(fail_claimed);
  }

  ExternalStats stats(std::size_t shard) const {
    return domains_[shard]->stats();
  }

  // Sum of the per-shard snapshots; the resolution identity survives the sum.
  ExternalStats total_stats() const {
    ExternalStats total;
    for (const auto& d : domains_) {
      const ExternalStats s = d->stats();
      total.ops_served += s.ops_served;
      total.ops_succeeded += s.ops_succeeded;
      total.ops_failed += s.ops_failed;
      total.ops_timed_out += s.ops_timed_out;
      total.ops_shed += s.ops_shed;
      total.batches_served += s.batches_served;
      total.batches_failed += s.batches_failed;
      total.retries_attempted += s.retries_attempted;
    }
    return total;
  }

 private:
  struct Group {
    std::size_t begin = 0;  // first shard index
    std::size_t count = 0;  // shards in this group
  };

  // Pump task `pump` of `pumps`: round-robin pump_once() over the owned
  // shards until each is closed, scanned empty, and drained.
  void pump_loop(std::size_t pump, std::size_t pumps) {
    std::vector<ExternalDomain*> mine;
    for (std::size_t d = pump; d < domains_.size(); d += pumps) {
      mine.push_back(domains_[d].get());
    }
    std::vector<bool> drained(mine.size(), false);
    std::size_t live = mine.size();
    Backoff backoff;
    while (live != 0) {
      bool progress = false;
      for (std::size_t j = 0; j < mine.size(); ++j) {
        if (drained[j]) continue;
        ExternalDomain& d = *mine[j];
        if (d.pump_once()) {
          progress = true;
          continue;
        }
        // Empty scan on a closed shard: same exit condition as
        // ExternalDomain::serve(), per shard.
        if (d.closed()) {
          d.drain_closed();
          drained[j] = true;
          --live;
        }
      }
      if (progress) {
        backoff.reset();
      } else {
        backoff.pause();
      }
    }
  }

  rt::Scheduler& sched_;
  Options options_;
  std::vector<std::unique_ptr<ExternalDomain>> domains_;
  std::vector<Group> groups_;
};

}  // namespace batcher::service
