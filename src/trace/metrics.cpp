#include "trace/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace batcher::trace {

namespace {

// Per-thread pairing state while replaying a record stream.
struct ThreadPairing {
  std::uint64_t op_submit_ts = 0;
  bool op_open = false;
  std::uint64_t flag_ts = 0;
  bool flag_open = false;
  std::uint64_t launch_ts = 0;
  bool launch_open = false;  // kLaunchEnter seen, awaiting kCollected
  std::uint64_t collected_ts = 0;
  bool bop_open = false;  // kCollected seen, awaiting kBopDone
  std::uint64_t bop_ts = 0;
  bool complete_open = false;  // kBopDone seen, awaiting kLaunchExit
  std::uint64_t steal_streak_ts = 0;
  bool steal_streak_open = false;

  std::uint64_t open_edges() const {
    return static_cast<std::uint64_t>(op_open) + flag_open + launch_open +
           bop_open + complete_open;
  }
};

std::uint64_t delta(std::uint64_t from, std::uint64_t to) {
  return to >= from ? to - from : 0;
}

// Attribution state machine: the innermost open window decides the bucket.
enum class Bucket : std::uint8_t { Steal, Useful, Trapped, FlagWait, Parked };

struct BucketFrame {
  Bucket bucket;
  EventId opened_by;
};

// Decomposes one worker thread's records into the five attribution buckets.
// Clamping every timestamp into [t0, t1] keeps the partition exact even if a
// record carries a timestamp from just outside the session window.
struct AttributionReplay {
  MetricsReport::Attribution& a;
  std::uint64_t t0;
  std::uint64_t t1;
  std::vector<BucketFrame> stack;
  std::uint64_t cursor;
  bool closed = false;
  bool degraded = false;

  AttributionReplay(MetricsReport::Attribution& attribution, std::uint64_t t0_ns,
                    std::uint64_t t1_ns, std::uint64_t window_start)
      : a(attribution), t0(t0_ns), t1(t1_ns), cursor(clamp(window_start)) {}

  std::uint64_t clamp(std::uint64_t ts) const {
    return ts < t0 ? t0 : (ts > t1 ? t1 : ts);
  }

  std::uint64_t& cell(Bucket b) {
    switch (b) {
      case Bucket::Useful: return a.useful_ns;
      case Bucket::Trapped: return a.trapped_ns;
      case Bucket::FlagWait: return a.flag_wait_ns;
      case Bucket::Parked: return a.parked_ns;
      case Bucket::Steal: break;
    }
    return a.steal_ns;
  }

  void advance_to(std::uint64_t ts) {
    ts = clamp(ts);
    const std::uint64_t d = delta(cursor, ts);
    cursor = ts;
    if (d == 0) return;
    cell(stack.empty() ? Bucket::Steal : stack.back().bucket) += d;
    a.attributed_ns += d;
  }

  void push(Bucket b, EventId by) { stack.push_back({b, by}); }

  // Pops the topmost frame opened by `by`.  A required pop that finds
  // nothing means a drop ate the opening record.
  void pop(EventId by, bool required) {
    for (std::size_t i = stack.size(); i > 0; --i) {
      if (stack[i - 1].opened_by == by) {
        if (i != stack.size()) degraded = true;  // drop stranded inner frames
        stack.resize(i - 1);
        return;
      }
    }
    if (required) degraded = true;
  }

  void on_record(const TraceRecord& r) {
    if (closed) return;
    advance_to(r.ts_ns);
    switch (static_cast<EventId>(r.event)) {
      case EventId::kTaskBegin:
        push(Bucket::Useful, EventId::kTaskBegin);
        break;
      case EventId::kTaskEnd:
        pop(EventId::kTaskBegin, /*required=*/true);
        break;
      case EventId::kJoinWaitBegin:
        push(Bucket::Steal, EventId::kJoinWaitBegin);
        break;
      case EventId::kJoinWaitEnd:
        pop(EventId::kJoinWaitBegin, /*required=*/true);
        break;
      case EventId::kOpSubmit:
        push(Bucket::Trapped, EventId::kOpSubmit);
        break;
      case EventId::kOpResume:
        pop(EventId::kOpSubmit, /*required=*/true);
        break;
      case EventId::kFlagWon:
        push(Bucket::FlagWait, EventId::kFlagWon);
        break;
      case EventId::kFlagReopen:
        pop(EventId::kFlagWon, /*required=*/true);
        break;
      case EventId::kCollected:
        // Empty batches skip the BOP entirely: no useful window to open.
        if (r.a32 > 0) push(Bucket::Useful, EventId::kCollected);
        break;
      case EventId::kBopDone:
        pop(EventId::kCollected, /*required=*/true);
        break;
      case EventId::kLaunchExit:
        // A failed launch never reaches kBopDone; close its BOP window here.
        // Clean launches already popped it, so this pop is best-effort.
        pop(EventId::kCollected, /*required=*/false);
        break;
      case EventId::kParkBegin:
        push(Bucket::Parked, EventId::kParkBegin);
        break;
      case EventId::kParkEnd:
        pop(EventId::kParkBegin, /*required=*/true);
        break;
      case EventId::kWorkerExit:
        closed = true;  // window ends here, not at t1
        break;
      default:
        break;  // counting events carry no attribution state
    }
  }

  // A session stop mid-slice legitimately leaves frames open (charged to
  // their bucket up to t1); only pop mismatches mark the replay degraded.
  void finish() {
    if (!closed) advance_to(t1);
  }
};

}  // namespace

MetricsReport build_metrics(const Trace& trace) {
  MetricsReport m;
  m.total_records = trace.total_records();
  m.dropped_records = trace.dropped_records();
  m.wall_seconds = trace.wall_seconds();
  if (m.dropped_records > 0) {
    // Overwritten ring records strand pairing edges and attribution frames;
    // downstream consumers see pairing_degraded, but say it loudly too.
    std::fprintf(stderr,
                 "[trace] warning: %llu trace records dropped (ring "
                 "overwrite); derived metrics are degraded — raise "
                 "BATCHER_TRACE_RING\n",
                 static_cast<unsigned long long>(m.dropped_records));
    m.pairing_degraded = true;
  }

  for (const TraceThread& thread : trace.threads) {
    ThreadPairing p;
    const bool is_worker = thread.worker_id != kNoWorkerId;
    // Worker threads that started before the session have no kWorkerStart
    // record; their accountable window opens at t0.
    std::uint64_t window_start = trace.t0_ns;
    if (!thread.records.empty() &&
        static_cast<EventId>(thread.records.front().event) ==
            EventId::kWorkerStart) {
      window_start = thread.records.front().ts_ns;
    }
    AttributionReplay attr(m.attribution, trace.t0_ns, trace.t1_ns,
                           window_start);
    if (is_worker) ++m.attribution.worker_threads;
    for (const TraceRecord& r : thread.records) {
      if (is_worker) attr.on_record(r);
      switch (static_cast<EventId>(r.event)) {
        case EventId::kTaskBegin:
          break;  // slices are an export concern; counts come from kTaskEnd
        case EventId::kTaskEnd:
          if (r.a16 == 0) {
            ++m.tasks_core;
          } else {
            ++m.tasks_batch;
          }
          break;
        case EventId::kSteal: {
          const bool batch = (r.a16 & kStealKindBatch) != 0;
          const bool hit = (r.a16 & kStealSuccess) != 0;
          if (batch) {
            ++m.steal_attempts_batch;
          } else {
            ++m.steal_attempts_core;
          }
          if (hit) {
            ++m.steals_won;
            m.steal_to_success.add(
                p.steal_streak_open ? delta(p.steal_streak_ts, r.ts_ns) : 0);
            p.steal_streak_open = false;
          } else if (!p.steal_streak_open) {
            p.steal_streak_open = true;
            p.steal_streak_ts = r.ts_ns;
          }
          break;
        }
        case EventId::kOpSubmit:
          ++m.ops_submitted;
          m.unmatched_edges += p.op_open;  // a drop ate the matching resume
          p.op_open = true;
          p.op_submit_ts = r.ts_ns;
          break;
        case EventId::kOpResume:
          if (p.op_open) {
            m.op_latency.add(delta(p.op_submit_ts, r.ts_ns));
            p.op_open = false;
          } else {
            ++m.unmatched_edges;
          }
          break;
        case EventId::kFlagWon:
          m.unmatched_edges += p.flag_open;
          p.flag_open = true;
          p.flag_ts = r.ts_ns;
          break;
        case EventId::kLaunchEnter:
          ++m.batches;
          m.unmatched_edges += p.launch_open + p.bop_open + p.complete_open;
          p.launch_open = true;
          p.bop_open = p.complete_open = false;
          p.launch_ts = r.ts_ns;
          break;
        case EventId::kCollected:
          if (r.a32 >= m.batch_size_hist.size()) {
            m.batch_size_hist.resize(r.a32 + 1, 0);
          }
          ++m.batch_size_hist[r.a32];
          if (r.a32 == 0) ++m.empty_batches;
          if (p.launch_open) {
            m.collect_phase.add(delta(p.launch_ts, r.ts_ns));
            p.launch_open = false;
          } else {
            ++m.unmatched_edges;
          }
          p.bop_open = true;
          p.collected_ts = r.ts_ns;
          break;
        case EventId::kBopDone:
          if (p.bop_open) {
            m.run_phase.add(delta(p.collected_ts, r.ts_ns));
            p.bop_open = false;
          } else {
            ++m.unmatched_edges;
          }
          p.complete_open = true;
          p.bop_ts = r.ts_ns;
          break;
        case EventId::kLaunchExit:
          if (p.complete_open) {
            m.complete_phase.add(delta(p.bop_ts, r.ts_ns));
            p.complete_open = false;
          }
          // Empty or failed launches never reach kBopDone; their open
          // collect-side edge simply closes with the launch.  The flag edge
          // stays open: a chained launch keeps the flag held past this exit,
          // and kFlagReopen closes it (once per chain).
          p.launch_open = p.bop_open = false;
          break;
        case EventId::kFlagReopen:
          if (p.flag_open) {
            m.flag_held.add(delta(p.flag_ts, r.ts_ns));
            p.flag_open = false;
          } else {
            ++m.unmatched_edges;
          }
          break;
        case EventId::kLaunchChained:
          ++m.chained_launches;
          break;
        case EventId::kAnnouncePush:
          ++m.announce_pushes;
          break;
        case EventId::kFlagCasFail:
          ++m.flag_cas_failures;
          break;
        case EventId::kFrameSlabRefill:
          ++m.frame_slab_refills;
          break;
        case EventId::kFrameRemoteFree:
          ++m.frame_remote_frees;
          break;
        case EventId::kOpTimeout:
          ++m.ops_timed_out;
          break;
        case EventId::kOpShed:
          ++m.ops_shed;
          break;
        case EventId::kWorkerStart:
        case EventId::kWorkerExit:
        case EventId::kParkBegin:
        case EventId::kParkEnd:
        case EventId::kJoinWaitBegin:
        case EventId::kJoinWaitEnd:
          break;  // attribution events; consumed by AttributionReplay above
        case EventId::kNone:
          break;
      }
    }
    m.unmatched_edges += p.open_edges();
    if (is_worker) {
      attr.finish();
      if (attr.degraded) m.pairing_degraded = true;
    }
  }
  return m;
}

void histogram_to_json(const LatencyHistogram& h, json::Writer& w) {
  w.begin_object();
  w.kv("count", h.count());
  w.kv("sum_ns", h.sum_ns());
  w.kv("min_ns", h.min_ns());
  w.kv("max_ns", h.max_ns());
  w.kv("mean_ns", h.mean_ns());
  w.kv("p50_ns", h.percentile_ns(0.50));
  w.kv("p90_ns", h.percentile_ns(0.90));
  w.kv("p99_ns", h.percentile_ns(0.99));
  // SLO gating reads the tail: p999 quantizes to the same power-of-two
  // bucket ceilings as the other percentiles (up to 2x overstatement),
  // so compare gates on it use generous tolerances.
  w.kv("p999_ns", h.percentile_ns(0.999));
  w.key("buckets").begin_array();
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (h.bucket(i) == 0) continue;
    w.begin_object();
    w.kv("ge_ns", LatencyHistogram::bucket_floor_ns(i));
    w.kv("lt_ns", LatencyHistogram::bucket_ceil_ns(i));
    w.kv("count", h.bucket(i));
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void MetricsReport::to_json(json::Writer& w) const {
  w.begin_object();
  w.kv("total_records", total_records);
  w.kv("dropped_records", dropped_records);
  w.kv("wall_seconds", wall_seconds);
  w.kv("tasks_core", tasks_core);
  w.kv("tasks_batch", tasks_batch);
  w.kv("steal_attempts_core", steal_attempts_core);
  w.kv("steal_attempts_batch", steal_attempts_batch);
  w.kv("steals_won", steals_won);
  w.kv("steal_core_fraction", steal_core_fraction());
  w.kv("ops_submitted", ops_submitted);
  w.kv("ops", ops());
  w.kv("batches", batches);
  w.kv("empty_batches", empty_batches);
  w.kv("batches_per_sec", batches_per_sec());
  w.kv("mean_batch_size", mean_batch_size());
  w.kv("max_batch_size", max_batch_size());
  w.kv("frame_slab_refills", frame_slab_refills);
  w.kv("frame_remote_frees", frame_remote_frees);
  w.kv("announce_pushes", announce_pushes);
  w.kv("chained_launches", chained_launches);
  w.kv("flag_cas_failures", flag_cas_failures);
  w.kv("ops_timed_out", ops_timed_out);
  w.kv("ops_shed", ops_shed);
  w.kv("unmatched_edges", unmatched_edges);
  w.kv("pairing_degraded", pairing_degraded);
  w.key("worker_attribution").begin_object();
  w.kv("worker_threads", attribution.worker_threads);
  w.kv("attributed_ns", attribution.attributed_ns);
  w.kv("useful_ns", attribution.useful_ns);
  w.kv("steal_ns", attribution.steal_ns);
  w.kv("trapped_ns", attribution.trapped_ns);
  w.kv("flag_wait_ns", attribution.flag_wait_ns);
  w.kv("parked_ns", attribution.parked_ns);
  w.end_object();
  w.key("batch_size_distribution").begin_array();
  for (std::uint64_t n : batch_size_hist) w.value(n);
  w.end_array();
  w.key("histograms").begin_object();
  const struct {
    const char* name;
    const LatencyHistogram& h;
  } named[] = {
      {"op_submit_to_done_ns", op_latency},
      {"flag_held_ns", flag_held},
      {"launch_collect_ns", collect_phase},
      {"launch_run_ns", run_phase},
      {"launch_complete_ns", complete_phase},
      {"steal_to_success_ns", steal_to_success},
  };
  for (const auto& [name, h] : named) {
    w.key(name);
    histogram_to_json(h, w);
  }
  w.end_object();
  w.end_object();
}

}  // namespace batcher::trace
