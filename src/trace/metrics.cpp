#include "trace/metrics.hpp"

#include <algorithm>

namespace batcher::trace {

namespace {

// Per-thread pairing state while replaying a record stream.
struct ThreadPairing {
  std::uint64_t op_submit_ts = 0;
  bool op_open = false;
  std::uint64_t flag_ts = 0;
  bool flag_open = false;
  std::uint64_t launch_ts = 0;
  bool launch_open = false;  // kLaunchEnter seen, awaiting kCollected
  std::uint64_t collected_ts = 0;
  bool bop_open = false;  // kCollected seen, awaiting kBopDone
  std::uint64_t bop_ts = 0;
  bool complete_open = false;  // kBopDone seen, awaiting kLaunchExit
  std::uint64_t steal_streak_ts = 0;
  bool steal_streak_open = false;

  std::uint64_t open_edges() const {
    return static_cast<std::uint64_t>(op_open) + flag_open + launch_open +
           bop_open + complete_open;
  }
};

std::uint64_t delta(std::uint64_t from, std::uint64_t to) {
  return to >= from ? to - from : 0;
}

}  // namespace

MetricsReport build_metrics(const Trace& trace) {
  MetricsReport m;
  m.total_records = trace.total_records();
  m.dropped_records = trace.dropped_records();
  m.wall_seconds = trace.wall_seconds();

  for (const TraceThread& thread : trace.threads) {
    ThreadPairing p;
    for (const TraceRecord& r : thread.records) {
      switch (static_cast<EventId>(r.event)) {
        case EventId::kTaskBegin:
          break;  // slices are an export concern; counts come from kTaskEnd
        case EventId::kTaskEnd:
          if (r.a16 == 0) {
            ++m.tasks_core;
          } else {
            ++m.tasks_batch;
          }
          break;
        case EventId::kSteal: {
          const bool batch = (r.a16 & kStealKindBatch) != 0;
          const bool hit = (r.a16 & kStealSuccess) != 0;
          if (batch) {
            ++m.steal_attempts_batch;
          } else {
            ++m.steal_attempts_core;
          }
          if (hit) {
            ++m.steals_won;
            m.steal_to_success.add(
                p.steal_streak_open ? delta(p.steal_streak_ts, r.ts_ns) : 0);
            p.steal_streak_open = false;
          } else if (!p.steal_streak_open) {
            p.steal_streak_open = true;
            p.steal_streak_ts = r.ts_ns;
          }
          break;
        }
        case EventId::kOpSubmit:
          ++m.ops_submitted;
          m.unmatched_edges += p.op_open;  // a drop ate the matching resume
          p.op_open = true;
          p.op_submit_ts = r.ts_ns;
          break;
        case EventId::kOpResume:
          if (p.op_open) {
            m.op_latency.add(delta(p.op_submit_ts, r.ts_ns));
            p.op_open = false;
          } else {
            ++m.unmatched_edges;
          }
          break;
        case EventId::kFlagWon:
          m.unmatched_edges += p.flag_open;
          p.flag_open = true;
          p.flag_ts = r.ts_ns;
          break;
        case EventId::kLaunchEnter:
          ++m.batches;
          m.unmatched_edges += p.launch_open + p.bop_open + p.complete_open;
          p.launch_open = true;
          p.bop_open = p.complete_open = false;
          p.launch_ts = r.ts_ns;
          break;
        case EventId::kCollected:
          if (r.a32 >= m.batch_size_hist.size()) {
            m.batch_size_hist.resize(r.a32 + 1, 0);
          }
          ++m.batch_size_hist[r.a32];
          if (r.a32 == 0) ++m.empty_batches;
          if (p.launch_open) {
            m.collect_phase.add(delta(p.launch_ts, r.ts_ns));
            p.launch_open = false;
          } else {
            ++m.unmatched_edges;
          }
          p.bop_open = true;
          p.collected_ts = r.ts_ns;
          break;
        case EventId::kBopDone:
          if (p.bop_open) {
            m.run_phase.add(delta(p.collected_ts, r.ts_ns));
            p.bop_open = false;
          } else {
            ++m.unmatched_edges;
          }
          p.complete_open = true;
          p.bop_ts = r.ts_ns;
          break;
        case EventId::kLaunchExit:
          if (p.complete_open) {
            m.complete_phase.add(delta(p.bop_ts, r.ts_ns));
            p.complete_open = false;
          }
          // Empty or failed launches never reach kBopDone; their open
          // collect-side edge simply closes with the launch.  The flag edge
          // stays open: a chained launch keeps the flag held past this exit,
          // and kFlagReopen closes it (once per chain).
          p.launch_open = p.bop_open = false;
          break;
        case EventId::kFlagReopen:
          if (p.flag_open) {
            m.flag_held.add(delta(p.flag_ts, r.ts_ns));
            p.flag_open = false;
          } else {
            ++m.unmatched_edges;
          }
          break;
        case EventId::kLaunchChained:
          ++m.chained_launches;
          break;
        case EventId::kAnnouncePush:
          ++m.announce_pushes;
          break;
        case EventId::kFlagCasFail:
          ++m.flag_cas_failures;
          break;
        case EventId::kFrameSlabRefill:
          ++m.frame_slab_refills;
          break;
        case EventId::kFrameRemoteFree:
          ++m.frame_remote_frees;
          break;
        case EventId::kOpTimeout:
          ++m.ops_timed_out;
          break;
        case EventId::kOpShed:
          ++m.ops_shed;
          break;
        case EventId::kNone:
          break;
      }
    }
    m.unmatched_edges += p.open_edges();
  }
  return m;
}

void histogram_to_json(const LatencyHistogram& h, json::Writer& w) {
  w.begin_object();
  w.kv("count", h.count());
  w.kv("sum_ns", h.sum_ns());
  w.kv("min_ns", h.min_ns());
  w.kv("max_ns", h.max_ns());
  w.kv("mean_ns", h.mean_ns());
  w.kv("p50_ns", h.percentile_ns(0.50));
  w.kv("p90_ns", h.percentile_ns(0.90));
  w.kv("p99_ns", h.percentile_ns(0.99));
  w.key("buckets").begin_array();
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (h.bucket(i) == 0) continue;
    w.begin_object();
    w.kv("ge_ns", LatencyHistogram::bucket_floor_ns(i));
    w.kv("lt_ns", LatencyHistogram::bucket_ceil_ns(i));
    w.kv("count", h.bucket(i));
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void MetricsReport::to_json(json::Writer& w) const {
  w.begin_object();
  w.kv("total_records", total_records);
  w.kv("dropped_records", dropped_records);
  w.kv("wall_seconds", wall_seconds);
  w.kv("tasks_core", tasks_core);
  w.kv("tasks_batch", tasks_batch);
  w.kv("steal_attempts_core", steal_attempts_core);
  w.kv("steal_attempts_batch", steal_attempts_batch);
  w.kv("steals_won", steals_won);
  w.kv("steal_core_fraction", steal_core_fraction());
  w.kv("ops_submitted", ops_submitted);
  w.kv("ops", ops());
  w.kv("batches", batches);
  w.kv("empty_batches", empty_batches);
  w.kv("batches_per_sec", batches_per_sec());
  w.kv("mean_batch_size", mean_batch_size());
  w.kv("max_batch_size", max_batch_size());
  w.kv("frame_slab_refills", frame_slab_refills);
  w.kv("frame_remote_frees", frame_remote_frees);
  w.kv("announce_pushes", announce_pushes);
  w.kv("chained_launches", chained_launches);
  w.kv("flag_cas_failures", flag_cas_failures);
  w.kv("ops_timed_out", ops_timed_out);
  w.kv("ops_shed", ops_shed);
  w.kv("unmatched_edges", unmatched_edges);
  w.key("batch_size_distribution").begin_array();
  for (std::uint64_t n : batch_size_hist) w.value(n);
  w.end_array();
  w.key("histograms").begin_object();
  const struct {
    const char* name;
    const LatencyHistogram& h;
  } named[] = {
      {"op_submit_to_done_ns", op_latency},
      {"flag_held_ns", flag_held},
      {"launch_collect_ns", collect_phase},
      {"launch_run_ns", run_phase},
      {"launch_complete_ns", complete_phase},
      {"steal_to_success_ns", steal_to_success},
  };
  for (const auto& [name, h] : named) {
    w.key(name);
    histogram_to_json(h, w);
  }
  w.end_object();
  w.end_object();
}

}  // namespace batcher::trace
