#include "trace/bound_ledger.hpp"

#include <bit>

#include "trace/trace.hpp"

namespace batcher::trace::ledger {

namespace {

struct DomainCells {
  rt::Counter batches;
  rt::Counter ops;
  rt::Counter sum_bop_wall_ns;
  rt::Counter sum_bop_span_ns;
  LatencyHistogram bop_wall_by_size[kSizeBuckets];
  LatencyHistogram bop_span_by_size[kSizeBuckets];

  void reset() {
    batches.reset();
    ops.reset();
    sum_bop_wall_ns.reset();
    sum_bop_span_ns.reset();
    for (auto& h : bop_wall_by_size) h.reset();
    for (auto& h : bop_span_by_size) h.reset();
  }
};

struct GlobalCells {
  rt::Counter work_ns;
  rt::Counter strands;
  rt::Counter runs;
  rt::Counter span_ns_total;
  rt::Counter span_tasks_total;
  std::atomic<std::uint64_t> longest_run_span_ns{0};
  std::atomic<std::uint64_t> longest_run_span_tasks{0};
  // Lazily allocated, never freed: domain ids are dense and bounded, and a
  // cell allocated once serves every Batcher that ever reuses its id.
  std::array<std::atomic<DomainCells*>, kMaxLedgerDomains> domains{};
};

GlobalCells& cells() {
  static GlobalCells g;  // immortal, like the trace registry
  return g;
}

DomainCells* domain_cells(std::uint16_t id) {
  GlobalCells& g = cells();
  const std::size_t slot = id < kMaxLedgerDomains ? id : kMaxLedgerDomains - 1;
  DomainCells* d = g.domains[slot].load(std::memory_order_acquire);
  if (d != nullptr) return d;
  auto* fresh = new DomainCells();
  DomainCells* expected = nullptr;
  if (g.domains[slot].compare_exchange_strong(expected, fresh,
                                              std::memory_order_acq_rel)) {
    return fresh;
  }
  delete fresh;  // lost the race; the winner's cell is the canonical one
  return expected;
}

void fold_max(std::atomic<std::uint64_t>& cell, std::uint64_t v) {
  std::uint64_t cur = cell.load(std::memory_order_relaxed);
  while (v > cur &&
         !cell.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

namespace detail {

void close_segment() {
  StrandState& s = t_strand;
  if (!s.active || !s.open) return;
  s.open = false;
  // A segment still open when the session stops is dropped whole: the
  // offline attribution is clamped to [t0, t1], so counting the pre-stop
  // part here without knowing t1 would let work_ns exceed useful_ns.
  // Undercounting keeps every ledger inequality one-sided and true.
  if (!enabled()) return;
  const std::uint64_t now = now_ns();
  const std::uint64_t elapsed =
      now >= s.seg_start_ns ? now - s.seg_start_ns : 0;
  s.path_ns += elapsed;
  if (elapsed == 0) return;
  cells().work_ns.bump(elapsed);
  if (t_work_sink != nullptr) t_work_sink->bump(elapsed);
}

}  // namespace detail

PathPoint strand_now() {
  const detail::StrandState& s = detail::t_strand;
  if (!s.active) return {};
  std::uint64_t ns = s.path_ns;
  if (s.open) {
    const std::uint64_t now = now_ns();
    if (now > s.seg_start_ns) ns += now - s.seg_start_ns;
  }
  return {ns, s.path_tasks};
}

void strand_pause() { detail::close_segment(); }

void strand_resume(PathPoint dep) {
  detail::StrandState& s = detail::t_strand;
  if (!s.active || s.open) return;
  if (dep.ns > s.path_ns) s.path_ns = dep.ns;
  if (dep.tasks > s.path_tasks) s.path_tasks = dep.tasks;
  s.seg_start_ns = now_ns();
  s.open = true;
}

void strand_fold(PathPoint dep) {
  detail::StrandState& s = detail::t_strand;
  if (!s.active) return;
  detail::close_segment();
  if (dep.ns > s.path_ns) s.path_ns = dep.ns;
  if (dep.tasks > s.path_tasks) s.path_tasks = dep.tasks;
  s.seg_start_ns = now_ns();
  s.open = true;
}

StrandScope::StrandScope(PathPoint base, bool armed) : armed_(armed) {
  if (!armed_) return;
  saved_ = detail::t_strand;
  detail::StrandState& s = detail::t_strand;
  s.path_ns = base.ns;
  s.path_tasks = base.tasks + 1;  // this strand is one more node on the path
  s.seg_start_ns = now_ns();
  s.open = true;
  s.active = true;
  note_strand();
}

StrandScope::~StrandScope() {
  if (!armed_) return;
  if (!finished_) detail::close_segment();
  detail::t_strand = saved_;
}

PathPoint StrandScope::finish() {
  if (!armed_) return {};
  if (!finished_) {
    detail::close_segment();
    finished_ = true;
  }
  return {detail::t_strand.path_ns, detail::t_strand.path_tasks};
}

// --------------------------------------------------------------------------

std::size_t size_bucket_of(std::size_t batch_size) {
  if (batch_size <= 1) return 0;
  const std::size_t w = static_cast<std::size_t>(
      std::bit_width(static_cast<std::uint64_t>(batch_size - 1)));
  return w < kSizeBuckets ? w : kSizeBuckets - 1;
}

std::uint64_t size_bucket_max(std::size_t bucket) {
  if (bucket + 1 >= kSizeBuckets) return ~std::uint64_t{0};
  return std::uint64_t{1} << bucket;
}

void note_run(PathPoint span) {
  if (!enabled()) return;
  GlobalCells& g = cells();
  g.runs.bump();
  g.span_ns_total.bump(span.ns);
  g.span_tasks_total.bump(span.tasks);
  fold_max(g.longest_run_span_ns, span.ns);
  fold_max(g.longest_run_span_tasks, span.tasks);
}

void note_batch(std::uint16_t domain, std::size_t batch_size,
                std::uint64_t wall_ns, std::uint64_t span_ns) {
  if (!enabled()) return;
  DomainCells* d = domain_cells(domain);
  d->batches.bump();
  d->ops.bump(batch_size);
  d->sum_bop_wall_ns.bump(wall_ns);
  d->sum_bop_span_ns.bump(span_ns);
  const std::size_t bucket = size_bucket_of(batch_size);
  d->bop_wall_by_size[bucket].add(wall_ns);
  d->bop_span_by_size[bucket].add(span_ns);
}

void note_strand() { cells().strands.bump(); }

LedgerSnapshot snapshot() {
  GlobalCells& g = cells();
  LedgerSnapshot out;
  out.work_ns = g.work_ns.get();
  out.strands = g.strands.get();
  out.runs = g.runs.get();
  out.span_ns_total = g.span_ns_total.get();
  out.span_tasks_total = g.span_tasks_total.get();
  out.longest_run_span_ns =
      g.longest_run_span_ns.load(std::memory_order_relaxed);
  out.longest_run_span_tasks =
      g.longest_run_span_tasks.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kMaxLedgerDomains; ++i) {
    const DomainCells* d = g.domains[i].load(std::memory_order_acquire);
    if (d == nullptr || d->batches.get() == 0) continue;
    DomainSnapshot ds;
    ds.domain = static_cast<std::uint16_t>(i);
    ds.batches = d->batches.get();
    ds.ops = d->ops.get();
    ds.sum_bop_wall_ns = d->sum_bop_wall_ns.get();
    ds.sum_bop_span_ns = d->sum_bop_span_ns.get();
    for (std::size_t b = 0; b < kSizeBuckets; ++b) {
      ds.bop_wall_by_size[b] = d->bop_wall_by_size[b];
      ds.bop_span_by_size[b] = d->bop_span_by_size[b];
    }
    out.domains.push_back(std::move(ds));
  }
  return out;
}

void reset() {
  GlobalCells& g = cells();
  g.work_ns.reset();
  g.strands.reset();
  g.runs.reset();
  g.span_ns_total.reset();
  g.span_tasks_total.reset();
  g.longest_run_span_ns.store(0, std::memory_order_relaxed);
  g.longest_run_span_tasks.store(0, std::memory_order_relaxed);
  for (auto& slot : g.domains) {
    DomainCells* d = slot.load(std::memory_order_acquire);
    if (d != nullptr) d->reset();
  }
}

}  // namespace batcher::trace::ledger
