// The tracing timestamp source.
//
// Records carry absolute nanoseconds from std::chrono::steady_clock, which on
// Linux is a vDSO clock_gettime(CLOCK_MONOTONIC) — a few nanoseconds per
// read, no syscall, monotonic across cores.  That is cheap enough for the
// hot-path events we record (task boundaries, steals, batch protocol edges;
// nothing per deque operation), and it keeps timestamps directly comparable
// across workers without the per-core offset and frequency calibration a raw
// TSC source would need.  If a TSC path is ever warranted, it slots in here
// behind the same now_ns() signature; everything downstream (rings, drains,
// exports) only assumes a process-wide monotonic nanosecond count.
#pragma once

#include <chrono>
#include <cstdint>

namespace batcher::trace {

inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace batcher::trace
