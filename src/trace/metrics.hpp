// Aggregate metrics derived from a drained trace.
//
// build_metrics replays each thread's (timestamp-monotonic) record stream
// and pairs the protocol edges into the latency distributions Theorem 1
// charges cost to:
//
//   op_latency       kOpSubmit -> kOpResume       (batchify round trip)
//   flag_held        kFlagWon  -> kFlagReopen     (batch flag held; spans a
//                                                  whole chain of launches)
//   collect_phase    kLaunchEnter -> kCollected   (LAUNCHBATCH step 1-2)
//   run_phase        kCollected -> kBopDone       (the BOP itself)
//   complete_phase   kBopDone -> kLaunchExit      (status flips + reopen)
//   steal_to_success first miss of a streak -> the steal that succeeded
//
// All pairings are per-thread and rely on protocol shape, not luck: batchify
// never nests (a batch dag may not call batchify), and a worker holds at
// most one batch flag at a time (it only CASes the domain it is trapped on),
// so a simple "last open edge" per thread is exact.  Records lost to ring
// overflow can strand an open edge; those are counted in unmatched_edges
// rather than silently skewing a histogram.
//
// build_metrics additionally decomposes every *worker* thread's accountable
// window — [kWorkerStart, kWorkerExit], clamped to [t0, t1] — into five
// buckets that partition it exactly (worker_attribution):
//
//   useful     inside a task (kTaskBegin..kTaskEnd) or a BOP run
//              (kCollected..kBopDone on the launcher)
//   steal      the main scheduling loop and join waits (kJoinWaitBegin..End):
//              steal attempts, deque probes, backoff
//   trapped    the batchify trapped loop (kOpSubmit..kOpResume) net of the
//              nested buckets above
//   flag_wait  holding the batch flag (kFlagWon..kFlagReopen) net of nested
//              buckets: collect, complete, chain management
//   parked     between runs (kParkBegin..kParkEnd)
//
// The decomposition is a per-thread state stack (innermost event wins), so
//   useful + steal + trapped + flag_wait + parked == attributed_ns
// holds exactly, and attributed_ns <= worker_threads * wall by construction
// — the online bound ledger (bound_ledger.hpp) is validated against these.
// Dropped records can strand the stack; `pairing_degraded` says so.
//
// The derived quantities at the bottom are the paper's: measured batch-size
// distribution (checked against Invariant 2's P bound by callers that know
// P), the alternating-steal parity split, and batches per second.
#pragma once

#include <cstdint>
#include <vector>

#include "support/json.hpp"
#include "trace/histogram.hpp"
#include "trace/trace.hpp"

namespace batcher::trace {

struct MetricsReport {
  // Volume.
  std::uint64_t total_records = 0;
  std::uint64_t dropped_records = 0;
  double wall_seconds = 0.0;

  // Event counts.
  std::uint64_t tasks_core = 0;
  std::uint64_t tasks_batch = 0;
  std::uint64_t steal_attempts_core = 0;
  std::uint64_t steal_attempts_batch = 0;
  std::uint64_t steals_won = 0;
  std::uint64_t ops_submitted = 0;
  std::uint64_t batches = 0;        // kLaunchEnter count
  std::uint64_t empty_batches = 0;  // kCollected with size 0
  std::uint64_t frame_slab_refills = 0;  // kFrameSlabRefill count
  std::uint64_t frame_remote_frees = 0;  // kFrameRemoteFree count
  std::uint64_t announce_pushes = 0;     // kAnnouncePush count (§11)
  std::uint64_t chained_launches = 0;    // kLaunchChained count (§11)
  std::uint64_t flag_cas_failures = 0;   // kFlagCasFail count
  std::uint64_t ops_timed_out = 0;       // kOpTimeout count (external §13)
  std::uint64_t ops_shed = 0;            // kOpShed count (external §13)
  std::uint64_t unmatched_edges = 0;

  // Where P * wall went: the five-bucket decomposition described above.
  struct Attribution {
    std::uint64_t worker_threads = 0;  // rings with a real worker id
    std::uint64_t attributed_ns = 0;   // Σ accountable window lengths
    std::uint64_t useful_ns = 0;
    std::uint64_t steal_ns = 0;
    std::uint64_t trapped_ns = 0;
    std::uint64_t flag_wait_ns = 0;
    std::uint64_t parked_ns = 0;
  };
  Attribution attribution;
  // True when ring drops (or the stack mismatches they cause) degraded the
  // pairing replay; histogram and attribution values are then lower bounds.
  bool pairing_degraded = false;

  // Latency distributions (nanoseconds).
  LatencyHistogram op_latency;
  LatencyHistogram flag_held;
  LatencyHistogram collect_phase;
  LatencyHistogram run_phase;
  LatencyHistogram complete_phase;
  LatencyHistogram steal_to_success;

  // Batch-size distribution: index = ops in the batch (from kCollected).
  std::vector<std::uint64_t> batch_size_hist;

  // Derived paper quantities.
  std::uint64_t ops() const { return op_latency.count(); }
  std::uint64_t max_batch_size() const {
    return batch_size_hist.empty()
               ? 0
               : static_cast<std::uint64_t>(batch_size_hist.size() - 1);
  }
  double mean_batch_size() const {
    std::uint64_t nonempty = 0, weighted = 0;
    for (std::size_t k = 1; k < batch_size_hist.size(); ++k) {
      nonempty += batch_size_hist[k];
      weighted += k * batch_size_hist[k];
    }
    return nonempty == 0 ? 0.0
                         : static_cast<double>(weighted) /
                               static_cast<double>(nonempty);
  }
  double batches_per_sec() const {
    return wall_seconds <= 0.0 ? 0.0
                               : static_cast<double>(batches) / wall_seconds;
  }
  std::uint64_t steal_attempts() const {
    return steal_attempts_core + steal_attempts_batch;
  }
  // Fraction of steal attempts aimed at core deques — ~0.5 for free workers
  // under the §4 alternating policy, pulled lower by trapped workers' batch-
  // only stealing.
  double steal_core_fraction() const {
    return steal_attempts() == 0
               ? 0.0
               : static_cast<double>(steal_attempts_core) /
                     static_cast<double>(steal_attempts());
  }

  // Serializes the full report (counts, derived quantities, histograms with
  // per-bucket bounds) as one JSON object into `w`.
  void to_json(json::Writer& w) const;
};

MetricsReport build_metrics(const Trace& trace);

// Shared by MetricsReport and the bench reporter: one histogram as a JSON
// object {count, sum_ns, min_ns, max_ns, mean_ns, p50/p90/p99_ns, buckets}.
void histogram_to_json(const LatencyHistogram& h, json::Writer& w);

}  // namespace batcher::trace
