// Theorem 1 bound ledger: online work/span accounting for the running
// computation, gated — like every trace emission point — on the single
// relaxed load behind `trace::enabled()`.
//
// The paper bounds completion time by O(T1/P + T∞ + n·σ/P + s·σ).  The
// trace layer's histograms measure *latencies* of protocol edges; this file
// measures the *terms of the bound itself*:
//
//   T1 (work)   every strand (task closure, LAUNCHBATCH body, scheduler
//               root) accrues its executed nanoseconds into a per-worker
//               counter and a session-global cell.  Measured T1 is the sum.
//   T∞ (span)   each strand carries a critical-path accumulator: it starts
//               from the longest path into it (captured at the spawn point),
//               grows additively while the strand executes, and folds
//               max-wise into its join when it finishes.  A scheduler run's
//               root path at completion is that run's measured span.  The
//               accumulator is kept twice — in nanoseconds and in task
//               count.  The nanosecond span is the real Theorem 1 term; the
//               task-count span is schedule-invariant for a fixed dag, which
//               is what tests assert across perturbed schedules.
//   s(n)·σ      per batching domain, every clean non-empty BOP records its
//               batch size, wall time and measured span into histograms
//               keyed by batch-size bucket, so "is s(n) really O(lg n)?" is
//               answerable from any traced run.
//
// Strand discipline (why segments never double-count): at most one strand is
// *open* per thread at any instant.  A new strand only starts where the
// enclosing one is paused — Worker::wait pauses before helping, batchify
// pauses for the whole trapped loop, and the scheduling loops have no strand
// at all.  Serial continuations stay on the parent's open strand; only
// spawned closures, batch launches and scheduler roots get strands of their
// own.
//
// Everything here is thread-local or relaxed-atomic; with tracing off the
// runtime never calls in (call sites guard with `trace::enabled()`), so the
// disabled cost stays the one load + branch the trace layer already pays.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "runtime/stats.hpp"
#include "trace/histogram.hpp"
#include "trace/trace_clock.hpp"

namespace batcher::trace::ledger {

// A point on some path through the dag: length in executed nanoseconds and
// in task frames.  The two components are independent weightings of the same
// dag — each folds max-wise on its own at joins.
struct PathPoint {
  std::uint64_t ns = 0;
  std::uint64_t tasks = 0;
};

namespace detail {

// The calling thread's current strand.  `open` means a segment is accruing
// (seg_start_ns holds its start); `active` means a strand is installed at
// all — scheduling loops between tasks have none.
struct StrandState {
  std::uint64_t path_ns = 0;
  std::uint64_t path_tasks = 0;
  std::uint64_t seg_start_ns = 0;
  bool open = false;
  bool active = false;
};

inline thread_local StrandState t_strand;

// Per-thread work sink: the owning worker's stats cell, installed by
// Worker::main_loop so segment closes accrue measured T1 per scheduler as
// well as into the session-global cell.  Null on non-worker threads.
inline thread_local rt::Counter* t_work_sink = nullptr;

void close_segment();  // accrue the open segment into path + work cells

}  // namespace detail

// Installed by Worker::main_loop (and cleared on exit).
inline void set_thread_work_sink(rt::Counter* sink) {
  detail::t_work_sink = sink;
}

// The current strand's path including its open segment; zero when none.
// Safe on any thread — a completion pass running inside a spawned child
// reads the child's own path, which is a valid path to that dag node.
PathPoint strand_now();

// Closes the open segment (work accrues) without finishing the strand; used
// before blocking at a join or trapping in batchify, where elapsed time is
// somebody else's to account.
void strand_pause();

// Reopens a paused strand, max-folding `dep` (a join's folded child span, or
// a batch's completion path) into the path first.
void strand_resume(PathPoint dep);

// Max-folds `dep` into the running strand without pausing it (the open
// segment is closed and immediately reopened so elapsed time is preserved).
void strand_fold(PathPoint dep);

// RAII strand.  Constructing with armed=false is a complete no-op, so call
// sites can hoist the `trace::enabled()` decision.  The scope saves the
// thread's previous strand state (which the caller must already have
// paused) and restores it on destruction — including on unwind, where the
// still-open segment is closed so a throwing closure's work still counts.
class StrandScope {
 public:
  StrandScope(PathPoint base, bool armed);
  ~StrandScope();
  StrandScope(const StrandScope&) = delete;
  StrandScope& operator=(const StrandScope&) = delete;

  // Closes the segment and returns the strand's final path.  Idempotent;
  // the destructor then only restores the saved state.
  PathPoint finish();

 private:
  detail::StrandState saved_;
  bool armed_;
  bool finished_ = false;
};

// --------------------------------------------------------------------------
// Session-global cells.  Reset by TraceSession construction (trace.cpp), so
// a snapshot after a session describes exactly that session's window.

inline constexpr std::size_t kSizeBuckets = 8;
inline constexpr std::size_t kMaxLedgerDomains = 256;  // mirrors trace ids

// Batch-size bucket: 1, 2, 3-4, 5-8, 9-16, 17-32, 33-64, 65+.
std::size_t size_bucket_of(std::size_t batch_size);
// Inclusive upper bound of a size bucket (UINT64_MAX for the last).
std::uint64_t size_bucket_max(std::size_t bucket);

// A completed scheduler run's root span.  No-op while tracing is disabled.
void note_run(PathPoint span);

// One clean, non-empty BOP: batch size, wall nanoseconds and measured span
// of the run_batch call.  No-op while tracing is disabled.
void note_batch(std::uint16_t domain, std::size_t batch_size,
                std::uint64_t wall_ns, std::uint64_t span_ns);

// Bumped once per strand (root, spawned closure, or launch).
void note_strand();

struct DomainSnapshot {
  std::uint16_t domain = 0;
  std::uint64_t batches = 0;
  std::uint64_t ops = 0;               // Σ batch sizes = n carried by BOPs
  std::uint64_t sum_bop_wall_ns = 0;   // Σ wall(run_batch): the s·σ proxy
  std::uint64_t sum_bop_span_ns = 0;   // Σ measured span(run_batch)
  LatencyHistogram bop_wall_by_size[kSizeBuckets];
  LatencyHistogram bop_span_by_size[kSizeBuckets];
};

struct LedgerSnapshot {
  std::uint64_t work_ns = 0;     // measured T1 across the session
  std::uint64_t strands = 0;     // strands opened (≈ instrumented tasks)
  std::uint64_t runs = 0;        // completed scheduler runs measured
  std::uint64_t span_ns_total = 0;        // Σ per-run measured T∞
  std::uint64_t span_tasks_total = 0;
  std::uint64_t longest_run_span_ns = 0;  // max per-run measured T∞
  std::uint64_t longest_run_span_tasks = 0;
  std::vector<DomainSnapshot> domains;    // domains with ≥1 recorded batch
};

// Copies the global cells.  Valid any time; meaningful after a session has
// stopped (cells are reset when the next one starts).
LedgerSnapshot snapshot();

// Zeroes every global cell.  Called by TraceSession's constructor before it
// publishes enabled=true; tests may call it directly.
void reset();

}  // namespace batcher::trace::ledger
