// Fixed-capacity single-producer trace ring.
//
// Each traced thread owns one ring; only that thread pushes.  A push is two
// relaxed atomic stores into the slot (plain MOVs on x86) plus one release
// store of the write cursor — no RMW, no branch beyond the capacity mask, so
// the hot path costs a few nanoseconds and never blocks.  On overflow the
// writer silently overwrites the oldest records; the reader accounts for
// every overwritten record in `dropped`, so a drained trace always satisfies
//
//   records_kept + dropped == records_written   (per ring, cumulatively)
//
// The reader (a TraceSession draining on stop) may run concurrently with the
// writer.  Safety comes from a seqlock-style re-check rather than locking:
// the reader snapshots the write cursor, copies the candidate range, then
// re-reads the cursor; any slot the writer could have lapped during the copy
// is discarded and counted as dropped.  Slot words are relaxed atomics, so
// the concurrent overwrite is an ordinary data race *by design* and still
// well-defined C++ — the re-check guarantees no torn record survives into
// the drained output, which is why drained timestamps are monotonic.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "support/config.hpp"
#include "trace/trace_record.hpp"

namespace batcher::trace {

class TraceRing {
 public:
  // Sizes the buffer; rounds `capacity` up to a power of two (min 8).  Must
  // be called before the first push and never again afterwards.
  void init(std::size_t capacity) {
    BATCHER_ASSERT(slots_.empty(), "TraceRing::init is once-only");
    std::size_t cap = 8;
    while (cap < capacity) cap <<= 1;
    slots_ = std::vector<Slot>(cap);
    mask_ = cap - 1;
  }

  std::size_t capacity() const { return slots_.size(); }
  std::uint64_t written() const {
    return written_.load(std::memory_order_acquire);
  }

  // Writer side (owning thread only).
  void push(EventId event, std::uint16_t a16, std::uint32_t a32,
            std::uint64_t ts_ns) {
    const std::uint64_t w = written_.load(std::memory_order_relaxed);
    Slot& slot = slots_[w & mask_];
    slot.ts.store(ts_ns, std::memory_order_relaxed);
    slot.payload.store(pack_payload(event, a16, a32),
                       std::memory_order_relaxed);
    // Release publishes the slot words to a reader that acquires `written_`.
    written_.store(w + 1, std::memory_order_release);
  }

  struct Drained {
    std::vector<TraceRecord> records;  // timestamp-monotonic
    std::uint64_t dropped = 0;         // overwritten before they could be read
  };

  // Reader side: returns every record written since the last drain/reset that
  // is still intact, advancing the read cursor past the whole range.  Safe
  // while the writer keeps pushing (see file comment); records the writer
  // lapped — before or during the copy — count as dropped.
  Drained drain() {
    Drained out;
    if (slots_.empty()) return out;
    const std::uint64_t cap = slots_.size();
    const std::uint64_t w0 = written_.load(std::memory_order_acquire);
    std::uint64_t start = read_;
    if (w0 > cap && w0 - cap > start) start = w0 - cap;  // already lapped

    std::vector<TraceRecord> copied;
    copied.reserve(static_cast<std::size_t>(w0 - start));
    for (std::uint64_t i = start; i < w0; ++i) {
      const Slot& slot = slots_[i & mask_];
      const std::uint64_t ts = slot.ts.load(std::memory_order_relaxed);
      const std::uint64_t payload =
          slot.payload.load(std::memory_order_relaxed);
      copied.push_back(unpack(ts, payload));
    }

    // Re-check: anything below w1 - cap may have been overwritten mid-copy.
    const std::uint64_t w1 = written_.load(std::memory_order_acquire);
    std::uint64_t safe = start;
    if (w1 > cap && w1 - cap > safe) safe = w1 - cap;
    if (safe > w0) safe = w0;

    out.records.assign(copied.begin() + static_cast<std::ptrdiff_t>(safe - start),
                       copied.end());
    out.dropped = safe - read_;
    read_ = w0;
    return out;
  }

  // Reader side: forget everything written so far (records and drops).  Used
  // at session start so a reused ring only reports the new session's events.
  void reset() { read_ = written_.load(std::memory_order_acquire); }

 private:
  struct Slot {
    std::atomic<std::uint64_t> ts{0};
    std::atomic<std::uint64_t> payload{0};
  };
  static_assert(sizeof(Slot) == sizeof(TraceRecord),
                "in-ring slots keep the 16-byte record footprint");

  std::vector<Slot> slots_;
  std::uint64_t mask_ = 0;
  alignas(kCacheLineSize) std::atomic<std::uint64_t> written_{0};
  std::uint64_t read_ = 0;  // reader-owned cursor
};

}  // namespace batcher::trace
