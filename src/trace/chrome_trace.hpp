// Chrome trace_event export: renders a drained Trace as a JSON object that
// loads in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Track layout:
//   * one track per traced thread (tid = registration serial), named
//     "worker-<id>" — or "external-tid-<serial>" for non-worker submitters —
//     carrying task slices ("task:core"/"task:batch"), batchify wait slices
//     ("op wait d<N>"), flag-held slices, park slices, and steal-hit
//     instants;
//   * one track per batching domain (tid = 1000000 + domain id), named
//     "batcher d<N>", carrying a "batch[k]" slice per launch with nested
//     collect/run/complete phase slices.  Invariant 1 (one launch at a time
//     per domain) is what makes a single track per domain well-formed;
//   * counter tracks ("C" events): "pending d<N>" — each domain's in-flight
//     op depth (+1 at kOpSubmit, -batch at kCollected, -1 at kOpTimeout) —
//     and "workers working", the number of threads inside a task slice.
//     Both are replayed over the globally time-sorted record stream, so the
//     counters Perfetto draws are exact, not per-thread approximations.
// The process is named "batcher" via process_name metadata.
//
// Timestamps are microseconds relative to the session start, with nanosecond
// fractions preserved.  Unbalanced begin/end pairs (possible when the ring
// dropped records) are sanitized: stray ends are skipped and dangling begins
// are closed at the session end, so the file always loads.
#pragma once

#include <string>

#include "trace/trace.hpp"

namespace batcher::trace {

struct ChromeTraceOptions {
  // Failed steal attempts can dominate record counts; by default only hits
  // are rendered as instants (misses are still in the metrics).
  bool include_steal_misses = false;
};

std::string chrome_trace_json(const Trace& trace,
                              ChromeTraceOptions options = {});

// Writes chrome_trace_json to `path`.  Returns false (and leaves no partial
// file behind) if the file cannot be written.
bool write_chrome_trace(const Trace& trace, const std::string& path,
                        ChromeTraceOptions options = {});

}  // namespace batcher::trace
