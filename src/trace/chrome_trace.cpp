#include "trace/chrome_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace batcher::trace {

namespace {

constexpr int kPid = 0;
constexpr std::uint64_t kDomainTidBase = 1000000;

double rel_us(std::uint64_t ts_ns, std::uint64_t t0_ns) {
  return ts_ns <= t0_ns ? 0.0
                        : static_cast<double>(ts_ns - t0_ns) / 1000.0;
}

void event_header(json::Writer& w, const char* ph, std::uint64_t tid,
                  double ts_us) {
  w.begin_object();
  w.kv("ph", ph);
  w.kv("pid", kPid);
  w.kv("tid", tid);
  w.kv("ts", ts_us);
}

void metadata(json::Writer& w, std::uint64_t tid, const std::string& name) {
  event_header(w, "M", tid, 0.0);
  w.kv("name", "thread_name");
  w.key("args").begin_object().kv("name", name).end_object();
  w.end_object();
}

void process_metadata(json::Writer& w) {
  event_header(w, "M", 0, 0.0);
  w.kv("name", "process_name");
  w.key("args").begin_object().kv("name", "batcher").end_object();
  w.end_object();
}

// One sample of a Perfetto counter track ("C" event).  Counters are keyed by
// (pid, name); Perfetto draws a step function through the samples.
void counter_sample(json::Writer& w, const std::string& name, double ts_us,
                    std::uint64_t value) {
  w.begin_object();
  w.kv("ph", "C");
  w.kv("pid", kPid);
  w.kv("ts", ts_us);
  w.kv("name", name);
  w.key("args").begin_object().kv("value", value).end_object();
  w.end_object();
}

// A pending-depth or workers-working change, merged across threads and
// replayed in global time order so the counters are exact.
struct CounterEvent {
  std::uint64_t ts_ns;
  std::uint16_t domain;  // pending-depth counters; kNoCounterDomain = working
  std::int32_t delta;
};
constexpr std::uint16_t kNoCounterDomain = 0xffff;

// A slice opened on a worker track, awaiting its end event.
struct OpenSlice {
  EventId opened_by;
  std::string name;
};

// One domain-track event, merged across threads and replayed in time order
// (Invariant 1 serializes launches per domain, so this is a total order).
struct DomainEvent {
  std::uint64_t ts_ns;
  std::uint16_t domain;
  EventId event;
  std::uint32_t a32;
};

void complete_event(json::Writer& w, std::uint64_t tid, const std::string& name,
                    double ts_us, double dur_us) {
  event_header(w, "X", tid, ts_us);
  w.kv("dur", dur_us);
  w.kv("name", name);
  w.end_object();
}

std::string domain_label(std::uint16_t id) {
  return "d" + std::to_string(id);
}

}  // namespace

std::string chrome_trace_json(const Trace& trace, ChromeTraceOptions options) {
  json::Writer w;
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();

  process_metadata(w);

  std::vector<DomainEvent> domain_events;
  std::vector<std::uint16_t> domains_seen;
  std::vector<CounterEvent> counter_events;

  for (const TraceThread& thread : trace.threads) {
    const std::uint64_t tid = thread.serial;
    const std::string name =
        thread.worker_id == kNoWorkerId
            ? "external-tid-" + std::to_string(thread.serial)
            : "worker-" + std::to_string(thread.worker_id);
    metadata(w, tid, name);

    std::vector<OpenSlice> stack;
    auto begin_slice = [&](EventId by, std::string slice_name,
                           std::uint64_t ts_ns) {
      event_header(w, "B", tid, rel_us(ts_ns, trace.t0_ns));
      w.kv("name", slice_name);
      w.end_object();
      stack.push_back({by, std::move(slice_name)});
    };
    auto end_slice = [&](EventId opened_by, std::uint64_t ts_ns) {
      // Sanitize: only close the slice if it is actually on top; a mismatch
      // means the ring dropped the opening record.
      if (stack.empty() || stack.back().opened_by != opened_by) return;
      event_header(w, "E", tid, rel_us(ts_ns, trace.t0_ns));
      w.kv("name", stack.back().name);
      w.end_object();
      stack.pop_back();
    };

    for (const TraceRecord& r : thread.records) {
      const EventId event = static_cast<EventId>(r.event);
      switch (event) {
        case EventId::kTaskBegin:
          begin_slice(EventId::kTaskBegin,
                      r.a16 == 0 ? "task:core" : "task:batch", r.ts_ns);
          counter_events.push_back({r.ts_ns, kNoCounterDomain, +1});
          break;
        case EventId::kTaskEnd:
          end_slice(EventId::kTaskBegin, r.ts_ns);
          counter_events.push_back({r.ts_ns, kNoCounterDomain, -1});
          break;
        case EventId::kOpSubmit:
          begin_slice(EventId::kOpSubmit, "op wait " + domain_label(r.a16),
                      r.ts_ns);
          counter_events.push_back({r.ts_ns, r.a16, +1});
          break;
        case EventId::kOpResume:
          end_slice(EventId::kOpSubmit, r.ts_ns);
          break;
        case EventId::kFlagWon:
          begin_slice(EventId::kFlagWon, "flag held " + domain_label(r.a16),
                      r.ts_ns);
          break;
        case EventId::kSteal: {
          const bool hit = (r.a16 & kStealSuccess) != 0;
          if (!hit && !options.include_steal_misses) break;
          event_header(w, "i", tid, rel_us(r.ts_ns, trace.t0_ns));
          w.kv("s", "t");
          w.kv("name",
               std::string(hit ? "steal hit" : "steal miss") +
                   ((r.a16 & kStealKindBatch) != 0 ? " (batch)" : " (core)"));
          w.end_object();
          break;
        }
        case EventId::kCollected:
          if (r.a32 > 0) {
            counter_events.push_back(
                {r.ts_ns, r.a16, -static_cast<std::int32_t>(r.a32)});
          }
          domain_events.push_back({r.ts_ns, r.a16, event, r.a32});
          break;
        case EventId::kLaunchEnter:
        case EventId::kBopDone:
          domain_events.push_back({r.ts_ns, r.a16, event, r.a32});
          break;
        case EventId::kLaunchExit:
          domain_events.push_back({r.ts_ns, r.a16, event, r.a32});
          break;
        case EventId::kFlagReopen:
          // The "flag held" slice spans a whole chain of launches: it closes
          // on the reopen, not on each launch's exit.
          end_slice(EventId::kFlagWon, r.ts_ns);
          break;
        case EventId::kLaunchChained:
          domain_events.push_back({r.ts_ns, r.a16, event, r.a32});
          event_header(w, "i", tid, rel_us(r.ts_ns, trace.t0_ns));
          w.kv("s", "t");
          w.kv("name", "chained launch #" + std::to_string(r.a32) + " " +
                           domain_label(r.a16));
          w.end_object();
          break;
        case EventId::kAnnouncePush:
          if (!options.include_steal_misses) break;
          event_header(w, "i", tid, rel_us(r.ts_ns, trace.t0_ns));
          w.kv("s", "t");
          w.kv("name", "announce " + domain_label(r.a16));
          w.end_object();
          break;
        case EventId::kFlagCasFail:
          if (!options.include_steal_misses) break;
          event_header(w, "i", tid, rel_us(r.ts_ns, trace.t0_ns));
          w.kv("s", "t");
          w.kv("name", "flag CAS lost " + domain_label(r.a16));
          w.end_object();
          break;
        case EventId::kOpTimeout:
          event_header(w, "i", tid, rel_us(r.ts_ns, trace.t0_ns));
          w.kv("s", "t");
          w.kv("name", "op timeout " + domain_label(r.a16));
          w.end_object();
          counter_events.push_back({r.ts_ns, r.a16, -1});
          break;
        case EventId::kOpShed:
          event_header(w, "i", tid, rel_us(r.ts_ns, trace.t0_ns));
          w.kv("s", "t");
          w.kv("name", "op shed " + domain_label(r.a16));
          w.end_object();
          break;
        case EventId::kFrameSlabRefill:
          event_header(w, "i", tid, rel_us(r.ts_ns, trace.t0_ns));
          w.kv("s", "t");
          w.kv("name", "slab refill (class " + std::to_string(r.a16) + ")");
          w.end_object();
          break;
        case EventId::kFrameRemoteFree:
          // One per remotely-freed frame; high volume, so gated like steal
          // misses rather than flooding the default view.
          if (!options.include_steal_misses) break;
          event_header(w, "i", tid, rel_us(r.ts_ns, trace.t0_ns));
          w.kv("s", "t");
          w.kv("name", "remote free (class " + std::to_string(r.a16) + ")");
          w.end_object();
          break;
        case EventId::kParkBegin:
          begin_slice(EventId::kParkBegin, "parked", r.ts_ns);
          break;
        case EventId::kParkEnd:
          end_slice(EventId::kParkBegin, r.ts_ns);
          break;
        case EventId::kJoinWaitBegin:
          // One per parallel_invoke on the spawner's thread; high volume, so
          // gated with the other flood-prone events.
          if (!options.include_steal_misses) break;
          begin_slice(EventId::kJoinWaitBegin, "join wait", r.ts_ns);
          break;
        case EventId::kJoinWaitEnd:
          if (!options.include_steal_misses) break;
          end_slice(EventId::kJoinWaitBegin, r.ts_ns);
          break;
        case EventId::kWorkerStart:
        case EventId::kWorkerExit:
          event_header(w, "i", tid, rel_us(r.ts_ns, trace.t0_ns));
          w.kv("s", "t");
          w.kv("name", event == EventId::kWorkerStart ? "worker start"
                                                      : "worker exit");
          w.end_object();
          break;
        case EventId::kNone:
          break;
      }
    }
    // Close slices left dangling by drops (or a mid-slice session stop).
    while (!stack.empty()) {
      event_header(w, "E", tid, rel_us(trace.t1_ns, trace.t0_ns));
      w.kv("name", stack.back().name);
      w.end_object();
      stack.pop_back();
    }
  }

  // Batch-lifecycle tracks: replay launches per domain in time order.
  std::stable_sort(domain_events.begin(), domain_events.end(),
                   [](const DomainEvent& a, const DomainEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  struct LaunchState {
    bool open = false;
    std::uint64_t enter_ts = 0;
    bool collected = false;
    std::uint64_t collected_ts = 0;
    std::uint32_t size = 0;
    bool bop_done = false;
    std::uint64_t bop_ts = 0;
  };
  std::vector<LaunchState> launches(256);  // one per possible domain id
  for (const DomainEvent& e : domain_events) {
    if (e.domain >= launches.size()) continue;
    const std::uint64_t tid = kDomainTidBase + e.domain;
    if (std::find(domains_seen.begin(), domains_seen.end(), e.domain) ==
        domains_seen.end()) {
      domains_seen.push_back(e.domain);
      metadata(w, tid, "batcher " + domain_label(e.domain));
    }
    LaunchState& ls = launches[e.domain];
    switch (e.event) {
      case EventId::kLaunchEnter:
        ls = LaunchState{};
        ls.open = true;
        ls.enter_ts = e.ts_ns;
        break;
      case EventId::kCollected:
        if (!ls.open) break;
        complete_event(w, tid, "collect", rel_us(ls.enter_ts, trace.t0_ns),
                       rel_us(e.ts_ns, trace.t0_ns) -
                           rel_us(ls.enter_ts, trace.t0_ns));
        ls.collected = true;
        ls.collected_ts = e.ts_ns;
        ls.size = e.a32;
        break;
      case EventId::kBopDone:
        if (!ls.collected) break;
        complete_event(w, tid, "run", rel_us(ls.collected_ts, trace.t0_ns),
                       rel_us(e.ts_ns, trace.t0_ns) -
                           rel_us(ls.collected_ts, trace.t0_ns));
        ls.bop_done = true;
        ls.bop_ts = e.ts_ns;
        break;
      case EventId::kLaunchExit: {
        if (!ls.open) break;
        if (ls.bop_done) {
          complete_event(w, tid, "complete", rel_us(ls.bop_ts, trace.t0_ns),
                         rel_us(e.ts_ns, trace.t0_ns) -
                             rel_us(ls.bop_ts, trace.t0_ns));
        }
        // Parent slice spanning the whole launch; emitted last so viewers
        // nest the phases inside it by duration.
        event_header(w, "X", tid, rel_us(ls.enter_ts, trace.t0_ns));
        w.kv("dur", rel_us(e.ts_ns, trace.t0_ns) -
                        rel_us(ls.enter_ts, trace.t0_ns));
        w.kv("name", "batch[" + std::to_string(ls.size) + "]");
        w.key("args")
            .begin_object()
            .kv("collected", static_cast<std::uint64_t>(ls.size))
            .kv("done", static_cast<std::uint64_t>(e.a32))
            .end_object();
        w.end_object();
        ls = LaunchState{};
        break;
      }
      case EventId::kLaunchChained:
        // Marks the seam between two launches that share one flag hold.
        event_header(w, "i", tid, rel_us(e.ts_ns, trace.t0_ns));
        w.kv("s", "t");
        w.kv("name", "chain #" + std::to_string(e.a32));
        w.end_object();
        break;
      default:
        break;
    }
  }

  // Counter tracks: replay the merged, time-sorted deltas into step
  // functions.  Depths are clamped at zero — a dropped +1 must not wedge a
  // counter negative for the rest of the render.
  std::stable_sort(counter_events.begin(), counter_events.end(),
                   [](const CounterEvent& a, const CounterEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  std::vector<std::int64_t> pending_depth(256, 0);
  std::int64_t working = 0;
  for (const CounterEvent& e : counter_events) {
    const double ts_us = rel_us(e.ts_ns, trace.t0_ns);
    if (e.domain == kNoCounterDomain) {
      working += e.delta;
      if (working < 0) working = 0;
      counter_sample(w, "workers working", ts_us,
                     static_cast<std::uint64_t>(working));
    } else if (e.domain < pending_depth.size()) {
      std::int64_t& depth = pending_depth[e.domain];
      depth += e.delta;
      if (depth < 0) depth = 0;
      counter_sample(w, "pending " + domain_label(e.domain), ts_us,
                     static_cast<std::uint64_t>(depth));
    }
  }

  w.end_array();
  w.end_object();
  return w.str();
}

bool write_chrome_trace(const Trace& trace, const std::string& path,
                        ChromeTraceOptions options) {
  const std::string body = chrome_trace_json(trace, options);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = written == body.size() && std::fclose(f) == 0;
  if (!ok) std::remove(path.c_str());
  return ok;
}

}  // namespace batcher::trace
