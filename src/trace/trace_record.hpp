// The 16-byte trace record and the event vocabulary of the always-on
// tracing layer (src/trace).
//
// Unlike the audit seam (runtime/schedule_hooks.hpp), which exists to *check*
// the protocol and compiles away in Release builds, trace records exist to
// *measure* it: every record carries a nanosecond timestamp, so a drained
// trace reconstructs when each paper quantity happened — op submit→done
// latency, flag-held windows, LAUNCHBATCH phases, steal streaks — not just
// how often.  Records are fixed-size so a worker's ring buffer writes them
// with two plain stores and no allocation.
#pragma once

#include <cstdint>

namespace batcher::trace {

// What happened.  The a16/a32 payload meaning is per-event:
//
//   kTaskBegin / kTaskEnd   a16 = task kind (0 core, 1 batch)
//   kSteal                  a16 = bit0 target kind (1 = batch),
//                                 bit1 success
//   kOpSubmit / kOpResume   a16 = batching-domain id (register_domain)
//   kFlagWon                a16 = domain id
//   kLaunchEnter            a16 = domain id
//   kCollected              a16 = domain id, a32 = ops in the batch
//   kBopDone                a16 = domain id
//   kLaunchExit             a16 = domain id, a32 = ops carried to done
//   kFrameSlabRefill        a16 = size class; ring = owning worker
//   kFrameRemoteFree        a16 = size class; ring = freeing thread
//   kAnnouncePush           a16 = domain id (announce-list CAS push)
//   kFlagCasFail            a16 = domain id (lost the batch-flag CAS race)
//   kLaunchChained          a16 = domain id, a32 = chain index (>= 1);
//                           next launch runs under the same flag hold
//   kFlagReopen             a16 = domain id; the flag is about to reopen —
//                           closes the flag-held window kFlagWon opened
//                           (kLaunchExit no longer implies a reopen: a
//                           chained launch keeps the flag)
//   kOpTimeout              a16 = domain id; an external submit revoked its
//                           still-pending record at its deadline (the ring is
//                           the submitting thread's)
//   kOpShed                 a16 = domain id; an external submit was refused
//                           before publication because pending depth was at
//                           the domain's shed threshold
//   kWorkerStart            worker thread entered its main loop (emitted only
//                           when a session is already active at thread start;
//                           the attribution replay starts this thread's
//                           accountable window here instead of at t0)
//   kWorkerExit             worker thread left its main loop — closes the
//                           accountable window
//   kParkBegin / kParkEnd   the between-runs park on the scheduler's condition
//                           variable (attribution bucket: parked)
//   kJoinWaitBegin / kJoinWaitEnd
//                           Worker::wait blocked at a join, helping/stealing
//                           (attribution bucket: steal-attempt; the tasks it
//                           helps with open their own kTaskBegin windows)
enum class EventId : std::uint16_t {
  kNone = 0,
  kTaskBegin,
  kTaskEnd,
  kSteal,
  kOpSubmit,
  kOpResume,
  kFlagWon,
  kLaunchEnter,
  kCollected,
  kBopDone,
  kLaunchExit,
  kFrameSlabRefill,
  kFrameRemoteFree,
  kAnnouncePush,
  kFlagCasFail,
  kLaunchChained,
  kFlagReopen,
  kOpTimeout,
  kOpShed,
  kWorkerStart,
  kWorkerExit,
  kParkBegin,
  kParkEnd,
  kJoinWaitBegin,
  kJoinWaitEnd,
};

inline constexpr std::uint16_t kStealKindBatch = 1;  // kSteal a16 bit 0
inline constexpr std::uint16_t kStealSuccess = 2;    // kSteal a16 bit 1

// One drained trace record.  The in-ring representation packs the same 16
// bytes into two relaxed-atomic words (trace_ring.hpp) so a concurrent drain
// is race-free; this is the unpacked, reader-side form.
struct TraceRecord {
  std::uint64_t ts_ns = 0;  // trace::now_ns() at emission (steady_clock)
  std::uint16_t event = 0;  // EventId
  std::uint16_t a16 = 0;
  std::uint32_t a32 = 0;
};
static_assert(sizeof(TraceRecord) == 16, "records are exactly 16 bytes");

// Payload word packing: event in bits 0-15, a16 in 16-31, a32 in 32-63.
inline std::uint64_t pack_payload(EventId event, std::uint16_t a16,
                                  std::uint32_t a32) {
  return static_cast<std::uint64_t>(event) |
         (static_cast<std::uint64_t>(a16) << 16) |
         (static_cast<std::uint64_t>(a32) << 32);
}

inline TraceRecord unpack(std::uint64_t ts_ns, std::uint64_t payload) {
  TraceRecord r;
  r.ts_ns = ts_ns;
  r.event = static_cast<std::uint16_t>(payload);
  r.a16 = static_cast<std::uint16_t>(payload >> 16);
  r.a32 = static_cast<std::uint32_t>(payload >> 32);
  return r;
}

}  // namespace batcher::trace
