// Log-bucketed latency histogram.
//
// Bucket i (for i >= 1) covers the nanosecond range [2^(i-1), 2^i); bucket 0
// holds exact zeros.  64 buckets therefore span every representable uint64
// duration, and a bucket index is one `bit_width` instruction — cheap enough
// to record into from measurement loops, not just at drain time.  Buckets
// are rt::Counter cells updated with add_saturating, so concurrent recording
// is safe and an overflowing bucket pins at "full" instead of wrapping.
//
// count/sum/min/max ride along for exact means; percentiles come from the
// buckets and are therefore bounded by one power of two of error, which is
// the right fidelity for the latency-distribution questions the paper's
// analysis raises (is the flag held O(batch) time? is op latency bimodal
// between launchers and trapped helpers?).
#pragma once

#include <bit>
#include <cstdint>

#include "runtime/stats.hpp"

namespace batcher::trace {

class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  // Counter cells make the histogram non-copyable by default; reports are
  // moved/copied around after recording has stopped, so value semantics via
  // relaxed snapshots are fine.
  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram& other) { copy_from(other); }
  LatencyHistogram& operator=(const LatencyHistogram& other) {
    if (this != &other) {
      reset();
      copy_from(other);
    }
    return *this;
  }

  static std::size_t bucket_of(std::uint64_t ns) {
    const int w = std::bit_width(ns);  // 0 for ns == 0
    return static_cast<std::size_t>(w < 64 ? w : 63);
  }
  // Inclusive lower bound of a bucket's range.
  static std::uint64_t bucket_floor_ns(std::size_t i) {
    return i == 0 ? 0 : (std::uint64_t{1} << (i - 1));
  }
  // Exclusive upper bound (saturates for the last bucket).
  static std::uint64_t bucket_ceil_ns(std::size_t i) {
    return i >= 63 ? ~std::uint64_t{0} : (std::uint64_t{1} << i);
  }

  void add(std::uint64_t ns) {
    buckets_[bucket_of(ns)].add_saturating();
    count_.bump();
    sum_ns_.bump(ns);
    // min/max are maintained with racy read-modify-writes: exact for the
    // single-threaded drain-time use, monotone-approximate if ever shared.
    if (count() == 1 || ns < min_ns_.get()) {
      min_ns_.reset();
      min_ns_.bump(ns);
    }
    if (ns > max_ns_.get()) {
      max_ns_.reset();
      max_ns_.bump(ns);
    }
  }

  void merge(const LatencyHistogram& other) {
    if (other.count() == 0) return;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      buckets_[i].add_saturating(other.buckets_[i].get());
    }
    if (count() == 0 || other.min_ns() < min_ns()) {
      min_ns_.reset();
      min_ns_.bump(other.min_ns());
    }
    if (other.max_ns() > max_ns()) {
      max_ns_.reset();
      max_ns_.bump(other.max_ns());
    }
    count_.bump(other.count());
    sum_ns_.bump(other.sum_ns());
  }

  std::uint64_t count() const { return count_.get(); }
  std::uint64_t sum_ns() const { return sum_ns_.get(); }
  std::uint64_t min_ns() const { return count() == 0 ? 0 : min_ns_.get(); }
  std::uint64_t max_ns() const { return max_ns_.get(); }
  std::uint64_t bucket(std::size_t i) const { return buckets_[i].get(); }

  double mean_ns() const {
    return count() == 0
               ? 0.0
               : static_cast<double>(sum_ns()) / static_cast<double>(count());
  }

  // Upper bound (bucket ceiling) of the bucket containing the q-quantile,
  // q in [0, 1].  Returns 0 for an empty histogram.
  std::uint64_t percentile_ns(double q) const {
    const std::uint64_t n = count();
    if (n == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const double target = q * static_cast<double>(n);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += bucket(i);
      if (static_cast<double>(seen) >= target && seen > 0) {
        return bucket_ceil_ns(i);
      }
    }
    return max_ns();
  }

  void reset() {
    for (auto& b : buckets_) b.reset();
    count_.reset();
    sum_ns_.reset();
    min_ns_.reset();
    max_ns_.reset();
  }

 private:
  void copy_from(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      buckets_[i].add_saturating(other.buckets_[i].get());
    }
    count_.bump(other.count_.get());
    sum_ns_.bump(other.sum_ns_.get());
    min_ns_.bump(other.min_ns_.get());
    max_ns_.bump(other.max_ns_.get());
  }

  rt::Counter buckets_[kBuckets];
  rt::Counter count_;
  rt::Counter sum_ns_;
  rt::Counter min_ns_;
  rt::Counter max_ns_;
};

}  // namespace batcher::trace
