#include "trace/trace.hpp"

#include <algorithm>
#include <array>
#include <memory>
#include <mutex>

#include "support/config.hpp"
#include "trace/bound_ledger.hpp"

namespace batcher::trace {

namespace {

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<detail::RingHandle>> rings;
  std::uint64_t next_serial = 0;
  std::size_t ring_capacity = std::size_t{1} << 20;
  std::atomic<bool> session_active{false};
};

Registry& registry() {
  static Registry r;  // immortal: threads may emit until process exit
  return r;
}

// Shared ownership from the thread side: keeps the ring alive until the
// thread exits, after which the registry reference keeps it drainable.
thread_local std::shared_ptr<detail::RingHandle> t_ring_owner;

// Registry entries whose thread has exited (use_count == 1) have been fully
// drained by the time this runs; drop them so long processes that trace many
// short-lived schedulers do not accumulate rings.  Caller holds reg.mu.
void prune_dead_rings(Registry& reg) {
  std::erase_if(reg.rings,
                [](const std::shared_ptr<detail::RingHandle>& h) {
                  return h.use_count() == 1;
                });
}

}  // namespace

namespace detail {

RingHandle* register_thread(unsigned worker_id) {
  Registry& reg = registry();
  auto handle = std::make_shared<RingHandle>();
  std::lock_guard<std::mutex> lock(reg.mu);
  handle->ring.init(reg.ring_capacity);
  handle->serial = reg.next_serial++;
  handle->worker_id = worker_id;
  reg.rings.push_back(handle);
  t_ring_owner = handle;
  t_ring = handle.get();
  return t_ring;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Domain ids: a small fixed table of atomic pointers.  register_domain claims
// the first free slot with a CAS; unregister_domain releases it.  Lookups
// never happen on the hot path — a Batcher caches its id at construction.

namespace {
constexpr std::size_t kMaxDomains = 256;
std::array<std::atomic<const void*>, kMaxDomains>& domain_table() {
  static std::array<std::atomic<const void*>, kMaxDomains> table{};
  return table;
}
}  // namespace

std::uint16_t register_domain(const void* domain) {
  auto& table = domain_table();
  for (std::size_t i = 0; i < table.size(); ++i) {
    const void* expected = nullptr;
    if (table[i].compare_exchange_strong(expected, domain,
                                         std::memory_order_acq_rel)) {
      return static_cast<std::uint16_t>(i);
    }
  }
  // Table exhausted: share the overflow id.  Trace consumers see these
  // domains merged, which degrades attribution but never correctness.
  return static_cast<std::uint16_t>(kMaxDomains - 1);
}

void unregister_domain(const void* domain) {
  auto& table = domain_table();
  for (auto& slot : table) {
    const void* expected = domain;
    if (slot.compare_exchange_strong(expected, nullptr,
                                     std::memory_order_acq_rel)) {
      return;
    }
  }
}

// ---------------------------------------------------------------------------

TraceSession::TraceSession(Options options) {
  Registry& reg = registry();
  bool expected = false;
  BATCHER_ASSERT(
      reg.session_active.compare_exchange_strong(expected, true,
                                                 std::memory_order_acq_rel),
      "at most one TraceSession may be active at a time");
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.ring_capacity = options.ring_capacity;
    prune_dead_rings(reg);
    for (auto& h : reg.rings) h->ring.reset();
  }
  // The bound ledger's cells cover exactly one session window: zero them
  // before enabled=true publishes so the first strand lands on clean cells.
  ledger::reset();
  trace_.t0_ns = now_ns();
  detail::g_enabled.store(true, std::memory_order_release);
}

TraceSession::~TraceSession() { stop(); }

const Trace& TraceSession::stop() {
  if (stopped_) return trace_;
  stopped_ = true;
  Registry& reg = registry();
  detail::g_enabled.store(false, std::memory_order_release);
  trace_.t1_ns = now_ns();
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    for (auto& h : reg.rings) {
      TraceRing::Drained d = h->ring.drain();
      if (d.records.empty() && d.dropped == 0) continue;
      TraceThread thread;
      thread.serial = h->serial;
      thread.worker_id = h->worker_id;
      thread.dropped = d.dropped;
      thread.records = std::move(d.records);
      trace_.threads.push_back(std::move(thread));
    }
    prune_dead_rings(reg);
  }
  std::sort(trace_.threads.begin(), trace_.threads.end(),
            [](const TraceThread& a, const TraceThread& b) {
              return a.serial < b.serial;
            });
  reg.session_active.store(false, std::memory_order_release);
  return trace_;
}

}  // namespace batcher::trace
