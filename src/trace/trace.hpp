// Always-on tracing layer: per-thread trace rings + the TraceSession that
// collects them.
//
// Unlike the BATCHER_AUDIT hook seam, this layer is compiled into every
// build, including Release: with no session active, every instrumentation
// point costs exactly one relaxed load and a predicted-not-taken branch
// (`trace::enabled()`).  With a session active, an event is a timestamp read
// plus a ring push (two relaxed stores and a release store) into a ring the
// emitting thread owns — no sharing, no locks, no allocation on the hot
// path.
//
// Lifecycle and memory-ordering contract (DESIGN.md §9):
//
//  * Rings are thread-local and registered in a process-wide registry on the
//    thread's first traced emission.  A registry entry is shared ownership
//    (thread + registry), so a ring outlives its thread and a session can
//    drain events from workers whose Scheduler has already been destroyed.
//    Dead threads' rings are pruned once drained.
//  * TraceSession construction resets live rings and publishes enabled=true
//    (release).  An emitting thread that observes enabled=true (relaxed is
//    enough: rings are reset only between sessions, when their records are
//    dead) writes records tagged with its steady_clock timestamp.
//  * TraceSession::stop() publishes enabled=false and then drains.  A writer
//    mid-push can complete one trailing record; the ring's seqlock-style
//    drain (trace_ring.hpp) makes the concurrent read race-free, and no
//    ring memory is ever freed while its thread lives, so there is no
//    use-after-free window at all.
//  * At most one session exists at a time (asserted).
//
// The layer deliberately does not depend on the runtime: emission points
// pass their worker id in, so src/trace sits next to src/support at the
// bottom of the dependency stack and the runtime/batcher link against it.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace_clock.hpp"
#include "trace/trace_record.hpp"
#include "trace/trace_ring.hpp"

namespace batcher::trace {

inline constexpr unsigned kNoWorkerId = ~0u;

namespace detail {

struct RingHandle {
  TraceRing ring;
  std::uint64_t serial = 0;         // process-wide registration order
  unsigned worker_id = kNoWorkerId; // rt worker id at first emission
};

inline std::atomic<bool> g_enabled{false};
inline thread_local RingHandle* t_ring = nullptr;

// Registers the calling thread's ring (defined in trace.cpp).
RingHandle* register_thread(unsigned worker_id);

}  // namespace detail

// The one check every instrumentation point performs.  Call sites guard with
// `if (trace::enabled()) [[unlikely]]` so payload computation is also skipped
// when no session is active.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

inline void emit(unsigned worker, EventId event, std::uint16_t a16 = 0,
                 std::uint32_t a32 = 0) {
  if (!enabled()) return;
  detail::RingHandle* h = detail::t_ring;
  if (h == nullptr) h = detail::register_thread(worker);
  h->ring.push(event, a16, a32, now_ns());
}

// Small stable ids for batching domains, so a 16-byte record can name the
// Batcher an event belongs to.  A Batcher registers itself at construction
// and unregisters at destruction; ids are reused after unregistration.
std::uint16_t register_domain(const void* domain);
void unregister_domain(const void* domain);

// ---------------------------------------------------------------------------
// Drained traces.

struct TraceThread {
  std::uint64_t serial = 0;
  unsigned worker_id = kNoWorkerId;
  std::uint64_t dropped = 0;
  std::vector<TraceRecord> records;  // timestamp-monotonic
};

struct Trace {
  std::uint64_t t0_ns = 0;  // session start / stop timestamps
  std::uint64_t t1_ns = 0;
  std::vector<TraceThread> threads;

  double wall_seconds() const {
    return t1_ns <= t0_ns ? 0.0
                          : static_cast<double>(t1_ns - t0_ns) / 1e9;
  }
  std::uint64_t total_records() const {
    std::uint64_t n = 0;
    for (const auto& t : threads) n += t.records.size();
    return n;
  }
  std::uint64_t dropped_records() const {
    std::uint64_t n = 0;
    for (const auto& t : threads) n += t.dropped;
    return n;
  }
};

// RAII collection window.  Constructing enables tracing process-wide;
// `stop()` (or destruction) disables it and drains every ring.
class TraceSession {
 public:
  struct Options {
    // Records per thread ring (rounded up to a power of two, 16 B each).
    // Applies to rings created during this session; rings of still-live
    // threads keep the capacity they were created with.
    std::size_t ring_capacity = std::size_t{1} << 20;
  };

  TraceSession() : TraceSession(Options{}) {}
  explicit TraceSession(Options options);
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  // Disables collection and drains every ring; idempotent.  Threads are
  // ordered by registration serial.
  const Trace& stop();
  bool stopped() const { return stopped_; }

  // The drained trace (stops the session if still running).
  const Trace& trace() { return stop(); }

 private:
  Trace trace_;
  bool stopped_ = false;
};

}  // namespace batcher::trace
