// Tests for the BATCHER simulator: operational invariants, the theorem's
// shape, and the Lemma 2 trap bound.
#include <gtest/gtest.h>

#include <cstdint>

#include "sim/cost_model.hpp"
#include "sim/dag.hpp"
#include "sim/sim_batcher.hpp"

namespace batcher::sim {
namespace {

BatcherSimConfig config(unsigned P, std::uint64_t seed = 1) {
  BatcherSimConfig cfg;
  cfg.workers = P;
  cfg.seed = seed;
  return cfg;
}

TEST(SimBatcher, CompletesAndConservesWork) {
  Dag core = build_parallel_loop_with_ds(128, 2, 1, 1);
  CounterCostModel model;
  const SimResult res = simulate_batcher(core, model, config(4));
  // Every core node (including ds nodes) executed exactly once.
  EXPECT_EQ(res.busy_core, core.work());
  EXPECT_EQ(res.batch_ops, core.num_ds_nodes());
  EXPECT_GT(res.batches, 0);
}

TEST(SimBatcher, DeterministicGivenSeed) {
  Dag core = build_parallel_loop_with_ds(64, 1, 1, 1);
  CounterCostModel m1, m2;
  const SimResult a = simulate_batcher(core, m1, config(4, 9));
  const SimResult b = simulate_batcher(core, m2, config(4, 9));
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.steal_attempts, b.steal_attempts);
}

class SimBatcherWorkers : public ::testing::TestWithParam<unsigned> {};

TEST_P(SimBatcherWorkers, BatchSizeNeverExceedsP) {
  const unsigned P = GetParam();
  Dag core = build_parallel_loop_with_ds(256, 1, 1, 1);
  CounterCostModel model;
  const SimResult res = simulate_batcher(core, model, config(P));
  EXPECT_LE(res.max_batch_size, static_cast<std::int64_t>(P)) << "Invariant 2";
  EXPECT_EQ(res.batch_ops, 256);
}

TEST_P(SimBatcherWorkers, SequentialOpsMakeSingletonBatches) {
  const unsigned P = GetParam();
  Dag core = build_sequential_ds_chain(/*n=*/40, /*gap=*/3);
  CounterCostModel model;
  const SimResult res = simulate_batcher(core, model, config(P));
  EXPECT_EQ(res.max_batch_size, 1);
  EXPECT_EQ(res.batches, 40);
}

TEST_P(SimBatcherWorkers, MakespanWithinTheoremBound) {
  // Theorem 1: T_P = O((T1 + W(n) + n·s(n))/P + m·s(n) + T∞).
  const unsigned P = GetParam();
  const std::int64_t n = 512;
  Dag core = build_parallel_loop_with_ds(n, 4, 2, 1);
  SkipListCostModel model(1 << 16);
  const SimResult res = simulate_batcher(core, model, config(P));

  const std::int64_t t1 = core.work();
  const std::int64_t tinf = core.span();
  const std::int64_t m = core.max_ds_on_path();
  const std::int64_t s = model.batch_cost(static_cast<std::int64_t>(P)).span;
  // W(n): n ops at lg(size) work each (size grows, use final size).
  const std::int64_t w = n * ilog2((1 << 16) + n);
  const std::int64_t bound =
      (t1 + w + n * s) / static_cast<std::int64_t>(P) + m * s + tinf;
  // Generous constant: the theorem is asymptotic.
  EXPECT_LE(res.makespan, 24 * bound) << "P=" << P;
}

INSTANTIATE_TEST_SUITE_P(Workers, SimBatcherWorkers,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

TEST(SimBatcher, ParallelCallersProduceRealBatches) {
  Dag core = build_parallel_loop_with_ds(1024, 1, 1, 1);
  CounterCostModel model;
  const SimResult res = simulate_batcher(core, model, config(8));
  EXPECT_GT(res.mean_batch_size(), 1.5)
      << "with 8 workers hammering the structure, batching must kick in";
}

TEST(SimBatcher, SpeedupGrowsWithWorkers) {
  Dag core = build_parallel_loop_with_ds(2048, 2, 1, 1);
  SkipListCostModel m1(1 << 20), m8(1 << 20);
  const SimResult r1 = simulate_batcher(core, m1, config(1));
  const SimResult r8 = simulate_batcher(core, m8, config(8));
  const double speedup = static_cast<double>(r1.makespan) /
                         static_cast<double>(r8.makespan);
  EXPECT_GT(speedup, 2.0) << "8 workers should beat 1 by well over 2x";
}

TEST(SimBatcher, SetupOverheadCostsSomething) {
  Dag core = build_parallel_loop_with_ds(512, 1, 1, 1);
  CounterCostModel m1, m2;
  BatcherSimConfig with = config(4);
  BatcherSimConfig without = config(4);
  without.setup_overhead = false;
  const SimResult r_with = simulate_batcher(core, m1, with);
  const SimResult r_without = simulate_batcher(core, m2, without);
  EXPECT_GT(r_with.busy_setup, 0);
  EXPECT_EQ(r_without.busy_setup, 0);
  EXPECT_GE(r_with.makespan, r_without.makespan / 2);  // sanity, not strict
}

TEST(SimBatcher, AccruePolicyMakesBiggerBatches) {
  Dag core = build_parallel_loop_with_ds(1024, 1, 1, 1);
  CounterCostModel m1, m2;
  BatcherSimConfig immediate = config(8);
  BatcherSimConfig accrue = config(8);
  accrue.min_batch_ops = 4;
  accrue.max_wait_steps = 64;
  const SimResult r_imm = simulate_batcher(core, m1, immediate);
  const SimResult r_acc = simulate_batcher(core, m2, accrue);
  // Accruing guarantees batches of >= min_batch_ops except for wait-limit
  // flushes, so the mean stays in the same ballpark or above; on saturated
  // workloads immediate launching already reaches size-P batches, hence the
  // tolerance rather than strict dominance.
  EXPECT_GE(r_acc.mean_batch_size(), 0.8 * r_imm.mean_batch_size());
  EXPECT_EQ(r_acc.batch_ops, r_imm.batch_ops);
}

TEST(SimBatcher, AllStealPoliciesTerminateCorrectly) {
  Dag core = build_parallel_loop_with_ds(256, 2, 1, 1);
  for (StealPolicy policy :
       {StealPolicy::Alternating, StealPolicy::CoreOnly, StealPolicy::BatchOnly,
        StealPolicy::UniformRandom}) {
    CounterCostModel model;
    BatcherSimConfig cfg = config(4);
    cfg.policy = policy;
    const SimResult res = simulate_batcher(core, model, cfg);
    EXPECT_EQ(res.busy_core, core.work())
        << "policy " << static_cast<int>(policy);
    EXPECT_EQ(res.batch_ops, core.num_ds_nodes());
  }
}

TEST(SimBatcher, SingleWorkerDegeneratesGracefully) {
  Dag core = build_parallel_loop_with_ds(64, 1, 1, 1);
  CounterCostModel model;
  const SimResult res = simulate_batcher(core, model, config(1));
  EXPECT_EQ(res.max_batch_size, 1);  // only one op can ever be pending
  EXPECT_EQ(res.batches, 64);
  EXPECT_EQ(res.busy_core, core.work());
}

TEST(SimBatcher, CostModelGrowsAcrossBatches) {
  // SkipList model: committed ops should raise the structure size.
  Dag core = build_parallel_loop_with_ds(256, 1, 1, 1);
  SkipListCostModel model(16);
  simulate_batcher(core, model, config(4));
  EXPECT_EQ(model.current_size(), 16 + 256);
}

}  // namespace
}  // namespace batcher::sim
