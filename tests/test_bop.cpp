// Sort-merge BOP property suite (`ctest -R bop`).
//
// The sort-merge rewrites of the skip list, weight-balanced tree, and hash
// map reorder each batch internally (sort by key / bucket, scan-pack groups,
// parallel combine), which is exactly where same-key semantics can silently
// break: two inserts of one key racing for "first wins", an erase and a
// contains straddling the phase boundary, update deltas folding in the wrong
// order.  This suite pins those semantics three ways:
//
//   1. 500-seed perturbed-tape sweeps per structure: randomly generated
//      batches over a deliberately tiny key universe (so nearly every batch
//      carries same-key collisions) driven through run_batch for BOTH apply
//      policies and checked op-for-op against a sequential phase-aware
//      reference model.  Legacy and SortMerge answer the same tape, so the
//      sweep is simultaneously the legacy-vs-sortmerge equivalence check.
//   2. Blocking-API rounds under the schedule perturber (when BATCHER_AUDIT
//      hooks are compiled in): batch partitions are whatever the real launch
//      protocol produces, so each round asserts only partition-insensitive
//      aggregates — per-key success counts and delta sums.
//   3. Large direct-driven batches (including the paper's MultiInsert trick)
//      that push every size bucket the span profile measures.
//
// The reference semantics (documented in each structure's header): reads
// observe the pre-batch state; then erases apply in working-set order; then
// inserts apply in working-set order ("first wins" on duplicates).  The hash
// map is stronger: full sequential replay in working-set order, so a Get
// observes an earlier same-batch Put.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "audit/audit_session.hpp"
#include "audit/schedule_perturber.hpp"
#include "batcher/op_record.hpp"
#include "ds/batch_prep.hpp"
#include "ds/batched_hashmap.hpp"
#include "ds/batched_skiplist.hpp"
#include "ds/batched_wbtree.hpp"
#include "runtime/api.hpp"
#include "runtime/schedule_hooks.hpp"
#include "runtime/scheduler.hpp"
#include "support/rng.hpp"
#include "trace/trace.hpp"

namespace batcher {
namespace {

using ds::ApplyPolicy;
using ds::BatchedHashMap;
using ds::BatchedSkipList;
using ds::BatchedWBTree;
using Key = std::int64_t;

constexpr std::uint64_t kSweepSeeds = 500;
constexpr int kRoundsPerSeed = 6;

// Keys are drawn from {0, 10, 20, ..., 110}: 12 values, so a 30-op batch
// averages multiple ops per key, and the gaps make Successor / RangeCount
// probes distinguish "key present" from "neighbour present".
constexpr std::int64_t kUniverse = 12;

Key draw_key(Xoshiro256& rng) {
  return static_cast<Key>(rng.next_below(kUniverse)) * 10;
}

// ---------------------------------------------------------------------------
// 1a. Skip list: mixed tape vs phase-aware model, both policies.
// ---------------------------------------------------------------------------

struct SkipSpec {
  BatchedSkipList::Kind kind = BatchedSkipList::Kind::Insert;
  Key key = 0;
  Key key2 = 0;
  std::vector<Key> multi;  // MultiInsert payload
};

struct SkipExpected {
  bool found = false;
  std::int64_t count = 0;
  std::optional<Key> out_key;
};

std::vector<SkipSpec> random_skip_batch(Xoshiro256& rng, std::size_t n) {
  std::vector<SkipSpec> specs(n);
  for (auto& s : specs) {
    const std::uint64_t pick = rng.next_below(12);
    s.key = draw_key(rng);
    if (pick < 4) {
      s.kind = BatchedSkipList::Kind::Insert;
    } else if (pick < 7) {
      s.kind = BatchedSkipList::Kind::Erase;
    } else if (pick < 9) {
      s.kind = BatchedSkipList::Kind::Contains;
    } else if (pick < 10) {
      s.kind = BatchedSkipList::Kind::Successor;
      s.key += static_cast<Key>(rng.next_below(15)) - 7;  // off-grid probes
    } else if (pick < 11) {
      s.kind = BatchedSkipList::Kind::RangeCount;
      s.key2 = s.key + static_cast<Key>(rng.next_below(60));
    } else {
      s.kind = BatchedSkipList::Kind::MultiInsert;
      s.multi.resize(1 + rng.next_below(4));
      for (auto& k : s.multi) k = draw_key(rng);
    }
  }
  return specs;
}

// Applies one batch to the model set and returns per-op expectations
// (reads on the pre state, then erases, then inserts, each in batch order).
std::vector<SkipExpected> model_skip_batch(std::set<Key>& s,
                                           const std::vector<SkipSpec>& specs) {
  std::vector<SkipExpected> exp(specs.size());
  const std::set<Key> pre = s;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const SkipSpec& sp = specs[i];
    switch (sp.kind) {
      case BatchedSkipList::Kind::Contains:
        exp[i].found = pre.count(sp.key) > 0;
        break;
      case BatchedSkipList::Kind::Successor: {
        auto it = pre.lower_bound(sp.key);
        exp[i].out_key =
            it != pre.end() ? std::optional<Key>(*it) : std::nullopt;
        break;
      }
      case BatchedSkipList::Kind::RangeCount: {
        std::int64_t c = 0;
        for (auto it = pre.lower_bound(sp.key);
             it != pre.end() && *it <= sp.key2; ++it) {
          ++c;
        }
        exp[i].count = c;
        break;
      }
      default:
        break;
    }
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].kind == BatchedSkipList::Kind::Erase) {
      exp[i].found = s.erase(specs[i].key) > 0;
    }
  }
  // Insert phase.  The gather numbers every single-Insert record before any
  // MultiInsert payload key, so `found` goes to the first single Insert of a
  // key (in batch order) — a same-batch MultiInsert of that key never steals
  // the attribution, though membership is the union either way.
  const std::set<Key> pre_insert = s;
  std::set<Key> claimed;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].kind == BatchedSkipList::Kind::Insert) {
      const bool first = claimed.insert(specs[i].key).second;
      exp[i].found = first && pre_insert.count(specs[i].key) == 0;
      s.insert(specs[i].key);
    }
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].kind == BatchedSkipList::Kind::MultiInsert) {
      for (Key k : specs[i].multi) s.insert(k);
    }
  }
  return exp;
}

void run_skip_batch(BatchedSkipList& list, const std::vector<SkipSpec>& specs,
                    const std::vector<SkipExpected>& exp, const char* tag,
                    std::uint64_t seed, int round) {
  std::vector<BatchedSkipList::Op> ops(specs.size());
  std::vector<OpRecordBase*> ptrs(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ops[i].kind = specs[i].kind;
    ops[i].key = specs[i].key;
    ops[i].key2 = specs[i].key2;
    ops[i].keys = specs[i].multi.data();
    ops[i].num_keys = specs[i].multi.size();
    ptrs[i] = &ops[i];
  }
  list.run_batch(ptrs.data(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const char* where = tag;
    switch (specs[i].kind) {
      case BatchedSkipList::Kind::MultiInsert:
        break;  // no per-op result contract
      case BatchedSkipList::Kind::Successor:
        ASSERT_EQ(ops[i].out_key, exp[i].out_key)
            << where << " seed " << seed << " round " << round << " op " << i;
        break;
      case BatchedSkipList::Kind::RangeCount:
        ASSERT_EQ(ops[i].count, exp[i].count)
            << where << " seed " << seed << " round " << round << " op " << i;
        break;
      default:
        ASSERT_EQ(ops[i].found, exp[i].found)
            << where << " seed " << seed << " round " << round << " op " << i;
        break;
    }
  }
}

TEST(BopSameKey, SkipListMixedTapeMatchesModelUnderBothPolicies) {
  rt::Scheduler sched(2);
  for (std::uint64_t seed = 0; seed < kSweepSeeds; ++seed) {
    Xoshiro256 rng(seed * 2 + 1);
    BatchedSkipList legacy(sched, seed + 1, Batcher::kDefaultSetup,
                           ApplyPolicy::Legacy);
    BatchedSkipList sortmerge(sched, seed + 1, Batcher::kDefaultSetup,
                              ApplyPolicy::SortMerge);
    std::set<Key> model;
    sched.run([&] {
      for (int round = 0; round < kRoundsPerSeed; ++round) {
        const std::size_t n = 1 + rng.next_below(32);
        const auto specs = random_skip_batch(rng, n);
        const auto exp = model_skip_batch(model, specs);
        ASSERT_NO_FATAL_FAILURE(
            run_skip_batch(legacy, specs, exp, "legacy", seed, round));
        ASSERT_NO_FATAL_FAILURE(
            run_skip_batch(sortmerge, specs, exp, "sortmerge", seed, round));
      }
    });
    ASSERT_TRUE(legacy.check_invariants()) << "seed " << seed;
    ASSERT_TRUE(sortmerge.check_invariants()) << "seed " << seed;
    ASSERT_EQ(legacy.size_unsafe(), model.size()) << "seed " << seed;
    ASSERT_EQ(sortmerge.size_unsafe(), model.size()) << "seed " << seed;
    for (std::int64_t k = 0; k < kUniverse; ++k) {
      ASSERT_EQ(legacy.contains_unsafe(k * 10), model.count(k * 10) > 0)
          << "seed " << seed << " key " << k * 10;
      ASSERT_EQ(sortmerge.contains_unsafe(k * 10), model.count(k * 10) > 0)
          << "seed " << seed << " key " << k * 10;
    }
  }
}

// ---------------------------------------------------------------------------
// 1b. Weight-balanced tree: mixed tape vs phase-aware model, both policies.
// ---------------------------------------------------------------------------

struct TreeSpec {
  BatchedWBTree::Kind kind = BatchedWBTree::Kind::Insert;
  Key key = 0;
  Key key2 = 0;
  std::int64_t index = 0;  // Select input
};

struct TreeExpected {
  bool found = false;
  std::int64_t count = 0;
  std::optional<Key> out_key;
};

std::vector<TreeSpec> random_tree_batch(Xoshiro256& rng, std::size_t n) {
  std::vector<TreeSpec> specs(n);
  for (auto& s : specs) {
    const std::uint64_t pick = rng.next_below(12);
    s.key = draw_key(rng);
    if (pick < 4) {
      s.kind = BatchedWBTree::Kind::Insert;
    } else if (pick < 7) {
      s.kind = BatchedWBTree::Kind::Erase;
    } else if (pick < 9) {
      s.kind = BatchedWBTree::Kind::Contains;
    } else if (pick < 10) {
      s.kind = BatchedWBTree::Kind::Rank;
      s.key += static_cast<Key>(rng.next_below(15)) - 7;
    } else if (pick < 11) {
      s.kind = BatchedWBTree::Kind::Select;
      s.index = static_cast<std::int64_t>(rng.next_below(kUniverse + 2));
    } else {
      s.kind = BatchedWBTree::Kind::RangeCount;
      s.key2 = s.key + static_cast<Key>(rng.next_below(60));
    }
  }
  return specs;
}

std::vector<TreeExpected> model_tree_batch(std::set<Key>& s,
                                           const std::vector<TreeSpec>& specs) {
  std::vector<TreeExpected> exp(specs.size());
  const std::set<Key> pre = s;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const TreeSpec& sp = specs[i];
    switch (sp.kind) {
      case BatchedWBTree::Kind::Contains:
        exp[i].found = pre.count(sp.key) > 0;
        break;
      case BatchedWBTree::Kind::Rank: {
        std::int64_t c = 0;
        for (Key k : pre) {
          if (k < sp.key) ++c;
        }
        exp[i].count = c;
        break;
      }
      case BatchedWBTree::Kind::Select: {
        if (sp.index >= 0 &&
            sp.index < static_cast<std::int64_t>(pre.size())) {
          auto it = pre.begin();
          std::advance(it, sp.index);
          exp[i].out_key = *it;
        }
        break;
      }
      case BatchedWBTree::Kind::RangeCount: {
        std::int64_t c = 0;
        for (auto it = pre.lower_bound(sp.key);
             it != pre.end() && *it <= sp.key2; ++it) {
          ++c;
        }
        exp[i].count = c;
        break;
      }
      default:
        break;
    }
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].kind == BatchedWBTree::Kind::Erase) {
      exp[i].found = s.erase(specs[i].key) > 0;
    }
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].kind == BatchedWBTree::Kind::Insert) {
      exp[i].found = s.insert(specs[i].key).second;
    }
  }
  return exp;
}

void run_tree_batch(BatchedWBTree& tree, const std::vector<TreeSpec>& specs,
                    const std::vector<TreeExpected>& exp, const char* tag,
                    std::uint64_t seed, int round) {
  std::vector<BatchedWBTree::Op> ops(specs.size());
  std::vector<OpRecordBase*> ptrs(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ops[i].kind = specs[i].kind;
    ops[i].key = specs[i].key;
    ops[i].key2 = specs[i].key2;
    if (specs[i].kind == BatchedWBTree::Kind::Select) {
      ops[i].count = specs[i].index;
    }
    ptrs[i] = &ops[i];
  }
  tree.run_batch(ptrs.data(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    switch (specs[i].kind) {
      case BatchedWBTree::Kind::Select:
        ASSERT_EQ(ops[i].out_key, exp[i].out_key)
            << tag << " seed " << seed << " round " << round << " op " << i;
        break;
      case BatchedWBTree::Kind::Rank:
      case BatchedWBTree::Kind::RangeCount:
        ASSERT_EQ(ops[i].count, exp[i].count)
            << tag << " seed " << seed << " round " << round << " op " << i;
        break;
      default:
        ASSERT_EQ(ops[i].found, exp[i].found)
            << tag << " seed " << seed << " round " << round << " op " << i;
        break;
    }
  }
}

TEST(BopSameKey, WBTreeMixedTapeMatchesModelUnderBothPolicies) {
  rt::Scheduler sched(2);
  for (std::uint64_t seed = 0; seed < kSweepSeeds; ++seed) {
    Xoshiro256 rng(seed * 2 + 2);
    BatchedWBTree legacy(sched, Batcher::kDefaultSetup, ApplyPolicy::Legacy);
    BatchedWBTree sortmerge(sched, Batcher::kDefaultSetup,
                            ApplyPolicy::SortMerge);
    std::set<Key> model;
    sched.run([&] {
      for (int round = 0; round < kRoundsPerSeed; ++round) {
        const std::size_t n = 1 + rng.next_below(32);
        const auto specs = random_tree_batch(rng, n);
        const auto exp = model_tree_batch(model, specs);
        ASSERT_NO_FATAL_FAILURE(
            run_tree_batch(legacy, specs, exp, "legacy", seed, round));
        ASSERT_NO_FATAL_FAILURE(
            run_tree_batch(sortmerge, specs, exp, "sortmerge", seed, round));
      }
    });
    ASSERT_TRUE(legacy.check_invariants()) << "seed " << seed;
    ASSERT_TRUE(sortmerge.check_invariants()) << "seed " << seed;
    ASSERT_EQ(legacy.size_unsafe(), model.size()) << "seed " << seed;
    ASSERT_EQ(sortmerge.size_unsafe(), model.size()) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// 1c. Hash map: mixed tape vs sequential working-set replay, both policies.
// ---------------------------------------------------------------------------

struct MapSpec {
  BatchedHashMap::Kind kind = BatchedHashMap::Kind::Put;
  Key key = 0;
  std::int64_t value = 0;
};

struct MapExpected {
  bool found = false;
  std::optional<std::int64_t> out;
};

std::vector<MapSpec> random_map_batch(Xoshiro256& rng, std::size_t n) {
  std::vector<MapSpec> specs(n);
  for (auto& s : specs) {
    const std::uint64_t pick = rng.next_below(8);
    s.key = draw_key(rng);
    s.value = static_cast<std::int64_t>(rng.next_below(1000));
    if (pick < 2) {
      s.kind = BatchedHashMap::Kind::Put;
    } else if (pick < 4) {
      s.kind = BatchedHashMap::Kind::Get;
    } else if (pick < 6) {
      s.kind = BatchedHashMap::Kind::Update;
    } else {
      s.kind = BatchedHashMap::Kind::Erase;
    }
  }
  return specs;
}

// The hash map's documented semantics are full sequential replay in
// working-set order: a Get observes an earlier same-batch Put, and Update
// deltas fold left-to-right.
std::vector<MapExpected> model_map_batch(std::map<Key, std::int64_t>& m,
                                         const std::vector<MapSpec>& specs) {
  std::vector<MapExpected> exp(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const MapSpec& sp = specs[i];
    switch (sp.kind) {
      case BatchedHashMap::Kind::Put:
        m[sp.key] = sp.value;
        break;
      case BatchedHashMap::Kind::Get: {
        auto it = m.find(sp.key);
        exp[i].out = it != m.end() ? std::optional<std::int64_t>(it->second)
                                   : std::nullopt;
        break;
      }
      case BatchedHashMap::Kind::Update:
        m[sp.key] += sp.value;
        exp[i].out = m[sp.key];
        break;
      case BatchedHashMap::Kind::Erase:
        exp[i].found = m.erase(sp.key) > 0;
        break;
    }
  }
  return exp;
}

void run_map_batch(BatchedHashMap& map, const std::vector<MapSpec>& specs,
                   const std::vector<MapExpected>& exp, const char* tag,
                   std::uint64_t seed, int round) {
  std::vector<BatchedHashMap::Op> ops(specs.size());
  std::vector<OpRecordBase*> ptrs(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ops[i].kind = specs[i].kind;
    ops[i].key = specs[i].key;
    ops[i].value = specs[i].value;
    ptrs[i] = &ops[i];
  }
  map.run_batch(ptrs.data(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    switch (specs[i].kind) {
      case BatchedHashMap::Kind::Get:
      case BatchedHashMap::Kind::Update:
        ASSERT_EQ(ops[i].out, exp[i].out)
            << tag << " seed " << seed << " round " << round << " op " << i;
        break;
      case BatchedHashMap::Kind::Erase:
        ASSERT_EQ(ops[i].found, exp[i].found)
            << tag << " seed " << seed << " round " << round << " op " << i;
        break;
      default:
        break;
    }
  }
}

TEST(BopSameKey, HashMapMixedTapeMatchesWorkingSetReplayUnderBothPolicies) {
  rt::Scheduler sched(2);
  for (std::uint64_t seed = 0; seed < kSweepSeeds; ++seed) {
    Xoshiro256 rng(seed * 2 + 3);
    BatchedHashMap legacy(sched, Batcher::kDefaultSetup, ApplyPolicy::Legacy);
    BatchedHashMap sortmerge(sched, Batcher::kDefaultSetup,
                             ApplyPolicy::SortMerge);
    std::map<Key, std::int64_t> model;
    sched.run([&] {
      for (int round = 0; round < kRoundsPerSeed; ++round) {
        const std::size_t n = 1 + rng.next_below(32);
        const auto specs = random_map_batch(rng, n);
        const auto exp = model_map_batch(model, specs);
        ASSERT_NO_FATAL_FAILURE(
            run_map_batch(legacy, specs, exp, "legacy", seed, round));
        ASSERT_NO_FATAL_FAILURE(
            run_map_batch(sortmerge, specs, exp, "sortmerge", seed, round));
      }
    });
    ASSERT_TRUE(legacy.check_invariants()) << "seed " << seed;
    ASSERT_TRUE(sortmerge.check_invariants()) << "seed " << seed;
    ASSERT_EQ(legacy.size_unsafe(), model.size()) << "seed " << seed;
    ASSERT_EQ(sortmerge.size_unsafe(), model.size()) << "seed " << seed;
    for (const auto& [k, v] : model) {
      ASSERT_EQ(legacy.get_unsafe(k), std::optional<std::int64_t>(v))
          << "seed " << seed << " key " << k;
      ASSERT_EQ(sortmerge.get_unsafe(k), std::optional<std::int64_t>(v))
          << "seed " << seed << " key " << k;
    }
  }
}

// ---------------------------------------------------------------------------
// 2. Blocking API under the schedule perturber: partition-insensitive
//    same-key aggregates.  The launch protocol decides the batch partition,
//    so each round asserts only quantities every partition must produce.
// ---------------------------------------------------------------------------

class PerturbedScope {
 public:
  explicit PerturbedScope(std::uint64_t seed) {
    if (rt::hooks::kEnabled) {
      audit::SchedulePerturber::Options opts;
      opts.yield_one_in = 96;
      opts.pause_one_in = 8;
      opts.max_pause_spins = 32;
      session_ = std::make_unique<audit::AuditSession>(4, seed, opts);
      session_->install();
    }
  }
  ~PerturbedScope() {
    if (session_ != nullptr) {
      EXPECT_TRUE(session_->auditor().clean()) << session_->auditor().report();
      session_->uninstall();
    }
  }

 private:
  std::unique_ptr<audit::AuditSession> session_;
};

class BopPolicy : public ::testing::TestWithParam<ApplyPolicy> {};

TEST_P(BopPolicy, PerturbedSameKeyRoundsKeepAggregateSemantics) {
  const ApplyPolicy apply = GetParam();
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    PerturbedScope perturbed(seed + 100);
    Xoshiro256 rng(seed + 100);
    rt::Scheduler sched(4);
    BatchedSkipList list(sched, seed + 1, Batcher::kDefaultSetup, apply);
    std::set<Key> member;  // pre-round membership
    sched.run([&] {
      for (int round = 0; round < 8; ++round) {
        // Each key is touched by ops of a single kind per round, several
        // strands each, so per-key success counts are partition-invariant:
        // exactly one insert per absent key wins, exactly one erase per
        // present key wins, and contains always answers pre-round
        // membership (no other op touches that key this round).
        struct RoundPlan {
          Key key;
          int kind;  // 0=insert 1=erase 2=contains
        };
        std::vector<RoundPlan> plan(static_cast<std::size_t>(kUniverse));
        for (std::int64_t k = 0; k < kUniverse; ++k) {
          plan[static_cast<std::size_t>(k)] =
              RoundPlan{k * 10, static_cast<int>(rng.next_below(3))};
        }
        const std::int64_t per_key = 3;
        std::vector<std::atomic<std::int64_t>> hits(
            static_cast<std::size_t>(kUniverse));
        for (auto& h : hits) h.store(0);
        rt::parallel_for(
            0, kUniverse * per_key,
            [&](std::int64_t i) {
              const auto ki = static_cast<std::size_t>(i / per_key);
              const Key key = plan[ki].key;
              bool hit = false;
              switch (plan[ki].kind) {
                case 0: hit = list.insert(key); break;
                case 1: hit = list.erase(key); break;
                default: hit = list.contains(key); break;
              }
              if (hit) hits[ki].fetch_add(1, std::memory_order_relaxed);
            },
            /*grain=*/1);
        for (std::int64_t k = 0; k < kUniverse; ++k) {
          const auto ki = static_cast<std::size_t>(k);
          const bool was_in = member.count(k * 10) > 0;
          std::int64_t expect_hits = 0;
          switch (plan[ki].kind) {
            case 0:  // exactly one of the duplicate inserts wins
              expect_hits = was_in ? 0 : 1;
              member.insert(k * 10);
              break;
            case 1:  // exactly one of the duplicate erases wins
              expect_hits = was_in ? 1 : 0;
              member.erase(k * 10);
              break;
            default:  // every contains sees pre-round membership
              expect_hits = was_in ? per_key : 0;
              break;
          }
          ASSERT_EQ(hits[ki].load(), expect_hits)
              << "seed " << seed << " round " << round << " key " << k * 10
              << " kind " << plan[ki].kind;
        }
      }
    });
    ASSERT_TRUE(list.check_invariants()) << "seed " << seed;
    ASSERT_EQ(list.size_unsafe(), member.size()) << "seed " << seed;
  }
}

TEST_P(BopPolicy, PerturbedUpdateDeltasFoldExactly) {
  const ApplyPolicy apply = GetParam();
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    PerturbedScope perturbed(seed + 200);
    rt::Scheduler sched(4);
    BatchedHashMap map(sched, Batcher::kDefaultSetup, apply);
    const std::int64_t per_key = 25;
    sched.run([&] {
      // All strands update the same few keys with delta 1: whatever the
      // batch partition, the returned post-values for one key must be a
      // permutation of {1, ..., per_key} and the final value per_key.
      std::vector<std::atomic<std::int64_t>> sum(
          static_cast<std::size_t>(kUniverse));
      for (auto& s : sum) s.store(0);
      rt::parallel_for(
          0, kUniverse * per_key,
          [&](std::int64_t i) {
            const std::int64_t k = i / per_key;
            const std::int64_t post = map.update_add(k * 10, 1);
            sum[static_cast<std::size_t>(k)].fetch_add(
                post, std::memory_order_relaxed);
          },
          /*grain=*/1);
      for (std::int64_t k = 0; k < kUniverse; ++k) {
        ASSERT_EQ(sum[static_cast<std::size_t>(k)].load(),
                  per_key * (per_key + 1) / 2)
            << "seed " << seed << " key " << k * 10;
      }
    });
    ASSERT_TRUE(map.check_invariants()) << "seed " << seed;
    for (std::int64_t k = 0; k < kUniverse; ++k) {
      ASSERT_EQ(map.get_unsafe(k * 10), std::optional<std::int64_t>(per_key))
          << "seed " << seed << " key " << k * 10;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, BopPolicy,
                         ::testing::Values(ApplyPolicy::Legacy,
                                           ApplyPolicy::SortMerge));

// ---------------------------------------------------------------------------
// 3. Large direct-driven batches: the sizes the span profile measures.
// ---------------------------------------------------------------------------

TEST_P(BopPolicy, LargeDirectBatchesAcrossAllSizeBuckets) {
  const ApplyPolicy apply = GetParam();
  rt::Scheduler sched(4);
  BatchedSkipList list(sched, 99, Batcher::kDefaultSetup, apply);
  BatchedWBTree tree(sched, Batcher::kDefaultSetup, apply);
  std::set<Key> model;
  Xoshiro256 rng(99);
  sched.run([&] {
    for (std::size_t n : {1u, 4u, 16u, 64u, 1024u}) {
      std::vector<Key> keys(n);
      for (auto& k : keys) {
        k = static_cast<Key>(rng.next_below(4 * n));  // ~25% duplicates
      }
      std::vector<BatchedSkipList::Op> lops(n);
      std::vector<BatchedWBTree::Op> tops(n);
      std::vector<OpRecordBase*> lptr(n), tptr(n);
      for (std::size_t i = 0; i < n; ++i) {
        lops[i].kind = BatchedSkipList::Kind::Insert;
        lops[i].key = keys[i];
        tops[i].kind = BatchedWBTree::Kind::Insert;
        tops[i].key = keys[i];
        lptr[i] = &lops[i];
        tptr[i] = &tops[i];
      }
      list.run_batch(lptr.data(), n);
      tree.run_batch(tptr.data(), n);
      for (Key k : keys) model.insert(k);
      ASSERT_EQ(list.size_unsafe(), model.size()) << "after insert n=" << n;
      ASSERT_EQ(tree.size_unsafe(), model.size()) << "after insert n=" << n;
      // Erase half of this round's keys in the same large-batch style.
      const std::size_t half = (n + 1) / 2;
      for (std::size_t i = 0; i < half; ++i) {
        lops[i].kind = BatchedSkipList::Kind::Erase;
        lops[i].found = false;
        tops[i].kind = BatchedWBTree::Kind::Erase;
        tops[i].found = false;
      }
      list.run_batch(lptr.data(), half);
      tree.run_batch(tptr.data(), half);
      for (std::size_t i = 0; i < half; ++i) model.erase(keys[i]);
      ASSERT_EQ(list.size_unsafe(), model.size()) << "after erase n=" << n;
      ASSERT_EQ(tree.size_unsafe(), model.size()) << "after erase n=" << n;
    }
  });
  ASSERT_TRUE(list.check_invariants());
  ASSERT_TRUE(tree.check_invariants());
  for (Key k : model) {
    ASSERT_TRUE(list.contains_unsafe(k)) << "key " << k;
    ASSERT_TRUE(tree.contains_unsafe(k)) << "key " << k;
  }
}

TEST_P(BopPolicy, MultiInsertLargeBatchMatchesSet) {
  const ApplyPolicy apply = GetParam();
  rt::Scheduler sched(4);
  BatchedSkipList list(sched, 7, Batcher::kDefaultSetup, apply);
  Xoshiro256 rng(7);
  // The paper's BATCHIFY trick: each record carries 100 keys; one batch of
  // 16 records therefore splices 1600 keys (gt_64 bucket) in one BOP.
  constexpr std::size_t kRecords = 16;
  constexpr std::size_t kPerRecord = 100;
  std::vector<std::vector<Key>> payload(kRecords);
  std::set<Key> model;
  for (auto& p : payload) {
    p.resize(kPerRecord);
    for (auto& k : p) {
      k = static_cast<Key>(rng.next_below(800));  // heavy duplication
      model.insert(k);
    }
  }
  std::vector<BatchedSkipList::Op> ops(kRecords);
  std::vector<OpRecordBase*> ptrs(kRecords);
  for (std::size_t i = 0; i < kRecords; ++i) {
    ops[i].kind = BatchedSkipList::Kind::MultiInsert;
    ops[i].keys = payload[i].data();
    ops[i].num_keys = payload[i].size();
    ptrs[i] = &ops[i];
  }
  sched.run([&] { list.run_batch(ptrs.data(), kRecords); });
  ASSERT_TRUE(list.check_invariants());
  ASSERT_EQ(list.size_unsafe(), model.size());
  for (Key k : model) ASSERT_TRUE(list.contains_unsafe(k)) << "key " << k;
}

// ---------------------------------------------------------------------------
// Part 4: deterministic s(n) evidence.  The bench-side span_growth gate
// measures wall-clock and therefore rides OS jitter; span_tasks is a
// schedule-invariant dag property (the ledger folds strand segments max-wise
// at joins), so the sublinearity of the sort-merge BOPs can be pinned
// exactly, in tier-1, on any machine.
// ---------------------------------------------------------------------------

std::uint64_t measure_bop_span_tasks(
    const std::function<void(rt::Scheduler&)>& body) {
  trace::TraceSession::Options opt;
  opt.ring_capacity = std::size_t{1} << 14;
  trace::TraceSession session(opt);
  rt::StatsSnapshot stats;
  {
    rt::Scheduler sched(2);
    sched.export_final_stats(&stats);
    body(sched);
  }
  session.stop();
  EXPECT_EQ(stats.runs_measured, 1u);
  return stats.span_tasks;
}

std::uint64_t skiplist_insert_span_tasks(std::size_t n) {
  return measure_bop_span_tasks([&](rt::Scheduler& sched) {
    BatchedSkipList list(sched, 1234, Batcher::kDefaultSetup,
                         ApplyPolicy::SortMerge);
    Xoshiro256 rng(5);
    for (int i = 0; i < 8192; ++i) {
      list.insert_unsafe(static_cast<Key>(rng.next()));
    }
    std::vector<BatchedSkipList::Op> ops(n);
    std::vector<OpRecordBase*> ptrs(n);
    for (std::size_t i = 0; i < n; ++i) {
      ops[i].kind = BatchedSkipList::Kind::Insert;
      ops[i].key = static_cast<Key>(rng.next());
      ptrs[i] = &ops[i];
    }
    sched.run([&] { list.run_batch(ptrs.data(), n); });
  });
}

std::uint64_t wbtree_insert_span_tasks(std::size_t n) {
  return measure_bop_span_tasks([&](rt::Scheduler& sched) {
    BatchedWBTree tree(sched, Batcher::kDefaultSetup, ApplyPolicy::SortMerge);
    Xoshiro256 rng(5);
    for (int i = 0; i < 8192; ++i) {
      tree.insert_unsafe(static_cast<Key>(rng.next()));
    }
    std::vector<BatchedWBTree::Op> ops(n);
    std::vector<OpRecordBase*> ptrs(n);
    for (std::size_t i = 0; i < n; ++i) {
      ops[i].kind = BatchedWBTree::Kind::Insert;
      ops[i].key = static_cast<Key>(rng.next());
      ptrs[i] = &ops[i];
    }
    sched.run([&] { tree.run_batch(ptrs.data(), n); });
  });
}

TEST(BopSpanTasks, SkipListSortMergeBatchSpanIsSublinear) {
  const std::uint64_t span_small = skiplist_insert_span_tasks(512);
  const std::uint64_t span_large = skiplist_insert_span_tasks(4096);
  EXPECT_GT(span_small, 0u);
  // 8x the batch must cost far less than 8x the task-count span (polylog
  // growth), and the large batch's span must be way below its size (the
  // legacy serial splice is the one task that did all n keys).
  EXPECT_LT(span_large, 4 * span_small)
      << "span_small=" << span_small << " span_large=" << span_large;
  EXPECT_LT(span_large, 4096u / 8u)
      << "span_large=" << span_large << " is not sublinear in the batch";
}

TEST(BopSpanTasks, WBTreeSortMergeBatchSpanIsSublinear) {
  const std::uint64_t span_small = wbtree_insert_span_tasks(512);
  const std::uint64_t span_large = wbtree_insert_span_tasks(4096);
  EXPECT_GT(span_small, 0u);
  EXPECT_LT(span_large, 4 * span_small)
      << "span_small=" << span_small << " span_large=" << span_large;
  EXPECT_LT(span_large, 4096u / 8u)
      << "span_large=" << span_large << " is not sublinear in the batch";
}

}  // namespace
}  // namespace batcher
