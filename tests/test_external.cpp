// Tests for ExternalDomain — the pthreads bridge of the paper's conclusion.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "batcher/external.hpp"
#include "ds/batched_counter.hpp"
#include "ds/batched_skiplist.hpp"
#include "runtime/scheduler.hpp"

namespace batcher {
namespace {

TEST(ExternalDomain, SingleExternalThreadRoundTrip) {
  rt::Scheduler sched(2);
  ds::BatchedCounter counter(sched);
  ExternalDomain domain(sched, counter, /*max_threads=*/1);

  std::thread external([&] {
    ds::BatchedCounter::Op op;
    op.delta = 5;
    domain.submit(0, op);
    EXPECT_EQ(op.result, 5);
    domain.shutdown();
  });
  sched.run([&] { domain.serve(); });
  external.join();
  EXPECT_EQ(counter.value_unsafe(), 5);
  EXPECT_EQ(domain.ops_served(), 1u);
}

TEST(ExternalDomain, ManyExternalThreadsLinearize) {
  rt::Scheduler sched(2);
  ds::BatchedCounter counter(sched);
  constexpr int kThreads = 4;
  constexpr int kPer = 2000;
  ExternalDomain domain(sched, counter, kThreads);

  std::vector<std::vector<std::int64_t>> results(kThreads);
  std::atomic<int> finished{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) {
        ds::BatchedCounter::Op op;
        op.delta = 1;
        domain.submit(static_cast<std::size_t>(t), op);
        results[static_cast<std::size_t>(t)].push_back(op.result);
      }
      if (finished.fetch_add(1) + 1 == kThreads) domain.shutdown();
    });
  }
  sched.run([&] { domain.serve(); });
  for (auto& th : pool) th.join();

  EXPECT_EQ(counter.value_unsafe(), kThreads * kPer);
  // Post-values must be a permutation of 1..n: linearizable counter.
  std::set<std::int64_t> all;
  for (const auto& r : results) {
    for (std::int64_t v : r) ASSERT_TRUE(all.insert(v).second) << "dup " << v;
  }
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads * kPer));
  EXPECT_EQ(*all.rbegin(), kThreads * kPer);
  EXPECT_EQ(domain.ops_served(), static_cast<std::uint64_t>(kThreads * kPer));
  EXPECT_LE(domain.batches_served(), domain.ops_served());
}

TEST(ExternalDomain, BatchCapRespected) {
  rt::Scheduler sched(2);
  // A probe that records max batch size.
  struct NoopOp : OpRecordBase {};
  struct Probe final : BatchedStructure {
    std::atomic<std::size_t> max_count{0};
    void run_batch(OpRecordBase* const* /*ops*/, std::size_t count) override {
      std::size_t cur = max_count.load();
      while (count > cur && !max_count.compare_exchange_weak(cur, count)) {
      }
    }
  } probe;
  constexpr std::size_t kThreads = 6;
  ExternalDomain domain(sched, probe, kThreads, /*batch_cap=*/2);

  std::atomic<int> finished{0};
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        NoopOp op;
        domain.submit(t, op);
      }
      if (finished.fetch_add(1) + 1 == static_cast<int>(kThreads)) {
        domain.shutdown();
      }
    });
  }
  sched.run([&] { domain.serve(); });
  for (auto& th : pool) th.join();
  EXPECT_LE(probe.max_count.load(), 2u);
}

TEST(ExternalDomain, SkipListFromExternalThreads) {
  rt::Scheduler sched(4);
  ds::BatchedSkipList list(sched);
  constexpr int kThreads = 3;
  constexpr std::int64_t kPer = 1500;
  ExternalDomain domain(sched, list, kThreads);

  std::atomic<int> finished{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (std::int64_t i = 0; i < kPer; ++i) {
        ds::BatchedSkipList::Op op;
        op.kind = ds::BatchedSkipList::Kind::Insert;
        op.key = t * kPer + i;
        domain.submit(static_cast<std::size_t>(t), op);
        ASSERT_TRUE(op.found);  // all keys distinct
      }
      if (finished.fetch_add(1) + 1 == kThreads) domain.shutdown();
    });
  }
  sched.run([&] { domain.serve(); });
  for (auto& th : pool) th.join();

  EXPECT_EQ(list.size_unsafe(), static_cast<std::size_t>(kThreads * kPer));
  EXPECT_TRUE(list.check_invariants());
  for (std::int64_t k = 0; k < kThreads * kPer; ++k) {
    ASSERT_TRUE(list.contains_unsafe(k));
  }
}

TEST(ExternalDomain, ServeStartedAfterOpsWerePublished) {
  // The op is already pending when the pump starts: serve() must drain it
  // before honouring a shutdown issued afterwards.
  rt::Scheduler sched(2);
  ds::BatchedCounter counter(sched);
  ExternalDomain domain(sched, counter, 1);
  std::thread external([&] {
    ds::BatchedCounter::Op op;
    op.delta = 1;
    domain.submit(0, op);  // blocks until the (late-starting) pump serves it
    EXPECT_EQ(op.result, 1);
    domain.shutdown();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sched.run([&] { domain.serve(); });
  external.join();
  EXPECT_EQ(counter.value_unsafe(), 1);
}

}  // namespace
}  // namespace batcher
