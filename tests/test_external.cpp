// Tests for ExternalDomain — the pthreads bridge of the paper's conclusion.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "batcher/external.hpp"
#include "ds/batched_counter.hpp"
#include "ds/batched_hashmap.hpp"
#include "ds/batched_pq.hpp"
#include "ds/batched_skiplist.hpp"
#include "runtime/schedule_hooks.hpp"
#include "runtime/scheduler.hpp"
#include "support/backoff.hpp"

namespace batcher {
namespace {

TEST(ExternalDomain, SingleExternalThreadRoundTrip) {
  rt::Scheduler sched(2);
  ds::BatchedCounter counter(sched);
  ExternalDomain domain(sched, counter, /*max_threads=*/1);

  std::thread external([&] {
    ds::BatchedCounter::Op op;
    op.delta = 5;
    domain.submit(0, op);
    EXPECT_EQ(op.result, 5);
    domain.shutdown();
  });
  sched.run([&] { domain.serve(); });
  external.join();
  EXPECT_EQ(counter.value_unsafe(), 5);
  EXPECT_EQ(domain.ops_served(), 1u);
}

TEST(ExternalDomain, ManyExternalThreadsLinearize) {
  rt::Scheduler sched(2);
  ds::BatchedCounter counter(sched);
  constexpr int kThreads = 4;
  constexpr int kPer = 2000;
  ExternalDomain domain(sched, counter, kThreads);

  std::vector<std::vector<std::int64_t>> results(kThreads);
  std::atomic<int> finished{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) {
        ds::BatchedCounter::Op op;
        op.delta = 1;
        domain.submit(static_cast<std::size_t>(t), op);
        results[static_cast<std::size_t>(t)].push_back(op.result);
      }
      if (finished.fetch_add(1) + 1 == kThreads) domain.shutdown();
    });
  }
  sched.run([&] { domain.serve(); });
  for (auto& th : pool) th.join();

  EXPECT_EQ(counter.value_unsafe(), kThreads * kPer);
  // Post-values must be a permutation of 1..n: linearizable counter.
  std::set<std::int64_t> all;
  for (const auto& r : results) {
    for (std::int64_t v : r) ASSERT_TRUE(all.insert(v).second) << "dup " << v;
  }
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads * kPer));
  EXPECT_EQ(*all.rbegin(), kThreads * kPer);
  EXPECT_EQ(domain.ops_served(), static_cast<std::uint64_t>(kThreads * kPer));
  EXPECT_LE(domain.batches_served(), domain.ops_served());
}

TEST(ExternalDomain, BatchCapRespected) {
  rt::Scheduler sched(2);
  // A probe that records max batch size.
  struct NoopOp : OpRecordBase {};
  struct Probe final : BatchedStructure {
    std::atomic<std::size_t> max_count{0};
    void run_batch(OpRecordBase* const* /*ops*/, std::size_t count) override {
      std::size_t cur = max_count.load();
      while (count > cur && !max_count.compare_exchange_weak(cur, count)) {
      }
    }
  } probe;
  constexpr std::size_t kThreads = 6;
  ExternalDomain domain(sched, probe, kThreads, /*batch_cap=*/2);

  std::atomic<int> finished{0};
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        NoopOp op;
        domain.submit(t, op);
      }
      if (finished.fetch_add(1) + 1 == static_cast<int>(kThreads)) {
        domain.shutdown();
      }
    });
  }
  sched.run([&] { domain.serve(); });
  for (auto& th : pool) th.join();
  EXPECT_LE(probe.max_count.load(), 2u);
}

TEST(ExternalDomain, SkipListFromExternalThreads) {
  rt::Scheduler sched(4);
  ds::BatchedSkipList list(sched);
  constexpr int kThreads = 3;
  constexpr std::int64_t kPer = 1500;
  ExternalDomain domain(sched, list, kThreads);

  std::atomic<int> finished{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (std::int64_t i = 0; i < kPer; ++i) {
        ds::BatchedSkipList::Op op;
        op.kind = ds::BatchedSkipList::Kind::Insert;
        op.key = t * kPer + i;
        domain.submit(static_cast<std::size_t>(t), op);
        ASSERT_TRUE(op.found);  // all keys distinct
      }
      if (finished.fetch_add(1) + 1 == kThreads) domain.shutdown();
    });
  }
  sched.run([&] { domain.serve(); });
  for (auto& th : pool) th.join();

  EXPECT_EQ(list.size_unsafe(), static_cast<std::size_t>(kThreads * kPer));
  EXPECT_TRUE(list.check_invariants());
  for (std::int64_t k = 0; k < kThreads * kPer; ++k) {
    ASSERT_TRUE(list.contains_unsafe(k));
  }
}

TEST(ExternalDomain, ServeStartedAfterOpsWerePublished) {
  // The op is already pending when the pump starts: serve() must drain it
  // before honouring a shutdown issued afterwards.
  rt::Scheduler sched(2);
  ds::BatchedCounter counter(sched);
  ExternalDomain domain(sched, counter, 1);
  std::thread external([&] {
    ds::BatchedCounter::Op op;
    op.delta = 1;
    domain.submit(0, op);  // blocks until the (late-starting) pump serves it
    EXPECT_EQ(op.result, 1);
    domain.shutdown();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sched.run([&] { domain.serve(); });
  external.join();
  EXPECT_EQ(counter.value_unsafe(), 1);
}

// --- Deadlines & cancellation (DESIGN.md §13) -------------------------------

TEST(ExternalDeadline, TimesOutWhenPumpNeverClaimsAndDomainStaysOpen) {
  rt::Scheduler sched(2);
  ds::BatchedCounter counter(sched);
  ExternalDomain domain(sched, counter, 1);

  // Phase 1: no pump exists, so the deadline always wins the revoke CAS.
  std::thread external([&] {
    ds::BatchedCounter::Op op;
    op.delta = 1;
    EXPECT_THROW(
        domain.submit_until(0, op,
                            std::chrono::steady_clock::now() +
                                std::chrono::milliseconds(1)),
        OpTimedOut);
  });
  external.join();
  EXPECT_EQ(domain.ops_timed_out(), 1u);
  EXPECT_EQ(domain.ops_served(), 1u);
  EXPECT_EQ(counter.value_unsafe(), 0);  // revoked before any batch saw it

  // Phase 2: a timeout is not a shutdown — the same domain still serves.
  std::thread second([&] {
    ds::BatchedCounter::Op op;
    op.delta = 5;
    domain.submit(0, op);
    EXPECT_EQ(op.result, 5);
    domain.shutdown();
  });
  sched.run([&] { domain.serve(); });
  second.join();
  EXPECT_EQ(counter.value_unsafe(), 5);
  EXPECT_EQ(domain.ops_succeeded(), 1u);
  EXPECT_EQ(domain.ops_served(), 2u);
}

TEST(ExternalDeadline, TrySubmitCountsEveryExpiredOpExactly) {
  rt::Scheduler sched(2);
  ds::BatchedCounter counter(sched);
  ExternalDomain domain(sched, counter, 1);
  constexpr std::uint64_t kOps = 8;
  std::thread external([&] {
    for (std::uint64_t i = 0; i < kOps; ++i) {
      ds::BatchedCounter::Op op;
      op.delta = 1;
      EXPECT_THROW(domain.try_submit(0, op), OpTimedOut);
    }
  });
  external.join();
  EXPECT_EQ(domain.ops_timed_out(), kOps);
  EXPECT_EQ(domain.ops_served(), kOps);
  EXPECT_EQ(domain.ops_succeeded(), 0u);
  EXPECT_EQ(domain.ops_failed(), 0u);
  EXPECT_EQ(counter.value_unsafe(), 0);
}

TEST(ExternalDeadline, ClaimedOpCompletesPastItsDeadline) {
  // Once the pump wins the claim CAS the deadline no longer applies: the op
  // rides its batch to completion even when the batch finishes late.
  rt::Scheduler sched(2);
  struct SlowAdd final : BatchedStructure {
    std::atomic<bool> entered{false};
    std::atomic<bool> release{false};
    std::int64_t sum = 0;
    void run_batch(OpRecordBase* const* ops, std::size_t count) override {
      entered.store(true, std::memory_order_release);
      while (!release.load(std::memory_order_acquire)) cpu_relax();
      for (std::size_t i = 0; i < count; ++i) {
        auto* op = static_cast<ds::BatchedCounter::Op*>(ops[i]);
        sum += op->delta;
        op->result = sum;
      }
    }
  } slow;
  ExternalDomain domain(sched, slow, 1);

  // Generous claim budget: the pump starts immediately and claims in
  // microseconds, then the releaser deliberately holds the batch until the
  // deadline has passed.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
  std::thread external([&] {
    ds::BatchedCounter::Op op;
    op.delta = 7;
    domain.submit_until(0, op, deadline);  // must not throw
    EXPECT_EQ(op.result, 7);
    domain.shutdown();
  });
  std::thread releaser([&] {
    while (!slow.entered.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    while (std::chrono::steady_clock::now() <
           deadline + std::chrono::milliseconds(5)) {
      std::this_thread::yield();
    }
    slow.release.store(true, std::memory_order_release);
  });
  sched.run([&] { domain.serve(); });
  external.join();
  releaser.join();
  EXPECT_EQ(domain.ops_timed_out(), 0u);
  EXPECT_EQ(domain.ops_succeeded(), 1u);
  EXPECT_EQ(slow.sum, 7);
}

// --- Overload shedding & retry ----------------------------------------------

TEST(ExternalShed, BacklogAtThresholdRefusesBeforePublish) {
  rt::Scheduler sched(2);
  ds::BatchedCounter counter(sched);
  ExternalDomain::Options opt;
  opt.shed_threshold = 2;
  ExternalDomain domain(sched, counter, 3, opt);

  // Fill the backlog to the threshold: two submitters publish and block
  // (no pump runs, so the depth cannot drain mid-test).
  std::vector<std::thread> blocked;
  for (std::size_t t = 0; t < 2; ++t) {
    blocked.emplace_back([&, t] {
      ds::BatchedCounter::Op op;
      op.delta = 1;
      EXPECT_THROW(domain.submit(t, op), DomainClosed);
    });
  }
  while (domain.pending_depth() < 2) std::this_thread::yield();

  std::thread shedder([&] {
    for (int i = 0; i < 5; ++i) {
      ds::BatchedCounter::Op op;
      op.delta = 1;
      EXPECT_THROW(domain.submit(2, op), DomainOverloaded);
    }
  });
  shedder.join();
  EXPECT_EQ(domain.ops_shed(), 5u);
  EXPECT_EQ(domain.pending_depth(), 2u);  // shed ops were never published

  domain.shutdown();
  for (auto& th : blocked) th.join();
  EXPECT_EQ(domain.ops_failed(), 2u);
  EXPECT_EQ(domain.ops_served(), 2u);  // shed ops sit outside the identity
  EXPECT_EQ(counter.value_unsafe(), 0);
}

// In audit builds, force the shed race's adversarial interleaving instead of
// hoping the OS provides it: kExternalSubmit fires inside the old
// check-then-act window (after the shed gate, before publication), so
// parking every submitter there until the whole storm has either parked or
// shed reconstructs the worst case deterministically — under the old gate
// all N submitters pass the depth check and park, then all N publish.
// Under the fixed increment-then-verify gate admission is serialized before
// the hook fires, so exactly shed_threshold submitters ever park and the
// park condition still releases.  Without audit hooks the gate is inert and
// the test pins the bound under free-running threads only.
struct SubmitWindowGate final : rt::hooks::ScheduleObserver {
  std::atomic<const ExternalDomain*> target{nullptr};
  std::atomic<std::size_t> parked{0};
  std::size_t storm = 0;
  void on_event(const rt::hooks::HookEvent& e) override {
    const ExternalDomain* d = target.load(std::memory_order_acquire);
    if (e.point != rt::hooks::HookPoint::kExternalSubmit || e.domain != d) {
      return;
    }
    parked.fetch_add(1, std::memory_order_acq_rel);
    while (parked.load(std::memory_order_acquire) + d->ops_shed() <
           storm) {
      cpu_relax();
    }
  }
};

TEST(ExternalShed, ShedBoundExactUnderConcurrentSubmitters) {
  // Regression for the shed check-then-act race: with a load-then-test gate,
  // N submitters racing past an almost-full backlog could ALL read a depth
  // below the threshold and publish, overshooting the bound by up to
  // max_threads - 1.  The increment-then-verify fix hands each submitter a
  // serialized admission ticket, so exactly `shed_threshold` ops publish and
  // the rest shed — an exact count, not a bound, which is what this pins.
  constexpr std::size_t kThreshold = 4;
  constexpr std::size_t kStorm = 16;
  SubmitWindowGate gate;
  gate.storm = kStorm;
  rt::hooks::install_observer(&gate);
  for (int iter = 0; iter < 50; ++iter) {
    rt::Scheduler sched(2);
    ds::BatchedCounter counter(sched);
    ExternalDomain::Options opt;
    opt.shed_threshold = kThreshold;
    ExternalDomain domain(sched, counter, kStorm, opt);
    gate.parked.store(0, std::memory_order_relaxed);
    gate.target.store(&domain, std::memory_order_release);

    // Barrier-start the storm so all submitters hit the empty backlog at
    // once: that is the window the old check-then-act gate lost.
    std::atomic<std::size_t> ready{0};
    std::atomic<bool> go{false};
    std::atomic<std::size_t> published{0};
    std::atomic<std::size_t> shed{0};
    std::vector<std::thread> storm;
    for (std::size_t t = 0; t < kStorm; ++t) {
      storm.emplace_back([&, t] {
        ds::BatchedCounter::Op op;
        op.delta = 1;
        ready.fetch_add(1);
        while (!go.load(std::memory_order_acquire)) cpu_relax();
        try {
          domain.submit(t, op);  // blocks until shutdown fails it
          ADD_FAILURE() << "submit resolved without a pump";
        } catch (const DomainOverloaded&) {
          shed.fetch_add(1, std::memory_order_relaxed);
        } catch (const DomainClosed&) {
          published.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    while (ready.load() < kStorm) std::this_thread::yield();
    go.store(true, std::memory_order_release);

    // Wait for the exact stable state.  Intermediate states can transiently
    // show pending_depth > threshold (a shedder between its fetch_add and
    // the verify fetch_sub), so poll for quiescence, not a one-shot read.
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while ((domain.ops_shed() != kStorm - kThreshold ||
            domain.pending_depth() != kThreshold) &&
           std::chrono::steady_clock::now() < give_up) {
      std::this_thread::yield();
    }
    EXPECT_EQ(domain.pending_depth(), kThreshold) << "iter " << iter;
    EXPECT_EQ(domain.ops_shed(), kStorm - kThreshold) << "iter " << iter;

    domain.shutdown();
    for (auto& th : storm) th.join();
    gate.target.store(nullptr, std::memory_order_release);
    EXPECT_EQ(published.load(), kThreshold) << "iter " << iter;
    EXPECT_EQ(shed.load(), kStorm - kThreshold) << "iter " << iter;
    // The published ops failed at shutdown; shed ops never entered the
    // served identity.
    EXPECT_EQ(domain.ops_served(), kThreshold);
    EXPECT_EQ(domain.ops_failed(), kThreshold);
    EXPECT_EQ(counter.value_unsafe(), 0);
    // A broken gate fails every iteration the same way; one report is
    // enough (the overshoot path also eats the full quiescence timeout).
    if (::testing::Test::HasFailure()) break;
  }
  rt::hooks::install_observer(nullptr);
}

TEST(ExternalShed, RetryPolicyOutlastsTransientOverload) {
  rt::Scheduler sched(2);
  ds::BatchedCounter counter(sched);
  ExternalDomain::Options opt;
  opt.shed_threshold = 1;
  ExternalDomain domain(sched, counter, 2, opt);

  std::thread occupier([&] {
    ds::BatchedCounter::Op op;
    op.delta = 1;
    domain.submit(0, op);  // holds the backlog at the threshold until served
    EXPECT_EQ(op.result, 1);
  });
  while (domain.pending_depth() < 1) std::this_thread::yield();

  std::thread retrier([&] {
    RetryPolicy policy;
    policy.seed = 7;
    policy.max_retries = 1u << 20;  // effectively: until the backlog drains
    policy.base_spins = 16;
    ds::BatchedCounter::Op op;
    op.delta = 1;
    domain.submit_with_retry(1, op, policy);
    EXPECT_EQ(op.result, 2);  // published only after the occupier resolved
    domain.shutdown();
  });
  // Hold the pump until the retrier has been shed at least once, so the
  // backoff-and-retry path is genuinely exercised.
  while (domain.ops_shed() == 0) std::this_thread::yield();
  sched.run([&] { domain.serve(); });
  occupier.join();
  retrier.join();
  EXPECT_GE(domain.retries_attempted(), 1u);
  EXPECT_GE(domain.ops_shed(), 1u);
  EXPECT_EQ(domain.ops_succeeded(), 2u);
  EXPECT_EQ(counter.value_unsafe(), 2);
}

// --- serve() fairness -------------------------------------------------------

TEST(ExternalServe, RotatingScanServesHighTidUnderSkewedLoad) {
  // Regression for scan-from-zero starvation: with batch_cap=1 and low tids
  // resubmitting the instant they are served, a fixed scan start would
  // revisit the low slots (almost) exclusively; the rotating start resumes
  // after the last examined slot, so every pending tid is served once per
  // rotation and the high tid finishes in bounded time.
  rt::Scheduler sched(2);
  ds::BatchedCounter counter(sched);
  constexpr std::size_t kThreads = 4;
  ExternalDomain domain(sched, counter, kThreads, /*batch_cap=*/1);

  std::atomic<bool> high_done{false};
  std::vector<std::thread> spammers;
  for (std::size_t t = 0; t + 1 < kThreads; ++t) {
    spammers.emplace_back([&, t] {
      while (!high_done.load(std::memory_order_acquire)) {
        ds::BatchedCounter::Op op;
        op.delta = 1;
        try {
          domain.submit(t, op);
        } catch (const DomainClosed&) {
          return;
        }
      }
    });
  }
  constexpr std::int64_t kHighOps = 200;
  std::thread high([&] {
    for (std::int64_t i = 0; i < kHighOps; ++i) {
      ds::BatchedCounter::Op op;
      op.delta = 1;
      domain.submit(kThreads - 1, op);
    }
    high_done.store(true, std::memory_order_release);
    domain.shutdown();
  });
  sched.run([&] { domain.serve(); });
  high.join();
  for (auto& th : spammers) th.join();

  const ExternalStats st = domain.stats();
  EXPECT_EQ(st.ops_served, st.ops_succeeded + st.ops_failed + st.ops_timed_out);
  EXPECT_GE(st.ops_succeeded, static_cast<std::uint64_t>(kHighOps));
  EXPECT_EQ(counter.value_unsafe(),
            static_cast<std::int64_t>(st.ops_succeeded));
}

// --- Multi-domain composition -----------------------------------------------

TEST(ExternalMultiDomain, HashmapAndPqServeTogetherBothShutdownOrders) {
  constexpr int kClients = 2;
  constexpr std::int64_t kPer = 400;
  for (int order = 0; order < 2; ++order) {
    rt::Scheduler sched(4);
    ds::BatchedHashMap map(sched);
    ds::BatchedPriorityQueue pq(sched);
    ExternalDomain dmap(sched, map, kClients);
    ExternalDomain dpq(sched, pq, kClients);

    std::atomic<int> done{0};
    std::vector<std::thread> pool;
    for (int t = 0; t < kClients; ++t) {
      pool.emplace_back([&, t] {
        for (std::int64_t i = 0; i < kPer; ++i) {
          ds::BatchedHashMap::Op mop;
          mop.kind = ds::BatchedHashMap::Kind::Update;
          mop.key = i % 17;
          mop.value = 1;
          dmap.submit(static_cast<std::size_t>(t), mop);
          ds::BatchedPriorityQueue::Op qop;
          qop.kind = ds::BatchedPriorityQueue::Kind::Insert;
          qop.key = t * kPer + i;
          dpq.submit(static_cast<std::size_t>(t), qop);
        }
        if (done.fetch_add(1) + 1 == kClients) {
          // Both shutdown orders: each pump must exit independently of the
          // other domain's state.
          if (order == 0) {
            dmap.shutdown();
            dpq.shutdown();
          } else {
            dpq.shutdown();
            dmap.shutdown();
          }
        }
      });
    }
    sched.run([&] {
      rt::parallel_invoke([&] { dmap.serve(); }, [&] { dpq.serve(); });
    });
    for (auto& th : pool) th.join();

    EXPECT_EQ(dmap.ops_succeeded(),
              static_cast<std::uint64_t>(kClients * kPer))
        << "order " << order;
    EXPECT_EQ(dpq.ops_succeeded(), static_cast<std::uint64_t>(kClients * kPer))
        << "order " << order;
    EXPECT_EQ(pq.size_unsafe(), static_cast<std::size_t>(kClients * kPer));
    std::int64_t total = 0;
    for (std::int64_t k = 0; k < 17; ++k) {
      total += map.get_unsafe(k).value_or(0);
    }
    EXPECT_EQ(total, kClients * kPer) << "order " << order;
    EXPECT_TRUE(map.check_invariants());
    EXPECT_TRUE(pq.check_invariants());
  }
}

}  // namespace
}  // namespace batcher
