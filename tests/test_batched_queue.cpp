// Tests for the batched FIFO queue.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <optional>
#include <set>
#include <vector>

#include "ds/batched_queue.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"
#include "support/rng.hpp"

namespace batcher::ds {
namespace {

TEST(BatchedQueue, SequentialFifoOrder) {
  rt::Scheduler sched(2);
  BatchedQueue<int> q(sched);
  sched.run([&] {
    for (int i = 0; i < 100; ++i) q.enqueue(i);
    for (int i = 0; i < 100; ++i) {
      auto v = q.dequeue();
      ASSERT_TRUE(v.has_value());
      ASSERT_EQ(*v, i);
    }
    EXPECT_FALSE(q.dequeue().has_value());
  });
  EXPECT_EQ(q.size_unsafe(), 0u);
}

TEST(BatchedQueue, WrapAroundAndShrink) {
  rt::Scheduler sched(1);
  BatchedQueue<int> q(sched);
  sched.run([&] {
    // Interleave to force head_ to travel around the circular buffer.
    for (int round = 0; round < 200; ++round) {
      q.enqueue(round * 2);
      q.enqueue(round * 2 + 1);
      auto v = q.dequeue();
      ASSERT_TRUE(v.has_value());
      ASSERT_EQ(*v, round);
    }
    // Drain; the table should shrink back down.
    for (int i = 0; i < 200; ++i) q.dequeue();
  });
  EXPECT_EQ(q.size_unsafe(), 0u);
  EXPECT_LT(q.capacity_unsafe(), 512u);
}

TEST(BatchedQueue, BatchSemanticsEnqueuesBeforeDequeues) {
  rt::Scheduler sched(4);
  BatchedQueue<int> q(sched);
  using Op = BatchedQueue<int>::Op;
  Op deq_first, enq;
  deq_first.kind = BatchedQueue<int>::Kind::Dequeue;
  enq.kind = BatchedQueue<int>::Kind::Enqueue;
  enq.value = 7;
  OpRecordBase* ops[2] = {&deq_first, &enq};  // dequeue listed first
  q.run_batch(ops, 2);
  ASSERT_TRUE(deq_first.out.has_value());
  EXPECT_EQ(*deq_first.out, 7);
  EXPECT_EQ(q.size_unsafe(), 0u);
}

TEST(BatchedQueue, BatchDequeuesTakeDistinctFrontElements) {
  rt::Scheduler sched(4);
  BatchedQueue<int> q(sched);
  using Op = BatchedQueue<int>::Op;
  {
    std::vector<Op> enqs(5);
    std::vector<OpRecordBase*> ptrs;
    for (int i = 0; i < 5; ++i) {
      enqs[static_cast<std::size_t>(i)].kind = BatchedQueue<int>::Kind::Enqueue;
      enqs[static_cast<std::size_t>(i)].value = i + 1;
      ptrs.push_back(&enqs[static_cast<std::size_t>(i)]);
    }
    q.run_batch(ptrs.data(), ptrs.size());
  }
  std::vector<Op> deqs(3);
  std::vector<OpRecordBase*> ptrs;
  for (auto& d : deqs) {
    d.kind = BatchedQueue<int>::Kind::Dequeue;
    ptrs.push_back(&d);
  }
  q.run_batch(ptrs.data(), ptrs.size());
  EXPECT_EQ(*deqs[0].out, 1);
  EXPECT_EQ(*deqs[1].out, 2);
  EXPECT_EQ(*deqs[2].out, 3);
  EXPECT_EQ(q.size_unsafe(), 2u);
}

class QueueParam : public ::testing::TestWithParam<unsigned> {};

TEST_P(QueueParam, ParallelMixConservesElements) {
  rt::Scheduler sched(GetParam());
  BatchedQueue<std::int64_t> q(sched);
  constexpr std::int64_t kN = 4000;
  std::vector<std::optional<std::int64_t>> popped(kN);
  sched.run([&] {
    rt::parallel_for(0, kN, [&](std::int64_t i) {
      if (i % 2 == 0) {
        q.enqueue(i);
      } else {
        popped[static_cast<std::size_t>(i)] = q.dequeue();
      }
    });
  });
  std::int64_t ok_pops = 0;
  std::set<std::int64_t> seen;
  for (const auto& v : popped) {
    if (v.has_value()) {
      ++ok_pops;
      EXPECT_TRUE(seen.insert(*v).second) << "value dequeued twice";
      EXPECT_EQ(*v % 2, 0) << "dequeued a value never enqueued";
    }
  }
  EXPECT_EQ(static_cast<std::int64_t>(q.size_unsafe()), kN / 2 - ok_pops);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, QueueParam,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(BatchedQueue, RandomBatchesMatchReferenceDeque) {
  rt::Scheduler sched(4);
  BatchedQueue<std::int64_t> q(sched);
  std::deque<std::int64_t> model;
  Xoshiro256 rng(44);
  for (int b = 0; b < 300; ++b) {
    const std::size_t batch_size = 1 + rng.next_below(8);
    std::vector<BatchedQueue<std::int64_t>::Op> ops(batch_size);
    std::vector<OpRecordBase*> ptrs;
    for (auto& op : ops) {
      if (rng.next() & 1) {
        op.kind = BatchedQueue<std::int64_t>::Kind::Enqueue;
        op.value = static_cast<std::int64_t>(rng.next_below(1u << 30));
      } else {
        op.kind = BatchedQueue<std::int64_t>::Kind::Dequeue;
      }
      ptrs.push_back(&op);
    }
    q.run_batch(ptrs.data(), ptrs.size());
    // Reference: enqueues first (working-set order), then dequeues.
    for (const auto& op : ops) {
      if (op.kind == BatchedQueue<std::int64_t>::Kind::Enqueue) {
        model.push_back(op.value);
      }
    }
    for (auto& op : ops) {
      if (op.kind != BatchedQueue<std::int64_t>::Kind::Dequeue) continue;
      if (model.empty()) {
        ASSERT_FALSE(op.out.has_value()) << "batch " << b;
      } else {
        ASSERT_TRUE(op.out.has_value());
        ASSERT_EQ(*op.out, model.front()) << "batch " << b;
        model.pop_front();
      }
    }
    ASSERT_EQ(q.size_unsafe(), model.size()) << "batch " << b;
  }
}

}  // namespace
}  // namespace batcher::ds
