// Runtime regression tests distilled from the scenario sweep's predicted
// pathologies (see bench_sim_scenarios and DESIGN.md §12).
//
// The simulator's flash-crowd shape predicts the launch path's worst regime:
// bursts of near-simultaneous announces, where one flag holder can service
// many launches back to back (launch chaining).  Before the chain limit
// landed, a holder facing a steady announce stream could chain without bound,
// holding the flag — and starving every late announcer of the chance to
// launch — for the rest of the burst.  The runtime is already hardened:
// `Batcher::set_chain_limit` caps launches per flag hold (default P).  These
// tests pin that hardening under the exact traffic the simulator flags as
// adversarial, using the always-on trace histograms:
//
//   * progress: every announced op completes (no starved announcer);
//   * the chain bound: chained_launches <= (chain_limit - 1) per flag hold,
//     exactly zero when the limit is 1;
//   * bounded flag-hold latency: no single hold spans the whole bursty run
//     (the unbounded-chaining signature), with a wall-clock-relative bound
//     so a loaded CI host cannot flake it.
#include <gtest/gtest.h>

#include <cstdint>

#include "batcher/batcher.hpp"
#include "ds/batched_counter.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace batcher {
namespace {

struct BurstRun {
  BatcherStats stats;
  trace::MetricsReport metrics;
  std::int64_t total = 0;
};

// `waves` bursts of `burst` increments each, every burst a fresh parallel_for
// fan-out with grain 1 so announces arrive as near-simultaneously as the
// runtime allows — the flash-crowd shape, at the runtime scale the 1-core
// container can execute.
BurstRun run_bursty_counter(unsigned workers, std::size_t chain_limit,
                            std::int64_t waves, std::int64_t burst) {
  trace::TraceSession::Options opt;
  opt.ring_capacity = std::size_t{1} << 18;
  trace::TraceSession session(opt);
  BurstRun out;
  {
    rt::Scheduler sched(workers);
    ds::BatchedCounter counter(sched);
    counter.batcher().set_chain_limit(chain_limit);
    sched.run([&] {
      for (std::int64_t w = 0; w < waves; ++w) {
        rt::parallel_for(0, burst,
                         [&](std::int64_t) { counter.increment(1); },
                         /*grain=*/1);
      }
    });
    out.total = counter.value_unsafe();
    out.stats = counter.batcher().stats();
  }
  out.metrics = trace::build_metrics(session.stop());
  return out;
}

void expect_no_starvation(const BurstRun& r, std::size_t chain_limit,
                          std::int64_t expected_ops) {
  const BatcherStats& st = r.stats;
  const trace::MetricsReport& m = r.metrics;

  // Progress: every announced op completed.
  EXPECT_EQ(r.total, expected_ops);
  EXPECT_EQ(st.ops_processed, static_cast<std::uint64_t>(expected_ops));
  ASSERT_EQ(m.dropped_records, 0u) << "ring overflowed; grow ring_capacity";
  EXPECT_EQ(m.ops(), st.ops_processed);

  // One flag_held entry per chain of launches; the chain limit caps how many
  // launches share one hold.
  EXPECT_EQ(m.flag_held.count(), st.batches_launched - st.chained_launches);
  EXPECT_LE(st.chained_launches,
            (chain_limit - 1) * m.flag_held.count());

  // Bounded hold latency: the longest single flag hold must not approach the
  // whole run (the signature of unbounded chaining under a steady announce
  // stream).  The bound is deliberately loose — a genuine starvation bug
  // chains across waves and lands near 100% of wall time.
  const double wall_ns = m.wall_seconds * 1e9;
  EXPECT_LT(static_cast<double>(m.flag_held.max_ns()), 0.8 * wall_ns + 1e6)
      << "one flag hold spanned most of the run";
}

TEST(ChainLimitStarvation, BurstsAtTheChainLimitBoundaryMakeProgress) {
  // chain_limit 2 is the boundary: chaining is allowed but must hand the
  // flag back after one extra launch, so late announcers in a burst get
  // their own holds.
  const BurstRun r = run_bursty_counter(/*workers=*/4, /*chain_limit=*/2,
                                        /*waves=*/64, /*burst=*/96);
  expect_no_starvation(r, 2, 64 * 96);
  EXPECT_GT(r.stats.announce_pushes, 0u);
}

TEST(ChainLimitStarvation, LimitOneDisablesChainingEntirely) {
  const BurstRun r = run_bursty_counter(/*workers=*/4, /*chain_limit=*/1,
                                        /*waves=*/32, /*burst=*/96);
  expect_no_starvation(r, 1, 32 * 96);
  // With the limit at 1 every launch reopens the flag first: no chains, and
  // the flag_held histogram has exactly one entry per launch.
  EXPECT_EQ(r.stats.chained_launches, 0u);
  EXPECT_EQ(r.metrics.flag_held.count(), r.stats.batches_launched);
}

TEST(ChainLimitStarvation, DefaultLimitStaysWithinTheBoundUnderBursts) {
  // Default chain limit is P: the bound still holds, and the run chains at
  // most P-1 times per hold even under back-to-back waves.
  const BurstRun r = run_bursty_counter(/*workers=*/4, /*chain_limit=*/4,
                                        /*waves=*/64, /*burst=*/96);
  expect_no_starvation(r, 4, 64 * 96);
}

}  // namespace
}  // namespace batcher
