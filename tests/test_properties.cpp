// Property-based tests: random operation sequences, random batch partitions,
// checked against phase-aware reference models.  Driving run_batch directly
// makes the checks deterministic — any batch partition the real scheduler
// could produce is a partition these tests draw at random.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "ds/batched_counter.hpp"
#include "ds/batched_hashmap.hpp"
#include "ds/batched_pq.hpp"
#include "ds/batched_skiplist.hpp"
#include "ds/batched_stack.hpp"
#include "ds/batched_tree23.hpp"
#include "ds/batched_wbtree.hpp"
#include "runtime/scheduler.hpp"
#include "support/rng.hpp"

namespace batcher {
namespace {

class PropertySeed : public ::testing::TestWithParam<std::uint64_t> {};

// --- Batched set structures (skip list and 2-3 tree) -----------------------
//
// Phase-aware reference: contains sees the pre-batch set, then erases apply
// (first occurrence of each key wins), then inserts (first occurrence wins).

template <typename Structure>
void run_set_property(std::uint64_t seed) {
  rt::Scheduler sched(4);
  Structure s(sched);
  using Op = typename Structure::Op;
  using Kind = typename Structure::Kind;

  std::set<std::int64_t> model;
  Xoshiro256 rng(seed);
  constexpr int kBatches = 120;
  for (int b = 0; b < kBatches; ++b) {
    const std::size_t batch_size = 1 + rng.next_below(16);
    std::vector<Op> ops(batch_size);
    std::vector<OpRecordBase*> ptrs;
    for (auto& op : ops) {
      const auto r = rng.next_below(10);
      op.key = static_cast<std::int64_t>(rng.next_below(64));
      op.kind = r < 4 ? Kind::Insert : (r < 7 ? Kind::Erase : Kind::Contains);
      ptrs.push_back(&op);
    }
    s.run_batch(ptrs.data(), ptrs.size());

    // Reference application in phases.
    const std::set<std::int64_t> pre = model;
    std::set<std::int64_t> erased_this_batch, inserted_this_batch;
    std::vector<bool> expected(batch_size);
    for (std::size_t i = 0; i < batch_size; ++i) {
      if (ops[i].kind == Kind::Contains) expected[i] = pre.count(ops[i].key) > 0;
    }
    for (std::size_t i = 0; i < batch_size; ++i) {
      if (ops[i].kind != Kind::Erase) continue;
      const bool hit =
          model.count(ops[i].key) > 0 && erased_this_batch.insert(ops[i].key).second;
      if (hit) model.erase(ops[i].key);
      expected[i] = hit;
    }
    for (std::size_t i = 0; i < batch_size; ++i) {
      if (ops[i].kind != Kind::Insert) continue;
      const bool fresh =
          model.count(ops[i].key) == 0 && inserted_this_batch.insert(ops[i].key).second;
      if (fresh) model.insert(ops[i].key);
      expected[i] = fresh;
    }
    for (std::size_t i = 0; i < batch_size; ++i) {
      ASSERT_EQ(ops[i].found, expected[i])
          << "batch " << b << " op " << i << " kind "
          << static_cast<int>(ops[i].kind) << " key " << ops[i].key;
    }
    ASSERT_EQ(s.size_unsafe(), model.size()) << "batch " << b;
    ASSERT_TRUE(s.check_invariants()) << "batch " << b;
  }
  // Final membership must match exactly.
  for (std::int64_t k = 0; k < 64; ++k) {
    ASSERT_EQ(s.contains_unsafe(k), model.count(k) > 0) << "key " << k;
  }
}

TEST_P(PropertySeed, SkipListMatchesPhaseAwareSetModel) {
  run_set_property<ds::BatchedSkipList>(GetParam());
}

TEST_P(PropertySeed, Tree23MatchesPhaseAwareSetModel) {
  run_set_property<ds::BatchedTree23>(GetParam());
}

TEST_P(PropertySeed, WBTreeMatchesPhaseAwareSetModel) {
  run_set_property<ds::BatchedWBTree>(GetParam());
}

// --- Counter ---------------------------------------------------------------

TEST_P(PropertySeed, CounterMatchesPrefixSumModel) {
  rt::Scheduler sched(4);
  ds::BatchedCounter counter(sched, /*initial=*/7);
  std::int64_t model = 7;
  Xoshiro256 rng(GetParam());
  for (int b = 0; b < 200; ++b) {
    const std::size_t batch_size = 1 + rng.next_below(4);  // <= P
    std::vector<ds::BatchedCounter::Op> ops(batch_size);
    std::vector<OpRecordBase*> ptrs;
    for (auto& op : ops) {
      op.delta = static_cast<std::int64_t>(rng.next_below(21)) - 10;
      ptrs.push_back(&op);
    }
    counter.run_batch(ptrs.data(), ptrs.size());
    for (std::size_t i = 0; i < batch_size; ++i) {
      model += ops[i].delta;
      ASSERT_EQ(ops[i].result, model) << "batch " << b << " op " << i;
    }
  }
  EXPECT_EQ(counter.value_unsafe(), model);
}

// --- Stack -----------------------------------------------------------------

TEST_P(PropertySeed, StackMatchesPushThenPopModel) {
  rt::Scheduler sched(4);
  ds::BatchedStack<std::int64_t> stack(sched);
  std::vector<std::int64_t> model;
  Xoshiro256 rng(GetParam() + 1000);
  for (int b = 0; b < 200; ++b) {
    const std::size_t batch_size = 1 + rng.next_below(8);
    std::vector<ds::BatchedStack<std::int64_t>::Op> ops(batch_size);
    std::vector<OpRecordBase*> ptrs;
    for (auto& op : ops) {
      if (rng.next() & 1) {
        op.kind = ds::BatchedStack<std::int64_t>::Kind::Push;
        op.value = static_cast<std::int64_t>(rng.next_below(1000000));
      } else {
        op.kind = ds::BatchedStack<std::int64_t>::Kind::Pop;
      }
      ptrs.push_back(&op);
    }
    stack.run_batch(ptrs.data(), ptrs.size());

    // Model: all pushes (working-set order), then pops.
    for (const auto& op : ops) {
      if (op.kind == ds::BatchedStack<std::int64_t>::Kind::Push) {
        model.push_back(op.value);
      }
    }
    for (auto& op : ops) {
      if (op.kind != ds::BatchedStack<std::int64_t>::Kind::Pop) continue;
      if (model.empty()) {
        ASSERT_FALSE(op.out.has_value()) << "batch " << b;
      } else {
        ASSERT_TRUE(op.out.has_value());
        ASSERT_EQ(*op.out, model.back()) << "batch " << b;
        model.pop_back();
      }
    }
    ASSERT_EQ(stack.size_unsafe(), model.size()) << "batch " << b;
  }
}

// --- Priority queue ----------------------------------------------------------

TEST_P(PropertySeed, PQMatchesMultisetModel) {
  rt::Scheduler sched(4);
  ds::BatchedPriorityQueue pq(sched);
  std::multiset<std::int64_t> model;
  Xoshiro256 rng(GetParam() + 2000);
  for (int b = 0; b < 200; ++b) {
    const std::size_t batch_size = 1 + rng.next_below(8);
    std::vector<ds::BatchedPriorityQueue::Op> ops(batch_size);
    std::vector<OpRecordBase*> ptrs;
    for (auto& op : ops) {
      if (rng.next_below(3) != 0) {
        op.kind = ds::BatchedPriorityQueue::Kind::Insert;
        op.key = static_cast<std::int64_t>(rng.next_below(1000));
      } else {
        op.kind = ds::BatchedPriorityQueue::Kind::ExtractMin;
      }
      ptrs.push_back(&op);
    }
    pq.run_batch(ptrs.data(), ptrs.size());

    for (const auto& op : ops) {
      if (op.kind == ds::BatchedPriorityQueue::Kind::Insert) model.insert(op.key);
    }
    for (auto& op : ops) {
      if (op.kind != ds::BatchedPriorityQueue::Kind::ExtractMin) continue;
      if (model.empty()) {
        ASSERT_FALSE(op.out.has_value());
      } else {
        ASSERT_TRUE(op.out.has_value());
        ASSERT_EQ(*op.out, *model.begin()) << "batch " << b;
        model.erase(model.begin());
      }
    }
    ASSERT_EQ(pq.size_unsafe(), model.size());
    ASSERT_TRUE(pq.check_invariants()) << "batch " << b;
  }
}

// --- Hash map ---------------------------------------------------------------

TEST_P(PropertySeed, HashMapMatchesWorkingSetOrderModel) {
  rt::Scheduler sched(4);
  ds::BatchedHashMap map(sched);
  std::map<std::int64_t, std::int64_t> model;
  Xoshiro256 rng(GetParam() + 3000);
  for (int b = 0; b < 150; ++b) {
    const std::size_t batch_size = 1 + rng.next_below(12);
    std::vector<ds::BatchedHashMap::Op> ops(batch_size);
    std::vector<OpRecordBase*> ptrs;
    for (auto& op : ops) {
      op.key = static_cast<std::int64_t>(rng.next_below(48));
      switch (rng.next_below(4)) {
        case 0:
          op.kind = ds::BatchedHashMap::Kind::Put;
          op.value = static_cast<std::int64_t>(rng.next_below(1000));
          break;
        case 1:
          op.kind = ds::BatchedHashMap::Kind::Get;
          break;
        case 2:
          op.kind = ds::BatchedHashMap::Kind::Erase;
          break;
        default:
          op.kind = ds::BatchedHashMap::Kind::Update;
          op.value = static_cast<std::int64_t>(rng.next_below(10));
          break;
      }
      ptrs.push_back(&op);
    }
    map.run_batch(ptrs.data(), ptrs.size());

    // Reference: strict working-set order (the hash map's strongest-in-repo
    // semantics).
    for (auto& op : ops) {
      auto it = model.find(op.key);
      switch (op.kind) {
        case ds::BatchedHashMap::Kind::Put:
          model[op.key] = op.value;
          break;
        case ds::BatchedHashMap::Kind::Get:
          if (it == model.end()) {
            ASSERT_FALSE(op.out.has_value()) << "batch " << b;
          } else {
            ASSERT_TRUE(op.out.has_value());
            ASSERT_EQ(*op.out, it->second) << "batch " << b;
          }
          break;
        case ds::BatchedHashMap::Kind::Erase:
          ASSERT_EQ(op.found, it != model.end()) << "batch " << b;
          if (it != model.end()) model.erase(it);
          break;
        case ds::BatchedHashMap::Kind::Update: {
          const std::int64_t next =
              (it == model.end() ? 0 : it->second) + op.value;
          model[op.key] = next;
          ASSERT_TRUE(op.out.has_value());
          ASSERT_EQ(*op.out, next) << "batch " << b;
          break;
        }
      }
    }
    ASSERT_EQ(map.size_unsafe(), model.size());
    ASSERT_TRUE(map.check_invariants()) << "batch " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySeed,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

}  // namespace
}  // namespace batcher
