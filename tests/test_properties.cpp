// Property-based tests: random operation sequences, random batch partitions,
// checked against phase-aware reference models.  Driving run_batch directly
// makes the checks deterministic — any batch partition the real scheduler
// could produce is a partition these tests draw at random.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "ds/batched_counter.hpp"
#include "ds/batched_hashmap.hpp"
#include "ds/batched_om.hpp"
#include "ds/batched_pq.hpp"
#include "ds/batched_queue.hpp"
#include "ds/batched_skiplist.hpp"
#include "ds/batched_stack.hpp"
#include "ds/batched_tree23.hpp"
#include "ds/batched_wbtree.hpp"
#include "audit/audit_session.hpp"
#include "audit/schedule_perturber.hpp"
#include "runtime/api.hpp"
#include "runtime/schedule_hooks.hpp"
#include "runtime/scheduler.hpp"
#include "support/rng.hpp"

namespace batcher {
namespace {

class PropertySeed : public ::testing::TestWithParam<std::uint64_t> {};

// --- Batched set structures (skip list and 2-3 tree) -----------------------
//
// Phase-aware reference: contains sees the pre-batch set, then erases apply
// (first occurrence of each key wins), then inserts (first occurrence wins).

template <typename Structure>
void run_set_property(std::uint64_t seed) {
  rt::Scheduler sched(4);
  Structure s(sched);
  using Op = typename Structure::Op;
  using Kind = typename Structure::Kind;

  std::set<std::int64_t> model;
  Xoshiro256 rng(seed);
  constexpr int kBatches = 120;
  for (int b = 0; b < kBatches; ++b) {
    const std::size_t batch_size = 1 + rng.next_below(16);
    std::vector<Op> ops(batch_size);
    std::vector<OpRecordBase*> ptrs;
    for (auto& op : ops) {
      const auto r = rng.next_below(10);
      op.key = static_cast<std::int64_t>(rng.next_below(64));
      op.kind = r < 4 ? Kind::Insert : (r < 7 ? Kind::Erase : Kind::Contains);
      ptrs.push_back(&op);
    }
    s.run_batch(ptrs.data(), ptrs.size());

    // Reference application in phases.
    const std::set<std::int64_t> pre = model;
    std::set<std::int64_t> erased_this_batch, inserted_this_batch;
    std::vector<bool> expected(batch_size);
    for (std::size_t i = 0; i < batch_size; ++i) {
      if (ops[i].kind == Kind::Contains) expected[i] = pre.count(ops[i].key) > 0;
    }
    for (std::size_t i = 0; i < batch_size; ++i) {
      if (ops[i].kind != Kind::Erase) continue;
      const bool hit =
          model.count(ops[i].key) > 0 && erased_this_batch.insert(ops[i].key).second;
      if (hit) model.erase(ops[i].key);
      expected[i] = hit;
    }
    for (std::size_t i = 0; i < batch_size; ++i) {
      if (ops[i].kind != Kind::Insert) continue;
      const bool fresh =
          model.count(ops[i].key) == 0 && inserted_this_batch.insert(ops[i].key).second;
      if (fresh) model.insert(ops[i].key);
      expected[i] = fresh;
    }
    for (std::size_t i = 0; i < batch_size; ++i) {
      ASSERT_EQ(ops[i].found, expected[i])
          << "batch " << b << " op " << i << " kind "
          << static_cast<int>(ops[i].kind) << " key " << ops[i].key;
    }
    ASSERT_EQ(s.size_unsafe(), model.size()) << "batch " << b;
    ASSERT_TRUE(s.check_invariants()) << "batch " << b;
  }
  // Final membership must match exactly.
  for (std::int64_t k = 0; k < 64; ++k) {
    ASSERT_EQ(s.contains_unsafe(k), model.count(k) > 0) << "key " << k;
  }
}

TEST_P(PropertySeed, SkipListMatchesPhaseAwareSetModel) {
  run_set_property<ds::BatchedSkipList>(GetParam());
}

TEST_P(PropertySeed, Tree23MatchesPhaseAwareSetModel) {
  run_set_property<ds::BatchedTree23>(GetParam());
}

TEST_P(PropertySeed, WBTreeMatchesPhaseAwareSetModel) {
  run_set_property<ds::BatchedWBTree>(GetParam());
}

// --- Counter ---------------------------------------------------------------

TEST_P(PropertySeed, CounterMatchesPrefixSumModel) {
  rt::Scheduler sched(4);
  ds::BatchedCounter counter(sched, /*initial=*/7);
  std::int64_t model = 7;
  Xoshiro256 rng(GetParam());
  for (int b = 0; b < 200; ++b) {
    const std::size_t batch_size = 1 + rng.next_below(4);  // <= P
    std::vector<ds::BatchedCounter::Op> ops(batch_size);
    std::vector<OpRecordBase*> ptrs;
    for (auto& op : ops) {
      op.delta = static_cast<std::int64_t>(rng.next_below(21)) - 10;
      ptrs.push_back(&op);
    }
    counter.run_batch(ptrs.data(), ptrs.size());
    for (std::size_t i = 0; i < batch_size; ++i) {
      model += ops[i].delta;
      ASSERT_EQ(ops[i].result, model) << "batch " << b << " op " << i;
    }
  }
  EXPECT_EQ(counter.value_unsafe(), model);
}

// --- Stack -----------------------------------------------------------------

TEST_P(PropertySeed, StackMatchesPushThenPopModel) {
  rt::Scheduler sched(4);
  ds::BatchedStack<std::int64_t> stack(sched);
  std::vector<std::int64_t> model;
  Xoshiro256 rng(GetParam() + 1000);
  for (int b = 0; b < 200; ++b) {
    const std::size_t batch_size = 1 + rng.next_below(8);
    std::vector<ds::BatchedStack<std::int64_t>::Op> ops(batch_size);
    std::vector<OpRecordBase*> ptrs;
    for (auto& op : ops) {
      if (rng.next() & 1) {
        op.kind = ds::BatchedStack<std::int64_t>::Kind::Push;
        op.value = static_cast<std::int64_t>(rng.next_below(1000000));
      } else {
        op.kind = ds::BatchedStack<std::int64_t>::Kind::Pop;
      }
      ptrs.push_back(&op);
    }
    stack.run_batch(ptrs.data(), ptrs.size());

    // Model: all pushes (working-set order), then pops.
    for (const auto& op : ops) {
      if (op.kind == ds::BatchedStack<std::int64_t>::Kind::Push) {
        model.push_back(op.value);
      }
    }
    for (auto& op : ops) {
      if (op.kind != ds::BatchedStack<std::int64_t>::Kind::Pop) continue;
      if (model.empty()) {
        ASSERT_FALSE(op.out.has_value()) << "batch " << b;
      } else {
        ASSERT_TRUE(op.out.has_value());
        ASSERT_EQ(*op.out, model.back()) << "batch " << b;
        model.pop_back();
      }
    }
    ASSERT_EQ(stack.size_unsafe(), model.size()) << "batch " << b;
  }
}

// --- FIFO queue --------------------------------------------------------------
//
// Phase-aware reference (mirrors the stack's): all ENQUEUEs of a batch append
// in working-set order, then DEQUEUEs take from the front in working-set
// order — so a dequeue observes a same-batch enqueue only once the pre-batch
// queue has run dry.

TEST_P(PropertySeed, QueueMatchesEnqueueThenDequeueModel) {
  rt::Scheduler sched(4);
  ds::BatchedQueue<std::int64_t> queue(sched);
  std::deque<std::int64_t> model;
  Xoshiro256 rng(GetParam() + 4000);
  for (int b = 0; b < 200; ++b) {
    const std::size_t batch_size = 1 + rng.next_below(10);
    std::vector<ds::BatchedQueue<std::int64_t>::Op> ops(batch_size);
    std::vector<OpRecordBase*> ptrs;
    for (auto& op : ops) {
      // Dequeue-heavy mix so underflow and the shrink rebuild both trigger.
      if (rng.next_below(5) < 2) {
        op.kind = ds::BatchedQueue<std::int64_t>::Kind::Enqueue;
        op.value = static_cast<std::int64_t>(rng.next_below(1000000));
      } else {
        op.kind = ds::BatchedQueue<std::int64_t>::Kind::Dequeue;
      }
      ptrs.push_back(&op);
    }
    queue.run_batch(ptrs.data(), ptrs.size());

    for (const auto& op : ops) {
      if (op.kind == ds::BatchedQueue<std::int64_t>::Kind::Enqueue) {
        model.push_back(op.value);
      }
    }
    for (auto& op : ops) {
      if (op.kind != ds::BatchedQueue<std::int64_t>::Kind::Dequeue) continue;
      if (model.empty()) {
        ASSERT_FALSE(op.out.has_value()) << "batch " << b;
      } else {
        ASSERT_TRUE(op.out.has_value()) << "batch " << b;
        ASSERT_EQ(*op.out, model.front()) << "batch " << b;
        model.pop_front();
      }
    }
    ASSERT_EQ(queue.size_unsafe(), model.size()) << "batch " << b;
    ASSERT_GE(queue.capacity_unsafe(), queue.size_unsafe()) << "batch " << b;
  }
  // Drain and confirm FIFO order end to end.
  while (!model.empty()) {
    std::vector<ds::BatchedQueue<std::int64_t>::Op> ops(1);
    ops[0].kind = ds::BatchedQueue<std::int64_t>::Kind::Dequeue;
    OpRecordBase* ptr = &ops[0];
    queue.run_batch(&ptr, 1);
    ASSERT_TRUE(ops[0].out.has_value());
    ASSERT_EQ(*ops[0].out, model.front());
    model.pop_front();
  }
  ASSERT_EQ(queue.size_unsafe(), 0u);
}

// --- Order-maintenance list --------------------------------------------------
//
// Phase-aware reference: PRECEDES queries observe the pre-batch order, then
// inserts apply grouped by anchor — groups in ascending anchor-handle order
// (the batch's sort key), each group's elements spliced right after the
// anchor in working-set order, with handles assigned sequentially per splice.

TEST_P(PropertySeed, OrderMaintenanceMatchesPhaseAwareListModel) {
  using OM = ds::BatchedOrderMaintenance;
  rt::Scheduler sched(4);
  OM om(sched);

  std::vector<OM::Handle> order{om.base()};  // reference list order
  auto pos_of = [&](OM::Handle h) {
    return static_cast<std::size_t>(
        std::find(order.begin(), order.end(), h) - order.begin());
  };

  Xoshiro256 rng(GetParam() + 5000);
  OM::Handle next_handle = 1;
  for (int b = 0; b < 80; ++b) {
    const std::size_t batch_size = 1 + rng.next_below(8);
    std::vector<OM::Op> ops(batch_size);
    std::vector<OpRecordBase*> ptrs;
    for (auto& op : ops) {
      const auto pick = [&] {
        return order[rng.next_below(order.size())];
      };
      if (rng.next_below(3) == 0) {
        op.kind = OM::Kind::Precedes;
        op.a = pick();
        op.b = pick();
      } else {
        op.kind = OM::Kind::InsertAfter;
        op.a = pick();
      }
      ptrs.push_back(&op);
    }
    om.run_batch(ptrs.data(), ptrs.size());

    // Phase 1: queries against the pre-batch order.
    for (std::size_t i = 0; i < batch_size; ++i) {
      if (ops[i].kind != OM::Kind::Precedes) continue;
      ASSERT_EQ(ops[i].before, pos_of(ops[i].a) < pos_of(ops[i].b))
          << "batch " << b << " op " << i;
    }

    // Phase 2: gather insert ops in working-set order, group by anchor.
    std::vector<OM::Op*> inserts;
    for (auto& op : ops) {
      if (op.kind == OM::Kind::InsertAfter) inserts.push_back(&op);
    }
    std::vector<OM::Handle> anchors;
    for (const OM::Op* op : inserts) anchors.push_back(op->a);
    std::sort(anchors.begin(), anchors.end());
    anchors.erase(std::unique(anchors.begin(), anchors.end()), anchors.end());
    for (OM::Handle anchor : anchors) {
      std::vector<OM::Handle> fresh;
      for (OM::Op* op : inserts) {
        if (op->a != anchor) continue;
        ASSERT_EQ(op->result, next_handle)
            << "batch " << b << " anchor " << anchor;
        fresh.push_back(next_handle++);
      }
      order.insert(order.begin() +
                       static_cast<std::ptrdiff_t>(pos_of(anchor)) + 1,
                   fresh.begin(), fresh.end());
    }

    ASSERT_EQ(om.size_unsafe(), order.size()) << "batch " << b;
    ASSERT_TRUE(om.check_invariants()) << "batch " << b;
    // The whole reference order must agree with the structure's labels.
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      ASSERT_TRUE(om.precedes_unsafe(order[i], order[i + 1]))
          << "batch " << b << " position " << i;
    }
  }
}

// --- Priority queue ----------------------------------------------------------

TEST_P(PropertySeed, PQMatchesMultisetModel) {
  rt::Scheduler sched(4);
  ds::BatchedPriorityQueue pq(sched);
  std::multiset<std::int64_t> model;
  Xoshiro256 rng(GetParam() + 2000);
  for (int b = 0; b < 200; ++b) {
    const std::size_t batch_size = 1 + rng.next_below(8);
    std::vector<ds::BatchedPriorityQueue::Op> ops(batch_size);
    std::vector<OpRecordBase*> ptrs;
    for (auto& op : ops) {
      if (rng.next_below(3) != 0) {
        op.kind = ds::BatchedPriorityQueue::Kind::Insert;
        op.key = static_cast<std::int64_t>(rng.next_below(1000));
      } else {
        op.kind = ds::BatchedPriorityQueue::Kind::ExtractMin;
      }
      ptrs.push_back(&op);
    }
    pq.run_batch(ptrs.data(), ptrs.size());

    for (const auto& op : ops) {
      if (op.kind == ds::BatchedPriorityQueue::Kind::Insert) model.insert(op.key);
    }
    for (auto& op : ops) {
      if (op.kind != ds::BatchedPriorityQueue::Kind::ExtractMin) continue;
      if (model.empty()) {
        ASSERT_FALSE(op.out.has_value());
      } else {
        ASSERT_TRUE(op.out.has_value());
        ASSERT_EQ(*op.out, *model.begin()) << "batch " << b;
        model.erase(model.begin());
      }
    }
    ASSERT_EQ(pq.size_unsafe(), model.size());
    ASSERT_TRUE(pq.check_invariants()) << "batch " << b;
  }
}

// --- Hash map ---------------------------------------------------------------

TEST_P(PropertySeed, HashMapMatchesWorkingSetOrderModel) {
  rt::Scheduler sched(4);
  ds::BatchedHashMap map(sched);
  std::map<std::int64_t, std::int64_t> model;
  Xoshiro256 rng(GetParam() + 3000);
  for (int b = 0; b < 150; ++b) {
    const std::size_t batch_size = 1 + rng.next_below(12);
    std::vector<ds::BatchedHashMap::Op> ops(batch_size);
    std::vector<OpRecordBase*> ptrs;
    for (auto& op : ops) {
      op.key = static_cast<std::int64_t>(rng.next_below(48));
      switch (rng.next_below(4)) {
        case 0:
          op.kind = ds::BatchedHashMap::Kind::Put;
          op.value = static_cast<std::int64_t>(rng.next_below(1000));
          break;
        case 1:
          op.kind = ds::BatchedHashMap::Kind::Get;
          break;
        case 2:
          op.kind = ds::BatchedHashMap::Kind::Erase;
          break;
        default:
          op.kind = ds::BatchedHashMap::Kind::Update;
          op.value = static_cast<std::int64_t>(rng.next_below(10));
          break;
      }
      ptrs.push_back(&op);
    }
    map.run_batch(ptrs.data(), ptrs.size());

    // Reference: strict working-set order (the hash map's strongest-in-repo
    // semantics).
    for (auto& op : ops) {
      auto it = model.find(op.key);
      switch (op.kind) {
        case ds::BatchedHashMap::Kind::Put:
          model[op.key] = op.value;
          break;
        case ds::BatchedHashMap::Kind::Get:
          if (it == model.end()) {
            ASSERT_FALSE(op.out.has_value()) << "batch " << b;
          } else {
            ASSERT_TRUE(op.out.has_value());
            ASSERT_EQ(*op.out, it->second) << "batch " << b;
          }
          break;
        case ds::BatchedHashMap::Kind::Erase:
          ASSERT_EQ(op.found, it != model.end()) << "batch " << b;
          if (it != model.end()) model.erase(it);
          break;
        case ds::BatchedHashMap::Kind::Update: {
          const std::int64_t next =
              (it == model.end() ? 0 : it->second) + op.value;
          model[op.key] = next;
          ASSERT_TRUE(op.out.has_value());
          ASSERT_EQ(*op.out, next) << "batch " << b;
          break;
        }
      }
    }
    ASSERT_EQ(map.size_unsafe(), model.size());
    ASSERT_TRUE(map.check_invariants()) << "batch " << b;
  }
}

// --- Perturbed op tapes through the real Batcher -----------------------------
//
// The models above drive run_batch directly, choosing batch partitions at
// random.  These tests close the other half of the loop: a pregenerated op
// tape executed through the *blocking* API on a live scheduler, under the
// schedule perturber (when BATCHER_AUDIT hooks are compiled in), so the
// partitions are whatever the real launch protocol produces for that seed's
// interleaving.  Since the partition is now out of the test's hands, each
// round of the tape is designed to be partition-insensitive:
//
//   * PQ rounds are insert-only or extract-only.  However an extract-only
//     round of E ops splits into batches, each batch takes the smallest
//     remaining, so the union is always the E smallest — a multiset equality
//     the reference can predict.
//   * Tree rounds touch pairwise-distinct keys, one op per strand, so every
//     op's result depends only on pre-round membership, never on how the
//     round's ops share batches.
//
// A perturbed schedule that splits rounds differently must still produce the
// same answers; a violation here is a real linearizability bug.

// Installs the perturber for one seeded run when live hooks exist; verifies
// the auditor stayed clean on teardown either way.
class PerturbedScope {
 public:
  explicit PerturbedScope(std::uint64_t seed) {
    if (rt::hooks::kEnabled) {
      audit::SchedulePerturber::Options opts;
      opts.yield_one_in = 96;
      opts.pause_one_in = 8;
      opts.max_pause_spins = 32;
      session_ = std::make_unique<audit::AuditSession>(4, seed, opts);
      session_->install();
    }
  }
  ~PerturbedScope() {
    if (session_ != nullptr) {
      EXPECT_TRUE(session_->auditor().clean()) << session_->auditor().report();
      session_->uninstall();
    }
  }

 private:
  std::unique_ptr<audit::AuditSession> session_;
};

TEST_P(PropertySeed, PQPerturbedTapeMatchesSequentialReference) {
  const std::uint64_t seed = GetParam() + 6000;
  Xoshiro256 rng(seed);

  // Pregenerate the tape: alternating insert-only / extract-only rounds.
  struct Round {
    bool insert;
    std::vector<std::int64_t> keys;  // insert round: keys; extract: op count
  };
  std::vector<Round> tape;
  std::size_t modeled_size = 0;
  for (int r = 0; r < 40; ++r) {
    Round round;
    const std::size_t n = 1 + rng.next_below(12);
    round.insert = modeled_size < n || (rng.next() & 1);
    if (round.insert) {
      for (std::size_t i = 0; i < n; ++i) {
        round.keys.push_back(static_cast<std::int64_t>(rng.next_below(1000)));
      }
      modeled_size += n;
    } else {
      round.keys.resize(n);  // n extracts; values unused
      modeled_size -= n;
    }
    tape.push_back(std::move(round));
  }

  PerturbedScope perturbed(seed);
  std::multiset<std::int64_t> model;
  {
    rt::Scheduler sched(4);
    ds::BatchedPriorityQueue pq(sched);
    sched.run([&] {
      for (std::size_t r = 0; r < tape.size(); ++r) {
        const Round& round = tape[r];
        const auto n = static_cast<std::int64_t>(round.keys.size());
        if (round.insert) {
          rt::parallel_for(0, n,
                           [&](std::int64_t i) {
                             pq.insert(
                                 round.keys[static_cast<std::size_t>(i)]);
                           },
                           /*grain=*/1);
          for (std::int64_t k : round.keys) model.insert(k);
        } else {
          std::vector<std::optional<std::int64_t>> got(
              static_cast<std::size_t>(n));
          rt::parallel_for(0, n,
                           [&](std::int64_t i) {
                             got[static_cast<std::size_t>(i)] =
                                 pq.extract_min();
                           },
                           /*grain=*/1);
          // Rounds never extract from an underfull queue, so every op hits,
          // and the union of the round's batches is the n smallest.
          std::vector<std::int64_t> returned;
          for (const auto& v : got) {
            ASSERT_TRUE(v.has_value()) << "round " << r;
            returned.push_back(*v);
          }
          std::sort(returned.begin(), returned.end());
          for (std::int64_t v : returned) {
            ASSERT_FALSE(model.empty()) << "round " << r;
            ASSERT_EQ(v, *model.begin()) << "round " << r;
            model.erase(model.begin());
          }
        }
        ASSERT_EQ(pq.size_unsafe(), model.size()) << "round " << r;
      }
    });
    ASSERT_TRUE(pq.check_invariants());
  }
}

TEST_P(PropertySeed, Tree23PerturbedTapeMatchesSequentialReference) {
  const std::uint64_t seed = GetParam() + 7000;
  Xoshiro256 rng(seed);
  using Kind = ds::BatchedTree23::Kind;

  // Pregenerate rounds of pairwise-distinct keys with one op each.
  struct RoundOp {
    std::int64_t key;
    Kind kind;
  };
  std::vector<std::vector<RoundOp>> tape;
  for (int r = 0; r < 40; ++r) {
    std::int64_t pool[64];
    for (std::int64_t k = 0; k < 64; ++k) pool[k] = k;
    for (std::size_t i = 64; i > 1; --i) {
      std::swap(pool[i - 1], pool[rng.next_below(i)]);
    }
    const std::size_t n = 1 + rng.next_below(12);
    std::vector<RoundOp> round;
    for (std::size_t i = 0; i < n; ++i) {
      const auto pick = rng.next_below(10);
      round.push_back({pool[i], pick < 4   ? Kind::Insert
                                : pick < 7 ? Kind::Erase
                                           : Kind::Contains});
    }
    tape.push_back(std::move(round));
  }

  PerturbedScope perturbed(seed);
  std::set<std::int64_t> model;
  {
    rt::Scheduler sched(4);
    ds::BatchedTree23 tree(sched);
    sched.run([&] {
      for (std::size_t r = 0; r < tape.size(); ++r) {
        const auto& round = tape[r];
        std::vector<std::uint8_t> got(round.size());
        rt::parallel_for(
            0, static_cast<std::int64_t>(round.size()),
            [&](std::int64_t i) {
              const RoundOp& op = round[static_cast<std::size_t>(i)];
              bool res = false;
              switch (op.kind) {
                case Kind::Insert: res = tree.insert(op.key); break;
                case Kind::Erase: res = tree.erase(op.key); break;
                case Kind::Contains: res = tree.contains(op.key); break;
              }
              got[static_cast<std::size_t>(i)] = res ? 1 : 0;
            },
            /*grain=*/1);
        // Keys are distinct within the round, so every result is determined
        // by pre-round membership alone, whatever the batch split was.
        for (std::size_t i = 0; i < round.size(); ++i) {
          const RoundOp& op = round[i];
          const bool member = model.count(op.key) > 0;
          const bool expected =
              op.kind == Kind::Contains ? member
              : op.kind == Kind::Erase  ? member
                                        : !member;  // Insert: fresh
          ASSERT_EQ(got[i] != 0, expected)
              << "round " << r << " op " << i << " key " << op.key;
        }
        for (const RoundOp& op : round) {
          if (op.kind == Kind::Insert) model.insert(op.key);
          if (op.kind == Kind::Erase) model.erase(op.key);
        }
        ASSERT_EQ(tree.size_unsafe(), model.size()) << "round " << r;
      }
    });
    ASSERT_TRUE(tree.check_invariants());
    for (std::int64_t k = 0; k < 64; ++k) {
      ASSERT_EQ(tree.contains_unsafe(k), model.count(k) > 0) << "key " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySeed,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

}  // namespace
}  // namespace batcher
