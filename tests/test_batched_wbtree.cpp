// Tests for the join-based weight-balanced batched tree.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <vector>

#include "ds/batched_wbtree.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"
#include "support/rng.hpp"

namespace batcher::ds {
namespace {

using Key = BatchedWBTree::Key;

TEST(BatchedWBTree, EmptyTreeBasics) {
  rt::Scheduler sched(1);
  BatchedWBTree tree(sched);
  EXPECT_EQ(tree.size_unsafe(), 0u);
  EXPECT_FALSE(tree.contains_unsafe(0));
  EXPECT_TRUE(tree.check_invariants());
}

TEST(BatchedWBTree, SequentialInsertsStayBalanced) {
  rt::Scheduler sched(1);
  BatchedWBTree tree(sched);
  // Ascending order is the classic worst case for unbalanced BSTs.
  for (Key k = 0; k < 2000; ++k) {
    ASSERT_TRUE(tree.insert_unsafe(k));
    ASSERT_TRUE(tree.check_invariants()) << "after " << k;
  }
  EXPECT_EQ(tree.size_unsafe(), 2000u);
  EXPECT_LE(tree.height_unsafe(), 32);  // weight balance caps depth at c·lg n
}

TEST(BatchedWBTree, BulkBuildAndQueries) {
  rt::Scheduler sched(4);
  BatchedWBTree tree(sched);
  std::vector<Key> keys;
  for (Key k = 0; k < 10000; ++k) keys.push_back(k * 3);
  tree.bulk_build_unsafe(keys);
  EXPECT_EQ(tree.size_unsafe(), 10000u);
  EXPECT_TRUE(tree.check_invariants());
  EXPECT_TRUE(tree.contains_unsafe(0));
  EXPECT_TRUE(tree.contains_unsafe(29997));
  EXPECT_FALSE(tree.contains_unsafe(1));
}

class WBTreeParam : public ::testing::TestWithParam<unsigned> {};

TEST_P(WBTreeParam, ParallelInsertsMatchReference) {
  rt::Scheduler sched(GetParam());
  BatchedWBTree tree(sched);
  constexpr std::int64_t kN = 4000;
  Xoshiro256 rng(3);
  std::vector<Key> keys(kN);
  for (auto& k : keys) k = static_cast<Key>(rng.next_below(kN));
  std::set<Key> reference(keys.begin(), keys.end());
  sched.run([&] {
    rt::parallel_for(0, kN, [&](std::int64_t i) {
      tree.insert(keys[static_cast<std::size_t>(i)]);
    });
  });
  EXPECT_EQ(tree.size_unsafe(), reference.size());
  EXPECT_TRUE(tree.check_invariants());
  for (Key k : reference) ASSERT_TRUE(tree.contains_unsafe(k));
}

TEST_P(WBTreeParam, ParallelErasesAreStructural) {
  rt::Scheduler sched(GetParam());
  BatchedWBTree tree(sched);
  for (Key k = 0; k < 1000; ++k) tree.insert_unsafe(k);
  std::atomic<std::int64_t> hits{0};
  sched.run([&] {
    rt::parallel_for(0, 1500, [&](std::int64_t i) {
      if (tree.erase(i)) hits.fetch_add(1);
    });
  });
  EXPECT_EQ(hits.load(), 1000);
  EXPECT_EQ(tree.size_unsafe(), 0u);
  EXPECT_TRUE(tree.check_invariants());
}

TEST_P(WBTreeParam, RankSelectRangeCount) {
  rt::Scheduler sched(GetParam());
  BatchedWBTree tree(sched);
  std::vector<Key> keys;
  for (Key k = 0; k < 500; ++k) keys.push_back(k * 2);  // evens 0..998
  tree.bulk_build_unsafe(keys);

  std::atomic<std::int64_t> bad{0};
  sched.run([&] {
    rt::parallel_for(0, 500, [&](std::int64_t i) {
      if (tree.rank(i * 2) != i) bad.fetch_add(1);          // #smaller evens
      if (tree.rank(i * 2 + 1) != i + 1) bad.fetch_add(1);  // odd probes
      auto k = tree.select(i);
      if (!k.has_value() || *k != i * 2) bad.fetch_add(1);
      if (tree.range_count(0, i * 2) != i + 1) bad.fetch_add(1);
    });
  });
  EXPECT_EQ(bad.load(), 0);
  // Out-of-range select.
  sched.run([&] { EXPECT_FALSE(tree.select(500).has_value()); });
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, WBTreeParam,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(BatchedWBTree, LargeBatchUnionKeepsBalance) {
  rt::Scheduler sched(4);
  BatchedWBTree tree(sched);
  tree.insert_unsafe(1 << 20);
  std::vector<BatchedWBTree::Op> ops(2048);
  std::vector<OpRecordBase*> ptrs;
  Xoshiro256 rng(8);
  std::set<Key> reference{1 << 20};
  for (auto& op : ops) {
    op.kind = BatchedWBTree::Kind::Insert;
    op.key = static_cast<Key>(rng.next_below(1u << 30));
    reference.insert(op.key);
    ptrs.push_back(&op);
  }
  tree.run_batch(ptrs.data(), ptrs.size());
  EXPECT_EQ(tree.size_unsafe(), reference.size());
  EXPECT_TRUE(tree.check_invariants());
}

TEST(BatchedWBTree, SkewedBatchesIntoSkewedTree) {
  // Union of a batch far to one side of the existing keys stresses the join
  // spine rotations.
  rt::Scheduler sched(2);
  BatchedWBTree tree(sched);
  for (Key k = 0; k < 3000; ++k) tree.insert_unsafe(k);
  std::vector<BatchedWBTree::Op> ops(512);
  std::vector<OpRecordBase*> ptrs;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    ops[i].kind = BatchedWBTree::Kind::Insert;
    ops[i].key = 1000000 + static_cast<Key>(i);
    ptrs.push_back(&ops[i]);
  }
  tree.run_batch(ptrs.data(), ptrs.size());
  EXPECT_TRUE(tree.check_invariants());
  EXPECT_EQ(tree.size_unsafe(), 3512u);
}

TEST(BatchedWBTree, AlternatingInsertEraseChurn) {
  rt::Scheduler sched(2);
  BatchedWBTree tree(sched);
  Xoshiro256 rng(10);
  std::set<Key> model;
  for (int round = 0; round < 40; ++round) {
    std::vector<BatchedWBTree::Op> ops(64);
    std::vector<OpRecordBase*> ptrs;
    for (auto& op : ops) {
      op.key = static_cast<Key>(rng.next_below(256));
      op.kind = (rng.next() & 1) ? BatchedWBTree::Kind::Insert
                                 : BatchedWBTree::Kind::Erase;
      ptrs.push_back(&op);
    }
    tree.run_batch(ptrs.data(), ptrs.size());
    // Phase-aware model: erases first, then inserts (first-wins).
    std::set<Key> erased, inserted;
    for (const auto& op : ops) {
      if (op.kind == BatchedWBTree::Kind::Erase &&
          erased.insert(op.key).second) {
        model.erase(op.key);
      }
    }
    for (const auto& op : ops) {
      if (op.kind == BatchedWBTree::Kind::Insert &&
          inserted.insert(op.key).second) {
        model.insert(op.key);
      }
    }
    ASSERT_EQ(tree.size_unsafe(), model.size()) << "round " << round;
    ASSERT_TRUE(tree.check_invariants()) << "round " << round;
  }
  for (Key k = 0; k < 256; ++k) {
    ASSERT_EQ(tree.contains_unsafe(k), model.count(k) > 0) << k;
  }
}

TEST(BatchedWBTree, ReadsSeePreBatchState) {
  rt::Scheduler sched(2);
  BatchedWBTree tree(sched);
  tree.insert_unsafe(10);
  BatchedWBTree::Op contains_doomed, erase10, insert20, rank_probe;
  contains_doomed.kind = BatchedWBTree::Kind::Contains;
  contains_doomed.key = 10;
  erase10.kind = BatchedWBTree::Kind::Erase;
  erase10.key = 10;
  insert20.kind = BatchedWBTree::Kind::Insert;
  insert20.key = 20;
  rank_probe.kind = BatchedWBTree::Kind::Rank;
  rank_probe.key = 100;
  OpRecordBase* ops[4] = {&insert20, &erase10, &contains_doomed, &rank_probe};
  tree.run_batch(ops, 4);
  EXPECT_TRUE(contains_doomed.found);
  EXPECT_EQ(rank_probe.count, 1);  // pre-state: only key 10
  EXPECT_TRUE(erase10.found);
  EXPECT_TRUE(insert20.found);
  EXPECT_FALSE(tree.contains_unsafe(10));
  EXPECT_TRUE(tree.contains_unsafe(20));
}

TEST(BatchedWBTree, AgreesWithTree23OnRandomWorkload) {
  rt::Scheduler sched(4);
  BatchedWBTree wb(sched);
  Xoshiro256 rng(12);
  std::set<Key> model;
  constexpr std::int64_t kN = 3000;
  std::vector<Key> keys(kN);
  for (auto& k : keys) {
    k = static_cast<Key>(rng.next_below(2000));
    model.insert(k);
  }
  sched.run([&] {
    rt::parallel_for(0, kN, [&](std::int64_t i) {
      wb.insert(keys[static_cast<std::size_t>(i)]);
    });
  });
  EXPECT_EQ(wb.size_unsafe(), model.size());
  for (Key k = 0; k < 2000; ++k) {
    ASSERT_EQ(wb.contains_unsafe(k), model.count(k) > 0);
  }
}

}  // namespace
}  // namespace batcher::ds
