// Failure-safety tests (DESIGN.md §8): exception propagation through the
// fork/join runtime, batch-protocol recovery after throwing BOPs, bounded
// ExternalDomain shutdown, the StallWatchdog, and a seed-swept
// fault-injection matrix.
//
// Three layers, mirroring test_audit.cpp:
//   1. Real exceptions (no injection) — these run in every build: a throw in
//      a spawned/stolen task surfaces at the spawner after siblings drain; a
//      throwing BOP fails exactly its batch's ops and the domain keeps
//      accepting batches; ExternalDomain::shutdown bounds every blocked
//      submit.
//   2. StallWatchdog driven by synthetic event streams — every build.
//   3. Injected faults (hooks::test_faults(), requires BATCHER_AUDIT): the
//      fault matrix — throw-in-BOP under both setup policies, throw in a
//      core task frame, throw inside collect, a slow launcher — swept under
//      >= 500 perturbed schedules with the auditor and watchdog attached.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "audit/audit_session.hpp"
#include "audit/invariant_auditor.hpp"
#include "audit/stall_watchdog.hpp"
#include "batcher/batcher.hpp"
#include "batcher/external.hpp"
#include "ds/batched_counter.hpp"
#include "runtime/api.hpp"
#include "runtime/schedule_hooks.hpp"
#include "runtime/scheduler.hpp"

namespace batcher {
namespace {

namespace hooks = rt::hooks;
using audit::AuditSession;
using audit::InvariantAuditor;
using audit::SchedulePerturber;
using audit::StallWatchdog;
using hooks::HookEvent;
using hooks::HookPoint;
using rt::TaskKind;

// --- 1a. Exception propagation through the runtime --------------------------

TEST(RuntimeFailure, SpawnedArmExceptionSurfacesAtSpawner) {
  rt::Scheduler sched(4);
  std::atomic<bool> other_ran{false};
  std::atomic<bool> caught{false};
  sched.run([&] {
    try {
      rt::parallel_invoke(
          [&] { other_ran.store(true, std::memory_order_relaxed); },
          [&] { throw std::runtime_error("spawned arm failed"); });
    } catch (const std::runtime_error& e) {
      caught.store(std::string(e.what()) == "spawned arm failed",
                   std::memory_order_relaxed);
    }
  });
  EXPECT_TRUE(caught.load());
  EXPECT_TRUE(other_ran.load());

  // The scheduler survives the failed run untouched.
  std::atomic<std::int64_t> n{0};
  sched.run([&] {
    rt::parallel_for(0, 32,
                     [&](std::int64_t) { n.fetch_add(1, std::memory_order_relaxed); },
                     /*grain=*/1);
  });
  EXPECT_EQ(n.load(), 32);
}

TEST(RuntimeFailure, FirstExceptionWinsWhenBothArmsThrow) {
  rt::Scheduler sched(4);
  std::atomic<int> caught{0};
  sched.run([&] {
    try {
      rt::parallel_invoke([] { throw std::runtime_error("arm 0"); },
                          [] { throw std::runtime_error("arm 1"); });
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      caught.store(what == "arm 0" ? 1 : what == "arm 1" ? 2 : -1,
                   std::memory_order_relaxed);
    }
  });
  // Exactly one of the two exceptions is claimed and rethrown; the loser is
  // dropped, never std::terminate.
  EXPECT_TRUE(caught.load() == 1 || caught.load() == 2) << caught.load();
}

TEST(RuntimeFailure, ParallelForSiblingsDrainBeforeRethrow) {
  rt::Scheduler sched(4);
  constexpr std::int64_t kN = 64;
  std::atomic<std::int64_t> ran{0};
  std::atomic<bool> caught{false};
  sched.run([&] {
    try {
      rt::parallel_for(0, kN,
                       [&](std::int64_t i) {
                         if (i == 37) throw std::runtime_error("body 37 failed");
                         ran.fetch_add(1, std::memory_order_relaxed);
                       },
                       /*grain=*/1);
    } catch (const std::runtime_error&) {
      caught.store(true, std::memory_order_relaxed);
    }
  });
  EXPECT_TRUE(caught.load());
  // No cancellation: the join waited for every sibling, so all other bodies
  // ran to completion before the exception surfaced.
  EXPECT_EQ(ran.load(), kN - 1);
}

TEST(RuntimeFailure, RootExceptionRethrownFromRun) {
  rt::Scheduler sched(2);
  EXPECT_THROW(sched.run([] { throw std::runtime_error("root failed"); }),
               std::runtime_error);
  // run() stays usable after a failed root.
  std::atomic<int> n{0};
  sched.run([&] { n.store(1, std::memory_order_relaxed); });
  EXPECT_EQ(n.load(), 1);
}

// --- 1b. Batch-protocol recovery after a throwing BOP -----------------------

// A counter whose BOP throws for the first `failures` non-empty batches, then
// behaves.  Works in every build — no fault injection needed.
struct FlakyCounter final : BatchedStructure {
  struct Op : OpRecordBase {
    std::int64_t delta = 0;
    std::int64_t result = 0;
  };

  explicit FlakyCounter(int failures) : failures_left(failures) {}

  std::atomic<int> failures_left;
  std::int64_t value = 0;  // Invariant 1: at most one BOP runs at a time

  void run_batch(OpRecordBase* const* ops, std::size_t count) override {
    const int left = failures_left.load(std::memory_order_relaxed);
    if (left > 0) {
      failures_left.store(left - 1, std::memory_order_relaxed);
      throw std::runtime_error("flaky BOP failed");
    }
    for (std::size_t i = 0; i < count; ++i) {
      Op* op = static_cast<Op*>(ops[i]);
      value += op->delta;
      op->result = value;
    }
  }
};

void throwing_bop_recovers(Batcher::SetupPolicy policy) {
  constexpr std::int64_t kOps = 64;
  constexpr std::int64_t kProbe = 8;
  constexpr int kFailures = 3;

  rt::Scheduler sched(4);
  FlakyCounter ds(kFailures);
  Batcher batcher(sched, ds, policy);

  std::atomic<std::int64_t> ok{0};
  std::atomic<std::int64_t> failed{0};
  std::atomic<std::int64_t> bad_error_state{0};
  sched.run([&] {
    rt::parallel_for(0, kOps,
                     [&](std::int64_t) {
                       FlakyCounter::Op op;
                       op.delta = 1;
                       try {
                         batcher.batchify(op);
                         if (op.failed()) bad_error_state.fetch_add(1);
                         ok.fetch_add(1, std::memory_order_relaxed);
                       } catch (const std::runtime_error& e) {
                         if (!op.failed() ||
                             std::string(e.what()) != "flaky BOP failed") {
                           bad_error_state.fetch_add(1);
                         }
                         failed.fetch_add(1, std::memory_order_relaxed);
                       }
                     },
                     /*grain=*/1);
    // The domain must accept fresh batches after the failures — no catch
    // here: these have to succeed.
    for (std::int64_t i = 0; i < kProbe; ++i) {
      FlakyCounter::Op op;
      op.delta = 1;
      batcher.batchify(op);
      ok.fetch_add(1, std::memory_order_relaxed);
    }
  });

  EXPECT_EQ(bad_error_state.load(), 0);
  EXPECT_EQ(ok.load() + failed.load(), kOps + kProbe);
  // Each failed batch carried at least one op.
  EXPECT_GE(failed.load(), kFailures);
  // Failed ops were never applied; successful ones all were.
  EXPECT_EQ(ds.value, ok.load());

  const BatcherStats st = batcher.stats();
  EXPECT_EQ(st.failed_batches, static_cast<std::uint64_t>(kFailures));
  EXPECT_EQ(st.ops_failed, static_cast<std::uint64_t>(failed.load()));
  EXPECT_EQ(st.ops_processed, static_cast<std::uint64_t>(kOps + kProbe));
  // The stats identities hold across failures: every op a batch carried is
  // either failed or succeeded...
  EXPECT_EQ(st.ops_processed, st.ops_failed + st.ops_succeeded);
  EXPECT_EQ(st.ops_succeeded, static_cast<std::uint64_t>(ok.load()));
  // ...the mean counts only clean launches, so the failed batches' partial
  // collections cannot skew it...
  EXPECT_EQ(st.clean_nonempty_batches,
            st.batches_launched - st.empty_batches -
                static_cast<std::uint64_t>(kFailures));
  if (st.clean_nonempty_batches > 0) {
    EXPECT_DOUBLE_EQ(st.mean_batch_size(),
                     static_cast<double>(st.ops_succeeded) /
                         static_cast<double>(st.clean_nonempty_batches));
  }
  // ...and the histogram stays consistent with the totals.
  std::uint64_t hist_batches = 0, hist_ops = 0;
  for (std::size_t k = 0; k < st.batch_size_histogram.size(); ++k) {
    hist_batches += st.batch_size_histogram[k];
    hist_ops += k * st.batch_size_histogram[k];
  }
  EXPECT_EQ(hist_batches, st.batches_launched);
  EXPECT_EQ(hist_ops, st.ops_processed);
  EXPECT_EQ(st.batch_size_histogram[0], st.empty_batches);
}

TEST(BatchRecovery, ThrowingBopRecoversSequentialSetup) {
  throwing_bop_recovers(Batcher::SetupPolicy::Sequential);
}

TEST(BatchRecovery, ThrowingBopRecoversParallelSetup) {
  throwing_bop_recovers(Batcher::SetupPolicy::Parallel);
}

TEST(BatchRecovery, ThrowingBopRecoversAnnounceSetup) {
  throwing_bop_recovers(Batcher::SetupPolicy::Announce);
}

// --- 1c. ExternalDomain failure paths ---------------------------------------

TEST(ExternalFailure, BadThreadIdThrowsOutOfRangeInEveryBuild) {
  rt::Scheduler sched(2);
  ds::BatchedCounter counter(sched);
  ExternalDomain domain(sched, counter, /*max_threads=*/2);
  ds::BatchedCounter::Op op;
  EXPECT_THROW(domain.submit(2, op), std::out_of_range);
  EXPECT_THROW(domain.submit(99, op), std::out_of_range);
}

TEST(ExternalFailure, SubmitAfterShutdownThrowsImmediately) {
  rt::Scheduler sched(2);
  ds::BatchedCounter counter(sched);
  ExternalDomain domain(sched, counter, /*max_threads=*/1);
  domain.shutdown();
  ds::BatchedCounter::Op op;
  op.delta = 1;
  EXPECT_THROW(domain.submit(0, op), DomainClosed);
  EXPECT_EQ(counter.value_unsafe(), 0);
}

TEST(ExternalFailure, ShutdownUnblocksWaitingSubmit) {
  // No pump is ever started: pre-recovery this submit would spin forever.
  rt::Scheduler sched(2);
  ds::BatchedCounter counter(sched);
  ExternalDomain domain(sched, counter, /*max_threads=*/1);

  std::atomic<bool> closed_seen{false};
  std::thread external([&] {
    ds::BatchedCounter::Op op;
    op.delta = 1;
    try {
      domain.submit(0, op);
    } catch (const DomainClosed&) {
      closed_seen.store(true, std::memory_order_relaxed);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  domain.shutdown();
  external.join();
  EXPECT_TRUE(closed_seen.load());
  EXPECT_EQ(counter.value_unsafe(), 0);
}

TEST(ExternalFailure, ShutdownDrainsInFlightOpsWithoutHanging) {
  rt::Scheduler sched(2);
  ds::BatchedCounter counter(sched);
  constexpr std::size_t kThreads = 3;
  ExternalDomain domain(sched, counter, kThreads);

  std::atomic<std::int64_t> ok{0};
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      // Submit until the shutdown surfaces: every blocked submit must either
      // complete (its batch was served) or throw DomainClosed — never hang.
      try {
        for (;;) {
          ds::BatchedCounter::Op op;
          op.delta = 1;
          domain.submit(t, op);
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      } catch (const DomainClosed&) {
      }
    });
  }
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    domain.shutdown();
  });
  sched.run([&] { domain.serve(); });
  stopper.join();
  for (auto& th : pool) th.join();

  // Exactly the successfully returned submits were applied; revoked and
  // drained ops had no effect.
  EXPECT_EQ(counter.value_unsafe(), ok.load());
  EXPECT_GT(ok.load(), 0);
}

TEST(ExternalFailure, ThrowingBopRethrownAtSubmitAndDomainStaysUsable) {
  rt::Scheduler sched(2);
  FlakyCounter flaky(/*failures=*/1);
  ExternalDomain domain(sched, flaky, /*max_threads=*/1);

  std::atomic<bool> first_failed{false};
  std::atomic<std::int64_t> second_result{0};
  std::thread external([&] {
    FlakyCounter::Op op;
    op.delta = 5;
    try {
      domain.submit(0, op);
    } catch (const std::runtime_error& e) {
      first_failed.store(
          op.failed() && std::string(e.what()) == "flaky BOP failed",
          std::memory_order_relaxed);
    }
    FlakyCounter::Op retry;
    retry.delta = 7;
    domain.submit(0, retry);  // the domain kept serving
    second_result.store(retry.result, std::memory_order_relaxed);
    domain.shutdown();
  });
  sched.run([&] { domain.serve(); });
  external.join();

  EXPECT_TRUE(first_failed.load());
  EXPECT_EQ(second_result.load(), 7);
  EXPECT_EQ(flaky.value, 7);
  EXPECT_EQ(domain.batches_failed(), 1u);
  EXPECT_EQ(domain.ops_failed(), 1u);
}

// --- 2. StallWatchdog vs synthetic event streams ----------------------------

HookEvent pop_event(unsigned w) {
  return {HookPoint::kPop, w, TaskKind::Batch, TaskKind::Core, nullptr, 0};
}

TEST(Watchdog, FlagHeldPastEventBudgetIsFlaggedWithModelDump) {
  InvariantAuditor auditor(4);
  StallWatchdog::Options o;
  o.flag_hold_event_budget = 100;
  o.trap_event_budget = 1ull << 40;
  StallWatchdog wd(4, o, &auditor);
  int dom = 0;
  const HookEvent cas{HookPoint::kFlagCasWon, 1, TaskKind::Core,
                      TaskKind::Core, &dom};
  auditor.on_event(cas);
  wd.on_event(cas);
  for (int i = 0; i < 512; ++i) {
    const HookEvent e = pop_event(2);
    auditor.on_event(e);
    wd.on_event(e);
  }
  ASSERT_TRUE(wd.stalled());
  EXPECT_EQ(wd.stall_count(), 1u);  // flagged once per episode, not per scan
  const std::string report = wd.report();
  EXPECT_NE(report.find("LAUNCHBATCH appears stuck"), std::string::npos)
      << report;
  EXPECT_NE(report.find("worker 1"), std::string::npos) << report;
  // The embedded auditor model names the wedged domain's holder.
  EXPECT_NE(report.find("protocol state model"), std::string::npos) << report;
  EXPECT_NE(report.find("flag holder=worker 1"), std::string::npos) << report;
}

TEST(Watchdog, ReopenedFlagIsNotFlagged) {
  StallWatchdog::Options o;
  o.flag_hold_event_budget = 100;
  o.trap_event_budget = 1ull << 40;
  StallWatchdog wd(4, o);
  int dom = 0;
  wd.on_event({HookPoint::kFlagCasWon, 1, TaskKind::Core, TaskKind::Core,
               &dom});
  for (int i = 0; i < 50; ++i) wd.on_event(pop_event(2));
  wd.on_event({HookPoint::kLaunchExit, 1, TaskKind::Batch, TaskKind::Batch,
               &dom, 0});
  for (int i = 0; i < 512; ++i) wd.on_event(pop_event(2));
  EXPECT_FALSE(wd.stalled()) << wd.report();
}

TEST(Watchdog, TrappedWorkerPastEventBudgetIsFlagged) {
  StallWatchdog::Options o;
  o.flag_hold_event_budget = 1ull << 40;
  o.trap_event_budget = 100;
  StallWatchdog wd(4, o);
  int dom = 0;
  wd.on_event({HookPoint::kBatchifyEnter, 2, TaskKind::Core, TaskKind::Core,
               &dom});
  for (int i = 0; i < 512; ++i) wd.on_event(pop_event(3));
  ASSERT_TRUE(wd.stalled());
  const std::string report = wd.report();
  EXPECT_NE(report.find("worker 2 trapped"), std::string::npos) << report;
}

TEST(Watchdog, BatchifyExitClearsTrapWatch) {
  StallWatchdog::Options o;
  o.flag_hold_event_budget = 1ull << 40;
  o.trap_event_budget = 100;
  StallWatchdog wd(4, o);
  int dom = 0;
  wd.on_event({HookPoint::kBatchifyEnter, 2, TaskKind::Core, TaskKind::Core,
               &dom});
  for (int i = 0; i < 50; ++i) wd.on_event(pop_event(3));
  wd.on_event({HookPoint::kBatchifyExit, 2, TaskKind::Core, TaskKind::Core,
               &dom});
  for (int i = 0; i < 512; ++i) wd.on_event(pop_event(3));
  EXPECT_FALSE(wd.stalled()) << wd.report();
}

TEST(Watchdog, CheckNowAppliesWallBudgetToSilentStall) {
  // A fully silent deadlock emits no events, so only the wall-clock budget
  // (evaluated via check_now) can catch it.
  StallWatchdog::Options o;
  o.wall_budget_ms = 1;
  StallWatchdog wd(4, o);
  int dom = 0;
  wd.on_event({HookPoint::kFlagCasWon, 0, TaskKind::Core, TaskKind::Core,
               &dom});
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(wd.stalled());  // no events flowed, no event-driven scan
  wd.check_now();
  ASSERT_TRUE(wd.stalled());
  EXPECT_NE(wd.report().find("wall budget also exceeded"), std::string::npos)
      << wd.report();
}

// --- 3. Injected faults (requires BATCHER_AUDIT) ----------------------------

#define REQUIRE_LIVE_HOOKS()                                              \
  do {                                                                    \
    if (!hooks::kEnabled)                                                 \
      GTEST_SKIP() << "built without BATCHER_AUDIT; no live hook stream"; \
  } while (0)

#if BATCHER_AUDIT

TEST(InjectedFaults, CoreTaskFaultSurfacesAtSpawnerJoin) {
  REQUIRE_LIVE_HOOKS();
  hooks::test_faults().reset();
  hooks::test_faults().throw_in_core_task.store(1, std::memory_order_relaxed);
  rt::Scheduler sched(4);
  std::atomic<std::int64_t> ran{0};
  std::atomic<bool> caught{false};
  sched.run([&] {
    try {
      rt::parallel_for(0, 64,
                       [&](std::int64_t) {
                         ran.fetch_add(1, std::memory_order_relaxed);
                       },
                       /*grain=*/1);
    } catch (const hooks::InjectedFault&) {
      caught.store(true, std::memory_order_relaxed);
    }
    // Disarmed, the runtime schedules normally again.
    hooks::test_faults().reset();
    rt::parallel_for(0, 16,
                     [&](std::int64_t) {
                       ran.fetch_add(1, std::memory_order_relaxed);
                     },
                     /*grain=*/1);
  });
  EXPECT_TRUE(caught.load());
  EXPECT_GE(ran.load(), 16);
  hooks::test_faults().reset();
}

// The collect-fault recovery contract, per setup policy.  Scan policies
// (Sequential/Parallel) leave a faulted slot pending, to be re-collected by
// a later batch; the announce policy has already unhooked the claimed list
// from the stack, so recovery fails the whole claimed list — collected slots
// and the uncollected tail alike.  Either way every caller either gets its
// result or the injected error, and the counter agrees exactly with the
// calls that returned.
void collect_fault_recovers(Batcher::SetupPolicy policy) {
  hooks::test_faults().reset();
  hooks::test_faults().throw_in_collect.store(2, std::memory_order_relaxed);
  rt::Scheduler sched(4);
  ds::BatchedCounter counter(sched, 0, policy);
  std::atomic<std::int64_t> ok{0};
  sched.run([&] {
    rt::parallel_for(0, 64,
                     [&](std::int64_t) {
                       try {
                         counter.increment(1);
                         ok.fetch_add(1, std::memory_order_relaxed);
                       } catch (const hooks::InjectedFault&) {
                       }
                     },
                     /*grain=*/1);
    hooks::test_faults().reset();
    rt::parallel_for(0, 8,
                     [&](std::int64_t) {
                       counter.increment(1);
                       ok.fetch_add(1, std::memory_order_relaxed);
                     },
                     /*grain=*/1);
  });
  EXPECT_EQ(counter.value_unsafe(), ok.load());
  EXPECT_GE(ok.load(), 8);
  const BatcherStats st = counter.batcher().stats();
  EXPECT_EQ(st.ops_processed, st.ops_failed + st.ops_succeeded);
  hooks::test_faults().reset();
}

TEST(InjectedFaults, CollectFaultFailsOnlyCollectedOpsAndRecovers) {
  REQUIRE_LIVE_HOOKS();
  collect_fault_recovers(Batcher::SetupPolicy::Sequential);
}

TEST(InjectedFaults, CollectFaultFailsClaimedListAndRecoversAnnounce) {
  REQUIRE_LIVE_HOOKS();
  collect_fault_recovers(Batcher::SetupPolicy::Announce);
}

TEST(InjectedFaults, SlowLauncherTripsStallWatchdog) {
  REQUIRE_LIVE_HOOKS();
  constexpr unsigned kWorkers = 4;
  StallWatchdog::Options wd;
  wd.flag_hold_event_budget = 64;   // far below a multi-ms stall's event flow
  wd.trap_event_budget = 1ull << 40;
  AuditSession session(kWorkers, /*seed=*/11, {}, wd);
  session.install();
  hooks::test_faults().reset();
  hooks::test_faults().slow_launcher_spins.store(2'000'000,
                                                 std::memory_order_relaxed);
  {
    rt::Scheduler sched(kWorkers);
    ds::BatchedCounter counter(sched);
    sched.run([&] {
      rt::parallel_for(0, 32, [&](std::int64_t) { counter.increment(1); },
                       /*grain=*/1);
    });
    ASSERT_EQ(counter.value_unsafe(), 32);
  }
  hooks::test_faults().reset();
  session.uninstall();

  // Slow is not incorrect: the protocol stayed invariant-clean...
  EXPECT_TRUE(session.auditor().clean()) << session.auditor().report();
  // ...but the watchdog flagged the stretched flag-hold, with the model dump.
  ASSERT_TRUE(session.watchdog().stalled()) << session.watchdog().report();
  const std::string report = session.watchdog().report();
  EXPECT_NE(report.find("LAUNCHBATCH appears stuck"), std::string::npos)
      << report;
  EXPECT_NE(report.find("protocol state model"), std::string::npos) << report;
}

// The acceptance sweep: every fault row, >= 500 perturbed schedules, zero
// auditor violations, zero watchdog stalls (default budgets), and after every
// faulted storm the domain accepts a fresh probe batch.
TEST(InjectedFaults, FaultMatrixSweepRecoversAcrossSeeds) {
  REQUIRE_LIVE_HOOKS();
  constexpr unsigned kWorkers = 4;
  constexpr std::uint64_t kSeeds = 520;
  constexpr std::int64_t kOps = 48;
  constexpr std::int64_t kProbe = 8;

  SchedulePerturber::Options opts;
  opts.yield_one_in = 96;
  opts.pause_one_in = 8;
  opts.max_pause_spins = 32;
  AuditSession session(kWorkers, 0, opts);
  session.install();

  std::uint64_t faulted_runs = 0;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    session.reseed(seed);
    const int row = static_cast<int>(seed % 5);
    // Rotate every fault row through the announce path too: row 1 pins the
    // parallel scan, the rest alternate announce/sequential by seed.
    const Batcher::SetupPolicy policy =
        row == 1 ? Batcher::SetupPolicy::Parallel
                 : (seed % 2 == 0 ? Batcher::SetupPolicy::Announce
                                  : Batcher::SetupPolicy::Sequential);
    auto& faults = hooks::test_faults();
    faults.reset();
    const std::int64_t armed = 1 + static_cast<std::int64_t>(seed % 3);
    switch (row) {
      case 0:
      case 1:
        faults.throw_in_bop.store(armed, std::memory_order_relaxed);
        break;
      case 2:
        faults.throw_in_collect.store(armed, std::memory_order_relaxed);
        break;
      case 3:
        faults.throw_in_core_task.store(1, std::memory_order_relaxed);
        break;
      default:
        faults.slow_launcher_spins.store(4096, std::memory_order_relaxed);
        break;
    }

    std::int64_t succeeded = 0;
    bool outer_fault = false;
    {
      rt::Scheduler sched(kWorkers);
      ds::BatchedCounter counter(sched, 0, policy);
      std::atomic<std::int64_t> ok{0};
      std::atomic<bool> storm_threw{false};
      sched.run([&] {
        try {
          rt::parallel_for(0, kOps,
                           [&](std::int64_t) {
                             try {
                               counter.increment(1);
                               ok.fetch_add(1, std::memory_order_relaxed);
                             } catch (const hooks::InjectedFault&) {
                             }
                           },
                           /*grain=*/1);
        } catch (const hooks::InjectedFault&) {
          storm_threw.store(true, std::memory_order_relaxed);
        }
        // Disarm, then prove the domain still launches fresh batches.
        hooks::test_faults().reset();
        rt::parallel_for(0, kProbe,
                         [&](std::int64_t) {
                           counter.increment(1);
                           ok.fetch_add(1, std::memory_order_relaxed);
                         },
                         /*grain=*/1);
      });
      succeeded = ok.load();
      outer_fault = storm_threw.load();
      // Failed ops were never applied; the counter agrees exactly with the
      // calls that returned.
      ASSERT_EQ(counter.value_unsafe(), succeeded) << "seed " << seed;
      ASSERT_GE(succeeded, kProbe) << "seed " << seed;
      if (row == 3) {
        // The killed task frame's exception must surface at the storm join.
        ASSERT_TRUE(outer_fault) << "seed " << seed;
      }
      if (row == 4) {
        // A slow launcher loses nothing.
        ASSERT_FALSE(outer_fault) << "seed " << seed;
        ASSERT_EQ(succeeded, kOps + kProbe) << "seed " << seed;
      }
    }  // scheduler destroyed: hook stream quiescent

    ASSERT_TRUE(session.auditor().clean())
        << "seed " << seed << " (replay with this seed)\n"
        << session.auditor().report();
    ASSERT_FALSE(session.watchdog().stalled())
        << "seed " << seed << "\n" << session.watchdog().report();
    if (outer_fault || succeeded < kOps + kProbe) ++faulted_runs;
  }
  session.uninstall();
  hooks::test_faults().reset();

  // The matrix actually injected: rows 0, 1, and 3 always lose work.
  EXPECT_GE(faulted_runs, (kSeeds / 5) * 3) << faulted_runs;
}

#endif  // BATCHER_AUDIT

}  // namespace
}  // namespace batcher
