// Tests for the batched order-maintenance list.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <vector>

#include "ds/batched_om.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"
#include "support/rng.hpp"

namespace batcher::ds {
namespace {

using OM = BatchedOrderMaintenance;
using Handle = OM::Handle;

TEST(BatchedOM, BaseAndSingleInsert) {
  rt::Scheduler sched(1);
  OM om(sched);
  const Handle a = om.insert_after_unsafe(om.base());
  EXPECT_NE(a, OM::kInvalidHandle);
  EXPECT_TRUE(om.precedes_unsafe(om.base(), a));
  EXPECT_FALSE(om.precedes_unsafe(a, om.base()));
  EXPECT_TRUE(om.check_invariants());
}

TEST(BatchedOM, SequentialChainKeepsOrder) {
  rt::Scheduler sched(1);
  OM om(sched);
  std::vector<Handle> chain{om.base()};
  for (int i = 0; i < 2000; ++i) {
    chain.push_back(om.insert_after_unsafe(chain.back()));
  }
  EXPECT_TRUE(om.check_invariants());
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    ASSERT_TRUE(om.precedes_unsafe(chain[i], chain[i + 1]));
  }
}

TEST(BatchedOM, InsertsAfterBaseComeOutInReverseChainOrder) {
  // Repeated insert_after(base) prepends: later inserts sit closer to base.
  rt::Scheduler sched(1);
  OM om(sched);
  const Handle first = om.insert_after_unsafe(om.base());
  const Handle second = om.insert_after_unsafe(om.base());
  EXPECT_TRUE(om.precedes_unsafe(second, first));
  EXPECT_TRUE(om.check_invariants());
}

TEST(BatchedOM, RelabelTriggersAndPreservesOrder) {
  // Hammering the same gap exhausts labels and forces global relabels.
  rt::Scheduler sched(1);
  OM om(sched);
  std::vector<Handle> order_snapshot;
  const Handle anchor = om.insert_after_unsafe(om.base());
  Handle cursor = anchor;
  for (int i = 0; i < 5000; ++i) {
    // Always insert right after `anchor`, squeezing the same gap.
    const Handle h = om.insert_after_unsafe(anchor);
    if (i % 500 == 0) order_snapshot.push_back(h);
    cursor = h;
  }
  EXPECT_GT(om.relabels_unsafe(), 0u);
  EXPECT_TRUE(om.check_invariants());
  // Later inserts after the same anchor precede earlier ones.
  for (std::size_t i = 0; i + 1 < order_snapshot.size(); ++i) {
    ASSERT_TRUE(om.precedes_unsafe(order_snapshot[i + 1], order_snapshot[i]));
  }
  (void)cursor;
}

TEST(BatchedOM, BatchGroupSemantics) {
  // One batch with several inserts after the same anchor: they land in
  // working-set order, all between the anchor and its old successor.
  rt::Scheduler sched(4);
  OM om(sched);
  const Handle tail = om.insert_after_unsafe(om.base());
  OM::Op ops[3];
  for (auto& op : ops) {
    op.kind = OM::Kind::InsertAfter;
    op.a = om.base();
  }
  OpRecordBase* ptrs[3] = {&ops[0], &ops[1], &ops[2]};
  om.run_batch(ptrs, 3);
  EXPECT_TRUE(om.check_invariants());
  EXPECT_TRUE(om.precedes_unsafe(om.base(), ops[0].result));
  EXPECT_TRUE(om.precedes_unsafe(ops[0].result, ops[1].result));
  EXPECT_TRUE(om.precedes_unsafe(ops[1].result, ops[2].result));
  EXPECT_TRUE(om.precedes_unsafe(ops[2].result, tail));
}

TEST(BatchedOM, BatchReadsSeePreBatchLabels) {
  rt::Scheduler sched(2);
  OM om(sched);
  const Handle a = om.insert_after_unsafe(om.base());
  OM::Op ins, query;
  ins.kind = OM::Kind::InsertAfter;
  ins.a = om.base();
  query.kind = OM::Kind::Precedes;
  query.a = om.base();
  query.b = a;
  OpRecordBase* ptrs[2] = {&ins, &query};
  om.run_batch(ptrs, 2);
  EXPECT_TRUE(query.before);  // base < a in the pre-batch list
  EXPECT_TRUE(om.check_invariants());
}

class OMParam : public ::testing::TestWithParam<unsigned> {};

TEST_P(OMParam, ParallelForkJoinLabellingStaysConsistent) {
  // The race-detector pattern: an irregular fork/join computation inserts an
  // event after its parent's event at every fork, concurrently.
  rt::Scheduler sched(GetParam());
  OM om(sched);
  std::atomic<std::int64_t> events{0};

  struct Rec {
    OM& om;
    std::atomic<std::int64_t>& events;
    void operator()(Handle parent, int depth) {
      if (depth <= 0) return;
      const Handle mine = om.insert_after(parent);
      events.fetch_add(1);
      rt::parallel_invoke([&] { (*this)(mine, depth - 1); },
                          [&] { (*this)(mine, depth - 2); });
    }
  };
  Rec rec{om, events};
  sched.run([&] { rec(om.base(), 12); });

  EXPECT_EQ(om.size_unsafe(), static_cast<std::size_t>(events.load()) + 1);
  EXPECT_TRUE(om.check_invariants());
}

TEST_P(OMParam, ChildAlwaysAfterParent) {
  rt::Scheduler sched(GetParam());
  OM om(sched);
  constexpr std::int64_t kN = 500;
  std::vector<Handle> parents(kN), children(kN);
  sched.run([&] {
    rt::parallel_for(0, kN, [&](std::int64_t i) {
      const Handle p = om.insert_after(om.base());
      const Handle c = om.insert_after(p);
      parents[static_cast<std::size_t>(i)] = p;
      children[static_cast<std::size_t>(i)] = c;
    });
  });
  EXPECT_TRUE(om.check_invariants());
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(om.precedes_unsafe(parents[static_cast<std::size_t>(i)],
                                   children[static_cast<std::size_t>(i)]));
    ASSERT_TRUE(om.precedes_unsafe(om.base(),
                                   parents[static_cast<std::size_t>(i)]));
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, OMParam,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(BatchedOM, RandomizedAgainstReferenceList) {
  // Reference: an explicit std::vector order of handles.
  rt::Scheduler sched(1);
  OM om(sched);
  std::vector<Handle> order{om.base()};
  Xoshiro256 rng(91);
  for (int step = 0; step < 4000; ++step) {
    const std::size_t pos = rng.next_below(order.size());
    const Handle h = om.insert_after_unsafe(order[pos]);
    order.insert(order.begin() + static_cast<std::ptrdiff_t>(pos) + 1, h);
  }
  ASSERT_TRUE(om.check_invariants());
  // Spot-check 2000 random pairs.
  for (int i = 0; i < 2000; ++i) {
    const std::size_t x = rng.next_below(order.size());
    const std::size_t y = rng.next_below(order.size());
    if (x == y) continue;
    ASSERT_EQ(om.precedes_unsafe(order[x], order[y]), x < y)
        << "pair " << x << "," << y;
  }
}

}  // namespace
}  // namespace batcher::ds
