// Empirical verification of the paper's §5 analysis structure on the
// simulator: Lemma 2 (trap latency), the batch taxonomy, and the lemma-wise
// steal-attempt bounds (Lemmas 9, 10+11, 13).
#include <gtest/gtest.h>

#include <cstdint>

#include "sim/cost_model.hpp"
#include "sim/dag.hpp"
#include "sim/sim_batcher.hpp"

namespace batcher::sim {
namespace {

struct Scenario {
  const char* name;
  std::int64_t iters;
  std::int64_t pre, post, ds_per_iter;
  std::int64_t structure_size;
  unsigned workers;
};

class LemmaTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(LemmaTest, Lemma2AtMostTwoBatchesPerTrap) {
  const Scenario& sc = GetParam();
  Dag core = build_parallel_loop_with_ds(sc.iters, sc.pre, sc.post,
                                         sc.ds_per_iter);
  SkipListCostModel model(sc.structure_size);
  BatcherSimConfig cfg;
  cfg.workers = sc.workers;
  cfg.seed = 21;
  const SimResult res = simulate_batcher(core, model, cfg);
  // "Once the operation record ... is put into the pending array, at most
  // two batches execute before the node completes."
  EXPECT_LE(res.max_batches_waited, 2) << sc.name;
  EXPECT_GE(res.max_batches_waited, 1) << sc.name;
}

TEST_P(LemmaTest, StealCategoriesPartitionAllAttempts) {
  const Scenario& sc = GetParam();
  Dag core = build_parallel_loop_with_ds(sc.iters, sc.pre, sc.post,
                                         sc.ds_per_iter);
  SkipListCostModel model(sc.structure_size);
  BatcherSimConfig cfg;
  cfg.workers = sc.workers;
  cfg.seed = 22;
  const SimResult res = simulate_batcher(core, model, cfg);
  EXPECT_EQ(res.big_batch_steals + res.free_steals + res.trapped_steals,
            res.steal_attempts)
      << sc.name;
}

TEST_P(LemmaTest, BigBatchStealsWithinLemma9Envelope) {
  const Scenario& sc = GetParam();
  Dag core = build_parallel_loop_with_ds(sc.iters, sc.pre, sc.post,
                                         sc.ds_per_iter);
  SkipListCostModel model(sc.structure_size);
  BatcherSimConfig cfg;
  cfg.workers = sc.workers;
  cfg.seed = 23;
  const SimResult res = simulate_batcher(core, model, cfg);
  // Lemma 9: E[big-batch steals] = O(nτ + P·S_τ(n) + W(n)).
  const std::int64_t n = core.num_ds_nodes();
  const std::int64_t P = sc.workers;
  const std::int64_t w_n =
      n * SkipListCostModel(sc.structure_size + n).batch_cost(1).work;
  const std::int64_t envelope =
      n * res.tau + P * res.trimmed_span + w_n;
  EXPECT_LE(res.big_batch_steals, 16 * envelope + 64 * P) << sc.name;
}

TEST_P(LemmaTest, FreeStealsWithinLemma10And11Envelope) {
  const Scenario& sc = GetParam();
  Dag core = build_parallel_loop_with_ds(sc.iters, sc.pre, sc.post,
                                         sc.ds_per_iter);
  SkipListCostModel model(sc.structure_size);
  BatcherSimConfig cfg;
  cfg.workers = sc.workers;
  cfg.seed = 24;
  const SimResult res = simulate_batcher(core, model, cfg);
  // Lemmas 10+11: E[free steals] = O(P·(T∞ + m·τ) + n·τ).
  const std::int64_t n = core.num_ds_nodes();
  const std::int64_t P = sc.workers;
  const std::int64_t envelope =
      P * (core.span() + core.max_ds_on_path() * res.tau) + n * res.tau;
  EXPECT_LE(res.free_steals, 16 * envelope + 64 * P) << sc.name;
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, LemmaTest,
    ::testing::Values(
        Scenario{"ds-heavy-small", 512, 1, 1, 1, 1 << 10, 8},
        Scenario{"ds-heavy-large", 512, 1, 1, 1, 1 << 22, 8},
        Scenario{"core-heavy", 256, 32, 32, 1, 1 << 10, 8},
        Scenario{"deep-m", 64, 2, 1, 8, 1 << 16, 8},
        Scenario{"wide-P16", 1024, 2, 1, 1, 1 << 16, 16},
        Scenario{"tiny-P2", 128, 1, 1, 1, 1 << 8, 2}),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Lemma2, HoldsUnderEveryStealPolicy) {
  Dag core = build_parallel_loop_with_ds(512, 1, 1, 1);
  for (StealPolicy policy :
       {StealPolicy::Alternating, StealPolicy::CoreOnly, StealPolicy::BatchOnly,
        StealPolicy::UniformRandom}) {
    CounterCostModel model;
    BatcherSimConfig cfg;
    cfg.workers = 8;
    cfg.policy = policy;
    const SimResult res = simulate_batcher(core, model, cfg);
    EXPECT_LE(res.max_batches_waited, 2)
        << "policy " << static_cast<int>(policy)
        << " (Lemma 2 is a property of the launch rule, not the steal "
           "policy)";
  }
}

TEST(Lemma2, AccruePolicyBreaksTheBound) {
  // The launch-immediately rule is what gives Lemma 2 its "at most two":
  // with an accrual threshold a pending op can sit out arbitrarily many
  // batches... except that a trapped worker launches itself after max_wait,
  // and every launch takes ALL pending records — so even with accrual the
  // bound measured here stays 2.  This documents that the bound comes from
  // "a launch collects every pending record", not from launching eagerly.
  Dag core = build_parallel_loop_with_ds(512, 1, 1, 1);
  CounterCostModel model;
  BatcherSimConfig cfg;
  cfg.workers = 8;
  cfg.min_batch_ops = 4;
  cfg.max_wait_steps = 32;
  const SimResult res = simulate_batcher(core, model, cfg);
  EXPECT_LE(res.max_batches_waited, 2);
}

TEST(Lemma2, HelperLockModeLosesTheBound) {
  // With a 1-op collection cap (the §6 helper-lock comparison) a pending
  // operation can sit out many critical sections — the "collect ALL pending
  // records" rule is exactly what Lemma 2's proof uses, so removing it must
  // break the bound.  This is a negative control for the instrumentation.
  Dag core = build_parallel_loop_with_ds(1024, 1, 1, 1);
  SkipListCostModel model(1 << 20);
  BatcherSimConfig cfg;
  cfg.workers = 8;
  cfg.max_ops_per_batch = 1;
  const SimResult res = simulate_batcher(core, model, cfg);
  EXPECT_EQ(res.max_batch_size, 1);
  EXPECT_GT(res.max_batches_waited, 2)
      << "helper-lock mode unexpectedly satisfied the BATCHER trap bound";
}

TEST(Taxonomy, PopularBatchesAppearUnderLoad) {
  Dag core = build_parallel_loop_with_ds(2048, 1, 1, 1);
  SkipListCostModel model(1 << 20);
  BatcherSimConfig cfg;
  cfg.workers = 8;
  const SimResult res = simulate_batcher(core, model, cfg);
  // Mean batch ≈ P/2 > P/4: most batches are popular, hence big.
  EXPECT_GT(res.popular_batches, res.batches / 2);
  EXPECT_GE(res.big_batches, res.popular_batches);
}

TEST(Taxonomy, SequentialCallerMakesNoPopularBatches) {
  Dag core = build_sequential_ds_chain(64, 2);
  SkipListCostModel model(1 << 20);
  BatcherSimConfig cfg;
  cfg.workers = 8;
  const SimResult res = simulate_batcher(core, model, cfg);
  EXPECT_EQ(res.popular_batches, 0);  // singleton batches, P/4 = 2
  EXPECT_EQ(res.max_batch_size, 1);
}

TEST(Taxonomy, TrimmedSpanSumsLongBatchSpans) {
  // With τ forced below every batch span, all batches are long and the
  // trimmed span is the sum of all batch spans.
  Dag core = build_parallel_loop_with_ds(128, 1, 1, 1);
  SkipListCostModel model(1 << 20);
  BatcherSimConfig cfg;
  cfg.workers = 4;
  cfg.tau = 1;
  const SimResult res = simulate_batcher(core, model, cfg);
  EXPECT_EQ(res.long_batches, res.batches);
  EXPECT_GE(res.trimmed_span, res.batches * 2);
  // And with τ huge, nothing is long.
  SkipListCostModel model2(1 << 20);
  cfg.tau = 1 << 30;
  const SimResult res2 = simulate_batcher(core, model2, cfg);
  EXPECT_EQ(res2.long_batches, 0);
  EXPECT_EQ(res2.trimmed_span, 0);
}

}  // namespace
}  // namespace batcher::sim
