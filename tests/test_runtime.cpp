// Tests for the fork/join work-stealing runtime.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"

namespace batcher::rt {
namespace {

std::int64_t fib_serial(int n) {
  return n < 2 ? n : fib_serial(n - 1) + fib_serial(n - 2);
}

std::int64_t fib_parallel(int n) {
  if (n < 2) return n;
  if (n < 10) return fib_serial(n);
  std::int64_t a = 0, b = 0;
  parallel_invoke([&] { a = fib_parallel(n - 1); },
                  [&] { b = fib_parallel(n - 2); });
  return a + b;
}

class RuntimeTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RuntimeTest, RunExecutesRoot) {
  Scheduler sched(GetParam());
  bool ran = false;
  sched.run([&] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST_P(RuntimeTest, SequentialRunsReuseWorkers) {
  Scheduler sched(GetParam());
  int count = 0;
  for (int i = 0; i < 20; ++i) {
    sched.run([&] { ++count; });
  }
  EXPECT_EQ(count, 20);
}

TEST_P(RuntimeTest, ParallelInvokeRunsBothArms) {
  Scheduler sched(GetParam());
  std::atomic<int> hits{0};
  sched.run([&] {
    parallel_invoke([&] { hits.fetch_add(1); }, [&] { hits.fetch_add(2); });
  });
  EXPECT_EQ(hits.load(), 3);
}

TEST_P(RuntimeTest, NestedForkJoinComputesFib) {
  Scheduler sched(GetParam());
  std::int64_t result = 0;
  sched.run([&] { result = fib_parallel(22); });
  EXPECT_EQ(result, fib_serial(22));
}

TEST_P(RuntimeTest, ParallelForCoversEveryIndexExactlyOnce) {
  Scheduler sched(GetParam());
  constexpr std::int64_t kN = 5000;
  std::vector<std::atomic<int>> hits(kN);
  sched.run([&] {
    parallel_for(0, kN, [&](std::int64_t i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
  });
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST_P(RuntimeTest, ParallelForBlockedCoversRange) {
  Scheduler sched(GetParam());
  constexpr std::int64_t kN = 4097;
  std::vector<std::atomic<int>> hits(kN);
  sched.run([&] {
    parallel_for_blocked(0, kN, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
      }
    });
  });
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
  }
}

TEST_P(RuntimeTest, EmptyAndTinyRanges) {
  Scheduler sched(GetParam());
  std::atomic<int> hits{0};
  sched.run([&] {
    parallel_for(0, 0, [&](std::int64_t) { hits.fetch_add(1); });
    parallel_for(5, 5, [&](std::int64_t) { hits.fetch_add(1); });
    parallel_for(7, 4, [&](std::int64_t) { hits.fetch_add(1); });
    parallel_for(0, 1, [&](std::int64_t) { hits.fetch_add(1); });
  });
  EXPECT_EQ(hits.load(), 1);
}

TEST_P(RuntimeTest, DeepRecursionDoesNotDeadlock) {
  Scheduler sched(GetParam());
  // A chain of nested single-sided forks exercises join-waiting with steals.
  std::atomic<int> depth_reached{0};
  sched.run([&] {
    std::function<void(int)> go = [&](int d) {
      if (d == 0) {
        depth_reached.fetch_add(1);
        return;
      }
      parallel_invoke([&] { go(d - 1); }, [&] {});
    };
    go(200);
  });
  EXPECT_EQ(depth_reached.load(), 1);
}

TEST_P(RuntimeTest, StatsCountTasks) {
  Scheduler sched(GetParam());
  sched.reset_stats();
  sched.run([&] {
    parallel_for(0, 1000, [](std::int64_t) {}, /*grain=*/1);
  });
  const StatsSnapshot s = sched.total_stats();
  EXPECT_GT(s.tasks_executed, 0u);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, RuntimeTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

TEST(RuntimeFallback, ApiWorksOutsideAnyScheduler) {
  // Data-structure code must be testable standalone: outside a run the
  // parallel constructs degrade to sequential execution.
  int hits = 0;
  parallel_invoke([&] { ++hits; }, [&] { ++hits; });
  EXPECT_EQ(hits, 2);
  std::int64_t sum = 0;
  parallel_for(0, 10, [&](std::int64_t i) { sum += i; });
  EXPECT_EQ(sum, 45);
}

TEST(RuntimeStats, AlternatingStealPolicyHitsBothKinds) {
  // With more workers than work, idle workers must issue steal attempts at
  // both deque kinds per the alternating policy.
  Scheduler sched(4);
  sched.reset_stats();
  sched.run([&] {
    volatile std::int64_t sink = 0;
    for (int i = 0; i < 2000000; ++i) sink = sink + 1;
  });
  const StatsSnapshot s = sched.total_stats();
  EXPECT_GT(s.core_steal_attempts, 0u);
  EXPECT_GT(s.batch_steal_attempts, 0u);
  // Alternating: the two counts should be within 2x of each other.
  const double ratio = static_cast<double>(s.core_steal_attempts + 1) /
                       static_cast<double>(s.batch_steal_attempts + 1);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(RuntimeLifecycle, ManySchedulersComeAndGo) {
  for (int i = 0; i < 10; ++i) {
    Scheduler sched(2);
    std::atomic<int> n{0};
    sched.run([&] {
      parallel_for(0, 100, [&](std::int64_t) { n.fetch_add(1); });
    });
    EXPECT_EQ(n.load(), 100);
  }
}

// Regression test for the capture/failed() race: failed() returning true must
// imply the exception is already published, or rethrow_if_failed would hand
// std::rethrow_exception a null pointer.  A reader spins until the flag flips
// and immediately rethrows; under the old single-CAS scheme (claim before
// publish) this intermittently crashed.
TEST(RuntimeJoinCounter, FailedFlagImpliesPublishedException) {
  for (int iter = 0; iter < 500; ++iter) {
    JoinCounter join(1);
    std::atomic<bool> go{false};
    std::thread writer([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      join.capture(std::make_exception_ptr(std::runtime_error("boom")));
      join.finish();
    });
    go.store(true, std::memory_order_release);
    while (!join.failed()) {
    }
    EXPECT_THROW(join.rethrow_if_failed(), std::runtime_error);
    writer.join();
  }
}

TEST(RuntimeJoinCounter, FirstCaptureWinsUnderContention) {
  JoinCounter join(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&join, t] {
      join.capture(std::make_exception_ptr(std::runtime_error(
          "thrower " + std::to_string(t))));
      join.finish();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(join.done());
  std::string message;
  try {
    join.rethrow_if_failed();
  } catch (const std::runtime_error& e) {
    message = e.what();
  }
  EXPECT_EQ(message.rfind("thrower ", 0), 0u) << message;
}

}  // namespace
}  // namespace batcher::rt
