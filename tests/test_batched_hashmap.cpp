// Tests for the batched hash map.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ds/batched_hashmap.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"
#include "support/rng.hpp"

namespace batcher::ds {
namespace {

using Key = BatchedHashMap::Key;
using Value = BatchedHashMap::Value;

TEST(BatchedHashMap, UnsafePutGetOverwrite) {
  rt::Scheduler sched(1);
  BatchedHashMap map(sched);
  map.put_unsafe(1, 10);
  map.put_unsafe(2, 20);
  map.put_unsafe(1, 11);
  EXPECT_EQ(*map.get_unsafe(1), 11);
  EXPECT_EQ(*map.get_unsafe(2), 20);
  EXPECT_FALSE(map.get_unsafe(3).has_value());
  EXPECT_EQ(map.size_unsafe(), 2u);
  EXPECT_TRUE(map.check_invariants());
}

class HashMapParam : public ::testing::TestWithParam<unsigned> {};

TEST_P(HashMapParam, ParallelPutsAllLand) {
  rt::Scheduler sched(GetParam());
  BatchedHashMap map(sched);
  constexpr std::int64_t kN = 3000;
  sched.run([&] {
    rt::parallel_for(0, kN, [&](std::int64_t i) { map.put(i, i * 7); });
  });
  EXPECT_EQ(map.size_unsafe(), static_cast<std::size_t>(kN));
  EXPECT_TRUE(map.check_invariants());
  for (Key k = 0; k < kN; ++k) {
    ASSERT_EQ(*map.get_unsafe(k), k * 7) << "key " << k;
  }
}

TEST_P(HashMapParam, ResizeKeepsEverything) {
  rt::Scheduler sched(GetParam());
  BatchedHashMap map(sched);
  const std::size_t buckets0 = map.bucket_count_unsafe();
  constexpr std::int64_t kN = 2000;  // forces several doublings from 64
  sched.run([&] {
    rt::parallel_for(0, kN, [&](std::int64_t i) { map.put(i, -i); });
  });
  EXPECT_GT(map.bucket_count_unsafe(), buckets0);
  EXPECT_TRUE(map.check_invariants());
  for (Key k = 0; k < kN; ++k) ASSERT_EQ(*map.get_unsafe(k), -k);
}

TEST_P(HashMapParam, UpdateAddBuildsHistogram) {
  // The update op is a batched read-modify-write: concurrent adds to the
  // same key must all take effect (they serialize within the bucket group).
  rt::Scheduler sched(GetParam());
  BatchedHashMap map(sched);
  constexpr std::int64_t kN = 4000;
  constexpr std::int64_t kBins = 32;
  sched.run([&] {
    rt::parallel_for(0, kN, [&](std::int64_t i) {
      map.update_add(i % kBins, 1);
    });
  });
  EXPECT_EQ(map.size_unsafe(), static_cast<std::size_t>(kBins));
  for (Key k = 0; k < kBins; ++k) {
    ASSERT_EQ(*map.get_unsafe(k), kN / kBins) << "bin " << k;
  }
}

TEST_P(HashMapParam, EraseAndConservation) {
  rt::Scheduler sched(GetParam());
  BatchedHashMap map(sched);
  for (Key k = 0; k < 1000; ++k) map.put_unsafe(k, k);
  std::atomic<std::int64_t> hits{0};
  sched.run([&] {
    rt::parallel_for(0, 1500, [&](std::int64_t i) {
      if (map.erase(i)) hits.fetch_add(1);
    });
  });
  EXPECT_EQ(hits.load(), 1000);
  EXPECT_EQ(map.size_unsafe(), 0u);
  EXPECT_TRUE(map.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, HashMapParam,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(BatchedHashMap, BatchAppliesInWorkingSetOrderPerKey) {
  rt::Scheduler sched(4);
  BatchedHashMap map(sched);
  using Op = BatchedHashMap::Op;
  Op put1, get_mid, put2, get_end;
  put1.kind = BatchedHashMap::Kind::Put;
  put1.key = 5;
  put1.value = 100;
  get_mid.kind = BatchedHashMap::Kind::Get;
  get_mid.key = 5;
  put2.kind = BatchedHashMap::Kind::Put;
  put2.key = 5;
  put2.value = 200;
  get_end.kind = BatchedHashMap::Kind::Get;
  get_end.key = 5;
  OpRecordBase* ops[4] = {&put1, &get_mid, &put2, &get_end};
  map.run_batch(ops, 4);
  EXPECT_EQ(*get_mid.out, 100) << "get must see the put before it in the batch";
  EXPECT_EQ(*get_end.out, 200) << "get must see the later put";
  EXPECT_EQ(*map.get_unsafe(5), 200);
}

TEST(BatchedHashMap, RandomTraceMatchesUnorderedMap) {
  rt::Scheduler sched(2);
  BatchedHashMap map(sched);
  std::unordered_map<Key, Value> ref;
  Xoshiro256 rng(61);
  for (int step = 0; step < 8000; ++step) {
    const Key k = static_cast<Key>(rng.next_below(256));
    switch (rng.next_below(4)) {
      case 0: {
        const Value v = static_cast<Value>(rng.next());
        map.put_unsafe(k, v);
        ref[k] = v;
        break;
      }
      case 1: {
        auto got = map.get_unsafe(k);
        auto it = ref.find(k);
        ASSERT_EQ(got.has_value(), it != ref.end());
        if (got.has_value()) {
          ASSERT_EQ(*got, it->second);
        }
        break;
      }
      default: {
        // Exercise erase through a single-op batch.
        BatchedHashMap::Op op;
        op.kind = BatchedHashMap::Kind::Erase;
        op.key = k;
        OpRecordBase* ops[1] = {&op};
        map.run_batch(ops, 1);
        ASSERT_EQ(op.found, ref.erase(k) > 0);
        break;
      }
    }
  }
  EXPECT_EQ(map.size_unsafe(), ref.size());
  EXPECT_TRUE(map.check_invariants());
}

}  // namespace
}  // namespace batcher::ds
