// Tests for the batched counter (paper Fig. 1/2).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "ds/batched_counter.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"

namespace batcher::ds {
namespace {

class CounterTest
    : public ::testing::TestWithParam<std::tuple<unsigned, Batcher::SetupPolicy>> {
 protected:
  unsigned workers() const { return std::get<0>(GetParam()); }
  Batcher::SetupPolicy setup() const { return std::get<1>(GetParam()); }
};

TEST_P(CounterTest, FinalValueIsSumOfDeltas) {
  rt::Scheduler sched(workers());
  BatchedCounter counter(sched, /*initial=*/100, setup());
  constexpr std::int64_t kN = 3000;
  sched.run([&] {
    rt::parallel_for(0, kN, [&](std::int64_t i) { counter.increment(i); });
  });
  EXPECT_EQ(counter.value_unsafe(), 100 + kN * (kN - 1) / 2);
}

TEST_P(CounterTest, ResultsAreLinearizable) {
  // Every increment-by-1 must see a distinct post-value in [1, n], i.e. the
  // results form a permutation — exactly the linearizability argument the
  // paper makes for the prefix-sums BOP.
  rt::Scheduler sched(workers());
  BatchedCounter counter(sched, 0, setup());
  constexpr std::int64_t kN = 2000;
  std::vector<std::int64_t> seen(kN, -1);
  sched.run([&] {
    rt::parallel_for(0, kN, [&](std::int64_t i) {
      seen[static_cast<std::size_t>(i)] = counter.increment(1);
    });
  });
  std::sort(seen.begin(), seen.end());
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(seen[static_cast<std::size_t>(i)], i + 1) << "duplicate or gap";
  }
}

TEST_P(CounterTest, NegativeDeltasAndReads) {
  rt::Scheduler sched(workers());
  BatchedCounter counter(sched, 0, setup());
  std::atomic<std::int64_t> read_sum{0};
  sched.run([&] {
    rt::parallel_for(0, 1000, [&](std::int64_t i) {
      if (i % 2 == 0) {
        counter.increment(5);
      } else {
        counter.increment(-5);
      }
      read_sum.fetch_add(counter.read() % 5);  // every snapshot divisible by 5
    });
  });
  EXPECT_EQ(counter.value_unsafe(), 0);
  EXPECT_EQ(read_sum.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, CounterTest,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(Batcher::SetupPolicy::Sequential,
                                         Batcher::SetupPolicy::Parallel,
                                         Batcher::SetupPolicy::Announce)));

TEST(BatchedCounter, RunBatchDirectMatchesFigure2) {
  // Drive BOP directly with a hand-built batch, mimicking Fig. 2 exactly.
  rt::Scheduler sched(4);
  BatchedCounter counter(sched, 10);
  BatchedCounter::Op ops[3];
  ops[0].delta = 1;
  ops[1].delta = 2;
  ops[2].delta = 3;
  OpRecordBase* ptrs[3] = {&ops[0], &ops[1], &ops[2]};
  counter.run_batch(ptrs, 3);
  EXPECT_EQ(ops[0].result, 11);
  EXPECT_EQ(ops[1].result, 13);
  EXPECT_EQ(ops[2].result, 16);
  EXPECT_EQ(counter.value_unsafe(), 16);
}

TEST(BatchedCounter, BatchesActuallyForm) {
  // With parallel callers, mean batch size should exceed 1 (the scheduler
  // accumulates operations while a batch runs).
  rt::Scheduler sched(8);
  BatchedCounter counter(sched);
  sched.run([&] {
    rt::parallel_for(0, 20000, [&](std::int64_t) { counter.increment(1); },
                     /*grain=*/1);
  });
  const BatcherStats stats = counter.batcher().stats();
  EXPECT_EQ(counter.value_unsafe(), 20000);
  EXPECT_EQ(stats.ops_processed, 20000u);
  // On a multi-core host the mean batch size comfortably exceeds 1; on a
  // single-core host (threads timeslice) batching still must never violate
  // the invariants, but multi-op batches are timing-dependent, so only the
  // weak bound is asserted here.  The simulator tests pin down the strong
  // claim deterministically (SimBatcher.ParallelCallersProduceRealBatches).
  EXPECT_GE(stats.mean_batch_size(), 1.0);
  EXPECT_LE(stats.max_batch_size, 8u);
}

}  // namespace
}  // namespace batcher::ds
