// Tests for the parallel primitives: scan, reduce, sort.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "parallel/prefix_sum.hpp"
#include "parallel/reduce.hpp"
#include "parallel/sort.hpp"
#include "runtime/api.hpp"
#include "runtime/scheduler.hpp"
#include "support/rng.hpp"

namespace batcher {
namespace {

std::vector<std::int64_t> random_values(std::size_t n, std::uint64_t seed,
                                        std::int64_t range = 1000000) {
  Xoshiro256 rng(seed);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) {
    x = static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(range))) -
        range / 2;
  }
  return v;
}

// Affine-map composition: associative but NOT commutative, so it catches
// scans that reorder the operator's arguments.
struct Affine {
  std::int64_t a = 1, b = 0;  // x -> a*x + b
  bool operator==(const Affine& o) const { return a == o.a && b == o.b; }
};
Affine compose(const Affine& f, const Affine& g) {
  // (g ∘ f): apply f first, then g — scan convention op(prefix, next).
  return Affine{f.a * g.a, f.b * g.a + g.b};
}

class ScanTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScanTest, BlockedMatchesSerial) {
  const std::size_t n = GetParam();
  rt::Scheduler sched(4);
  auto data = random_values(n, 1);
  auto expected = data;
  std::partial_sum(expected.begin(), expected.end(), expected.begin());
  sched.run([&] {
    par::prefix_sums(data.data(), static_cast<std::int64_t>(n));
  });
  EXPECT_EQ(data, expected);
}

TEST_P(ScanTest, RecursiveMatchesSerial) {
  const std::size_t n = GetParam();
  rt::Scheduler sched(4);
  auto data = random_values(n, 2);
  auto expected = data;
  std::partial_sum(expected.begin(), expected.end(), expected.begin());
  sched.run([&] {
    par::scan_inclusive_recursive(
        data.data(), static_cast<std::int64_t>(n),
        [](std::int64_t a, std::int64_t b) { return a + b; });
  });
  EXPECT_EQ(data, expected);
}

TEST_P(ScanTest, NonCommutativeOperator) {
  const std::size_t n = GetParam();
  if (n == 0) return;
  rt::Scheduler sched(4);
  Xoshiro256 rng(3);
  std::vector<Affine> data(n);
  for (auto& f : data) {
    f.a = (rng.next() & 1) ? 1 : -1;  // keep magnitudes bounded
    f.b = static_cast<std::int64_t>(rng.next_below(100));
  }
  std::vector<Affine> expected(data);
  for (std::size_t i = 1; i < n; ++i) {
    expected[i] = compose(expected[i - 1], expected[i]);
  }
  sched.run([&] {
    par::scan_inclusive(data.data(), static_cast<std::int64_t>(n), compose);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(data[i], expected[i]) << "position " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanTest,
                         ::testing::Values(0u, 1u, 2u, 3u, 7u, 64u, 100u,
                                           1000u, 4097u, 50000u));

TEST(Scan, WorksOutsideScheduler) {
  std::vector<std::int64_t> v{1, 2, 3, 4};
  par::prefix_sums(v.data(), 4);
  EXPECT_EQ(v, (std::vector<std::int64_t>{1, 3, 6, 10}));
}

TEST(Reduce, SumMatchesSerial) {
  rt::Scheduler sched(4);
  auto data = random_values(10000, 4);
  const std::int64_t expected =
      std::accumulate(data.begin(), data.end(), std::int64_t{0});
  std::int64_t got = 0;
  sched.run([&] {
    got = par::parallel_sum<std::int64_t>(
        0, static_cast<std::int64_t>(data.size()),
        [&](std::int64_t i) { return data[static_cast<std::size_t>(i)]; });
  });
  EXPECT_EQ(got, expected);
}

TEST(Reduce, MaxWithIdentity) {
  rt::Scheduler sched(2);
  auto data = random_values(5000, 5);
  const std::int64_t expected = *std::max_element(data.begin(), data.end());
  std::int64_t got = 0;
  sched.run([&] {
    got = par::parallel_reduce<std::int64_t>(
        0, static_cast<std::int64_t>(data.size()),
        std::numeric_limits<std::int64_t>::min(),
        [&](std::int64_t i) { return data[static_cast<std::size_t>(i)]; },
        [](std::int64_t a, std::int64_t b) { return std::max(a, b); });
  });
  EXPECT_EQ(got, expected);
}

TEST(Reduce, EmptyRangeYieldsIdentity) {
  EXPECT_EQ(par::parallel_sum<std::int64_t>(5, 5,
                                            [](std::int64_t) { return 1; }),
            0);
}

class SortTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SortTest, MatchesStdSortOnRandomInput) {
  const std::size_t n = GetParam();
  rt::Scheduler sched(4);
  auto data = random_values(n, 6, 100);  // narrow range -> many duplicates
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  sched.run([&] { par::parallel_sort(data); });
  EXPECT_EQ(data, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SortTest,
                         ::testing::Values(0u, 1u, 2u, 3u, 100u, 511u, 512u,
                                           513u, 5000u, 100000u));

TEST(Sort, AlreadySortedAndReversed) {
  rt::Scheduler sched(2);
  std::vector<std::int64_t> asc(10000), desc(10000);
  std::iota(asc.begin(), asc.end(), 0);
  for (std::size_t i = 0; i < desc.size(); ++i) {
    desc[i] = static_cast<std::int64_t>(desc.size() - i);
  }
  auto asc_copy = asc;
  sched.run([&] {
    par::parallel_sort(asc);
    par::parallel_sort(desc);
  });
  EXPECT_EQ(asc, asc_copy);
  EXPECT_TRUE(std::is_sorted(desc.begin(), desc.end()));
}

TEST(Sort, StableForEqualKeys) {
  rt::Scheduler sched(4);
  struct Item {
    int key;
    int seq;
  };
  Xoshiro256 rng(7);
  std::vector<Item> data(20000);
  for (int i = 0; i < static_cast<int>(data.size()); ++i) {
    data[static_cast<std::size_t>(i)] = {static_cast<int>(rng.next_below(16)), i};
  }
  sched.run([&] {
    par::parallel_sort(data.data(), static_cast<std::int64_t>(data.size()),
                       [](const Item& a, const Item& b) { return a.key < b.key; });
  });
  for (std::size_t i = 1; i < data.size(); ++i) {
    ASSERT_LE(data[i - 1].key, data[i].key);
    if (data[i - 1].key == data[i].key) {
      ASSERT_LT(data[i - 1].seq, data[i].seq) << "instability at " << i;
    }
  }
}

TEST(Sort, CustomComparatorDescending) {
  rt::Scheduler sched(2);
  auto data = random_values(3000, 8);
  sched.run([&] {
    par::parallel_sort(data.data(), static_cast<std::int64_t>(data.size()),
                       [](std::int64_t a, std::int64_t b) { return a > b; });
  });
  EXPECT_TRUE(std::is_sorted(data.rbegin(), data.rend()));
}

}  // namespace
}  // namespace batcher
